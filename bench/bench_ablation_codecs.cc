/**
 * @file
 * Ablation: compression-algorithm choices on the same per-benchmark log
 * streams. Reproduces two claims from the paper's text rather than its
 * figures: (a) "LZ, as a direct replacement to LBE, has similar
 * compression performance" (Section 6), and (b) C-Pack's pointer
 * overhead caps streaming ratio (Section 3.2.5). BDI and FPC are
 * included as intra-line yardsticks, and the tag codec's 1- vs 2-base
 * variants are swept.
 */

#include <cstdio>

#include "common/bench_common.hh"
#include "compress/bdi.hh"
#include "compress/cpack.hh"
#include "compress/fpc.hh"
#include "compress/lbe.hh"
#include "compress/lzss.hh"
#include "compress/tagcodec.hh"
#include "util/rng.hh"

int
main()
{
    using namespace morc;
    using namespace morc::bench;
    banner("Ablation: stream/line codecs on identical fill streams",
           "LZ ~ LBE (Section 6); C-Pack capped by per-word pointers; "
           "intra-line codecs (FPC/BDI) trail inter-line ones");

    std::printf("%-10s %7s %7s %8s %7s %7s\n", "bench", "LBE",
                "LZSS", "C-Packs", "FPC", "BDI");
    std::vector<double> r_lbe, r_lz, r_cp, r_fpc, r_bdi;
    for (const auto &spec : trace::spec2006()) {
        trace::ValueModel vm(spec.data);
        Rng rng(77);
        const std::uint64_t ws_lines = spec.access.wsBytes / kLineSize;

        comp::LbeEncoder lbe;
        comp::LzssEncoder lz;
        comp::CpackEncoder cpack_stream(512); // same dictionary budget
        std::uint64_t b_lbe = 0, b_lz = 0, b_cp = 0, b_fpc = 0,
                      b_bdi = 0;
        std::uint64_t log_lbe = 0, log_lz = 0, log_cp = 0;
        int n = 0;
        for (int burst = 0; burst < 120; burst++) {
            const std::uint64_t base = rng.below(ws_lines) & ~15ull;
            for (int i = 0; i < 16; i++) {
                const CacheLine l = vm.line(base + i, 0);
                const auto add = [&](std::uint64_t &total,
                                     std::uint64_t &log,
                                     std::uint32_t bits, auto &enc) {
                    total += bits;
                    log += bits;
                    if (log > 4096) { // 512B log flush
                        enc.reset();
                        log = 0;
                    }
                };
                add(b_lbe, log_lbe, lbe.append(l), lbe);
                add(b_lz, log_lz, lz.append(l), lz);
                add(b_cp, log_cp, cpack_stream.append(l), cpack_stream);
                b_fpc += comp::Fpc::lineBits(l);
                b_bdi += comp::Bdi::lineBits(l);
                n++;
            }
        }
        const double raw = 512.0 * n;
        std::printf("%-10s %7.2f %7.2f %8.2f %7.2f %7.2f\n",
                    spec.name.c_str(), raw / b_lbe, raw / b_lz,
                    raw / b_cp, raw / b_fpc, raw / b_bdi);
        r_lbe.push_back(raw / b_lbe);
        r_lz.push_back(raw / b_lz);
        r_cp.push_back(raw / b_cp);
        r_fpc.push_back(raw / b_fpc);
        r_bdi.push_back(raw / b_bdi);
        std::fflush(stdout);
    }
    printMeans("LBE", r_lbe);
    printMeans("LZSS", r_lz);
    printMeans("C-Pack", r_cp);
    printMeans("FPC", r_fpc);
    printMeans("BDI", r_bdi);

    // Tag codec base-count ablation on a two-chain fill stream.
    std::printf("\nTag codec: interleaved fill + write-back chains\n");
    for (unsigned bases : {1u, 2u}) {
        comp::TagCodec codec(bases);
        Rng rng(5);
        std::uint64_t bits = 0;
        std::uint64_t chain_a = 1'000'000, chain_b = 9'000'000;
        const int n = 20000;
        for (int i = 0; i < n; i++) {
            if (i & 1)
                bits += codec.append(chain_a += 1 + rng.below(3));
            else
                bits += codec.append(chain_b += 1 + rng.below(3));
        }
        std::printf("  %u base(s): %.1f bits/tag (vs %u raw)\n", bases,
                    static_cast<double>(bits) / n,
                    comp::TagCodec::kFullTagBits + 2);
    }
    return 0;
}
