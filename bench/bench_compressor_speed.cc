/**
 * @file
 * Software throughput of the compression codecs (google-benchmark).
 * Not a paper figure — a sanity microbenchmark showing the simulator's
 * compression layer is fast enough to drive full-system sweeps.
 */

#include <benchmark/benchmark.h>

#include "compress/cpack.hh"
#include "compress/fpc.hh"
#include "compress/huffman.hh"
#include "compress/lbe.hh"
#include "compress/tagcodec.hh"
#include "trace/value_model.hh"
#include "util/rng.hh"

namespace {

using namespace morc;

std::vector<CacheLine>
sampleLines(std::size_t n)
{
    trace::DataProfile p;
    p.zeroWordFrac = 0.25;
    p.zeroHalfFrac = 0.15;
    p.poolWordFrac = 0.4;
    p.chunk256Frac = 0.2;
    p.chunk128Frac = 0.2;
    trace::ValueModel vm(p);
    std::vector<CacheLine> lines;
    for (std::size_t i = 0; i < n; i++)
        lines.push_back(vm.line(i, 0));
    return lines;
}

void
BM_LbeAppend(benchmark::State &state)
{
    const auto lines = sampleLines(4096);
    comp::LbeEncoder enc;
    std::size_t i = 0;
    std::uint64_t log_bits = 0;
    for (auto _ : state) {
        const std::uint32_t bits = enc.append(lines[i]);
        benchmark::DoNotOptimize(bits);
        log_bits += bits;
        if (log_bits > 4096) { // one 512B log
            enc.reset();
            log_bits = 0;
        }
        i = (i + 1) % lines.size();
    }
    state.SetBytesProcessed(state.iterations() * kLineSize);
}
BENCHMARK(BM_LbeAppend);

void
BM_LbeMeasure(benchmark::State &state)
{
    const auto lines = sampleLines(4096);
    comp::LbeEncoder enc;
    for (std::size_t i = 0; i < 64; i++)
        enc.append(lines[i]);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(enc.measure(lines[i]));
        i = (i + 1) % lines.size();
    }
    state.SetBytesProcessed(state.iterations() * kLineSize);
}
BENCHMARK(BM_LbeMeasure);

void
BM_LbeTrial8(benchmark::State &state)
{
    // The multi-log insert battery: one shared LbeLinePlan scored
    // against eight independently warmed encoders — exactly what
    // LogCache::insert does for every fill. This is the simulator's
    // hottest loop and the primary perf-gate metric.
    const auto lines = sampleLines(4096);
    std::vector<comp::LbeEncoder> encs(8);
    for (std::size_t e = 0; e < encs.size(); e++) {
        for (std::size_t i = 0; i < 64; i++)
            encs[e].append(lines[(e * 97 + i) % lines.size()]);
    }
    std::size_t i = 0;
    for (auto _ : state) {
        const comp::LbeLinePlan plan = comp::LbeLinePlan::of(lines[i]);
        std::uint64_t total = 0;
        for (auto &enc : encs)
            total += enc.measure(plan);
        benchmark::DoNotOptimize(total);
        i = (i + 1) % lines.size();
    }
    state.SetBytesProcessed(state.iterations() * kLineSize);
}
BENCHMARK(BM_LbeTrial8);

void
BM_CpackLine(benchmark::State &state)
{
    const auto lines = sampleLines(4096);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(comp::CpackEncoder::lineBits(lines[i]));
        i = (i + 1) % lines.size();
    }
    state.SetBytesProcessed(state.iterations() * kLineSize);
}
BENCHMARK(BM_CpackLine);

void
BM_FpcLine(benchmark::State &state)
{
    const auto lines = sampleLines(4096);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(comp::Fpc::lineBits(lines[i]));
        i = (i + 1) % lines.size();
    }
    state.SetBytesProcessed(state.iterations() * kLineSize);
}
BENCHMARK(BM_FpcLine);

void
BM_HuffmanLineBits(benchmark::State &state)
{
    const auto lines = sampleLines(4096);
    comp::ValueSampler sampler(1024);
    for (const auto &l : lines)
        sampler.observe(l);
    const comp::HuffmanTable table = sampler.train();
    std::size_t i = 0;
    for (auto _ : state) {
        std::uint32_t bits = 0;
        for (unsigned w = 0; w < kWordsPerLine; w++)
            bits += table.bitsFor(lines[i].word32(w));
        benchmark::DoNotOptimize(bits);
        i = (i + 1) % lines.size();
    }
    state.SetBytesProcessed(state.iterations() * kLineSize);
}
BENCHMARK(BM_HuffmanLineBits);

void
BM_TagCodec(benchmark::State &state)
{
    comp::TagCodec codec(2);
    Rng rng(5);
    std::uint64_t tag = 100000;
    for (auto _ : state) {
        tag += rng.below(64);
        benchmark::DoNotOptimize(codec.append(tag));
    }
}
BENCHMARK(BM_TagCodec);

void
BM_ValueModelLine(benchmark::State &state)
{
    trace::DataProfile p;
    trace::ValueModel vm(p);
    std::uint64_t ln = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(vm.line(ln++, 0));
    }
    state.SetBytesProcessed(state.iterations() * kLineSize);
}
BENCHMARK(BM_ValueModelLine);

} // namespace

BENCHMARK_MAIN();
