/**
 * @file
 * Figure 10: normalized IPC and throughput at other per-thread
 * bandwidth availabilities (1600/400/100/12.5 MB/s). MORC should lose
 * single-stream IPC when bandwidth is abundant but win throughput under
 * starvation.
 */

#include <cstdio>

#include "common/bench_common.hh"

int
main()
{
    using namespace morc;
    using namespace morc::bench;
    banner("Figure 10: sensitivity to per-thread bandwidth",
           "at 1600MB/s MORC costs ~7% IPC, no throughput loss; at "
           "12.5MB/s MORC +63% throughput");

    const double bandwidths[] = {1600e6, 400e6, 100e6, 12.5e6};
    const sim::Scheme schemes[] = {
        sim::Scheme::Uncompressed, sim::Scheme::Adaptive,
        sim::Scheme::Decoupled, sim::Scheme::Sc2, sim::Scheme::Morc};
    constexpr int kN = 5;

    std::printf("%-10s | normalized IPC: %-23s | normalized throughput: "
                "%s\n",
                "BW/thread", "A     D     S     M", "A     D     S     M");
    for (double bw : bandwidths) {
        std::vector<double> ipc[kN], thr[kN];
        for (const auto &spec : trace::spec2006()) {
            sim::RunResult r[kN];
            for (int i = 0; i < kN; i++)
                r[i] = runSingle(schemes[i], spec, bw);
            for (int i = 0; i < kN; i++) {
                ipc[i].push_back(r[i].cores[0].ipc() /
                                 r[0].cores[0].ipc());
                thr[i].push_back(r[i].cores[0].throughput() /
                                 r[0].cores[0].throughput());
            }
        }
        char label[32];
        std::snprintf(label, sizeof(label), "%.1fMB/s", bw / 1e6);
        std::printf("%-10s |", label);
        for (int i = 1; i < kN; i++)
            std::printf(" %5.2f", stats::gmean(ipc[i]));
        std::printf(" |");
        for (int i = 1; i < kN; i++)
            std::printf(" %5.2f", stats::gmean(thr[i]));
        std::printf("\n");
        std::fflush(stdout);
    }
    return 0;
}
