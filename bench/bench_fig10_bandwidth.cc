/**
 * @file
 * Thin wrapper: runs the "fig10" sweep from the shared figure registry
 * (see common/figures.cc). Accepts --jobs N and --out DIR.
 */

#include "common/figures.hh"

int
main(int argc, char **argv)
{
    return morc::bench::sweepMain(argc, argv, "fig10");
}
