/**
 * @file
 * Figure 11: MORC across LLC capacities (64 KB - 4 MB per core):
 * compression ratio, bandwidth normalized to the same-size uncompressed
 * cache, and normalized throughput.
 */

#include <cstdio>

#include "common/bench_common.hh"

int
main()
{
    using namespace morc;
    using namespace morc::bench;
    banner("Figure 11: MORC at other cache sizes",
           "BW savings 33-37% and throughput +35-46% from 64KB to 1MB; "
           "benefits fade by 4MB");

    const std::uint64_t sizes[] = {64ull << 10, 128ull << 10,
                                   256ull << 10, 1024ull << 10,
                                   4096ull << 10};
    std::printf("%-10s %14s %16s %22s\n", "LLC size", "MORC ratio",
                "norm. bandwidth", "norm. throughput");
    for (std::uint64_t size : sizes) {
        std::vector<double> ratio, thr;
        double gb_base = 0, gb_morc = 0;
        // Caveat: caches much larger than 128KB need proportionally
        // longer warm-up to fill; at short MORC_BENCH_WARMUP budgets
        // their sampled compression ratios read low. Scale the budgets
        // up (bounded here to keep the default sweep affordable).
        const std::uint64_t scale = std::min<std::uint64_t>(
            std::max<std::uint64_t>(size / (128 * 1024), 1), 2);
        for (const auto &spec : trace::spec2006()) {
            sim::SystemConfig cfg;
            cfg.scheme = sim::Scheme::Uncompressed;
            cfg.bandwidthPerCore = 100e6;
            cfg.llcBytesPerCore = size;
            cfg.ratioSampleInterval =
                std::max<std::uint64_t>(instrBudget() / 8, 50'000);
            sim::System base_sys(cfg, {spec});
            const auto base =
                base_sys.run(instrBudget(), warmupBudget() * scale);
            cfg.scheme = sim::Scheme::Morc;
            sim::System morc_sys(cfg, {spec});
            const auto m =
                morc_sys.run(instrBudget(), warmupBudget() * scale);
            ratio.push_back(m.compressionRatio);
            // Aggregate traffic, not a mean of per-benchmark ratios:
            // workloads that fit in-cache have near-zero baselines and
            // would dominate a ratio mean with noise.
            gb_base += base.gbPerBillionInstr();
            gb_morc += m.gbPerBillionInstr();
            thr.push_back(m.cores[0].throughput() /
                          base.cores[0].throughput());
        }
        std::printf("%7lluKB %14.2f %16.2f %22.2f\n",
                    static_cast<unsigned long long>(size >> 10),
                    stats::amean(ratio), gb_morc / gb_base,
                    stats::gmean(thr));
        std::fflush(stdout);
    }
    return 0;
}
