/**
 * @file
 * Figure 12: write-back-induced invalid-line fraction in MORC's logs,
 * inclusive vs. non-inclusive fill policy. Compression is disabled to
 * accentuate invalidations, per the paper's methodology.
 */

#include <cstdio>

#include "common/bench_common.hh"

namespace {

double
invalidFraction(const morc::trace::BenchmarkSpec &spec, bool inclusive)
{
    using namespace morc;
    using namespace morc::bench;
    sim::SystemConfig cfg;
    cfg.scheme = sim::Scheme::Morc;
    cfg.useMorcOverride = true;
    cfg.morc.compressionEnabled = false;
    cfg.inclusiveWriteFills = inclusive;
    cfg.ratioSampleInterval = instrBudget();
    sim::System sys(cfg, {spec});
    return sys.run(instrBudget(), warmupBudget()).invalidLineFraction;
}

} // namespace

int
main()
{
    using namespace morc;
    using namespace morc::bench;
    banner("Figure 12: write-back-induced invalid lines "
           "(compression disabled)",
           "non-inclusive significantly reduces invalid fraction vs "
           "inclusive");

    std::vector<double> inc, non;
    std::printf("%-10s %12s %14s\n", "bench", "inclusive%",
                "non-inclusive%");
    for (const auto &spec : trace::spec2006()) {
        const double i = 100.0 * invalidFraction(spec, true);
        const double n = 100.0 * invalidFraction(spec, false);
        inc.push_back(i);
        non.push_back(n);
        std::printf("%-10s %11.1f%% %13.1f%%\n", spec.name.c_str(), i, n);
        std::fflush(stdout);
    }
    std::printf("%-10s %11.1f%% %13.1f%%\n", "AMean", stats::amean(inc),
                stats::amean(non));
    return 0;
}
