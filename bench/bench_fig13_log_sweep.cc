/**
 * @file
 * Figure 13: MORC compression ratio across log sizes (64 B - 4 KB, with
 * 8 active logs) and across active-log counts (1-64, with 512 B logs),
 * assuming unlimited tags and LMT entries (the paper's limit-study
 * setting).
 */

#include <cstdio>

#include "common/bench_common.hh"

namespace {

double
morcRatio(const morc::trace::BenchmarkSpec &spec, unsigned log_bytes,
          unsigned active_logs)
{
    using namespace morc;
    using namespace morc::bench;
    core::MorcConfig morc;
    morc.logBytes = log_bytes;
    morc.activeLogs = active_logs;
    morc.unlimitedMeta = true;
    return runSingle(sim::Scheme::Morc, spec, 100e6, 128 * 1024, &morc)
        .compressionRatio;
}

} // namespace

int
main()
{
    using namespace morc;
    using namespace morc::bench;
    banner("Figure 13: log size and active-log count sweeps "
           "(unlimited tags/LMT)",
           "512-byte logs with 8 active logs are near-optimal");

    const unsigned log_sizes[] = {64, 256, 512, 1024, 2048, 4096};
    const unsigned log_counts[] = {1, 4, 8, 16, 32, 64};

    // A representative subset keeps the sweep affordable; add more rows
    // by raising MORC_BENCH_INSTR and editing this list.
    const char *subset[] = {"astar", "gcc",     "mcf",   "omnetpp",
                            "soplex", "zeusmp", "gamess", "cactusADM"};

    std::printf("(a) log size sweep, 8 active logs\n%-10s", "bench");
    for (unsigned s : log_sizes)
        std::printf(" %6uB", s);
    std::printf("\n");
    for (const char *name : subset) {
        const auto spec = trace::resolveWorkload(name);
        std::printf("%-10s", name);
        for (unsigned s : log_sizes)
            std::printf(" %7.2f", morcRatio(spec, s, 8));
        std::printf("\n");
        std::fflush(stdout);
    }

    std::printf("\n(b) active-log sweep, 512B logs\n%-10s", "bench");
    for (unsigned c : log_counts)
        std::printf(" %6u", c);
    std::printf("\n");
    for (const char *name : subset) {
        const auto spec = trace::resolveWorkload(name);
        std::printf("%-10s", name);
        for (unsigned c : log_counts)
            std::printf(" %6.2f", morcRatio(spec, 512, c));
        std::printf("\n");
        std::fflush(stdout);
    }
    return 0;
}
