/**
 * @file
 * Figure 14: distribution of MORC access (decompression) positions,
 * bucketed by bytes decoded from the log head (16 B/cycle output). An
 * even spread means a line's usefulness is position-independent.
 */

#include <cstdio>

#include "common/bench_common.hh"

int
main()
{
    using namespace morc;
    using namespace morc::bench;
    banner("Figure 14: MORC access latency (log position) distribution",
           "fairly even distribution across log positions");

    const std::vector<std::uint64_t> bounds = {64,  128, 196, 256, 320,
                                               384, 448, 512};
    {
        stats::Histogram proto(bounds);
        std::printf("%-10s", "bench");
        for (std::size_t i = 0; i < proto.numBuckets(); i++)
            std::printf(" %8s", proto.label(i).c_str());
        std::printf("\n");
    }

    for (const auto &spec : trace::spec2006()) {
        stats::Histogram hist(bounds);
        sim::SystemConfig cfg;
        cfg.scheme = sim::Scheme::Morc;
        cfg.latencyHistogram = &hist;
        cfg.ratioSampleInterval = instrBudget();
        sim::System sys(cfg, {spec});
        sys.run(instrBudget(), warmupBudget());
        std::printf("%-10s", spec.name.c_str());
        for (std::size_t i = 0; i < hist.numBuckets(); i++)
            std::printf("   %5.1f%%", 100.0 * hist.fraction(i));
        std::printf("\n");
        std::fflush(stdout);
    }
    return 0;
}
