/**
 * @file
 * Figure 15: MORC vs MORCMerged (tags co-located with data, no separate
 * tag store). Merged should sacrifice little compression — and can win
 * when tags are the binding constraint.
 */

#include <cstdio>

#include "common/bench_common.hh"

int
main()
{
    using namespace morc;
    using namespace morc::bench;
    banner("Figure 15: separate vs merged tag/data logs",
           "MORCMerged within ~0.5x of MORC on most workloads");

    std::vector<double> base, merged;
    std::printf("%-10s %10s %12s\n", "bench", "MORC", "MORCMerged");
    for (const auto &spec : trace::spec2006()) {
        const auto r0 = runSingle(sim::Scheme::Morc, spec);
        const auto r1 = runSingle(sim::Scheme::MorcMerged, spec);
        base.push_back(r0.compressionRatio);
        merged.push_back(r1.compressionRatio);
        std::printf("%-10s %10.2f %12.2f\n", spec.name.c_str(),
                    r0.compressionRatio, r1.compressionRatio);
        std::fflush(stdout);
    }
    printMeans("MORC", base);
    printMeans("MORCMerged", merged);
    return 0;
}
