/**
 * @file
 * Figure 2: compression ratios and bandwidth reductions of ideal
 * intra-line vs. inter-line compression (the motivation limit study).
 */

#include <cstdio>

#include "common/bench_common.hh"

int
main()
{
    using namespace morc;
    using namespace morc::bench;
    banner("Figure 2: Oracle intra-line vs inter-line compression",
           "intra ~2x ratio / ~20% BW reduction; inter ~24x / ~80%");

    std::vector<double> intra_r, inter_r, intra_bw, inter_bw;
    std::printf("%-10s %12s %12s %10s %10s\n", "bench", "intra-ratio",
                "inter-ratio", "intra-BW%", "inter-BW%");
    for (const auto &spec : trace::spec2006()) {
        const auto base = runSingle(sim::Scheme::Uncompressed, spec);
        const auto intra = runSingle(sim::Scheme::OracleIntra, spec);
        const auto inter = runSingle(sim::Scheme::OracleInter, spec);
        const double bw0 = base.gbPerBillionInstr();
        const double bw_intra =
            100.0 * (1.0 - intra.gbPerBillionInstr() / bw0);
        const double bw_inter =
            100.0 * (1.0 - inter.gbPerBillionInstr() / bw0);
        intra_r.push_back(intra.compressionRatio);
        inter_r.push_back(inter.compressionRatio);
        intra_bw.push_back(bw_intra);
        inter_bw.push_back(bw_inter);
        std::printf("%-10s %12.2f %12.2f %9.1f%% %9.1f%%\n",
                    spec.name.c_str(), intra.compressionRatio,
                    inter.compressionRatio, bw_intra, bw_inter);
    }
    printMeans("intra ratio", intra_r);
    printMeans("inter ratio", inter_r);
    printMeans("intra BW%", intra_bw);
    printMeans("inter BW%", inter_bw);
    return 0;
}
