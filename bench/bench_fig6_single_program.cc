/**
 * @file
 * Figure 6: single-program evaluation over the 54 SPEC2006 workloads —
 * (a) compression ratio, (b) off-chip GB per billion instructions,
 * (c) IPC improvement, (d) 4-thread CGMT throughput improvement.
 * Each program is statically allocated 100 MB/s of bandwidth.
 */

#include <cstdio>

#include "common/bench_common.hh"

int
main()
{
    using namespace morc;
    using namespace morc::bench;
    banner("Figure 6: single-program compression / bandwidth / IPC / "
           "throughput",
           "MORC ~2.9x ratio (next best 1.9x); MORC -27% BW (next "
           "-10.8%); IPC +22%; throughput +37% (next +20%)");

    const sim::Scheme schemes[] = {
        sim::Scheme::Uncompressed, sim::Scheme::Adaptive,
        sim::Scheme::Decoupled, sim::Scheme::Sc2, sim::Scheme::Morc};
    constexpr int kN = 5;

    std::vector<double> ratio[kN], gb[kN], ipc_imp[kN], thr_imp[kN];

    std::printf("%-12s | ratio: %-26s | GB/Binstr: %-32s | IPC+%% (A/D/S/M) "
                "| THR+%%\n",
                "workload", "A     D     S     M", "U     A     D     S "
                "    M");
    for (const auto &spec : trace::figure6Workloads()) {
        sim::RunResult r[kN];
        for (int i = 0; i < kN; i++)
            r[i] = runSingle(schemes[i], spec);
        const double base_ipc = r[0].cores[0].ipc();
        const double base_thr = r[0].cores[0].throughput();
        std::printf("%-12s |", spec.name.c_str());
        for (int i = 1; i < kN; i++)
            std::printf(" %5.2f", r[i].compressionRatio);
        std::printf(" |");
        for (int i = 0; i < kN; i++)
            std::printf(" %5.2f", r[i].gbPerBillionInstr());
        std::printf(" |");
        for (int i = 1; i < kN; i++) {
            std::printf(" %+5.0f",
                        100.0 * (r[i].cores[0].ipc() / base_ipc - 1.0));
        }
        std::printf(" |");
        for (int i = 1; i < kN; i++) {
            std::printf(" %+5.0f",
                        100.0 * (r[i].cores[0].throughput() / base_thr -
                                 1.0));
        }
        std::printf("\n");
        std::fflush(stdout);
        for (int i = 0; i < kN; i++) {
            ratio[i].push_back(r[i].compressionRatio);
            gb[i].push_back(r[i].gbPerBillionInstr());
            ipc_imp[i].push_back(r[i].cores[0].ipc() / base_ipc);
            thr_imp[i].push_back(r[i].cores[0].throughput() / base_thr);
        }
    }

    std::printf("\nSummary (54 workloads):\n");
    for (int i = 0; i < kN; i++) {
        double gb_sum = 0, gb_base = 0;
        for (std::size_t k = 0; k < gb[i].size(); k++) {
            gb_sum += gb[i][k];
            gb_base += gb[0][k];
        }
        std::printf("%-14s ratio AMean %5.2f GMean %5.2f | BW reduction "
                    "%+6.1f%% | IPC %+6.1f%% | throughput %+6.1f%%\n",
                    schemeName(schemes[i]), stats::amean(ratio[i]),
                    stats::gmean(ratio[i]),
                    100.0 * (1.0 - gb_sum / gb_base),
                    100.0 * (stats::gmean(ipc_imp[i]) - 1.0),
                    100.0 * (stats::gmean(thr_imp[i]) - 1.0));
    }
    return 0;
}
