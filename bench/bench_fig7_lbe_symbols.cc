/**
 * @file
 * Figure 7: normalized LBE encoding-symbol usage distribution, weighted
 * by the data size each symbol represents; the right-hand portion of
 * each paper bar (all-zero data) is reported as "zero%".
 */

#include <cstdio>

#include "common/bench_common.hh"
#include "core/morc.hh"

int
main()
{
    using namespace morc;
    using namespace morc::bench;
    banner("Figure 7: LBE symbol usage distribution (data-weighted)",
           "m256 significant for cactusADM/gamess/leslie3d/povray; gcc "
           "mostly zeros; h264ref u8/u16-heavy");

    std::printf("%-10s", "bench");
    for (int s = 0; s < static_cast<int>(comp::LbeSymbol::NumSymbols); s++)
        std::printf(" %6s",
                    comp::LbeStats::name(static_cast<comp::LbeSymbol>(s)));
    std::printf("   zero%%\n");

    for (const auto &spec : trace::spec2006()) {
        sim::SystemConfig cfg;
        cfg.scheme = sim::Scheme::Morc;
        cfg.ratioSampleInterval = instrBudget();
        sim::System sys(cfg, {spec});
        sys.run(instrBudget(), warmupBudget());
        auto *lc = dynamic_cast<core::LogCache *>(&sys.llc());
        const comp::LbeStats st = lc->lbeStats();

        double total = 0, zero = 0;
        double weighted[static_cast<int>(comp::LbeSymbol::NumSymbols)];
        for (int s = 0; s < static_cast<int>(comp::LbeSymbol::NumSymbols);
             s++) {
            const auto sym = static_cast<comp::LbeSymbol>(s);
            weighted[s] = static_cast<double>(st.count[s]) *
                          comp::LbeStats::dataBytes(sym);
            total += weighted[s];
            zero += static_cast<double>(st.zeroCount[s]) *
                    comp::LbeStats::dataBytes(sym);
        }
        std::printf("%-10s", spec.name.c_str());
        for (int s = 0; s < static_cast<int>(comp::LbeSymbol::NumSymbols);
             s++) {
            std::printf(" %5.1f%%", 100.0 * weighted[s] / total);
        }
        std::printf("  %5.1f%%\n", 100.0 * zero / total);
        std::fflush(stdout);
    }
    return 0;
}
