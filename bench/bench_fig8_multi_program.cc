/**
 * @file
 * Figure 8: multi-program evaluation of the Table 6 mixes (M0-M3 mixed,
 * S0-S7 replicated) on 16 cores sharing a 2 MB LLC and 1600 MB/s —
 * (a) compression ratio, (b) bandwidth reduction, (c) gmean IPC
 * improvement, (d) completion-time improvement.
 */

#include <cstdio>

#include "common/bench_common.hh"

namespace {

morc::sim::RunResult
runMix(morc::sim::Scheme scheme,
       const morc::trace::MultiProgramSpec &mix, std::uint64_t instr,
       std::uint64_t warmup)
{
    using namespace morc;
    sim::SystemConfig cfg;
    cfg.scheme = scheme;
    cfg.numCores = 16;
    cfg.bandwidthPerCore = 100e6; // 1600 MB/s total
    // Interleaving granularity matters for MORC: PriME-style lockstep
    // quanta (e.g. interleaveQuantum = 64) preserve per-core fill-burst
    // locality and raise MORC's multi-program ratio and bandwidth
    // savings, at the cost of coarser timing. The default here is
    // cycle-order interleaving; see EXPERIMENTS.md Figure 8 for both.
    cfg.interleaveQuantum = 1;
    cfg.ratioSampleInterval = std::max<std::uint64_t>(instr, 100'000);
    std::vector<trace::BenchmarkSpec> programs;
    for (const auto &name : mix.programs)
        programs.push_back(trace::resolveWorkload(name));
    sim::System sys(cfg, programs);
    return sys.run(instr, warmup);
}

} // namespace

int
main()
{
    using namespace morc;
    using namespace morc::bench;
    banner("Figure 8: multi-program (16 threads, shared LLC, 1600MB/s)",
           "MORC ~4x ratio avg, up to 7x (next best 1.75x); BW -20%; "
           "IPC up to +60% (S5); completion M3 +35%");

    // Multi-program runs cost 16x per instruction budget; scale down.
    const std::uint64_t instr = instrBudget() / 4;
    const std::uint64_t warmup = warmupBudget() / 4;

    const sim::Scheme schemes[] = {
        sim::Scheme::Uncompressed, sim::Scheme::Adaptive,
        sim::Scheme::Decoupled, sim::Scheme::Sc2, sim::Scheme::Morc};
    constexpr int kN = 5;

    std::printf("%-4s | ratio: %-23s | BW-red%%: %-23s | IPC+%%: %-23s | "
                "completion+%%\n",
                "mix", "A     D     S     M", "A     D     S     M",
                "A     D     S     M");
    std::vector<double> ratios[kN];
    for (const auto &mix : trace::table6Workloads()) {
        sim::RunResult r[kN];
        for (int i = 0; i < kN; i++)
            r[i] = runMix(schemes[i], mix, instr, warmup);
        std::printf("%-4s |", mix.name.c_str());
        for (int i = 1; i < kN; i++)
            std::printf(" %5.2f", r[i].compressionRatio);
        std::printf(" |");
        for (int i = 1; i < kN; i++) {
            std::printf(" %5.1f",
                        100.0 * (1.0 - r[i].gbPerBillionInstr() /
                                           r[0].gbPerBillionInstr()));
        }
        std::printf(" |");
        for (int i = 1; i < kN; i++) {
            std::printf(" %+5.1f",
                        100.0 * (r[i].gmeanIpc() / r[0].gmeanIpc() - 1.0));
        }
        std::printf(" |");
        for (int i = 1; i < kN; i++) {
            std::printf(" %+5.1f",
                        100.0 * (static_cast<double>(
                                     r[0].completionCycles) /
                                     static_cast<double>(
                                         r[i].completionCycles) -
                                 1.0));
        }
        std::printf("\n");
        std::fflush(stdout);
        for (int i = 0; i < kN; i++)
            ratios[i].push_back(r[i].compressionRatio);
    }
    std::printf("\n");
    for (int i = 1; i < kN; i++)
        printMeans(schemeName(schemes[i]), ratios[i]);
    return 0;
}
