/**
 * @file
 * Figure 9: memory-subsystem energy (compression engines included, CPU
 * cores excluded) — absolute Joules per scheme plus MORC's normalized
 * breakdown against the uncompressed baseline.
 */

#include <cstdio>

#include "common/bench_common.hh"

int
main()
{
    using namespace morc;
    using namespace morc::bench;
    banner("Figure 9: memory subsystem energy",
           "MORC -17% vs uncompressed; beats the 1MB Uncompressed8x "
           "baseline; decompression energy visible but small vs DRAM");

    const sim::Scheme schemes[] = {
        sim::Scheme::Uncompressed, sim::Scheme::Uncompressed8x,
        sim::Scheme::Adaptive, sim::Scheme::Decoupled, sim::Scheme::Sc2,
        sim::Scheme::Morc};
    constexpr int kN = 6;

    std::printf("%-10s | energy (mJ): %-41s | MORC breakdown (norm. to "
                "baseline total)\n",
                "bench", "Unc   Unc8x Adapt Decpl SC2   MORC");
    std::vector<double> norm[kN];
    for (const auto &spec : trace::spec2006()) {
        sim::RunResult r[kN];
        for (int i = 0; i < kN; i++)
            r[i] = runSingle(schemes[i], spec);
        const double base = r[0].energyBreakdown.total();
        std::printf("%-10s |", spec.name.c_str());
        for (int i = 0; i < kN; i++) {
            std::printf(" %5.2f", 1e3 * r[i].energyBreakdown.total());
            norm[i].push_back(r[i].energyBreakdown.total() / base);
        }
        const auto &b = r[5].energyBreakdown;
        std::printf(" | static %.2f dram %.2f sram %.2f comp %.3f "
                    "decomp %.3f\n",
                    b.staticJ / base, b.dramJ / base, b.sramJ / base,
                    b.compJ / base, b.decompJ / base);
        std::fflush(stdout);
    }
    std::printf("\nNormalized energy vs uncompressed (GMean):\n");
    for (int i = 0; i < kN; i++) {
        std::printf("%-14s %+6.1f%%\n", schemeName(schemes[i]),
                    100.0 * (stats::gmean(norm[i]) - 1.0));
    }
    return 0;
}
