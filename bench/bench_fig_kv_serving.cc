/**
 * @file
 * KV serving figure: MORC vs baselines as the hot tier of a
 * memcached-style service (4 tenants, >=1M keys, Zipf traffic).
 */

#include "common/figures.hh"

int
main(int argc, char **argv)
{
    return morc::bench::sweepMain(argc, argv, "kvserve");
}
