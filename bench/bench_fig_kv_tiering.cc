/**
 * @file
 * KV tiering figure: per-tier compression on the DRAM/SSD backing
 * store behind the service's front cache.
 */

#include "common/figures.hh"

int
main(int argc, char **argv)
{
    return morc::bench::sweepMain(argc, argv, "kvtier");
}
