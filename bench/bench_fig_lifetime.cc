/**
 * @file
 * Lifetime figure: NVM wear and years-to-failure ranking of every
 * scheme in the arena under the L2C2-style endurance model.
 */

#include "common/figures.hh"

int
main(int argc, char **argv)
{
    return morc::bench::sweepMain(argc, argv, "lifetime");
}
