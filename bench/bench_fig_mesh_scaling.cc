/**
 * @file
 * Thin wrapper: runs the "mesh" sweep from the shared figure registry
 * (see common/figures.cc) — tiled-substrate scaling from 1 to 64 tiles
 * under a fixed total memory bandwidth. Accepts --jobs N and --out DIR.
 */

#include "common/figures.hh"

int
main(int argc, char **argv)
{
    return morc::bench::sweepMain(argc, argv, "mesh");
}
