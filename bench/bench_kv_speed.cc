/**
 * @file
 * KV service throughput microbenchmark (google-benchmark).
 *
 * BM_KvServe* measure end-to-end requests/s through the full service
 * stack (generator -> front Llc -> tiered store -> value synthesis);
 * BM_FpcLine is the machine-speed reference tools/perf_gate.py uses to
 * normalize away host differences before gating BM_Kv* against
 * bench/baselines/BENCH_kv.json.
 */

#include <benchmark/benchmark.h>

#include "compress/fpc.hh"
#include "kv/service.hh"
#include "trace/value_model.hh"

namespace {

using namespace morc;

std::vector<CacheLine>
sampleLines(std::size_t n)
{
    trace::DataProfile p;
    p.zeroWordFrac = 0.25;
    p.zeroHalfFrac = 0.15;
    p.poolWordFrac = 0.4;
    p.chunk256Frac = 0.2;
    p.chunk128Frac = 0.2;
    trace::ValueModel vm(p);
    std::vector<CacheLine> lines;
    for (std::size_t i = 0; i < n; i++)
        lines.push_back(vm.line(i, 0));
    return lines;
}

void
BM_FpcLine(benchmark::State &state)
{
    const auto lines = sampleLines(4096);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(comp::Fpc::lineBits(lines[i]));
        i = (i + 1) % lines.size();
    }
    state.SetBytesProcessed(state.iterations() * kLineSize);
}
BENCHMARK(BM_FpcLine)->MinTime(2.0);

/** A small 2-tenant service so construction stays cheap enough to run
 *  per benchmark repetition family. */
kv::ServiceConfig
speedConfig(sim::Scheme scheme)
{
    kv::ServiceConfig cfg;
    cfg.scheme = scheme;
    cfg.frontBytes = 256 << 10;
    cfg.tier.dramBytes = 1 << 20;
    cfg.tier.ssdBytes = 4 << 20;
    // No working-set drift: iteration counts differ between runs, and
    // a drifting hot set would make the measured stream
    // non-stationary (the perf gate would see noise, not regressions).
    cfg.tenants.push_back({"hot", 65536, 1.1, 3, 0.1, 0, 0});
    cfg.tenants.push_back({"cold", 65536, 0.7, 1, 0.3, 0, 0});
    return cfg;
}

void
runService(benchmark::State &state, sim::Scheme scheme)
{
    kv::Service svc(speedConfig(scheme));
    svc.run(20'000); // warm the tiers past the cold-start transient
    for (auto _ : state)
        benchmark::DoNotOptimize(svc.step().latency);
    state.SetItemsProcessed(state.iterations());
}

// Longer measurement window than the default: one step is a whole
// request through the service stack, so per-iteration times are in
// microseconds and short windows are dominated by scheduler jitter.
void
BM_KvServeMorc(benchmark::State &state)
{
    runService(state, sim::Scheme::Morc);
}
BENCHMARK(BM_KvServeMorc)->MinTime(2.0);

void
BM_KvServeUncompressed(benchmark::State &state)
{
    runService(state, sim::Scheme::Uncompressed);
}
BENCHMARK(BM_KvServeUncompressed)->MinTime(2.0);

} // namespace

BENCHMARK_MAIN();
