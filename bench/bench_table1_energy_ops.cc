/**
 * @file
 * Table 1: energy of on-chip and off-chip operations on 64 b of data.
 * These are the published constants the energy model embeds; the bench
 * prints them with the paper's "Scale" column recomputed.
 */

#include <cstdio>

#include "energy/energy.hh"

int
main()
{
    using namespace morc;
    std::printf("Table 1: Energy of on-chip and off-chip operations "
                "(64b of data)\n");
    std::printf("%-40s %12s %10s\n", "Operation", "Energy", "Scale");
    const auto &rows = energy::table1();
    const double base = rows.front().joules;
    for (const auto &r : rows) {
        char buf[32];
        if (r.joules < 1e-9)
            std::snprintf(buf, sizeof(buf), "%.2fpJ", r.joules * 1e12);
        else
            std::snprintf(buf, sizeof(buf), "%.2fnJ", r.joules * 1e9);
        std::printf("%-40s %12s %9.0fx\n", r.operation, buf,
                    r.joules / base);
    }
    std::printf("\nPaper scale column: 1x / 2x / 22.5x / 185x / 1250x / "
                "4675x\n");
    return 0;
}
