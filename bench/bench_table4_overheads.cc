/**
 * @file
 * Table 4: storage overheads of the compared schemes, normalized to
 * cache capacity (Section 3.3 analytical model).
 */

#include <cstdio>

#include "cache/overheads.hh"

int
main()
{
    using namespace morc::cache;
    std::printf("Table 4: Overheads of compression schemes, normalized "
                "to cache capacity\n");
    std::printf("(128KB cache, 40b tags, 16-way sets for prior work, "
                "512B logs, 8x LMT)\n\n");
    std::printf("%-12s %9s %9s %11s %9s %9s\n", "Scheme", "Tags",
                "Metadata", "Tags+Meta", "Engine", "Dict");
    for (const auto &r : table4Overheads()) {
        char engine[16];
        if (r.compEngineMm2 > 0)
            std::snprintf(engine, sizeof(engine), "%.2fmm2",
                          r.compEngineMm2);
        else
            std::snprintf(engine, sizeof(engine), "NoData");
        char dict[16];
        if (r.dictBytes >= 1024)
            std::snprintf(dict, sizeof(dict), "%uKB", r.dictBytes / 1024);
        else
            std::snprintf(dict, sizeof(dict), "%uB", r.dictBytes);
        std::printf("%-12s %8.2f%% %8.2f%% %10.2f%% %9s %9s\n",
                    r.scheme.c_str(), 100 * r.extraTagsFrac,
                    100 * r.metadataFrac, 100 * r.totalFrac, engine,
                    dict);
    }
    std::printf("\nPaper row 'Tags+Meta': 18.74%% / 8.59%% / 33.58%% / "
                "25.00%% / 17.18%%\n");
    return 0;
}
