/**
 * @file
 * Touché cache throughput microbenchmark (google-benchmark).
 *
 * BM_Touche* measure lookups and fills through the signature-tag path
 * (superblock match -> signature match -> decompress-and-verify), the
 * new per-access hot loop the lifetime figure leans on; BM_FpcLine is
 * the machine-speed reference tools/perf_gate.py uses to normalize
 * away host differences before gating BM_Touche* against
 * bench/baselines/BENCH_touche.json.
 */

#include <benchmark/benchmark.h>

#include "cache/touche.hh"
#include "compress/fpc.hh"
#include "trace/value_model.hh"

namespace {

using namespace morc;

std::vector<CacheLine>
sampleLines(std::size_t n)
{
    trace::DataProfile p;
    p.zeroWordFrac = 0.25;
    p.zeroHalfFrac = 0.15;
    p.poolWordFrac = 0.4;
    p.chunk256Frac = 0.2;
    p.chunk128Frac = 0.2;
    trace::ValueModel vm(p);
    std::vector<CacheLine> lines;
    for (std::size_t i = 0; i < n; i++)
        lines.push_back(vm.line(i, 0));
    return lines;
}

void
BM_FpcLine(benchmark::State &state)
{
    const auto lines = sampleLines(4096);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(comp::Fpc::lineBits(lines[i]));
        i = (i + 1) % lines.size();
    }
    state.SetBytesProcessed(state.iterations() * kLineSize);
}
BENCHMARK(BM_FpcLine)->MinTime(2.0);

/** A warmed 128 KB Touché cache over a 4x-capacity address footprint:
 *  every superblock holds neighbors, so lookups exercise the signature
 *  compare and fills exercise eviction + re-compaction. */
cache::ToucheCache
warmedCache(const std::vector<CacheLine> &lines)
{
    cache::ToucheCache::Config cfg;
    cache::ToucheCache c(cfg);
    const std::size_t footprint = 4 * c.capacityBytes() / kLineSize;
    for (std::size_t i = 0; i < footprint; i++)
        c.insert(static_cast<Addr>(i) * kLineSize,
                 lines[i % lines.size()], false);
    return c;
}

void
BM_ToucheRead(benchmark::State &state)
{
    const auto lines = sampleLines(4096);
    cache::ToucheCache c = warmedCache(lines);
    const std::size_t footprint = 4 * c.capacityBytes() / kLineSize;
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            c.read(static_cast<Addr>(i) * kLineSize).hit);
        i = (i + 7) % footprint; // stride past the superblock span
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ToucheRead)->MinTime(2.0);

void
BM_ToucheInsert(benchmark::State &state)
{
    const auto lines = sampleLines(4096);
    cache::ToucheCache c = warmedCache(lines);
    const std::size_t footprint = 4 * c.capacityBytes() / kLineSize;
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            c.insert(static_cast<Addr>(i) * kLineSize,
                     lines[(i * 31) % lines.size()], false)
                .linesCompressed);
        i = (i + 7) % footprint;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ToucheInsert)->MinTime(2.0);

} // namespace

BENCHMARK_MAIN();
