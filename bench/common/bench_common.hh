/**
 * @file
 * Shared harness for the per-figure/per-table benchmark binaries.
 *
 * Every binary regenerates one table or figure of the paper. Output is
 * plain text: a header citing what the paper reports, then our measured
 * rows/series in the same structure. Instruction budgets default to
 * short-but-stable runs and can be scaled with MORC_BENCH_INSTR and
 * MORC_BENCH_WARMUP (instructions per core).
 */

#ifndef MORC_BENCH_COMMON_HH
#define MORC_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sim/system.hh"
#include "stats/summary.hh"
#include "trace/workload.hh"

namespace morc {
namespace bench {

/** Per-core measured instructions (env MORC_BENCH_INSTR). */
inline std::uint64_t
instrBudget(std::uint64_t fallback = 800'000)
{
    if (const char *s = std::getenv("MORC_BENCH_INSTR"))
        return std::strtoull(s, nullptr, 10);
    return fallback;
}

/** Per-core warm-up instructions (env MORC_BENCH_WARMUP). */
inline std::uint64_t
warmupBudget(std::uint64_t fallback = 1'600'000)
{
    if (const char *s = std::getenv("MORC_BENCH_WARMUP"))
        return std::strtoull(s, nullptr, 10);
    return fallback;
}

/** Run one single-program configuration. */
inline sim::RunResult
runSingle(sim::Scheme scheme, const trace::BenchmarkSpec &spec,
          double bandwidth_per_core = 100e6,
          std::uint64_t llc_bytes = 128 * 1024,
          const core::MorcConfig *morc = nullptr)
{
    sim::SystemConfig cfg;
    cfg.scheme = scheme;
    cfg.bandwidthPerCore = bandwidth_per_core;
    cfg.llcBytesPerCore = llc_bytes;
    cfg.ratioSampleInterval = std::max<std::uint64_t>(
        instrBudget() / 8, 50'000);
    if (morc) {
        cfg.morc = *morc;
        cfg.useMorcOverride = true;
    }
    sim::System sys(cfg, {spec});
    return sys.run(instrBudget(), warmupBudget());
}

/** Print the standard two-line banner. */
inline void
banner(const char *what, const char *paper_expectation)
{
    std::printf("==================================================="
                "=====================\n");
    std::printf("%s\n", what);
    std::printf("Paper reports: %s\n", paper_expectation);
    std::printf("==================================================="
                "=====================\n");
}

/** Append AMean and GMean rows for a per-benchmark series. */
inline void
printMeans(const char *label, const std::vector<double> &v)
{
    std::printf("%-12s AMean %6.2f  GMean %6.2f\n", label,
                stats::amean(v), stats::gmean(v));
}

} // namespace bench
} // namespace morc

#endif // MORC_BENCH_COMMON_HH
