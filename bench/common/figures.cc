#include "common/figures.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <stdexcept>

#include "cache/overheads.hh"
#include "common/bench_common.hh"
#include "compress/bdi.hh"
#include "compress/cpack.hh"
#include "compress/fpc.hh"
#include "compress/lbe.hh"
#include "compress/lzss.hh"
#include "compress/tagcodec.hh"
#include "core/morc.hh"
#include "energy/energy.hh"
#include "kv/service.hh"
#include "snapshot/snapshot.hh"
#include "sweep/journal.hh"
#include "telemetry/tracer.hh"
#include "util/rng.hh"
#include "util/sync.hh"

namespace morc {
namespace bench {

namespace {

using stats::Report;
using stats::RunRecord;
using sweep::Task;

// ------------------------------------------------------------------
// Shared task plumbing
// ------------------------------------------------------------------

/** Telemetry requested via --telemetry-epoch / --trace-out. Set once by
 *  sweepMain before any task runs, then only read by (parallel) tasks,
 *  so plain globals are race-free. */
std::uint64_t g_telemetryEpoch = 0;
bool g_traceEvents = false;

/** Warm-snapshot directory (--checkpoint-dir DIR => DIR/warm), empty =
 *  warm checkpointing off. Set once before any task runs. */
std::string g_warmDir;

/**
 * Canonical description of everything that determines a warmed-up
 * system: the full effective config, the programs, and the warm-up
 * budget. Hashed (stableSeed) into the warm-snapshot filename, so
 * identical warm-up phases — across figures or across invocations —
 * simulate once and restore thereafter. A hash collision is harmless:
 * System::restore() validates the complete config fingerprint inside
 * the snapshot and the caller falls back to a cold warm-up.
 */
std::string
warmFingerprint(const sim::SystemConfig &cfg,
                const std::vector<trace::BenchmarkSpec> &programs,
                std::uint64_t warmup)
{
    std::string f;
    const auto add = [&f](const std::string &part) {
        f += part;
        f += '\x1f';
    };
    const auto u = [&](std::uint64_t v) { add(std::to_string(v)); };
    const auto d = [&](double v) {
        char buf[40];
        std::snprintf(buf, sizeof buf, "%.17g", v);
        add(buf);
    };
    u(static_cast<std::uint64_t>(cfg.scheme));
    u(cfg.numCores);
    u(cfg.llcBytesPerCore);
    d(cfg.bandwidthPerCore);
    d(cfg.clockHz);
    u(cfg.l1Bytes);
    u(cfg.l1Ways);
    u(cfg.l1Latency);
    u(cfg.llcLatency);
    u(cfg.dramCycles);
    u(cfg.threadsPerCore);
    u(cfg.interleaveQuantum);
    u(cfg.inclusiveWriteFills ? 1 : 0);
    u(cfg.ratioSampleInterval);
    u(cfg.checkFunctional ? 1 : 0);
    u(cfg.useMorcOverride ? 1 : 0);
    if (cfg.useMorcOverride) {
        u(cfg.morc.capacityBytes);
        u(cfg.morc.logBytes);
        u(cfg.morc.activeLogs);
        u(cfg.morc.lmtFactor);
        u(cfg.morc.lmtWays);
        u(cfg.morc.mergedTags ? 1 : 0);
        d(cfg.morc.tagStoreFactor);
        u(cfg.morc.tagBases);
        d(cfg.morc.fudge);
        u(cfg.morc.compressionEnabled ? 1 : 0);
        u(cfg.morc.unlimitedMeta ? 1 : 0);
        u(cfg.morc.decompressBytesPerCycle);
        u(cfg.morc.tagsPerCycle);
        u(cfg.morc.parallelTagData ? 1 : 0);
    }
    u(cfg.useMesh ? 1 : 0);
    if (cfg.useMesh) {
        u(cfg.meshCfg.width);
        u(cfg.meshCfg.height);
        u(cfg.meshCfg.memControllers);
    }
    u(cfg.telemetryEpoch);
    u(cfg.telemetryMaxSamples);
    u(cfg.traceEvents ? 1 : 0);
    u(cfg.traceCapacity);
    u(cfg.writebackBurstThreshold);
    u(cfg.nocStallThreshold);
    for (const stats::Histogram *h :
         {cfg.decompressedBytesHistogram, cfg.hitLatencyHistogram}) {
        if (!h) {
            add("-");
            continue;
        }
        for (std::uint64_t b : h->bounds())
            u(b);
        add(";");
    }
    for (const auto &p : programs)
        add(p.name);
    u(warmup);
    return f;
}

/** One mutex per warm fingerprint, so concurrent tasks that share a
 *  warm-up phase simulate it exactly once; everyone else restores. The
 *  map only grows and node references are stable, so the returned
 *  reference outlives the master lock. */
sync::Mutex &
warmMutex(const std::string &fingerprint)
{
    static sync::Mutex master;
    static std::map<std::string, sync::Mutex> locks;
    sync::LockGuard lock(master);
    return locks[fingerprint];
}

/**
 * Warm-up via the snapshot cache: restore DIR/warm/<hash>.morcsnp when
 * present, else simulate the warm-up once and save it. Any rejected or
 * unwritable snapshot degrades to a cold warm-up — never an abort.
 */
void
warmViaCheckpoint(std::unique_ptr<sim::System> &sys,
                  const sim::SystemConfig &cfg,
                  const std::vector<trace::BenchmarkSpec> &programs,
                  std::uint64_t warmup)
{
    const std::string fp = warmFingerprint(cfg, programs, warmup);
    char name[32];
    std::snprintf(name, sizeof name, "%016llx.morcsnp",
                  static_cast<unsigned long long>(sweep::stableSeed(fp)));
    const std::string path = g_warmDir + "/" + name;

    sync::LockGuard lock(warmMutex(fp));
    std::error_code ec;
    if (std::filesystem::exists(path, ec)) {
        std::string err;
        if (sys->restore(path, &err))
            return;
        std::fprintf(stderr,
                     "[checkpoint] warm snapshot %s rejected (%s); "
                     "cold warm-up\n",
                     path.c_str(), err.c_str());
        // The failed restore may have partially written the system and
        // the caller-owned histograms: rebuild both from scratch.
        if (cfg.decompressedBytesHistogram)
            cfg.decompressedBytesHistogram->clear();
        if (cfg.hitLatencyHistogram)
            cfg.hitLatencyHistogram->clear();
        sys = std::make_unique<sim::System>(cfg, programs);
    }
    sys->warmup(warmup);
    std::string err;
    if (!sys->save(path, &err)) {
        std::fprintf(stderr,
                     "[checkpoint] cannot save warm snapshot %s (%s)\n",
                     path.c_str(), err.c_str());
    }
}

/** System::run() routed through the warm-snapshot cache when enabled.
 *  @p cfg and @p programs must be exactly what @p sys was built from. */
sim::RunResult
runSystem(std::unique_ptr<sim::System> &sys,
          const sim::SystemConfig &cfg,
          const std::vector<trace::BenchmarkSpec> &programs,
          std::uint64_t instr, std::uint64_t warmup)
{
    if (g_warmDir.empty() || warmup == 0)
        return sys->run(instr, warmup);
    warmViaCheckpoint(sys, cfg, programs, warmup);
    return sys->measure(instr);
}

/** Join key parts with '/'. */
std::string
k(std::initializer_list<std::string> parts)
{
    std::string out;
    for (const auto &p : parts) {
        if (!out.empty())
            out += '/';
        out += p;
    }
    return out;
}

/** Run one System and flatten the RunResult into the standard metrics. */
RunRecord
simRecord(const sim::SystemConfig &cfg,
          const std::vector<trace::BenchmarkSpec> &programs,
          std::uint64_t instr, std::uint64_t warmup)
{
    sim::SystemConfig effective = cfg;
    effective.telemetryEpoch = g_telemetryEpoch;
    effective.traceEvents = g_traceEvents;
    auto sys = std::make_unique<sim::System>(effective, programs);
    const sim::RunResult r =
        runSystem(sys, effective, programs, instr, warmup);
    RunRecord rec;
    rec.metric("ratio", r.compressionRatio);
    rec.metric("gb_per_binstr", r.gbPerBillionInstr());
    rec.metric("ipc", r.cores[0].ipc());
    rec.metric("throughput", r.cores[0].throughput());
    rec.metric("mean_ipc", r.meanIpc());
    rec.metric("gmean_ipc", r.gmeanIpc());
    rec.metric("mean_throughput", r.meanThroughput());
    rec.metric("completion_cycles",
               static_cast<double>(r.completionCycles));
    rec.metric("mem_reads", static_cast<double>(r.memReads));
    rec.metric("mem_writes", static_cast<double>(r.memWrites));
    rec.metric("instructions",
               static_cast<double>(r.totalInstructions));
    rec.metric("invalid_frac", r.invalidLineFraction);
    const auto &e = r.energyBreakdown;
    rec.metric("energy_total", e.total());
    rec.metric("energy_static", e.staticJ);
    rec.metric("energy_dram", e.dramJ);
    rec.metric("energy_sram", e.sramJ);
    rec.metric("energy_comp", e.compJ);
    rec.metric("energy_decomp", e.decompJ);
    rec.metric("log_flushes", static_cast<double>(r.llcStats.logFlushes));
    rec.metric("lmt_conflict_evicts",
               static_cast<double>(r.llcStats.lmtConflictEvicts));
    rec.metric("llc_hit_rate",
               r.llcStats.reads == 0
                   ? 0.0
                   : static_cast<double>(r.llcStats.readHits) /
                         static_cast<double>(r.llcStats.reads));
    rec.lifetimePoint("cell_bits_written",
                      static_cast<double>(r.llcStats.cellBitsWritten));
    rec.lifetimePoint("cell_bit_flips",
                      static_cast<double>(r.llcStats.cellBitFlips));
    rec.lifetimePoint("write_bits_per_sec", r.lifetime.writeBitsPerSec);
    rec.lifetimePoint("flips_per_cell_per_sec",
                      r.lifetime.flipsPerCellPerSec);
    rec.lifetimePoint("imbalance", r.lifetime.imbalance);
    rec.lifetimePoint("set_variance", r.lifetime.setVariance);
    rec.lifetimePoint("years", r.lifetime.years);
    if (r.meshed) {
        rec.metric("noc_messages", static_cast<double>(r.nocMessages));
        rec.metric("noc_mean_hops", r.nocMeanHops);
        rec.histograms.emplace_back("noc_hops", r.nocHopHist);
        rec.histograms.emplace_back("noc_queue_cycles", r.nocQueueHist);
    }
    rec.series = r.series;
    rec.trace = r.trace;
    return rec;
}

/** Single-program task with the Figure 6 defaults. */
Task
singleTask(std::string key, sim::Scheme scheme, trace::BenchmarkSpec spec,
           double bw_per_core = 100e6,
           std::uint64_t llc_bytes = 128 * 1024,
           core::MorcConfig *morc = nullptr, unsigned warmup_scale = 1)
{
    core::MorcConfig morcCopy;
    const bool haveMorc = morc != nullptr;
    if (haveMorc)
        morcCopy = *morc;
    return Task{std::move(key),
                [=](std::uint64_t) -> RunRecord {
                    sim::SystemConfig cfg;
                    cfg.scheme = scheme;
                    cfg.bandwidthPerCore = bw_per_core;
                    cfg.llcBytesPerCore = llc_bytes;
                    cfg.ratioSampleInterval = std::max<std::uint64_t>(
                        instrBudget() / 8, 50'000);
                    if (haveMorc) {
                        cfg.morc = morcCopy;
                        cfg.useMorcOverride = true;
                    }
                    RunRecord rec =
                        simRecord(cfg, {spec}, instrBudget(),
                                  warmupBudget() * warmup_scale);
                    rec.label("workload", spec.name);
                    rec.label("scheme", schemeName(scheme));
                    return rec;
                }};
}

const sim::Scheme kCompared[] = {
    sim::Scheme::Uncompressed, sim::Scheme::Adaptive,
    sim::Scheme::Decoupled, sim::Scheme::Sc2, sim::Scheme::Morc};

void
banner(const Figure &fig)
{
    std::printf("==================================================="
                "=====================\n");
    std::printf("%s\n", fig.title);
    std::printf("Paper reports: %s\n", fig.paperClaim);
    std::printf("==================================================="
                "=====================\n");
}

// ------------------------------------------------------------------
// Figure 2: oracle intra- vs inter-line compression limits
// ------------------------------------------------------------------

std::vector<Task>
fig2Tasks()
{
    std::vector<Task> tasks;
    for (const auto &spec : trace::spec2006()) {
        for (sim::Scheme s :
             {sim::Scheme::Uncompressed, sim::Scheme::OracleIntra,
              sim::Scheme::OracleInter}) {
            tasks.push_back(
                singleTask(k({"fig2", spec.name, schemeName(s)}), s,
                           spec));
        }
    }
    return tasks;
}

void
fig2Present(const Report &rep)
{
    std::vector<double> intra_r, inter_r, intra_bw, inter_bw;
    std::printf("%-10s %12s %12s %10s %10s\n", "bench", "intra-ratio",
                "inter-ratio", "intra-BW%", "inter-BW%");
    for (const auto &spec : trace::spec2006()) {
        const double bw0 = rep.metric(
            k({"fig2", spec.name, "Uncompressed"}), "gb_per_binstr");
        const auto *intra =
            rep.find(k({"fig2", spec.name, "Oracle-Intra"}));
        const auto *inter =
            rep.find(k({"fig2", spec.name, "Oracle-Inter"}));
        const double bw_intra =
            100.0 * (1.0 - intra->get("gb_per_binstr") / bw0);
        const double bw_inter =
            100.0 * (1.0 - inter->get("gb_per_binstr") / bw0);
        intra_r.push_back(intra->get("ratio"));
        inter_r.push_back(inter->get("ratio"));
        intra_bw.push_back(bw_intra);
        inter_bw.push_back(bw_inter);
        std::printf("%-10s %12.2f %12.2f %9.1f%% %9.1f%%\n",
                    spec.name.c_str(), intra->get("ratio"),
                    inter->get("ratio"), bw_intra, bw_inter);
    }
    printMeans("intra ratio", intra_r);
    printMeans("inter ratio", inter_r);
    printMeans("intra BW%", intra_bw);
    printMeans("inter BW%", inter_bw);
}

// ------------------------------------------------------------------
// Figure 6: single-program evaluation over the 54 workloads
// ------------------------------------------------------------------

std::vector<Task>
fig6Tasks()
{
    std::vector<Task> tasks;
    for (const auto &spec : trace::figure6Workloads())
        for (sim::Scheme s : kCompared)
            tasks.push_back(singleTask(
                k({"fig6", spec.name, schemeName(s)}), s, spec));
    return tasks;
}

void
fig6Present(const Report &rep)
{
    constexpr int kN = 5;
    std::vector<double> ratio[kN], gb[kN], ipc_imp[kN], thr_imp[kN];
    std::printf("%-12s | ratio: %-26s | GB/Binstr: %-32s | IPC+%% (A/D/S/M) "
                "| THR+%%\n",
                "workload", "A     D     S     M", "U     A     D     S "
                "    M");
    for (const auto &spec : trace::figure6Workloads()) {
        const RunRecord *r[kN];
        for (int i = 0; i < kN; i++)
            r[i] = rep.find(
                k({"fig6", spec.name, schemeName(kCompared[i])}));
        const double base_ipc = r[0]->get("ipc");
        const double base_thr = r[0]->get("throughput");
        std::printf("%-12s |", spec.name.c_str());
        for (int i = 1; i < kN; i++)
            std::printf(" %5.2f", r[i]->get("ratio"));
        std::printf(" |");
        for (int i = 0; i < kN; i++)
            std::printf(" %5.2f", r[i]->get("gb_per_binstr"));
        std::printf(" |");
        for (int i = 1; i < kN; i++)
            std::printf(" %+5.0f",
                        100.0 * (r[i]->get("ipc") / base_ipc - 1.0));
        std::printf(" |");
        for (int i = 1; i < kN; i++)
            std::printf(" %+5.0f",
                        100.0 *
                            (r[i]->get("throughput") / base_thr - 1.0));
        std::printf("\n");
        for (int i = 0; i < kN; i++) {
            ratio[i].push_back(r[i]->get("ratio"));
            gb[i].push_back(r[i]->get("gb_per_binstr"));
            ipc_imp[i].push_back(r[i]->get("ipc") / base_ipc);
            thr_imp[i].push_back(r[i]->get("throughput") / base_thr);
        }
    }
    std::printf("\nSummary (54 workloads):\n");
    for (int i = 0; i < kN; i++) {
        double gb_sum = 0, gb_base = 0;
        for (std::size_t j = 0; j < gb[i].size(); j++) {
            gb_sum += gb[i][j];
            gb_base += gb[0][j];
        }
        std::printf("%-14s ratio AMean %5.2f GMean %5.2f | BW reduction "
                    "%+6.1f%% | IPC %+6.1f%% | throughput %+6.1f%%\n",
                    schemeName(kCompared[i]), stats::amean(ratio[i]),
                    stats::gmean(ratio[i]),
                    100.0 * (1.0 - gb_sum / gb_base),
                    100.0 * (stats::gmean(ipc_imp[i]) - 1.0),
                    100.0 * (stats::gmean(thr_imp[i]) - 1.0));
    }
}

// ------------------------------------------------------------------
// Figure 7: LBE symbol usage distribution
// ------------------------------------------------------------------

std::vector<Task>
fig7Tasks()
{
    std::vector<Task> tasks;
    for (const auto &spec : trace::spec2006()) {
        tasks.push_back(Task{
            k({"fig7", spec.name}), [spec](std::uint64_t) -> RunRecord {
                sim::SystemConfig cfg;
                cfg.scheme = sim::Scheme::Morc;
                cfg.ratioSampleInterval = instrBudget();
                const std::vector<trace::BenchmarkSpec> progs{spec};
                auto sys = std::make_unique<sim::System>(cfg, progs);
                runSystem(sys, cfg, progs, instrBudget(),
                          warmupBudget());
                auto *lc = dynamic_cast<core::LogCache *>(&sys->llc());
                const comp::LbeStats st = lc->lbeStats();

                constexpr int n =
                    static_cast<int>(comp::LbeSymbol::NumSymbols);
                double total = 0, zero = 0, weighted[n];
                for (int s = 0; s < n; s++) {
                    const auto sym = static_cast<comp::LbeSymbol>(s);
                    weighted[s] = static_cast<double>(st.count[s]) *
                                  comp::LbeStats::dataBytes(sym);
                    total += weighted[s];
                    zero += static_cast<double>(st.zeroCount[s]) *
                            comp::LbeStats::dataBytes(sym);
                }
                RunRecord rec;
                rec.label("workload", spec.name);
                for (int s = 0; s < n; s++) {
                    const auto sym = static_cast<comp::LbeSymbol>(s);
                    rec.metric(std::string("sym_") +
                                   comp::LbeStats::name(sym),
                               total == 0 ? 0.0 : weighted[s] / total);
                }
                rec.metric("zero_frac",
                           total == 0 ? 0.0 : zero / total);
                return rec;
            }});
    }
    return tasks;
}

void
fig7Present(const Report &rep)
{
    constexpr int n = static_cast<int>(comp::LbeSymbol::NumSymbols);
    std::printf("%-10s", "bench");
    for (int s = 0; s < n; s++)
        std::printf(" %6s",
                    comp::LbeStats::name(static_cast<comp::LbeSymbol>(s)));
    std::printf("   zero%%\n");
    for (const auto &spec : trace::spec2006()) {
        const auto *r = rep.find(k({"fig7", spec.name}));
        std::printf("%-10s", spec.name.c_str());
        for (int s = 0; s < n; s++) {
            std::printf(" %5.1f%%",
                        100.0 * r->get(std::string("sym_") +
                                       comp::LbeStats::name(
                                           static_cast<comp::LbeSymbol>(
                                               s))));
        }
        std::printf("  %5.1f%%\n", 100.0 * r->get("zero_frac"));
    }
}

// ------------------------------------------------------------------
// Figure 8: multi-program mixes
// ------------------------------------------------------------------

std::vector<Task>
fig8Tasks()
{
    std::vector<Task> tasks;
    for (const auto &mix : trace::table6Workloads()) {
        for (sim::Scheme s : kCompared) {
            tasks.push_back(Task{
                k({"fig8", mix.name, schemeName(s)}),
                [mix, s](std::uint64_t) -> RunRecord {
                    // Multi-program runs cost 16x per instruction
                    // budget; scale down as the serial bench did.
                    const std::uint64_t instr = instrBudget() / 4;
                    const std::uint64_t warmup = warmupBudget() / 4;
                    sim::SystemConfig cfg;
                    cfg.scheme = s;
                    cfg.numCores = 16;
                    cfg.bandwidthPerCore = 100e6; // 1600 MB/s total
                    cfg.interleaveQuantum = 1;
                    cfg.ratioSampleInterval =
                        std::max<std::uint64_t>(instr, 100'000);
                    std::vector<trace::BenchmarkSpec> programs;
                    for (const auto &name : mix.programs)
                        programs.push_back(
                            trace::resolveWorkload(name));
                    RunRecord rec =
                        simRecord(cfg, programs, instr, warmup);
                    rec.label("mix", mix.name);
                    rec.label("scheme", schemeName(s));
                    return rec;
                }});
        }
    }
    return tasks;
}

void
fig8Present(const Report &rep)
{
    constexpr int kN = 5;
    std::printf("%-4s | ratio: %-23s | BW-red%%: %-23s | IPC+%%: %-23s | "
                "completion+%%\n",
                "mix", "A     D     S     M", "A     D     S     M",
                "A     D     S     M");
    std::vector<double> ratios[kN];
    for (const auto &mix : trace::table6Workloads()) {
        const RunRecord *r[kN];
        for (int i = 0; i < kN; i++)
            r[i] = rep.find(
                k({"fig8", mix.name, schemeName(kCompared[i])}));
        std::printf("%-4s |", mix.name.c_str());
        for (int i = 1; i < kN; i++)
            std::printf(" %5.2f", r[i]->get("ratio"));
        std::printf(" |");
        for (int i = 1; i < kN; i++)
            std::printf(" %5.1f",
                        100.0 * (1.0 - r[i]->get("gb_per_binstr") /
                                           r[0]->get("gb_per_binstr")));
        std::printf(" |");
        for (int i = 1; i < kN; i++)
            std::printf(" %+5.1f",
                        100.0 * (r[i]->get("gmean_ipc") /
                                     r[0]->get("gmean_ipc") -
                                 1.0));
        std::printf(" |");
        for (int i = 1; i < kN; i++)
            std::printf(" %+5.1f",
                        100.0 * (r[0]->get("completion_cycles") /
                                     r[i]->get("completion_cycles") -
                                 1.0));
        std::printf("\n");
        for (int i = 0; i < kN; i++)
            ratios[i].push_back(r[i]->get("ratio"));
    }
    std::printf("\n");
    for (int i = 1; i < kN; i++)
        printMeans(schemeName(kCompared[i]), ratios[i]);
}

// ------------------------------------------------------------------
// Figure 9: memory-subsystem energy
// ------------------------------------------------------------------

const sim::Scheme kEnergySchemes[] = {
    sim::Scheme::Uncompressed, sim::Scheme::Uncompressed8x,
    sim::Scheme::Adaptive, sim::Scheme::Decoupled, sim::Scheme::Sc2,
    sim::Scheme::Morc};

std::vector<Task>
fig9Tasks()
{
    std::vector<Task> tasks;
    for (const auto &spec : trace::spec2006())
        for (sim::Scheme s : kEnergySchemes)
            tasks.push_back(singleTask(
                k({"fig9", spec.name, schemeName(s)}), s, spec));
    return tasks;
}

void
fig9Present(const Report &rep)
{
    constexpr int kN = 6;
    std::printf("%-10s | energy (mJ): %-41s | MORC breakdown (norm. to "
                "baseline total)\n",
                "bench", "Unc   Unc8x Adapt Decpl SC2   MORC");
    std::vector<double> norm[kN];
    for (const auto &spec : trace::spec2006()) {
        const RunRecord *r[kN];
        for (int i = 0; i < kN; i++)
            r[i] = rep.find(
                k({"fig9", spec.name, schemeName(kEnergySchemes[i])}));
        const double base = r[0]->get("energy_total");
        std::printf("%-10s |", spec.name.c_str());
        for (int i = 0; i < kN; i++) {
            std::printf(" %5.2f", 1e3 * r[i]->get("energy_total"));
            norm[i].push_back(r[i]->get("energy_total") / base);
        }
        const RunRecord *m = r[5];
        std::printf(" | static %.2f dram %.2f sram %.2f comp %.3f "
                    "decomp %.3f\n",
                    m->get("energy_static") / base,
                    m->get("energy_dram") / base,
                    m->get("energy_sram") / base,
                    m->get("energy_comp") / base,
                    m->get("energy_decomp") / base);
    }
    std::printf("\nNormalized energy vs uncompressed (GMean):\n");
    for (int i = 0; i < kN; i++)
        std::printf("%-14s %+6.1f%%\n", schemeName(kEnergySchemes[i]),
                    100.0 * (stats::gmean(norm[i]) - 1.0));
}

// ------------------------------------------------------------------
// Figure 10: per-thread bandwidth sensitivity
// ------------------------------------------------------------------

const double kBandwidths[] = {1600e6, 400e6, 100e6, 12.5e6};

std::string
bwLabel(double bw)
{
    char label[32];
    std::snprintf(label, sizeof(label), "%.1fMB/s", bw / 1e6);
    return label;
}

std::vector<Task>
fig10Tasks()
{
    std::vector<Task> tasks;
    for (double bw : kBandwidths)
        for (const auto &spec : trace::spec2006())
            for (sim::Scheme s : kCompared)
                tasks.push_back(singleTask(
                    k({"fig10", bwLabel(bw), spec.name, schemeName(s)}),
                    s, spec, bw));
    return tasks;
}

void
fig10Present(const Report &rep)
{
    constexpr int kN = 5;
    std::printf("%-10s | normalized IPC: %-23s | normalized throughput: "
                "%s\n",
                "BW/thread", "A     D     S     M", "A     D     S     M");
    for (double bw : kBandwidths) {
        std::vector<double> ipc[kN], thr[kN];
        for (const auto &spec : trace::spec2006()) {
            const RunRecord *r[kN];
            for (int i = 0; i < kN; i++)
                r[i] = rep.find(k({"fig10", bwLabel(bw), spec.name,
                                   schemeName(kCompared[i])}));
            for (int i = 0; i < kN; i++) {
                ipc[i].push_back(r[i]->get("ipc") / r[0]->get("ipc"));
                thr[i].push_back(r[i]->get("throughput") /
                                 r[0]->get("throughput"));
            }
        }
        std::printf("%-10s |", bwLabel(bw).c_str());
        for (int i = 1; i < kN; i++)
            std::printf(" %5.2f", stats::gmean(ipc[i]));
        std::printf(" |");
        for (int i = 1; i < kN; i++)
            std::printf(" %5.2f", stats::gmean(thr[i]));
        std::printf("\n");
    }
}

// ------------------------------------------------------------------
// Figure 11: LLC capacity sweep
// ------------------------------------------------------------------

const std::uint64_t kLlcSizes[] = {64ull << 10, 128ull << 10,
                                   256ull << 10, 1024ull << 10,
                                   4096ull << 10};

std::vector<Task>
fig11Tasks()
{
    std::vector<Task> tasks;
    for (std::uint64_t size : kLlcSizes) {
        // Caches much larger than 128KB need proportionally longer
        // warm-up to fill; bounded to keep the default sweep affordable.
        const unsigned scale = static_cast<unsigned>(
            std::min<std::uint64_t>(
                std::max<std::uint64_t>(size / (128 * 1024), 1), 2));
        for (const auto &spec : trace::spec2006()) {
            for (sim::Scheme s :
                 {sim::Scheme::Uncompressed, sim::Scheme::Morc}) {
                tasks.push_back(singleTask(
                    k({"fig11", std::to_string(size >> 10) + "KB",
                       spec.name, schemeName(s)}),
                    s, spec, 100e6, size, nullptr, scale));
            }
        }
    }
    return tasks;
}

void
fig11Present(const Report &rep)
{
    std::printf("%-10s %14s %16s %22s\n", "LLC size", "MORC ratio",
                "norm. bandwidth", "norm. throughput");
    for (std::uint64_t size : kLlcSizes) {
        std::vector<double> ratio, thr;
        double gb_base = 0, gb_morc = 0;
        const std::string sz = std::to_string(size >> 10) + "KB";
        for (const auto &spec : trace::spec2006()) {
            const auto *base =
                rep.find(k({"fig11", sz, spec.name, "Uncompressed"}));
            const auto *m = rep.find(k({"fig11", sz, spec.name, "MORC"}));
            ratio.push_back(m->get("ratio"));
            // Aggregate traffic, not a mean of per-benchmark ratios:
            // workloads that fit in-cache have near-zero baselines and
            // would dominate a ratio mean with noise.
            gb_base += base->get("gb_per_binstr");
            gb_morc += m->get("gb_per_binstr");
            thr.push_back(m->get("throughput") /
                          base->get("throughput"));
        }
        std::printf("%7lluKB %14.2f %16.2f %22.2f\n",
                    static_cast<unsigned long long>(size >> 10),
                    stats::amean(ratio), gb_morc / gb_base,
                    stats::gmean(thr));
    }
}

// ------------------------------------------------------------------
// Figure 12: write-back-induced invalid lines
// ------------------------------------------------------------------

std::vector<Task>
fig12Tasks()
{
    std::vector<Task> tasks;
    for (const auto &spec : trace::spec2006()) {
        for (bool inclusive : {true, false}) {
            tasks.push_back(Task{
                k({"fig12", spec.name,
                   inclusive ? "inclusive" : "non-inclusive"}),
                [spec, inclusive](std::uint64_t) -> RunRecord {
                    sim::SystemConfig cfg;
                    cfg.scheme = sim::Scheme::Morc;
                    cfg.useMorcOverride = true;
                    cfg.morc.compressionEnabled = false;
                    cfg.inclusiveWriteFills = inclusive;
                    cfg.ratioSampleInterval = instrBudget();
                    RunRecord rec = simRecord(
                        cfg, {spec}, instrBudget(), warmupBudget());
                    rec.label("workload", spec.name);
                    rec.label("fill_policy", inclusive
                                                 ? "inclusive"
                                                 : "non-inclusive");
                    return rec;
                }});
        }
    }
    return tasks;
}

void
fig12Present(const Report &rep)
{
    std::vector<double> inc, non;
    std::printf("%-10s %12s %14s\n", "bench", "inclusive%",
                "non-inclusive%");
    for (const auto &spec : trace::spec2006()) {
        const double i =
            100.0 * rep.metric(k({"fig12", spec.name, "inclusive"}),
                               "invalid_frac");
        const double n =
            100.0 * rep.metric(k({"fig12", spec.name, "non-inclusive"}),
                               "invalid_frac");
        inc.push_back(i);
        non.push_back(n);
        std::printf("%-10s %11.1f%% %13.1f%%\n", spec.name.c_str(), i, n);
    }
    std::printf("%-10s %11.1f%% %13.1f%%\n", "AMean", stats::amean(inc),
                stats::amean(non));
}

// ------------------------------------------------------------------
// Figure 13: log size / active-log count sweeps
// ------------------------------------------------------------------

const unsigned kLogSizes[] = {64, 256, 512, 1024, 2048, 4096};
const unsigned kLogCounts[] = {1, 4, 8, 16, 32, 64};
// A representative subset keeps the sweep affordable.
const char *kFig13Subset[] = {"astar",  "gcc",    "mcf",    "omnetpp",
                              "soplex", "zeusmp", "gamess", "cactusADM"};

Task
fig13Task(std::string key, const trace::BenchmarkSpec &spec,
          unsigned log_bytes, unsigned active_logs)
{
    core::MorcConfig morc;
    morc.logBytes = log_bytes;
    morc.activeLogs = active_logs;
    morc.unlimitedMeta = true;
    return singleTask(std::move(key), sim::Scheme::Morc, spec, 100e6,
                      128 * 1024, &morc);
}

std::vector<Task>
fig13Tasks()
{
    std::vector<Task> tasks;
    for (const char *name : kFig13Subset) {
        const auto spec = trace::resolveWorkload(name);
        for (unsigned s : kLogSizes)
            tasks.push_back(fig13Task(
                k({"fig13", name, "logbytes" + std::to_string(s)}),
                spec, s, 8));
        for (unsigned c : kLogCounts)
            tasks.push_back(fig13Task(
                k({"fig13", name, "logs" + std::to_string(c)}), spec,
                512, c));
    }
    return tasks;
}

void
fig13Present(const Report &rep)
{
    std::printf("(a) log size sweep, 8 active logs\n%-10s", "bench");
    for (unsigned s : kLogSizes)
        std::printf(" %6uB", s);
    std::printf("\n");
    for (const char *name : kFig13Subset) {
        std::printf("%-10s", name);
        for (unsigned s : kLogSizes)
            std::printf(" %7.2f",
                        rep.metric(k({"fig13", name,
                                      "logbytes" + std::to_string(s)}),
                                   "ratio"));
        std::printf("\n");
    }
    std::printf("\n(b) active-log sweep, 512B logs\n%-10s", "bench");
    for (unsigned c : kLogCounts)
        std::printf(" %6u", c);
    std::printf("\n");
    for (const char *name : kFig13Subset) {
        std::printf("%-10s", name);
        for (unsigned c : kLogCounts)
            std::printf(" %6.2f",
                        rep.metric(k({"fig13", name,
                                      "logs" + std::to_string(c)}),
                                   "ratio"));
        std::printf("\n");
    }
}

// ------------------------------------------------------------------
// Figure 14: access latency (log position) distribution
// ------------------------------------------------------------------

const std::vector<std::uint64_t> kFig14Bounds = {64,  128, 196, 256,
                                                 320, 384, 448, 512};

/** Hit-latency bounds in cycles: log-decompression costs cluster in the
 *  tens of cycles, so buckets fan out from the uncompressed hit time. */
const std::vector<std::uint64_t> kFig14LatencyBounds = {
    16, 24, 32, 48, 64, 96, 128, 192, 256};

std::vector<Task>
fig14Tasks()
{
    std::vector<Task> tasks;
    for (const auto &spec : trace::spec2006()) {
        tasks.push_back(Task{
            k({"fig14", spec.name}),
            [spec](std::uint64_t) -> RunRecord {
                stats::Histogram hist(kFig14Bounds);
                stats::Histogram latHist(kFig14LatencyBounds);
                sim::SystemConfig cfg;
                cfg.scheme = sim::Scheme::Morc;
                cfg.decompressedBytesHistogram = &hist;
                cfg.hitLatencyHistogram = &latHist;
                cfg.ratioSampleInterval = instrBudget();
                const std::vector<trace::BenchmarkSpec> progs{spec};
                auto sys = std::make_unique<sim::System>(cfg, progs);
                runSystem(sys, cfg, progs, instrBudget(),
                          warmupBudget());
                RunRecord rec;
                rec.label("workload", spec.name);
                rec.histograms.emplace_back("log_position_bytes", hist);
                rec.histograms.emplace_back("hit_latency_cycles",
                                            latHist);
                return rec;
            }});
    }
    return tasks;
}

void
fig14Present(const Report &rep)
{
    {
        stats::Histogram proto(kFig14Bounds);
        std::printf("%-10s", "bench");
        for (std::size_t i = 0; i < proto.numBuckets(); i++)
            std::printf(" %8s", proto.label(i).c_str());
        std::printf("\n");
    }
    for (const auto &spec : trace::spec2006()) {
        const auto *r = rep.find(k({"fig14", spec.name}));
        const stats::Histogram &hist = r->histograms.front().second;
        std::printf("%-10s", spec.name.c_str());
        for (std::size_t i = 0; i < hist.numBuckets(); i++)
            std::printf("   %5.1f%%", 100.0 * hist.fraction(i));
        std::printf("\n");
    }
    std::printf("\nhit latency (cycles):\n");
    {
        stats::Histogram proto(kFig14LatencyBounds);
        std::printf("%-10s", "bench");
        for (std::size_t i = 0; i < proto.numBuckets(); i++)
            std::printf(" %8s", proto.label(i).c_str());
        std::printf("\n");
    }
    for (const auto &spec : trace::spec2006()) {
        const auto *r = rep.find(k({"fig14", spec.name}));
        const stats::Histogram &hist = r->histograms.back().second;
        std::printf("%-10s", spec.name.c_str());
        for (std::size_t i = 0; i < hist.numBuckets(); i++)
            std::printf("   %5.1f%%", 100.0 * hist.fraction(i));
        std::printf("\n");
    }
}

// ------------------------------------------------------------------
// Figure 15: separate vs merged tag/data logs
// ------------------------------------------------------------------

std::vector<Task>
fig15Tasks()
{
    std::vector<Task> tasks;
    for (const auto &spec : trace::spec2006())
        for (sim::Scheme s :
             {sim::Scheme::Morc, sim::Scheme::MorcMerged})
            tasks.push_back(singleTask(
                k({"fig15", spec.name, schemeName(s)}), s, spec));
    return tasks;
}

void
fig15Present(const Report &rep)
{
    std::vector<double> base, merged;
    std::printf("%-10s %10s %12s\n", "bench", "MORC", "MORCMerged");
    for (const auto &spec : trace::spec2006()) {
        const double r0 =
            rep.metric(k({"fig15", spec.name, "MORC"}), "ratio");
        const double r1 =
            rep.metric(k({"fig15", spec.name, "MORCMerged"}), "ratio");
        base.push_back(r0);
        merged.push_back(r1);
        std::printf("%-10s %10.2f %12.2f\n", spec.name.c_str(), r0, r1);
    }
    printMeans("MORC", base);
    printMeans("MORCMerged", merged);
}

// ------------------------------------------------------------------
// Table 1: energy constants
// ------------------------------------------------------------------

std::vector<Task>
table1Tasks()
{
    return {Task{"table1/constants", [](std::uint64_t) -> RunRecord {
                     RunRecord rec;
                     for (const auto &row : energy::table1())
                         rec.metric(row.operation, row.joules);
                     return rec;
                 }}};
}

void
table1Present(const Report &rep)
{
    const auto *rec = rep.find("table1/constants");
    std::printf("%-40s %12s %10s\n", "Operation", "Energy", "Scale");
    const double base = rec->metrics.front().second;
    for (const auto &[op, joules] : rec->metrics) {
        char buf[32];
        if (joules < 1e-9)
            std::snprintf(buf, sizeof(buf), "%.2fpJ", joules * 1e12);
        else
            std::snprintf(buf, sizeof(buf), "%.2fnJ", joules * 1e9);
        std::printf("%-40s %12s %9.0fx\n", op.c_str(), buf,
                    joules / base);
    }
    std::printf("\nPaper scale column: 1x / 2x / 22.5x / 185x / 1250x / "
                "4675x\n");
}

// ------------------------------------------------------------------
// Table 4: storage overheads
// ------------------------------------------------------------------

std::vector<Task>
table4Tasks()
{
    std::vector<Task> tasks;
    for (const auto &row : cache::table4Overheads()) {
        tasks.push_back(Task{
            k({"table4", row.scheme}), [row](std::uint64_t) -> RunRecord {
                RunRecord rec;
                rec.label("scheme", row.scheme);
                rec.metric("extra_tags_frac", row.extraTagsFrac);
                rec.metric("metadata_frac", row.metadataFrac);
                rec.metric("total_frac", row.totalFrac);
                rec.metric("comp_engine_mm2", row.compEngineMm2);
                rec.metric("dict_bytes",
                           static_cast<double>(row.dictBytes));
                return rec;
            }});
    }
    return tasks;
}

void
table4Present(const Report &rep)
{
    std::printf("(128KB cache, 40b tags, 16-way sets for prior work, "
                "512B logs, 8x LMT)\n\n");
    std::printf("%-12s %9s %9s %11s %9s %9s\n", "Scheme", "Tags",
                "Metadata", "Tags+Meta", "Engine", "Dict");
    for (const auto &row : cache::table4Overheads()) {
        const auto *r = rep.find(k({"table4", row.scheme}));
        const double engineMm2 = r->get("comp_engine_mm2");
        const unsigned dictBytes =
            static_cast<unsigned>(r->get("dict_bytes"));
        char engine[16];
        if (engineMm2 > 0)
            std::snprintf(engine, sizeof(engine), "%.2fmm2", engineMm2);
        else
            std::snprintf(engine, sizeof(engine), "NoData");
        char dict[16];
        if (dictBytes >= 1024)
            std::snprintf(dict, sizeof(dict), "%uKB", dictBytes / 1024);
        else
            std::snprintf(dict, sizeof(dict), "%uB", dictBytes);
        std::printf("%-12s %8.2f%% %8.2f%% %10.2f%% %9s %9s\n",
                    row.scheme.c_str(), 100 * r->get("extra_tags_frac"),
                    100 * r->get("metadata_frac"),
                    100 * r->get("total_frac"), engine, dict);
    }
    std::printf("\nPaper row 'Tags+Meta': 18.74%% / 8.59%% / 33.58%% / "
                "25.00%% / 17.18%%\n");
}

// ------------------------------------------------------------------
// Ablation: stream/line codecs on identical fill streams
// ------------------------------------------------------------------

std::vector<Task>
ablationTasks()
{
    std::vector<Task> tasks;
    for (const auto &spec : trace::spec2006()) {
        tasks.push_back(Task{
            k({"ablation", spec.name}),
            [spec](std::uint64_t seed) -> RunRecord {
                trace::ValueModel vm(spec.data);
                Rng rng(seed);
                const std::uint64_t ws_lines =
                    spec.access.wsBytes / kLineSize;
                comp::LbeEncoder lbe;
                comp::LzssEncoder lz;
                comp::CpackEncoder cpack_stream(512); // same dict budget
                std::uint64_t b_lbe = 0, b_lz = 0, b_cp = 0, b_fpc = 0,
                              b_bdi = 0;
                std::uint64_t log_lbe = 0, log_lz = 0, log_cp = 0;
                int n = 0;
                for (int burst = 0; burst < 120; burst++) {
                    const std::uint64_t base =
                        rng.below(ws_lines) & ~15ull;
                    for (int i = 0; i < 16; i++) {
                        const CacheLine l = vm.line(base + i, 0);
                        const auto add = [&](std::uint64_t &total,
                                             std::uint64_t &log,
                                             std::uint32_t bits,
                                             auto &enc) {
                            total += bits;
                            log += bits;
                            if (log > 4096) { // 512B log flush
                                enc.reset();
                                log = 0;
                            }
                        };
                        add(b_lbe, log_lbe, lbe.append(l), lbe);
                        add(b_lz, log_lz, lz.append(l), lz);
                        add(b_cp, log_cp, cpack_stream.append(l),
                            cpack_stream);
                        b_fpc += comp::Fpc::lineBits(l);
                        b_bdi += comp::Bdi::lineBits(l);
                        n++;
                    }
                }
                const double raw = 512.0 * n;
                RunRecord rec;
                rec.label("workload", spec.name);
                rec.metric("lbe", raw / b_lbe);
                rec.metric("lzss", raw / b_lz);
                rec.metric("cpack", raw / b_cp);
                rec.metric("fpc", raw / b_fpc);
                rec.metric("bdi", raw / b_bdi);
                return rec;
            }});
    }
    for (unsigned bases : {1u, 2u}) {
        tasks.push_back(Task{
            k({"ablation", "tagcodec",
               std::to_string(bases) + "base"}),
            [bases](std::uint64_t seed) -> RunRecord {
                comp::TagCodec codec(bases);
                Rng rng(seed);
                std::uint64_t bits = 0;
                std::uint64_t chain_a = 1'000'000,
                              chain_b = 9'000'000;
                const int n = 20000;
                for (int i = 0; i < n; i++) {
                    if (i & 1)
                        bits += codec.append(chain_a +=
                                             1 + rng.below(3));
                    else
                        bits += codec.append(chain_b +=
                                             1 + rng.below(3));
                }
                RunRecord rec;
                rec.label("bases", std::to_string(bases));
                rec.metric("bits_per_tag",
                           static_cast<double>(bits) / n);
                return rec;
            }});
    }
    return tasks;
}

void
ablationPresent(const Report &rep)
{
    std::printf("%-10s %7s %7s %8s %7s %7s\n", "bench", "LBE", "LZSS",
                "C-Packs", "FPC", "BDI");
    std::vector<double> r_lbe, r_lz, r_cp, r_fpc, r_bdi;
    for (const auto &spec : trace::spec2006()) {
        const auto *r = rep.find(k({"ablation", spec.name}));
        std::printf("%-10s %7.2f %7.2f %8.2f %7.2f %7.2f\n",
                    spec.name.c_str(), r->get("lbe"), r->get("lzss"),
                    r->get("cpack"), r->get("fpc"), r->get("bdi"));
        r_lbe.push_back(r->get("lbe"));
        r_lz.push_back(r->get("lzss"));
        r_cp.push_back(r->get("cpack"));
        r_fpc.push_back(r->get("fpc"));
        r_bdi.push_back(r->get("bdi"));
    }
    printMeans("LBE", r_lbe);
    printMeans("LZSS", r_lz);
    printMeans("C-Pack", r_cp);
    printMeans("FPC", r_fpc);
    printMeans("BDI", r_bdi);

    std::printf("\nTag codec: interleaved fill + write-back chains\n");
    for (unsigned bases : {1u, 2u}) {
        std::printf("  %u base(s): %.1f bits/tag (vs %u raw)\n", bases,
                    rep.metric(k({"ablation", "tagcodec",
                                  std::to_string(bases) + "base"}),
                               "bits_per_tag"),
                    comp::TagCodec::kFullTagBits + 2);
    }
}

// ------------------------------------------------------------------
// Mesh scaling: tiled substrate, 1 -> 64 tiles, fixed total bandwidth
// ------------------------------------------------------------------

/** Square mesh dimensions: 1, 4, 16, 64 tiles. */
const unsigned kMeshDims[] = {1, 2, 4, 8};

/** Tile workloads, assigned round-robin across cores. */
const char *const kMeshPrograms[] = {"gcc", "mcf", "omnetpp", "soplex"};

std::vector<Task>
meshTasks()
{
    std::vector<Task> tasks;
    for (unsigned dim : kMeshDims) {
        for (sim::Scheme s :
             {sim::Scheme::Uncompressed, sim::Scheme::Morc}) {
            const unsigned tiles = dim * dim;
            tasks.push_back(Task{
                k({"mesh", std::to_string(tiles) + "t", schemeName(s)}),
                [dim, s, tiles](std::uint64_t) -> RunRecord {
                    // Total off-chip bandwidth is held at 1600 MB/s
                    // regardless of tile count, so scaling stresses the
                    // shared memory system exactly as the paper's
                    // manycore argument requires.
                    const std::uint64_t instr = std::max<std::uint64_t>(
                        instrBudget() / 8, 10'000);
                    const std::uint64_t warmup =
                        std::max<std::uint64_t>(warmupBudget() / 8,
                                                10'000);
                    sim::SystemConfig cfg;
                    cfg.scheme = s;
                    cfg.useMesh = true;
                    cfg.meshCfg.width = dim;
                    cfg.meshCfg.height = dim;
                    cfg.meshCfg.memControllers = std::max(1u, dim / 2);
                    cfg.numCores = tiles;
                    cfg.bandwidthPerCore = 1600e6 / tiles;
                    cfg.llcBytesPerCore = 128 * 1024;
                    cfg.interleaveQuantum = 1;
                    cfg.ratioSampleInterval =
                        std::max<std::uint64_t>(instr, 100'000);
                    std::vector<trace::BenchmarkSpec> programs;
                    for (unsigned c = 0; c < tiles; c++)
                        programs.push_back(trace::resolveWorkload(
                            kMeshPrograms[c % 4]));
                    RunRecord rec =
                        simRecord(cfg, programs, instr, warmup);
                    rec.label("tiles", std::to_string(tiles));
                    rec.label("mesh", std::to_string(dim) + "x" +
                                          std::to_string(dim));
                    rec.label("scheme", schemeName(s));
                    // mean_throughput is already per-core (per-tile)
                    // normalized; sys_ipc_per_tile is the raw
                    // aggregate-rate analogue.
                    rec.metric("sys_ipc_per_tile",
                               rec.get("instructions") /
                                   std::max(1.0,
                                            rec.get("completion_cycles")) /
                                   tiles);
                    return rec;
                }});
        }
    }
    return tasks;
}

void
meshPresent(const Report &rep)
{
    std::printf("%-6s | thr/tile: %-20s | IPC/tile: %-20s | MORC: ratio "
                "hops  messages\n",
                "tiles", "Unc   MORC  MORC/Unc", "Unc   MORC  MORC/Unc");
    for (unsigned dim : kMeshDims) {
        const unsigned tiles = dim * dim;
        const std::string t = std::to_string(tiles) + "t";
        const auto *u = rep.find(k({"mesh", t, "Uncompressed"}));
        const auto *m = rep.find(k({"mesh", t, "MORC"}));
        std::printf("%-6u | %5.2f %5.2f %9.2f  | %5.2f %5.2f %9.2f  | "
                    "%10.2f %5.2f %9.0f\n",
                    tiles, u->get("mean_throughput"),
                    m->get("mean_throughput"),
                    m->get("mean_throughput") /
                        u->get("mean_throughput"),
                    u->get("sys_ipc_per_tile"),
                    m->get("sys_ipc_per_tile"),
                    m->get("sys_ipc_per_tile") /
                        u->get("sys_ipc_per_tile"),
                    m->get("ratio"), m->get("noc_mean_hops"),
                    m->get("noc_messages"));
    }
}

// ------------------------------------------------------------------
// KV serving: the compressed cache as a memcached-style hot tier
// ------------------------------------------------------------------

/** Hot-tier schemes compared by the serving figure: MORC plus the
 *  uncompressed and the two strongest compressed baselines. */
const sim::Scheme kKvSchemes[] = {sim::Scheme::Uncompressed,
                                  sim::Scheme::Adaptive,
                                  sim::Scheme::Sc2, sim::Scheme::Morc};

/** Requests served per task: scaled off the shared instruction budget
 *  so --smoke and full runs use one knob. */
std::uint64_t
kvRequests()
{
    return std::max<std::uint64_t>(instrBudget() / 8, 2'000);
}

/**
 * The canonical 4-tenant service: >=1M keys total, distinct skews,
 * QoS weights, GET/SET mixes, and working-set drift per tenant.
 */
kv::ServiceConfig
kvBaseConfig(sim::Scheme scheme)
{
    kv::ServiceConfig cfg;
    cfg.scheme = scheme;
    cfg.frontBytes = 2ull << 20;
    cfg.seed = 0x6b76;
    cfg.telemetryEpoch = g_telemetryEpoch;
    cfg.tier.dramBytes = 8ull << 20;
    cfg.tier.ssdBytes = 32ull << 20;
    cfg.values.seed = 0x76616c;
    // social: hot skew, read-heavy, fast-drifting feed-of-the-hour.
    cfg.tenants.push_back(
        {"social", 262144, 1.1, 4, 0.05, 4096, 997});
    // search: flatter skew, almost read-only, stable corpus.
    cfg.tenants.push_back({"search", 262144, 0.8, 2, 0.02, 0, 0});
    // feed: hottest skew, write-heavy fan-out, slow drift.
    cfg.tenants.push_back({"feed", 262144, 1.2, 1, 0.3, 8192, 4999});
    // analytics: near-uniform scans, write-heavy counters.
    cfg.tenants.push_back({"analytics", 262144, 0.6, 1, 0.5, 0, 0});
    return cfg;
}

/** Run one service config for @p requests and flatten it into a
 *  RunRecord. */
RunRecord
kvRecord(const kv::ServiceConfig &cfg, std::uint64_t requests)
{
    kv::Service svc(cfg);
    svc.run(requests);

    RunRecord rec;
    const cache::LlcStats &fs = svc.front().stats();
    const kv::TierStats &ts = svc.tiers().stats();
    const double reads = std::max<double>(1.0, double(fs.reads));
    const double hitRate = double(fs.readHits) / reads;
    const double frontMib =
        double(cfg.frontBytes) / double(1u << 20);
    rec.metric("requests", double(svc.requests()));
    rec.metric("cycles", double(svc.cycles()));
    rec.metric("hit_rate", hitRate);
    rec.metric("hit_rate_per_mb", hitRate / frontMib);
    rec.metric("front_ratio", svc.front().compressionRatio());
    const double fetches = std::max<double>(
        1.0, double(ts.dramHits + ts.ssdHits + ts.originFetches));
    rec.metric("dram_hit_frac", double(ts.dramHits) / fetches);
    rec.metric("ssd_hit_frac", double(ts.ssdHits) / fetches);
    rec.metric("origin_frac", double(ts.originFetches) / fetches);
    rec.metric("promotions", double(ts.promotions));
    rec.metric("demotions", double(ts.demotions));
    rec.metric("dram_lines", double(svc.tiers().dramLines()));
    rec.metric("ssd_lines", double(svc.tiers().ssdLines()));
    // Aggregate and per-tenant served throughput in requests per
    // kilocycle — the QoS number a per-tenant SLO would track.
    const double kcycles =
        std::max<double>(1.0, double(svc.cycles())) / 1000.0;
    rec.metric("throughput_rpk", double(svc.requests()) / kcycles);
    for (std::size_t t = 0; t < cfg.tenants.size(); t++) {
        const kv::TenantStats &st = svc.tenantStats(unsigned(t));
        const std::string &name = cfg.tenants[t].name;
        rec.metric("thr_rpk_" + name, double(st.requests) / kcycles);
        rec.metric("mean_lat_" + name,
                   double(st.latencySum) /
                       std::max<double>(1.0, double(st.requests)));
    }
    for (double q : {0.50, 0.99, 0.999}) {
        const std::string p =
            q == 0.50 ? "p50" : (q == 0.99 ? "p99" : "p99.9");
        rec.percentile("latency.all", p,
                       kv::histPercentile(svc.latency(), q));
        for (std::size_t t = 0; t < cfg.tenants.size(); t++) {
            rec.percentile(
                "latency." + cfg.tenants[t].name, p,
                kv::histPercentile(svc.tenantLatency(unsigned(t)), q));
        }
    }
    rec.histograms.emplace_back("latency", svc.latency());
    rec.series = svc.series();
    return rec;
}

std::vector<Task>
kvServeTasks()
{
    std::vector<Task> tasks;
    for (sim::Scheme s : kKvSchemes) {
        tasks.push_back(Task{
            k({"kvserve", schemeName(s)}),
            [s](std::uint64_t) -> RunRecord {
                const kv::ServiceConfig cfg = kvBaseConfig(s);
                RunRecord rec = kvRecord(cfg, kvRequests());
                rec.label("scheme", schemeName(s));
                rec.label("tenants",
                          std::to_string(cfg.tenants.size()));
                std::uint64_t keys = 0;
                for (const auto &t : cfg.tenants)
                    keys += t.keys;
                rec.label("total_keys", std::to_string(keys));
                return rec;
            }});
    }
    return tasks;
}

void
kvServePresent(const Report &rep)
{
    std::printf("%-13s | hit%%   hit%%/MB  ratio | p50    p99    p99.9"
                "  | thr r/kcyc (soc/sea/feed/ana)\n",
                "scheme");
    for (sim::Scheme s : kKvSchemes) {
        const auto *r = rep.find(k({"kvserve", schemeName(s)}));
        const RunRecord::PercentileSet *lat = nullptr;
        for (const auto &g : r->percentiles) {
            if (g.first == "latency.all")
                lat = &g.second;
        }
        std::printf(
            "%-13s | %5.1f  %6.2f  %5.2f | %-6.0f %-6.0f %-6.0f | "
            "%5.2f (%.2f/%.2f/%.2f/%.2f)\n",
            schemeName(s), 100.0 * r->get("hit_rate"),
            100.0 * r->get("hit_rate_per_mb"), r->get("front_ratio"),
            lat ? (*lat)[0].second : 0.0, lat ? (*lat)[1].second : 0.0,
            lat ? (*lat)[2].second : 0.0, r->get("throughput_rpk"),
            r->get("thr_rpk_social"), r->get("thr_rpk_search"),
            r->get("thr_rpk_feed"), r->get("thr_rpk_analytics"));
    }
}

// ------------------------------------------------------------------
// KV tiering: per-tier compression on the DRAM/SSD backing store
// ------------------------------------------------------------------

struct KvTierPoint
{
    const char *name;
    bool dramCompressed;
    bool ssdCompressed;
};

const KvTierPoint kKvTierPoints[] = {
    {"raw", false, false},
    {"dram-only", true, false},
    {"both", true, true},
};

const sim::Scheme kKvTierSchemes[] = {sim::Scheme::Uncompressed,
                                      sim::Scheme::Morc};

/** Requests per tiering task. The tiering figure only says anything
 *  once the 4 MB DRAM tier is full and eviction/promotion traffic is
 *  steady-state; under the --smoke budget the shared kvRequests() knob
 *  leaves it cold-miss-dominated, so tiering gets a higher floor
 *  (ROADMAP item 3 residual). */
std::uint64_t
kvTierRequests()
{
    return std::max<std::uint64_t>(kvRequests(), 60'000);
}

std::vector<Task>
kvTierTasks()
{
    std::vector<Task> tasks;
    for (sim::Scheme s : kKvTierSchemes) {
        for (const KvTierPoint &pt : kKvTierPoints) {
            tasks.push_back(Task{
                k({"kvtier", schemeName(s), pt.name}),
                [s, pt](std::uint64_t) -> RunRecord {
                    kv::ServiceConfig cfg = kvBaseConfig(s);
                    // Tight tiers so capacity effects dominate: the
                    // compressed DRAM tier must *earn* extra residency
                    // from the value classes.
                    cfg.tier.dramBytes = 4ull << 20;
                    cfg.tier.ssdBytes = 4ull << 20;
                    cfg.tier.dramCompressed = pt.dramCompressed;
                    cfg.tier.ssdCompressed = pt.ssdCompressed;
                    RunRecord rec = kvRecord(cfg, kvTierRequests());
                    rec.label("scheme", schemeName(s));
                    rec.label("tier_compression", pt.name);
                    return rec;
                }});
        }
    }
    return tasks;
}

void
kvTierPresent(const Report &rep)
{
    std::printf("%-13s %-10s | dram%%  ssd%%  origin%% | dram_lines "
                "ssd_lines | p99     p99.9\n",
                "scheme", "tiers");
    for (sim::Scheme s : kKvTierSchemes) {
        for (const KvTierPoint &pt : kKvTierPoints) {
            const auto *r =
                rep.find(k({"kvtier", schemeName(s), pt.name}));
            const RunRecord::PercentileSet *lat = nullptr;
            for (const auto &g : r->percentiles) {
                if (g.first == "latency.all")
                    lat = &g.second;
            }
            std::printf("%-13s %-10s | %5.1f %5.1f  %6.1f  | %10.0f "
                        "%9.0f | %-7.0f %-7.0f\n",
                        schemeName(s), pt.name,
                        100.0 * r->get("dram_hit_frac"),
                        100.0 * r->get("ssd_hit_frac"),
                        100.0 * r->get("origin_frac"),
                        r->get("dram_lines"), r->get("ssd_lines"),
                        lat ? (*lat)[1].second : 0.0,
                        lat ? (*lat)[2].second : 0.0);
        }
    }
}

// ------------------------------------------------------------------
// Lifetime: NVM wear/endurance ranking of every scheme in the arena
// ------------------------------------------------------------------

/** Three compressibility regimes: gcc (zero-heavy), leslie3d
 *  (FP/m256-heavy), h264ref (narrow-integer-heavy). */
const char *const kLifetimeWorkloads[] = {"gcc", "leslie3d", "h264ref"};

/** Value of lifetime point @p key of @p r (0 when absent). */
double
lifetimeOf(const RunRecord &r, const char *key)
{
    for (const auto &p : r.lifetime) {
        if (p.first == key)
            return p.second;
    }
    return 0.0;
}

std::vector<Task>
lifetimeTasks()
{
    std::vector<Task> tasks;
    for (const sim::SchemeInfo &info : sim::allSchemes()) {
        for (const char *w : kLifetimeWorkloads) {
            tasks.push_back(
                singleTask(k({"lifetime", w, info.name}), info.scheme,
                           trace::findBenchmark(w)));
        }
    }
    return tasks;
}

void
lifetimePresent(const Report &rep)
{
    struct Row
    {
        const char *name;
        double years, imbalance, flips, ratio, hitPerMb;
    };
    std::vector<Row> rows;
    for (const sim::SchemeInfo &info : sim::allSchemes()) {
        std::vector<double> years, imb, flips, ratio, hit;
        for (const char *w : kLifetimeWorkloads) {
            const RunRecord *r = rep.find(k({"lifetime", w, info.name}));
            // An idle run forecasts infinity (rendered 1e308); cap so
            // the geometric mean stays finite and the row sorts last
            // among the writers.
            years.push_back(
                std::min(lifetimeOf(*r, "years"), 1.0e12));
            imb.push_back(lifetimeOf(*r, "imbalance"));
            flips.push_back(lifetimeOf(*r, "flips_per_cell_per_sec"));
            ratio.push_back(r->get("ratio"));
            hit.push_back(r->get("llc_hit_rate"));
        }
        const double mb =
            (info.scheme == sim::Scheme::Uncompressed8x ? 8.0 : 1.0) *
            128.0 / 1024.0;
        rows.push_back({info.name, stats::gmean(years),
                        stats::amean(imb), stats::amean(flips),
                        stats::gmean(ratio), stats::amean(hit) / mb});
    }
    std::stable_sort(rows.begin(), rows.end(),
                     [](const Row &a, const Row &b) {
                         return a.years > b.years;
                     });
    std::printf("%-4s %-14s | %12s %9s %14s | %6s %8s\n", "rank",
                "scheme", "years(GMean)", "imbalance", "flips/cell/s",
                "ratio", "hit%/MB");
    for (std::size_t i = 0; i < rows.size(); i++) {
        const Row &r = rows[i];
        std::printf("%-4zu %-14s | %12.2f %9.2f %14.4f | %6.2f %8.1f\n",
                    i + 1, r.name, r.years, r.imbalance, r.flips,
                    r.ratio, 100.0 * r.hitPerMb);
    }
}

} // namespace

// ------------------------------------------------------------------
// Registry and drivers
// ------------------------------------------------------------------

const std::vector<Figure> &
figures()
{
    static const std::vector<Figure> kFigures = {
        {"table1", "Table 1: Energy of on-chip and off-chip operations "
                   "(64b of data)",
         "1x / 2x / 22.5x / 185x / 1250x / 4675x scale column",
         table1Tasks, table1Present},
        {"table4", "Table 4: Overheads of compression schemes, "
                   "normalized to cache capacity",
         "Tags+Meta 18.74% / 8.59% / 33.58% / 25.00% / 17.18%",
         table4Tasks, table4Present},
        {"fig2", "Figure 2: Oracle intra-line vs inter-line compression",
         "intra ~2x ratio / ~20% BW reduction; inter ~24x / ~80%",
         fig2Tasks, fig2Present},
        {"fig6", "Figure 6: single-program compression / bandwidth / "
                 "IPC / throughput",
         "MORC ~2.9x ratio (next best 1.9x); MORC -27% BW (next "
         "-10.8%); IPC +22%; throughput +37% (next +20%)",
         fig6Tasks, fig6Present},
        {"fig7", "Figure 7: LBE symbol usage distribution "
                 "(data-weighted)",
         "m256 significant for cactusADM/gamess/leslie3d/povray; gcc "
         "mostly zeros; h264ref u8/u16-heavy",
         fig7Tasks, fig7Present},
        {"fig8", "Figure 8: multi-program (16 threads, shared LLC, "
                 "1600MB/s)",
         "MORC ~4x ratio avg, up to 7x (next best 1.75x); BW -20%; "
         "IPC up to +60% (S5); completion M3 +35%",
         fig8Tasks, fig8Present},
        {"fig9", "Figure 9: memory subsystem energy",
         "MORC -17% vs uncompressed; beats the 1MB Uncompressed8x "
         "baseline; decompression energy visible but small vs DRAM",
         fig9Tasks, fig9Present},
        {"fig10", "Figure 10: sensitivity to per-thread bandwidth",
         "at 1600MB/s MORC costs ~7% IPC, no throughput loss; at "
         "12.5MB/s MORC +63% throughput",
         fig10Tasks, fig10Present},
        {"fig11", "Figure 11: MORC at other cache sizes",
         "BW savings 33-37% and throughput +35-46% from 64KB to 1MB; "
         "benefits fade by 4MB",
         fig11Tasks, fig11Present},
        {"fig12", "Figure 12: write-back-induced invalid lines "
                  "(compression disabled)",
         "non-inclusive significantly reduces invalid fraction vs "
         "inclusive",
         fig12Tasks, fig12Present},
        {"fig13", "Figure 13: log size and active-log count sweeps "
                  "(unlimited tags/LMT)",
         "512-byte logs with 8 active logs are near-optimal",
         fig13Tasks, fig13Present},
        {"fig14", "Figure 14: MORC access latency (log position) "
                  "distribution",
         "fairly even distribution across log positions", fig14Tasks,
         fig14Present},
        {"fig15", "Figure 15: separate vs merged tag/data logs",
         "MORCMerged within ~0.5x of MORC on most workloads",
         fig15Tasks, fig15Present},
        {"ablation", "Ablation: stream/line codecs on identical fill "
                     "streams",
         "LZ ~ LBE (Section 6); C-Pack capped by per-word pointers; "
         "intra-line codecs (FPC/BDI) trail inter-line ones",
         ablationTasks, ablationPresent},
        {"mesh", "Mesh scaling: tiled substrate (banked LLC over a 2D "
                 "mesh, fixed 1600MB/s total bandwidth), 1 to 64 tiles",
         "compression's benefit grows with core count as off-chip "
         "bandwidth per tile shrinks (Section 1 manycore argument)",
         meshTasks, meshPresent},
        {"kvserve", "KV serving: MORC vs baselines as the hot tier of "
                    "a 4-tenant memcached-style service (>=1M keys, "
                    "Zipf traffic, working-set drift)",
         "beyond the paper: hit-rate-per-byte and p50/p99/p99.9 tail "
         "latency under service-shaped traffic (ZipCache-style "
         "evaluation)",
         kvServeTasks, kvServePresent},
        {"kvtier", "KV tiering: per-tier compression on the DRAM/SSD "
                   "backing store behind the service's front cache",
         "beyond the paper: compressed tiers trade origin fetches for "
         "residency (ZipCache's DRAM/SSD argument)",
         kvTierTasks, kvTierPresent},
        {"lifetime", "Lifetime: NVM wear and years-to-failure ranking "
                     "of every scheme (L2C2-style endurance model)",
         "beyond the paper: compression reduces programmed bits, but "
         "log-structured writes also level wear across sets (L2C2's "
         "endurance argument)",
         lifetimeTasks, lifetimePresent},
    };
    return kFigures;
}

const Figure *
findFigure(const std::string &name)
{
    for (const auto &f : figures()) {
        if (name == f.name)
            return &f;
    }
    return nullptr;
}

stats::Report
runFigure(const Figure &fig, unsigned jobs, sweep::Journal *journal)
{
    stats::Report rep;
    rep.figure = fig.name;
    rep.title = fig.title;
    rep.instrBudget = instrBudget();
    rep.warmupBudget = warmupBudget();
    std::vector<Task> tasks = fig.tasks();
    if (journal) {
        std::size_t resumed = 0;
        for (Task &t : tasks) {
            if (const RunRecord *done = journal->lookup(t.key)) {
                resumed++;
                t.run = [done](std::uint64_t) { return *done; };
                continue;
            }
            t.run = [journal, key = t.key,
                     inner = std::move(t.run)](std::uint64_t seed) {
                RunRecord rec = inner(seed);
                rec.key = key; // the engine stamps it only afterwards
                journal->append(rec);
                return rec;
            };
        }
        if (resumed > 0) {
            std::fprintf(stderr,
                         "[checkpoint] %s: resuming, %zu/%zu tasks "
                         "already journaled\n",
                         fig.name, resumed, tasks.size());
        }
    }
    sweep::Engine engine(jobs);
    rep.runs = engine.run(tasks);
    return rep;
}

int
sweepMain(int argc, char **argv, const char *only)
{
    unsigned jobs = 0; // hardware_concurrency
    std::string outDir;
    std::string traceOut;
    std::string checkpointDir;
    std::vector<std::string> names;
    const auto parseJobs = [&jobs](const char *s) {
        char *end = nullptr;
        const unsigned long v = std::strtoul(s, &end, 10);
        if (end == s || *end != '\0' || v > 4096) {
            std::fprintf(stderr, "--jobs: bad value '%s'\n", s);
            return false;
        }
        jobs = static_cast<unsigned>(v);
        return true;
    };
    const auto parseEpoch = [](const char *s) {
        char *end = nullptr;
        const unsigned long long v = std::strtoull(s, &end, 10);
        if (end == s || *end != '\0' || v == 0) {
            std::fprintf(stderr, "--telemetry-epoch: bad value '%s'\n",
                         s);
            return std::uint64_t{0};
        }
        return static_cast<std::uint64_t>(v);
    };
    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        if (arg == "--jobs" || arg == "-j") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", arg.c_str());
                return 1;
            }
            if (!parseJobs(argv[++i]))
                return 1;
        } else if (arg.rfind("--jobs=", 0) == 0) {
            if (!parseJobs(arg.c_str() + 7))
                return 1;
        } else if (arg == "--telemetry-epoch") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", arg.c_str());
                return 1;
            }
            if ((g_telemetryEpoch = parseEpoch(argv[++i])) == 0)
                return 1;
        } else if (arg.rfind("--telemetry-epoch=", 0) == 0) {
            if ((g_telemetryEpoch = parseEpoch(arg.c_str() + 18)) == 0)
                return 1;
        } else if (arg == "--trace-out") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", arg.c_str());
                return 1;
            }
            traceOut = argv[++i];
        } else if (arg.rfind("--trace-out=", 0) == 0) {
            traceOut = arg.substr(12);
        } else if (arg == "--checkpoint-dir") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", arg.c_str());
                return 1;
            }
            checkpointDir = argv[++i];
        } else if (arg.rfind("--checkpoint-dir=", 0) == 0) {
            checkpointDir = arg.substr(17);
        } else if (arg == "--out" || arg == "-o") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", arg.c_str());
                return 1;
            }
            outDir = argv[++i];
        } else if (arg.rfind("--out=", 0) == 0) {
            outDir = arg.substr(6);
        } else if (arg == "--list") {
            for (const auto &f : figures())
                std::printf("%-10s %s\n", f.name, f.title);
            return 0;
        } else if (arg == "--list-schemes") {
            for (const sim::SchemeInfo &info : sim::allSchemes())
                std::printf("%-15s %s\n", info.cliName, info.name);
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: %s [--jobs N] [--out DIR] "
                "[--checkpoint-dir DIR] "
                "[--telemetry-epoch CYCLES] [--trace-out FILE] "
                "[--list] [--list-schemes] [figure...|all]\n"
                "  --checkpoint-dir DIR  journal finished tasks and "
                "cache warm-up snapshots\n"
                "                        under DIR; a killed run "
                "resumes where it stopped\n",
                argv[0]);
            return 0;
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            return 1;
        } else if (only) {
            std::fprintf(stderr,
                         "this binary runs only '%s'; use morc_sweep "
                         "for other figures\n",
                         only);
            return 1;
        } else {
            names.push_back(arg);
        }
    }

    std::vector<const Figure *> selected;
    if (only) {
        selected.push_back(findFigure(only));
    } else if (names.empty() ||
               (names.size() == 1 && names[0] == "all")) {
        for (const auto &f : figures())
            selected.push_back(&f);
    } else {
        for (const auto &n : names) {
            const Figure *f = findFigure(n);
            if (!f) {
                std::fprintf(stderr, "unknown figure '%s' (--list)\n",
                             n.c_str());
                return 1;
            }
            selected.push_back(f);
        }
    }

    if (!outDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(outDir, ec);
        if (ec) {
            std::fprintf(stderr, "cannot create %s: %s\n",
                         outDir.c_str(), ec.message().c_str());
            return 1;
        }
    }
    if (!checkpointDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(checkpointDir + "/warm",
                                            ec);
        if (ec) {
            std::fprintf(stderr, "cannot create %s: %s\n",
                         checkpointDir.c_str(), ec.message().c_str());
            return 1;
        }
        g_warmDir = checkpointDir + "/warm";
    }
    g_traceEvents = !traceOut.empty();

    // Traces from every selected figure, in deterministic task order.
    std::vector<std::pair<std::string, telemetry::TraceBuffer>> traces;
    const auto t0 = std::chrono::steady_clock::now();
    for (const Figure *fig : selected) {
        const auto f0 = std::chrono::steady_clock::now();
        std::unique_ptr<sweep::Journal> journal;
        if (!checkpointDir.empty()) {
            journal = std::make_unique<sweep::Journal>(
                checkpointDir + "/" + fig->name + ".journal");
            journal->load();
        }
        stats::Report rep;
        try {
            rep = runFigure(*fig, jobs, journal.get());
        } catch (const std::exception &e) {
            std::fprintf(stderr, "[%s] FAILED: %s\n", fig->name,
                         e.what());
            return 1;
        }
        banner(*fig);
        fig->present(rep);
        if (g_traceEvents) {
            for (const auto &run : rep.runs)
                if (!run.trace.empty())
                    traces.emplace_back(run.key, run.trace);
        }
        if (!outDir.empty()) {
            const std::string path =
                outDir + "/" + fig->name + ".json";
            const std::string json = rep.toJson();
            if (!snap::atomicWriteFile(path, json.data(),
                                       json.size())) {
                std::fprintf(stderr, "cannot write %s\n", path.c_str());
                return 1;
            }
        }
        const double secs =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - f0)
                .count();
        std::fprintf(stderr, "[%s] %zu tasks in %.1fs\n", fig->name,
                     rep.runs.size(), secs);
        std::printf("\n");
        std::fflush(stdout);
    }
    if (!traceOut.empty()) {
        const std::string json = telemetry::chromeTraceJson(traces);
        if (!snap::atomicWriteFile(traceOut, json.data(),
                                   json.size())) {
            std::fprintf(stderr, "cannot write %s\n", traceOut.c_str());
            return 1;
        }
        std::fprintf(stderr, "trace: %zu traced runs -> %s\n",
                     traces.size(), traceOut.c_str());
    }
    if (selected.size() > 1) {
        const double secs =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        std::fprintf(stderr, "total: %zu figures in %.1fs\n",
                     selected.size(), secs);
    }
    return 0;
}

} // namespace bench
} // namespace morc
