/**
 * @file
 * Registry of every paper figure/table as a sweep definition.
 *
 * A Figure contributes (a) a task enumerator — one sweep::Task per
 * (scheme x workload x config point), each returning a flat RunRecord —
 * and (b) a presenter that re-derives the paper's text table from the
 * finished stats::Report. Tasks are independent and deterministic, so
 * the engine can run them on any number of threads; presenters only read
 * the report, so text output and JSON always agree.
 *
 * The same registry backs the per-figure bench binaries (thin wrappers
 * over figureMain) and the morc_sweep CLI (sweepMain over any subset).
 */

#ifndef MORC_BENCH_FIGURES_HH
#define MORC_BENCH_FIGURES_HH

#include <string>
#include <vector>

#include "stats/report.hh"
#include "sweep/sweep.hh"

namespace morc {
namespace sweep {
class Journal;
}

namespace bench {

struct Figure
{
    const char *name;       // CLI name, e.g. "fig6"
    const char *title;      // banner line
    const char *paperClaim; // "Paper reports:" line
    std::vector<sweep::Task> (*tasks)();
    void (*present)(const stats::Report &);
};

/** Every figure/table, in paper order. */
const std::vector<Figure> &figures();

/** Lookup by name; nullptr if unknown. */
const Figure *findFigure(const std::string &name);

/**
 * Run one figure's sweep on @p jobs threads and assemble its report.
 *
 * With a @p journal (--checkpoint-dir), tasks whose key is already
 * journaled return their stored record without simulating, and every
 * freshly finished task is appended to the journal before the sweep
 * moves on — so a killed run resumes where it left off and reproduces
 * the uninterrupted report byte for byte.
 */
stats::Report runFigure(const Figure &fig, unsigned jobs,
                        sweep::Journal *journal = nullptr);

/**
 * Shared CLI driver: `[--jobs N] [--out DIR] [--checkpoint-dir DIR]
 * [--list] [figure...|all]`. When @p only is set (the per-figure bench
 * binaries), positional figure names are rejected and just that figure
 * runs.
 *
 * @return 0 on success; 1 on bad usage, unknown figure, or a failed
 *         sweep task.
 */
int sweepMain(int argc, char **argv, const char *only = nullptr);

} // namespace bench
} // namespace morc

#endif // MORC_BENCH_FIGURES_HH
