/**
 * @file
 * morc_sweep: run any paper figure/table sweep in parallel.
 *
 *   morc_sweep --list
 *   morc_sweep --jobs 8 --out results fig6 fig8
 *   morc_sweep --jobs $(nproc) all
 *   morc_sweep --telemetry-epoch 100000 --trace-out trace.json fig16
 *
 * Budgets scale with MORC_BENCH_INSTR / MORC_BENCH_WARMUP. JSON reports
 * (schema morc.sweep.report/v3) are bit-identical for any --jobs value.
 * --telemetry-epoch N samples every run's probe catalog each N simulated
 * cycles into the per-run "series" report section; --trace-out FILE
 * additionally records cycle-stamped events (log flushes, LMT conflict
 * evictions, fudge-factor near-ties, writeback bursts, NoC stalls) and
 * writes one Chrome trace-event JSON loadable in Perfetto. Both are off
 * by default and cost nothing when off.
 */

#include "common/figures.hh"

int
main(int argc, char **argv)
{
    return morc::bench::sweepMain(argc, argv);
}
