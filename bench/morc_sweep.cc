/**
 * @file
 * morc_sweep: run any paper figure/table sweep in parallel.
 *
 *   morc_sweep --list
 *   morc_sweep --jobs 8 --out results fig6 fig8
 *   morc_sweep --jobs $(nproc) all
 *
 * Budgets scale with MORC_BENCH_INSTR / MORC_BENCH_WARMUP. JSON reports
 * (schema morc.sweep.report/v2) are bit-identical for any --jobs value.
 */

#include "common/figures.hh"

int
main(int argc, char **argv)
{
    return morc::bench::sweepMain(argc, argv);
}
