file(REMOVE_RECURSE
  "CMakeFiles/bench_compressor_speed.dir/bench_compressor_speed.cc.o"
  "CMakeFiles/bench_compressor_speed.dir/bench_compressor_speed.cc.o.d"
  "bench_compressor_speed"
  "bench_compressor_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compressor_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
