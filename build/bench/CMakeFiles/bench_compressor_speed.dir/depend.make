# Empty dependencies file for bench_compressor_speed.
# This may be replaced when dependencies are built.
