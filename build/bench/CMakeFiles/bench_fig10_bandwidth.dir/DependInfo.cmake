
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig10_bandwidth.cc" "bench/CMakeFiles/bench_fig10_bandwidth.dir/bench_fig10_bandwidth.cc.o" "gcc" "bench/CMakeFiles/bench_fig10_bandwidth.dir/bench_fig10_bandwidth.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/morc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/morc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/morc_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/morc_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/morc_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/morc_energy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
