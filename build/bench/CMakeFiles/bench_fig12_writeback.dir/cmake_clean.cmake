file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_writeback.dir/bench_fig12_writeback.cc.o"
  "CMakeFiles/bench_fig12_writeback.dir/bench_fig12_writeback.cc.o.d"
  "bench_fig12_writeback"
  "bench_fig12_writeback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_writeback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
