# Empty dependencies file for bench_fig12_writeback.
# This may be replaced when dependencies are built.
