# Empty compiler generated dependencies file for bench_fig14_latency_dist.
# This may be replaced when dependencies are built.
