file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_merged.dir/bench_fig15_merged.cc.o"
  "CMakeFiles/bench_fig15_merged.dir/bench_fig15_merged.cc.o.d"
  "bench_fig15_merged"
  "bench_fig15_merged.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_merged.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
