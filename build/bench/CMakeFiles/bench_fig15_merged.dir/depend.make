# Empty dependencies file for bench_fig15_merged.
# This may be replaced when dependencies are built.
