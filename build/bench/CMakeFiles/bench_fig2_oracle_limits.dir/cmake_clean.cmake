file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_oracle_limits.dir/bench_fig2_oracle_limits.cc.o"
  "CMakeFiles/bench_fig2_oracle_limits.dir/bench_fig2_oracle_limits.cc.o.d"
  "bench_fig2_oracle_limits"
  "bench_fig2_oracle_limits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_oracle_limits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
