# Empty compiler generated dependencies file for bench_fig2_oracle_limits.
# This may be replaced when dependencies are built.
