file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_lbe_symbols.dir/bench_fig7_lbe_symbols.cc.o"
  "CMakeFiles/bench_fig7_lbe_symbols.dir/bench_fig7_lbe_symbols.cc.o.d"
  "bench_fig7_lbe_symbols"
  "bench_fig7_lbe_symbols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_lbe_symbols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
