# Empty dependencies file for bench_fig7_lbe_symbols.
# This may be replaced when dependencies are built.
