file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_multi_program.dir/bench_fig8_multi_program.cc.o"
  "CMakeFiles/bench_fig8_multi_program.dir/bench_fig8_multi_program.cc.o.d"
  "bench_fig8_multi_program"
  "bench_fig8_multi_program.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_multi_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
