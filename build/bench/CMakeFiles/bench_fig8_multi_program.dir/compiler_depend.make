# Empty compiler generated dependencies file for bench_fig8_multi_program.
# This may be replaced when dependencies are built.
