# Empty dependencies file for bench_table1_energy_ops.
# This may be replaced when dependencies are built.
