file(REMOVE_RECURSE
  "CMakeFiles/multi_program.dir/multi_program.cpp.o"
  "CMakeFiles/multi_program.dir/multi_program.cpp.o.d"
  "multi_program"
  "multi_program.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
