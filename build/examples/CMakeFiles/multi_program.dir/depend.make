# Empty dependencies file for multi_program.
# This may be replaced when dependencies are built.
