file(REMOVE_RECURSE
  "CMakeFiles/single_program.dir/single_program.cpp.o"
  "CMakeFiles/single_program.dir/single_program.cpp.o.d"
  "single_program"
  "single_program.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/single_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
