# Empty compiler generated dependencies file for single_program.
# This may be replaced when dependencies are built.
