
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/adaptive.cc" "src/cache/CMakeFiles/morc_cache.dir/adaptive.cc.o" "gcc" "src/cache/CMakeFiles/morc_cache.dir/adaptive.cc.o.d"
  "/root/repo/src/cache/decoupled.cc" "src/cache/CMakeFiles/morc_cache.dir/decoupled.cc.o" "gcc" "src/cache/CMakeFiles/morc_cache.dir/decoupled.cc.o.d"
  "/root/repo/src/cache/ideal.cc" "src/cache/CMakeFiles/morc_cache.dir/ideal.cc.o" "gcc" "src/cache/CMakeFiles/morc_cache.dir/ideal.cc.o.d"
  "/root/repo/src/cache/overheads.cc" "src/cache/CMakeFiles/morc_cache.dir/overheads.cc.o" "gcc" "src/cache/CMakeFiles/morc_cache.dir/overheads.cc.o.d"
  "/root/repo/src/cache/sc2.cc" "src/cache/CMakeFiles/morc_cache.dir/sc2.cc.o" "gcc" "src/cache/CMakeFiles/morc_cache.dir/sc2.cc.o.d"
  "/root/repo/src/cache/uncompressed.cc" "src/cache/CMakeFiles/morc_cache.dir/uncompressed.cc.o" "gcc" "src/cache/CMakeFiles/morc_cache.dir/uncompressed.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/compress/CMakeFiles/morc_compress.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
