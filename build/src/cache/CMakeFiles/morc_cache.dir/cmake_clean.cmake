file(REMOVE_RECURSE
  "CMakeFiles/morc_cache.dir/adaptive.cc.o"
  "CMakeFiles/morc_cache.dir/adaptive.cc.o.d"
  "CMakeFiles/morc_cache.dir/decoupled.cc.o"
  "CMakeFiles/morc_cache.dir/decoupled.cc.o.d"
  "CMakeFiles/morc_cache.dir/ideal.cc.o"
  "CMakeFiles/morc_cache.dir/ideal.cc.o.d"
  "CMakeFiles/morc_cache.dir/overheads.cc.o"
  "CMakeFiles/morc_cache.dir/overheads.cc.o.d"
  "CMakeFiles/morc_cache.dir/sc2.cc.o"
  "CMakeFiles/morc_cache.dir/sc2.cc.o.d"
  "CMakeFiles/morc_cache.dir/uncompressed.cc.o"
  "CMakeFiles/morc_cache.dir/uncompressed.cc.o.d"
  "libmorc_cache.a"
  "libmorc_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morc_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
