file(REMOVE_RECURSE
  "libmorc_cache.a"
)
