# Empty dependencies file for morc_cache.
# This may be replaced when dependencies are built.
