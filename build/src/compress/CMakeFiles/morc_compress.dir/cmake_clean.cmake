file(REMOVE_RECURSE
  "CMakeFiles/morc_compress.dir/bdi.cc.o"
  "CMakeFiles/morc_compress.dir/bdi.cc.o.d"
  "CMakeFiles/morc_compress.dir/cpack.cc.o"
  "CMakeFiles/morc_compress.dir/cpack.cc.o.d"
  "CMakeFiles/morc_compress.dir/fpc.cc.o"
  "CMakeFiles/morc_compress.dir/fpc.cc.o.d"
  "CMakeFiles/morc_compress.dir/huffman.cc.o"
  "CMakeFiles/morc_compress.dir/huffman.cc.o.d"
  "CMakeFiles/morc_compress.dir/lbe.cc.o"
  "CMakeFiles/morc_compress.dir/lbe.cc.o.d"
  "CMakeFiles/morc_compress.dir/lzss.cc.o"
  "CMakeFiles/morc_compress.dir/lzss.cc.o.d"
  "CMakeFiles/morc_compress.dir/tagcodec.cc.o"
  "CMakeFiles/morc_compress.dir/tagcodec.cc.o.d"
  "libmorc_compress.a"
  "libmorc_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morc_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
