file(REMOVE_RECURSE
  "libmorc_compress.a"
)
