# Empty dependencies file for morc_compress.
# This may be replaced when dependencies are built.
