file(REMOVE_RECURSE
  "CMakeFiles/morc_core.dir/morc.cc.o"
  "CMakeFiles/morc_core.dir/morc.cc.o.d"
  "libmorc_core.a"
  "libmorc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
