file(REMOVE_RECURSE
  "libmorc_core.a"
)
