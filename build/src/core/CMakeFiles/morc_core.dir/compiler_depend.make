# Empty compiler generated dependencies file for morc_core.
# This may be replaced when dependencies are built.
