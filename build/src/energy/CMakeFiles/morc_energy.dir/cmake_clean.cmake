file(REMOVE_RECURSE
  "CMakeFiles/morc_energy.dir/energy.cc.o"
  "CMakeFiles/morc_energy.dir/energy.cc.o.d"
  "libmorc_energy.a"
  "libmorc_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morc_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
