file(REMOVE_RECURSE
  "libmorc_energy.a"
)
