# Empty dependencies file for morc_energy.
# This may be replaced when dependencies are built.
