file(REMOVE_RECURSE
  "CMakeFiles/morc_sim.dir/scheme.cc.o"
  "CMakeFiles/morc_sim.dir/scheme.cc.o.d"
  "CMakeFiles/morc_sim.dir/system.cc.o"
  "CMakeFiles/morc_sim.dir/system.cc.o.d"
  "libmorc_sim.a"
  "libmorc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
