file(REMOVE_RECURSE
  "libmorc_sim.a"
)
