# Empty dependencies file for morc_sim.
# This may be replaced when dependencies are built.
