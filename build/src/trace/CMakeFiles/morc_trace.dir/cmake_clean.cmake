file(REMOVE_RECURSE
  "CMakeFiles/morc_trace.dir/trace_file.cc.o"
  "CMakeFiles/morc_trace.dir/trace_file.cc.o.d"
  "CMakeFiles/morc_trace.dir/value_model.cc.o"
  "CMakeFiles/morc_trace.dir/value_model.cc.o.d"
  "CMakeFiles/morc_trace.dir/workload.cc.o"
  "CMakeFiles/morc_trace.dir/workload.cc.o.d"
  "libmorc_trace.a"
  "libmorc_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morc_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
