file(REMOVE_RECURSE
  "libmorc_trace.a"
)
