# Empty dependencies file for morc_trace.
# This may be replaced when dependencies are built.
