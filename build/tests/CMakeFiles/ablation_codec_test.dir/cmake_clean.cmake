file(REMOVE_RECURSE
  "CMakeFiles/ablation_codec_test.dir/compress/ablation_codec_test.cc.o"
  "CMakeFiles/ablation_codec_test.dir/compress/ablation_codec_test.cc.o.d"
  "ablation_codec_test"
  "ablation_codec_test.pdb"
  "ablation_codec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
