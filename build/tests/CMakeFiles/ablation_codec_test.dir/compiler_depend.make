# Empty compiler generated dependencies file for ablation_codec_test.
# This may be replaced when dependencies are built.
