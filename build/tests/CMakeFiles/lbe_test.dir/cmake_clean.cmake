file(REMOVE_RECURSE
  "CMakeFiles/lbe_test.dir/compress/lbe_test.cc.o"
  "CMakeFiles/lbe_test.dir/compress/lbe_test.cc.o.d"
  "lbe_test"
  "lbe_test.pdb"
  "lbe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
