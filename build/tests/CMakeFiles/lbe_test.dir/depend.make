# Empty dependencies file for lbe_test.
# This may be replaced when dependencies are built.
