file(REMOVE_RECURSE
  "CMakeFiles/morc_invariants_test.dir/core/morc_invariants_test.cc.o"
  "CMakeFiles/morc_invariants_test.dir/core/morc_invariants_test.cc.o.d"
  "morc_invariants_test"
  "morc_invariants_test.pdb"
  "morc_invariants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morc_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
