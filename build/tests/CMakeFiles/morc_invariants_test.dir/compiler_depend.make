# Empty compiler generated dependencies file for morc_invariants_test.
# This may be replaced when dependencies are built.
