# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for morc_invariants_test.
