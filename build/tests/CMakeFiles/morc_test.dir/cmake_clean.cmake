file(REMOVE_RECURSE
  "CMakeFiles/morc_test.dir/core/morc_test.cc.o"
  "CMakeFiles/morc_test.dir/core/morc_test.cc.o.d"
  "morc_test"
  "morc_test.pdb"
  "morc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
