# Empty dependencies file for morc_test.
# This may be replaced when dependencies are built.
