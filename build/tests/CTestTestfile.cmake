# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/lbe_test[1]_include.cmake")
include("/root/repo/build/tests/codec_test[1]_include.cmake")
include("/root/repo/build/tests/ablation_codec_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/morc_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/trace_file_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/morc_invariants_test[1]_include.cmake")
include("/root/repo/build/tests/system_property_test[1]_include.cmake")
