/**
 * @file
 * MORC design-space exploration on one workload: log size, active-log
 * count, LMT provisioning/associativity, tag bases, and merged tags —
 * the knobs Sections 3.2 and 5.4 discuss.
 * Usage: design_space [workload] (default: gcc).
 */

#include <cstdio>

#include "core/morc.hh"
#include "sim/system.hh"

namespace {

morc::sim::RunResult
runWith(const morc::trace::BenchmarkSpec &spec,
        const morc::core::MorcConfig &morc, bool merged = false)
{
    using namespace morc;
    sim::SystemConfig cfg;
    cfg.scheme = merged ? sim::Scheme::MorcMerged : sim::Scheme::Morc;
    cfg.useMorcOverride = true;
    cfg.morc = morc;
    cfg.ratioSampleInterval = 200'000;
    sim::System sys(cfg, {spec});
    return sys.run(600'000, 1'200'000);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace morc;
    const auto spec =
        trace::resolveWorkload(argc > 1 ? argv[1] : "gcc");
    std::printf("MORC design space on %s\n\n", spec.name.c_str());

    {
        std::printf("log size (8 active logs):\n");
        for (unsigned bytes : {128u, 256u, 512u, 1024u, 2048u}) {
            core::MorcConfig m;
            m.logBytes = bytes;
            const auto r = runWith(spec, m);
            std::printf("  %5uB: ratio %.2f  GB/Binstr %.2f\n", bytes,
                        r.compressionRatio, r.gbPerBillionInstr());
        }
    }
    {
        std::printf("active logs (512B logs):\n");
        for (unsigned logs : {1u, 2u, 4u, 8u, 16u}) {
            core::MorcConfig m;
            m.activeLogs = logs;
            const auto r = runWith(spec, m);
            std::printf("  %5u: ratio %.2f\n", logs, r.compressionRatio);
        }
    }
    {
        std::printf("LMT provisioning x associativity:\n");
        for (unsigned factor : {2u, 4u, 8u, 16u}) {
            for (unsigned ways : {1u, 2u}) {
                core::MorcConfig m;
                m.lmtFactor = factor;
                m.lmtWays = ways;
                const auto r = runWith(spec, m);
                std::printf("  %2ux %u-way: ratio %.2f\n", factor, ways,
                            r.compressionRatio);
            }
        }
    }
    {
        std::printf("tag compression bases / merged tags:\n");
        for (unsigned bases : {1u, 2u}) {
            core::MorcConfig m;
            m.tagBases = bases;
            const auto r = runWith(spec, m);
            std::printf("  %u base(s): ratio %.2f\n", bases,
                        r.compressionRatio);
        }
        core::MorcConfig m;
        const auto r = runWith(spec, m, /*merged=*/true);
        std::printf("  merged tags: ratio %.2f\n", r.compressionRatio);
    }
    return 0;
}
