/**
 * @file
 * Design-space exploration on one workload: first the scheme arena
 * (every LLC in the shared sim::allSchemes() registry, so a newly
 * registered scheme shows up here without touching this file), then
 * the MORC-specific knobs — log size, active-log count, LMT
 * provisioning/associativity, tag bases, and merged tags — that
 * Sections 3.2 and 5.4 discuss.
 *
 * Exploration is expressed as a sweep: every design point is an
 * independent sweep::Task, fanned out over a work-stealing pool, and
 * the tables are printed from the collected records — the same pattern
 * the bench figures use (bench/common/figures.cc).
 *
 * Usage: design_space [workload] [jobs] (default: gcc, all cores).
 */

#include <cstdio>
#include <cstdlib>

#include "core/morc.hh"
#include "sim/system.hh"
#include "sweep/sweep.hh"

namespace {

using morc::stats::RunRecord;
using morc::sweep::Task;

/** One arena point: a registry scheme at the default 128 KB LLC. */
Task
arenaTask(std::string key, const morc::trace::BenchmarkSpec &spec,
          morc::sim::Scheme scheme)
{
    return Task{std::move(key), [spec, scheme](std::uint64_t) {
                    using namespace morc;
                    sim::SystemConfig cfg;
                    cfg.scheme = scheme;
                    cfg.ratioSampleInterval = 200'000;
                    sim::System sys(cfg, {spec});
                    const auto r = sys.run(600'000, 1'200'000);
                    RunRecord rec;
                    rec.metric("ratio", r.compressionRatio);
                    rec.metric("gb_per_binstr", r.gbPerBillionInstr());
                    rec.metric("lifetime_years", r.lifetime.years);
                    return rec;
                }};
}

Task
designTask(std::string key, const morc::trace::BenchmarkSpec &spec,
           const morc::core::MorcConfig &morc, bool merged = false)
{
    return Task{std::move(key), [spec, morc, merged](std::uint64_t) {
                    using namespace morc;
                    sim::SystemConfig cfg;
                    cfg.scheme = merged ? sim::Scheme::MorcMerged
                                        : sim::Scheme::Morc;
                    cfg.useMorcOverride = true;
                    cfg.morc = morc;
                    cfg.ratioSampleInterval = 200'000;
                    sim::System sys(cfg, {spec});
                    const auto r = sys.run(600'000, 1'200'000);
                    RunRecord rec;
                    rec.metric("ratio", r.compressionRatio);
                    rec.metric("gb_per_binstr", r.gbPerBillionInstr());
                    return rec;
                }};
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace morc;
    const auto spec =
        trace::resolveWorkload(argc > 1 ? argv[1] : "gcc");
    const unsigned jobs =
        argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 0;
    std::printf("MORC design space on %s\n\n", spec.name.c_str());

    const unsigned log_sizes[] = {128, 256, 512, 1024, 2048};
    const unsigned log_counts[] = {1, 2, 4, 8, 16};
    const unsigned lmt_factors[] = {2, 4, 8, 16};
    const unsigned lmt_ways[] = {1, 2};
    const unsigned tag_bases[] = {1, 2};

    std::vector<Task> tasks;
    for (const sim::SchemeInfo &info : sim::allSchemes())
        tasks.push_back(arenaTask(std::string("arena/") + info.cliName,
                                  spec, info.scheme));
    for (unsigned bytes : log_sizes) {
        core::MorcConfig m;
        m.logBytes = bytes;
        tasks.push_back(
            designTask("log" + std::to_string(bytes), spec, m));
    }
    for (unsigned logs : log_counts) {
        core::MorcConfig m;
        m.activeLogs = logs;
        tasks.push_back(
            designTask("active" + std::to_string(logs), spec, m));
    }
    for (unsigned factor : lmt_factors) {
        for (unsigned ways : lmt_ways) {
            core::MorcConfig m;
            m.lmtFactor = factor;
            m.lmtWays = ways;
            tasks.push_back(designTask("lmt" + std::to_string(factor) +
                                           "x" + std::to_string(ways),
                                       spec, m));
        }
    }
    for (unsigned bases : tag_bases) {
        core::MorcConfig m;
        m.tagBases = bases;
        tasks.push_back(
            designTask("bases" + std::to_string(bases), spec, m));
    }
    tasks.push_back(
        designTask("merged", spec, core::MorcConfig{}, true));

    sweep::Engine engine(jobs);
    const auto records = engine.run(tasks);
    const auto find = [&](const std::string &key) -> const RunRecord & {
        for (const auto &r : records) {
            if (r.key == key)
                return r;
        }
        std::abort();
    };

    std::printf("scheme arena (128 KB LLC):\n");
    for (const sim::SchemeInfo &info : sim::allSchemes()) {
        const auto &r = find(std::string("arena/") + info.cliName);
        std::printf("  %-14s ratio %.2f  GB/Binstr %.2f  "
                    "lifetime %.3f y\n",
                    info.name, r.get("ratio"), r.get("gb_per_binstr"),
                    r.get("lifetime_years"));
    }
    std::printf("log size (8 active logs):\n");
    for (unsigned bytes : log_sizes) {
        const auto &r = find("log" + std::to_string(bytes));
        std::printf("  %5uB: ratio %.2f  GB/Binstr %.2f\n", bytes,
                    r.get("ratio"), r.get("gb_per_binstr"));
    }
    std::printf("active logs (512B logs):\n");
    for (unsigned logs : log_counts) {
        std::printf("  %5u: ratio %.2f\n", logs,
                    find("active" + std::to_string(logs)).get("ratio"));
    }
    std::printf("LMT provisioning x associativity:\n");
    for (unsigned factor : lmt_factors) {
        for (unsigned ways : lmt_ways) {
            std::printf("  %2ux %u-way: ratio %.2f\n", factor, ways,
                        find("lmt" + std::to_string(factor) + "x" +
                             std::to_string(ways))
                            .get("ratio"));
        }
    }
    std::printf("tag compression bases / merged tags:\n");
    for (unsigned bases : tag_bases) {
        std::printf("  %u base(s): ratio %.2f\n", bases,
                    find("bases" + std::to_string(bases)).get("ratio"));
    }
    std::printf("  merged tags: ratio %.2f\n",
                find("merged").get("ratio"));
    return 0;
}
