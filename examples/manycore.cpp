/**
 * @file
 * The tiled-manycore substrate in one page: a 4x4 mesh (16 tiles, each
 * with a core and an LLC bank slice) with two edge memory controllers
 * sharing a fixed 1600 MB/s bandwidth cap, comparing MORC against an
 * uncompressed LLC on throughput per tile.
 *
 * This is the paper's Section 1 argument in miniature: as tiles
 * multiply, off-chip bandwidth per tile shrinks, and the compressed
 * cache's traffic reduction turns directly into sustained throughput.
 * Results are printed through the report layer (stats::Report), so the
 * same data can be emitted as schema v2 JSON with --json.
 *
 * Usage: manycore [--json]
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "sim/system.hh"
#include "stats/report.hh"

namespace {

morc::stats::RunRecord
runTiled(morc::sim::Scheme scheme)
{
    using namespace morc;
    sim::SystemConfig cfg;
    cfg.scheme = scheme;
    cfg.useMesh = true;
    cfg.meshCfg.width = 4;
    cfg.meshCfg.height = 4;
    cfg.meshCfg.memControllers = 2;
    cfg.numCores = cfg.meshCfg.tiles();
    cfg.bandwidthPerCore = 1600e6 / cfg.numCores; // 1600 MB/s total
    cfg.ratioSampleInterval = 100'000;

    const char *const programs[] = {"gcc", "mcf", "omnetpp", "soplex"};
    std::vector<trace::BenchmarkSpec> specs;
    for (unsigned c = 0; c < cfg.numCores; c++)
        specs.push_back(trace::resolveWorkload(programs[c % 4]));

    sim::System sys(cfg, specs);
    const sim::RunResult r = sys.run(100'000, 200'000);

    stats::RunRecord rec;
    rec.key = std::string("manycore/4x4/") + sim::schemeName(scheme);
    rec.label("mesh", "4x4");
    rec.label("scheme", sim::schemeName(scheme));
    rec.metric("mean_throughput", r.meanThroughput());
    rec.metric("sys_ipc_per_tile",
               static_cast<double>(r.totalInstructions) /
                   static_cast<double>(r.completionCycles) /
                   cfg.numCores);
    rec.metric("ratio", r.compressionRatio);
    rec.metric("gb_per_binstr", r.gbPerBillionInstr());
    rec.metric("noc_mean_hops", r.nocMeanHops);
    rec.metric("noc_messages", static_cast<double>(r.nocMessages));
    rec.histograms.emplace_back("noc_hops", r.nocHopHist);
    rec.histograms.emplace_back("noc_queue_cycles", r.nocQueueHist);
    return rec;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace morc;
    const bool json = argc > 1 && std::strcmp(argv[1], "--json") == 0;

    stats::Report rep;
    rep.figure = "manycore";
    rep.title = "16-tile mesh, 1600 MB/s total: MORC vs Uncompressed";
    rep.instrBudget = 100'000;
    rep.warmupBudget = 200'000;
    rep.runs.push_back(runTiled(sim::Scheme::Uncompressed));
    rep.runs.push_back(runTiled(sim::Scheme::Morc));

    if (json) {
        std::fputs(rep.toJson().c_str(), stdout);
        return 0;
    }

    const stats::RunRecord &u = rep.runs[0];
    const stats::RunRecord &m = rep.runs[1];
    std::printf("%s\n\n", rep.title.c_str());
    std::printf("%-14s %12s %14s %8s %10s %10s\n", "scheme", "thr/tile",
                "IPC/tile", "ratio", "GB/Binstr", "mean hops");
    for (const stats::RunRecord &r : rep.runs)
        std::printf("%-14s %12.3f %14.3f %8.2f %10.2f %10.2f\n",
                    r.labels[1].second.c_str(),
                    r.get("mean_throughput"), r.get("sys_ipc_per_tile"),
                    r.get("ratio"), r.get("gb_per_binstr"),
                    r.get("noc_mean_hops"));
    std::printf("\nMORC throughput/tile vs Uncompressed: %+.1f%%  "
                "(off-chip traffic %+.1f%%)\n",
                100.0 * (m.get("mean_throughput") /
                             u.get("mean_throughput") -
                         1.0),
                100.0 * (m.get("gb_per_binstr") / u.get("gb_per_binstr") -
                         1.0));
    return 0;
}
