/**
 * @file
 * A 16-core shared-LLC run of one Table 6 mix, showing per-core IPC and
 * how replicated workloads (Sx) compress across address spaces.
 * Usage: multi_program [mix] (default: S2 = 16x gcc).
 */

#include <cstdio>

#include "sim/system.hh"

int
main(int argc, char **argv)
{
    using namespace morc;
    const std::string mix_name = argc > 1 ? argv[1] : "S2";
    const trace::MultiProgramSpec *mix = nullptr;
    for (const auto &m : trace::table6Workloads()) {
        if (m.name == mix_name)
            mix = &m;
    }
    if (!mix) {
        std::fprintf(stderr, "unknown mix '%s' (use M0-M3 or S0-S7)\n",
                     mix_name.c_str());
        return 1;
    }

    std::vector<trace::BenchmarkSpec> programs;
    for (const auto &p : mix->programs)
        programs.push_back(trace::resolveWorkload(p));

    for (sim::Scheme s : {sim::Scheme::Uncompressed, sim::Scheme::Morc}) {
        sim::SystemConfig cfg;
        cfg.scheme = s;
        cfg.numCores = 16;
        cfg.ratioSampleInterval = 500'000;
        sim::System sys(cfg, programs);
        const auto r = sys.run(150'000, 300'000);
        std::printf("%s on %s: ratio %.2fx, GB/Binstr %.2f, gmean IPC "
                    "%.3f, completion %llu cycles\n",
                    sim::schemeName(s), mix->name.c_str(),
                    r.compressionRatio, r.gbPerBillionInstr(),
                    r.gmeanIpc(),
                    static_cast<unsigned long long>(r.completionCycles));
        if (s == sim::Scheme::Morc) {
            std::printf("  per-core IPC:");
            for (const auto &c : r.cores)
                std::printf(" %.2f", c.ipc());
            std::printf("\n");
        }
    }
    return 0;
}
