/**
 * @file
 * Quickstart: build a MORC cache, push some lines through it, read them
 * back, and inspect compression — the five-minute tour of the public
 * API (core::LogCache, comp::LbeEncoder, trace::ValueModel).
 */

#include <cstdio>

#include "compress/lbe.hh"
#include "core/morc.hh"
#include "trace/value_model.hh"

int
main()
{
    using namespace morc;

    // 1. A MORC cache with the paper's default configuration:
    //    128 KB of 512 B logs, 8 active logs, 8x LMT, compressed tags.
    core::MorcConfig cfg;
    core::LogCache cache(cfg);
    std::printf("MORC: %u logs x %uB, %u active, LMT %llu entries\n",
                cfg.numLogs(), cfg.logBytes, cfg.activeLogs,
                static_cast<unsigned long long>(cfg.lmtEntries()));

    // 2. Synthesize some realistic cache-line data. ValueModel produces
    //    deterministic lines with controlled redundancy (zeros, value
    //    pools, repeated 128/256-bit chunks).
    trace::DataProfile profile;
    profile.zeroHalfFrac = 0.2;
    profile.poolWordFrac = 0.5;
    profile.chunk256Frac = 0.25;
    profile.chunk256Pool = 8;
    trace::ValueModel values(profile);

    // 3. Fill the cache. insert() compresses each line with LBE into
    //    the best active log and returns any dirty victims for memory.
    for (Addr line = 0; line < 4000; line++) {
        const auto result =
            cache.insert(line << kLineShift, values.line(line, 0),
                         /*dirty=*/false);
        (void)result;
    }
    std::printf("after 4000 fills: %llu lines resident, compression "
                "ratio %.2fx\n",
                static_cast<unsigned long long>(cache.validLines()),
                cache.compressionRatio());

    // 4. Read a line back. The result carries the position-dependent
    //    decompression latency — MORC's core trade-off.
    const Addr probe = 3999ull << kLineShift;
    const auto read = cache.read(probe);
    std::printf("read %s: +%u cycles decompression (%llu bytes decoded, "
                "%u lines)\n",
                read.hit ? "hit" : "miss", read.extraLatency,
                static_cast<unsigned long long>(read.bytesDecompressed),
                read.linesDecompressed);

    // 5. The same data through a raw LBE stream, to see the codec
    //    itself at work.
    comp::LbeEncoder lbe;
    std::uint64_t bits = 0;
    for (Addr line = 0; line < 64; line++)
        bits += lbe.append(values.line(line, 0));
    std::printf("raw LBE on 64 lines: %.1f bits/line (%.2fx)\n",
                bits / 64.0, 64.0 * 512.0 / static_cast<double>(bits));
    return 0;
}
