/**
 * @file
 * Compare every cache scheme on one benchmark under the paper's default
 * system (Table 5). Usage: single_program [workload] (default: gcc;
 * any Figure 6 workload name, e.g. "soplex" or "bzip2_3").
 */

#include <cstdio>

#include "sim/system.hh"

int
main(int argc, char **argv)
{
    using namespace morc;
    const std::string name = argc > 1 ? argv[1] : "gcc";
    const auto spec = trace::resolveWorkload(name);

    std::printf("workload %s: memFrac %.2f wsBytes %lluMB hot %lluKB\n\n",
                spec.name.c_str(), spec.access.memFrac,
                static_cast<unsigned long long>(spec.access.wsBytes >> 20),
                static_cast<unsigned long long>(spec.access.hotBytes >>
                                                10));
    std::printf("%-14s %8s %10s %8s %8s %12s\n", "scheme", "ratio",
                "GB/Binstr", "IPC", "thruput", "energy (mJ)");

    double base_ipc = 0, base_thr = 0;
    for (sim::Scheme s :
         {sim::Scheme::Uncompressed, sim::Scheme::Adaptive,
          sim::Scheme::Decoupled, sim::Scheme::Sc2, sim::Scheme::Morc,
          sim::Scheme::MorcMerged}) {
        sim::SystemConfig cfg;
        cfg.scheme = s;
        cfg.ratioSampleInterval = 200'000;
        sim::System sys(cfg, {spec});
        const auto r = sys.run(1'000'000, 2'000'000);
        if (s == sim::Scheme::Uncompressed) {
            base_ipc = r.cores[0].ipc();
            base_thr = r.cores[0].throughput();
        }
        std::printf("%-14s %7.2fx %10.2f %7.3f %8.3f %12.2f",
                    sim::schemeName(s), r.compressionRatio,
                    r.gbPerBillionInstr(), r.cores[0].ipc(),
                    r.cores[0].throughput(),
                    1e3 * r.energyBreakdown.total());
        if (s != sim::Scheme::Uncompressed) {
            std::printf("   (IPC %+0.0f%%, thr %+0.0f%%)",
                        100.0 * (r.cores[0].ipc() / base_ipc - 1.0),
                        100.0 * (r.cores[0].throughput() / base_thr -
                                 1.0));
        }
        std::printf("\n");
    }
    return 0;
}
