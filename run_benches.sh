#!/usr/bin/env bash
# Regenerate every paper table/figure via the parallel sweep engine.
#
#   ./run_benches.sh                     # all figures, all cores
#   ./run_benches.sh --jobs 4 fig6 fig8  # a subset on 4 threads
#   ./run_benches.sh --out results       # also write JSON reports
#   ./run_benches.sh --smoke             # CI gate: tiny budget, fig6
#
# Budgets scale with MORC_BENCH_INSTR / MORC_BENCH_WARMUP. Any bench
# failure (crash or failed sweep task) propagates as a non-zero exit.
set -euo pipefail
cd "$(dirname "$0")"

# --smoke: a fast end-to-end exercise of the sweep engine for CI. It
# runs one representative single-program figure plus the mesh scaling
# sweep (the tiled-substrate path) on a tiny instruction budget —
# enough to catch crashes, sweep-task failures, and schema regressions
# without paying for paper-fidelity statistics. Must come before the
# defaults below so the smoke budget wins unless the caller overrode it.
SMOKE_ARGS=()
SMOKE=0
for arg in "$@"; do
    if [ "$arg" = "--smoke" ]; then
        export MORC_BENCH_INSTR=${MORC_BENCH_INSTR:-20000}
        export MORC_BENCH_WARMUP=${MORC_BENCH_WARMUP:-40000}
        SMOKE_ARGS=(fig6 mesh kvserve lifetime)
        SMOKE=1
    fi
done

export MORC_BENCH_INSTR=${MORC_BENCH_INSTR:-250000}
export MORC_BENCH_WARMUP=${MORC_BENCH_WARMUP:-500000}

SWEEP=build/bench/morc_sweep
if [ ! -x "$SWEEP" ]; then
    echo "error: $SWEEP not built (cmake -B build && cmake --build build)" >&2
    exit 1
fi

JOBS=$(nproc 2>/dev/null || echo 1)
ARGS=()
while [ $# -gt 0 ]; do
    case "$1" in
      --jobs) JOBS="$2"; shift 2 ;;
      --jobs=*) JOBS="${1#--jobs=}"; shift ;;
      --smoke) shift ;; # handled above
      *) ARGS+=("$1"); shift ;;
    esac
done
if [ ${#ARGS[@]} -eq 0 ] && [ ${#SMOKE_ARGS[@]} -gt 0 ]; then
    ARGS=("${SMOKE_ARGS[@]}")
fi

# Smoke also exercises the telemetry path end to end: a traced mesh
# sweep must produce a parseable Chrome trace JSON with events in it.
if [ "$SMOKE" = 1 ]; then
    # The scheme list is owned by one registry (sim/scheme.{hh,cc});
    # every enumerating surface (morc_check, the lifetime figure, the
    # design-space arena, this script) reads it through the binaries.
    # A scheme missing from --list-schemes means a driver grew its own
    # private list again.
    for s in uncompressed morc touche; do
        "$SWEEP" --list-schemes | grep -q "^$s " || {
            echo "error: scheme '$s' missing from the shared registry" >&2
            exit 1
        }
    done
    echo "smoke registry OK: $("$SWEEP" --list-schemes | wc -l) schemes"
    TRACE=$(mktemp /tmp/morc_smoke_trace.XXXXXX.json)
    "$SWEEP" --jobs "$JOBS" --telemetry-epoch 100000 \
        --trace-out "$TRACE" mesh > /dev/null
    python3 - "$TRACE" <<'EOF'
import json, sys
t = json.load(open(sys.argv[1]))
events = t["traceEvents"]
assert any(e.get("ph") == "i" for e in events), "no instant events"
print(f"smoke trace OK: {len(events)} events")
EOF
    rm -f "$TRACE"

    # ...and the checkpoint path: the same figure swept twice against
    # one --checkpoint-dir must serve the second run from the journal
    # ("resuming" on stderr) and emit byte-identical JSON.
    CKPT=$(mktemp -d /tmp/morc_smoke_ckpt.XXXXXX)
    "$SWEEP" --jobs "$JOBS" --checkpoint-dir "$CKPT" \
        --out "$CKPT/first" fig6 > /dev/null
    "$SWEEP" --jobs "$JOBS" --checkpoint-dir "$CKPT" \
        --out "$CKPT/second" fig6 > /dev/null 2> "$CKPT/resume.log"
    grep -q 'resuming' "$CKPT/resume.log"
    cmp "$CKPT/first/fig6.json" "$CKPT/second/fig6.json"
    echo "smoke checkpoint OK: resumed report is byte-identical"
    rm -rf "$CKPT"

    # ...and the KV-serving subsystem: the same kvserve sweep on one
    # thread and on all threads must emit byte-identical schema-v5
    # reports (per-tenant seeding + task-order assembly), and the
    # report must carry the v4 percentiles section.
    KVDIR=$(mktemp -d /tmp/morc_smoke_kv.XXXXXX)
    "$SWEEP" --jobs 1 --out "$KVDIR/j1" kvserve > /dev/null
    "$SWEEP" --jobs "$JOBS" --out "$KVDIR/jN" kvserve > /dev/null
    cmp "$KVDIR/j1/kvserve.json" "$KVDIR/jN/kvserve.json"
    python3 - "$KVDIR/j1/kvserve.json" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["schema"] == "morc.sweep.report/v5", r["schema"]
runs = r["runs"]
assert any("percentiles" in run for run in runs), "no percentiles"
p = next(run["percentiles"] for run in runs if "percentiles" in run)
assert "p99.9" in p["latency.all"], p
print(f"smoke kv OK: {len(runs)} runs, jobs-independent bytes")
EOF
    rm -rf "$KVDIR"

    # ...and the wear/lifetime subsystem: the lifetime figure ranks
    # every registry scheme, must be byte-identical at jobs=1 vs jobs=8
    # (wear charging happens inside the per-task simulation, so thread
    # count must not leak into the report), and must carry the v5
    # lifetime section for every run.
    LTDIR=$(mktemp -d /tmp/morc_smoke_lt.XXXXXX)
    "$SWEEP" --jobs 1 --out "$LTDIR/j1" lifetime > /dev/null
    "$SWEEP" --jobs 8 --out "$LTDIR/j8" lifetime > /dev/null
    cmp "$LTDIR/j1/lifetime.json" "$LTDIR/j8/lifetime.json"
    python3 - "$LTDIR/j1/lifetime.json" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["schema"] == "morc.sweep.report/v5", r["schema"]
runs = r["runs"]
assert all("lifetime" in run for run in runs), "run missing lifetime"
keys = {"cell_bits_written", "cell_bit_flips", "write_bits_per_sec",
        "flips_per_cell_per_sec", "imbalance", "set_variance", "years"}
assert keys <= set(runs[0]["lifetime"]), runs[0]["lifetime"]
schemes = {run["labels"]["scheme"] for run in runs}
assert "Touche" in schemes and "MORC" in schemes, schemes
print(f"smoke lifetime OK: {len(schemes)} schemes ranked, "
      "jobs-independent bytes")
EOF
    rm -rf "$LTDIR"

    # ...and the Touché perf gate: signature lookup + fill must stay
    # within threshold of the checked-in baseline (BM_FpcLine-
    # normalized, like the other gates).
    BENCH_TOUCHE=build/bench/bench_touche_speed
    if [ -x "$BENCH_TOUCHE" ]; then
        TOUCHE_JSON=$(mktemp /tmp/morc_bench_touche.XXXXXX.json)
        "$BENCH_TOUCHE" --benchmark_out="$TOUCHE_JSON" \
            --benchmark_out_format=json > /dev/null
        python3 tools/perf_gate.py "$TOUCHE_JSON" \
            bench/baselines/BENCH_touche.json --gate BM_Touche \
            --threshold 0.30 \
            --reference 'BM_FpcLine/min_time:2.000'
        rm -f "$TOUCHE_JSON"
    else
        echo "touche perf gate skipped: $BENCH_TOUCHE not built" >&2
    fi

    # ...and the KV perf gate against its checked-in baseline.
    BENCH_KV=build/bench/bench_kv_speed
    if [ -x "$BENCH_KV" ]; then
        KV_JSON=$(mktemp /tmp/morc_bench_kv.XXXXXX.json)
        "$BENCH_KV" --benchmark_out="$KV_JSON" \
            --benchmark_out_format=json > /dev/null
        # Looser threshold than the codec gate: these are end-to-end
        # service macrobenchmarks (µs per op through generator, cache,
        # and tier maps), so host jitter is proportionally larger.
        python3 tools/perf_gate.py "$KV_JSON" \
            bench/baselines/BENCH_kv.json --gate BM_Kv --threshold 0.30 \
            --reference 'BM_FpcLine/min_time:2.000'
        rm -f "$KV_JSON"
    else
        echo "kv perf gate skipped: $BENCH_KV not built" >&2
    fi

    # ...and the compressor perf gate: the LBE hot path (the
    # simulator's hottest loop) must stay within threshold of the
    # checked-in baseline. Normalization by the untouched FPC codec
    # inside perf_gate.py cancels host-speed differences.
    BENCH_SPEED=build/bench/bench_compressor_speed
    if [ -x "$BENCH_SPEED" ]; then
        PERF_JSON=$(mktemp /tmp/morc_bench_compress.XXXXXX.json)
        "$BENCH_SPEED" --benchmark_filter='BM_Lbe|BM_FpcLine' \
            --benchmark_out="$PERF_JSON" \
            --benchmark_out_format=json > /dev/null
        python3 tools/perf_gate.py "$PERF_JSON" \
            bench/baselines/BENCH_compress.json
        rm -f "$PERF_JSON"
    else
        echo "perf gate skipped: $BENCH_SPEED not built" >&2
    fi
fi

exec "$SWEEP" --jobs "$JOBS" "${ARGS[@]+"${ARGS[@]}"}"
