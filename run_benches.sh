#!/usr/bin/env bash
# Regenerate every paper table/figure via the parallel sweep engine.
#
#   ./run_benches.sh                     # all figures, all cores
#   ./run_benches.sh --jobs 4 fig6 fig8  # a subset on 4 threads
#   ./run_benches.sh --out results       # also write JSON reports
#
# Budgets scale with MORC_BENCH_INSTR / MORC_BENCH_WARMUP. Any bench
# failure (crash or failed sweep task) propagates as a non-zero exit.
set -euo pipefail
export MORC_BENCH_INSTR=${MORC_BENCH_INSTR:-250000}
export MORC_BENCH_WARMUP=${MORC_BENCH_WARMUP:-500000}
cd "$(dirname "$0")"

SWEEP=build/bench/morc_sweep
if [ ! -x "$SWEEP" ]; then
    echo "error: $SWEEP not built (cmake -B build && cmake --build build)" >&2
    exit 1
fi

JOBS=$(nproc 2>/dev/null || echo 1)
ARGS=()
while [ $# -gt 0 ]; do
    case "$1" in
      --jobs) JOBS="$2"; shift 2 ;;
      --jobs=*) JOBS="${1#--jobs=}"; shift ;;
      *) ARGS+=("$1"); shift ;;
    esac
done

exec "$SWEEP" --jobs "$JOBS" "${ARGS[@]+"${ARGS[@]}"}"
