#!/bin/bash
# Regenerate every paper table/figure. Budgets scale with MORC_BENCH_INSTR.
export MORC_BENCH_INSTR=${MORC_BENCH_INSTR:-250000}
export MORC_BENCH_WARMUP=${MORC_BENCH_WARMUP:-500000}
cd "$(dirname "$0")"
for b in build/bench/bench_*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    echo "### $b"
    "$b"
    echo
done
