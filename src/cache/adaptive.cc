#include "cache/adaptive.hh"

#include <algorithm>

#include "check/check.hh"
#include "util/rng.hh"

namespace morc {
namespace cache {

AdaptiveCache::AdaptiveCache() : AdaptiveCache(Config{}) {}

AdaptiveCache::AdaptiveCache(const Config &cfg) : cfg_(cfg)
{
    numSets_ = cfg.capacityBytes / kLineSize / cfg.ways;
    MORC_CHECK(numSets_ >= 1 && isPow2(numSets_),
               "set count must be a non-zero power of two: capacity=%llu "
               "ways=%u -> sets=%llu",
               static_cast<unsigned long long>(cfg.capacityBytes),
               cfg.ways, static_cast<unsigned long long>(numSets_));
    sets_.resize(numSets_);
    // Segment allocation shifts entries around the set's data space, so
    // wear is tracked per set only.
    wear_.configure(numSets_, 1);
}

void
AdaptiveCache::lineImage(const CacheLine &data, bool compressed,
                         BitWriter &out)
{
    if (compressed) {
        comp::CpackEncoder enc;
        enc.append(data, &out);
    } else {
        energy::rawImage(data, out);
    }
}

std::uint64_t
AdaptiveCache::setOf(Addr addr) const
{
    return splitmix64(lineNumber(addr)) & (numSets_ - 1);
}

unsigned
AdaptiveCache::segmentsFor(std::uint32_t bits) const
{
    return static_cast<unsigned>(
        divCeil(divCeil(bits, 8), cfg_.segmentBytes));
}

unsigned
AdaptiveCache::segBudget() const
{
    return cfg_.ways * kLineSize / cfg_.segmentBytes;
}

unsigned
AdaptiveCache::stackDepth(const Set &set, const LineEntry &line) const
{
    unsigned depth = 0;
    for (const auto &other : set.lines) {
        if (other.lastUse > line.lastUse)
            depth++;
    }
    return depth;
}

ReadResult
AdaptiveCache::read(Addr addr)
{
    stats_.reads++;
    ReadResult r;
    Set &set = sets_[setOf(addr)];
    const Addr tag = lineNumber(addr);
    for (auto &line : set.lines) {
        if (line.tag != tag)
            continue;
        if (!line.hasData) {
            // Shadow-tag hit (Alameldeen & Wood's extra tags): the line
            // would have been resident had the set been compressed.
            // This is a miss, but it votes for compression with the
            // avoided memory latency.
            predictor_ += cfg_.predictorMemLatency;
            line.lastUse = ++useClock_;
            return r;
        }
        stats_.readHits++;
        r.hit = true;
        r.data = line.data;
        if (line.compressed) {
            r.extraLatency = cfg_.decompressionLatency;
            r.bytesDecompressed = kLineSize;
            r.linesDecompressed = 1;
            stats_.linesDecompressed++;
            stats_.bytesDecompressed += kLineSize;
            // A hit that would also have hit uncompressed paid the
            // decompression latency for nothing: vote against.
            if (stackDepth(set, line) < cfg_.ways)
                predictor_ -= cfg_.decompressionLatency;
        }
        line.lastUse = ++useClock_;
        return r;
    }
    return r;
}

void
AdaptiveCache::evictUntilFits(Set &set, unsigned needed_segments,
                              FillResult &result)
{
    const unsigned budget = segBudget();
    const unsigned max_tags = cfg_.ways * cfg_.tagFactor;
    auto used = [&] {
        unsigned sum = 0;
        for (const auto &l : set.lines)
            sum += l.segments;
        return sum;
    };

    // Data pressure: demote LRU data-holding lines to shadow tags
    // (write back dirty data first).
    while (used() + needed_segments > budget) {
        LineEntry *victim = nullptr;
        for (auto &l : set.lines) {
            if (!l.hasData)
                continue;
            if (!victim || l.lastUse < victim->lastUse)
                victim = &l;
        }
        MORC_CHECK(victim != nullptr,
                   "segment budget exceeded with no data lines: need %u "
                   "segments on top of %u used (budget %u)",
                   needed_segments, used(), budget);
        if (victim->dirty) {
            result.writebacks.push_back(
                {victim->tag << kLineShift, victim->data});
            stats_.victimWritebacks++;
            if (victim->compressed) {
                result.linesDecompressed++;
                result.bytesDecompressed += kLineSize;
                stats_.linesDecompressed++;
                stats_.bytesDecompressed += kLineSize;
            }
        }
        victim->hasData = false;
        victim->dirty = false;
        victim->compressed = false;
        victim->segments = 0;
        victim->data = CacheLine{};
        valid_--;
    }

    // Tag pressure: drop LRU entries outright.
    while (set.lines.size() + 1 > max_tags) {
        auto victim = set.lines.begin();
        for (auto it = set.lines.begin(); it != set.lines.end(); ++it) {
            if (it->lastUse < victim->lastUse)
                victim = it;
        }
        if (victim->hasData) {
            if (victim->dirty) {
                result.writebacks.push_back(
                    {victim->tag << kLineShift, victim->data});
                stats_.victimWritebacks++;
            }
            valid_--;
        }
        set.lines.erase(victim);
    }
}

FillResult
AdaptiveCache::insert(Addr addr, const CacheLine &data, bool dirty)
{
    stats_.inserts++;
    FillResult result;
    Set &set = sets_[setOf(addr)];
    const Addr tag = lineNumber(addr);

    const bool compress = predictor_ >= 0;
    const std::uint32_t bits = comp::CpackEncoder::lineBits(data);
    unsigned segments = compress ? segmentsFor(bits)
                                 : kLineSize / cfg_.segmentBytes;
    bool stored_compressed = compress;
    if (segments >= kLineSize / cfg_.segmentBytes) {
        segments = kLineSize / cfg_.segmentBytes;
        stored_compressed = false; // expansion: store raw
    }
    if (stored_compressed) {
        stats_.linesCompressed++;
        result.linesCompressed++;
    }

    // Replace any existing entry (resident or shadow). A size change
    // within contiguous segments forces re-allocation, which models the
    // compaction the scheme needs.
    bool hadData = false;
    BitWriter oldImage;
    for (auto it = set.lines.begin(); it != set.lines.end(); ++it) {
        if (it->tag == tag) {
            if (it->hasData) {
                dirty |= it->dirty;
                valid_--;
                hadData = true;
                lineImage(it->data, it->compressed, oldImage);
            }
            set.lines.erase(it);
            break;
        }
    }

    evictUntilFits(set, segments, result);

    LineEntry entry;
    entry.tag = tag;
    entry.hasData = true;
    entry.dirty = dirty;
    entry.compressed = stored_compressed;
    entry.segments = segments;
    entry.lastUse = ++useClock_;
    entry.data = data;
    // Charge the emitted image against the frame: flips relative to the
    // replaced entry's image when the same line is re-programmed in
    // place, otherwise a program of previously erased segments.
    BitWriter newImage;
    lineImage(data, stored_compressed, newImage);
    chargeWear(setOf(addr), 0, newImage.sizeBits(),
               hadData ? energy::flipBits(oldImage.words(),
                                          oldImage.sizeBits(),
                                          newImage.words(),
                                          newImage.sizeBits())
                       : energy::popcountBits(newImage.words(),
                                              newImage.sizeBits()));
    set.lines.push_back(entry);
    valid_++;
    return result;
}

check::AuditReport
AdaptiveCache::audit() const
{
    check::AuditReport r;
    const unsigned budget = segBudget();
    const unsigned max_tags = cfg_.ways * cfg_.tagFactor;
    const unsigned max_segments = kLineSize / cfg_.segmentBytes;
    std::uint64_t total_valid = 0;
    for (std::uint64_t s = 0; s < sets_.size(); s++) {
        const Set &set = sets_[s];
        r.require(set.lines.size() <= max_tags,
                  "set %llu holds %zu tags, budget %u",
                  static_cast<unsigned long long>(s), set.lines.size(),
                  max_tags);
        unsigned used = 0;
        for (std::size_t i = 0; i < set.lines.size(); i++) {
            const LineEntry &l = set.lines[i];
            used += l.segments;
            r.require(setOf(l.tag << kLineShift) == s,
                      "set %llu entry %zu holds tag %llu that indexes "
                      "set %llu",
                      static_cast<unsigned long long>(s), i,
                      static_cast<unsigned long long>(l.tag),
                      static_cast<unsigned long long>(
                          setOf(l.tag << kLineShift)));
            for (std::size_t j = i + 1; j < set.lines.size(); j++) {
                r.require(set.lines[j].tag != l.tag,
                          "set %llu holds duplicate tag %llu at entries "
                          "%zu and %zu",
                          static_cast<unsigned long long>(s),
                          static_cast<unsigned long long>(l.tag), i, j);
            }
            if (l.hasData) {
                total_valid++;
                r.require(l.segments >= 1 && l.segments <= max_segments,
                          "set %llu tag %llu data line spans %u segments "
                          "(want 1..%u)",
                          static_cast<unsigned long long>(s),
                          static_cast<unsigned long long>(l.tag),
                          l.segments, max_segments);
                r.require(!l.compressed || l.segments < max_segments,
                          "set %llu tag %llu marked compressed but fills "
                          "all %u segments",
                          static_cast<unsigned long long>(s),
                          static_cast<unsigned long long>(l.tag),
                          l.segments);
            } else {
                // Shadow tag: no storage, no dirty data to lose.
                r.require(l.segments == 0 && !l.dirty && !l.compressed,
                          "set %llu shadow tag %llu carries state "
                          "(segments=%u dirty=%d compressed=%d)",
                          static_cast<unsigned long long>(s),
                          static_cast<unsigned long long>(l.tag),
                          l.segments, l.dirty ? 1 : 0,
                          l.compressed ? 1 : 0);
            }
        }
        r.require(used <= budget,
                  "set %llu uses %u segments, budget %u",
                  static_cast<unsigned long long>(s), used, budget);
    }
    r.require(total_valid == valid_,
              "valid-line counter %llu disagrees with %llu data-holding "
              "entries",
              static_cast<unsigned long long>(valid_),
              static_cast<unsigned long long>(total_valid));
    return r;
}

void
AdaptiveCache::saveState(snap::Serializer &s) const
{
    s.beginSection("ADPT");
    s.u64(cfg_.capacityBytes);
    s.u32(cfg_.ways);
    s.u32(cfg_.tagFactor);
    s.u32(cfg_.segmentBytes);
    s.u64(useClock_);
    s.u64(valid_);
    s.i64(predictor_);
    stats_.save(s);
    wear_.save(s);
    s.vec(sets_, [&](const Set &set) {
        s.vec(set.lines, [&](const LineEntry &l) {
            s.u64(l.tag);
            s.boolean(l.hasData);
            s.boolean(l.dirty);
            s.boolean(l.compressed);
            s.u32(l.segments);
            s.u64(l.lastUse);
            s.bytes(l.data.bytes.data(), kLineSize);
        });
    });
    s.endSection();
}

void
AdaptiveCache::restoreState(snap::Deserializer &d)
{
    if (!d.beginSection("ADPT"))
        return;
    const std::uint64_t capacity = d.u64();
    const std::uint32_t ways = d.u32();
    const std::uint32_t tagFactor = d.u32();
    const std::uint32_t segBytes = d.u32();
    const std::uint64_t useClock = d.u64();
    const std::uint64_t valid = d.u64();
    const std::int64_t predictor = d.i64();
    LlcStats stats;
    stats.restore(d);
    energy::WearTracker wear = wear_;
    wear.restore(d);
    std::vector<Set> sets;
    d.readVec(sets, 8, [&] {
        Set set;
        d.readVec(set.lines, 8 + 3 + 4 + 8 + kLineSize, [&] {
            LineEntry l;
            l.tag = d.u64();
            l.hasData = d.boolean();
            l.dirty = d.boolean();
            l.compressed = d.boolean();
            l.segments = d.u32();
            l.lastUse = d.u64();
            d.bytes(l.data.bytes.data(), kLineSize);
            return l;
        });
        return set;
    });
    if (d.ok() && (capacity != cfg_.capacityBytes || ways != cfg_.ways ||
                   tagFactor != cfg_.tagFactor ||
                   segBytes != cfg_.segmentBytes ||
                   sets.size() != sets_.size())) {
        d.fail("adaptive cache geometry mismatch");
    }
    d.endSection();
    if (!d.ok())
        return;
    useClock_ = useClock;
    valid_ = valid;
    predictor_ = predictor;
    stats_ = stats;
    wear_ = std::move(wear);
    sets_ = std::move(sets);
}

} // namespace cache
} // namespace morc
