#include "cache/adaptive.hh"

#include <algorithm>
#include <cassert>

#include "util/rng.hh"

namespace morc {
namespace cache {

AdaptiveCache::AdaptiveCache() : AdaptiveCache(Config{}) {}

AdaptiveCache::AdaptiveCache(const Config &cfg) : cfg_(cfg)
{
    numSets_ = cfg.capacityBytes / kLineSize / cfg.ways;
    assert(numSets_ >= 1 && isPow2(numSets_));
    sets_.resize(numSets_);
}

std::uint64_t
AdaptiveCache::setOf(Addr addr) const
{
    return splitmix64(lineNumber(addr)) & (numSets_ - 1);
}

unsigned
AdaptiveCache::segmentsFor(std::uint32_t bits) const
{
    return static_cast<unsigned>(
        divCeil(divCeil(bits, 8), cfg_.segmentBytes));
}

unsigned
AdaptiveCache::segBudget() const
{
    return cfg_.ways * kLineSize / cfg_.segmentBytes;
}

unsigned
AdaptiveCache::stackDepth(const Set &set, const LineEntry &line) const
{
    unsigned depth = 0;
    for (const auto &other : set.lines) {
        if (other.lastUse > line.lastUse)
            depth++;
    }
    return depth;
}

ReadResult
AdaptiveCache::read(Addr addr)
{
    stats_.reads++;
    ReadResult r;
    Set &set = sets_[setOf(addr)];
    const Addr tag = lineNumber(addr);
    for (auto &line : set.lines) {
        if (line.tag != tag)
            continue;
        if (!line.hasData) {
            // Shadow-tag hit (Alameldeen & Wood's extra tags): the line
            // would have been resident had the set been compressed.
            // This is a miss, but it votes for compression with the
            // avoided memory latency.
            predictor_ += cfg_.predictorMemLatency;
            line.lastUse = ++useClock_;
            return r;
        }
        stats_.readHits++;
        r.hit = true;
        r.data = line.data;
        if (line.compressed) {
            r.extraLatency = cfg_.decompressionLatency;
            r.bytesDecompressed = kLineSize;
            r.linesDecompressed = 1;
            stats_.linesDecompressed++;
            stats_.bytesDecompressed += kLineSize;
            // A hit that would also have hit uncompressed paid the
            // decompression latency for nothing: vote against.
            if (stackDepth(set, line) < cfg_.ways)
                predictor_ -= cfg_.decompressionLatency;
        }
        line.lastUse = ++useClock_;
        return r;
    }
    return r;
}

void
AdaptiveCache::evictUntilFits(Set &set, unsigned needed_segments,
                              FillResult &result)
{
    const unsigned budget = segBudget();
    const unsigned max_tags = cfg_.ways * cfg_.tagFactor;
    auto used = [&] {
        unsigned sum = 0;
        for (const auto &l : set.lines)
            sum += l.segments;
        return sum;
    };

    // Data pressure: demote LRU data-holding lines to shadow tags
    // (write back dirty data first).
    while (used() + needed_segments > budget) {
        LineEntry *victim = nullptr;
        for (auto &l : set.lines) {
            if (!l.hasData)
                continue;
            if (!victim || l.lastUse < victim->lastUse)
                victim = &l;
        }
        assert(victim && "segment budget exceeded with no data lines");
        if (victim->dirty) {
            result.writebacks.push_back(
                {victim->tag << kLineShift, victim->data});
            stats_.victimWritebacks++;
            if (victim->compressed) {
                result.linesDecompressed++;
                result.bytesDecompressed += kLineSize;
                stats_.linesDecompressed++;
                stats_.bytesDecompressed += kLineSize;
            }
        }
        victim->hasData = false;
        victim->dirty = false;
        victim->compressed = false;
        victim->segments = 0;
        victim->data = CacheLine{};
        valid_--;
    }

    // Tag pressure: drop LRU entries outright.
    while (set.lines.size() + 1 > max_tags) {
        auto victim = set.lines.begin();
        for (auto it = set.lines.begin(); it != set.lines.end(); ++it) {
            if (it->lastUse < victim->lastUse)
                victim = it;
        }
        if (victim->hasData) {
            if (victim->dirty) {
                result.writebacks.push_back(
                    {victim->tag << kLineShift, victim->data});
                stats_.victimWritebacks++;
            }
            valid_--;
        }
        set.lines.erase(victim);
    }
}

FillResult
AdaptiveCache::insert(Addr addr, const CacheLine &data, bool dirty)
{
    stats_.inserts++;
    FillResult result;
    Set &set = sets_[setOf(addr)];
    const Addr tag = lineNumber(addr);

    const bool compress = predictor_ >= 0;
    const std::uint32_t bits = comp::CpackEncoder::lineBits(data);
    unsigned segments = compress ? segmentsFor(bits)
                                 : kLineSize / cfg_.segmentBytes;
    bool stored_compressed = compress;
    if (segments >= kLineSize / cfg_.segmentBytes) {
        segments = kLineSize / cfg_.segmentBytes;
        stored_compressed = false; // expansion: store raw
    }
    if (stored_compressed) {
        stats_.linesCompressed++;
        result.linesCompressed++;
    }

    // Replace any existing entry (resident or shadow). A size change
    // within contiguous segments forces re-allocation, which models the
    // compaction the scheme needs.
    for (auto it = set.lines.begin(); it != set.lines.end(); ++it) {
        if (it->tag == tag) {
            if (it->hasData) {
                dirty |= it->dirty;
                valid_--;
            }
            set.lines.erase(it);
            break;
        }
    }

    evictUntilFits(set, segments, result);

    LineEntry entry;
    entry.tag = tag;
    entry.hasData = true;
    entry.dirty = dirty;
    entry.compressed = stored_compressed;
    entry.segments = segments;
    entry.lastUse = ++useClock_;
    entry.data = data;
    set.lines.push_back(entry);
    valid_++;
    return result;
}

} // namespace cache
} // namespace morc
