/**
 * @file
 * Adaptive cache compression (Alameldeen & Wood, ISCA 2004), evaluated
 * with C-Pack per the MORC paper's methodology.
 *
 * Organization: each set doubles its tags (2x max compression) and keeps
 * its data area as 8-byte segments allocated *contiguously* per line
 * (which is what causes internal fragmentation and, on expansion,
 * compaction work). A global predictor decides whether to store a line
 * compressed: hits that only happened because compression kept extra
 * lines resident vote for compression (weighted by the memory latency
 * they saved); hits to compressed lines that would have been resident
 * anyway vote against (weighted by the decompression penalty).
 */

#ifndef MORC_CACHE_ADAPTIVE_HH
#define MORC_CACHE_ADAPTIVE_HH

#include <cstdint>
#include <vector>

#include "cache/llc.hh"
#include "compress/cpack.hh"

namespace morc {
namespace cache {

/** Adaptive compressed set-associative cache. */
class AdaptiveCache : public Llc
{
  public:
    struct Config
    {
        std::uint64_t capacityBytes = 128 * 1024;
        unsigned ways = 8;          // uncompressed ways per set
        unsigned tagFactor = 2;     // tag over-provisioning (max ratio)
        unsigned segmentBytes = 8;  // allocation granule
        unsigned decompressionLatency = 4; // flat penalty (methodology)
        std::int64_t predictorMemLatency = 100; // vote weights
    };

    explicit AdaptiveCache(const Config &cfg);
    AdaptiveCache();

    ReadResult read(Addr addr) override;
    FillResult insert(Addr addr, const CacheLine &data, bool dirty) override;

    std::uint64_t validLines() const override { return valid_; }
    std::uint64_t capacityBytes() const override { return cfg_.capacityBytes; }
    std::string name() const override { return "Adaptive"; }
    check::AuditReport audit() const override;
    void saveState(snap::Serializer &s) const override;
    void restoreState(snap::Deserializer &d) override;

    /** Exposed for tests: current compress/don't-compress bias. */
    std::int64_t predictor() const { return predictor_; }

    /** Adds the adaptive predictor bias on top of the base catalog. */
    void
    registerProbes(telemetry::Registry &reg,
                   const std::string &prefix) override
    {
        Llc::registerProbes(reg, prefix);
        reg.gauge(prefix + ".predictor", [this](Cycles) {
            return static_cast<double>(predictor_);
        });
    }

  private:
    struct LineEntry
    {
        Addr tag = 0;
        /** False for shadow tags: evicted data whose tag is retained so
         *  the adaptive predictor can observe would-have-hit events. */
        bool hasData = false;
        bool dirty = false;
        bool compressed = false;
        unsigned segments = 0;
        std::uint64_t lastUse = 0;
        CacheLine data{};
    };

    struct Set
    {
        std::vector<LineEntry> lines; // LRU order maintained by lastUse
    };

    std::uint64_t setOf(Addr addr) const;
    /** Emit the image the data array stores for @p data (C-Pack stream
     *  when compressed, the raw line otherwise), for wear accounting. */
    static void lineImage(const CacheLine &data, bool compressed,
                          BitWriter &out);
    unsigned segmentsFor(std::uint32_t bits) const;
    unsigned segBudget() const;
    /** LRU stack depth of a line within its set (0 = MRU). */
    unsigned stackDepth(const Set &set, const LineEntry &line) const;
    void evictUntilFits(Set &set, unsigned needed_segments,
                        FillResult &result);

    Config cfg_;
    std::uint64_t numSets_; // morc-analyze: allow(snapshot-completeness) derived from cfg_
    std::vector<Set> sets_;
    std::uint64_t useClock_ = 0;
    std::uint64_t valid_ = 0;
    std::int64_t predictor_ = 0;
};

} // namespace cache
} // namespace morc

#endif // MORC_CACHE_ADAPTIVE_HH
