#include "cache/decoupled.hh"

#include <cassert>

#include "util/rng.hh"

namespace morc {
namespace cache {

DecoupledCache::DecoupledCache() : DecoupledCache(Config{}) {}

DecoupledCache::DecoupledCache(const Config &cfg) : cfg_(cfg)
{
    numSets_ = cfg.capacityBytes / kLineSize / cfg.ways;
    assert(numSets_ >= 1 && isPow2(numSets_));
    sets_.resize(numSets_);
    for (auto &set : sets_)
        set.blocks.resize(cfg_.ways);
    for (auto &set : sets_)
        for (auto &b : set.blocks)
            b.lines.resize(cfg_.linesPerSuperBlock);
}

std::uint64_t
DecoupledCache::setOf(Addr super_tag) const
{
    return splitmix64(super_tag) & (numSets_ - 1);
}

unsigned
DecoupledCache::usedSegments(const Set &set) const
{
    unsigned sum = 0;
    for (const auto &b : set.blocks) {
        if (!b.valid)
            continue;
        for (const auto &l : b.lines) {
            if (l.valid)
                sum += l.segments;
        }
    }
    return sum;
}

void
DecoupledCache::evictBlock(Set &set, SuperBlock &block, FillResult &result)
{
    (void)set;
    for (unsigned i = 0; i < block.lines.size(); i++) {
        SubLine &l = block.lines[i];
        if (!l.valid)
            continue;
        if (l.dirty) {
            const Addr line_number =
                block.tag * cfg_.linesPerSuperBlock + i;
            result.writebacks.push_back(
                {line_number << kLineShift, l.data});
            stats_.victimWritebacks++;
            if (l.compressed) {
                result.linesDecompressed++;
                result.bytesDecompressed += kLineSize;
                stats_.linesDecompressed++;
                stats_.bytesDecompressed += kLineSize;
            }
        }
        l.valid = false;
        valid_--;
    }
    block.valid = false;
}

ReadResult
DecoupledCache::read(Addr addr)
{
    stats_.reads++;
    ReadResult r;
    const Addr line_number = lineNumber(addr);
    const Addr super_tag = line_number / cfg_.linesPerSuperBlock;
    const unsigned sub = line_number % cfg_.linesPerSuperBlock;
    Set &set = sets_[setOf(super_tag)];
    for (auto &b : set.blocks) {
        if (!b.valid || b.tag != super_tag)
            continue;
        SubLine &l = b.lines[sub];
        if (!l.valid)
            return r;
        stats_.readHits++;
        r.hit = true;
        r.data = l.data;
        if (l.compressed) {
            r.extraLatency = cfg_.decompressionLatency;
            r.bytesDecompressed = kLineSize;
            r.linesDecompressed = 1;
            stats_.linesDecompressed++;
            stats_.bytesDecompressed += kLineSize;
        }
        b.lastUse = ++useClock_;
        return r;
    }
    return r;
}

FillResult
DecoupledCache::insert(Addr addr, const CacheLine &data, bool dirty)
{
    stats_.inserts++;
    FillResult result;
    const Addr line_number = lineNumber(addr);
    const Addr super_tag = line_number / cfg_.linesPerSuperBlock;
    const unsigned sub = line_number % cfg_.linesPerSuperBlock;
    Set &set = sets_[setOf(super_tag)];

    const std::uint32_t bits = comp::CpackEncoder::lineBits(data);
    unsigned segments = static_cast<unsigned>(
        divCeil(divCeil(bits, 8), cfg_.segmentBytes));
    const unsigned max_segments = kLineSize / cfg_.segmentBytes;
    bool compressed = true;
    if (segments >= max_segments) {
        segments = max_segments;
        compressed = false;
    } else {
        stats_.linesCompressed++;
        result.linesCompressed++;
    }

    // Find or allocate the super-block.
    SuperBlock *block = nullptr;
    for (auto &b : set.blocks) {
        if (b.valid && b.tag == super_tag) {
            block = &b;
            break;
        }
    }
    if (!block) {
        for (auto &b : set.blocks) {
            if (!b.valid) {
                block = &b;
                break;
            }
        }
    }
    if (!block) {
        // Evict the LRU super-block.
        block = &set.blocks[0];
        for (auto &b : set.blocks) {
            if (b.lastUse < block->lastUse)
                block = &b;
        }
        evictBlock(set, *block, result);
    }
    if (!block->valid) {
        block->valid = true;
        block->tag = super_tag;
        for (auto &l : block->lines)
            l.valid = false;
    }

    // Replace any existing copy of this sub-line.
    SubLine &line = block->lines[sub];
    if (line.valid) {
        dirty |= line.dirty;
        line.valid = false;
        valid_--;
    }

    // Free segment space by evicting LRU super-blocks (never the one we
    // are inserting into).
    while (usedSegments(set) + segments >
           cfg_.ways * kLineSize / cfg_.segmentBytes) {
        SuperBlock *victim = nullptr;
        for (auto &b : set.blocks) {
            if (!b.valid || &b == block)
                continue;
            if (!victim || b.lastUse < victim->lastUse)
                victim = &b;
        }
        if (!victim) {
            // Only our block remains: evict its other sub-lines.
            bool any = false;
            for (unsigned i = 0; i < block->lines.size(); i++) {
                if (i == sub || !block->lines[i].valid)
                    continue;
                SubLine &l = block->lines[i];
                if (l.dirty) {
                    const Addr ln =
                        block->tag * cfg_.linesPerSuperBlock + i;
                    result.writebacks.push_back({ln << kLineShift, l.data});
                    stats_.victimWritebacks++;
                }
                l.valid = false;
                valid_--;
                any = true;
                break;
            }
            if (!any)
                break; // a single line always fits
            continue;
        }
        evictBlock(set, *victim, result);
    }

    line.valid = true;
    line.dirty = dirty;
    line.compressed = compressed;
    line.segments = segments;
    line.data = data;
    block->lastUse = ++useClock_;
    valid_++;
    return result;
}

} // namespace cache
} // namespace morc
