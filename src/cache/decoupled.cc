#include "cache/decoupled.hh"

#include "check/check.hh"
#include "util/rng.hh"

namespace morc {
namespace cache {

namespace {

/** Image the segment array stores for a sub-line (C-Pack stream when
 *  compressed, the raw line otherwise), for wear accounting. */
void
subLineImage(const CacheLine &data, bool compressed, BitWriter &out)
{
    if (compressed) {
        comp::CpackEncoder enc;
        enc.append(data, &out);
    } else {
        energy::rawImage(data, out);
    }
}

} // namespace

DecoupledCache::DecoupledCache() : DecoupledCache(Config{}) {}

DecoupledCache::DecoupledCache(const Config &cfg) : cfg_(cfg)
{
    numSets_ = cfg.capacityBytes / kLineSize / cfg.ways;
    MORC_CHECK(numSets_ >= 1 && isPow2(numSets_),
               "set count must be a non-zero power of two: capacity=%llu "
               "ways=%u -> sets=%llu",
               static_cast<unsigned long long>(cfg.capacityBytes),
               cfg.ways, static_cast<unsigned long long>(numSets_));
    sets_.resize(numSets_);
    for (auto &set : sets_)
        set.blocks.resize(cfg_.ways);
    for (auto &set : sets_)
        for (auto &b : set.blocks)
            b.lines.resize(cfg_.linesPerSuperBlock);
    wear_.configure(numSets_, cfg_.ways);
}

std::uint64_t
DecoupledCache::setOf(Addr super_tag) const
{
    return splitmix64(super_tag) & (numSets_ - 1);
}

unsigned
DecoupledCache::usedSegments(const Set &set) const
{
    unsigned sum = 0;
    for (const auto &b : set.blocks) {
        if (!b.valid)
            continue;
        for (const auto &l : b.lines) {
            if (l.valid)
                sum += l.segments;
        }
    }
    return sum;
}

void
DecoupledCache::evictBlock(Set &set, SuperBlock &block, FillResult &result)
{
    (void)set;
    for (unsigned i = 0; i < block.lines.size(); i++) {
        SubLine &l = block.lines[i];
        if (!l.valid)
            continue;
        if (l.dirty) {
            const Addr line_number =
                block.tag * cfg_.linesPerSuperBlock + i;
            result.writebacks.push_back(
                {line_number << kLineShift, l.data});
            stats_.victimWritebacks++;
            if (l.compressed) {
                result.linesDecompressed++;
                result.bytesDecompressed += kLineSize;
                stats_.linesDecompressed++;
                stats_.bytesDecompressed += kLineSize;
            }
        }
        l.valid = false;
        valid_--;
    }
    block.valid = false;
}

ReadResult
DecoupledCache::read(Addr addr)
{
    stats_.reads++;
    ReadResult r;
    const Addr line_number = lineNumber(addr);
    const Addr super_tag = line_number / cfg_.linesPerSuperBlock;
    const unsigned sub = line_number % cfg_.linesPerSuperBlock;
    Set &set = sets_[setOf(super_tag)];
    for (auto &b : set.blocks) {
        if (!b.valid || b.tag != super_tag)
            continue;
        SubLine &l = b.lines[sub];
        if (!l.valid)
            return r;
        stats_.readHits++;
        r.hit = true;
        r.data = l.data;
        if (l.compressed) {
            r.extraLatency = cfg_.decompressionLatency;
            r.bytesDecompressed = kLineSize;
            r.linesDecompressed = 1;
            stats_.linesDecompressed++;
            stats_.bytesDecompressed += kLineSize;
        }
        b.lastUse = ++useClock_;
        return r;
    }
    return r;
}

FillResult
DecoupledCache::insert(Addr addr, const CacheLine &data, bool dirty)
{
    stats_.inserts++;
    FillResult result;
    const Addr line_number = lineNumber(addr);
    const Addr super_tag = line_number / cfg_.linesPerSuperBlock;
    const unsigned sub = line_number % cfg_.linesPerSuperBlock;
    Set &set = sets_[setOf(super_tag)];

    const std::uint32_t bits = comp::CpackEncoder::lineBits(data);
    unsigned segments = static_cast<unsigned>(
        divCeil(divCeil(bits, 8), cfg_.segmentBytes));
    const unsigned max_segments = kLineSize / cfg_.segmentBytes;
    bool compressed = true;
    if (segments >= max_segments) {
        segments = max_segments;
        compressed = false;
    } else {
        stats_.linesCompressed++;
        result.linesCompressed++;
    }

    // Find or allocate the super-block.
    SuperBlock *block = nullptr;
    for (auto &b : set.blocks) {
        if (b.valid && b.tag == super_tag) {
            block = &b;
            break;
        }
    }
    if (!block) {
        for (auto &b : set.blocks) {
            if (!b.valid) {
                block = &b;
                break;
            }
        }
    }
    if (!block) {
        // Evict the LRU super-block.
        block = &set.blocks[0];
        for (auto &b : set.blocks) {
            if (b.lastUse < block->lastUse)
                block = &b;
        }
        evictBlock(set, *block, result);
    }
    if (!block->valid) {
        block->valid = true;
        block->tag = super_tag;
        for (auto &l : block->lines)
            l.valid = false;
    }

    // Replace any existing copy of this sub-line.
    SubLine &line = block->lines[sub];
    bool hadData = false;
    BitWriter oldImage;
    if (line.valid) {
        dirty |= line.dirty;
        hadData = true;
        subLineImage(line.data, line.compressed, oldImage);
        line.valid = false;
        valid_--;
    }

    // Free segment space by evicting LRU super-blocks (never the one we
    // are inserting into).
    while (usedSegments(set) + segments >
           cfg_.ways * kLineSize / cfg_.segmentBytes) {
        SuperBlock *victim = nullptr;
        for (auto &b : set.blocks) {
            if (!b.valid || &b == block)
                continue;
            if (!victim || b.lastUse < victim->lastUse)
                victim = &b;
        }
        if (!victim) {
            // Only our block remains: evict its other sub-lines.
            bool any = false;
            for (unsigned i = 0; i < block->lines.size(); i++) {
                if (i == sub || !block->lines[i].valid)
                    continue;
                SubLine &l = block->lines[i];
                if (l.dirty) {
                    const Addr ln =
                        block->tag * cfg_.linesPerSuperBlock + i;
                    result.writebacks.push_back({ln << kLineShift, l.data});
                    stats_.victimWritebacks++;
                }
                l.valid = false;
                valid_--;
                any = true;
                break;
            }
            if (!any)
                break; // a single line always fits
            continue;
        }
        evictBlock(set, *victim, result);
    }

    line.valid = true;
    line.dirty = dirty;
    line.compressed = compressed;
    line.segments = segments;
    line.data = data;
    // Charge the emitted image: flips against the replaced copy when
    // the same sub-line is re-programmed, else a fresh program.
    BitWriter newImage;
    subLineImage(data, compressed, newImage);
    chargeWear(setOf(super_tag),
               static_cast<std::uint64_t>(block - set.blocks.data()),
               newImage.sizeBits(),
               hadData ? energy::flipBits(oldImage.words(),
                                          oldImage.sizeBits(),
                                          newImage.words(),
                                          newImage.sizeBits())
                       : energy::popcountBits(newImage.words(),
                                              newImage.sizeBits()));
    block->lastUse = ++useClock_;
    valid_++;
    return result;
}

check::AuditReport
DecoupledCache::audit() const
{
    check::AuditReport r;
    const unsigned budget = cfg_.ways * kLineSize / cfg_.segmentBytes;
    const unsigned max_segments = kLineSize / cfg_.segmentBytes;
    std::uint64_t total_valid = 0;
    for (std::uint64_t s = 0; s < sets_.size(); s++) {
        const Set &set = sets_[s];
        r.require(set.blocks.size() == cfg_.ways,
                  "set %llu holds %zu super-blocks, want %u",
                  static_cast<unsigned long long>(s), set.blocks.size(),
                  cfg_.ways);
        unsigned used = 0;
        for (std::size_t b = 0; b < set.blocks.size(); b++) {
            const SuperBlock &block = set.blocks[b];
            r.require(block.lines.size() == cfg_.linesPerSuperBlock,
                      "set %llu block %zu tracks %zu sub-lines, want %u",
                      static_cast<unsigned long long>(s), b,
                      block.lines.size(), cfg_.linesPerSuperBlock);
            if (!block.valid)
                continue;
            r.require(setOf(block.tag) == s,
                      "set %llu block %zu holds super-tag %llu that "
                      "indexes set %llu",
                      static_cast<unsigned long long>(s), b,
                      static_cast<unsigned long long>(block.tag),
                      static_cast<unsigned long long>(setOf(block.tag)));
            for (std::size_t b2 = b + 1; b2 < set.blocks.size(); b2++) {
                const SuperBlock &other = set.blocks[b2];
                r.require(!other.valid || other.tag != block.tag,
                          "set %llu holds duplicate super-tag %llu in "
                          "blocks %zu and %zu",
                          static_cast<unsigned long long>(s),
                          static_cast<unsigned long long>(block.tag), b,
                          b2);
            }
            for (std::size_t i = 0; i < block.lines.size(); i++) {
                const SubLine &l = block.lines[i];
                if (!l.valid)
                    continue;
                total_valid++;
                used += l.segments;
                r.require(l.segments >= 1 && l.segments <= max_segments,
                          "set %llu block %zu sub-line %zu spans %u "
                          "segments (want 1..%u)",
                          static_cast<unsigned long long>(s), b, i,
                          l.segments, max_segments);
                r.require(l.compressed == (l.segments < max_segments),
                          "set %llu block %zu sub-line %zu compressed "
                          "flag %d disagrees with %u/%u segments",
                          static_cast<unsigned long long>(s), b, i,
                          l.compressed ? 1 : 0, l.segments, max_segments);
            }
        }
        r.require(used <= budget, "set %llu uses %u segments, budget %u",
                  static_cast<unsigned long long>(s), used, budget);
    }
    r.require(total_valid == valid_,
              "valid-line counter %llu disagrees with %llu valid "
              "sub-lines",
              static_cast<unsigned long long>(valid_),
              static_cast<unsigned long long>(total_valid));
    return r;
}

void
DecoupledCache::saveState(snap::Serializer &s) const
{
    s.beginSection("DECP");
    s.u64(cfg_.capacityBytes);
    s.u32(cfg_.ways);
    s.u32(cfg_.linesPerSuperBlock);
    s.u32(cfg_.segmentBytes);
    s.u64(useClock_);
    s.u64(valid_);
    stats_.save(s);
    wear_.save(s);
    s.vec(sets_, [&](const Set &set) {
        s.vec(set.blocks, [&](const SuperBlock &b) {
            s.u64(b.tag);
            s.boolean(b.valid);
            s.u64(b.lastUse);
            s.vec(b.lines, [&](const SubLine &l) {
                s.boolean(l.valid);
                s.boolean(l.dirty);
                s.boolean(l.compressed);
                s.u32(l.segments);
                s.bytes(l.data.bytes.data(), kLineSize);
            });
        });
    });
    s.endSection();
}

void
DecoupledCache::restoreState(snap::Deserializer &d)
{
    if (!d.beginSection("DECP"))
        return;
    const std::uint64_t capacity = d.u64();
    const std::uint32_t ways = d.u32();
    const std::uint32_t linesPerSb = d.u32();
    const std::uint32_t segBytes = d.u32();
    const std::uint64_t useClock = d.u64();
    const std::uint64_t valid = d.u64();
    LlcStats stats;
    stats.restore(d);
    energy::WearTracker wear = wear_;
    wear.restore(d);
    std::vector<Set> sets;
    d.readVec(sets, 8, [&] {
        Set set;
        d.readVec(set.blocks, 8 + 1 + 8 + 8, [&] {
            SuperBlock b;
            b.tag = d.u64();
            b.valid = d.boolean();
            b.lastUse = d.u64();
            d.readVec(b.lines, 1 + 1 + 1 + 4 + kLineSize, [&] {
                SubLine l;
                l.valid = d.boolean();
                l.dirty = d.boolean();
                l.compressed = d.boolean();
                l.segments = d.u32();
                d.bytes(l.data.bytes.data(), kLineSize);
                return l;
            });
            if (d.ok() && b.lines.size() != cfg_.linesPerSuperBlock)
                d.fail("decoupled super-block line-count mismatch");
            return b;
        });
        return set;
    });
    if (d.ok() && (capacity != cfg_.capacityBytes || ways != cfg_.ways ||
                   linesPerSb != cfg_.linesPerSuperBlock ||
                   segBytes != cfg_.segmentBytes ||
                   sets.size() != sets_.size())) {
        d.fail("decoupled cache geometry mismatch");
    }
    d.endSection();
    if (!d.ok())
        return;
    useClock_ = useClock;
    valid_ = valid;
    stats_ = stats;
    wear_ = std::move(wear);
    sets_ = std::move(sets);
}

} // namespace cache
} // namespace morc
