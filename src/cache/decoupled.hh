/**
 * @file
 * Decoupled Compressed Cache (Sardashti & Wood, MICRO 2013), with C-Pack
 * per the MORC paper's methodology.
 *
 * Organization: tags are *super-block* tags — one tag covers four
 * address-consecutive lines — so tracking 4x the lines costs no extra
 * tags (Table 4 shows 0% tag overhead). Data lives in 8-byte segments
 * that are individually pointed to (decoupled), so lines need not be
 * contiguous: there is no compaction and fragmentation is bounded by the
 * segment granule. The per-segment back-pointers are the scheme's
 * metadata cost.
 */

#ifndef MORC_CACHE_DECOUPLED_HH
#define MORC_CACHE_DECOUPLED_HH

#include <cstdint>
#include <vector>

#include "cache/llc.hh"
#include "compress/cpack.hh"

namespace morc {
namespace cache {

/** Decoupled compressed cache with super-block tags. */
class DecoupledCache : public Llc
{
  public:
    struct Config
    {
        std::uint64_t capacityBytes = 128 * 1024;
        unsigned ways = 8;              // super-tags per set
        unsigned linesPerSuperBlock = 4;
        unsigned segmentBytes = 8;
        unsigned decompressionLatency = 4;
    };

    explicit DecoupledCache(const Config &cfg);
    DecoupledCache();

    ReadResult read(Addr addr) override;
    FillResult insert(Addr addr, const CacheLine &data, bool dirty) override;

    std::uint64_t validLines() const override { return valid_; }
    std::uint64_t capacityBytes() const override { return cfg_.capacityBytes; }
    std::string name() const override { return "Decoupled"; }
    check::AuditReport audit() const override;
    void saveState(snap::Serializer &s) const override;
    void restoreState(snap::Deserializer &d) override;

  private:
    struct SubLine
    {
        bool valid = false;
        bool dirty = false;
        bool compressed = false;
        unsigned segments = 0;
        CacheLine data{};
    };

    struct SuperBlock
    {
        Addr tag = 0; // super-block number
        bool valid = false;
        std::uint64_t lastUse = 0;
        std::vector<SubLine> lines;
    };

    struct Set
    {
        std::vector<SuperBlock> blocks;
    };

    std::uint64_t setOf(Addr super_tag) const;
    unsigned usedSegments(const Set &set) const;
    void evictBlock(Set &set, SuperBlock &block, FillResult &result);

    Config cfg_;
    std::uint64_t numSets_; // morc-analyze: allow(snapshot-completeness) derived from cfg_
    std::vector<Set> sets_;
    std::uint64_t useClock_ = 0;
    std::uint64_t valid_ = 0;
};

} // namespace cache
} // namespace morc

#endif // MORC_CACHE_DECOUPLED_HH
