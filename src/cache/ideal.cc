#include "cache/ideal.hh"

#include <cassert>

#include "util/rng.hh"

namespace morc {
namespace cache {

IdealCache::IdealCache(OracleScope scope, std::uint64_t capacity_bytes,
                       unsigned set_bytes)
    : scope_(scope),
      capacity_(capacity_bytes),
      setBits_(static_cast<std::uint64_t>(set_bytes) * 8),
      numSets_(capacity_bytes / set_bytes)
{
    assert(isPow2(numSets_));
    sets_.resize(numSets_);
}

std::uint64_t
IdealCache::setOf(Addr addr) const
{
    return splitmix64(lineNumber(addr)) & (numSets_ - 1);
}

std::uint32_t
IdealCache::costOf(const CacheLine &data) const
{
    return scope_ == OracleScope::IntraLine ? comp::oracleIntraBits(data)
                                            : dict_.interBits(data);
}

ReadResult
IdealCache::read(Addr addr)
{
    stats_.reads++;
    ReadResult r;
    Set &set = sets_[setOf(addr)];
    const Addr tag = lineNumber(addr);
    for (auto &line : set.lines) {
        if (line.tag == tag) {
            stats_.readHits++;
            r.hit = true;
            r.data = line.data;
            line.lastUse = ++useClock_;
            return r;
        }
    }
    return r;
}

FillResult
IdealCache::insert(Addr addr, const CacheLine &data, bool dirty)
{
    stats_.inserts++;
    FillResult result;
    Set &set = sets_[setOf(addr)];
    const Addr tag = lineNumber(addr);

    for (auto it = set.lines.begin(); it != set.lines.end(); ++it) {
        if (it->tag == tag) {
            dirty |= it->dirty;
            set.usedBits -= it->bits;
            if (scope_ == OracleScope::InterLine)
                dict_.removeLine(it->data);
            set.lines.erase(it);
            valid_--;
            break;
        }
    }

    const std::uint32_t bits = costOf(data);
    while (set.usedBits + bits > setBits_ && !set.lines.empty()) {
        auto victim = set.lines.begin();
        for (auto it = set.lines.begin(); it != set.lines.end(); ++it) {
            if (it->lastUse < victim->lastUse)
                victim = it;
        }
        if (victim->dirty) {
            result.writebacks.push_back(
                {victim->tag << kLineShift, victim->data});
            stats_.victimWritebacks++;
        }
        set.usedBits -= victim->bits;
        if (scope_ == OracleScope::InterLine)
            dict_.removeLine(victim->data);
        set.lines.erase(victim);
        valid_--;
    }

    set.lines.push_back({tag, dirty, bits, ++useClock_, data});
    set.usedBits += bits;
    if (scope_ == OracleScope::InterLine)
        dict_.addLine(data);
    valid_++;
    stats_.linesCompressed++;
    result.linesCompressed++;
    return result;
}

} // namespace cache
} // namespace morc
