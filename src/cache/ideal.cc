#include "cache/ideal.hh"

#include "check/check.hh"
#include "util/rng.hh"

namespace morc {
namespace cache {

IdealCache::IdealCache(OracleScope scope, std::uint64_t capacity_bytes,
                       unsigned set_bytes)
    : scope_(scope),
      capacity_(capacity_bytes),
      setBits_(static_cast<std::uint64_t>(set_bytes) * 8),
      numSets_(capacity_bytes / set_bytes)
{
    MORC_CHECK(isPow2(numSets_),
               "set count must be a power of two: capacity=%llu "
               "set_bytes=%u -> sets=%llu",
               static_cast<unsigned long long>(capacity_bytes), set_bytes,
               static_cast<unsigned long long>(numSets_));
    sets_.resize(numSets_);
    // Entry order inside a set is unstable (vector erase/push), so wear
    // is tracked per set only.
    wear_.configure(numSets_, 1);
}

std::uint64_t
IdealCache::setOf(Addr addr) const
{
    return splitmix64(lineNumber(addr)) & (numSets_ - 1);
}

std::uint32_t
IdealCache::costOf(const CacheLine &data) const
{
    return scope_ == OracleScope::IntraLine ? comp::oracleIntraBits(data)
                                            : dict_.interBits(data);
}

ReadResult
IdealCache::read(Addr addr)
{
    stats_.reads++;
    ReadResult r;
    Set &set = sets_[setOf(addr)];
    const Addr tag = lineNumber(addr);
    for (auto &line : set.lines) {
        if (line.tag == tag) {
            stats_.readHits++;
            r.hit = true;
            r.data = line.data;
            line.lastUse = ++useClock_;
            return r;
        }
    }
    return r;
}

FillResult
IdealCache::insert(Addr addr, const CacheLine &data, bool dirty)
{
    stats_.inserts++;
    FillResult result;
    Set &set = sets_[setOf(addr)];
    const Addr tag = lineNumber(addr);

    for (auto it = set.lines.begin(); it != set.lines.end(); ++it) {
        if (it->tag == tag) {
            dirty |= it->dirty;
            set.usedBits -= it->bits;
            if (scope_ == OracleScope::InterLine)
                dict_.removeLine(it->data);
            set.lines.erase(it);
            valid_--;
            break;
        }
    }

    const std::uint32_t bits = costOf(data);
    while (set.usedBits + bits > setBits_ && !set.lines.empty()) {
        auto victim = set.lines.begin();
        for (auto it = set.lines.begin(); it != set.lines.end(); ++it) {
            if (it->lastUse < victim->lastUse)
                victim = it;
        }
        if (victim->dirty) {
            result.writebacks.push_back(
                {victim->tag << kLineShift, victim->data});
            stats_.victimWritebacks++;
        }
        set.usedBits -= victim->bits;
        if (scope_ == OracleScope::InterLine)
            dict_.removeLine(victim->data);
        set.lines.erase(victim);
        valid_--;
    }

    // Limit-study approximation: the oracle emits no real bitstream, so
    // charge its idealized cost and cap flips at the programmed width.
    chargeWear(setOf(addr), 0, bits,
               std::min<std::uint64_t>(energy::linePopcount(data), bits));
    set.lines.push_back({tag, dirty, bits, ++useClock_, data});
    set.usedBits += bits;
    if (scope_ == OracleScope::InterLine)
        dict_.addLine(data);
    valid_++;
    stats_.linesCompressed++;
    result.linesCompressed++;
    return result;
}

check::AuditReport
IdealCache::audit() const
{
    check::AuditReport r;
    std::uint64_t total_valid = 0;
    for (std::uint64_t s = 0; s < sets_.size(); s++) {
        const Set &set = sets_[s];
        std::uint64_t used = 0;
        for (std::size_t i = 0; i < set.lines.size(); i++) {
            const LineEntry &l = set.lines[i];
            total_valid++;
            used += l.bits;
            r.require(setOf(l.tag << kLineShift) == s,
                      "set %llu entry %zu holds tag %llu that indexes "
                      "set %llu",
                      static_cast<unsigned long long>(s), i,
                      static_cast<unsigned long long>(l.tag),
                      static_cast<unsigned long long>(
                          setOf(l.tag << kLineShift)));
            // The intra-line oracle is stateless, so the stored cost is
            // recomputable; the inter-line dictionary has evolved since
            // insertion, so only the intra cost can be re-derived.
            if (scope_ == OracleScope::IntraLine) {
                r.require(l.bits == comp::oracleIntraBits(l.data),
                          "set %llu tag %llu stored cost %u bits, "
                          "recomputed %u",
                          static_cast<unsigned long long>(s),
                          static_cast<unsigned long long>(l.tag), l.bits,
                          comp::oracleIntraBits(l.data));
            }
            for (std::size_t j = i + 1; j < set.lines.size(); j++) {
                r.require(set.lines[j].tag != l.tag,
                          "set %llu holds duplicate tag %llu at entries "
                          "%zu and %zu",
                          static_cast<unsigned long long>(s),
                          static_cast<unsigned long long>(l.tag), i, j);
            }
        }
        r.require(used == set.usedBits,
                  "set %llu accounts %llu used bits but lines sum to "
                  "%llu",
                  static_cast<unsigned long long>(s),
                  static_cast<unsigned long long>(set.usedBits),
                  static_cast<unsigned long long>(used));
        // The eviction loop stops at one resident line even when that
        // line alone overflows the set (progress guarantee).
        r.require(set.usedBits <= setBits_ || set.lines.size() == 1,
                  "set %llu uses %llu bits, budget %llu",
                  static_cast<unsigned long long>(s),
                  static_cast<unsigned long long>(set.usedBits),
                  static_cast<unsigned long long>(setBits_));
    }
    r.require(total_valid == valid_,
              "valid-line counter %llu disagrees with %llu resident "
              "entries",
              static_cast<unsigned long long>(valid_),
              static_cast<unsigned long long>(total_valid));
    return r;
}

void
IdealCache::saveState(snap::Serializer &s) const
{
    s.beginSection("IDEA");
    s.u8(scope_ == OracleScope::InterLine ? 1 : 0);
    s.u64(capacity_);
    s.u64(setBits_);
    s.u64(useClock_);
    s.u64(valid_);
    stats_.save(s);
    wear_.save(s);
    // dict_ is derived state (word refcounts of resident lines); the
    // restore path rebuilds it from the sets below.
    s.vec(sets_, [&](const Set &set) {
        s.u64(set.usedBits);
        s.vec(set.lines, [&](const LineEntry &l) {
            s.u64(l.tag);
            s.boolean(l.dirty);
            s.u32(l.bits);
            s.u64(l.lastUse);
            s.bytes(l.data.bytes.data(), kLineSize);
        });
    });
    s.endSection();
}

void
IdealCache::restoreState(snap::Deserializer &d)
{
    if (!d.beginSection("IDEA"))
        return;
    const std::uint8_t inter = d.u8();
    const std::uint64_t capacity = d.u64();
    const std::uint64_t setBits = d.u64();
    const std::uint64_t useClock = d.u64();
    const std::uint64_t valid = d.u64();
    LlcStats stats;
    stats.restore(d);
    energy::WearTracker wear = wear_;
    wear.restore(d);
    std::vector<Set> sets;
    d.readVec(sets, 8 + 8, [&] {
        Set set;
        set.usedBits = d.u64();
        d.readVec(set.lines, 8 + 1 + 4 + 8 + kLineSize, [&] {
            LineEntry l;
            l.tag = d.u64();
            l.dirty = d.boolean();
            l.bits = d.u32();
            l.lastUse = d.u64();
            d.bytes(l.data.bytes.data(), kLineSize);
            return l;
        });
        return set;
    });
    if (d.ok() &&
        (inter != (scope_ == OracleScope::InterLine ? 1 : 0) ||
         capacity != capacity_ || setBits != setBits_ ||
         sets.size() != sets_.size())) {
        d.fail("ideal cache geometry mismatch");
    }
    d.endSection();
    if (!d.ok())
        return;
    useClock_ = useClock;
    valid_ = valid;
    stats_ = stats;
    wear_ = std::move(wear);
    sets_ = std::move(sets);
    dict_.clear();
    if (scope_ == OracleScope::InterLine) {
        for (const Set &set : sets_) {
            for (const LineEntry &l : set.lines)
                dict_.addLine(l.data);
        }
    }
}

} // namespace cache
} // namespace morc
