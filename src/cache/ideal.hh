/**
 * @file
 * Ideal compressed caches for the Figure 2 limit study.
 *
 * Per the paper's footnote: a set-based 128 KB cache whose lines are
 * compressed into 512-byte sets as much as possible, LRU-evicted, with
 * line cost given by ideal word deduplication (intra-line or across the
 * whole cache) plus significance-based truncation, and zero metadata.
 */

#ifndef MORC_CACHE_IDEAL_HH
#define MORC_CACHE_IDEAL_HH

#include <cstdint>
#include <vector>

#include "cache/llc.hh"
#include "compress/oracle.hh"

namespace morc {
namespace cache {

/** Dedup scope of the oracle. */
enum class OracleScope
{
    IntraLine,
    InterLine
};

/** Limit-study cache; not a realizable design. */
class IdealCache : public Llc
{
  public:
    IdealCache(OracleScope scope, std::uint64_t capacity_bytes = 128 * 1024,
               unsigned set_bytes = 512);

    ReadResult read(Addr addr) override;
    FillResult insert(Addr addr, const CacheLine &data, bool dirty) override;

    std::uint64_t validLines() const override { return valid_; }
    std::uint64_t capacityBytes() const override { return capacity_; }
    check::AuditReport audit() const override;
    void saveState(snap::Serializer &s) const override;
    void restoreState(snap::Deserializer &d) override;

    std::string
    name() const override
    {
        return scope_ == OracleScope::IntraLine ? "Oracle-Intra"
                                                : "Oracle-Inter";
    }

  private:
    struct LineEntry
    {
        Addr tag;
        bool dirty;
        std::uint32_t bits;
        std::uint64_t lastUse;
        CacheLine data;
    };

    struct Set
    {
        std::vector<LineEntry> lines;
        std::uint64_t usedBits = 0;
    };

    std::uint64_t setOf(Addr addr) const;
    std::uint32_t costOf(const CacheLine &data) const;

    OracleScope scope_;
    std::uint64_t capacity_;
    std::uint64_t setBits_;
    std::uint64_t numSets_; // morc-analyze: allow(snapshot-completeness) derived from setBits_
    std::vector<Set> sets_;
    comp::OracleDictionary dict_;
    std::uint64_t useClock_ = 0;
    std::uint64_t valid_ = 0;
};

} // namespace cache
} // namespace morc

#endif // MORC_CACHE_IDEAL_HH
