/**
 * @file
 * Common interface for every last-level cache model (the uncompressed
 * baseline, Adaptive, Decoupled, SC2, the Figure 2 oracles, and MORC).
 *
 * The simulator drives an Llc with reads (probe, no allocation) and
 * inserts (fills from memory and write-backs from L1). Models return
 * per-access timing/energy annotations and surface dirty victims so the
 * memory layer can account bandwidth and apply functional writes.
 */

#ifndef MORC_CACHE_LLC_HH
#define MORC_CACHE_LLC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "check/auditor.hh"
#include "energy/lifetime.hh"
#include "snapshot/snapshot.hh"
#include "telemetry/telemetry.hh"
#include "telemetry/tracer.hh"
#include "util/types.hh"

namespace morc {
namespace cache {

/** Outcome of a read probe. */
struct ReadResult
{
    bool hit = false;

    /** Line contents on a hit. */
    CacheLine data{};

    /** Extra access cycles beyond the base LLC latency (decompression;
     *  position-dependent for MORC, flat +4 for prior schemes). */
    std::uint32_t extraLatency = 0;

    /** Decompressor output bytes produced to serve this access. */
    std::uint64_t bytesDecompressed = 0;

    /** Number of cache lines the decompressor had to reconstruct. */
    std::uint32_t linesDecompressed = 0;
};

/** A dirty line evicted toward memory. */
struct Writeback
{
    Addr addr;
    CacheLine data;
};

/** Outcome of an insert (fill or write-back allocation). */
struct FillResult
{
    /** Dirty victims that must be written to memory. */
    std::vector<Writeback> writebacks;

    /** Lines pushed through a compressor by this insert. */
    std::uint32_t linesCompressed = 0;

    /** Lines decompressed as a side effect (e.g. a log flush). */
    std::uint32_t linesDecompressed = 0;
    std::uint64_t bytesDecompressed = 0;
};

/** Aggregate counters every model maintains. */
struct LlcStats
{
    std::uint64_t reads = 0;
    std::uint64_t readHits = 0;
    std::uint64_t inserts = 0;
    std::uint64_t victimWritebacks = 0;
    std::uint64_t linesCompressed = 0;
    std::uint64_t linesDecompressed = 0;
    std::uint64_t bytesDecompressed = 0;

    /** Whole-log evictions (MORC/MORCMerged only; zero elsewhere). */
    std::uint64_t logFlushes = 0;

    /** LMT conflict evictions (MORC/MORCMerged only; zero elsewhere). */
    std::uint64_t lmtConflictEvicts = 0;

    /** NVM wear: bits physically programmed into the data array, from
     *  the actual emitted bitstreams (see energy/lifetime.hh). */
    std::uint64_t cellBitsWritten = 0;

    /** NVM wear: cells flipped relative to the frame's prior image. */
    std::uint64_t cellBitFlips = 0;

    void
    clear()
    {
        *this = LlcStats{};
    }

    void
    save(snap::Serializer &s) const
    {
        s.u64(reads);
        s.u64(readHits);
        s.u64(inserts);
        s.u64(victimWritebacks);
        s.u64(linesCompressed);
        s.u64(linesDecompressed);
        s.u64(bytesDecompressed);
        s.u64(logFlushes);
        s.u64(lmtConflictEvicts);
        s.u64(cellBitsWritten);
        s.u64(cellBitFlips);
    }

    void
    restore(snap::Deserializer &d)
    {
        LlcStats v;
        v.reads = d.u64();
        v.readHits = d.u64();
        v.inserts = d.u64();
        v.victimWritebacks = d.u64();
        v.linesCompressed = d.u64();
        v.linesDecompressed = d.u64();
        v.bytesDecompressed = d.u64();
        v.logFlushes = d.u64();
        v.lmtConflictEvicts = d.u64();
        v.cellBitsWritten = d.u64();
        v.cellBitFlips = d.u64();
        if (d.ok())
            *this = v;
    }

    LlcStats &
    operator+=(const LlcStats &o)
    {
        reads += o.reads;
        readHits += o.readHits;
        inserts += o.inserts;
        victimWritebacks += o.victimWritebacks;
        linesCompressed += o.linesCompressed;
        linesDecompressed += o.linesDecompressed;
        bytesDecompressed += o.bytesDecompressed;
        logFlushes += o.logFlushes;
        lmtConflictEvicts += o.lmtConflictEvicts;
        cellBitsWritten += o.cellBitsWritten;
        cellBitFlips += o.cellBitFlips;
        return *this;
    }
};

/** Counter-wise difference (for before/after deltas; @p a >= @p b). */
inline LlcStats
operator-(const LlcStats &a, const LlcStats &b)
{
    LlcStats d;
    d.reads = a.reads - b.reads;
    d.readHits = a.readHits - b.readHits;
    d.inserts = a.inserts - b.inserts;
    d.victimWritebacks = a.victimWritebacks - b.victimWritebacks;
    d.linesCompressed = a.linesCompressed - b.linesCompressed;
    d.linesDecompressed = a.linesDecompressed - b.linesDecompressed;
    d.bytesDecompressed = a.bytesDecompressed - b.bytesDecompressed;
    d.logFlushes = a.logFlushes - b.logFlushes;
    d.lmtConflictEvicts = a.lmtConflictEvicts - b.lmtConflictEvicts;
    d.cellBitsWritten = a.cellBitsWritten - b.cellBitsWritten;
    d.cellBitFlips = a.cellBitFlips - b.cellBitFlips;
    return d;
}

/**
 * Abstract last-level cache.
 *
 * Every model is Auditable: audit() walks the scheme's full internal
 * state and reports every violated structural invariant (see
 * check/auditor.hh). The morc_check differential fuzzer runs it
 * periodically while replaying adversarial access streams.
 */
class Llc : public check::Auditable, public snap::Snapshottable
{
  public:
    ~Llc() override = default;

    /** Probe for @p addr; never allocates. */
    virtual ReadResult read(Addr addr) = 0;

    /**
     * Insert a line: a fill from memory (@p dirty false) or a write-back
     * from a private cache (@p dirty true).
     */
    virtual FillResult insert(Addr addr, const CacheLine &data,
                              bool dirty) = 0;

    /** Valid resident lines (compressed schemes can exceed baseline). */
    virtual std::uint64_t validLines() const = 0;

    /** Uncompressed data capacity in bytes. */
    virtual std::uint64_t capacityBytes() const = 0;

    /** Effective-capacity ratio: valid lines x 64B over capacity. */
    double
    compressionRatio() const
    {
        return static_cast<double>(validLines() * kLineSize) /
               static_cast<double>(capacityBytes());
    }

    virtual std::string name() const = 0;

    LlcStats &stats() { return stats_; }
    const LlcStats &stats() const { return stats_; }

    /**
     * Publish this model's telemetry probes into @p reg, each named
     * "<prefix>.<probe>". The base implementation registers what every
     * model maintains — the valid-lines gauge and the LlcStats
     * counters; schemes override to add their own state (and should
     * call the base first so the common catalog stays uniform).
     *
     * Probes capture `this`: the registry must not outlive the cache.
     */
    virtual void
    registerProbes(telemetry::Registry &reg, const std::string &prefix)
    {
        reg.gauge(prefix + ".valid_lines",
                  [this](Cycles) { return double(validLines()); });
        reg.counter(prefix + ".reads",
                    [this](Cycles) { return double(stats_.reads); });
        reg.counter(prefix + ".read_hits",
                    [this](Cycles) { return double(stats_.readHits); });
        reg.counter(prefix + ".inserts",
                    [this](Cycles) { return double(stats_.inserts); });
        reg.counter(prefix + ".victim_writebacks", [this](Cycles) {
            return double(stats_.victimWritebacks);
        });
        reg.counter(prefix + ".bytes_decompressed", [this](Cycles) {
            return double(stats_.bytesDecompressed);
        });
        reg.counter(prefix + ".cell_bits_written", [this](Cycles) {
            return double(stats_.cellBitsWritten);
        });
        reg.counter(prefix + ".cell_bit_flips", [this](Cycles) {
            return double(stats_.cellBitFlips);
        });
    }

    /**
     * The run's wear histogram, merged across banks for composite
     * models (the default returns this cache's own tracker by value).
     * Its totals must equal the LlcStats cell counters — morc_check
     * cross-checks the two independently carried views.
     */
    virtual energy::WearTracker
    wearSnapshot() const
    {
        return wear_;
    }

    /** Zero wear counters alongside an external stats().clear() (e.g.
     *  after warm-up), keeping the frame geometry. */
    virtual void
    clearWear()
    {
        wear_.clearCounts();
    }

    /**
     * Attach an event tracer; the model records its structured events
     * (see telemetry::EventKind) onto track @p track. Pass nullptr to
     * detach. The default stores the lane for models that emit events;
     * composite models (BankedLlc) fan the tracer out instead.
     */
    virtual void
    attachTracer(telemetry::Tracer *tracer, std::uint16_t track)
    {
        tracer_ = tracer;
        traceTrack_ = track;
    }

  protected:
    /** Charge one physical data-array write to frame (@p set, @p way):
     *  both the aggregate counters and the per-frame histogram. */
    void
    chargeWear(std::uint64_t set, std::uint64_t way,
               std::uint64_t bits_written, std::uint64_t bit_flips)
    {
        stats_.cellBitsWritten += bits_written;
        stats_.cellBitFlips += bit_flips;
        wear_.recordWrite(set, way, bits_written, bit_flips);
    }

    LlcStats stats_;

    /** Per-frame write/flip histogram (see energy/lifetime.hh).
     *  Schemes configure the geometry in their constructor and must
     *  save/restore it with the rest of their state. */
    energy::WearTracker wear_;

    /** Event sink (null = tracing off; emission must be zero-cost). */
    telemetry::Tracer *tracer_ = nullptr;
    std::uint16_t traceTrack_ = 0;
};

} // namespace cache
} // namespace morc

#endif // MORC_CACHE_LLC_HH
