#include "cache/overheads.hh"

namespace morc {
namespace cache {

std::vector<OverheadReport>
table4Overheads(const OverheadParams &p)
{
    const double capacity_bits = static_cast<double>(p.cacheBytes) * 8.0;
    const std::uint64_t lines = p.cacheBytes / kLineSize;
    const double one_x_tags =
        static_cast<double>(lines * p.tagBits) / capacity_bits;

    std::vector<OverheadReport> out;

    // Adaptive: 2x tags; per-entry metadata (compression status, size in
    // segments, LRU and fragmentation state) is 28 bits on each of the
    // doubled tag entries.
    {
        OverheadReport r;
        r.scheme = "Adaptive";
        r.extraTagsFrac = one_x_tags; // (2x - 1x)
        r.metadataFrac =
            static_cast<double>(2 * lines * 28) / capacity_bits;
        r.totalFrac = r.extraTagsFrac + r.metadataFrac;
        r.compEngineMm2 = 0.02;
        r.dictBytes = 128;
        out.push_back(r);
    }

    // Decoupled: super-block tags cover 4 lines each, so tracking 4x the
    // lines needs no extra tag storage; metadata is the decoupled
    // segment back-pointers and per-subline state, 11 bits per tracked
    // sub-line (4x provisioning).
    {
        OverheadReport r;
        r.scheme = "Decoupled";
        r.extraTagsFrac = 0.0;
        r.metadataFrac =
            static_cast<double>(4 * lines * 11) / capacity_bits;
        r.totalFrac = r.extraTagsFrac + r.metadataFrac;
        r.compEngineMm2 = 0.02;
        r.dictBytes = 128;
        out.push_back(r);
    }

    // SC2: 4x plain tags; 13 bits of per-entry metadata (size, status)
    // on each of the 4x entries; the real cost is its 18 KB Huffman
    // dictionary/decoder tables.
    {
        OverheadReport r;
        r.scheme = "SC2";
        r.extraTagsFrac = 3.0 * one_x_tags;
        r.metadataFrac =
            static_cast<double>(4 * lines * 13) / capacity_bits;
        r.totalFrac = r.extraTagsFrac + r.metadataFrac;
        r.compEngineMm2 = 0.0; // the paper reports NoData
        r.dictBytes = 18 * 1024;
        out.push_back(r);
    }

    // MORC: separate compressed-tag store provisioned at 2x uncompressed
    // tags (= 1x extra); LMT provisioned for 8x compression with
    // 11-bit entries (2 state bits + a 9-bit log index, Section 5.4.3's
    // 512 log identifiers).
    const unsigned lmt_entry_bits =
        2 + ceilLog2(2ull * (p.cacheBytes / p.logBytes));
    const double lmt_frac =
        static_cast<double>(p.lmtFactor * lines * lmt_entry_bits) /
        capacity_bits;
    {
        OverheadReport r;
        r.scheme = "MORC";
        r.extraTagsFrac = (p.morcTagFactor - 1) * one_x_tags;
        r.metadataFrac = lmt_frac;
        r.totalFrac = r.extraTagsFrac + r.metadataFrac;
        r.compEngineMm2 = 0.08;
        r.dictBytes = 1024;
        out.push_back(r);
    }

    // MORCMerged: tags co-locate with data (no separate tag store).
    {
        OverheadReport r;
        r.scheme = "MORCMerged";
        r.extraTagsFrac = 0.0;
        r.metadataFrac = lmt_frac;
        r.totalFrac = r.extraTagsFrac + r.metadataFrac;
        r.compEngineMm2 = 0.08;
        r.dictBytes = 1024;
        out.push_back(r);
    }

    return out;
}

} // namespace cache
} // namespace morc
