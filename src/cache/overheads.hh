/**
 * @file
 * Analytical storage-overhead model reproducing Table 4 of the paper.
 *
 * Assumptions per Section 3.3: a 128 KB cache, 48-bit physical address
 * space, 16-way sets for the prior work, 512 B logs for MORC, and LMT
 * entries provisioned for 8x compression. Overheads are normalized to
 * data capacity.
 */

#ifndef MORC_CACHE_OVERHEADS_HH
#define MORC_CACHE_OVERHEADS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.hh"

namespace morc {
namespace cache {

/** One scheme's overheads, all normalized to cache data capacity. */
struct OverheadReport
{
    std::string scheme;
    double extraTagsFrac;   // tag storage beyond the uncompressed 1x
    double metadataFrac;    // segment pointers / LMT / predictor state
    double totalFrac;       // extraTags + metadata
    double compEngineMm2;   // compression engine area
    unsigned dictBytes;     // dictionary storage
};

/** Parameters of the Table 4 comparison. */
struct OverheadParams
{
    std::uint64_t cacheBytes = 128 * 1024;
    unsigned tagBits = 40;      // the paper assumes 40b tags
    unsigned ways = 16;         // prior-work sets
    unsigned logBytes = 512;    // MORC logs
    unsigned lmtFactor = 8;     // LMT provisioning (8x)
    unsigned morcTagFactor = 2; // MORC separate tag store scale
};

/** Compute the five Table 4 columns. */
std::vector<OverheadReport> table4Overheads(const OverheadParams &p = {});

} // namespace cache
} // namespace morc

#endif // MORC_CACHE_OVERHEADS_HH
