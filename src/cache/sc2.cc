#include "cache/sc2.hh"

#include "check/check.hh"
#include "util/rng.hh"

namespace morc {
namespace cache {

Sc2Cache::Sc2Cache() : Sc2Cache(Config{}) {}

Sc2Cache::Sc2Cache(const Config &cfg)
    : cfg_(cfg), sampler_(cfg.dictionarySymbols)
{
    numSets_ = cfg.capacityBytes / kLineSize / cfg.ways;
    MORC_CHECK(numSets_ >= 1 && isPow2(numSets_),
               "set count must be a non-zero power of two: capacity=%llu "
               "ways=%u -> sets=%llu",
               static_cast<unsigned long long>(cfg.capacityBytes),
               cfg.ways, static_cast<unsigned long long>(numSets_));
    sets_.resize(numSets_);
    // Segment allocation shifts entries around the set's data space, so
    // wear is tracked per set only.
    wear_.configure(numSets_, 1);
}

void
Sc2Cache::lineImage(const CacheLine &data, bool compressed,
                    BitWriter &out) const
{
    if (compressed) {
        for (unsigned i = 0; i < kWordsPerLine; i++)
            table_.encode(data.word32(i), out);
    } else {
        energy::rawImage(data, out);
    }
}

std::uint64_t
Sc2Cache::setOf(Addr addr) const
{
    return splitmix64(lineNumber(addr)) & (numSets_ - 1);
}

std::uint32_t
Sc2Cache::lineBits(const CacheLine &data) const
{
    std::uint32_t bits = 0;
    for (unsigned i = 0; i < kWordsPerLine; i++)
        bits += table_.bitsFor(data.word32(i));
    return bits;
}

void
Sc2Cache::maybeRetrain()
{
    fillsSinceTrain_++;
    if (!trained_) {
        if (fillsSinceTrain_ >= cfg_.warmupFills) {
            table_ = sampler_.train();
            trainFreqs_ = sampler_.freqs();
            trained_ = true;
            fillsSinceTrain_ = 0;
        }
        return;
    }
    if (fillsSinceTrain_ >= cfg_.retrainInterval) {
        sampler_.decay();
        table_ = sampler_.train();
        trainFreqs_ = sampler_.freqs();
        retrainings_++;
        fillsSinceTrain_ = 0;
    }
}

ReadResult
Sc2Cache::read(Addr addr)
{
    stats_.reads++;
    ReadResult r;
    Set &set = sets_[setOf(addr)];
    const Addr tag = lineNumber(addr);
    for (auto &line : set.lines) {
        if (line.tag != tag)
            continue;
        stats_.readHits++;
        r.hit = true;
        r.data = line.data;
        if (line.compressed) {
            r.extraLatency = cfg_.decompressionLatency;
            r.bytesDecompressed = kLineSize;
            r.linesDecompressed = 1;
            stats_.linesDecompressed++;
            stats_.bytesDecompressed += kLineSize;
        }
        line.lastUse = ++useClock_;
        return r;
    }
    return r;
}

FillResult
Sc2Cache::insert(Addr addr, const CacheLine &data, bool dirty)
{
    stats_.inserts++;
    FillResult result;
    Set &set = sets_[setOf(addr)];
    const Addr tag = lineNumber(addr);

    sampler_.observe(data);
    maybeRetrain();

    const unsigned max_segments = kLineSize / cfg_.segmentBytes;
    unsigned segments = max_segments;
    bool compressed = false;
    if (trained_) {
        segments = static_cast<unsigned>(
            divCeil(divCeil(lineBits(data), 8), cfg_.segmentBytes));
        if (segments < max_segments) {
            compressed = true;
            stats_.linesCompressed++;
            result.linesCompressed++;
        } else {
            segments = max_segments;
        }
    }

    // Drop any stale copy, then make room. The replaced copy's image is
    // re-encoded under the *current* table — after a retraining this is
    // an approximation of the bits that were on the cells, but a
    // deterministic one.
    bool hadData = false;
    BitWriter oldImage;
    for (auto it = set.lines.begin(); it != set.lines.end(); ++it) {
        if (it->tag == tag) {
            dirty |= it->dirty;
            hadData = true;
            lineImage(it->data, it->compressed, oldImage);
            set.lines.erase(it);
            valid_--;
            break;
        }
    }

    const unsigned budget = cfg_.ways * kLineSize / cfg_.segmentBytes;
    const unsigned max_tags = cfg_.ways * cfg_.tagFactor;
    auto used = [&] {
        unsigned sum = 0;
        for (const auto &l : set.lines)
            sum += l.segments;
        return sum;
    };
    while (used() + segments > budget || set.lines.size() + 1 > max_tags) {
        auto victim = set.lines.begin();
        for (auto it = set.lines.begin(); it != set.lines.end(); ++it) {
            if (it->lastUse < victim->lastUse)
                victim = it;
        }
        if (victim->dirty) {
            result.writebacks.push_back(
                {victim->tag << kLineShift, victim->data});
            stats_.victimWritebacks++;
            if (victim->compressed) {
                result.linesDecompressed++;
                result.bytesDecompressed += kLineSize;
                stats_.linesDecompressed++;
                stats_.bytesDecompressed += kLineSize;
            }
        }
        set.lines.erase(victim);
        valid_--;
    }

    LineEntry entry;
    entry.tag = tag;
    entry.dirty = dirty;
    entry.compressed = compressed;
    entry.segments = segments;
    entry.lastUse = ++useClock_;
    entry.data = data;
    BitWriter newImage;
    lineImage(data, compressed, newImage);
    chargeWear(setOf(addr), 0, newImage.sizeBits(),
               hadData ? energy::flipBits(oldImage.words(),
                                          oldImage.sizeBits(),
                                          newImage.words(),
                                          newImage.sizeBits())
                       : energy::popcountBits(newImage.words(),
                                              newImage.sizeBits()));
    set.lines.push_back(entry);
    valid_++;
    return result;
}

check::AuditReport
Sc2Cache::audit() const
{
    check::AuditReport r;
    const unsigned budget = cfg_.ways * kLineSize / cfg_.segmentBytes;
    const unsigned max_tags = cfg_.ways * cfg_.tagFactor;
    const unsigned max_segments = kLineSize / cfg_.segmentBytes;
    std::uint64_t total_valid = 0;
    for (std::uint64_t s = 0; s < sets_.size(); s++) {
        const Set &set = sets_[s];
        r.require(set.lines.size() <= max_tags,
                  "set %llu holds %zu tags, budget %u",
                  static_cast<unsigned long long>(s), set.lines.size(),
                  max_tags);
        unsigned used = 0;
        for (std::size_t i = 0; i < set.lines.size(); i++) {
            const LineEntry &l = set.lines[i];
            total_valid++;
            used += l.segments;
            r.require(setOf(l.tag << kLineShift) == s,
                      "set %llu entry %zu holds tag %llu that indexes "
                      "set %llu",
                      static_cast<unsigned long long>(s), i,
                      static_cast<unsigned long long>(l.tag),
                      static_cast<unsigned long long>(
                          setOf(l.tag << kLineShift)));
            r.require(l.segments >= 1 && l.segments <= max_segments,
                      "set %llu tag %llu spans %u segments (want 1..%u)",
                      static_cast<unsigned long long>(s),
                      static_cast<unsigned long long>(l.tag), l.segments,
                      max_segments);
            r.require(!l.compressed || trained_,
                      "set %llu tag %llu stored compressed before the "
                      "dictionary was trained",
                      static_cast<unsigned long long>(s),
                      static_cast<unsigned long long>(l.tag));
            r.require(l.compressed == (l.segments < max_segments),
                      "set %llu tag %llu compressed flag %d disagrees "
                      "with %u/%u segments",
                      static_cast<unsigned long long>(s),
                      static_cast<unsigned long long>(l.tag),
                      l.compressed ? 1 : 0, l.segments, max_segments);
            for (std::size_t j = i + 1; j < set.lines.size(); j++) {
                r.require(set.lines[j].tag != l.tag,
                          "set %llu holds duplicate tag %llu at entries "
                          "%zu and %zu",
                          static_cast<unsigned long long>(s),
                          static_cast<unsigned long long>(l.tag), i, j);
            }
        }
        r.require(used <= budget, "set %llu uses %u segments, budget %u",
                  static_cast<unsigned long long>(s), used, budget);
    }
    r.require(total_valid == valid_,
              "valid-line counter %llu disagrees with %llu resident "
              "entries",
              static_cast<unsigned long long>(valid_),
              static_cast<unsigned long long>(total_valid));
    return r;
}

void
Sc2Cache::saveState(snap::Serializer &s) const
{
    s.beginSection("SC2 ");
    s.u64(cfg_.capacityBytes);
    s.u32(cfg_.ways);
    s.u32(cfg_.tagFactor);
    s.u32(cfg_.segmentBytes);
    s.u32(cfg_.dictionarySymbols);
    s.u64(useClock_);
    s.u64(valid_);
    s.boolean(trained_);
    s.u64(fillsSinceTrain_);
    s.u64(retrainings_);
    stats_.save(s);
    wear_.save(s);
    sampler_.save(s);
    // The table itself is derived state: build() is deterministic, so
    // storing the train-time counts is enough to reproduce it.
    comp::ValueSampler::saveFreqMap(s, trainFreqs_);
    s.vec(sets_, [&](const Set &set) {
        s.vec(set.lines, [&](const LineEntry &l) {
            s.u64(l.tag);
            s.boolean(l.dirty);
            s.boolean(l.compressed);
            s.u32(l.segments);
            s.u64(l.lastUse);
            s.bytes(l.data.bytes.data(), kLineSize);
        });
    });
    s.endSection();
}

void
Sc2Cache::restoreState(snap::Deserializer &d)
{
    if (!d.beginSection("SC2 "))
        return;
    const std::uint64_t capacity = d.u64();
    const std::uint32_t ways = d.u32();
    const std::uint32_t tagFactor = d.u32();
    const std::uint32_t segBytes = d.u32();
    const std::uint32_t dictSymbols = d.u32();
    const std::uint64_t useClock = d.u64();
    const std::uint64_t valid = d.u64();
    const bool trained = d.boolean();
    const std::uint64_t fillsSinceTrain = d.u64();
    const std::uint64_t retrainings = d.u64();
    LlcStats stats;
    stats.restore(d);
    energy::WearTracker wear = wear_;
    wear.restore(d);
    comp::ValueSampler sampler(cfg_.dictionarySymbols);
    sampler.restore(d);
    std::unordered_map<std::uint32_t, std::uint64_t> trainFreqs;
    comp::ValueSampler::restoreFreqMap(d, trainFreqs);
    std::vector<Set> sets;
    d.readVec(sets, 8, [&] {
        Set set;
        d.readVec(set.lines, 8 + 2 + 4 + 8 + kLineSize, [&] {
            LineEntry l;
            l.tag = d.u64();
            l.dirty = d.boolean();
            l.compressed = d.boolean();
            l.segments = d.u32();
            l.lastUse = d.u64();
            d.bytes(l.data.bytes.data(), kLineSize);
            return l;
        });
        return set;
    });
    if (d.ok() && (capacity != cfg_.capacityBytes || ways != cfg_.ways ||
                   tagFactor != cfg_.tagFactor ||
                   segBytes != cfg_.segmentBytes ||
                   dictSymbols != cfg_.dictionarySymbols ||
                   sets.size() != sets_.size())) {
        d.fail("SC2 cache geometry mismatch");
    }
    d.endSection();
    if (!d.ok())
        return;
    useClock_ = useClock;
    valid_ = valid;
    trained_ = trained;
    fillsSinceTrain_ = fillsSinceTrain;
    retrainings_ = retrainings;
    stats_ = stats;
    wear_ = std::move(wear);
    sampler_ = std::move(sampler);
    trainFreqs_ = std::move(trainFreqs);
    table_ = trained_
                 ? comp::HuffmanTable::build(trainFreqs_,
                                             cfg_.dictionarySymbols)
                 : comp::HuffmanTable{};
    sets_ = std::move(sets);
}

} // namespace cache
} // namespace morc
