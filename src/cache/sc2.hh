/**
 * @file
 * SC2 statistical compressed cache (Arelakis & Stenstrom, ISCA 2014).
 *
 * SC2 Huffman-codes 32-bit words against a system-wide dictionary of the
 * most frequent values, built by sampling and maintained by (software)
 * retraining. Its cache organization resembles Adaptive's — set-based
 * with segment-granular data — but provisions 4x tags. Being inter-line
 * in spirit (the dictionary is shared), it beats intra-line schemes, but
 * the fixed-size dictionary and 4x tag ceiling cap it well below MORC.
 */

#ifndef MORC_CACHE_SC2_HH
#define MORC_CACHE_SC2_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cache/llc.hh"
#include "compress/huffman.hh"

namespace morc {
namespace cache {

/** SC2-style statistically compressed cache. */
class Sc2Cache : public Llc
{
  public:
    struct Config
    {
        std::uint64_t capacityBytes = 128 * 1024;
        unsigned ways = 8;
        unsigned tagFactor = 4; // 4x max compression
        unsigned segmentBytes = 8;
        unsigned decompressionLatency = 4;
        unsigned dictionarySymbols = 1024;
        /** Fills before the first table build. */
        std::uint64_t warmupFills = 4096;
        /** Fills between retrainings. */
        std::uint64_t retrainInterval = 65536;
    };

    explicit Sc2Cache(const Config &cfg);
    Sc2Cache();

    ReadResult read(Addr addr) override;
    FillResult insert(Addr addr, const CacheLine &data, bool dirty) override;

    std::uint64_t validLines() const override { return valid_; }
    std::uint64_t capacityBytes() const override { return cfg_.capacityBytes; }
    std::string name() const override { return "SC2"; }
    check::AuditReport audit() const override;
    void saveState(snap::Serializer &s) const override;
    void restoreState(snap::Deserializer &d) override;

    /** Exposed for tests. */
    bool trained() const { return trained_; }
    std::uint64_t retrainings() const { return retrainings_; }

    /** Adds dictionary training state on top of the base catalog. */
    void
    registerProbes(telemetry::Registry &reg,
                   const std::string &prefix) override
    {
        Llc::registerProbes(reg, prefix);
        reg.gauge(prefix + ".trained",
                  [this](Cycles) { return trained_ ? 1.0 : 0.0; });
        reg.counter(prefix + ".retrainings", [this](Cycles) {
            return static_cast<double>(retrainings_);
        });
    }

  private:
    struct LineEntry
    {
        Addr tag = 0;
        bool dirty = false;
        bool compressed = false;
        unsigned segments = 0;
        std::uint64_t lastUse = 0;
        CacheLine data{};
    };

    struct Set
    {
        std::vector<LineEntry> lines;
    };

    std::uint64_t setOf(Addr addr) const;
    std::uint32_t lineBits(const CacheLine &data) const;
    /** Emit the image the data array stores for @p data (Huffman stream
     *  under the current table, or the raw line), for wear accounting. */
    void lineImage(const CacheLine &data, bool compressed,
                   BitWriter &out) const;
    void maybeRetrain();

    Config cfg_;
    std::uint64_t numSets_; // morc-analyze: allow(snapshot-completeness) derived from cfg_
    std::vector<Set> sets_;
    std::uint64_t useClock_ = 0;
    std::uint64_t valid_ = 0;

    comp::ValueSampler sampler_;
    comp::HuffmanTable table_;
    /** Exact counts table_ was trained from. The sampler keeps evolving
     *  after a (re)train, so restoring the table from the *current*
     *  counts would diverge; HuffmanTable::build is deterministic, so
     *  rebuilding from these reproduces table_ exactly. */
    std::unordered_map<std::uint32_t, std::uint64_t> trainFreqs_;
    bool trained_ = false;
    std::uint64_t fillsSinceTrain_ = 0;
    std::uint64_t retrainings_ = 0;
};

} // namespace cache
} // namespace morc

#endif // MORC_CACHE_SC2_HH
