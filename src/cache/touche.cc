#include "cache/touche.hh"

#include "check/check.hh"
#include "util/rng.hh"

namespace morc {
namespace cache {

ToucheCache::ToucheCache() : ToucheCache(Config{}) {}

ToucheCache::ToucheCache(const Config &cfg) : cfg_(cfg)
{
    numSets_ = cfg.capacityBytes / kLineSize / cfg.ways;
    MORC_CHECK(numSets_ >= 1 && isPow2(numSets_),
               "set count must be a non-zero power of two: capacity=%llu "
               "ways=%u -> sets=%llu",
               static_cast<unsigned long long>(cfg.capacityBytes),
               cfg.ways, static_cast<unsigned long long>(numSets_));
    sets_.resize(numSets_);
    for (auto &set : sets_)
        set.blocks.resize(cfg_.ways);
    for (auto &set : sets_)
        for (auto &b : set.blocks)
            b.slots.resize(cfg_.linesPerSuperBlock);
    wear_.configure(numSets_, cfg_.ways);
}

std::uint64_t
ToucheCache::setOf(Addr super_tag) const
{
    return splitmix64(super_tag) & (numSets_ - 1);
}

std::uint32_t
ToucheCache::usedBits(const SuperBlock &block) const
{
    std::uint32_t sum = 0;
    for (const auto &slot : block.slots) {
        if (slot.valid)
            sum += slot.costBits;
    }
    return sum;
}

std::uint32_t
ToucheCache::costOf(const CacheLine &data, bool *compressed)
{
    const std::uint32_t bits =
        comp::CpackEncoder::lineBits(data) + kEmbeddedTagBits;
    if (bits >= kWayBits) {
        *compressed = false;
        return kWayBits;
    }
    *compressed = true;
    return bits;
}

void
ToucheCache::evictSlot(SuperBlock &block, std::size_t idx,
                       FillResult &result)
{
    Slot &slot = block.slots[idx];
    MORC_DCHECK(slot.valid, "evicting invalid slot %zu", idx);
    if (slot.dirty) {
        result.writebacks.push_back(
            {slot.lineNumber << kLineShift, slot.data});
        stats_.victimWritebacks++;
        if (slot.compressed) {
            result.linesDecompressed++;
            result.bytesDecompressed += kLineSize;
            stats_.linesDecompressed++;
            stats_.bytesDecompressed += kLineSize;
        }
    }
    slot.valid = false;
    valid_--;
}

void
ToucheCache::evictBlock(SuperBlock &block, FillResult &result)
{
    FillResult scratch;
    for (std::size_t i = 0; i < block.slots.size(); i++) {
        if (block.slots[i].valid)
            evictSlot(block, i, scratch);
    }
    result.writebacks.insert(result.writebacks.end(),
                             scratch.writebacks.begin(),
                             scratch.writebacks.end());
    result.linesDecompressed += scratch.linesDecompressed;
    result.bytesDecompressed += scratch.bytesDecompressed;
    block.valid = false;
    // The data entry is not erased on eviction: its cells keep the old
    // image until the next fill programs over it.
}

void
ToucheCache::packImage(const SuperBlock &block, BitWriter &out) const
{
    comp::CpackEncoder enc;
    for (const auto &slot : block.slots) {
        if (!slot.valid)
            continue;
        if (slot.compressed) {
            enc.reset();
            const std::uint32_t bits = enc.append(slot.data, &out);
            out.put(slot.lineNumber, kEmbeddedTagBits);
            MORC_DCHECK(bits + kEmbeddedTagBits == slot.costBits,
                        "slot image spans %u bits, metadata says %u",
                        bits + kEmbeddedTagBits, slot.costBits);
        } else {
            energy::rawImage(slot.data, out);
        }
    }
    // The write programs the whole 512-bit entry; unused tail cells are
    // cleared so stale bits cannot alias a future signature check.
    while (out.sizeBits() < kWayBits)
        out.put(0, static_cast<unsigned>(
                       std::min<std::uint64_t>(64, kWayBits -
                                                       out.sizeBits())));
}

void
ToucheCache::packSigStream(const SuperBlock &block, BitWriter &out) const
{
    comp::SigCodec codec;
    for (const auto &slot : block.slots) {
        if (slot.valid)
            codec.append(slot.sig, &out);
    }
}

void
ToucheCache::repackWay(std::uint64_t set_idx, std::uint64_t way_idx,
                       SuperBlock &block)
{
    BitWriter image;
    packImage(block, image);
    const std::uint32_t payload = usedBits(block);
    const std::uint64_t flips =
        energy::flipBits(block.image.words(), block.image.sizeBits(),
                         image.words(), image.sizeBits());
    chargeWear(set_idx, way_idx, payload, flips);
    block.image = std::move(image);

    BitWriter sigs;
    packSigStream(block, sigs);
    block.sigStream = std::move(sigs);
}

ReadResult
ToucheCache::read(Addr addr)
{
    stats_.reads++;
    ReadResult r;
    const Addr line_number = lineNumber(addr);
    const Addr super_tag = line_number / cfg_.linesPerSuperBlock;
    const std::uint16_t sig = comp::SigCodec::signatureOf(line_number);
    Set &set = sets_[setOf(super_tag)];
    for (auto &b : set.blocks) {
        if (!b.valid || b.tag != super_tag)
            continue;
        for (auto &slot : b.slots) {
            if (!slot.valid || slot.sig != sig)
                continue;
            // Probable hit: decompress, then verify the embedded tag.
            if (slot.compressed) {
                r.extraLatency = cfg_.decompressionLatency;
                r.bytesDecompressed = kLineSize;
                r.linesDecompressed = 1;
                stats_.linesDecompressed++;
                stats_.bytesDecompressed += kLineSize;
            }
            if (slot.lineNumber != line_number) {
                // Signature collision: the decompression was wasted
                // and the access is a miss.
                sigFalsePositives_++;
                return r;
            }
            stats_.readHits++;
            r.hit = true;
            r.data = slot.data;
            b.lastUse = ++useClock_;
            return r;
        }
        return r; // tag matched, no signature did: clean miss
    }
    return r;
}

FillResult
ToucheCache::insert(Addr addr, const CacheLine &data, bool dirty)
{
    stats_.inserts++;
    FillResult result;
    const Addr line_number = lineNumber(addr);
    const Addr super_tag = line_number / cfg_.linesPerSuperBlock;
    const std::uint16_t sig = comp::SigCodec::signatureOf(line_number);
    const std::uint64_t set_idx = setOf(super_tag);
    Set &set = sets_[set_idx];

    bool compressed = false;
    const std::uint32_t cost = costOf(data, &compressed);
    if (compressed) {
        stats_.linesCompressed++;
        result.linesCompressed++;
    }

    // Find or allocate the superblock.
    SuperBlock *block = nullptr;
    for (auto &b : set.blocks) {
        if (b.valid && b.tag == super_tag) {
            block = &b;
            break;
        }
    }
    if (!block) {
        for (auto &b : set.blocks) {
            if (!b.valid) {
                block = &b;
                break;
            }
        }
    }
    if (!block) {
        // Evict the LRU superblock.
        block = &set.blocks[0];
        for (auto &b : set.blocks) {
            if (b.lastUse < block->lastUse)
                block = &b;
        }
        evictBlock(*block, result);
    }
    if (!block->valid) {
        block->valid = true;
        block->tag = super_tag;
        for (auto &slot : block->slots)
            slot.valid = false;
    }

    // Overwrite of a resident line; note growth for re-compaction
    // accounting. A resident impostor sharing our signature must be
    // evicted first — the lookup could never tell the two apart
    // (miss-repair after a false positive).
    Slot *target = nullptr;
    std::uint32_t freedBits = 0;
    for (std::size_t i = 0; i < block->slots.size(); i++) {
        Slot &slot = block->slots[i];
        if (!slot.valid)
            continue;
        if (slot.lineNumber == line_number) {
            target = &slot;
            freedBits = slot.costBits;
            if (cost > slot.costBits)
                recompactions_++;
            dirty |= slot.dirty;
        } else if (slot.sig == sig) {
            sigEvictions_++;
            evictSlot(*block, i, result);
        }
    }
    if (target) {
        target->valid = false;
        valid_--;
    } else {
        for (auto &slot : block->slots) {
            if (!slot.valid) {
                target = &slot;
                break;
            }
        }
    }
    MORC_CHECK(target != nullptr,
               "superblock %llu has no free slot for line %llu",
               static_cast<unsigned long long>(super_tag),
               static_cast<unsigned long long>(line_number));
    (void)freedBits;

    // Re-compaction: evict sibling lines until the packed image fits
    // the 512-bit data entry again.
    while (usedBits(*block) + cost > kWayBits) {
        std::size_t victim = block->slots.size();
        for (std::size_t i = 0; i < block->slots.size(); i++) {
            if (block->slots[i].valid && &block->slots[i] != target) {
                victim = i;
                break;
            }
        }
        MORC_CHECK(victim < block->slots.size(),
                   "line of %u bits cannot fit an empty %u-bit way",
                   cost, kWayBits);
        evictSlot(*block, victim, result);
    }

    target->valid = true;
    target->dirty = dirty;
    target->compressed = compressed;
    target->costBits = cost;
    target->sig = sig;
    target->lineNumber = line_number;
    target->data = data;
    block->lastUse = ++useClock_;
    valid_++;

    repackWay(set_idx,
              static_cast<std::uint64_t>(block - set.blocks.data()),
              *block);
    return result;
}

check::AuditReport
ToucheCache::audit() const
{
    check::AuditReport r;
    std::uint64_t total_valid = 0;
    for (std::uint64_t s = 0; s < sets_.size(); s++) {
        const Set &set = sets_[s];
        r.require(set.blocks.size() == cfg_.ways,
                  "set %llu holds %zu superblocks, want %u",
                  static_cast<unsigned long long>(s), set.blocks.size(),
                  cfg_.ways);
        for (std::size_t b = 0; b < set.blocks.size(); b++) {
            const SuperBlock &block = set.blocks[b];
            r.require(block.slots.size() == cfg_.linesPerSuperBlock,
                      "set %llu block %zu tracks %zu slots, want %u",
                      static_cast<unsigned long long>(s), b,
                      block.slots.size(), cfg_.linesPerSuperBlock);
            if (!block.valid)
                continue;
            r.require(setOf(block.tag) == s,
                      "set %llu block %zu holds super-tag %llu that "
                      "indexes set %llu",
                      static_cast<unsigned long long>(s), b,
                      static_cast<unsigned long long>(block.tag),
                      static_cast<unsigned long long>(setOf(block.tag)));
            r.require(block.lastUse <= useClock_,
                      "set %llu block %zu lastUse %llu exceeds clock "
                      "%llu",
                      static_cast<unsigned long long>(s), b,
                      static_cast<unsigned long long>(block.lastUse),
                      static_cast<unsigned long long>(useClock_));
            for (std::size_t b2 = b + 1; b2 < set.blocks.size(); b2++) {
                const SuperBlock &other = set.blocks[b2];
                r.require(!other.valid || other.tag != block.tag,
                          "set %llu holds duplicate super-tag %llu in "
                          "blocks %zu and %zu",
                          static_cast<unsigned long long>(s),
                          static_cast<unsigned long long>(block.tag), b,
                          b2);
            }

            std::uint32_t used = 0;
            std::uint64_t resident = 0;
            for (std::size_t i = 0; i < block.slots.size(); i++) {
                const Slot &slot = block.slots[i];
                if (!slot.valid)
                    continue;
                total_valid++;
                resident++;
                used += slot.costBits;
                r.require(slot.lineNumber / cfg_.linesPerSuperBlock ==
                              block.tag,
                          "set %llu block %zu slot %zu holds line %llu "
                          "outside superblock %llu",
                          static_cast<unsigned long long>(s), b, i,
                          static_cast<unsigned long long>(
                              slot.lineNumber),
                          static_cast<unsigned long long>(block.tag));
                // Forward signature derivation: stored signature must
                // re-derive from the line number.
                r.require(slot.sig == comp::SigCodec::signatureOf(
                                          slot.lineNumber),
                          "set %llu block %zu slot %zu signature %u "
                          "does not re-derive from line %llu (want %u)",
                          static_cast<unsigned long long>(s), b, i,
                          static_cast<unsigned>(slot.sig),
                          static_cast<unsigned long long>(
                              slot.lineNumber),
                          static_cast<unsigned>(comp::SigCodec::
                                                    signatureOf(
                                                        slot.lineNumber)));
                bool want_compressed = false;
                const std::uint32_t want_cost =
                    costOf(slot.data, &want_compressed);
                r.require(slot.costBits == want_cost &&
                              slot.compressed == want_compressed,
                          "set %llu block %zu slot %zu metadata "
                          "(%u bits, compressed=%d) disagrees with its "
                          "data (%u bits, compressed=%d)",
                          static_cast<unsigned long long>(s), b, i,
                          slot.costBits, slot.compressed ? 1 : 0,
                          want_cost, want_compressed ? 1 : 0);
                for (std::size_t j = i + 1; j < block.slots.size();
                     j++) {
                    const Slot &other = block.slots[j];
                    if (!other.valid)
                        continue;
                    r.require(other.lineNumber != slot.lineNumber,
                              "set %llu block %zu holds line %llu in "
                              "slots %zu and %zu",
                              static_cast<unsigned long long>(s), b,
                              static_cast<unsigned long long>(
                                  slot.lineNumber),
                              i, j);
                    r.require(other.sig != slot.sig,
                              "set %llu block %zu holds signature %u "
                              "in slots %zu and %zu (lookups cannot "
                              "disambiguate)",
                              static_cast<unsigned long long>(s), b,
                              static_cast<unsigned>(slot.sig), i, j);
                }
            }
            r.require(resident >= 1,
                      "set %llu block %zu is valid but empty",
                      static_cast<unsigned long long>(s), b);
            r.require(used <= kWayBits,
                      "set %llu block %zu packs %u bits into a %u-bit "
                      "data entry",
                      static_cast<unsigned long long>(s), b, used,
                      kWayBits);

            // Backward signature derivation: the stored metadata
            // stream must decode to exactly the resident signatures.
            BitWriter want_sigs;
            packSigStream(block, want_sigs);
            r.require(block.sigStream.sizeBits() ==
                              want_sigs.sizeBits() &&
                          block.sigStream.words() == want_sigs.words(),
                      "set %llu block %zu signature stream (%llu bits) "
                      "does not re-derive from its slots (%llu bits)",
                      static_cast<unsigned long long>(s), b,
                      static_cast<unsigned long long>(
                          block.sigStream.sizeBits()),
                      static_cast<unsigned long long>(
                          want_sigs.sizeBits()));
            comp::SigDecoder dec;
            BitReader in(block.sigStream);
            bool decoded_ok = true;
            for (const auto &slot : block.slots) {
                if (!slot.valid)
                    continue;
                if (in.remaining() <
                        1 ||
                    dec.next(in) != slot.sig) {
                    decoded_ok = false;
                    break;
                }
            }
            r.require(decoded_ok && in.remaining() == 0,
                      "set %llu block %zu signature stream does not "
                      "decode back to its resident signatures",
                      static_cast<unsigned long long>(s), b);

            // Data-entry image: re-pack the slots and compare with the
            // image last programmed.
            BitWriter want_image;
            packImage(block, want_image);
            r.require(block.image.sizeBits() == kWayBits &&
                          want_image.sizeBits() == kWayBits &&
                          block.image.words() == want_image.words(),
                      "set %llu block %zu data-entry image does not "
                      "re-derive from its slots",
                      static_cast<unsigned long long>(s), b);
        }
    }
    r.require(total_valid == valid_,
              "valid-line counter %llu disagrees with %llu valid slots",
              static_cast<unsigned long long>(valid_),
              static_cast<unsigned long long>(total_valid));
    r.require(wear_.totalBitsWritten() == stats_.cellBitsWritten &&
                  wear_.totalBitFlips() == stats_.cellBitFlips,
              "wear tracker (%llu bits, %llu flips) disagrees with "
              "stats counters (%llu bits, %llu flips)",
              static_cast<unsigned long long>(wear_.totalBitsWritten()),
              static_cast<unsigned long long>(wear_.totalBitFlips()),
              static_cast<unsigned long long>(stats_.cellBitsWritten),
              static_cast<unsigned long long>(stats_.cellBitFlips));
    return r;
}

bool
ToucheCache::debugCorruptSignature(std::uint64_t seed)
{
    if (valid_ == 0)
        return false;
    Rng rng(seed);
    std::uint64_t pick = rng.below(valid_);
    for (auto &set : sets_) {
        for (auto &block : set.blocks) {
            if (!block.valid)
                continue;
            for (auto &slot : block.slots) {
                if (!slot.valid)
                    continue;
                if (pick-- == 0) {
                    const unsigned bit = static_cast<unsigned>(
                        rng.below(comp::SigCodec::kSignatureBits));
                    slot.sig = static_cast<std::uint16_t>(
                        slot.sig ^ (1u << bit));
                    return true;
                }
            }
        }
    }
    return false;
}

void
ToucheCache::saveState(snap::Serializer &s) const
{
    s.beginSection("TCHE");
    s.u64(cfg_.capacityBytes);
    s.u32(cfg_.ways);
    s.u32(cfg_.linesPerSuperBlock);
    s.u64(useClock_);
    s.u64(valid_);
    s.u64(sigFalsePositives_);
    s.u64(sigEvictions_);
    s.u64(recompactions_);
    stats_.save(s);
    wear_.save(s);
    s.vec(sets_, [&](const Set &set) {
        s.vec(set.blocks, [&](const SuperBlock &b) {
            s.u64(b.tag);
            s.boolean(b.valid);
            s.u64(b.lastUse);
            s.u64(b.sigStream.sizeBits());
            s.vecU64(b.sigStream.words());
            s.u64(b.image.sizeBits());
            s.vecU64(b.image.words());
            s.vec(b.slots, [&](const Slot &l) {
                s.boolean(l.valid);
                s.boolean(l.dirty);
                s.boolean(l.compressed);
                s.u32(l.costBits);
                s.u32(l.sig);
                s.u64(l.lineNumber);
                s.bytes(l.data.bytes.data(), kLineSize);
            });
        });
    });
    s.endSection();
}

void
ToucheCache::restoreState(snap::Deserializer &d)
{
    if (!d.beginSection("TCHE"))
        return;
    const std::uint64_t capacity = d.u64();
    const std::uint32_t ways = d.u32();
    const std::uint32_t linesPerSb = d.u32();
    const std::uint64_t useClock = d.u64();
    const std::uint64_t valid = d.u64();
    const std::uint64_t sigFalsePositives = d.u64();
    const std::uint64_t sigEvictions = d.u64();
    const std::uint64_t recompactions = d.u64();
    LlcStats stats;
    stats.restore(d);
    energy::WearTracker wear = wear_;
    wear.restore(d);
    std::vector<Set> sets;
    d.readVec(sets, 8, [&] {
        Set set;
        d.readVec(set.blocks, 8 + 1 + 8 + 8 + 8, [&] {
            SuperBlock b;
            b.tag = d.u64();
            b.valid = d.boolean();
            b.lastUse = d.u64();
            const std::uint64_t sigBits = d.u64();
            std::vector<std::uint64_t> sigWords;
            d.vecU64(sigWords);
            const std::uint64_t imageBits = d.u64();
            std::vector<std::uint64_t> imageWords;
            d.vecU64(imageWords);
            if (d.ok() &&
                (sigBits > sigWords.size() * 64 ||
                 sigBits + 63 < sigWords.size() * 64 ||
                 imageBits > imageWords.size() * 64 ||
                 imageBits + 63 < imageWords.size() * 64)) {
                d.fail("touche stream bit counts do not fit their "
                       "words");
                return b;
            }
            if (d.ok()) {
                b.sigStream.restore(std::move(sigWords), sigBits);
                b.image.restore(std::move(imageWords), imageBits);
            }
            d.readVec(b.slots, 1 + 1 + 1 + 4 + 4 + 8 + kLineSize, [&] {
                Slot l;
                l.valid = d.boolean();
                l.dirty = d.boolean();
                l.compressed = d.boolean();
                l.costBits = d.u32();
                l.sig = static_cast<std::uint16_t>(d.u32());
                l.lineNumber = d.u64();
                d.bytes(l.data.bytes.data(), kLineSize);
                return l;
            });
            if (d.ok() && b.slots.size() != cfg_.linesPerSuperBlock)
                d.fail("touche superblock slot-count mismatch");
            return b;
        });
        return set;
    });
    if (d.ok() && (capacity != cfg_.capacityBytes || ways != cfg_.ways ||
                   linesPerSb != cfg_.linesPerSuperBlock ||
                   sets.size() != sets_.size())) {
        d.fail("touche cache geometry mismatch");
    }
    d.endSection();
    if (!d.ok())
        return;
    useClock_ = useClock;
    valid_ = valid;
    sigFalsePositives_ = sigFalsePositives;
    sigEvictions_ = sigEvictions;
    recompactions_ = recompactions;
    stats_ = stats;
    wear_ = std::move(wear);
    sets_ = std::move(sets);
}

} // namespace cache
} // namespace morc
