/**
 * @file
 * Touché signature-tag compressed cache (Hong et al., PAPERS.md).
 *
 * Touché reaches compressed-cache capacity from an *unmodified* tag
 * array: one tag entry covers a four-line superblock, and the lines
 * packed into the way's single 64-byte data entry are identified only
 * by short hashed signatures squeezed into the entry's unused bits
 * (comp::SigCodec). A lookup that matches a signature is merely a
 * probable hit — each compressed line travels with its full line
 * number, so the data is decompressed and *verified*; a collision
 * (false positive) costs the decompression round trip and reports a
 * miss, never wrong data. Two same-signature lines can never coexist
 * in a way (the lookup could not tell them apart), so inserting a
 * colliding line first evicts the resident impostor — the miss-repair
 * path.
 *
 * The data entry is re-packed whenever a line's compressed size
 * changes: an overwrite that grows evicts sibling lines until the
 * packed image fits the 64-byte budget again (re-compaction). Every
 * re-pack programs the NVM data entry; wear is charged from the
 * actual emitted bitstream against the entry's previous image
 * (energy/lifetime.hh).
 */

#ifndef MORC_CACHE_TOUCHE_HH
#define MORC_CACHE_TOUCHE_HH

#include <cstdint>
#include <vector>

#include "cache/llc.hh"
#include "compress/cpack.hh"
#include "compress/sigcodec.hh"

namespace morc {
namespace cache {

/** Touché-style compressed cache behind an unmodified tag array. */
class ToucheCache : public Llc
{
  public:
    /** Full line number appended to each compressed line so a
     *  signature match can be verified after decompression. */
    static constexpr unsigned kEmbeddedTagBits =
        kPhysAddrBits - kLineShift;

    /** Data-entry budget per way, in bits (one uncompressed line). */
    static constexpr unsigned kWayBits = kLineSize * 8;

    struct Config
    {
        std::uint64_t capacityBytes = 128 * 1024;
        unsigned ways = 8;              // superblock tags per set
        unsigned linesPerSuperBlock = 4;
        unsigned decompressionLatency = 4;
    };

    explicit ToucheCache(const Config &cfg);
    ToucheCache();

    ReadResult read(Addr addr) override;
    FillResult insert(Addr addr, const CacheLine &data, bool dirty) override;

    std::uint64_t validLines() const override { return valid_; }
    std::uint64_t capacityBytes() const override { return cfg_.capacityBytes; }
    std::string name() const override { return "Touche"; }
    check::AuditReport audit() const override;
    void saveState(snap::Serializer &s) const override;
    void restoreState(snap::Deserializer &d) override;

    /** Exposed for tests: signature-collision traffic. */
    std::uint64_t sigFalsePositives() const { return sigFalsePositives_; }
    std::uint64_t sigEvictions() const { return sigEvictions_; }
    std::uint64_t recompactions() const { return recompactions_; }

    /** Adds the signature/collision catalog on top of the base set. */
    void
    registerProbes(telemetry::Registry &reg,
                   const std::string &prefix) override
    {
        Llc::registerProbes(reg, prefix);
        reg.counter(prefix + ".sig_false_positives", [this](Cycles) {
            return static_cast<double>(sigFalsePositives_);
        });
        reg.counter(prefix + ".sig_evictions", [this](Cycles) {
            return static_cast<double>(sigEvictions_);
        });
        reg.counter(prefix + ".recompactions", [this](Cycles) {
            return static_cast<double>(recompactions_);
        });
    }

    /**
     * Mutation-test hook: flip one bit of one resident signature,
     * chosen by @p seed. audit() must report the inconsistency (the
     * signature no longer re-derives from the line number, and the
     * stored metadata stream disagrees). @return false when the cache
     * holds no valid line to corrupt.
     */
    bool debugCorruptSignature(std::uint64_t seed);

  private:
    struct Slot
    {
        bool valid = false;
        bool dirty = false;
        bool compressed = false;
        std::uint32_t costBits = 0; // data-entry bits incl. embedded tag
        std::uint16_t sig = 0;
        Addr lineNumber = 0;
        CacheLine data{};
    };

    struct SuperBlock
    {
        Addr tag = 0; // superblock number
        bool valid = false;
        std::uint64_t lastUse = 0;
        std::vector<Slot> slots;
        /** Signature metadata stream (tag-entry unused bits). */
        BitWriter sigStream;
        /** Last image programmed into the 512-bit data entry. */
        BitWriter image;
    };

    struct Set
    {
        std::vector<SuperBlock> blocks;
    };

    std::uint64_t setOf(Addr super_tag) const;
    std::uint32_t usedBits(const SuperBlock &block) const;
    /** Compressed cost of @p data (bits incl. embedded tag), and
     *  whether it is stored compressed at all. */
    static std::uint32_t costOf(const CacheLine &data, bool *compressed);
    void evictSlot(SuperBlock &block, std::size_t idx,
                   FillResult &result);
    void evictBlock(SuperBlock &block, FillResult &result);
    /** Emit the packed data-entry image of @p block's valid slots. */
    void packImage(const SuperBlock &block, BitWriter &out) const;
    /** Emit the signature metadata stream of @p block. */
    void packSigStream(const SuperBlock &block, BitWriter &out) const;
    /** Re-program the way: rebuild both streams and charge wear. */
    void repackWay(std::uint64_t set_idx, std::uint64_t way_idx,
                   SuperBlock &block);

    Config cfg_;
    std::uint64_t numSets_; // morc-analyze: allow(snapshot-completeness) derived from cfg_
    std::vector<Set> sets_;
    std::uint64_t useClock_ = 0;
    std::uint64_t valid_ = 0;
    std::uint64_t sigFalsePositives_ = 0;
    std::uint64_t sigEvictions_ = 0;
    std::uint64_t recompactions_ = 0;
};

} // namespace cache
} // namespace morc

#endif // MORC_CACHE_TOUCHE_HH
