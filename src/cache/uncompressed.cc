#include "cache/uncompressed.hh"

#include "check/check.hh"

namespace morc {
namespace cache {

UncompressedCache::UncompressedCache(std::uint64_t capacity_bytes,
                                     unsigned ways)
    : capacity_(capacity_bytes), ways_(ways)
{
    numSets_ = capacity_bytes / kLineSize / ways;
    MORC_CHECK(numSets_ >= 1 && isPow2(numSets_),
               "set count must be a non-zero power of two: capacity=%llu "
               "ways=%u -> sets=%llu",
               static_cast<unsigned long long>(capacity_bytes), ways,
               static_cast<unsigned long long>(numSets_));
    store_.resize(numSets_ * ways_);
    wear_.configure(numSets_, ways_);
}

std::uint64_t
UncompressedCache::setOf(Addr addr) const
{
    // Hash the line number so multi-program address spaces (thread id in
    // the upper bits) spread over the shared cache.
    return splitmix64(lineNumber(addr)) & (numSets_ - 1);
}

UncompressedCache::Way *
UncompressedCache::find(Addr addr)
{
    const std::uint64_t set = setOf(addr);
    const Addr tag = lineNumber(addr);
    for (unsigned w = 0; w < ways_; w++) {
        Way &way = store_[set * ways_ + w];
        if (way.valid && way.tag == tag)
            return &way;
    }
    return nullptr;
}

ReadResult
UncompressedCache::read(Addr addr)
{
    stats_.reads++;
    ReadResult r;
    Way *way = find(addr);
    if (way) {
        stats_.readHits++;
        way->lastUse = ++useClock_;
        r.hit = true;
        r.data = way->data;
    }
    return r;
}

FillResult
UncompressedCache::insert(Addr addr, const CacheLine &data, bool dirty)
{
    stats_.inserts++;
    FillResult result;

    if (Way *way = find(addr)) {
        // Re-programming the frame writes the whole raw line; only the
        // cells that differ from the previous contents flip.
        chargeWear(setOf(addr),
                   static_cast<std::uint64_t>(way - store_.data()) %
                       ways_,
                   kLineSize * 8, energy::lineFlips(way->data, data));
        way->data = data;
        way->dirty |= dirty;
        way->lastUse = ++useClock_;
        return result;
    }

    const std::uint64_t set = setOf(addr);
    Way *victim = nullptr;
    for (unsigned w = 0; w < ways_; w++) {
        Way &way = store_[set * ways_ + w];
        if (!way.valid) {
            victim = &way;
            break;
        }
        if (!victim || way.lastUse < victim->lastUse)
            victim = &way;
    }
    if (victim->valid) {
        valid_--;
        if (victim->dirty) {
            result.writebacks.push_back(
                {victim->tag << kLineShift, victim->data});
            stats_.victimWritebacks++;
        }
    }
    chargeWear(set,
               static_cast<std::uint64_t>(victim - store_.data()) % ways_,
               kLineSize * 8,
               victim->valid ? energy::lineFlips(victim->data, data)
                             : energy::linePopcount(data));
    victim->tag = lineNumber(addr);
    victim->valid = true;
    victim->dirty = dirty;
    victim->data = data;
    victim->lastUse = ++useClock_;
    valid_++;
    return result;
}

check::AuditReport
UncompressedCache::audit() const
{
    check::AuditReport r;
    r.require(store_.size() == numSets_ * ways_,
              "store has %zu entries, want %llu sets x %u ways",
              store_.size(), static_cast<unsigned long long>(numSets_),
              ways_);
    std::uint64_t total_valid = 0;
    for (std::uint64_t set = 0; set < numSets_; set++) {
        for (unsigned w = 0; w < ways_; w++) {
            const Way &way = store_[set * ways_ + w];
            if (!way.valid)
                continue;
            total_valid++;
            r.require(way.lastUse <= useClock_,
                      "set %llu way %u lastUse %llu exceeds clock %llu",
                      static_cast<unsigned long long>(set), w,
                      static_cast<unsigned long long>(way.lastUse),
                      static_cast<unsigned long long>(useClock_));
            r.require(setOf(way.tag << kLineShift) == set,
                      "set %llu way %u holds tag %llu that indexes set "
                      "%llu",
                      static_cast<unsigned long long>(set), w,
                      static_cast<unsigned long long>(way.tag),
                      static_cast<unsigned long long>(
                          setOf(way.tag << kLineShift)));
            for (unsigned w2 = w + 1; w2 < ways_; w2++) {
                const Way &other = store_[set * ways_ + w2];
                r.require(!other.valid || other.tag != way.tag,
                          "set %llu holds duplicate tag %llu in ways %u "
                          "and %u",
                          static_cast<unsigned long long>(set),
                          static_cast<unsigned long long>(way.tag), w, w2);
            }
        }
    }
    r.require(total_valid == valid_,
              "valid-line counter %llu disagrees with %llu valid ways",
              static_cast<unsigned long long>(valid_),
              static_cast<unsigned long long>(total_valid));
    return r;
}

void
UncompressedCache::saveState(snap::Serializer &s) const
{
    s.beginSection("UNCP");
    s.u64(capacity_);
    s.u32(ways_);
    s.u64(useClock_);
    s.u64(valid_);
    stats_.save(s);
    wear_.save(s);
    s.vec(store_, [&](const Way &w) {
        s.u64(w.tag);
        s.boolean(w.valid);
        s.boolean(w.dirty);
        s.u64(w.lastUse);
        s.bytes(w.data.bytes.data(), kLineSize);
    });
    s.endSection();
}

void
UncompressedCache::restoreState(snap::Deserializer &d)
{
    if (!d.beginSection("UNCP"))
        return;
    const std::uint64_t capacity = d.u64();
    const std::uint32_t ways = d.u32();
    const std::uint64_t useClock = d.u64();
    const std::uint64_t valid = d.u64();
    LlcStats stats;
    stats.restore(d);
    energy::WearTracker wear = wear_;
    wear.restore(d);
    std::vector<Way> store;
    d.readVec(store, 8 + 1 + 1 + 8 + kLineSize, [&] {
        Way w;
        w.tag = d.u64();
        w.valid = d.boolean();
        w.dirty = d.boolean();
        w.lastUse = d.u64();
        d.bytes(w.data.bytes.data(), kLineSize);
        return w;
    });
    if (d.ok() && (capacity != capacity_ || ways != ways_ ||
                   store.size() != store_.size())) {
        d.fail("uncompressed cache geometry mismatch");
    }
    d.endSection();
    if (!d.ok())
        return;
    useClock_ = useClock;
    valid_ = valid;
    stats_ = stats;
    wear_ = std::move(wear);
    store_ = std::move(store);
}

} // namespace cache
} // namespace morc
