#include "cache/uncompressed.hh"

#include <cassert>

namespace morc {
namespace cache {

UncompressedCache::UncompressedCache(std::uint64_t capacity_bytes,
                                     unsigned ways)
    : capacity_(capacity_bytes), ways_(ways)
{
    numSets_ = capacity_bytes / kLineSize / ways;
    assert(numSets_ >= 1 && isPow2(numSets_));
    store_.resize(numSets_ * ways_);
}

std::uint64_t
UncompressedCache::setOf(Addr addr) const
{
    // Hash the line number so multi-program address spaces (thread id in
    // the upper bits) spread over the shared cache.
    return splitmix64(lineNumber(addr)) & (numSets_ - 1);
}

UncompressedCache::Way *
UncompressedCache::find(Addr addr)
{
    const std::uint64_t set = setOf(addr);
    const Addr tag = lineNumber(addr);
    for (unsigned w = 0; w < ways_; w++) {
        Way &way = store_[set * ways_ + w];
        if (way.valid && way.tag == tag)
            return &way;
    }
    return nullptr;
}

ReadResult
UncompressedCache::read(Addr addr)
{
    stats_.reads++;
    ReadResult r;
    Way *way = find(addr);
    if (way) {
        stats_.readHits++;
        way->lastUse = ++useClock_;
        r.hit = true;
        r.data = way->data;
    }
    return r;
}

FillResult
UncompressedCache::insert(Addr addr, const CacheLine &data, bool dirty)
{
    stats_.inserts++;
    FillResult result;

    if (Way *way = find(addr)) {
        way->data = data;
        way->dirty |= dirty;
        way->lastUse = ++useClock_;
        return result;
    }

    const std::uint64_t set = setOf(addr);
    Way *victim = nullptr;
    for (unsigned w = 0; w < ways_; w++) {
        Way &way = store_[set * ways_ + w];
        if (!way.valid) {
            victim = &way;
            break;
        }
        if (!victim || way.lastUse < victim->lastUse)
            victim = &way;
    }
    if (victim->valid) {
        valid_--;
        if (victim->dirty) {
            result.writebacks.push_back(
                {victim->tag << kLineShift, victim->data});
            stats_.victimWritebacks++;
        }
    }
    victim->tag = lineNumber(addr);
    victim->valid = true;
    victim->dirty = dirty;
    victim->data = data;
    victim->lastUse = ++useClock_;
    valid_++;
    return result;
}

} // namespace cache
} // namespace morc
