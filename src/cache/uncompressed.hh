/**
 * @file
 * Conventional set-associative, LRU, write-back LLC — the paper's
 * uncompressed baseline (Table 5: 8-way, 64 B lines).
 */

#ifndef MORC_CACHE_UNCOMPRESSED_HH
#define MORC_CACHE_UNCOMPRESSED_HH

#include <cstdint>
#include <vector>

#include "cache/llc.hh"
#include "util/rng.hh"

namespace morc {
namespace cache {

/** Plain set-associative cache. */
class UncompressedCache : public Llc
{
  public:
    /**
     * @param capacity_bytes Total data capacity.
     * @param ways           Associativity.
     */
    UncompressedCache(std::uint64_t capacity_bytes, unsigned ways = 8);

    ReadResult read(Addr addr) override;
    FillResult insert(Addr addr, const CacheLine &data, bool dirty) override;

    std::uint64_t validLines() const override { return valid_; }
    std::uint64_t capacityBytes() const override { return capacity_; }
    std::string name() const override { return "Uncompressed"; }
    check::AuditReport audit() const override;
    void saveState(snap::Serializer &s) const override;
    void restoreState(snap::Deserializer &d) override;

  private:
    struct Way
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lastUse = 0;
        CacheLine data{};
    };

    std::uint64_t setOf(Addr addr) const;
    Way *find(Addr addr);

    std::uint64_t capacity_;
    unsigned ways_;
    std::uint64_t numSets_; // morc-analyze: allow(snapshot-completeness) derived from capacity_/ways_
    std::vector<Way> store_; // numSets_ x ways_
    std::uint64_t useClock_ = 0;
    std::uint64_t valid_ = 0;
};

} // namespace cache
} // namespace morc

#endif // MORC_CACHE_UNCOMPRESSED_HH
