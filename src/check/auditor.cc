#include "check/auditor.hh"

#include <cstdarg>
#include <cstdio>

namespace morc {
namespace check {

namespace {

std::string
vformat(const char *fmt, va_list args)
{
    va_list probe;
    va_copy(probe, args);
    const int n = std::vsnprintf(nullptr, 0, fmt, probe);
    va_end(probe);
    if (n <= 0)
        return std::string(fmt);
    std::string out(static_cast<std::size_t>(n), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
    return out;
}

} // namespace

bool
AuditReport::require(bool holds, const char *fmt, ...)
{
    checks_++;
    if (!holds) {
        va_list args;
        va_start(args, fmt);
        record(vformat(fmt, args));
        va_end(args);
    }
    return holds;
}

void
AuditReport::fail(const std::string &msg)
{
    checks_++;
    record(msg);
}

void
AuditReport::merge(const AuditReport &other, const std::string &prefix)
{
    checks_ += other.checks_;
    violations_ += other.violations_;
    for (const auto &issue : other.issues_) {
        if (issues_.size() >= kMaxRecordedIssues)
            break;
        issues_.push_back(prefix + issue);
    }
}

std::string
AuditReport::str() const
{
    std::string out;
    for (const auto &issue : issues_) {
        out += issue;
        out += '\n';
    }
    if (violations_ > issues_.size()) {
        out += "... and " +
               std::to_string(violations_ - issues_.size()) +
               " further violations\n";
    }
    return out;
}

void
AuditReport::record(std::string msg)
{
    violations_++;
    if (issues_.size() < kMaxRecordedIssues)
        issues_.push_back(std::move(msg));
}

} // namespace check
} // namespace morc
