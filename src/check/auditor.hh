/**
 * @file
 * On-demand structural invariant auditing.
 *
 * Every cache scheme implements the Auditable interface: audit() walks
 * the scheme's full internal state and validates its structural
 * invariants (space accounting, metadata cross-consistency, replacement
 * bookkeeping), returning an AuditReport instead of aborting. Compressed
 * cache bugs tend to surface as silent data corruption rather than
 * crashes, so the auditor is designed to be run *during* execution — the
 * morc_check differential fuzzer invokes it every N operations — and to
 * name every violated invariant with the offending values.
 *
 * audit() must be const and side-effect free: running it any number of
 * times may not change hit/miss behaviour, stats, or stored data.
 */

#ifndef MORC_CHECK_AUDITOR_HH
#define MORC_CHECK_AUDITOR_HH

#include <cstdint>
#include <string>
#include <vector>

namespace morc {
namespace check {

/**
 * Accumulated outcome of one audit pass.
 *
 * Issues are recorded in discovery order (deterministic for a
 * deterministic walk) and capped so a badly corrupted structure cannot
 * produce an unbounded report; the total violation count keeps counting
 * past the cap.
 */
class AuditReport
{
  public:
    /** Maximum recorded issue strings; further violations only count. */
    static constexpr std::size_t kMaxRecordedIssues = 64;

    bool ok() const { return violations_ == 0; }

    /** Invariant checks evaluated (passed + failed). */
    std::uint64_t checksRun() const { return checks_; }

    /** Invariant violations found (may exceed issues().size()). */
    std::uint64_t violations() const { return violations_; }

    const std::vector<std::string> &issues() const { return issues_; }

    /** Record one invariant check: append a formatted issue when
     *  @p holds is false. Returns @p holds for chaining. */
    bool require(bool holds, const char *fmt, ...)
#if defined(__GNUC__) || defined(__clang__)
        __attribute__((format(printf, 3, 4)))
#endif
        ;

    /** Record an unconditional violation. */
    void fail(const std::string &msg);

    /** Fold @p other into this report, prefixing its issues. */
    void merge(const AuditReport &other, const std::string &prefix);

    /** Human-readable summary: one line per recorded issue. */
    std::string str() const;

  private:
    void record(std::string msg);

    std::uint64_t checks_ = 0;
    std::uint64_t violations_ = 0;
    std::vector<std::string> issues_;
};

/** Interface of everything the audit layer can validate on demand. */
class Auditable
{
  public:
    virtual ~Auditable() = default;

    /** Validate all structural invariants; never mutates state. */
    virtual AuditReport audit() const = 0;
};

} // namespace check
} // namespace morc

#endif // MORC_CHECK_AUDITOR_HH
