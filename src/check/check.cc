#include "check/check.hh"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace morc {
namespace check {

void
checkFailed(const char *file, int line, const char *func, const char *cond,
            const char *fmt, ...)
{
    std::fprintf(stderr, "MORC_CHECK failed: %s\n  at %s:%d in %s\n  ",
                 cond, file, line, func);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fputc('\n', stderr);
    std::fflush(stderr);
    std::abort();
}

} // namespace check
} // namespace morc
