/**
 * @file
 * Context-rich invariant checks (the MORC_CHECK macro family).
 *
 * Every check carries a printf-style message with the offending values,
 * so a violation is diagnosable from the failure line alone — unlike the
 * bare assert()s these replace. Activation:
 *
 *   MORC_CHECK(cond, fmt, ...)   active in MORC_AUDIT builds and in
 *                                debug (!NDEBUG) builds; compiled out in
 *                                release. General-purpose invariants.
 *   MORC_DCHECK(cond, fmt, ...)  active only in MORC_AUDIT builds.
 *                                Hot-path checks (per-bit, per-tag) that
 *                                would make even debug runs crawl.
 *   MORC_CHECK_FAIL(fmt, ...)    unreachable-state marker; same
 *                                activation as MORC_CHECK.
 *
 * The dedicated audit configuration (cmake -DMORC_AUDIT=ON, enabled by
 * the asan-ubsan and tsan presets) turns every check on regardless of
 * NDEBUG. A failed check prints the condition, location, and message to
 * stderr and aborts, so sanitizer runs and fuzz drivers fail loudly at
 * the first broken invariant instead of corrupting state silently.
 *
 * In disabled configurations the condition and message arguments are
 * parsed but never evaluated (zero runtime cost, no side effects).
 */

#ifndef MORC_CHECK_CHECK_HH
#define MORC_CHECK_CHECK_HH

namespace morc {
namespace check {

/** Print a check failure (condition, location, formatted message) to
 *  stderr and abort. Never returns. */
[[noreturn]] void checkFailed(const char *file, int line, const char *func,
                              const char *cond, const char *fmt, ...)
#if defined(__GNUC__) || defined(__clang__)
    __attribute__((format(printf, 5, 6)))
#endif
    ;

} // namespace check
} // namespace morc

#if defined(MORC_AUDIT) || !defined(NDEBUG)
#define MORC_CHECKS_ENABLED 1
#else
#define MORC_CHECKS_ENABLED 0
#endif

#if defined(MORC_AUDIT)
#define MORC_DCHECKS_ENABLED 1
#else
#define MORC_DCHECKS_ENABLED 0
#endif

/** Swallow a disabled check without evaluating its arguments while
 *  still type-checking the condition expression. */
#define MORC_CHECK_UNUSED_(cond)                                        \
    do {                                                                \
        (void)sizeof((cond) ? 1 : 0);                                   \
    } while (0)

#if MORC_CHECKS_ENABLED
#define MORC_CHECK(cond, ...)                                           \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::morc::check::checkFailed(__FILE__, __LINE__, __func__,    \
                                       #cond, __VA_ARGS__);             \
        }                                                               \
    } while (0)
#define MORC_CHECK_FAIL(...)                                            \
    ::morc::check::checkFailed(__FILE__, __LINE__, __func__,            \
                               "unreachable", __VA_ARGS__)
#else
#define MORC_CHECK(cond, ...) MORC_CHECK_UNUSED_(cond)
#define MORC_CHECK_FAIL(...)                                            \
    do {                                                                \
    } while (0)
#endif

#if MORC_DCHECKS_ENABLED
#define MORC_DCHECK(cond, ...)                                          \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::morc::check::checkFailed(__FILE__, __LINE__, __func__,    \
                                       #cond, __VA_ARGS__);             \
        }                                                               \
    } while (0)
#else
#define MORC_DCHECK(cond, ...) MORC_CHECK_UNUSED_(cond)
#endif

#endif // MORC_CHECK_CHECK_HH
