/**
 * @file
 * morc_check: differential model checker / structural-invariant fuzzer.
 *
 * Replays seeded adversarial access streams through each cache scheme in
 * lockstep with a reference uncompressed memory model (a functional map
 * of what every line must contain). Compressed caches fail by silently
 * corrupting data far more often than by crashing, so the checker trips
 * on *observable* divergence:
 *
 *   - a read hit returning contents that differ from the reference,
 *   - a hit on an address that was never inserted,
 *   - a write-back whose payload differs from the reference,
 *   - a write-back of a line that was never dirty,
 *   - a dirty line vanishing without a write-back (read miss on an
 *     address the model still holds dirty).
 *
 * In addition the scheme's structural auditor (check/auditor.hh) runs
 * every --audit-every operations and once more at the end, so internal
 * corruption is caught close to the operation that caused it even when
 * it has not yet surfaced at the interface.
 *
 * --inject-lmt-corruption is the mutation test for the auditor itself:
 * it flips one bit in a valid MORC LMT entry and demands that the next
 * audit *fails*. A checker that cannot see injected faults proves
 * nothing about the absence of real ones.
 *
 * --mesh WxH shards the scheme into W*H address-interleaved banks
 * behind a mesh::BankedLlc front (the tiled-substrate LLC), replays the
 * same stream through the sharded instance, and additionally enforces
 * the cross-bank exclusivity invariant: an address may be resident only
 * in its home bank. Each audit probes every *foreign* bank for a ring
 * of recently touched addresses (a hit is a violation), and the final
 * audit sweeps the entire reference model the same way. With
 * --inject-lmt-corruption the fault is injected into one bank's LMT and
 * the merged banked audit must still catch it.
 *
 * --snapshot is the differential test for the checkpoint subsystem
 * (src/snapshot): halfway through the stream the cache's state is
 * serialized, restored into a freshly constructed twin, and both are
 * audited and re-serialized (the twin's bytes must equal the
 * original's). The remainder of the stream then drives cache and twin
 * in lockstep — any divergence in hit/miss outcome, returned contents,
 * latency annotation, or write-back set means save/restore lost state.
 * At the end both serialize byte-identically once more, and a
 * one-byte-tampered copy of the snapshot must be *rejected* by the
 * frame CRC — a restore path that accepts corrupted bytes proves
 * nothing.
 *
 * --events attaches the telemetry event tracer (telemetry/tracer.hh)
 * to the cache under test and cross-checks it against the counters the
 * same run maintains: the traced log_flush / lmt_conflict_evict event
 * counts must equal LlcStats::logFlushes / lmtConflictEvicts, no event
 * may be dropped (the buffer is sized to the stream), and stamps must
 * be monotone. This pins the tracer to the model the auditor already
 * trusts — a tracer that lies about flushes fails here, not in a
 * Perfetto screenshot.
 *
 * --kv swaps the bare-cache stream for the KV serving subsystem
 * (src/kv): a multi-tenant Zipf request stream drives generator ->
 * front cache -> DRAM/SSD tiered store, while an independent version
 * ledger plus twin value models recompute the content digest every
 * reply must carry. A digest mismatch means some layer of the stack
 * (front scheme, tier promotion/demotion, writeback plumbing, value
 * churn) silently corrupted data. Audits of every layer run on the
 * same --audit-every cadence, and --kv --snapshot forks the *whole
 * service* (generator RNGs, front cache, both tiers, histograms,
 * telemetry) mid-stream with the same restore / tamper-reject /
 * lockstep-to-identical-final-bytes discipline.
 *
 * Exit codes: 0 = clean, 1 = divergence / audit failure / undetected
 * injected fault, 2 = usage error.
 */

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cache/adaptive.hh"
#include "cache/decoupled.hh"
#include "cache/ideal.hh"
#include "cache/llc.hh"
#include "cache/sc2.hh"
#include "cache/touche.hh"
#include "cache/uncompressed.hh"
#include "core/morc.hh"
#include "kv/service.hh"
#include "mesh/banked_llc.hh"
#include "mesh/topology.hh"
#include "sim/scheme.hh"
#include "snapshot/snapshot.hh"
#include "sweep/sweep.hh"
#include "telemetry/tracer.hh"
#include "util/rng.hh"
#include "util/types.hh"

namespace morc {
namespace {

struct Options
{
    std::string scheme = "all";
    std::uint64_t ops = 100000;
    std::uint64_t seed = 7;
    std::uint64_t auditEvery = 64;
    /** 0 = flat scheme instance; WxH = banked behind mesh::BankedLlc. */
    unsigned meshWidth = 0;
    unsigned meshHeight = 0;
    bool injectLmtCorruption = false;
    bool injectSigCorruption = false;
    bool events = false;
    bool snapshot = false;
    bool kv = false;
    bool verbose = false;

    bool mesh() const { return meshWidth != 0 && meshHeight != 0; }
};

/** Build by CLI name from the shared scheme registry (sim/scheme.hh),
 *  so a scheme registered once is fuzzed here without a second list. */
std::unique_ptr<cache::Llc>
makeScheme(const std::string &name, std::uint64_t capacity = 128 * 1024)
{
    sim::Scheme s;
    if (!sim::schemeFromCliName(name, &s))
        return nullptr;
    return sim::makeLlc(s, capacity);
}

/** Per-bank data capacity under --mesh. Small enough that each bank
 *  churns through evictions (the stressful regime), large enough for
 *  every scheme's structural minimums (power-of-two set counts, MORC's
 *  activeLogs <= numLogs). */
constexpr std::uint64_t kMeshBankBytes = 16 * 1024;

/** The cache under test: either a flat scheme instance or the same
 *  scheme sharded into one bank per mesh tile. */
std::unique_ptr<cache::Llc>
makeCache(const std::string &scheme, const Options &opt)
{
    if (!opt.mesh())
        return makeScheme(scheme);
    if (!makeScheme(scheme)) // validate the name before sharding
        return nullptr;
    mesh::MeshConfig mc;
    mc.width = opt.meshWidth;
    mc.height = opt.meshHeight;
    return std::make_unique<mesh::BankedLlc>(
        mc, kMeshBankBytes * mc.tiles(),
        [&scheme](unsigned, std::uint64_t bank_capacity) {
            return makeScheme(scheme, bank_capacity);
        });
}

/** Reference state for one line: last contents handed to the cache and
 *  whether the cache currently owes memory a write-back for it. */
struct ModelLine
{
    CacheLine data;
    bool dirty = false;
};

/* ------------------------------------------------------------------ */
/* Adversarial stream generation                                      */
/* ------------------------------------------------------------------ */

/** Data content classes; each stresses a different codec path. */
enum class DataKind
{
    Zero,           //< all-zero lines (best case for every codec)
    Pooled,         //< zeros + a small value pool (LBE's sweet spot)
    Ramp,           //< arithmetic word sequence (base-delta friendly)
    Incompressible, //< random words (forces raw storage / evictions)
};

CacheLine
makeLine(Rng &rng, DataKind kind, std::uint32_t salt)
{
    CacheLine l;
    switch (kind) {
    case DataKind::Zero:
        break;
    case DataKind::Pooled:
        for (unsigned i = 0; i < kWordsPerLine; i++) {
            l.setWord32(
                i, rng.chance(0.3)
                       ? 0
                       : salt + static_cast<std::uint32_t>(rng.below(32)) *
                                    4);
        }
        break;
    case DataKind::Ramp:
        for (unsigned i = 0; i < kWordsPerLine; i++)
            l.setWord32(i, salt + i * 8);
        break;
    case DataKind::Incompressible:
        for (unsigned i = 0; i < kLineSize / 8; i++)
            l.setWord64(i, rng.next());
        break;
    }
    return l;
}

/** Access-pattern classes; each stresses a different structure. */
enum class PatternKind
{
    Sequential, //< streaming fill: log rotation, FIFO eviction churn
    HotSet,     //< small working set: hits, in-place-update paths
    Sparse,     //< wide random: LMT/tag conflicts, aliasing
    Rewrite,    //< hammer few addresses with dirty inserts: re-append,
                //  invalidation, write-back ordering
};

/** One ~phase-length burst of related accesses. */
struct Phase
{
    PatternKind pattern = PatternKind::Sequential;
    DataKind data = DataKind::Pooled;
    Addr baseLine = 0;
    std::uint64_t span = 1;
    std::uint32_t salt = 0;
    std::uint64_t step = 0;
};

constexpr std::uint64_t kPhaseOps = 256;

Phase
nextPhase(Rng &rng)
{
    Phase p;
    switch (rng.below(4)) {
    case 0:
        p.pattern = PatternKind::Sequential;
        p.span = kPhaseOps;
        break;
    case 1:
        p.pattern = PatternKind::HotSet;
        p.span = 16 + rng.below(112); // well under any scheme's capacity
        break;
    case 2:
        p.pattern = PatternKind::Sparse;
        p.span = 1ull << 22; // far beyond every LMT / tag store
        break;
    default:
        p.pattern = PatternKind::Rewrite;
        p.span = 1 + rng.below(4);
        break;
    }
    p.data = static_cast<DataKind>(rng.below(4));
    p.baseLine = rng.below(1ull << 20);
    p.salt = static_cast<std::uint32_t>(rng.next());
    return p;
}

Addr
nextAddr(Rng &rng, Phase &p)
{
    Addr line;
    if (p.pattern == PatternKind::Sequential)
        line = p.baseLine + p.step++;
    else
        line = p.baseLine + rng.below(p.span);
    return line << kLineShift;
}

/* ------------------------------------------------------------------ */
/* Differential replay                                                */
/* ------------------------------------------------------------------ */

struct RunStats
{
    std::uint64_t reads = 0;
    std::uint64_t hits = 0;
    std::uint64_t inserts = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t audits = 0;
    std::uint64_t auditChecks = 0;
    std::uint64_t exclusivityProbes = 0;
};

/** Per-divergence context printer. Returns false for chaining. */
bool
diverged(const std::string &scheme, std::uint64_t op, const char *fmt, ...)
#if defined(__GNUC__) || defined(__clang__)
    __attribute__((format(printf, 3, 4)))
#endif
    ;

bool
diverged(const std::string &scheme, std::uint64_t op, const char *fmt, ...)
{
    std::fprintf(stderr, "morc_check: DIVERGENCE scheme=%s op=%" PRIu64
                         ": ",
                 scheme.c_str(), op);
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fputc('\n', stderr);
    return false;
}

/** Validate one FillResult's write-backs against the pre-insert model
 *  and mark the written-back lines clean. */
bool
checkWritebacks(const std::string &scheme, std::uint64_t op,
                const cache::FillResult &fr,
                std::map<Addr, ModelLine> &model, RunStats &st)
{
    bool ok = true;
    for (const auto &wb : fr.writebacks) {
        st.writebacks++;
        auto it = model.find(wb.addr);
        if (it == model.end()) {
            ok = diverged(scheme, op,
                          "write-back of never-inserted address 0x%" PRIx64,
                          wb.addr);
            continue;
        }
        if (!it->second.dirty)
            ok = diverged(scheme, op,
                          "write-back of clean line 0x%" PRIx64
                          " (already written back or never dirty)",
                          wb.addr);
        if (!(wb.data == it->second.data))
            ok = diverged(scheme, op,
                          "write-back of 0x%" PRIx64
                          " carries corrupted contents (word0 "
                          "0x%08x, expected 0x%08x)",
                          wb.addr, wb.data.word32(0),
                          it->second.data.word32(0));
        it->second.dirty = false;
    }
    return ok;
}

bool
runAudit(const std::string &scheme, std::uint64_t op, cache::Llc &c,
         RunStats &st)
{
    const check::AuditReport r = c.audit();
    st.audits++;
    st.auditChecks += r.checksRun();
    if (r.ok())
        return true;
    std::fprintf(stderr,
                 "morc_check: AUDIT FAILURE scheme=%s op=%" PRIu64
                 " (%" PRIu64 " violation(s) in %" PRIu64 " checks)\n%s",
                 scheme.c_str(), op, r.violations(), r.checksRun(),
                 r.str().c_str());
    return false;
}

/** Cross-bank exclusivity: @p addr must miss in every bank except its
 *  home bank. Foreign-bank probes only bump that bank's miss counter —
 *  read() never mutates contents — so the differential model is
 *  unaffected. A foreign-bank *hit* is the violation. */
bool
checkExclusivity(const std::string &scheme, std::uint64_t op,
                 mesh::BankedLlc &banked, Addr addr, RunStats &st)
{
    const unsigned home = banked.homeBank(addr);
    bool ok = true;
    for (unsigned b = 0; b < banked.numBanks(); b++) {
        if (b == home)
            continue;
        st.exclusivityProbes++;
        if (banked.bank(b).read(addr).hit)
            ok = diverged(scheme, op,
                          "cross-bank exclusivity violation: 0x%" PRIx64
                          " (home bank %u) is resident in bank %u",
                          addr, home, b);
    }
    return ok;
}

/** Cross-check the traced event stream against the counters the cache
 *  maintained over the same run. Tracer and counters are independent
 *  observers of the same structural transitions, so any disagreement
 *  means one of them lies. */
bool
checkEvents(const std::string &scheme, const telemetry::Tracer &tracer,
            const cache::Llc &c, std::uint64_t ops)
{
    bool ok = true;
    if (tracer.dropped() != 0)
        ok = diverged(scheme, ops,
                      "event tracer dropped %" PRIu64
                      " events despite a buffer sized to the stream",
                      tracer.dropped());
    const telemetry::TraceBuffer buf = tracer.snapshot();
    const cache::LlcStats &st = c.stats();
    const std::uint64_t flushes =
        buf.countKind(telemetry::EventKind::LogFlush);
    if (flushes != st.logFlushes)
        ok = diverged(scheme, ops,
                      "tracer saw %" PRIu64
                      " log_flush events but LlcStats counted %" PRIu64,
                      flushes, st.logFlushes);
    const std::uint64_t evicts =
        buf.countKind(telemetry::EventKind::LmtConflictEvict);
    if (evicts != st.lmtConflictEvicts)
        ok = diverged(scheme, ops,
                      "tracer saw %" PRIu64 " lmt_conflict_evict events "
                      "but LlcStats counted %" PRIu64,
                      evicts, st.lmtConflictEvicts);
    Cycles prev = 0;
    for (const auto &e : buf.events) {
        if (e.cycles < prev) {
            ok = diverged(scheme, ops,
                          "event stamps went backwards (%" PRIu64
                          " after %" PRIu64 ")",
                          e.cycles, prev);
            break;
        }
        prev = e.cycles;
    }
    if (ok)
        std::printf("%-13s events: %" PRIu64 " recorded (%" PRIu64
                    " log_flush, %" PRIu64
                    " lmt_conflict_evict) consistent with counters\n",
                    scheme.c_str(), tracer.recorded(), flushes, evicts);
    return ok;
}

/** Serialize @p c into a sealed frame. */
std::vector<std::uint8_t>
snapshotBytes(const cache::Llc &c)
{
    snap::Serializer s;
    c.saveState(s);
    return s.frame();
}

/** Two FillResults must agree exactly: same victims (order included,
 *  eviction order is deterministic), same codec work. */
bool
sameFill(const cache::FillResult &a, const cache::FillResult &b)
{
    if (a.writebacks.size() != b.writebacks.size() ||
        a.linesCompressed != b.linesCompressed ||
        a.linesDecompressed != b.linesDecompressed ||
        a.bytesDecompressed != b.bytesDecompressed)
        return false;
    for (std::size_t i = 0; i < a.writebacks.size(); i++) {
        if (a.writebacks[i].addr != b.writebacks[i].addr ||
            !(a.writebacks[i].data == b.writebacks[i].data))
            return false;
    }
    return true;
}

/**
 * --snapshot fork: serialize @p cache, restore into a fresh twin,
 * audit the twin, verify it re-serializes to the very same bytes, and
 * verify a one-byte-tampered frame is rejected. Returns the twin (to
 * be driven in lockstep for the rest of the stream), or nullptr after
 * reporting a failure.
 */
std::unique_ptr<cache::Llc>
forkViaSnapshot(const std::string &label, std::uint64_t op,
                const std::string &scheme, const Options &opt,
                cache::Llc &cache, RunStats &st)
{
    const std::vector<std::uint8_t> frame = snapshotBytes(cache);

    auto twin = makeCache(scheme, opt);
    snap::Deserializer d(frame);
    twin->restoreState(d);
    if (!d.ok()) {
        diverged(label, op, "snapshot restore rejected its own bytes: %s",
                 d.error().c_str());
        return nullptr;
    }
    if (!runAudit(label + "(restored)", op, *twin, st))
        return nullptr;
    if (snapshotBytes(*twin) != frame) {
        diverged(label, op,
                 "restored cache re-serializes to different bytes");
        return nullptr;
    }

    // A flipped byte anywhere in the frame must fail the CRC (or the
    // header checks) — silently accepting tampered state would defeat
    // the whole guard.
    std::vector<std::uint8_t> tampered = frame;
    tampered[tampered.size() / 2] ^= 0x01;
    auto victim = makeCache(scheme, opt);
    snap::Deserializer dt(std::move(tampered));
    victim->restoreState(dt);
    if (dt.ok()) {
        diverged(label, op, "tampered snapshot was accepted");
        return nullptr;
    }

    std::printf("%-13s snapshot fork at op=%" PRIu64 ": %zu bytes, "
                "restore + audit + tamper-reject OK\n",
                label.c_str(), op, frame.size());
    return twin;
}

/** Replay @p opt.ops operations; true when no divergence was observed. */
bool
runScheme(const std::string &scheme, const Options &opt)
{
    auto cache = makeCache(scheme, opt);
    if (!cache) {
        std::fprintf(stderr, "morc_check: unknown scheme '%s'\n",
                     scheme.c_str());
        return false;
    }
    auto *banked = dynamic_cast<mesh::BankedLlc *>(cache.get());
    const std::string label =
        opt.mesh() ? scheme + "@" + std::to_string(opt.meshWidth) + "x" +
                         std::to_string(opt.meshHeight)
                   : scheme;

    // --events: trace with a buffer sized so nothing can drop (each op
    // records at most a handful of events), stamped with the op index
    // as the "cycle" — monotone, deterministic, and meaningful for a
    // cycle-less replay.
    std::unique_ptr<telemetry::Tracer> tracer;
    if (opt.events) {
        tracer = std::make_unique<telemetry::Tracer>(
            static_cast<std::size_t>(opt.ops) * 4 + 64);
        cache->attachTracer(tracer.get(), tracer->track("llc"));
    }

    // Same key discipline as the sweep engine: the stream depends only
    // on (label, seed), never on host state.
    Rng rng(sweep::stableSeed("check/" + label + "/" +
                              std::to_string(opt.seed)));
    std::map<Addr, ModelLine> model;
    RunStats st;
    Phase phase = nextPhase(rng);
    bool ok = true;

    /** --snapshot: mid-stream fork restored from serialized state,
     *  driven in lockstep with the primary for the rest of the run. */
    std::unique_ptr<cache::Llc> twin;
    const std::uint64_t snapOp =
        opt.snapshot ? opt.ops / 2 : ~std::uint64_t{0};

    /** Ring of the most recently touched addresses; each audit probes
     *  all of them for cross-bank residency. */
    constexpr std::size_t kRecentRing = 64;
    std::vector<Addr> recent;
    std::size_t recentNext = 0;

    for (std::uint64_t op = 0; op < opt.ops && ok; op++) {
        if (op == snapOp) {
            twin = forkViaSnapshot(label, op, scheme, opt, *cache, st);
            if (!twin) {
                ok = false;
                break;
            }
        }
        if (tracer)
            tracer->setNow(op);
        if (op % kPhaseOps == kPhaseOps - 1)
            phase = nextPhase(rng);
        const Addr addr = nextAddr(rng, phase);
        const bool write = phase.pattern == PatternKind::Rewrite
                               ? rng.chance(0.7)
                               : rng.chance(0.3);

        if (write) {
            // Dirty insert: a write-back arriving from a private cache.
            const CacheLine data = makeLine(
                rng, phase.data, phase.salt + static_cast<std::uint32_t>(op));
            const auto fr = cache->insert(addr, data, true);
            st.inserts++;
            ok = checkWritebacks(label, op, fr, model, st) && ok;
            if (twin && !sameFill(fr, twin->insert(addr, data, true)))
                ok = diverged(label, op,
                              "restored twin diverged on dirty insert "
                              "of 0x%" PRIx64,
                              addr) &&
                     ok;
            model[addr] = ModelLine{data, true};
        } else {
            const auto rr = cache->read(addr);
            st.reads++;
            if (twin) {
                const auto rr2 = twin->read(addr);
                if (rr2.hit != rr.hit ||
                    (rr.hit && !(rr2.data == rr.data)) ||
                    rr2.extraLatency != rr.extraLatency ||
                    rr2.bytesDecompressed != rr.bytesDecompressed ||
                    rr2.linesDecompressed != rr.linesDecompressed)
                    ok = diverged(label, op,
                                  "restored twin diverged on read of "
                                  "0x%" PRIx64 " (hit %d vs %d)",
                                  addr, rr.hit ? 1 : 0,
                                  rr2.hit ? 1 : 0) &&
                         ok;
            }
            const auto it = model.find(addr);
            if (rr.hit) {
                st.hits++;
                if (it == model.end()) {
                    ok = diverged(label, op,
                                  "hit on never-inserted address 0x%" PRIx64,
                                  addr);
                } else if (!(rr.data == it->second.data)) {
                    ok = diverged(label, op,
                                  "hit on 0x%" PRIx64
                                  " returned corrupted contents (word0 "
                                  "0x%08x, expected 0x%08x)",
                                  addr, rr.data.word32(0),
                                  it->second.data.word32(0));
                }
            } else {
                if (it != model.end() && it->second.dirty)
                    ok = diverged(label, op,
                                  "dirty line 0x%" PRIx64
                                  " vanished without a write-back",
                                  addr);
                // Fill from memory: reuse the reference contents when
                // the line exists, otherwise materialize a fresh line.
                const CacheLine data =
                    it != model.end()
                        ? it->second.data
                        : makeLine(rng, phase.data, phase.salt);
                const auto fr = cache->insert(addr, data, false);
                st.inserts++;
                ok = checkWritebacks(label, op, fr, model, st) && ok;
                if (twin &&
                    !sameFill(fr, twin->insert(addr, data, false)))
                    ok = diverged(label, op,
                                  "restored twin diverged on fill of "
                                  "0x%" PRIx64,
                                  addr) &&
                         ok;
                model[addr] = ModelLine{data, false};
            }
        }

        if (banked) {
            if (recent.size() < kRecentRing) {
                recent.push_back(addr);
            } else {
                recent[recentNext] = addr;
                recentNext = (recentNext + 1) % kRecentRing;
            }
        }

        if (opt.auditEvery != 0 && (op + 1) % opt.auditEvery == 0) {
            ok = runAudit(label, op, *cache, st) && ok;
            if (banked) {
                // The twin mirrors the probes too: they validate its
                // exclusivity as well, and they bump foreign-bank
                // counters — skipping them would break the final
                // byte-for-byte state comparison.
                auto *twin_banked =
                    dynamic_cast<mesh::BankedLlc *>(twin.get());
                for (const Addr a : recent) {
                    ok = checkExclusivity(label, op, *banked, a, st) && ok;
                    if (twin_banked)
                        ok = checkExclusivity(label + "(twin)", op,
                                              *twin_banked, a, st) &&
                             ok;
                }
            }
        }
    }

    if (ok)
        ok = runAudit(label, opt.ops, *cache, st);

    // Post-lockstep: the twin must have tracked the primary perfectly,
    // down to its serialized bytes.
    if (ok && twin) {
        ok = runAudit(label + "(twin)", opt.ops, *twin, st);
        if (ok && snapshotBytes(*cache) != snapshotBytes(*twin))
            ok = diverged(label, opt.ops,
                          "primary and restored twin serialize to "
                          "different bytes after lockstep replay");
        if (ok)
            std::printf("%-13s snapshot lockstep: twin stayed "
                        "byte-identical through op=%" PRIu64 "\n",
                        label.c_str(), opt.ops);
    }

    if (ok && tracer)
        ok = checkEvents(label, *tracer, *cache, opt.ops);

    // Final exhaustive exclusivity sweep: every address the reference
    // model has ever seen must be absent from all foreign banks.
    if (ok && banked)
        for (const auto &entry : model)
            ok = checkExclusivity(label, opt.ops, *banked, entry.first, st) &&
                 ok;

    // Wear/counter cross-check: the stats counters and the wear
    // tracker are charged by the same chargeWear() call but stored
    // separately, so a missed charge or a bad snapshot restore shows
    // up as a disagreement between the two totals.
    if (ok) {
        const energy::WearTracker wear = cache->wearSnapshot();
        const cache::LlcStats &cs = cache->stats();
        if (wear.totalBitsWritten() != cs.cellBitsWritten ||
            wear.totalBitFlips() != cs.cellBitFlips) {
            ok = diverged(label, opt.ops,
                          "wear tracker totals disagree with the "
                          "cell_bits_written/cell_bit_flips counters");
        }
    }

    if (ok && opt.injectSigCorruption) {
        auto *touche = dynamic_cast<cache::ToucheCache *>(cache.get());
        if (!touche) {
            std::fprintf(stderr,
                         "morc_check: --inject-signature-corruption "
                         "requires the touche scheme, not %s\n",
                         label.c_str());
            return false;
        }
        if (!touche->debugCorruptSignature(opt.seed)) {
            std::fprintf(stderr,
                         "morc_check: no valid slot to corrupt (stream "
                         "left the cache empty?)\n");
            return false;
        }
        const auto r = cache->audit();
        if (r.ok()) {
            std::fprintf(stderr,
                         "morc_check: MUTATION ESCAPED scheme=%s: auditor "
                         "reported a clean structure after signature "
                         "corruption was injected\n",
                         label.c_str());
            return false;
        }
        std::printf("%-13s injected signature corruption detected: "
                    "%" PRIu64 " violation(s)\n",
                    label.c_str(), r.violations());
        if (opt.verbose)
            std::fputs(r.str().c_str(), stdout);
        return true;
    }

    if (ok && opt.injectLmtCorruption) {
        bool injected = false;
        if (banked) {
            injected = banked->debugCorruptLmt(opt.seed);
        } else if (auto *log_cache =
                       dynamic_cast<core::LogCache *>(cache.get())) {
            injected = log_cache->debugCorruptLmt(opt.seed);
        } else {
            std::fprintf(stderr,
                         "morc_check: --inject-lmt-corruption requires a "
                         "MORC scheme, not %s\n",
                         label.c_str());
            return false;
        }
        if (!injected) {
            std::fprintf(stderr,
                         "morc_check: no valid LMT entry to corrupt "
                         "(stream left the cache empty?)\n");
            return false;
        }
        const auto r = cache->audit();
        if (r.ok()) {
            std::fprintf(stderr,
                         "morc_check: MUTATION ESCAPED scheme=%s: auditor "
                         "reported a clean structure after LMT "
                         "corruption was injected\n",
                         label.c_str());
            return false;
        }
        std::printf("%-13s injected LMT corruption detected: %" PRIu64
                    " violation(s)\n",
                    label.c_str(), r.violations());
        if (opt.verbose)
            std::fputs(r.str().c_str(), stdout);
        return true;
    }

    if (ok)
        std::printf("%-13s ops=%" PRIu64 " reads=%" PRIu64 " hits=%" PRIu64
                    " inserts=%" PRIu64 " writebacks=%" PRIu64
                    " audits=%" PRIu64 " checks=%" PRIu64
                    " xprobes=%" PRIu64 " OK\n",
                    label.c_str(), opt.ops, st.reads, st.hits, st.inserts,
                    st.writebacks, st.audits, st.auditChecks,
                    st.exclusivityProbes);
    return ok;
}

// --------------------------------------------------------------------
// --kv: differential fuzz of the KV serving subsystem (src/kv).
// --------------------------------------------------------------------

bool
kvSchemeOf(const std::string &name, sim::Scheme *out)
{
    return sim::schemeFromCliName(name, out);
}

/** A deliberately tight service: small front and tiers over small,
 *  set-heavy tenant key spaces, so every layer churns (evictions,
 *  demotions, SSD drops, version churn) within a few thousand ops. */
kv::ServiceConfig
kvConfig(sim::Scheme scheme, const Options &opt)
{
    kv::ServiceConfig cfg;
    cfg.scheme = scheme;
    cfg.frontBytes = 128 << 10;
    cfg.tier.dramBytes = 512 << 10;
    cfg.tier.ssdBytes = 2 << 20;
    cfg.seed = opt.seed;
    cfg.values.seed = mix64(opt.seed, 0x6b76);
    cfg.values.setChurn = 0.5;
    cfg.tenants = {
        {"alpha", 2048, 1.2, 4, 0.25, 512, 97},
        {"beta", 4096, 0.9, 2, 0.4, 0, 0},
        {"gamma", 8192, 0.7, 1, 0.5, 1024, 257},
        {"delta", 3072, 1.05, 3, 0.1, 0, 0},
    };
    return cfg;
}

std::vector<std::uint8_t>
kvSnapshotBytes(const kv::Service &svc)
{
    snap::Serializer s;
    svc.saveState(s);
    return s.frame();
}

bool
runKvAudit(const std::string &label, std::uint64_t op,
           const kv::Service &svc, RunStats &st)
{
    const check::AuditReport r = svc.audit();
    st.audits++;
    st.auditChecks += r.checksRun();
    if (r.ok())
        return true;
    std::fprintf(stderr,
                 "morc_check: AUDIT FAILURE scheme=%s op=%" PRIu64
                 " (%" PRIu64 " violation(s) in %" PRIu64 " checks)\n%s",
                 label.c_str(), op, r.violations(), r.checksRun(),
                 r.str().c_str());
    return false;
}

/**
 * Drive a full kv::Service (generator -> front Llc -> tiered store)
 * in lockstep with an independent reference: a version ledger per
 * (tenant, key) plus a twin KvValueModel per tenant that recomputes
 * the exact contents every reply must have digested. Any corruption
 * anywhere in the stack — front cache, tier promotion/demotion,
 * writeback plumbing, value churn — surfaces as a digest mismatch.
 * Structural audits of every layer run each --audit-every ops, and
 * --snapshot forks the whole service mid-stream exactly like the
 * flat-cache path (restore, re-serialize identical, tamper-reject,
 * lockstep to identical final bytes).
 */
bool
runKvScheme(const std::string &scheme, const Options &opt)
{
    sim::Scheme s;
    if (!kvSchemeOf(scheme, &s)) {
        std::fprintf(stderr, "morc_check: unknown scheme '%s'\n",
                     scheme.c_str());
        return false;
    }
    const std::string label = "kv:" + scheme;
    const kv::ServiceConfig cfg = kvConfig(s, opt);
    kv::Service svc(cfg);

    // The reference: per-tenant value models with the same derived
    // profiles, consulted with an explicitly tracked version ledger
    // (std::map: deterministic and independent of the service's own
    // bookkeeping).
    std::vector<trace::KvValueModel> ref;
    for (std::size_t t = 0; t < cfg.tenants.size(); t++)
        ref.emplace_back(svc.values(static_cast<unsigned>(t)).profile());
    std::map<std::pair<std::uint32_t, std::uint64_t>, std::uint32_t>
        versions;

    std::unique_ptr<kv::Service> twin;
    RunStats st;
    std::uint64_t gets = 0, sets = 0;
    bool ok = true;

    for (std::uint64_t op = 0; op < opt.ops && ok; op++) {
        if (opt.snapshot && op == opt.ops / 2) {
            const std::vector<std::uint8_t> frame = kvSnapshotBytes(svc);
            twin = std::make_unique<kv::Service>(cfg);
            snap::Deserializer d(frame);
            twin->restoreState(d);
            if (!d.ok()) {
                ok = diverged(label, op,
                              "kv snapshot restore rejected its own "
                              "bytes: %s",
                              d.error().c_str());
                break;
            }
            if (kvSnapshotBytes(*twin) != frame) {
                ok = diverged(label, op,
                              "restored kv service re-serializes to "
                              "different bytes");
                break;
            }
            std::vector<std::uint8_t> tampered = frame;
            tampered[tampered.size() / 2] ^= 0x01;
            kv::Service victim(cfg);
            snap::Deserializer dt(std::move(tampered));
            victim.restoreState(dt);
            if (dt.ok()) {
                ok = diverged(label, op,
                              "tampered kv snapshot was accepted");
                break;
            }
            if (!runKvAudit(label + "(restored)", op, *twin, st)) {
                ok = false;
                break;
            }
            std::printf("%-13s snapshot fork at op=%" PRIu64
                        ": %zu bytes, restore + audit + tamper-reject "
                        "OK\n",
                        label.c_str(), op, frame.size());
        }

        const kv::Service::Reply r = svc.step();
        const std::uint32_t t = r.req.tenant;
        std::uint32_t &ver = versions[{t, r.req.key}];
        if (r.req.isSet) {
            ver++;
            sets++;
        } else {
            gets++;
        }

        const trace::KvValueModel &vm = ref[t];
        const std::uint32_t lines = vm.valueLines(r.req.key);
        if (lines != r.lines)
            ok = diverged(label, op,
                          "tenant %u key 0x%" PRIx64
                          " spans %u lines, reply carries %u",
                          t, r.req.key, lines, r.lines);
        std::uint64_t want = kv::kDigestBasis;
        for (std::uint32_t i = 0; i < lines; i++)
            want = kv::digestLine(want, svc.addrOf(t, r.req.key, i),
                                  vm.line(r.req.key, i, ver));
        if (ok && want != r.digest)
            ok = diverged(label, op,
                          "%s tenant %u key 0x%" PRIx64
                          " v%u returned corrupted contents (digest "
                          "0x%" PRIx64 ", expected 0x%" PRIx64 ")",
                          r.req.isSet ? "SET" : "GET", t, r.req.key,
                          ver, r.digest, want);

        if (twin) {
            const kv::Service::Reply tr = twin->step();
            if (tr.req.tenant != r.req.tenant ||
                tr.req.key != r.req.key || tr.req.isSet != r.req.isSet)
                ok = diverged(label, op,
                              "restored kv twin drew a different "
                              "request (tenant %u key 0x%" PRIx64 ")",
                              tr.req.tenant, tr.req.key);
            else if (tr.digest != r.digest || tr.lines != r.lines)
                ok = diverged(label, op,
                              "restored kv twin returned different "
                              "contents for tenant %u key 0x%" PRIx64,
                              t, r.req.key);
            else if (tr.latency != r.latency ||
                     twin->cycles() != svc.cycles())
                ok = diverged(label, op,
                              "restored kv twin diverged in timing "
                              "(latency %" PRIu64 " vs %" PRIu64 ")",
                              tr.latency, r.latency);
        }

        if (opt.auditEvery && (op + 1) % opt.auditEvery == 0) {
            ok = runKvAudit(label, op, svc, st) && ok;
            if (twin)
                ok = runKvAudit(label + "(twin)", op, *twin, st) && ok;
        }
    }

    if (ok)
        ok = runKvAudit(label, opt.ops, svc, st);
    if (ok && twin) {
        ok = runKvAudit(label + "(twin)", opt.ops, *twin, st);
        if (ok && kvSnapshotBytes(*twin) != kvSnapshotBytes(svc))
            ok = diverged(label, opt.ops,
                          "kv twin's final serialized bytes differ "
                          "from the primary's");
    }

    if (ok) {
        const kv::TierStats &ts = svc.tiers().stats();
        std::printf("%-13s ops=%" PRIu64 " gets=%" PRIu64
                    " sets=%" PRIu64 " cycles=%" PRIu64
                    " dramHits=%" PRIu64 " ssdHits=%" PRIu64
                    " origin=%" PRIu64 " promo=%" PRIu64
                    " demo=%" PRIu64 " audits=%" PRIu64
                    " checks=%" PRIu64 " OK\n",
                    label.c_str(), opt.ops, gets, sets, svc.cycles(),
                    ts.dramHits, ts.ssdHits, ts.originFetches,
                    ts.promotions, ts.demotions, st.audits,
                    st.auditChecks);
    }
    return ok;
}

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--scheme NAME|all] [--ops N] [--seed S]\n"
        "          [--audit-every N] [--mesh WxH] [--events] [--kv]\n"
        "          [--snapshot] [--inject-lmt-corruption]\n"
        "          [--inject-signature-corruption] [--verbose]\n"
        "\n"
        "Differential fuzz: replay a seeded adversarial access stream\n"
        "through a cache scheme in lockstep with a reference memory\n"
        "model, auditing structural invariants every N operations.\n"
        "\n"
        "--mesh WxH shards the scheme into W*H address-interleaved\n"
        "banks (the tiled-substrate LLC) and additionally enforces\n"
        "cross-bank exclusivity: a hit on any foreign bank is a\n"
        "divergence.\n"
        "\n"
        "--events attaches the telemetry event tracer and cross-checks\n"
        "traced log_flush / lmt_conflict_evict counts against the\n"
        "scheme's own counters at the end of the run.\n"
        "\n"
        "--snapshot serializes the cache halfway through the stream,\n"
        "restores it into a fresh twin, rejects a tampered copy, and\n"
        "drives both in lockstep for the rest of the run: outcomes and\n"
        "final serialized bytes must match exactly.\n"
        "\n"
        "--kv fuzzes the KV serving subsystem instead of a bare cache:\n"
        "a multi-tenant Zipf stream drives generator -> front cache ->\n"
        "DRAM/SSD tiered store, and every reply's content digest is\n"
        "checked against an independent version ledger + value model.\n"
        "Composes with --snapshot (mid-run fork of the whole service).\n"
        "\n"
        "schemes: all",
        argv0);
    for (const sim::SchemeInfo &info : sim::allSchemes())
        std::fprintf(stderr, " %s", info.cliName);
    std::fputc('\n', stderr);
    return 2;
}

int
run(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--scheme") {
            const char *v = value();
            if (!v)
                return usage(argv[0]);
            opt.scheme = v;
        } else if (arg == "--ops") {
            const char *v = value();
            if (!v)
                return usage(argv[0]);
            opt.ops = std::strtoull(v, nullptr, 0);
        } else if (arg == "--seed") {
            const char *v = value();
            if (!v)
                return usage(argv[0]);
            opt.seed = std::strtoull(v, nullptr, 0);
        } else if (arg == "--audit-every") {
            const char *v = value();
            if (!v)
                return usage(argv[0]);
            opt.auditEvery = std::strtoull(v, nullptr, 0);
        } else if (arg == "--mesh") {
            const char *v = value();
            if (!v)
                return usage(argv[0]);
            char *end = nullptr;
            opt.meshWidth =
                static_cast<unsigned>(std::strtoul(v, &end, 10));
            if (!end || *end != 'x')
                return usage(argv[0]);
            opt.meshHeight =
                static_cast<unsigned>(std::strtoul(end + 1, nullptr, 10));
            if (!opt.mesh())
                return usage(argv[0]);
        } else if (arg == "--events") {
            opt.events = true;
        } else if (arg == "--snapshot") {
            opt.snapshot = true;
        } else if (arg == "--kv") {
            opt.kv = true;
        } else if (arg == "--inject-lmt-corruption") {
            opt.injectLmtCorruption = true;
        } else if (arg == "--inject-signature-corruption") {
            opt.injectSigCorruption = true;
        } else if (arg == "--verbose") {
            opt.verbose = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "morc_check: unknown option '%s'\n",
                         arg.c_str());
            return usage(argv[0]);
        }
    }

    if (opt.kv &&
        (opt.mesh() || opt.events || opt.injectLmtCorruption ||
         opt.injectSigCorruption)) {
        std::fprintf(stderr, "morc_check: --kv composes only with "
                             "--snapshot\n");
        return usage(argv[0]);
    }
    if (opt.injectLmtCorruption && opt.injectSigCorruption) {
        std::fprintf(stderr, "morc_check: pick one corruption "
                             "injection per run\n");
        return usage(argv[0]);
    }

    std::vector<std::string> schemes;
    if (opt.scheme == "all") {
        if (opt.injectLmtCorruption) {
            schemes = {"morc", "morc-merged"};
        } else if (opt.injectSigCorruption) {
            schemes = {"touche"};
        } else {
            for (const sim::SchemeInfo &info : sim::allSchemes())
                schemes.emplace_back(info.cliName);
        }
    } else {
        schemes.push_back(opt.scheme);
    }

    bool ok = true;
    for (const auto &s : schemes) {
        const bool r = opt.kv ? runKvScheme(s, opt) : runScheme(s, opt);
        ok = r && ok;
    }
    return ok ? 0 : 1;
}

} // namespace
} // namespace morc

int
main(int argc, char **argv)
{
    return morc::run(argc, argv);
}
