#include "compress/bdi.hh"

namespace morc {
namespace comp {

namespace {

/** Signed-delta fit test for base size @p bs and delta size @p ds. */
template <typename Base>
bool
deltasFit(const CacheLine &line, unsigned delta_bytes)
{
    constexpr unsigned base_bytes = sizeof(Base);
    const unsigned n = kLineSize / base_bytes;
    Base base;
    std::memcpy(&base, line.bytes.data(), base_bytes);
    // Wraparound subtraction in uint64, then a biased range check: the
    // delta fits iff, interpreted as signed, it lies in
    // [-2^(k-1), 2^(k-1)) for k = 8*delta_bytes. Signed subtraction
    // here would overflow for distant 64-bit values.
    const std::uint64_t bias = 1ull << (8 * delta_bytes - 1);
    for (unsigned i = 0; i < n; i++) {
        Base v;
        std::memcpy(&v, line.bytes.data() + i * base_bytes, base_bytes);
        const std::uint64_t delta = static_cast<std::uint64_t>(v) -
                                    static_cast<std::uint64_t>(base);
        if (delta + bias >= 1ull << (8 * delta_bytes))
            return false;
    }
    return true;
}

} // namespace

std::uint32_t
Bdi::encodingBits(BdiEncoding e)
{
    const auto payload = [&]() -> std::uint32_t {
        switch (e) {
          case BdiEncoding::Zero: return 0;
          case BdiEncoding::Repeat64: return 64;
          case BdiEncoding::B8D1: return 64 + 8 * 8;   // base + 8 deltas
          case BdiEncoding::B8D2: return 64 + 8 * 16;
          case BdiEncoding::B8D4: return 64 + 8 * 32;
          case BdiEncoding::B4D1: return 32 + 16 * 8;
          case BdiEncoding::B4D2: return 32 + 16 * 16;
          case BdiEncoding::B2D1: return 16 + 32 * 8;
          case BdiEncoding::Uncompressed: return kLineSize * 8;
        }
        return kLineSize * 8;
    }();
    return kHeaderBits + payload;
}

bool
Bdi::fits(const CacheLine &line, BdiEncoding e)
{
    switch (e) {
      case BdiEncoding::Zero:
        return line.isZero();
      case BdiEncoding::Repeat64: {
        const std::uint64_t v = line.word64(0);
        for (unsigned i = 1; i < kLineSize / 8; i++) {
            if (line.word64(i) != v)
                return false;
        }
        return true;
      }
      case BdiEncoding::B8D1:
        return deltasFit<std::uint64_t>(line, 1);
      case BdiEncoding::B8D2:
        return deltasFit<std::uint64_t>(line, 2);
      case BdiEncoding::B8D4:
        return deltasFit<std::uint64_t>(line, 4);
      case BdiEncoding::B4D1:
        return deltasFit<std::uint32_t>(line, 1);
      case BdiEncoding::B4D2:
        return deltasFit<std::uint32_t>(line, 2);
      case BdiEncoding::B2D1:
        return deltasFit<std::uint16_t>(line, 1);
      case BdiEncoding::Uncompressed:
        return true;
    }
    return true;
}

BdiEncoding
Bdi::bestEncoding(const CacheLine &line)
{
    // Candidates in ascending size order; first fit wins.
    static const BdiEncoding kOrder[] = {
        BdiEncoding::Zero,   BdiEncoding::Repeat64, BdiEncoding::B8D1,
        BdiEncoding::B2D1,   BdiEncoding::B4D1,     BdiEncoding::B8D2,
        BdiEncoding::B4D2,   BdiEncoding::B8D4,
        BdiEncoding::Uncompressed,
    };
    BdiEncoding best = BdiEncoding::Uncompressed;
    std::uint32_t best_bits = encodingBits(best);
    for (BdiEncoding e : kOrder) {
        const std::uint32_t bits = encodingBits(e);
        if (bits < best_bits && fits(line, e)) {
            best = e;
            best_bits = bits;
        }
    }
    return best;
}

std::uint32_t
Bdi::lineBits(const CacheLine &line)
{
    return encodingBits(bestEncoding(line));
}

const char *
Bdi::name(BdiEncoding e)
{
    switch (e) {
      case BdiEncoding::Zero: return "zero";
      case BdiEncoding::Repeat64: return "rep64";
      case BdiEncoding::B8D1: return "b8d1";
      case BdiEncoding::B8D2: return "b8d2";
      case BdiEncoding::B8D4: return "b8d4";
      case BdiEncoding::B4D1: return "b4d1";
      case BdiEncoding::B4D2: return "b4d2";
      case BdiEncoding::B2D1: return "b2d1";
      case BdiEncoding::Uncompressed: return "raw";
    }
    return "?";
}

} // namespace comp
} // namespace morc
