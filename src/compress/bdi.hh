/**
 * @file
 * Base-Delta-Immediate compression (Pekhimenko et al., PACT 2012).
 *
 * BDI is the algorithm the paper cites as the inspiration for MORC's
 * tag compression and is a standard intra-line baseline: a line is
 * encoded as one base value plus per-element deltas if every element's
 * delta fits a narrow width; all-zero and repeated-value lines get
 * dedicated encodings. Included both as an ablation compressor and to
 * make the compression library complete.
 *
 * Encodings tried (base size, delta size) in bytes: (8,1) (8,2) (8,4)
 * (4,1) (4,2) (2,1), plus zero-line and repeated-value specials; the
 * smallest valid encoding wins. A 4-bit header selects the encoding.
 */

#ifndef MORC_COMPRESS_BDI_HH
#define MORC_COMPRESS_BDI_HH

#include <cstdint>
#include <cstring>

#include "util/types.hh"

namespace morc {
namespace comp {

/** Which BDI encoding a line received. */
enum class BdiEncoding : std::uint8_t
{
    Zero,       //< all bytes zero
    Repeat64,   //< one repeated 64-bit value
    B8D1, B8D2, B8D4,
    B4D1, B4D2,
    B2D1,
    Uncompressed,
};

/** Stateless per-line BDI codec. */
class Bdi
{
  public:
    /** Header bits identifying the encoding. */
    static constexpr unsigned kHeaderBits = 4;

    /** Best (smallest) encoding for @p line. */
    static BdiEncoding bestEncoding(const CacheLine &line);

    /** Compressed size in bits under the best encoding. */
    static std::uint32_t lineBits(const CacheLine &line);

    /** Size in bits of a specific encoding (no validity check). */
    static std::uint32_t encodingBits(BdiEncoding e);

    /** True if @p line is representable under @p e. */
    static bool fits(const CacheLine &line, BdiEncoding e);

    static const char *name(BdiEncoding e);
};

} // namespace comp
} // namespace morc

#endif // MORC_COMPRESS_BDI_HH
