#include "compress/cpack.hh"

#include "check/check.hh"

namespace morc {
namespace comp {

namespace {

void
putCodeBits(BitWriter *out, unsigned value, unsigned len)
{
    if (!out)
        return;
    for (int i = static_cast<int>(len) - 1; i >= 0; i--)
        out->put((value >> i) & 1, 1);
}

} // namespace

CpackEncoder::CpackEncoder(unsigned dict_bytes)
    : capacity_(dict_bytes / 4), ptrBits_(ceilLog2(capacity_))
{
    MORC_CHECK(capacity_ >= 2,
               "C-Pack dictionary of %u bytes holds fewer than 2 words",
               dict_bytes);
    dict_.reserve(capacity_);
}

std::uint32_t
CpackEncoder::encode(const CacheLine &line, std::vector<std::uint32_t> &dict,
                     BitWriter *out) const
{
    std::uint32_t bits = 0;
    for (unsigned i = 0; i < kWordsPerLine; i++) {
        const std::uint32_t w = line.word32(i);
        if (w == 0) {
            putCodeBits(out, 0b00, 2); // zzzz
            bits += 2;
            continue;
        }
        // Search the dictionary for full and partial matches; prefer the
        // cheapest encoding.
        int full = -1, m3 = -1, m2 = -1;
        for (std::size_t d = 0; d < dict.size(); d++) {
            const std::uint32_t e = dict[d];
            if (e == w) {
                full = static_cast<int>(d);
                break;
            }
            if (m3 < 0 && (e >> 8) == (w >> 8))
                m3 = static_cast<int>(d);
            else if (m2 < 0 && (e >> 16) == (w >> 16))
                m2 = static_cast<int>(d);
        }
        if (full >= 0) {
            putCodeBits(out, 0b10, 2); // mmmm
            if (out)
                out->put(static_cast<unsigned>(full), ptrBits_);
            bits += 2 + ptrBits_;
            continue;
        }
        if ((w & 0xffffff00u) == 0) {
            putCodeBits(out, 0b1101, 4); // zzzx
            if (out)
                out->put(w & 0xff, 8);
            bits += 4 + 8;
        } else if (m3 >= 0) {
            putCodeBits(out, 0b1110, 4); // mmmx
            if (out) {
                out->put(static_cast<unsigned>(m3), ptrBits_);
                out->put(w & 0xff, 8);
            }
            bits += 4 + ptrBits_ + 8;
        } else if (m2 >= 0) {
            putCodeBits(out, 0b1100, 4); // mmxx
            if (out) {
                out->put(static_cast<unsigned>(m2), ptrBits_);
                out->put(w & 0xffff, 16);
            }
            bits += 4 + ptrBits_ + 16;
        } else {
            putCodeBits(out, 0b01, 2); // xxxx
            if (out)
                out->put(w, 32);
            bits += 2 + 32;
        }
        // Unmatched and partially matched words enter the dictionary
        // until it freezes.
        if (dict.size() < capacity_)
            dict.push_back(w);
    }
    return bits;
}

std::uint32_t
CpackEncoder::append(const CacheLine &line, BitWriter *out)
{
    return encode(line, dict_, out);
}

std::uint32_t
CpackEncoder::measure(const CacheLine &line) const
{
    std::vector<std::uint32_t> copy = dict_;
    return encode(line, copy, nullptr);
}

CpackDecoder::CpackDecoder(unsigned dict_bytes)
    : capacity_(dict_bytes / 4), ptrBits_(ceilLog2(capacity_))
{}

CacheLine
CpackDecoder::decodeLine(BitReader &in)
{
    CacheLine line;
    for (unsigned i = 0; i < kWordsPerLine; i++) {
        std::uint32_t w;
        bool push = false;
        if (in.get(1) == 0) {
            if (in.get(1) == 0) { // zzzz
                w = 0;
            } else { // xxxx
                w = static_cast<std::uint32_t>(in.get(32));
                push = true;
            }
        } else if (in.get(1) == 0) { // mmmm
            w = dict_[in.get(ptrBits_)];
        } else if (in.get(1) == 0) { // 110x
            if (in.get(1) == 0) { // mmxx
                const std::uint32_t base = dict_[in.get(ptrBits_)];
                w = (base & 0xffff0000u) |
                    static_cast<std::uint32_t>(in.get(16));
                push = true;
            } else { // zzzx
                w = static_cast<std::uint32_t>(in.get(8));
                push = true;
            }
        } else { // mmmx (1110)
            in.get(1); // consume the trailing 0 of the 4-bit code
            const std::uint32_t base = dict_[in.get(ptrBits_)];
            w = (base & 0xffffff00u) | static_cast<std::uint32_t>(in.get(8));
            push = true;
        }
        if (push && dict_.size() < capacity_)
            dict_.push_back(w);
        line.setWord32(i, w);
    }
    return line;
}

} // namespace morc::comp
} // namespace morc
