/**
 * @file
 * C-Pack cache compression (Chen et al., TVLSI 2010), used as the line
 * compressor of the Adaptive and Decoupled baselines (per Section 4 of
 * the MORC paper, both prior schemes are evaluated with C-Pack).
 *
 * C-Pack scans 32-bit words against a small FIFO dictionary and emits
 * one of six patterns:
 *
 *   zzzz 00          (word is zero)
 *   xxxx 01   + 32b  (uncompressed; word pushed into dictionary)
 *   mmmm 10   + ptr  (full match)
 *   mmxx 1100 + ptr + 16b (upper half matches)
 *   zzzx 1101 + 8b   (three zero bytes, one literal byte)
 *   mmmx 1110 + ptr + 8b  (upper three bytes match)
 *
 * Partially matching and unmatched words are pushed into the dictionary
 * until it fills (the dictionary is then frozen). The class supports both
 * per-line use (dictionary reset per line, as set-based compressed caches
 * require) and streaming use.
 */

#ifndef MORC_COMPRESS_CPACK_HH
#define MORC_COMPRESS_CPACK_HH

#include <cstdint>
#include <vector>

#include "util/bitstream.hh"
#include "util/types.hh"

namespace morc {
namespace comp {

/** Streaming/per-line C-Pack codec. */
class CpackEncoder
{
  public:
    /** @param dict_bytes Dictionary capacity (64 B in the original). */
    explicit CpackEncoder(unsigned dict_bytes = 64);

    /** Compress one line, updating the dictionary. @return bits used. */
    std::uint32_t append(const CacheLine &line, BitWriter *out = nullptr);

    /** Measure without mutating (trial compression). */
    std::uint32_t measure(const CacheLine &line) const;

    /**
     * Per-line convenience: compressed bits of @p line with a fresh
     * dictionary, as a set-based cache would store it.
     */
    static std::uint32_t
    lineBits(const CacheLine &line, unsigned dict_bytes = 64)
    {
        CpackEncoder enc(dict_bytes);
        return enc.append(line);
    }

    void reset() { dict_.clear(); }

    unsigned ptrBits() const { return ptrBits_; }
    unsigned capacity() const { return capacity_; }

  private:
    std::uint32_t encode(const CacheLine &line,
                         std::vector<std::uint32_t> &dict,
                         BitWriter *out) const;

    unsigned capacity_;
    unsigned ptrBits_;
    std::vector<std::uint32_t> dict_;
};

/** Decoder counterpart; exists to prove the stream is reconstructible. */
class CpackDecoder
{
  public:
    explicit CpackDecoder(unsigned dict_bytes = 64);

    CacheLine decodeLine(BitReader &in);

    void reset() { dict_.clear(); }

  private:
    unsigned capacity_;
    unsigned ptrBits_;
    std::vector<std::uint32_t> dict_;
};

} // namespace comp
} // namespace morc

#endif // MORC_COMPRESS_CPACK_HH
