#include "compress/fpc.hh"

namespace morc {
namespace comp {

namespace {

/** True when @p w equals sign-extension of its low @p bits bits. */
bool
fitsSigned(std::uint32_t w, unsigned bits)
{
    const auto s = static_cast<std::int32_t>(w);
    const std::int32_t lo = -(1 << (bits - 1));
    const std::int32_t hi = (1 << (bits - 1)) - 1;
    return s >= lo && s <= hi;
}

} // namespace

std::uint32_t
Fpc::lineBits(const CacheLine &line, BitWriter *out)
{
    std::uint32_t bits = 0;
    unsigned i = 0;
    while (i < kWordsPerLine) {
        const std::uint32_t w = line.word32(i);
        if (w == 0) {
            // Zero run, up to 8 words.
            unsigned run = 1;
            while (run < 8 && i + run < kWordsPerLine &&
                   line.word32(i + run) == 0) {
                run++;
            }
            if (out) {
                out->put(0b000, 3);
                out->put(run - 1, 3);
            }
            bits += 6;
            i += run;
            continue;
        }
        const std::uint16_t hi16 = static_cast<std::uint16_t>(w >> 16);
        const std::uint16_t lo16 = static_cast<std::uint16_t>(w);
        const std::uint8_t b0 = static_cast<std::uint8_t>(w);
        if (fitsSigned(w, 4)) {
            if (out) {
                out->put(0b001, 3);
                out->put(w & 0xf, 4);
            }
            bits += 3 + 4;
        } else if (fitsSigned(w, 8)) {
            if (out) {
                out->put(0b010, 3);
                out->put(w & 0xff, 8);
            }
            bits += 3 + 8;
        } else if (fitsSigned(w, 16)) {
            if (out) {
                out->put(0b011, 3);
                out->put(w & 0xffff, 16);
            }
            bits += 3 + 16;
        } else if (lo16 == 0) {
            if (out) {
                out->put(0b100, 3);
                out->put(hi16, 16);
            }
            bits += 3 + 16;
        } else if (fitsSigned(hi16, 8) && fitsSigned(lo16, 8)) {
            if (out) {
                out->put(0b101, 3);
                out->put(hi16 & 0xff, 8);
                out->put(lo16 & 0xff, 8);
            }
            bits += 3 + 16;
        } else if (b0 == static_cast<std::uint8_t>(w >> 8) &&
                   b0 == static_cast<std::uint8_t>(w >> 16) &&
                   b0 == static_cast<std::uint8_t>(w >> 24)) {
            if (out) {
                out->put(0b110, 3);
                out->put(b0, 8);
            }
            bits += 3 + 8;
        } else {
            if (out) {
                out->put(0b111, 3);
                out->put(w, 32);
            }
            bits += 3 + 32;
        }
        i++;
    }
    return bits;
}

CacheLine
Fpc::decodeLine(BitReader &in)
{
    CacheLine line;
    unsigned i = 0;
    const auto signExtend = [](std::uint32_t v, unsigned bits) {
        const std::uint32_t m = 1u << (bits - 1);
        return (v ^ m) - m;
    };
    while (i < kWordsPerLine) {
        const unsigned prefix = static_cast<unsigned>(in.get(3));
        switch (prefix) {
          case 0b000: {
            const unsigned run = static_cast<unsigned>(in.get(3)) + 1;
            for (unsigned r = 0; r < run; r++)
                line.setWord32(i++, 0);
            break;
          }
          case 0b001:
            line.setWord32(
                i++, signExtend(static_cast<std::uint32_t>(in.get(4)), 4));
            break;
          case 0b010:
            line.setWord32(
                i++, signExtend(static_cast<std::uint32_t>(in.get(8)), 8));
            break;
          case 0b011:
            line.setWord32(
                i++,
                signExtend(static_cast<std::uint32_t>(in.get(16)), 16));
            break;
          case 0b100:
            line.setWord32(
                i++, static_cast<std::uint32_t>(in.get(16)) << 16);
            break;
          case 0b101: {
            const auto hi = signExtend(
                                static_cast<std::uint32_t>(in.get(8)), 8) &
                            0xffffu;
            const auto lo = signExtend(
                                static_cast<std::uint32_t>(in.get(8)), 8) &
                            0xffffu;
            line.setWord32(i++, (hi << 16) | lo);
            break;
          }
          case 0b110: {
            const auto b = static_cast<std::uint32_t>(in.get(8));
            line.setWord32(i++, b * 0x01010101u);
            break;
          }
          default:
            line.setWord32(i++, static_cast<std::uint32_t>(in.get(32)));
            break;
        }
    }
    return line;
}

} // namespace comp
} // namespace morc
