/**
 * @file
 * Frequent Pattern Compression (Alameldeen & Wood, 2004).
 *
 * FPC is strictly intra-line: each 32-bit word is encoded with a 3-bit
 * prefix selecting one of eight patterns. The original Adaptive cache
 * used FPC; the MORC paper evaluates Adaptive with C-Pack "for fairness"
 * but reports FPC performs similarly. We implement it both for
 * completeness and as an ablation compressor.
 *
 *   000 zero-word run (3-bit run length, up to 8 words)
 *   001 4-bit sign-extended
 *   010 8-bit sign-extended
 *   011 16-bit sign-extended
 *   100 16-bit padded with a zero halfword (data in the upper half)
 *   101 two halfwords, each a sign-extended byte
 *   110 word of four repeated bytes
 *   111 uncompressed word
 */

#ifndef MORC_COMPRESS_FPC_HH
#define MORC_COMPRESS_FPC_HH

#include <cstdint>

#include "util/bitstream.hh"
#include "util/types.hh"

namespace morc {
namespace comp {

/** Stateless per-line FPC codec. */
class Fpc
{
  public:
    /** Compressed size of @p line in bits. */
    static std::uint32_t lineBits(const CacheLine &line,
                                  BitWriter *out = nullptr);

    /** Decode one line previously produced by lineBits(). */
    static CacheLine decodeLine(BitReader &in);
};

} // namespace comp
} // namespace morc

#endif // MORC_COMPRESS_FPC_HH
