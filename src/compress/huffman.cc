#include "compress/huffman.hh"

#include <algorithm>
#include <queue>

#include "check/check.hh"

namespace morc {
namespace comp {

namespace {

/** Hardware decoders want bounded code length; SC2 uses short codes. */
constexpr unsigned kMaxCodeLen = 24;

/**
 * Compute Huffman code lengths for the given weights. Returns one length
 * per input weight. Standard two-queue/heap construction.
 */
std::vector<unsigned>
huffmanLengths(const std::vector<std::uint64_t> &weights)
{
    const std::size_t n = weights.size();
    std::vector<unsigned> lengths(n, 0);
    if (n == 0)
        return lengths;
    if (n == 1) {
        lengths[0] = 1;
        return lengths;
    }

    struct HeapItem
    {
        std::uint64_t weight;
        std::uint32_t node;
        bool operator>(const HeapItem &o) const
        {
            return weight != o.weight ? weight > o.weight : node > o.node;
        }
    };

    // parent links over 2n-1 nodes; leaves are [0, n).
    std::vector<std::uint32_t> parent(2 * n - 1, 0);
    std::priority_queue<HeapItem, std::vector<HeapItem>,
                        std::greater<HeapItem>>
        heap;
    for (std::size_t i = 0; i < n; i++)
        heap.push({weights[i] == 0 ? 1 : weights[i],
                   static_cast<std::uint32_t>(i)});
    std::uint32_t next = static_cast<std::uint32_t>(n);
    while (heap.size() > 1) {
        const HeapItem a = heap.top();
        heap.pop();
        const HeapItem b = heap.top();
        heap.pop();
        parent[a.node] = next;
        parent[b.node] = next;
        heap.push({a.weight + b.weight, next});
        next++;
    }
    const std::uint32_t root = next - 1;
    for (std::size_t i = 0; i < n; i++) {
        unsigned len = 0;
        std::uint32_t node = static_cast<std::uint32_t>(i);
        while (node != root) {
            node = parent[node];
            len++;
        }
        lengths[i] = len;
    }
    return lengths;
}

} // namespace

HuffmanTable
HuffmanTable::build(
    const std::unordered_map<std::uint32_t, std::uint64_t> &freqs,
    unsigned max_symbols)
{
    HuffmanTable t;
    if (freqs.empty()) {
        t.escapeLen_ = 0; // untrained: plain 32-bit literals
        return t;
    }

    // Keep the most frequent values.
    std::vector<std::pair<std::uint32_t, std::uint64_t>> top(freqs.begin(),
                                                             freqs.end());
    std::sort(top.begin(), top.end(), [](const auto &a, const auto &b) {
        return a.second != b.second ? a.second > b.second
                                    : a.first < b.first;
    });
    if (top.size() > max_symbols)
        top.resize(max_symbols);

    // Escape weight: everything that fell off the top list.
    std::uint64_t escape_weight = 1;
    for (const auto &kv : freqs)
        escape_weight += kv.second;
    for (const auto &kv : top)
        escape_weight -= kv.second;

    std::vector<std::uint64_t> weights;
    weights.reserve(top.size() + 1);
    for (const auto &kv : top)
        weights.push_back(kv.second);
    weights.push_back(escape_weight);

    // Length-limit by flattening weights until the deepest code fits.
    std::vector<unsigned> lengths = huffmanLengths(weights);
    while (*std::max_element(lengths.begin(), lengths.end()) > kMaxCodeLen) {
        for (auto &w : weights)
            w = w / 2 + 1;
        lengths = huffmanLengths(weights);
    }

    // Canonical code assignment: sort symbols by (length, insertion
    // order); insertion order is deterministic (sorted by frequency).
    const std::size_t n = weights.size();
    std::vector<std::uint32_t> order(n);
    for (std::size_t i = 0; i < n; i++)
        order[i] = static_cast<std::uint32_t>(i);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                         return lengths[a] < lengths[b];
                     });

    const unsigned max_len =
        *std::max_element(lengths.begin(), lengths.end());
    t.firstCode_.assign(max_len + 1, 0);
    t.firstSymbol_.assign(max_len + 1, 0);
    std::vector<std::uint32_t> count(max_len + 1, 0);
    for (unsigned l : lengths)
        count[l]++;

    std::uint32_t code = 0;
    std::uint32_t sym_index = 0;
    for (unsigned len = 1; len <= max_len; len++) {
        t.firstCode_[len] = code;
        t.firstSymbol_[len] = sym_index;
        code = (code + count[len]) << 1;
        sym_index += count[len];
    }

    t.countOfLen_.resize(n);
    t.valueOfSymbol_.resize(n);
    std::vector<std::uint32_t> next_of_len(max_len + 1, 0);
    for (std::uint32_t idx : order) {
        const unsigned len = lengths[idx];
        const std::uint32_t pos =
            t.firstSymbol_[len] + next_of_len[len]++;
        const std::uint32_t cw =
            t.firstCode_[len] + (pos - t.firstSymbol_[len]);
        if (idx == n - 1) { // escape
            t.escapeSymbolIndex_ = pos;
            t.escape_ = {cw, static_cast<std::uint8_t>(len)};
            t.escapeLen_ = len;
            t.valueOfSymbol_[pos] = 0;
        } else {
            const std::uint32_t value = top[idx].first;
            t.codes_[value] = {cw, static_cast<std::uint8_t>(len)};
            t.codeLen_[value] = len;
            t.valueOfSymbol_[pos] = value;
        }
    }
    // Lengths table reused during decode: encode count per length.
    t.countOfLen_ = count;
    return t;
}

void
HuffmanTable::encode(std::uint32_t w, BitWriter &out) const
{
    if (escapeLen_ == 0 && codes_.empty()) { // untrained table
        out.put(w, 32);
        return;
    }
    auto it = codes_.find(w);
    const CodeWord cw = it != codes_.end() ? it->second : escape_;
    for (int i = cw.len - 1; i >= 0; i--)
        out.put((cw.bits >> i) & 1, 1);
    if (it == codes_.end())
        out.put(w, 32);
}

std::uint32_t
HuffmanTable::decode(BitReader &in) const
{
    if (escapeLen_ == 0 && codes_.empty())
        return static_cast<std::uint32_t>(in.get(32));
    std::uint32_t code = 0;
    for (unsigned len = 1; len < firstCode_.size(); len++) {
        code = (code << 1) | static_cast<std::uint32_t>(in.get(1));
        const std::uint32_t cnt = countOfLen_[len];
        if (cnt != 0 && code >= firstCode_[len] &&
            code - firstCode_[len] < cnt) {
            const std::uint32_t pos =
                firstSymbol_[len] + (code - firstCode_[len]);
            if (pos == escapeSymbolIndex_)
                return static_cast<std::uint32_t>(in.get(32));
            return valueOfSymbol_[pos];
        }
    }
    MORC_CHECK_FAIL("invalid Huffman stream: no code of length <= %zu "
                    "matched at bit position %llu",
                    firstCode_.size() - 1,
                    static_cast<unsigned long long>(in.pos()));
    return 0;
}

} // namespace comp
} // namespace morc
