/**
 * @file
 * Value-frequency Huffman compression, modelling SC2 (Arelakis &
 * Stenstrom, ISCA 2014).
 *
 * SC2 keeps a system-wide dictionary of the most frequent 32-bit values,
 * Huffman-codes them, and escape-codes everything else. The dictionary
 * is built by sampling values during execution (software-managed in the
 * original; here a training API the SC2 cache model drives). A line's
 * compressed size is the sum of its words' code lengths.
 */

#ifndef MORC_COMPRESS_HUFFMAN_HH
#define MORC_COMPRESS_HUFFMAN_HH

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "snapshot/snapshot.hh"
#include "util/bitstream.hh"
#include "util/sorted_view.hh"
#include "util/types.hh"

namespace morc {
namespace comp {

/** Canonical Huffman code table over 32-bit values plus an escape. */
class HuffmanTable
{
  public:
    /**
     * Build from value frequencies. Keeps the @p max_symbols most
     * frequent values; everything else maps to the escape symbol whose
     * cost is its code length plus 32 literal bits.
     */
    static HuffmanTable
    build(const std::unordered_map<std::uint32_t, std::uint64_t> &freqs,
          unsigned max_symbols);

    /** Code length in bits for value @p w (escape cost included). */
    std::uint32_t
    bitsFor(std::uint32_t w) const
    {
        auto it = codeLen_.find(w);
        if (it != codeLen_.end())
            return it->second;
        return escapeLen_ + 32;
    }

    /** Encode @p w into @p out. */
    void encode(std::uint32_t w, BitWriter &out) const;

    /** Decode one value from @p in. */
    std::uint32_t decode(BitReader &in) const;

    bool empty() const { return codeLen_.empty(); }
    std::size_t symbols() const { return codeLen_.size(); }
    unsigned escapeLen() const { return escapeLen_; }

  private:
    struct CodeWord
    {
        std::uint32_t bits; // MSB-first code value
        std::uint8_t len;
    };

    /** value -> code length (fast size queries). */
    std::unordered_map<std::uint32_t, std::uint32_t> codeLen_;
    /** value -> full code word (encode path). */
    std::unordered_map<std::uint32_t, CodeWord> codes_;
    CodeWord escape_{0, 0};
    unsigned escapeLen_ = 32;

    /** Canonical decode tables: per length, first code and symbol base. */
    std::vector<std::uint32_t> firstCode_;
    std::vector<std::uint32_t> firstSymbol_;
    std::vector<std::uint32_t> countOfLen_;
    std::uint32_t escapeSymbolIndex_ = 0;
    std::vector<std::uint32_t> valueOfSymbol_;
};

/**
 * The sampling + retraining front-end: accumulates value frequencies and
 * rebuilds the table on demand, mimicking SC2's software-managed
 * dictionary maintenance.
 */
class ValueSampler
{
  public:
    explicit ValueSampler(unsigned max_symbols = 1024)
        : maxSymbols_(max_symbols)
    {}

    /** Account the 16 words of a line observed at fill time. */
    void
    observe(const CacheLine &line)
    {
        for (unsigned i = 0; i < kWordsPerLine; i++)
            freqs_[line.word32(i)]++;
        observed_++;
    }

    /** Rebuild the Huffman table from the counts so far. */
    HuffmanTable train() const { return HuffmanTable::build(freqs_, maxSymbols_); }

    /** Decay counts so retraining tracks phase changes. */
    void
    decay()
    {
        for (auto &kv : freqs_)
            kv.second = (kv.second + 1) / 2;
    }

    std::uint64_t linesObserved() const { return observed_; }

    /** Current frequency map (e.g. to capture the exact counts a table
     *  was trained from, so a restore can rebuild that table). */
    const std::unordered_map<std::uint32_t, std::uint64_t> &
    freqs() const
    {
        return freqs_;
    }

    /** Append counts in sorted key order (the map itself is unordered,
     *  but nothing downstream depends on its iteration order). */
    void
    save(snap::Serializer &s) const
    {
        s.u32(maxSymbols_);
        s.u64(observed_);
        saveFreqMap(s, freqs_);
    }

    void
    restore(snap::Deserializer &d)
    {
        const std::uint32_t maxSymbols = d.u32();
        const std::uint64_t observed = d.u64();
        if (d.ok() && maxSymbols != maxSymbols_) {
            d.fail("value sampler symbol-capacity mismatch");
            return;
        }
        std::unordered_map<std::uint32_t, std::uint64_t> freqs;
        restoreFreqMap(d, freqs);
        if (!d.ok())
            return;
        observed_ = observed;
        freqs_ = std::move(freqs);
    }

    /** Shared helper: write a value-frequency map sorted by value. */
    static void
    saveFreqMap(snap::Serializer &s,
                const std::unordered_map<std::uint32_t, std::uint64_t> &m)
    {
        const auto kv = util::sortedView(m);
        s.u64(kv.size());
        for (const auto *e : kv) {
            s.u32(e->first);
            s.u64(e->second);
        }
    }

    /** Shared helper: read a map written by saveFreqMap(). */
    static void
    restoreFreqMap(snap::Deserializer &d,
                   std::unordered_map<std::uint32_t, std::uint64_t> &m)
    {
        m.clear();
        const std::uint64_t n = d.arrayLen(4 + 8);
        m.reserve(static_cast<std::size_t>(n));
        for (std::uint64_t i = 0; i < n && d.ok(); i++) {
            const std::uint32_t value = d.u32();
            const std::uint64_t freq = d.u64();
            m.emplace(value, freq);
        }
    }

  private:
    unsigned maxSymbols_;
    std::uint64_t observed_ = 0;
    std::unordered_map<std::uint32_t, std::uint64_t> freqs_;
};

} // namespace comp
} // namespace morc

#endif // MORC_COMPRESS_HUFFMAN_HH
