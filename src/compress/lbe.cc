#include "compress/lbe.hh"

#include <algorithm>

#include "check/check.hh"
#include "util/simd.hh"

namespace morc {
namespace comp {

namespace {

/** Prefix codes from Table 3, written MSB-first so a decoder can walk
 *  the code trie bit by bit. `rev` holds the bit-reversed value so the
 *  whole code goes out in one BitWriter::put (which emits LSB-first) —
 *  the emitted stream is identical to the historical bit-by-bit loop. */
struct Code
{
    std::uint8_t value;
    std::uint8_t len;
    std::uint8_t rev;
};

constexpr std::uint8_t
reverseBits(std::uint8_t v, unsigned len)
{
    std::uint8_t r = 0;
    for (unsigned i = 0; i < len; i++)
        r = static_cast<std::uint8_t>(r | (((v >> i) & 1) << (len - 1 - i)));
    return r;
}

constexpr Code
makeCode(std::uint8_t value, std::uint8_t len)
{
    return {value, len, reverseBits(value, len)};
}

constexpr Code kCodeU32 = makeCode(0b00, 2);
constexpr Code kCodeM32 = makeCode(0b01, 2);
constexpr Code kCodeU16 = makeCode(0b100, 3);
constexpr Code kCodeZ32 = makeCode(0b1010, 4);
constexpr Code kCodeU8 = makeCode(0b1011, 4);
constexpr Code kCodeM64 = makeCode(0b1100, 4);
constexpr Code kCodeZ64 = makeCode(0b1101, 4);
constexpr Code kCodeM128 = makeCode(0b11100, 5);
constexpr Code kCodeZ128 = makeCode(0b11101, 5);
constexpr Code kCodeM256 = makeCode(0b11110, 5);
constexpr Code kCodeZ256 = makeCode(0b11111, 5);

/** Index 0 is the hardwired zero entry at every granularity. */
constexpr std::uint32_t kZeroIdx = 0;
constexpr std::uint32_t kNoIdx = ~0u;

/**
 * A tree node packed for flat SIMD scanning: children (indices one
 * granularity smaller) as left | right << 32. The snapshot format
 * still writes the two u32 halves, unchanged.
 */
constexpr std::uint64_t
nodeKey(std::uint32_t left, std::uint32_t right)
{
    return static_cast<std::uint64_t>(left) |
           (static_cast<std::uint64_t>(right) << 32);
}

/**
 * Find the index of node (left, right), checking the committed table
 * then the line-local pending overlay. Free and small so the guard
 * checks inline into encodeLine: it runs up to 7 times per chunk.
 */
inline std::uint32_t
lookupNode(std::uint32_t left, std::uint32_t right,
           const std::vector<std::uint64_t> &committed,
           const std::vector<std::uint64_t> &pending)
{
    if (left == kNoIdx || right == kNoIdx)
        return kNoIdx;
    if (left == kZeroIdx && right == kZeroIdx)
        return kZeroIdx;
    const std::uint64_t key = nodeKey(left, right);
    const int i = simd::findU64(committed.data(), committed.size(), key);
    if (i >= 0)
        return static_cast<std::uint32_t>(i) + 1;
    // The pending overlay holds at most this line's few new nodes;
    // a direct scan beats the vector kernel's dispatch cost.
    for (std::size_t p = 0; p < pending.size(); p++) {
        if (pending[p] == key) {
            return static_cast<std::uint32_t>(committed.size() + p) + 1;
        }
    }
    return kNoIdx;
}

inline std::uint32_t
insertNode(std::uint32_t left, std::uint32_t right,
           const std::vector<std::uint64_t> &committed,
           std::vector<std::uint64_t> &pending, unsigned cap)
{
    if (left == kNoIdx || right == kNoIdx)
        return kNoIdx;
    const std::size_t total = committed.size() + pending.size();
    if (total >= cap)
        return kNoIdx;
    pending.push_back(nodeKey(left, right));
    return static_cast<std::uint32_t>(total + 1);
}

} // namespace

const char *
LbeStats::name(LbeSymbol s)
{
    switch (s) {
      case LbeSymbol::U32: return "u32";
      case LbeSymbol::M32: return "m32";
      case LbeSymbol::Z32: return "z32";
      case LbeSymbol::U8: return "u8";
      case LbeSymbol::U16: return "u16";
      case LbeSymbol::M64: return "m64";
      case LbeSymbol::Z64: return "z64";
      case LbeSymbol::M128: return "m128";
      case LbeSymbol::Z128: return "z128";
      case LbeSymbol::M256: return "m256";
      case LbeSymbol::Z256: return "z256";
      default: return "?";
    }
}

LbeLinePlan
LbeLinePlan::of(const CacheLine &line)
{
    LbeLinePlan p;
    for (unsigned c = 0; c < 2; c++) {
        Chunk &ch = p.chunk[c];
        for (unsigned i = 0; i < 8; i++)
            ch.w[i] = line.word32(c * 8 + i);
        ch.zeroMask = simd::zeroMask8(ch.w);
    }
    return p;
}

LbeEncoder::LbeEncoder(const LbeConfig &cfg) : cfg_(cfg)
{
    MORC_CHECK(cfg_.entries32() >= 2,
               "LBE dictionary of %u bytes holds fewer than 2 words",
               cfg_.dictBytes);
    values32_.reserve(cfg_.entries32());
    nodes64_.reserve(cfg_.nodes64);
    nodes128_.reserve(cfg_.nodes128);
    nodes256_.reserve(cfg_.nodes256);
    // Hash index sized to at most 50% load (capacity >= 2x the
    // dictionary) so probe chains stay short and insertion always
    // terminates.
    hashGroupsLog2_ = ceilLog2(divCeil(2 * cfg_.entries32(), 8));
    hashSlots_.assign(std::size_t{8} << hashGroupsLog2_, 0);
    hashPos_.assign(hashSlots_.size(), 0);
}

void
LbeEncoder::hashInsert(std::uint32_t v, std::uint32_t pos)
{
    const unsigned gmask = (1u << hashGroupsLog2_) - 1;
    unsigned g = simd::hashGroup(v, hashGroupsLog2_);
    for (;;) {
        const std::size_t base = std::size_t{g} * 8;
        for (unsigned k = 0; k < 8; k++) {
            if (hashSlots_[base + k] == 0) {
                hashSlots_[base + k] = v;
                hashPos_[base + k] = pos;
                return;
            }
        }
        g = (g + 1) & gmask;
    }
}

void
LbeEncoder::reset()
{
    values32_.clear();
    nodes64_.clear();
    nodes128_.clear();
    nodes256_.clear();
    std::fill(hashSlots_.begin(), hashSlots_.end(), 0u);
}

void
LbeEncoder::save(snap::Serializer &s) const
{
    s.beginSection("LBE ");
    s.u32(cfg_.dictBytes);
    s.u32(cfg_.nodes64);
    s.u32(cfg_.nodes128);
    s.u32(cfg_.nodes256);
    constexpr int kNumSymbols = static_cast<int>(LbeSymbol::NumSymbols);
    for (int i = 0; i < kNumSymbols; i++)
        s.u64(stats_.count[i]);
    for (int i = 0; i < kNumSymbols; i++)
        s.u64(stats_.zeroCount[i]);
    s.vecU32(values32_);
    const auto putNodes = [&](const std::vector<std::uint64_t> &nodes) {
        // Packed nodes serialize as their two u32 children — the
        // on-disk layout predates the packing and must not change.
        s.vec(nodes, [&](std::uint64_t n) {
            s.u32(static_cast<std::uint32_t>(n));
            s.u32(static_cast<std::uint32_t>(n >> 32));
        });
    };
    putNodes(nodes64_);
    putNodes(nodes128_);
    putNodes(nodes256_);
    s.endSection();
}

void
LbeEncoder::restore(snap::Deserializer &d)
{
    if (!d.beginSection("LBE "))
        return;
    const std::uint32_t dictBytes = d.u32();
    const std::uint32_t n64 = d.u32();
    const std::uint32_t n128 = d.u32();
    const std::uint32_t n256 = d.u32();
    if (d.ok() && (dictBytes != cfg_.dictBytes || n64 != cfg_.nodes64 ||
                   n128 != cfg_.nodes128 || n256 != cfg_.nodes256)) {
        d.fail("LBE configuration mismatch (dictionary/table sizing "
               "differs from the live encoder)");
    }
    LbeStats stats;
    constexpr int kNumSymbols = static_cast<int>(LbeSymbol::NumSymbols);
    for (int i = 0; i < kNumSymbols; i++)
        stats.count[i] = d.u64();
    for (int i = 0; i < kNumSymbols; i++)
        stats.zeroCount[i] = d.u64();
    std::vector<std::uint32_t> values;
    d.vecU32(values);
    const auto getNodes = [&](std::vector<std::uint64_t> &nodes,
                              unsigned cap) {
        d.readVec(nodes, 8, [&] {
            const std::uint32_t left = d.u32();
            const std::uint32_t right = d.u32();
            return nodeKey(left, right);
        });
        if (d.ok() && nodes.size() > cap)
            d.fail("LBE node table overflows its configured capacity");
    };
    std::vector<std::uint64_t> t64, t128, t256;
    getNodes(t64, cfg_.nodes64);
    getNodes(t128, cfg_.nodes128);
    getNodes(t256, cfg_.nodes256);
    if (d.ok() && values.size() > cfg_.entries32())
        d.fail("LBE dictionary overflows its configured capacity");
    d.endSection();
    if (!d.ok())
        return;
    stats_ = stats;
    values32_ = std::move(values);
    nodes64_ = std::move(t64);
    nodes128_ = std::move(t128);
    nodes256_ = std::move(t256);
    // Rebuild the hash index from the committed sequence (insertion
    // order fixes the layout, so this is deterministic).
    std::fill(hashSlots_.begin(), hashSlots_.end(), 0u);
    for (std::size_t i = 0; i < values32_.size(); i++)
        hashInsert(values32_[i], static_cast<std::uint32_t>(i + 1));
}

template <bool kEmit, bool kStats>
std::uint32_t
LbeEncoder::encodeLine(const LbeLinePlan &plan, Overlay &ov,
                       BitWriter *out, LbeStats *stats) const
{
    std::uint32_t bits = 0;
    const auto note = [&](LbeSymbol s, bool zero) {
        if constexpr (kStats)
            stats->add(s, zero);
    };
    const auto emit = [&](Code c) {
        if constexpr (kEmit)
            out->put(c.rev, c.len);
    };
    const auto emitOperand = [&](std::uint64_t v, unsigned nbits) {
        if constexpr (kEmit)
            out->put(v, nbits);
    };
    // Pointer widths are ceilLog2 loops; hoist them out of the
    // per-symbol paths (the compiler cannot, past opaque calls).
    const unsigned ptr32 = cfg_.ptrBits32();
    const unsigned ptr64 = cfg_.ptrBits64();
    const unsigned ptr128 = cfg_.ptrBits128();
    const unsigned ptr256 = cfg_.ptrBits256();

    // Two 256-bit chunks per 64-byte line, pre-decomposed (words and
    // zero masks) by the shared LbeLinePlan.
    for (unsigned chunk = 0; chunk < 2; chunk++) {
        const LbeLinePlan::Chunk &ch = plan.chunk[chunk];
        const std::uint32_t *w = ch.w;

        if (ch.allZero()) {
            emit(kCodeZ256);
            bits += kCodeZ256.len;
            note(LbeSymbol::Z256, true);
            continue;
        }

        // One batched probe of the committed-dictionary hash index
        // scores every nonzero word of the chunk at once. The
        // committed dictionary cannot change mid-line, so these
        // positions stay valid for the emit phase below — only the
        // (tiny) overlay needs a per-word rescan there.
        int cpos[8];
        simd::hashFind8(hashSlots_.data(), hashGroupsLog2_, w,
                        ch.zeroMask, cpos);

        // Committed + overlay lookup for a nonzero word, reusing the
        // batched committed-dictionary probe.
        const auto lookupWord = [&](unsigned i) -> std::uint32_t {
            if (cpos[i] >= 0)
                return hashPos_[static_cast<unsigned>(cpos[i])];
            // The overlay holds at most this line's few insertions;
            // a direct first-match scan (identical semantics) beats
            // the vector kernel's call + dispatch cost. Read size and
            // data fresh each call: the overlay grows mid-line.
            for (std::size_t p = 0; p < ov.words.size(); p++) {
                if (ov.words[p] == w[i]) {
                    return static_cast<std::uint32_t>(values32_.size() +
                                                      p) + 1;
                }
            }
            return kNoIdx;
        };

        // Content indices for match checks at >=64-bit granularity.
        // These reflect state at the start of the chunk plus earlier
        // overlay insertions; tree nodes for this chunk are only
        // allocated after it is fully encoded.
        std::uint32_t c32[8], c64[4], c128[2];
        for (unsigned i = 0; i < 8; i++)
            c32[i] = ch.zero(i) ? kZeroIdx : lookupWord(i);
        for (unsigned q = 0; q < 4; q++) {
            c64[q] = lookupNode(c32[2 * q], c32[2 * q + 1], nodes64_,
                                ov.nodes64);
        }
        for (unsigned h = 0; h < 2; h++) {
            c128[h] = lookupNode(c64[2 * h], c64[2 * h + 1], nodes128_,
                                 ov.nodes128);
        }
        const std::uint32_t c256 =
            lookupNode(c128[0], c128[1], nodes256_, ov.nodes256);

        if (c256 != kNoIdx) {
            emit(kCodeM256);
            emitOperand(c256, ptr256);
            bits += kCodeM256.len + ptr256;
            note(LbeSymbol::M256, false);
            continue; // matched: no tree-node allocation for this chunk
        }

        // Coverage bookkeeping for post-chunk node allocation. An index
        // of kNoIdx in idx64/idx128 means the sub-chunk has no usable
        // dictionary identity yet. e32 records each descended word's
        // dictionary index as of its emission; insertions only append,
        // so the index a post-chunk lookup would find is the same one —
        // node allocation below needs no dictionary rescans.
        std::uint32_t idx64[4], idx128[2];
        std::uint32_t e32[8];
        bool descended64[4] = {false, false, false, false};
        bool descended128[2] = {false, false};

        for (unsigned h = 0; h < 2; h++) {
            if (ch.zero128(h)) {
                emit(kCodeZ128);
                bits += kCodeZ128.len;
                note(LbeSymbol::Z128, true);
                idx128[h] = kZeroIdx;
                continue;
            }
            if (c128[h] != kNoIdx) {
                emit(kCodeM128);
                emitOperand(c128[h], ptr128);
                bits += kCodeM128.len + ptr128;
                note(LbeSymbol::M128, false);
                idx128[h] = c128[h];
                continue;
            }
            descended128[h] = true;
            for (unsigned qq = 0; qq < 2; qq++) {
                const unsigned q = 2 * h + qq;
                if (ch.zero64(q)) {
                    emit(kCodeZ64);
                    bits += kCodeZ64.len;
                    note(LbeSymbol::Z64, true);
                    idx64[q] = kZeroIdx;
                    continue;
                }
                if (c64[q] != kNoIdx) {
                    emit(kCodeM64);
                    emitOperand(c64[q], ptr64);
                    bits += kCodeM64.len + ptr64;
                    note(LbeSymbol::M64, false);
                    idx64[q] = c64[q];
                    continue;
                }
                descended64[q] = true;
                for (unsigned ww = 0; ww < 2; ww++) {
                    const unsigned i = 2 * q + ww;
                    if (ch.zero(i)) {
                        emit(kCodeZ32);
                        bits += kCodeZ32.len;
                        note(LbeSymbol::Z32, true);
                        e32[i] = kZeroIdx;
                        continue;
                    }
                    // Emit-time lookup: words inserted earlier in this
                    // very line are already visible (C-Pack-style
                    // immediate insertion).
                    const std::uint32_t m = lookupWord(i);
                    if (m != kNoIdx) {
                        emit(kCodeM32);
                        emitOperand(m, ptr32);
                        bits += kCodeM32.len + ptr32;
                        note(LbeSymbol::M32, false);
                        e32[i] = m;
                        continue;
                    }
                    // Insert directly: the lookup above just proved a
                    // miss in both the committed dictionary and the
                    // overlay, so insert32's own scan is redundant.
                    const std::size_t total =
                        values32_.size() + ov.words.size();
                    if (total + 1 < cfg_.entries32()) {
                        ov.words.push_back(w[i]);
                        e32[i] = static_cast<std::uint32_t>(total + 1);
                    } else {
                        e32[i] = kNoIdx; // dictionary full
                    }
                    if (w[i] < 0x100u) {
                        emit(kCodeU8);
                        emitOperand(w[i], 8);
                        bits += kCodeU8.len + 8;
                        note(LbeSymbol::U8, false);
                    } else if (w[i] < 0x10000u) {
                        emit(kCodeU16);
                        emitOperand(w[i], 16);
                        bits += kCodeU16.len + 16;
                        note(LbeSymbol::U16, false);
                    } else {
                        emit(kCodeU32);
                        emitOperand(w[i], 32);
                        bits += kCodeU32.len + 32;
                        note(LbeSymbol::U32, false);
                    }
                }
            }
        }

        // Post-chunk tree-node allocation for the sub-chunks that
        // failed to match (Section 3.2.5).
        for (unsigned q = 0; q < 4; q++) {
            if (!descended128[q / 2] || !descended64[q])
                continue;
            const std::uint32_t l = e32[2 * q];
            const std::uint32_t r = e32[2 * q + 1];
            idx64[q] = lookupNode(l, r, nodes64_, ov.nodes64);
            if (idx64[q] == kNoIdx) {
                idx64[q] =
                    insertNode(l, r, nodes64_, ov.nodes64, cfg_.nodes64);
            }
        }
        for (unsigned h = 0; h < 2; h++) {
            if (!descended128[h])
                continue;
            idx128[h] = lookupNode(idx64[2 * h], idx64[2 * h + 1],
                                   nodes128_, ov.nodes128);
            if (idx128[h] == kNoIdx) {
                idx128[h] = insertNode(idx64[2 * h], idx64[2 * h + 1],
                                       nodes128_, ov.nodes128,
                                       cfg_.nodes128);
            }
        }
        if (lookupNode(idx128[0], idx128[1], nodes256_, ov.nodes256) ==
            kNoIdx) {
            insertNode(idx128[0], idx128[1], nodes256_, ov.nodes256,
                       cfg_.nodes256);
        }
    }
    return bits;
}

void
LbeEncoder::commit(const Overlay &ov)
{
    for (std::uint32_t w : ov.words) {
        values32_.push_back(w);
        hashInsert(w, static_cast<std::uint32_t>(values32_.size()));
    }
    for (std::uint64_t n : ov.nodes64)
        nodes64_.push_back(n);
    for (std::uint64_t n : ov.nodes128)
        nodes128_.push_back(n);
    for (std::uint64_t n : ov.nodes256)
        nodes256_.push_back(n);
}

std::uint32_t
LbeEncoder::measure(const CacheLine &line, LbeStats *stats) const
{
    return measure(LbeLinePlan::of(line), stats);
}

std::uint32_t
LbeEncoder::measure(const LbeLinePlan &plan, LbeStats *stats) const
{
    scratch_.clear();
    if (stats)
        return encodeLine<false, true>(plan, scratch_, nullptr, stats);
    return encodeLine<false, false>(plan, scratch_, nullptr, nullptr);
}

std::uint32_t
LbeEncoder::append(const CacheLine &line, BitWriter *out)
{
    return append(LbeLinePlan::of(line), out);
}

std::uint32_t
LbeEncoder::append(const LbeLinePlan &plan, BitWriter *out)
{
    scratch_.clear();
    const std::uint32_t bits =
        out ? encodeLine<true, true>(plan, scratch_, out, &stats_)
            : encodeLine<false, true>(plan, scratch_, nullptr, &stats_);
    commit(scratch_);
    return bits;
}

// ---------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------

LbeDecoder::LbeDecoder(const LbeConfig &cfg) : cfg_(cfg) {}

void
LbeDecoder::reset()
{
    values32_.clear();
    map32_.clear();
    for (int l = 0; l < 3; l++) {
        nodes_[l].clear();
        nodeMap_[l].clear();
    }
}

std::uint32_t
LbeDecoder::value32(std::uint32_t idx) const
{
    return idx == 0 ? 0u : values32_[idx - 1];
}

void
LbeDecoder::gather(unsigned level, std::uint32_t idx,
                   std::uint32_t *out) const
{
    const unsigned words = 2u << level; // 2, 4, 8 words
    if (idx == 0) {
        for (unsigned i = 0; i < words; i++)
            out[i] = 0;
        return;
    }
    const std::uint64_t packed = nodes_[level][idx - 1];
    const std::uint32_t left = static_cast<std::uint32_t>(packed >> 32);
    const std::uint32_t right = static_cast<std::uint32_t>(packed);
    if (level == 0) {
        out[0] = value32(left);
        out[1] = value32(right);
    } else {
        gather(level - 1, left, out);
        gather(level - 1, right, out + words / 2);
    }
}

CacheLine
LbeDecoder::decodeLine(BitReader &in)
{
    CacheLine line;

    const auto nodeKey = [](std::uint32_t l, std::uint32_t r) {
        return (static_cast<std::uint64_t>(l) << 32) | r;
    };
    constexpr std::uint32_t noIdx = ~0u;

    const auto lookupOrInsertNode = [&](unsigned level, std::uint32_t l,
                                        std::uint32_t r,
                                        unsigned cap) -> std::uint32_t {
        if (l == noIdx || r == noIdx)
            return noIdx;
        if (l == 0 && r == 0)
            return 0;
        const std::uint64_t key = nodeKey(l, r);
        auto it = nodeMap_[level].find(key);
        if (it != nodeMap_[level].end())
            return it->second;
        if (nodes_[level].size() >= cap)
            return noIdx;
        nodes_[level].push_back(key);
        const auto idx = static_cast<std::uint32_t>(nodes_[level].size());
        nodeMap_[level].emplace(key, idx);
        return idx;
    };

    for (unsigned chunk = 0; chunk < 2; chunk++) {
        std::uint32_t w[8];
        unsigned pos = 0; // next 32-bit word to fill within the chunk

        // Coverage state mirrored from the encoder for post-chunk
        // tree-node allocation.
        bool chunkMatched = false;
        std::uint32_t idx64[4] = {noIdx, noIdx, noIdx, noIdx};
        std::uint32_t idx128[2] = {noIdx, noIdx};
        bool descended64[4] = {false, false, false, false};
        bool descended128[2] = {false, false};

        while (pos < 8) {
            // Walk the Table 3 prefix-code trie.
            if (in.get(1) == 0) {
                if (in.get(1) == 0) { // u32
                    const auto v =
                        static_cast<std::uint32_t>(in.get(32));
                    w[pos] = v;
                    if (map32_.find(v) == map32_.end() &&
                        values32_.size() + 1 < cfg_.entries32()) {
                        values32_.push_back(v);
                        map32_.emplace(
                            v,
                            static_cast<std::uint32_t>(values32_.size()));
                    }
                    descended64[pos / 2] = true;
                    descended128[pos / 4] = true;
                    pos++;
                } else { // m32
                    const auto idx = static_cast<std::uint32_t>(
                        in.get(cfg_.ptrBits32()));
                    w[pos] = value32(idx);
                    descended64[pos / 2] = true;
                    descended128[pos / 4] = true;
                    pos++;
                }
            } else if (in.get(1) == 0) {
                if (in.get(1) == 0) { // u16 (code 100)
                    const auto v =
                        static_cast<std::uint32_t>(in.get(16));
                    w[pos] = v;
                    if (map32_.find(v) == map32_.end() &&
                        values32_.size() + 1 < cfg_.entries32()) {
                        values32_.push_back(v);
                        map32_.emplace(
                            v,
                            static_cast<std::uint32_t>(values32_.size()));
                    }
                    descended64[pos / 2] = true;
                    descended128[pos / 4] = true;
                    pos++;
                } else if (in.get(1) == 0) { // z32 (1010)
                    w[pos] = 0;
                    descended64[pos / 2] = true;
                    descended128[pos / 4] = true;
                    pos++;
                } else { // u8 (1011)
                    const auto v = static_cast<std::uint32_t>(in.get(8));
                    w[pos] = v;
                    if (map32_.find(v) == map32_.end() &&
                        values32_.size() + 1 < cfg_.entries32()) {
                        values32_.push_back(v);
                        map32_.emplace(
                            v,
                            static_cast<std::uint32_t>(values32_.size()));
                    }
                    descended64[pos / 2] = true;
                    descended128[pos / 4] = true;
                    pos++;
                }
            } else if (in.get(1) == 0) {
                if (in.get(1) == 0) { // m64 (1100)
                    const auto idx = static_cast<std::uint32_t>(
                        in.get(cfg_.ptrBits64()));
                    gather(0, idx, w + pos);
                    idx64[pos / 2] = idx;
                    descended128[pos / 4] = true;
                    pos += 2;
                } else { // z64 (1101)
                    w[pos] = w[pos + 1] = 0;
                    idx64[pos / 2] = 0;
                    descended128[pos / 4] = true;
                    pos += 2;
                }
            } else if (in.get(1) == 0) {
                if (in.get(1) == 0) { // m128 (11100)
                    const auto idx = static_cast<std::uint32_t>(
                        in.get(cfg_.ptrBits128()));
                    gather(1, idx, w + pos);
                    idx128[pos / 4] = idx;
                    pos += 4;
                } else { // z128 (11101)
                    for (unsigned i = 0; i < 4; i++)
                        w[pos + i] = 0;
                    idx128[pos / 4] = 0;
                    pos += 4;
                }
            } else {
                if (in.get(1) == 0) { // m256 (11110)
                    const auto idx = static_cast<std::uint32_t>(
                        in.get(cfg_.ptrBits256()));
                    gather(2, idx, w);
                } else { // z256 (11111)
                    for (unsigned i = 0; i < 8; i++)
                        w[i] = 0;
                }
                pos = 8;
                chunkMatched = true;
            }
        }

        for (unsigned i = 0; i < 8; i++)
            line.setWord32(chunk * 8 + i, w[i]);

        if (chunkMatched)
            continue;

        // Mirror the encoder's post-chunk tree-node allocation.
        const auto wordIdx = [&](unsigned i) -> std::uint32_t {
            if (w[i] == 0)
                return 0;
            auto it = map32_.find(w[i]);
            return it == map32_.end() ? noIdx : it->second;
        };
        for (unsigned q = 0; q < 4; q++) {
            if (!descended128[q / 2] || !descended64[q])
                continue;
            idx64[q] = lookupOrInsertNode(0, wordIdx(2 * q),
                                          wordIdx(2 * q + 1), cfg_.nodes64);
        }
        for (unsigned h = 0; h < 2; h++) {
            if (!descended128[h])
                continue;
            idx128[h] = lookupOrInsertNode(1, idx64[2 * h],
                                           idx64[2 * h + 1], cfg_.nodes128);
        }
        lookupOrInsertNode(2, idx128[0], idx128[1], cfg_.nodes256);
    }
    return line;
}

} // namespace comp
} // namespace morc
