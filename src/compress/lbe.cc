#include "compress/lbe.hh"

#include "check/check.hh"

namespace morc {
namespace comp {

namespace {

/** Prefix codes from Table 3, written MSB-first so a decoder can walk
 *  the code trie bit by bit. */
struct Code
{
    std::uint8_t value;
    std::uint8_t len;
};

constexpr Code kCodeU32{0b00, 2};
constexpr Code kCodeM32{0b01, 2};
constexpr Code kCodeU16{0b100, 3};
constexpr Code kCodeZ32{0b1010, 4};
constexpr Code kCodeU8{0b1011, 4};
constexpr Code kCodeM64{0b1100, 4};
constexpr Code kCodeZ64{0b1101, 4};
constexpr Code kCodeM128{0b11100, 5};
constexpr Code kCodeZ128{0b11101, 5};
constexpr Code kCodeM256{0b11110, 5};
constexpr Code kCodeZ256{0b11111, 5};

void
putCode(BitWriter *out, Code c)
{
    if (!out)
        return;
    for (int i = c.len - 1; i >= 0; i--)
        out->put((c.value >> i) & 1, 1);
}

void
putOperand(BitWriter *out, std::uint64_t v, unsigned bits)
{
    if (out)
        out->put(v, bits);
}

} // namespace

const char *
LbeStats::name(LbeSymbol s)
{
    switch (s) {
      case LbeSymbol::U32: return "u32";
      case LbeSymbol::M32: return "m32";
      case LbeSymbol::Z32: return "z32";
      case LbeSymbol::U8: return "u8";
      case LbeSymbol::U16: return "u16";
      case LbeSymbol::M64: return "m64";
      case LbeSymbol::Z64: return "z64";
      case LbeSymbol::M128: return "m128";
      case LbeSymbol::Z128: return "z128";
      case LbeSymbol::M256: return "m256";
      case LbeSymbol::Z256: return "z256";
      default: return "?";
    }
}

LbeEncoder::LbeEncoder(const LbeConfig &cfg) : cfg_(cfg)
{
    MORC_CHECK(cfg_.entries32() >= 2,
               "LBE dictionary of %u bytes holds fewer than 2 words",
               cfg_.dictBytes);
}

void
LbeEncoder::reset()
{
    values32_.clear();
    map32_.clear();
    nodes64_.clear();
    nodes128_.clear();
    nodes256_.clear();
    map64_.clear();
    map128_.clear();
    map256_.clear();
}

void
LbeEncoder::save(snap::Serializer &s) const
{
    s.beginSection("LBE ");
    s.u32(cfg_.dictBytes);
    s.u32(cfg_.nodes64);
    s.u32(cfg_.nodes128);
    s.u32(cfg_.nodes256);
    constexpr int kNumSymbols = static_cast<int>(LbeSymbol::NumSymbols);
    for (int i = 0; i < kNumSymbols; i++)
        s.u64(stats_.count[i]);
    for (int i = 0; i < kNumSymbols; i++)
        s.u64(stats_.zeroCount[i]);
    s.vecU32(values32_);
    const auto putNodes = [&](const std::vector<Node> &nodes) {
        s.vec(nodes, [&](const Node &n) {
            s.u32(n.left);
            s.u32(n.right);
        });
    };
    putNodes(nodes64_);
    putNodes(nodes128_);
    putNodes(nodes256_);
    s.endSection();
}

void
LbeEncoder::restore(snap::Deserializer &d)
{
    if (!d.beginSection("LBE "))
        return;
    const std::uint32_t dictBytes = d.u32();
    const std::uint32_t n64 = d.u32();
    const std::uint32_t n128 = d.u32();
    const std::uint32_t n256 = d.u32();
    if (d.ok() && (dictBytes != cfg_.dictBytes || n64 != cfg_.nodes64 ||
                   n128 != cfg_.nodes128 || n256 != cfg_.nodes256)) {
        d.fail("LBE configuration mismatch (dictionary/table sizing "
               "differs from the live encoder)");
    }
    LbeStats stats;
    constexpr int kNumSymbols = static_cast<int>(LbeSymbol::NumSymbols);
    for (int i = 0; i < kNumSymbols; i++)
        stats.count[i] = d.u64();
    for (int i = 0; i < kNumSymbols; i++)
        stats.zeroCount[i] = d.u64();
    std::vector<std::uint32_t> values;
    d.vecU32(values);
    const auto getNodes = [&](std::vector<Node> &nodes, unsigned cap) {
        d.readVec(nodes, 8, [&] {
            Node n;
            n.left = d.u32();
            n.right = d.u32();
            return n;
        });
        if (d.ok() && nodes.size() > cap)
            d.fail("LBE node table overflows its configured capacity");
    };
    std::vector<Node> t64, t128, t256;
    getNodes(t64, cfg_.nodes64);
    getNodes(t128, cfg_.nodes128);
    getNodes(t256, cfg_.nodes256);
    if (d.ok() && values.size() > cfg_.entries32())
        d.fail("LBE dictionary overflows its configured capacity");
    d.endSection();
    if (!d.ok())
        return;
    stats_ = stats;
    values32_ = std::move(values);
    nodes64_ = std::move(t64);
    nodes128_ = std::move(t128);
    nodes256_ = std::move(t256);
    // The reverse maps are derived: rebuild them with the same
    // position+1 indices commit() assigns (0 is the zero entry).
    map32_.clear();
    map64_.clear();
    map128_.clear();
    map256_.clear();
    for (std::size_t i = 0; i < values32_.size(); i++)
        map32_.emplace(values32_[i], static_cast<std::uint32_t>(i + 1));
    for (std::size_t i = 0; i < nodes64_.size(); i++)
        map64_.emplace(nodes64_[i], static_cast<std::uint32_t>(i + 1));
    for (std::size_t i = 0; i < nodes128_.size(); i++)
        map128_.emplace(nodes128_[i], static_cast<std::uint32_t>(i + 1));
    for (std::size_t i = 0; i < nodes256_.size(); i++)
        map256_.emplace(nodes256_[i], static_cast<std::uint32_t>(i + 1));
}

std::uint32_t
LbeEncoder::lookup32(std::uint32_t w, const Overlay &ov) const
{
    if (w == 0)
        return kZeroIdx;
    auto it = map32_.find(w);
    if (it != map32_.end())
        return it->second;
    for (std::size_t i = 0; i < ov.words.size(); i++) {
        if (ov.words[i] == w)
            return static_cast<std::uint32_t>(values32_.size() + i + 1);
    }
    return kNoIdx;
}

std::uint32_t
LbeEncoder::insert32(std::uint32_t w, Overlay &ov) const
{
    const std::uint32_t found = lookup32(w, ov);
    if (found != kNoIdx)
        return found;
    const std::size_t total = values32_.size() + ov.words.size();
    if (total + 1 >= cfg_.entries32()) // index 0 is reserved for zero
        return kNoIdx;
    ov.words.push_back(w);
    return static_cast<std::uint32_t>(total + 1);
}

std::uint32_t
LbeEncoder::lookupNode(const Node &n,
                       const std::unordered_map<Node, std::uint32_t,
                                                NodeHash> &map,
                       const std::vector<Node> &pending,
                       std::uint32_t committed, unsigned cap) const
{
    (void)cap;
    if (n.left == kNoIdx || n.right == kNoIdx)
        return kNoIdx;
    if (n.left == kZeroIdx && n.right == kZeroIdx)
        return kZeroIdx;
    auto it = map.find(n);
    if (it != map.end())
        return it->second;
    for (std::size_t i = 0; i < pending.size(); i++) {
        if (pending[i] == n)
            return committed + static_cast<std::uint32_t>(i) + 1;
    }
    return kNoIdx;
}

std::uint32_t
LbeEncoder::insertNode(const Node &n, std::vector<Node> &pending,
                       std::uint32_t committed, unsigned cap) const
{
    if (n.left == kNoIdx || n.right == kNoIdx)
        return kNoIdx;
    const std::size_t total = committed + pending.size();
    if (total >= cap)
        return kNoIdx;
    pending.push_back(n);
    return static_cast<std::uint32_t>(total + 1);
}

std::uint32_t
LbeEncoder::encodeLine(const CacheLine &line, Overlay &ov, BitWriter *out,
                       LbeStats *stats) const
{
    std::uint32_t bits = 0;
    const auto note = [&](LbeSymbol s, bool zero) {
        if (stats)
            stats->add(s, zero);
    };

    // Two 256-bit chunks per 64-byte line.
    for (unsigned chunk = 0; chunk < 2; chunk++) {
        std::uint32_t w[8];
        bool zero[8];
        bool allZero = true;
        for (unsigned i = 0; i < 8; i++) {
            w[i] = line.word32(chunk * 8 + i);
            zero[i] = w[i] == 0;
            allZero &= zero[i];
        }

        if (allZero) {
            putCode(out, kCodeZ256);
            bits += kCodeZ256.len;
            note(LbeSymbol::Z256, true);
            continue;
        }

        // Content indices for match checks at >=64-bit granularity.
        // These reflect state at the start of the chunk plus earlier
        // overlay insertions; tree nodes for this chunk are only
        // allocated after it is fully encoded.
        std::uint32_t c32[8], c64[4], c128[2];
        for (unsigned i = 0; i < 8; i++)
            c32[i] = zero[i] ? kZeroIdx : lookup32(w[i], ov);
        for (unsigned q = 0; q < 4; q++) {
            c64[q] = lookupNode({c32[2 * q], c32[2 * q + 1]}, map64_,
                                ov.nodes64,
                                static_cast<std::uint32_t>(nodes64_.size()),
                                cfg_.nodes64);
        }
        for (unsigned h = 0; h < 2; h++) {
            c128[h] = lookupNode({c64[2 * h], c64[2 * h + 1]}, map128_,
                                 ov.nodes128,
                                 static_cast<std::uint32_t>(nodes128_.size()),
                                 cfg_.nodes128);
        }
        const std::uint32_t c256 =
            lookupNode({c128[0], c128[1]}, map256_, ov.nodes256,
                       static_cast<std::uint32_t>(nodes256_.size()),
                       cfg_.nodes256);

        if (c256 != kNoIdx) {
            putCode(out, kCodeM256);
            putOperand(out, c256, cfg_.ptrBits256());
            bits += kCodeM256.len + cfg_.ptrBits256();
            note(LbeSymbol::M256, false);
            continue; // matched: no tree-node allocation for this chunk
        }

        // Coverage bookkeeping for post-chunk node allocation. An index
        // of kNoIdx in idx64/idx128 means the sub-chunk has no usable
        // dictionary identity yet.
        std::uint32_t idx64[4], idx128[2];
        bool descended64[4] = {false, false, false, false};
        bool descended128[2] = {false, false};

        for (unsigned h = 0; h < 2; h++) {
            const bool zero128 =
                zero[4 * h] && zero[4 * h + 1] && zero[4 * h + 2] &&
                zero[4 * h + 3];
            if (zero128) {
                putCode(out, kCodeZ128);
                bits += kCodeZ128.len;
                note(LbeSymbol::Z128, true);
                idx128[h] = kZeroIdx;
                continue;
            }
            if (c128[h] != kNoIdx) {
                putCode(out, kCodeM128);
                putOperand(out, c128[h], cfg_.ptrBits128());
                bits += kCodeM128.len + cfg_.ptrBits128();
                note(LbeSymbol::M128, false);
                idx128[h] = c128[h];
                continue;
            }
            descended128[h] = true;
            for (unsigned qq = 0; qq < 2; qq++) {
                const unsigned q = 2 * h + qq;
                const bool zero64 = zero[2 * q] && zero[2 * q + 1];
                if (zero64) {
                    putCode(out, kCodeZ64);
                    bits += kCodeZ64.len;
                    note(LbeSymbol::Z64, true);
                    idx64[q] = kZeroIdx;
                    continue;
                }
                if (c64[q] != kNoIdx) {
                    putCode(out, kCodeM64);
                    putOperand(out, c64[q], cfg_.ptrBits64());
                    bits += kCodeM64.len + cfg_.ptrBits64();
                    note(LbeSymbol::M64, false);
                    idx64[q] = c64[q];
                    continue;
                }
                descended64[q] = true;
                for (unsigned ww = 0; ww < 2; ww++) {
                    const unsigned i = 2 * q + ww;
                    if (zero[i]) {
                        putCode(out, kCodeZ32);
                        bits += kCodeZ32.len;
                        note(LbeSymbol::Z32, true);
                        continue;
                    }
                    // Emit-time lookup: words inserted earlier in this
                    // very line are already visible (C-Pack-style
                    // immediate insertion).
                    const std::uint32_t m = lookup32(w[i], ov);
                    if (m != kNoIdx) {
                        putCode(out, kCodeM32);
                        putOperand(out, m, cfg_.ptrBits32());
                        bits += kCodeM32.len + cfg_.ptrBits32();
                        note(LbeSymbol::M32, false);
                        continue;
                    }
                    insert32(w[i], ov);
                    if (w[i] < 0x100u) {
                        putCode(out, kCodeU8);
                        putOperand(out, w[i], 8);
                        bits += kCodeU8.len + 8;
                        note(LbeSymbol::U8, false);
                    } else if (w[i] < 0x10000u) {
                        putCode(out, kCodeU16);
                        putOperand(out, w[i], 16);
                        bits += kCodeU16.len + 16;
                        note(LbeSymbol::U16, false);
                    } else {
                        putCode(out, kCodeU32);
                        putOperand(out, w[i], 32);
                        bits += kCodeU32.len + 32;
                        note(LbeSymbol::U32, false);
                    }
                }
            }
        }

        // Post-chunk tree-node allocation for the sub-chunks that
        // failed to match (Section 3.2.5).
        for (unsigned q = 0; q < 4; q++) {
            if (!descended128[q / 2] || !descended64[q])
                continue;
            const Node n{zero[2 * q] ? kZeroIdx : lookup32(w[2 * q], ov),
                         zero[2 * q + 1] ? kZeroIdx
                                         : lookup32(w[2 * q + 1], ov)};
            idx64[q] = lookupNode(
                n, map64_, ov.nodes64,
                static_cast<std::uint32_t>(nodes64_.size()), cfg_.nodes64);
            if (idx64[q] == kNoIdx) {
                idx64[q] = insertNode(
                    n, ov.nodes64,
                    static_cast<std::uint32_t>(nodes64_.size()),
                    cfg_.nodes64);
            }
        }
        for (unsigned h = 0; h < 2; h++) {
            if (!descended128[h])
                continue;
            const Node n{idx64[2 * h], idx64[2 * h + 1]};
            idx128[h] = lookupNode(
                n, map128_, ov.nodes128,
                static_cast<std::uint32_t>(nodes128_.size()), cfg_.nodes128);
            if (idx128[h] == kNoIdx) {
                idx128[h] = insertNode(
                    n, ov.nodes128,
                    static_cast<std::uint32_t>(nodes128_.size()),
                    cfg_.nodes128);
            }
        }
        {
            const Node n{idx128[0], idx128[1]};
            if (lookupNode(n, map256_, ov.nodes256,
                           static_cast<std::uint32_t>(nodes256_.size()),
                           cfg_.nodes256) == kNoIdx) {
                insertNode(n, ov.nodes256,
                           static_cast<std::uint32_t>(nodes256_.size()),
                           cfg_.nodes256);
            }
        }
    }
    return bits;
}

void
LbeEncoder::commit(const Overlay &ov)
{
    for (std::uint32_t w : ov.words) {
        values32_.push_back(w);
        map32_.emplace(w, static_cast<std::uint32_t>(values32_.size()));
    }
    for (const Node &n : ov.nodes64) {
        nodes64_.push_back(n);
        map64_.emplace(n, static_cast<std::uint32_t>(nodes64_.size()));
    }
    for (const Node &n : ov.nodes128) {
        nodes128_.push_back(n);
        map128_.emplace(n, static_cast<std::uint32_t>(nodes128_.size()));
    }
    for (const Node &n : ov.nodes256) {
        nodes256_.push_back(n);
        map256_.emplace(n, static_cast<std::uint32_t>(nodes256_.size()));
    }
}

std::uint32_t
LbeEncoder::measure(const CacheLine &line) const
{
    Overlay ov;
    return encodeLine(line, ov, nullptr, nullptr);
}

std::uint32_t
LbeEncoder::append(const CacheLine &line, BitWriter *out)
{
    Overlay ov;
    const std::uint32_t bits = encodeLine(line, ov, out, &stats_);
    commit(ov);
    return bits;
}

// ---------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------

LbeDecoder::LbeDecoder(const LbeConfig &cfg) : cfg_(cfg) {}

void
LbeDecoder::reset()
{
    values32_.clear();
    map32_.clear();
    for (int l = 0; l < 3; l++) {
        nodes_[l].clear();
        nodeMap_[l].clear();
    }
}

std::uint32_t
LbeDecoder::value32(std::uint32_t idx) const
{
    return idx == 0 ? 0u : values32_[idx - 1];
}

void
LbeDecoder::gather(unsigned level, std::uint32_t idx,
                   std::uint32_t *out) const
{
    const unsigned words = 2u << level; // 2, 4, 8 words
    if (idx == 0) {
        for (unsigned i = 0; i < words; i++)
            out[i] = 0;
        return;
    }
    const std::uint64_t packed = nodes_[level][idx - 1];
    const std::uint32_t left = static_cast<std::uint32_t>(packed >> 32);
    const std::uint32_t right = static_cast<std::uint32_t>(packed);
    if (level == 0) {
        out[0] = value32(left);
        out[1] = value32(right);
    } else {
        gather(level - 1, left, out);
        gather(level - 1, right, out + words / 2);
    }
}

CacheLine
LbeDecoder::decodeLine(BitReader &in)
{
    CacheLine line;

    const auto nodeKey = [](std::uint32_t l, std::uint32_t r) {
        return (static_cast<std::uint64_t>(l) << 32) | r;
    };
    constexpr std::uint32_t noIdx = ~0u;

    const auto lookupOrInsertNode = [&](unsigned level, std::uint32_t l,
                                        std::uint32_t r,
                                        unsigned cap) -> std::uint32_t {
        if (l == noIdx || r == noIdx)
            return noIdx;
        if (l == 0 && r == 0)
            return 0;
        const std::uint64_t key = nodeKey(l, r);
        auto it = nodeMap_[level].find(key);
        if (it != nodeMap_[level].end())
            return it->second;
        if (nodes_[level].size() >= cap)
            return noIdx;
        nodes_[level].push_back(key);
        const auto idx = static_cast<std::uint32_t>(nodes_[level].size());
        nodeMap_[level].emplace(key, idx);
        return idx;
    };

    for (unsigned chunk = 0; chunk < 2; chunk++) {
        std::uint32_t w[8];
        unsigned pos = 0; // next 32-bit word to fill within the chunk

        // Coverage state mirrored from the encoder for post-chunk
        // tree-node allocation.
        bool chunkMatched = false;
        std::uint32_t idx64[4] = {noIdx, noIdx, noIdx, noIdx};
        std::uint32_t idx128[2] = {noIdx, noIdx};
        bool descended64[4] = {false, false, false, false};
        bool descended128[2] = {false, false};

        while (pos < 8) {
            // Walk the Table 3 prefix-code trie.
            if (in.get(1) == 0) {
                if (in.get(1) == 0) { // u32
                    const auto v =
                        static_cast<std::uint32_t>(in.get(32));
                    w[pos] = v;
                    if (map32_.find(v) == map32_.end() &&
                        values32_.size() + 1 < cfg_.entries32()) {
                        values32_.push_back(v);
                        map32_.emplace(
                            v,
                            static_cast<std::uint32_t>(values32_.size()));
                    }
                    descended64[pos / 2] = true;
                    descended128[pos / 4] = true;
                    pos++;
                } else { // m32
                    const auto idx = static_cast<std::uint32_t>(
                        in.get(cfg_.ptrBits32()));
                    w[pos] = value32(idx);
                    descended64[pos / 2] = true;
                    descended128[pos / 4] = true;
                    pos++;
                }
            } else if (in.get(1) == 0) {
                if (in.get(1) == 0) { // u16 (code 100)
                    const auto v =
                        static_cast<std::uint32_t>(in.get(16));
                    w[pos] = v;
                    if (map32_.find(v) == map32_.end() &&
                        values32_.size() + 1 < cfg_.entries32()) {
                        values32_.push_back(v);
                        map32_.emplace(
                            v,
                            static_cast<std::uint32_t>(values32_.size()));
                    }
                    descended64[pos / 2] = true;
                    descended128[pos / 4] = true;
                    pos++;
                } else if (in.get(1) == 0) { // z32 (1010)
                    w[pos] = 0;
                    descended64[pos / 2] = true;
                    descended128[pos / 4] = true;
                    pos++;
                } else { // u8 (1011)
                    const auto v = static_cast<std::uint32_t>(in.get(8));
                    w[pos] = v;
                    if (map32_.find(v) == map32_.end() &&
                        values32_.size() + 1 < cfg_.entries32()) {
                        values32_.push_back(v);
                        map32_.emplace(
                            v,
                            static_cast<std::uint32_t>(values32_.size()));
                    }
                    descended64[pos / 2] = true;
                    descended128[pos / 4] = true;
                    pos++;
                }
            } else if (in.get(1) == 0) {
                if (in.get(1) == 0) { // m64 (1100)
                    const auto idx = static_cast<std::uint32_t>(
                        in.get(cfg_.ptrBits64()));
                    gather(0, idx, w + pos);
                    idx64[pos / 2] = idx;
                    descended128[pos / 4] = true;
                    pos += 2;
                } else { // z64 (1101)
                    w[pos] = w[pos + 1] = 0;
                    idx64[pos / 2] = 0;
                    descended128[pos / 4] = true;
                    pos += 2;
                }
            } else if (in.get(1) == 0) {
                if (in.get(1) == 0) { // m128 (11100)
                    const auto idx = static_cast<std::uint32_t>(
                        in.get(cfg_.ptrBits128()));
                    gather(1, idx, w + pos);
                    idx128[pos / 4] = idx;
                    pos += 4;
                } else { // z128 (11101)
                    for (unsigned i = 0; i < 4; i++)
                        w[pos + i] = 0;
                    idx128[pos / 4] = 0;
                    pos += 4;
                }
            } else {
                if (in.get(1) == 0) { // m256 (11110)
                    const auto idx = static_cast<std::uint32_t>(
                        in.get(cfg_.ptrBits256()));
                    gather(2, idx, w);
                } else { // z256 (11111)
                    for (unsigned i = 0; i < 8; i++)
                        w[i] = 0;
                }
                pos = 8;
                chunkMatched = true;
            }
        }

        for (unsigned i = 0; i < 8; i++)
            line.setWord32(chunk * 8 + i, w[i]);

        if (chunkMatched)
            continue;

        // Mirror the encoder's post-chunk tree-node allocation.
        const auto wordIdx = [&](unsigned i) -> std::uint32_t {
            if (w[i] == 0)
                return 0;
            auto it = map32_.find(w[i]);
            return it == map32_.end() ? noIdx : it->second;
        };
        for (unsigned q = 0; q < 4; q++) {
            if (!descended128[q / 2] || !descended64[q])
                continue;
            idx64[q] = lookupOrInsertNode(0, wordIdx(2 * q),
                                          wordIdx(2 * q + 1), cfg_.nodes64);
        }
        for (unsigned h = 0; h < 2; h++) {
            if (!descended128[h])
                continue;
            idx128[h] = lookupOrInsertNode(1, idx64[2 * h],
                                           idx64[2 * h + 1], cfg_.nodes128);
        }
        lookupOrInsertNode(2, idx128[0], idx128[1], cfg_.nodes256);
    }
    return line;
}

} // namespace comp
} // namespace morc
