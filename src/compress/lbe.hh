/**
 * @file
 * Large-Block Encoding (LBE), the compression algorithm introduced by
 * MORC (Section 3.2.5).
 *
 * LBE consumes input in 256-bit chunks and looks for exact matches at
 * 32/64/128/256-bit granularities. Only the 32-bit dictionary holds data;
 * the larger granularities are binary-tree nodes whose children are
 * entries one size smaller. Encoding symbols and their codes follow
 * Table 3 of the paper:
 *
 *   u32 00+32   m32 01+ptr    z32 1010      u8 1011+8    u16 100+16
 *   m64 1100+p  z64 1101      m128 11100+p  z128 11101
 *   m256 11110+p z256 11111
 *
 * Incompressible 32-bit words with 16 or 24 upper zero bits are truncated
 * (u16/u8, significance-based compression). After each 256-bit chunk,
 * tree nodes are allocated for the 64/128/256-bit sub-chunks that failed
 * to match, so later identical chunks can match at large granularity.
 *
 * The encoder supports trial compression (measure without committing) so
 * MORC's multi-log selection can score a line against all active logs.
 */

#ifndef MORC_COMPRESS_LBE_HH
#define MORC_COMPRESS_LBE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "snapshot/snapshot.hh"
#include "util/bitstream.hh"
#include "util/types.hh"

namespace morc {
namespace comp {

/** Symbol identifiers, used for Figure 7's usage distribution. */
enum class LbeSymbol : std::uint8_t
{
    U32, M32, Z32, U8, U16, M64, Z64, M128, Z128, M256, Z256, NumSymbols
};

/** Per-symbol usage counters (weighted by represented data size). */
struct LbeStats
{
    std::uint64_t count[static_cast<int>(LbeSymbol::NumSymbols)] = {};
    /** Of which, counts that encoded all-zero data (z* plus zero u*). */
    std::uint64_t zeroCount[static_cast<int>(LbeSymbol::NumSymbols)] = {};

    void
    add(LbeSymbol s, bool zero)
    {
        count[static_cast<int>(s)]++;
        if (zero)
            zeroCount[static_cast<int>(s)]++;
    }

    /** Bytes of input data one use of symbol @p s represents. */
    static unsigned
    dataBytes(LbeSymbol s)
    {
        switch (s) {
          case LbeSymbol::M64:
          case LbeSymbol::Z64:
            return 8;
          case LbeSymbol::M128:
          case LbeSymbol::Z128:
            return 16;
          case LbeSymbol::M256:
          case LbeSymbol::Z256:
            return 32;
          default:
            return 4;
        }
    }

    static const char *name(LbeSymbol s);
};

/** Sizing knobs for an LBE engine. */
struct LbeConfig
{
    /** Bytes of 32-bit data dictionary (paper sizes it at 512 B). */
    unsigned dictBytes = 512;

    /**
     * Max binary-tree nodes at 64/128/256-bit granularity. Only the
     * 32-bit dictionary holds data (the paper's 512 B); tree nodes are
     * two small pointers each, so they are provisioned generously —
     * skimping here starves m64/m128/m256 of match candidates because
     * one-off pairs exhaust the tables before popular chunks recur.
     * With index 0 reserved for the hardwired all-zero entry, pointers
     * are 8/7/6 bits.
     */
    unsigned nodes64 = 255;
    unsigned nodes128 = 127;
    unsigned nodes256 = 63;

    unsigned entries32() const { return dictBytes / 4; }
    unsigned ptrBits32() const { return ceilLog2(entries32()); }
    unsigned ptrBits64() const { return ceilLog2(nodes64 + 1); }
    unsigned ptrBits128() const { return ceilLog2(nodes128 + 1); }
    unsigned ptrBits256() const { return ceilLog2(nodes256 + 1); }
};

/**
 * Streaming LBE encoder. One encoder instance embodies the dictionary
 * state of one compression stream (one MORC log).
 */
class LbeEncoder
{
  public:
    explicit LbeEncoder(const LbeConfig &cfg = LbeConfig{});

    /**
     * Measure the compressed size of @p line against the current
     * dictionary without committing any state change.
     *
     * @return Size in bits the line would occupy if appended.
     */
    std::uint32_t measure(const CacheLine &line) const;

    /**
     * Compress @p line, commit dictionary updates, and optionally emit
     * the bit stream (used by the decoder round-trip tests).
     *
     * @return Size in bits of the appended line.
     */
    std::uint32_t append(const CacheLine &line, BitWriter *out = nullptr);

    /** Forget all dictionary state (log flush). */
    void reset();

    const LbeConfig &config() const { return cfg_; }
    const LbeStats &stats() const { return stats_; }
    void clearStats() { stats_ = LbeStats{}; }

    /** Number of committed 32-bit dictionary entries (excluding zero). */
    unsigned dictSize() const { return static_cast<unsigned>(values32_.size()); }

    /** Append dictionary contents and symbol stats. The reverse maps
     *  are derived state and are rebuilt on restore. */
    void save(snap::Serializer &s) const;

    /** Restore a dictionary written by save(); the configuration must
     *  match (table capacities are structural). */
    void restore(snap::Deserializer &d);

  private:
    /** Index 0 is the hardwired zero entry at every granularity. */
    static constexpr std::uint32_t kZeroIdx = 0;
    static constexpr std::uint32_t kNoIdx = ~0u;

    /** A tree node: children are indices one granularity smaller. */
    struct Node
    {
        std::uint32_t left;
        std::uint32_t right;
        bool operator==(const Node &) const = default;
    };

    struct NodeHash
    {
        std::size_t
        operator()(const Node &n) const
        {
            return static_cast<std::size_t>(
                (static_cast<std::uint64_t>(n.left) << 32) ^ n.right ^
                (static_cast<std::uint64_t>(n.right) << 13));
        }
    };

    /**
     * Dictionary updates buffered during one line so measure() can run
     * without mutating and append() can commit atomically.
     */
    struct Overlay
    {
        std::vector<std::uint32_t> words;  // pending 32-bit insertions
        std::vector<Node> nodes64;
        std::vector<Node> nodes128;
        std::vector<Node> nodes256;
    };

    std::uint32_t encodeLine(const CacheLine &line, Overlay &ov,
                             BitWriter *out, LbeStats *stats) const;

    std::uint32_t lookup32(std::uint32_t w, const Overlay &ov) const;
    std::uint32_t lookupNode(const Node &n,
                             const std::unordered_map<Node, std::uint32_t,
                                                      NodeHash> &map,
                             const std::vector<Node> &pending,
                             std::uint32_t committed, unsigned cap) const;
    std::uint32_t insert32(std::uint32_t w, Overlay &ov) const;
    std::uint32_t insertNode(const Node &n, std::vector<Node> &pending,
                             std::uint32_t committed, unsigned cap) const;

    void commit(const Overlay &ov);

    LbeConfig cfg_;
    LbeStats stats_;

    /** Committed 32-bit dictionary: value list + reverse map. */
    std::vector<std::uint32_t> values32_;
    std::unordered_map<std::uint32_t, std::uint32_t> map32_;

    std::vector<Node> nodes64_;
    std::vector<Node> nodes128_;
    std::vector<Node> nodes256_;
    std::unordered_map<Node, std::uint32_t, NodeHash> map64_;
    std::unordered_map<Node, std::uint32_t, NodeHash> map128_;
    std::unordered_map<Node, std::uint32_t, NodeHash> map256_;

    friend class LbeDecoder;
};

/**
 * Streaming LBE decoder, mirroring the encoder's dictionary evolution.
 * Exists to prove the format is decodable; the cache model itself only
 * needs compressed sizes.
 */
class LbeDecoder
{
  public:
    explicit LbeDecoder(const LbeConfig &cfg = LbeConfig{});

    /** Decode the next line from @p in. */
    CacheLine decodeLine(BitReader &in);

    void reset();

  private:
    std::uint32_t value32(std::uint32_t idx) const;
    void gather(unsigned level, std::uint32_t idx, std::uint32_t *out) const;

    LbeConfig cfg_;
    std::vector<std::uint32_t> values32_;
    std::unordered_map<std::uint32_t, std::uint32_t> map32_;
    /** Node children packed as left<<32|right; index 0 is the zero entry. */
    std::vector<std::uint64_t> nodes_[3]; // 64, 128, 256-bit levels
    std::unordered_map<std::uint64_t, std::uint32_t> nodeMap_[3];
};

} // namespace comp
} // namespace morc

#endif // MORC_COMPRESS_LBE_HH
