/**
 * @file
 * Large-Block Encoding (LBE), the compression algorithm introduced by
 * MORC (Section 3.2.5).
 *
 * LBE consumes input in 256-bit chunks and looks for exact matches at
 * 32/64/128/256-bit granularities. Only the 32-bit dictionary holds data;
 * the larger granularities are binary-tree nodes whose children are
 * entries one size smaller. Encoding symbols and their codes follow
 * Table 3 of the paper:
 *
 *   u32 00+32   m32 01+ptr    z32 1010      u8 1011+8    u16 100+16
 *   m64 1100+p  z64 1101      m128 11100+p  z128 11101
 *   m256 11110+p z256 11111
 *
 * Incompressible 32-bit words with 16 or 24 upper zero bits are truncated
 * (u16/u8, significance-based compression). After each 256-bit chunk,
 * tree nodes are allocated for the 64/128/256-bit sub-chunks that failed
 * to match, so later identical chunks can match at large granularity.
 *
 * The encoder supports trial compression (measure without committing) so
 * MORC's multi-log selection can score a line against all active logs.
 * That trial path is the simulator's hottest loop, so it is engineered
 * accordingly (DESIGN.md §11): dictionaries and tree-node tables are
 * flat arrays probed with the SIMD kernels in util/simd.hh — the
 * committed 32-bit dictionary through a bucketized hash index
 * (hashFind8) resolving a whole chunk per call, tree nodes by
 * first-match scan; both return exactly what the old per-word hash
 * lookups did, bit for bit. The per-line 256-bit chunk decomposition
 * is precomputed once in an LbeLinePlan and shared by all 8 per-insert
 * trials, trial scratch state is arena-reused across calls, and the
 * measure path is a compile-time clone of encodeLine with all
 * bit-stream output stripped.
 */

#ifndef MORC_COMPRESS_LBE_HH
#define MORC_COMPRESS_LBE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "snapshot/snapshot.hh"
#include "util/bitstream.hh"
#include "util/types.hh"

namespace morc {
namespace comp {

/** Symbol identifiers, used for Figure 7's usage distribution. */
enum class LbeSymbol : std::uint8_t
{
    U32, M32, Z32, U8, U16, M64, Z64, M128, Z128, M256, Z256, NumSymbols
};

/** Per-symbol usage counters (weighted by represented data size). */
struct LbeStats
{
    std::uint64_t count[static_cast<int>(LbeSymbol::NumSymbols)] = {};
    /** Of which, counts that encoded all-zero data (z* plus zero u*). */
    std::uint64_t zeroCount[static_cast<int>(LbeSymbol::NumSymbols)] = {};

    void
    add(LbeSymbol s, bool zero)
    {
        count[static_cast<int>(s)]++;
        if (zero)
            zeroCount[static_cast<int>(s)]++;
    }

    bool operator==(const LbeStats &) const = default;

    /** Bytes of input data one use of symbol @p s represents. */
    static unsigned
    dataBytes(LbeSymbol s)
    {
        switch (s) {
          case LbeSymbol::M64:
          case LbeSymbol::Z64:
            return 8;
          case LbeSymbol::M128:
          case LbeSymbol::Z128:
            return 16;
          case LbeSymbol::M256:
          case LbeSymbol::Z256:
            return 32;
          default:
            return 4;
        }
    }

    static const char *name(LbeSymbol s);
};

/** Sizing knobs for an LBE engine. */
struct LbeConfig
{
    /** Bytes of 32-bit data dictionary (paper sizes it at 512 B). */
    unsigned dictBytes = 512;

    /**
     * Max binary-tree nodes at 64/128/256-bit granularity. Only the
     * 32-bit dictionary holds data (the paper's 512 B); tree nodes are
     * two small pointers each, so they are provisioned generously —
     * skimping here starves m64/m128/m256 of match candidates because
     * one-off pairs exhaust the tables before popular chunks recur.
     * With index 0 reserved for the hardwired all-zero entry, pointers
     * are 8/7/6 bits.
     */
    unsigned nodes64 = 255;
    unsigned nodes128 = 127;
    unsigned nodes256 = 63;

    unsigned entries32() const { return dictBytes / 4; }
    unsigned ptrBits32() const { return ceilLog2(entries32()); }
    unsigned ptrBits64() const { return ceilLog2(nodes64 + 1); }
    unsigned ptrBits128() const { return ceilLog2(nodes128 + 1); }
    unsigned ptrBits256() const { return ceilLog2(nodes256 + 1); }
};

/**
 * A cache line pre-decomposed into LBE's two 256-bit chunks, with the
 * zero scan done once (SIMD). Computing the plan once per insert and
 * scoring it against all 8 active logs is what makes multi-log trial
 * compression cheap: the per-line work (word extraction, zero
 * detection) no longer repeats per log.
 */
struct LbeLinePlan
{
    struct Chunk
    {
        std::uint32_t w[8];
        /** Bit i set when w[i] == 0. */
        unsigned zeroMask;

        bool allZero() const { return zeroMask == 0xff; }
        bool zero(unsigned i) const { return (zeroMask >> i) & 1; }
        /** 64-bit sub-chunk q (word pair 2q, 2q+1) is all zero. */
        bool zero64(unsigned q) const
        {
            return ((zeroMask >> (2 * q)) & 3) == 3;
        }
        /** 128-bit sub-chunk h (word quad) is all zero. */
        bool zero128(unsigned h) const
        {
            return ((zeroMask >> (4 * h)) & 0xf) == 0xf;
        }
    };

    Chunk chunk[2];

    static LbeLinePlan of(const CacheLine &line);
};

/**
 * Streaming LBE encoder. One encoder instance embodies the dictionary
 * state of one compression stream (one MORC log).
 */
class LbeEncoder
{
  public:
    explicit LbeEncoder(const LbeConfig &cfg = LbeConfig{});

    /**
     * Measure the compressed size of @p line against the current
     * dictionary without committing any state change. When @p stats is
     * given, the symbol mix the line *would* contribute is recorded
     * there — by construction the same counts append() would commit
     * (pinned by the trial/commit symmetry test).
     *
     * @return Size in bits the line would occupy if appended.
     */
    std::uint32_t measure(const CacheLine &line,
                          LbeStats *stats = nullptr) const;

    /** measure() over a precomputed plan (multi-log batched trials). */
    std::uint32_t measure(const LbeLinePlan &plan,
                          LbeStats *stats = nullptr) const;

    /**
     * Compress @p line, commit dictionary updates, and optionally emit
     * the bit stream (used by the decoder round-trip tests).
     *
     * @return Size in bits of the appended line.
     */
    std::uint32_t append(const CacheLine &line, BitWriter *out = nullptr);

    /** append() over a precomputed plan (reuses the trial's plan). */
    std::uint32_t append(const LbeLinePlan &plan, BitWriter *out = nullptr);

    /** Forget all dictionary state (log flush). */
    void reset();

    const LbeConfig &config() const { return cfg_; }
    const LbeStats &stats() const { return stats_; }
    void clearStats() { stats_ = LbeStats{}; }

    /** Number of committed 32-bit dictionary entries (excluding zero). */
    unsigned dictSize() const { return static_cast<unsigned>(values32_.size()); }

    /** Append dictionary contents and symbol stats. */
    void save(snap::Serializer &s) const;

    /** Restore a dictionary written by save(); the configuration must
     *  match (table capacities are structural). */
    void restore(snap::Deserializer &d);

  private:
    /**
     * Dictionary updates buffered during one line so measure() can run
     * without mutating and append() can commit atomically. One scratch
     * instance lives in the encoder and is reused (cleared, capacity
     * kept) across calls — trial compression allocates nothing.
     */
    struct Overlay
    {
        std::vector<std::uint32_t> words;   // pending 32-bit insertions
        std::vector<std::uint64_t> nodes64; // pending packed tree nodes
        std::vector<std::uint64_t> nodes128;
        std::vector<std::uint64_t> nodes256;

        void
        clear()
        {
            words.clear();
            nodes64.clear();
            nodes128.clear();
            nodes256.clear();
        }
    };

    /**
     * Core encode over a plan. The trial battery is the simulator's
     * hottest loop, so the emit and stats paths are compile-time
     * template clones: kEmit = false strips all bit-stream output
     * (measure), kStats = false strips symbol accounting (trial
     * scoring). @p out / @p stats must be non-null exactly when the
     * matching flag is set.
     */
    template <bool kEmit, bool kStats>
    std::uint32_t encodeLine(const LbeLinePlan &plan, Overlay &ov,
                             BitWriter *out, LbeStats *stats) const;

    void commit(const Overlay &ov);

    LbeConfig cfg_;
    LbeStats stats_;

    /** Committed 32-bit dictionary in insertion order (index - 1). */
    std::vector<std::uint32_t> values32_;

    /**
     * Bucketized open-addressing index over values32_ for O(1)
     * committed-dictionary matches (simd::hashFind8 layout: groups of
     * 8 slots probed with one vector compare). hashSlots_ holds the
     * values (0 = empty; dictionary values are nonzero by
     * construction), hashPos_ the matching 1-based dictionary index.
     * Rebuilt deterministically from the committed sequence on
     * restore(), so it is pure acceleration — encodings never depend
     * on its layout.
     */
    std::vector<std::uint32_t> hashSlots_;
    std::vector<std::uint32_t> hashPos_; // morc-analyze: allow(snapshot-completeness) rebuilt on restore()
    unsigned hashGroupsLog2_ = 0; // morc-analyze: allow(snapshot-completeness) sized from cfg_ at construction

    void hashInsert(std::uint32_t v, std::uint32_t pos);

    /** Committed tree nodes, packed left | right << 32 for flat
     *  scanning (the snapshot format still writes the u32 halves). */
    std::vector<std::uint64_t> nodes64_;
    std::vector<std::uint64_t> nodes128_;
    std::vector<std::uint64_t> nodes256_;

    /** Reused trial/append scratch (see Overlay). */
    mutable Overlay scratch_; // morc-analyze: allow(snapshot-completeness) transient trial scratch
};

/**
 * Streaming LBE decoder, mirroring the encoder's dictionary evolution.
 * Exists to prove the format is decodable; the cache model itself only
 * needs compressed sizes.
 */
class LbeDecoder
{
  public:
    explicit LbeDecoder(const LbeConfig &cfg = LbeConfig{});

    /** Decode the next line from @p in. */
    CacheLine decodeLine(BitReader &in);

    void reset();

  private:
    std::uint32_t value32(std::uint32_t idx) const;
    void gather(unsigned level, std::uint32_t idx, std::uint32_t *out) const;

    LbeConfig cfg_;
    std::vector<std::uint32_t> values32_;
    std::unordered_map<std::uint32_t, std::uint32_t> map32_;
    /** Node children packed as left<<32|right; index 0 is the zero entry. */
    std::vector<std::uint64_t> nodes_[3]; // 64, 128, 256-bit levels
    std::unordered_map<std::uint64_t, std::uint32_t> nodeMap_[3];
};

} // namespace comp
} // namespace morc

#endif // MORC_COMPRESS_LBE_HH
