#include "compress/lzss.hh"

#include <algorithm>

namespace morc {
namespace comp {

LzssEncoder::LzssEncoder() : LzssEncoder(Config{}) {}

LzssEncoder::LzssEncoder(const Config &cfg) : cfg_(cfg) {}

void
LzssEncoder::reset()
{
    history_.clear();
    index_.clear();
}

std::uint32_t
LzssEncoder::encode(const CacheLine &line,
                    std::vector<std::uint8_t> &history,
                    std::unordered_map<std::uint32_t,
                                       std::vector<std::uint32_t>> &index,
                    BitWriter *out) const
{
    std::uint32_t bits = 0;
    const std::uint8_t *data = line.bytes.data();

    unsigned pos = 0;
    while (pos < kLineSize) {
        // Find the longest match for data[pos..] in history + the part
        // of the line already encoded (which is also history by now).
        unsigned best_len = 0;
        std::uint32_t best_off = 0;
        const unsigned hist_size = static_cast<unsigned>(history.size());
        if (pos + cfg_.minMatch <= kLineSize) {
            // Candidates share the 3-byte prefix.
            std::uint8_t probe[3] = {data[pos],
                                     pos + 1 < kLineSize ? data[pos + 1]
                                                         : std::uint8_t(0),
                                     pos + 2 < kLineSize ? data[pos + 2]
                                                         : std::uint8_t(0)};
            auto it = index.find(tripleKey(probe));
            if (it != index.end()) {
                const std::uint32_t window_start =
                    hist_size > cfg_.windowBytes
                        ? hist_size - cfg_.windowBytes
                        : 0;
                for (auto cand = it->second.rbegin();
                     cand != it->second.rend(); ++cand) {
                    if (*cand < window_start)
                        break; // older candidates are out of window
                    unsigned len = 0;
                    const unsigned max_len = std::min<unsigned>(
                        cfg_.maxMatch, kLineSize - pos);
                    while (len < max_len && *cand + len < hist_size &&
                           history[*cand + len] == data[pos + len]) {
                        len++;
                    }
                    if (len > best_len) {
                        best_len = len;
                        best_off = hist_size - *cand;
                    }
                }
            }
        }

        if (best_len >= cfg_.minMatch &&
            best_off <= (1u << cfg_.offsetBits)) {
            if (out) {
                out->put(1, 1);
                out->put(best_off - 1, cfg_.offsetBits);
                out->put(best_len - cfg_.minMatch, cfg_.lengthBits);
            }
            bits += 1 + cfg_.offsetBits + cfg_.lengthBits;
            for (unsigned i = 0; i < best_len; i++) {
                history.push_back(data[pos + i]);
                if (history.size() >= 3) {
                    index[tripleKey(&history[history.size() - 3])]
                        .push_back(
                            static_cast<std::uint32_t>(history.size() -
                                                       3));
                }
            }
            pos += best_len;
        } else {
            if (out) {
                out->put(0, 1);
                out->put(data[pos], 8);
            }
            bits += 9;
            history.push_back(data[pos]);
            if (history.size() >= 3) {
                index[tripleKey(&history[history.size() - 3])].push_back(
                    static_cast<std::uint32_t>(history.size() - 3));
            }
            pos++;
        }
    }
    return bits;
}

std::uint32_t
LzssEncoder::append(const CacheLine &line, BitWriter *out)
{
    return encode(line, history_, index_, out);
}

std::uint32_t
LzssEncoder::measure(const CacheLine &line) const
{
    std::vector<std::uint8_t> history = history_;
    auto index = index_;
    return encode(line, history, index, nullptr);
}

CacheLine
LzssDecoder::decodeLine(BitReader &in)
{
    CacheLine line;
    unsigned produced = 0;
    while (produced < kLineSize) {
        if (in.get(1)) {
            const auto off =
                static_cast<std::uint32_t>(in.get(cfg_.offsetBits)) + 1;
            const auto len = static_cast<unsigned>(
                in.get(cfg_.lengthBits)) + cfg_.minMatch;
            const std::size_t start = history_.size() - off;
            for (unsigned i = 0; i < len; i++) {
                const std::uint8_t b = history_[start + i];
                history_.push_back(b);
                line.bytes[produced++] = b;
            }
        } else {
            const auto b = static_cast<std::uint8_t>(in.get(8));
            history_.push_back(b);
            line.bytes[produced++] = b;
        }
    }
    return line;
}

} // namespace comp
} // namespace morc
