/**
 * @file
 * Byte-level LZSS over a log's compressed stream — the "LZ as a direct
 * replacement to LBE" ablation the paper mentions in Section 6 ("in
 * our (not-shown) studies, we found that LZ ... has similar compression
 * performance").
 *
 * The encoder keeps the uncompressed history of everything appended to
 * the log (the window) and emits literals (1+8 bits) or back-references
 * (1 + offset + length bits). Like hardware LZ (AHA/IBM MXT-class), the
 * window is bounded; unlike LBE it has no alignment restriction, which
 * buys ratio at the cost of serial, byte-at-a-time decode (the paper's
 * argument for LBE's implementability).
 */

#ifndef MORC_COMPRESS_LZSS_HH
#define MORC_COMPRESS_LZSS_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/bitstream.hh"
#include "util/types.hh"

namespace morc {
namespace comp {

/** Streaming LZSS encoder for one log. */
class LzssEncoder
{
  public:
    struct Config
    {
        unsigned windowBytes = 4096; //< history visible to matches
        unsigned minMatch = 3;
        unsigned maxMatch = 66;      //< minMatch + 6-bit length field
        unsigned offsetBits = 12;
        unsigned lengthBits = 6;
    };

    explicit LzssEncoder(const Config &cfg);
    LzssEncoder();

    /** Append one line; returns bits consumed. */
    std::uint32_t append(const CacheLine &line, BitWriter *out = nullptr);

    /** Measure without mutating (for multi-log trials). */
    std::uint32_t measure(const CacheLine &line) const;

    /** Forget all history (log flush). */
    void reset();

    const Config &config() const { return cfg_; }

  private:
    std::uint32_t encode(const CacheLine &line,
                         std::vector<std::uint8_t> &history,
                         std::unordered_map<std::uint32_t,
                                            std::vector<std::uint32_t>>
                             &index,
                         BitWriter *out) const;

    static std::uint32_t
    tripleKey(const std::uint8_t *p)
    {
        return static_cast<std::uint32_t>(p[0]) |
               (static_cast<std::uint32_t>(p[1]) << 8) |
               (static_cast<std::uint32_t>(p[2]) << 16);
    }

    Config cfg_;
    std::vector<std::uint8_t> history_;
    std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> index_;
};

/** Decoder proving the stream reconstructs. */
class LzssDecoder
{
  public:
    explicit LzssDecoder(const LzssEncoder::Config &cfg =
                             LzssEncoder::Config{})
        : cfg_(cfg)
    {}

    CacheLine decodeLine(BitReader &in);

    void reset() { history_.clear(); }

  private:
    LzssEncoder::Config cfg_;
    std::vector<std::uint8_t> history_;
};

} // namespace comp
} // namespace morc

#endif // MORC_COMPRESS_LZSS_HH
