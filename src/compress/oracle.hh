/**
 * @file
 * Ideal intra-line and inter-line compression models for the Figure 2
 * limit study.
 *
 * Per the paper's footnote: lines are split into 4-byte words and
 * deduplicated — within the line for Oracle-Intra, across all resident
 * cache lines for Oracle-Inter. Small values are further compressed by
 * dropping most-significant zero bytes (significance-based compression).
 * Neither model pays any metadata cost (pointers, tags, fragmentation).
 */

#ifndef MORC_COMPRESS_ORACLE_HH
#define MORC_COMPRESS_ORACLE_HH

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "util/types.hh"

namespace morc {
namespace comp {

/** Number of significant bytes of a 32-bit value (0 for zero). */
inline unsigned
significantBytes(std::uint32_t w)
{
    if (w == 0)
        return 0;
    if (w < 0x100u)
        return 1;
    if (w < 0x10000u)
        return 2;
    if (w < 0x1000000u)
        return 3;
    return 4;
}

/** Ideal intra-line cost: dedup within the line, truncate zeros. */
inline std::uint32_t
oracleIntraBits(const CacheLine &line)
{
    std::uint32_t bits = 0;
    std::unordered_set<std::uint32_t> seen;
    for (unsigned i = 0; i < kWordsPerLine; i++) {
        const std::uint32_t w = line.word32(i);
        if (w == 0)
            continue;
        if (seen.insert(w).second)
            bits += 8 * significantBytes(w);
    }
    return bits;
}

/**
 * Reference-counted multiset of the 32-bit words of all resident lines;
 * the dedup scope of Oracle-Inter.
 */
class OracleDictionary
{
  public:
    /** Cost of @p line against current contents (without adding it). */
    std::uint32_t
    interBits(const CacheLine &line) const
    {
        std::uint32_t bits = 0;
        // Dedup also applies within the line being inserted.
        std::unordered_set<std::uint32_t> local;
        for (unsigned i = 0; i < kWordsPerLine; i++) {
            const std::uint32_t w = line.word32(i);
            if (w == 0)
                continue;
            if (refs_.find(w) != refs_.end())
                continue;
            if (local.insert(w).second)
                bits += 8 * significantBytes(w);
        }
        return bits;
    }

    /** Account a line's words as resident. */
    void
    addLine(const CacheLine &line)
    {
        for (unsigned i = 0; i < kWordsPerLine; i++) {
            const std::uint32_t w = line.word32(i);
            if (w != 0)
                refs_[w]++;
        }
    }

    /** Remove a resident line's words. */
    void
    removeLine(const CacheLine &line)
    {
        for (unsigned i = 0; i < kWordsPerLine; i++) {
            const std::uint32_t w = line.word32(i);
            if (w == 0)
                continue;
            auto it = refs_.find(w);
            if (it != refs_.end() && --it->second == 0)
                refs_.erase(it);
        }
    }

    std::size_t distinctWords() const { return refs_.size(); }

    /** Forget all residency (snapshot restore rebuilds via addLine). */
    void clear() { refs_.clear(); }

  private:
    std::unordered_map<std::uint32_t, std::uint32_t> refs_;
};

} // namespace comp
} // namespace morc

#endif // MORC_COMPRESS_ORACLE_HH
