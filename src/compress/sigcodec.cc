#include "compress/sigcodec.hh"

#include "check/check.hh"

namespace morc {
namespace comp {

std::uint32_t
SigCodec::append(std::uint16_t sig, BitWriter *out)
{
    MORC_DCHECK(sig < (1u << kSignatureBits),
                "signature %u exceeds %u bits", sig, kSignatureBits);
    if (hasPrev_ && sig == prev_) {
        repeats_++;
        if (out)
            out->put(0, 1);
        return 1;
    }
    literals_++;
    if (out) {
        out->put(1, 1);
        out->put(sig, kSignatureBits);
    }
    hasPrev_ = true;
    prev_ = sig;
    return 1 + kSignatureBits;
}

void
SigCodec::reset()
{
    hasPrev_ = false;
    prev_ = 0;
}

std::uint16_t
SigDecoder::next(BitReader &in)
{
    const bool literal = in.get(1) != 0;
    if (!literal) {
        MORC_DCHECK(hasPrev_, "repeat entry with no preceding literal");
        return prev_;
    }
    prev_ = static_cast<std::uint16_t>(
        in.get(SigCodec::kSignatureBits));
    hasPrev_ = true;
    return prev_;
}

void
SigDecoder::reset()
{
    hasPrev_ = false;
    prev_ = 0;
}

} // namespace comp
} // namespace morc
