/**
 * @file
 * Touché-style signature codec (Hong et al., PAPERS.md).
 *
 * Touché reaches compressed-cache capacity from an *unmodified* tag
 * array by storing short hashed signatures of the lines packed into a
 * data block instead of widening the tag entry. A lookup compares the
 * requested line's signature against the stored ones; a match is only a
 * probable hit — the full identity travels with the compressed data and
 * is verified after decompression, so a colliding signature costs a
 * decompress-and-verify round trip, never a wrong-data hit.
 *
 * This module owns both halves of that contract:
 *  - signatureOf(): the line-number -> signature hash (kSignatureBits
 *    wide; deliberately narrow so the false-positive path is a living
 *    code path, not dead insurance);
 *  - SigCodec/SigDecoder: the metadata stream codec packing a way's
 *    signature slots. Consecutive slots of one superblock compress the
 *    same kind of data and often repeat a signature prefix, so each
 *    entry is a 1-bit repeat flag or a literal — the same
 *    measure/append/reset shape as comp::TagCodec, with a decoder that
 *    proves the stream reconstructible.
 */

#ifndef MORC_COMPRESS_SIGCODEC_HH
#define MORC_COMPRESS_SIGCODEC_HH

#include <cstdint>

#include "snapshot/snapshot.hh"
#include "util/bitstream.hh"
#include "util/rng.hh"
#include "util/types.hh"

namespace morc {
namespace comp {

/** Encoder state for one way's signature slots. */
class SigCodec
{
  public:
    /** Signature width. Narrow by design: with 8-bit signatures a
     *  4-line superblock collides internally for roughly 2% of
     *  superblocks, so differential fuzzing exercises the
     *  decompress-and-verify repair path constantly. */
    static constexpr unsigned kSignatureBits = 8;

    /** Hash a line number to its stored signature. */
    static std::uint16_t
    signatureOf(std::uint64_t line_number)
    {
        const std::uint64_t h = splitmix64(line_number);
        // Fold all 64 hash bits so neighboring lines decorrelate.
        const std::uint64_t folded =
            h ^ (h >> 32) ^ (h >> 16) ^ (h >> 48);
        return static_cast<std::uint16_t>(folded &
                                          ((1u << kSignatureBits) - 1));
    }

    /**
     * Cost in bits of appending @p sig without committing state (trial
     * packing against a way's metadata budget).
     */
    std::uint32_t
    measure(std::uint16_t sig) const
    {
        return 1 + (hasPrev_ && sig == prev_ ? 0 : kSignatureBits);
    }

    /**
     * Append a signature; updates repeat state. Optionally emits the
     * bit stream. @return bits consumed.
     */
    std::uint32_t append(std::uint16_t sig, BitWriter *out = nullptr);

    /** Forget the repeat context (way re-packed from scratch). */
    void reset();

    /** Diagnostics: appended entry mix. */
    std::uint64_t repeatCount() const { return repeats_; }
    std::uint64_t literalCount() const { return literals_; }

    /** Append repeat context and diagnostic counters. */
    void
    save(snap::Serializer &s) const
    {
        s.beginSection("SIGC");
        s.boolean(hasPrev_);
        s.u32(prev_);
        s.u64(repeats_);
        s.u64(literals_);
        s.endSection();
    }

    /** Restore state written by save(). */
    void
    restore(snap::Deserializer &d)
    {
        if (!d.beginSection("SIGC"))
            return;
        const bool hasPrev = d.boolean();
        const std::uint32_t prev = d.u32();
        const std::uint64_t repeats = d.u64();
        const std::uint64_t literals = d.u64();
        if (d.ok() && prev >= (1u << kSignatureBits))
            d.fail("signature codec literal out of range");
        d.endSection();
        if (!d.ok())
            return;
        hasPrev_ = hasPrev;
        prev_ = static_cast<std::uint16_t>(prev);
        repeats_ = repeats;
        literals_ = literals;
    }

  private:
    bool hasPrev_ = false;
    std::uint16_t prev_ = 0;
    std::uint64_t repeats_ = 0;
    std::uint64_t literals_ = 0;
};

/**
 * Decoder for signature streams; reconstructs the appended sequence to
 * prove decodability in tests and audits.
 */
class SigDecoder
{
  public:
    /** Decode the next signature entry. */
    std::uint16_t next(BitReader &in);

    void reset();

  private:
    bool hasPrev_ = false;
    std::uint16_t prev_ = 0;
};

} // namespace comp
} // namespace morc

#endif // MORC_COMPRESS_SIGCODEC_HH
