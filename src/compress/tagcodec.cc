#include "compress/tagcodec.hh"

#include "check/check.hh"

namespace morc {
namespace comp {

TagDistanceCode
TagDistanceCode::forDistance(std::uint64_t distance)
{
    // Hot path (runs per trial compression): audit builds only.
    MORC_DCHECK(distance >= 1 && distance <= TagCodec::kMaxDelta,
                "distance %llu outside the codable range [1, %llu]",
                static_cast<unsigned long long>(distance),
                static_cast<unsigned long long>(TagCodec::kMaxDelta));
    if (distance <= 4)
        return {static_cast<unsigned>(distance - 1), 0, distance};
    // Distance in (2^(k+1), 2^(k+2)] uses codes 2k+2 / 2k+3 with k
    // precision bits each.
    const unsigned k = floorLog2(distance - 1) - 1;
    const std::uint64_t range_start = (1ull << (k + 1)) + 1;
    const std::uint64_t offset = distance - range_start;
    const unsigned code =
        2 * k + 2 + static_cast<unsigned>(offset >> k);
    const std::uint64_t code_base =
        range_start + ((offset >> k) << k);
    return {code, k, code_base};
}

std::uint64_t
TagDistanceCode::rangeStart(unsigned code)
{
    if (code <= 3)
        return code + 1;
    const unsigned k = (code - 2) / 2;
    const std::uint64_t range_start = (1ull << (k + 1)) + 1;
    return range_start + (static_cast<std::uint64_t>((code - 2) & 1) << k);
}

unsigned
TagDistanceCode::precisionOf(unsigned code)
{
    return code <= 3 ? 0 : (code - 2) / 2;
}

TagCodec::TagCodec(unsigned num_bases)
    : numBases_(num_bases),
      bases_(num_bases, 0),
      baseValid_(num_bases, false),
      baseUse_(num_bases, 0)
{
    MORC_CHECK(num_bases == 1 || num_bases == 2,
               "tag codec supports 1 or 2 bases, not %u", num_bases);
}

void
TagCodec::reset()
{
    for (unsigned i = 0; i < numBases_; i++) {
        baseValid_[i] = false;
        baseUse_[i] = 0;
    }
    useClock_ = 0;
}

std::uint32_t
TagCodec::deltaBits(std::uint64_t distance)
{
    if (distance == 0 || distance > kMaxDelta)
        return 0;
    const auto dc = TagDistanceCode::forDistance(distance);
    return kCodeBits + 1 /* sign */ + dc.precisionBits;
}

TagCodec::Plan
TagCodec::plan(std::uint64_t line_number) const
{
    Plan best{0, 0, true};
    std::uint32_t best_bits = kCodeBits + kFullTagBits; // new base cost
    for (unsigned b = 0; b < numBases_; b++) {
        if (!baseValid_[b])
            continue;
        const std::uint64_t distance = line_number > bases_[b]
                                           ? line_number - bases_[b]
                                           : bases_[b] - line_number;
        const std::uint32_t bits = deltaBits(distance);
        if (bits != 0 && bits < best_bits) {
            best_bits = bits;
            best = {b, bits, false};
        }
    }
    if (best.newBase) {
        // Replace the least-recently-used base: a one-off scattered tag
        // (e.g. a write-back) must not evict the base an active fill
        // chain is running on.
        unsigned victim = 0;
        for (unsigned b = 1; b < numBases_; b++) {
            if (!baseValid_[b]) {
                victim = b;
                break;
            }
            if (baseUse_[b] < baseUse_[victim])
                victim = b;
        }
        best.base = victim;
        best.bits = best_bits;
    }
    return best;
}

std::uint32_t
TagCodec::measure(std::uint64_t line_number) const
{
    return overheadBits() + plan(line_number).bits;
}

std::uint32_t
TagCodec::append(std::uint64_t line_number, BitWriter *out)
{
    const Plan p = plan(line_number);
    const std::uint32_t total = overheadBits() + p.bits;
    if (out) {
        out->put(1, 1); // validity
        if (numBases_ > 1)
            out->put(p.base, 1);
        if (p.newBase) {
            out->put(30, kCodeBits);
            out->put(line_number, kFullTagBits);
        } else {
            const std::uint64_t base = bases_[p.base];
            const bool negative = line_number < base;
            const std::uint64_t distance =
                negative ? base - line_number : line_number - base;
            const auto dc = TagDistanceCode::forDistance(distance);
            out->put(dc.code, kCodeBits);
            out->put(negative ? 1 : 0, 1);
            if (dc.precisionBits > 0)
                out->put(distance - dc.rangeBase, dc.precisionBits);
        }
    }
    bases_[p.base] = line_number;
    baseValid_[p.base] = true;
    baseUse_[p.base] = ++useClock_;
    if (p.newBase) {
        newBases_++;
    } else {
        deltas_++;
        deltaBitsTotal_ += p.bits;
    }
    return total;
}

TagDecoder::TagDecoder(unsigned num_bases)
    : numBases_(num_bases),
      bases_(num_bases, 0),
      baseValid_(num_bases, false)
{}

void
TagDecoder::reset()
{
    for (unsigned i = 0; i < numBases_; i++)
        baseValid_[i] = false;
}

std::uint64_t
TagDecoder::next(BitReader &in)
{
    [[maybe_unused]] const auto valid = in.get(1);
    unsigned base = 0;
    if (numBases_ > 1)
        base = static_cast<unsigned>(in.get(1));
    const unsigned code = static_cast<unsigned>(in.get(TagCodec::kCodeBits));
    std::uint64_t tag;
    if (code >= 30) {
        // The base-select bit names the slot the encoder re-seeded.
        tag = in.get(TagCodec::kFullTagBits);
    } else {
        const bool negative = in.get(1) != 0;
        const unsigned precision = TagDistanceCode::precisionOf(code);
        std::uint64_t distance = TagDistanceCode::rangeStart(code);
        if (precision > 0)
            distance += in.get(precision);
        tag = negative ? bases_[base] - distance : bases_[base] + distance;
    }
    bases_[base] = tag;
    baseValid_[base] = true;
    return tag;
}

} // namespace comp
} // namespace morc
