/**
 * @file
 * MORC tag compression (Section 3.2.4, Table 2).
 *
 * Tags appended to a log are encoded as base-delta values against their
 * immediate predecessor using a DEFLATE-style distance code:
 *
 *   code 0-3   -> distance 1-4        (0 precision bits)
 *   code 4-5   -> distance 5-8        (1 bit)
 *   code 6-7   -> distance 9-16       (2 bits)
 *   ...
 *   code 28-29 -> distance 16385-32768 (13 bits)
 *   code 30-31 -> new base (full tag follows)
 *
 * Each entry additionally carries (a) a sign bit, (b) a validity bit,
 * and — in the multi-base variant — (c) a base-selection bit. Distances
 * are in units of 64-byte cache lines; deltas beyond 32768 lines (2 MB)
 * are encoded as a new base.
 */

#ifndef MORC_COMPRESS_TAGCODEC_HH
#define MORC_COMPRESS_TAGCODEC_HH

#include <cstdint>
#include <vector>

#include "snapshot/snapshot.hh"
#include "util/bitstream.hh"
#include "util/types.hh"

namespace morc {
namespace comp {

/** Encoder state for the tags of one log. */
class TagCodec
{
  public:
    /** Width of a full (uncompressed) tag: line number of a 48b address. */
    static constexpr unsigned kFullTagBits = kPhysAddrBits - kLineShift;

    /** Distance code width. */
    static constexpr unsigned kCodeBits = 5;

    /** Largest delta expressible without a new base (lines). */
    static constexpr std::uint64_t kMaxDelta = 32768;

    /**
     * @param num_bases 1 for the basic scheme, 2 for the multi-base
     *                  variant the paper defaults to.
     */
    explicit TagCodec(unsigned num_bases = 2);

    /**
     * Cost in bits of appending the tag for @p line_number, without
     * committing state (for trial compression against multiple logs).
     */
    std::uint32_t measure(std::uint64_t line_number) const;

    /**
     * Append a tag; updates base state. Optionally emits the bit stream.
     * @return bits consumed.
     */
    std::uint32_t append(std::uint64_t line_number,
                         BitWriter *out = nullptr);

    /** Forget all base state (log flush). */
    void reset();

    unsigned numBases() const { return numBases_; }

    /** Diagnostics: appended tag mix. */
    std::uint64_t newBaseCount() const { return newBases_; }
    std::uint64_t deltaCount() const { return deltas_; }
    std::uint64_t deltaBitsTotal() const { return deltaBitsTotal_; }

    /** Per-entry fixed bits: validity plus base-select when present. */
    unsigned
    overheadBits() const
    {
        return 1 + (numBases_ > 1 ? 1 : 0);
    }

    /** Append base state and diagnostic counters. */
    void
    save(snap::Serializer &s) const
    {
        s.beginSection("TAGC");
        s.u32(numBases_);
        s.vecU64(bases_);
        s.vec(baseValid_, [&](bool v) { s.boolean(v); });
        s.vecU64(baseUse_);
        s.u64(useClock_);
        s.u64(newBases_);
        s.u64(deltas_);
        s.u64(deltaBitsTotal_);
        s.endSection();
    }

    /** Restore state written by save(); base count must match. */
    void
    restore(snap::Deserializer &d)
    {
        if (!d.beginSection("TAGC"))
            return;
        const std::uint32_t numBases = d.u32();
        std::vector<std::uint64_t> bases;
        std::vector<bool> valid;
        std::vector<std::uint64_t> use;
        d.vecU64(bases);
        {
            const std::uint64_t n = d.arrayLen(1);
            for (std::uint64_t i = 0; i < n && d.ok(); i++)
                valid.push_back(d.boolean());
        }
        d.vecU64(use);
        const std::uint64_t useClock = d.u64();
        const std::uint64_t newBases = d.u64();
        const std::uint64_t deltas = d.u64();
        const std::uint64_t deltaBitsTotal = d.u64();
        if (d.ok() &&
            (numBases != numBases_ || bases.size() != bases_.size() ||
             valid.size() != baseValid_.size() ||
             use.size() != baseUse_.size())) {
            d.fail("tag codec base-count mismatch");
        }
        d.endSection();
        if (!d.ok())
            return;
        bases_ = std::move(bases);
        baseValid_ = std::move(valid);
        baseUse_ = std::move(use);
        useClock_ = useClock;
        newBases_ = newBases;
        deltas_ = deltas;
        deltaBitsTotal_ = deltaBitsTotal;
    }

  private:
    struct Plan
    {
        unsigned base; // which base the delta is against
        std::uint32_t bits;
        bool newBase;
    };

    Plan plan(std::uint64_t line_number) const;

    /** Bits of a delta encoding (code + sign + precision), or 0 if the
     *  delta needs a new base. */
    static std::uint32_t deltaBits(std::uint64_t distance);

    unsigned numBases_;
    std::vector<std::uint64_t> bases_;
    std::vector<bool> baseValid_;
    std::vector<std::uint64_t> baseUse_; // LRU clocks for base victims
    std::uint64_t useClock_ = 0;
    std::uint64_t newBases_ = 0;
    std::uint64_t deltas_ = 0;
    std::uint64_t deltaBitsTotal_ = 0;
};

/**
 * Decoder for tag streams; reconstructs the appended tag sequence to
 * prove decodability in tests.
 */
class TagDecoder
{
  public:
    explicit TagDecoder(unsigned num_bases = 2);

    /** Decode the next tag entry. */
    std::uint64_t next(BitReader &in);

    void reset();

  private:
    unsigned numBases_;
    std::vector<std::uint64_t> bases_;
    std::vector<bool> baseValid_;
};

/** Distance-code table lookup: code index and precision bits for a
 *  distance in [1, 32768]. Shared by encoder and tests. */
struct TagDistanceCode
{
    unsigned code;
    unsigned precisionBits;
    std::uint64_t rangeBase; // smallest distance of this code

    static TagDistanceCode forDistance(std::uint64_t distance);
    static std::uint64_t rangeStart(unsigned code);
    static unsigned precisionOf(unsigned code);
};

} // namespace comp
} // namespace morc

#endif // MORC_COMPRESS_TAGCODEC_HH
