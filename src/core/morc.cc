#include "core/morc.hh"

#include <algorithm>
#include <cstdlib>
#include <unordered_set>

#include "check/check.hh"
#include "util/rng.hh"
#include "util/sorted_view.hh"

namespace morc {
namespace core {

namespace {

/** Uncompressed per-line tag footprint (tag + state bits). */
constexpr unsigned kRawTagBits = comp::TagCodec::kFullTagBits + 2;

/** Uncompressed line size in bits (compression-disabled mode). */
constexpr unsigned kRawLineBits = kLineSize * 8;

constexpr std::uint64_t kNoFit = ~0ull;

} // namespace

LogCache::LogCache() : LogCache(MorcConfig{}) {}

LogCache::LogCache(const MorcConfig &cfg) : cfg_(cfg)
{
    MORC_CHECK(cfg_.numLogs() >= cfg_.activeLogs + 1,
               "need at least one closed log: %u logs for %u active",
               cfg_.numLogs(), cfg_.activeLogs);
    MORC_CHECK(cfg_.lmtWays >= 1 && cfg_.lmtWays <= 2,
               "LMT supports 1 or 2 ways, not %u", cfg_.lmtWays);
    logs_.reserve(cfg_.numLogs());
    for (unsigned i = 0; i < cfg_.numLogs(); i++)
        logs_.emplace_back(cfg_.lbe, cfg_.tagBases);
    for (unsigned i = 0; i < cfg_.activeLogs; i++) {
        logs_[i].open = true;
        active_.push_back(i);
    }
    // Never-used logs start on the closed FIFO (all trivially
    // reusable).
    for (std::uint32_t i = cfg_.activeLogs; i < cfg_.numLogs(); i++)
        closedFifo_.push_back(i);
    if (!cfg_.unlimitedMeta) {
        std::uint64_t entries = cfg_.lmtEntries();
        // Round down to a power of two for cheap masking.
        entries = 1ull << floorLog2(entries);
        lmt_.resize(entries);
        lmtMask_ = entries - 1;
    }
    // The physical write granule is a log: appends program fresh cells
    // at the tail. Log erasure on reuse is folded into the per-cell
    // endurance budget rather than charged as flips.
    wear_.configure(cfg_.numLogs(), 1);
}

void
LogCache::slotsFor(Addr line_num, std::uint64_t *out) const
{
    const std::uint64_t h = splitmix64(line_num);
    out[0] = h & lmtMask_;
    if (cfg_.lmtWays > 1) {
        // Column-associative rehash: an independent hash of the line.
        out[1] = (h >> 32) & lmtMask_;
        if (out[1] == out[0])
            out[1] = (out[0] + 1) & lmtMask_;
    }
}

bool
LogCache::findResident(Addr line_num, std::uint64_t *slot_out,
                       std::uint32_t *log_out, std::size_t *pos_out)
{
    const auto locate = [&](const LmtEntry &e, std::uint64_t slot) {
        const Log &g = logs_[e.logIdx];
        for (std::size_t p = 0; p < g.lines.size(); p++) {
            if (g.lines[p].valid && g.lines[p].lineNum == line_num) {
                *slot_out = slot;
                *log_out = e.logIdx;
                *pos_out = p;
                return true;
            }
        }
        MORC_CHECK_FAIL("LMT entry for line %llu points at log %u with "
                        "no resident copy",
                        static_cast<unsigned long long>(line_num),
                        e.logIdx);
        return false;
    };

    if (cfg_.unlimitedMeta) {
        auto it = lmtMap_.find(line_num);
        if (it == lmtMap_.end() || !it->second.valid)
            return false;
        return locate(it->second, line_num);
    }
    std::uint64_t slots[2];
    slotsFor(line_num, slots);
    for (unsigned w = 0; w < cfg_.lmtWays; w++) {
        const LmtEntry &e = lmt_[slots[w]];
        if (e.valid && e.lineNum == line_num)
            return locate(e, slots[w]);
    }
    return false;
}

void
LogCache::invalidateEntry(std::uint64_t slot, cache::FillResult &result)
{
    LmtEntry &e = cfg_.unlimitedMeta ? lmtMap_[slot] : lmt_[slot];
    MORC_CHECK(e.valid, "invalidating invalid LMT slot %llu",
               static_cast<unsigned long long>(slot));
    Log &g = logs_[e.logIdx];
    for (auto &line : g.lines) {
        if (line.valid && line.lineNum == e.lineNum) {
            if (e.modified) {
                // Modified data must be decompressed and written back
                // (LMT-conflict eviction, Section 3.1).
                result.writebacks.push_back(
                    {e.lineNum << kLineShift, line.data});
                stats_.victimWritebacks++;
                const std::uint64_t bytes = divCeil(g.dataBits, 8);
                result.bytesDecompressed += bytes;
                result.linesDecompressed++;
                stats_.bytesDecompressed += bytes;
                stats_.linesDecompressed++;
            }
            line.valid = false;
            g.validCount--;
            valid_--;
            e.valid = false;
            if (cfg_.unlimitedMeta)
                lmtMap_.erase(slot);
            return;
        }
    }
    MORC_CHECK_FAIL("dangling LMT entry: slot %llu names line %llu in "
                    "log %u but the log holds no valid copy",
                    static_cast<unsigned long long>(slot),
                    static_cast<unsigned long long>(e.lineNum), e.logIdx);
}

std::uint64_t
LogCache::trialBits(const Log &g, const comp::LbeLinePlan &plan,
                    Addr line_num) const
{
    const std::uint64_t d_bits =
        cfg_.compressionEnabled ? g.lbe.measure(plan) : kRawLineBits;
    const std::uint64_t t_bits =
        cfg_.compressionEnabled ? g.tags.measure(line_num) : kRawTagBits;
    const std::uint64_t log_bits = static_cast<std::uint64_t>(cfg_.logBytes) * 8;
    // An empty log always accepts one line, even when the compressed
    // size exceeds a (pathologically small) log: progress must be
    // possible for incompressible data.
    if (g.lines.empty())
        return d_bits + t_bits;
    if (cfg_.mergedTags) {
        if (g.dataBits + g.tagBits + d_bits + t_bits > log_bits)
            return kNoFit;
    } else {
        if (g.dataBits + d_bits > log_bits)
            return kNoFit;
        if (!cfg_.unlimitedMeta &&
            g.tagBits + t_bits > cfg_.tagBudgetBits()) {
            return kNoFit;
        }
    }
    return d_bits + t_bits;
}

void
LogCache::flushLog(std::uint32_t log_idx, cache::FillResult &result)
{
    Log &g = logs_[log_idx];
    stats_.logFlushes++;
    if (tracer_) {
        tracer_->record(telemetry::EventKind::LogFlush, traceTrack_,
                        log_idx, g.validCount);
    }
    // A whole-log eviction decompresses the entire stream once.
    const std::uint64_t bytes = divCeil(g.dataBits, 8);
    result.bytesDecompressed += bytes;
    result.linesDecompressed += static_cast<std::uint32_t>(g.lines.size());
    stats_.bytesDecompressed += bytes;
    stats_.linesDecompressed += g.lines.size();

    for (const auto &line : g.lines) {
        if (!line.valid)
            continue;
        // Find and clear the owning LMT entry.
        LmtEntry *e = nullptr;
        std::uint64_t slot = 0;
        if (cfg_.unlimitedMeta) {
            auto it = lmtMap_.find(line.lineNum);
            MORC_CHECK(it != lmtMap_.end(),
                       "flushing log %u: valid line %llu missing from "
                       "the unlimited LMT map",
                       log_idx,
                       static_cast<unsigned long long>(line.lineNum));
            e = &it->second;
            slot = line.lineNum;
        } else {
            std::uint64_t slots[2];
            slotsFor(line.lineNum, slots);
            for (unsigned w = 0; w < cfg_.lmtWays; w++) {
                LmtEntry &cand = lmt_[slots[w]];
                if (cand.valid && cand.lineNum == line.lineNum &&
                    cand.logIdx == log_idx) {
                    e = &cand;
                    break;
                }
            }
            MORC_CHECK(e != nullptr,
                       "flushing log %u: valid line %llu has no LMT "
                       "entry in either column-associative way",
                       log_idx,
                       static_cast<unsigned long long>(line.lineNum));
        }
        if (!e)
            continue; // unreachable when checks are compiled out

        if (e->modified) {
            result.writebacks.push_back(
                {line.lineNum << kLineShift, line.data});
            stats_.victimWritebacks++;
        }
        e->valid = false;
        if (cfg_.unlimitedMeta)
            lmtMap_.erase(slot);
        valid_--;
    }
    g.lines.clear();
    g.dataBits = 0;
    g.tagBits = 0;
    g.validCount = 0;
    g.lbe.reset();
    g.tags.reset();
    g.tagStream.clear();
}

void
LogCache::rotateLog(unsigned active_slot, cache::FillResult &result)
{
    Log &closing = logs_[active_[active_slot]];
    closing.open = false;
    closing.closedSeq = ++seqCounter_;

    closedFifo_.push_back(active_[active_slot]);

    // Priority 1: reuse a closed log whose lines are all invalid (no
    // flush needed, Section 3.2.1). Scan a bounded prefix of the FIFO:
    // all-invalid logs are overwhelmingly near its head (they are the
    // oldest), and a bounded scan keeps rotation O(1)-ish even with
    // tens of thousands of logs.
    std::uint32_t chosen = ~0u;
    const std::size_t scan =
        std::min<std::size_t>(closedFifo_.size(), 64);
    for (std::size_t k = 0; k < scan; k++) {
        const std::uint32_t idx = closedFifo_[k];
        Log &g = logs_[idx];
        if (g.validCount != 0)
            continue;
        chosen = idx;
        closedFifo_.erase(closedFifo_.begin() +
                          static_cast<std::ptrdiff_t>(k));
        if (!g.lines.empty()) {
            logReuses_++;
            if (tracer_) {
                tracer_->record(telemetry::EventKind::LogReuse,
                                traceTrack_, idx, g.lines.size());
            }
            g.lines.clear();
            g.dataBits = 0;
            g.tagBits = 0;
            g.lbe.reset();
            g.tags.reset();
            g.tagStream.clear();
        }
        break;
    }

    // Priority 2: FIFO victim among closed logs.
    if (chosen == ~0u) {
        MORC_CHECK(!closedFifo_.empty(),
                   "no closed log to victimize: %zu logs, %zu active",
                   logs_.size(), active_.size());
        chosen = closedFifo_.front();
        closedFifo_.pop_front();
        flushLog(chosen, result);
    }

    logs_[chosen].open = true;
    active_[active_slot] = chosen;
}

void
LogCache::appendLine(std::uint32_t log_idx, Addr line_num,
                     const CacheLine &data, const comp::LbeLinePlan &plan,
                     bool dirty, std::uint64_t slot)
{
    Log &g = logs_[log_idx];
    std::uint32_t d_bits, t_bits;
    std::uint64_t flips;
    if (cfg_.compressionEnabled) {
        // Capture the emitted streams so wear reflects the bits the
        // append actually programs into previously erased cells.
        BitWriter emitted;
        const std::uint64_t tag_start = g.tagStream.sizeBits();
        d_bits = g.lbe.append(plan, &emitted);
        t_bits = g.tags.append(line_num, &g.tagStream);
        flips = energy::popcountBits(emitted.words(),
                                     emitted.sizeBits()) +
                energy::popcountRange(g.tagStream.words(), tag_start,
                                      g.tagStream.sizeBits());
    } else {
        d_bits = kRawLineBits;
        t_bits = kRawTagBits;
        flips = energy::linePopcount(data) +
                energy::popcountBits({line_num}, comp::TagCodec::kFullTagBits);
    }
    chargeWear(log_idx, 0, d_bits + t_bits, flips);
    g.lines.push_back({line_num, true, d_bits, t_bits, data});
    g.dataBits += d_bits;
    g.tagBits += t_bits;
    g.validCount++;

    LmtEntry &e = cfg_.unlimitedMeta ? lmtMap_[slot] : lmt_[slot];
    e.valid = true;
    e.modified = dirty;
    e.logIdx = log_idx;
    e.lineNum = line_num;

    valid_++;
    appended_++;
    stats_.linesCompressed++;
}

cache::ReadResult
LogCache::read(Addr addr)
{
    stats_.reads++;
    cache::ReadResult r;
    const Addr line_num = lineNumber(addr);

    const auto serveHit = [&](const LmtEntry &e) {
        Log &g = logs_[e.logIdx];
        std::size_t pos = 0;
        std::uint64_t prefix_bits = 0;
        for (; pos < g.lines.size(); pos++) {
            prefix_bits += g.lines[pos].dataBits;
            if (g.lines[pos].valid && g.lines[pos].lineNum == line_num)
                break;
        }
        MORC_CHECK(pos < g.lines.size(),
                   "hit line %llu vanished from log %u (%zu lines)",
                   static_cast<unsigned long long>(line_num), e.logIdx,
                   g.lines.size());
        const std::uint64_t bytes = divCeil(prefix_bits, 8);
        const auto tag_cycles = static_cast<std::uint32_t>(
            divCeil(pos + 1, cfg_.tagsPerCycle));
        const auto data_cycles = static_cast<std::uint32_t>(
            divCeil(bytes, cfg_.decompressBytesPerCycle));
        r.hit = true;
        r.data = g.lines[pos].data;
        r.extraLatency += cfg_.parallelTagData
                              ? std::max(tag_cycles, data_cycles)
                              : tag_cycles + data_cycles;
        r.bytesDecompressed += bytes;
        r.linesDecompressed += static_cast<std::uint32_t>(pos + 1);
        stats_.readHits++;
        stats_.bytesDecompressed += bytes;
        stats_.linesDecompressed += pos + 1;
    };

    if (cfg_.unlimitedMeta) {
        auto it = lmtMap_.find(line_num);
        if (it != lmtMap_.end() && it->second.valid)
            serveHit(it->second);
        return r;
    }

    std::uint64_t slots[2];
    slotsFor(line_num, slots);
    for (unsigned w = 0; w < cfg_.lmtWays; w++) {
        const LmtEntry &e = lmt_[slots[w]];
        if (!e.valid)
            continue;
        if (e.lineNum == line_num) {
            serveHit(e);
            return r;
        }
        // LMT aliased-miss: the pointed-to log's tags must be fully
        // decoded to discover the miss (Section 3.1).
        const Log &g = logs_[e.logIdx];
        r.extraLatency += static_cast<std::uint32_t>(
            divCeil(g.lines.size(), cfg_.tagsPerCycle));
        lmtAliasedMisses_++;
    }
    return r;
}

cache::FillResult
LogCache::insert(Addr addr, const CacheLine &data, bool dirty)
{
    stats_.inserts++;
    cache::FillResult result;
    const Addr line_num = lineNumber(addr);

    // Re-append of a resident line (write-back): invalidate the old
    // copy without writing it to memory — the new data supersedes it.
    std::uint64_t slot = 0;
    {
        std::uint64_t old_slot;
        std::uint32_t old_log;
        std::size_t old_pos;
        if (findResident(line_num, &old_slot, &old_log, &old_pos)) {
            Log &g = logs_[old_log];
            g.lines[old_pos].valid = false;
            g.validCount--;
            valid_--;
            if (cfg_.unlimitedMeta) {
                lmtMap_.erase(line_num);
            } else {
                lmt_[old_slot].valid = false;
            }
            slot = old_slot;
        } else if (cfg_.unlimitedMeta) {
            slot = line_num;
        } else {
            // Allocate an LMT slot: prefer an invalid way; otherwise
            // conflict-evict the secondary way's occupant.
            std::uint64_t slots[2];
            slotsFor(line_num, slots);
            bool found = false;
            for (unsigned w = 0; w < cfg_.lmtWays; w++) {
                if (!lmt_[slots[w]].valid) {
                    slot = slots[w];
                    found = true;
                    break;
                }
            }
            if (!found) {
                // Column-associative relocation: before evicting, try
                // to move the secondary way's occupant to its own
                // alternate slot (hash-rehash style).
                slot = slots[cfg_.lmtWays - 1];
                bool relocated = false;
                if (cfg_.lmtWays > 1) {
                    const LmtEntry occupant = lmt_[slot];
                    std::uint64_t occ_slots[2];
                    slotsFor(occupant.lineNum, occ_slots);
                    for (unsigned w = 0; w < cfg_.lmtWays; w++) {
                        if (occ_slots[w] != slot &&
                            !lmt_[occ_slots[w]].valid) {
                            lmt_[occ_slots[w]] = occupant;
                            lmt_[slot].valid = false;
                            relocated = true;
                            break;
                        }
                    }
                }
                if (!relocated) {
                    stats_.lmtConflictEvicts++;
                    if (tracer_) {
                        tracer_->record(
                            telemetry::EventKind::LmtConflictEvict,
                            traceTrack_, slot, lmt_[slot].lineNum);
                    }
                    invalidateEntry(slot, result);
                }
            }
        }
    }

    // Content-aware multi-log selection: trial-compress against every
    // active log, commit to the best; within the fudge margin, seed the
    // least-used log to keep streams diverse (Section 3.2.3). The line
    // is decomposed once (LbeLinePlan) and that plan is shared by all
    // trials and the final append; the scores are cached so the
    // near-tie pass costs no further trials.
    const comp::LbeLinePlan plan = comp::LbeLinePlan::of(data);
    trialScores_.assign(active_.size(), kNoFit);
    const auto choose = [&]() -> int {
        std::uint64_t best = kNoFit, worst = 0;
        int best_slot = -1;
        for (unsigned i = 0; i < active_.size(); i++) {
            const std::uint64_t bits =
                trialBits(logs_[active_[i]], plan, line_num);
            trialScores_[i] = bits;
            if (bits == kNoFit)
                continue;
            if (bits < best) {
                best = bits;
                best_slot = static_cast<int>(i);
            }
            if (bits > worst)
                worst = bits;
        }
        if (best_slot < 0)
            return -1;
        if (worst > 0 &&
            static_cast<double>(worst - best) <=
                cfg_.fudge * static_cast<double>(worst)) {
            // Near-tie: pick the least-used fitting log.
            std::uint64_t least = ~0ull;
            for (unsigned i = 0; i < active_.size(); i++) {
                const Log &g = logs_[active_[i]];
                if (trialScores_[i] == kNoFit)
                    continue;
                const std::uint64_t used = g.dataBits + g.tagBits;
                if (used < least) {
                    least = used;
                    best_slot = static_cast<int>(i);
                }
            }
            if (tracer_) {
                tracer_->record(telemetry::EventKind::FudgeNearTie,
                                traceTrack_,
                                active_[static_cast<unsigned>(best_slot)],
                                worst - best);
            }
        }
        return best_slot;
    };

    int pick = choose();
    if (pick < 0) {
        // Nothing fits: retire the fullest active log and try again
        // with its fresh replacement.
        unsigned fullest = 0;
        std::uint64_t most = 0;
        for (unsigned i = 0; i < active_.size(); i++) {
            const Log &g = logs_[active_[i]];
            const std::uint64_t used = g.dataBits + g.tagBits;
            if (used >= most) {
                most = used;
                fullest = i;
            }
        }
        rotateLog(fullest, result);
        pick = choose();
        MORC_CHECK(pick >= 0,
                   "line %llu fits no active log even after rotating in "
                   "an empty one",
                   static_cast<unsigned long long>(line_num));
        if (pick < 0)
            std::abort(); // an empty log must accept any line
    }

#ifdef MORC_TRACE_APPENDS
    std::fprintf(stderr, "APPEND log=%u line=%llu dirty=%d\n",
                 active_[static_cast<unsigned>(pick)],
                 (unsigned long long)line_num, dirty ? 1 : 0);
#endif
    appendLine(active_[static_cast<unsigned>(pick)], line_num, data, plan,
               dirty, slot);
    result.linesCompressed++;
    return result;
}

std::uint64_t
LogCache::liveLogs() const
{
    std::uint64_t n = 0;
    for (const auto &g : logs_)
        n += g.validCount > 0 ? 1 : 0;
    return n;
}

std::uint64_t
LogCache::allInvalidLogs() const
{
    std::uint64_t n = 0;
    for (const auto &g : logs_)
        n += (!g.lines.empty() && g.validCount == 0) ? 1 : 0;
    return n;
}

double
LogCache::lmtOccupancy() const
{
    const double entries = cfg_.unlimitedMeta
                               ? static_cast<double>(cfg_.lmtEntries())
                               : static_cast<double>(lmt_.size());
    return entries == 0.0 ? 0.0
                          : static_cast<double>(valid_) / entries;
}

double
LogCache::activeFillRatio() const
{
    const double data_budget =
        static_cast<double>(cfg_.logBytes) * 8.0;
    const double budget =
        cfg_.mergedTags
            ? data_budget
            : data_budget + static_cast<double>(cfg_.tagBudgetBits());
    if (budget == 0.0 || active_.empty())
        return 0.0;
    double sum = 0.0;
    for (const std::uint32_t idx : active_) {
        const Log &g = logs_[idx];
        sum += static_cast<double>(g.dataBits + g.tagBits) / budget;
    }
    return sum / static_cast<double>(active_.size());
}

std::uint64_t
LogCache::compressedBytesResident() const
{
    std::uint64_t bits = 0;
    for (const auto &g : logs_)
        bits += g.dataBits + g.tagBits;
    return divCeil(bits, 8);
}

void
LogCache::registerProbes(telemetry::Registry &reg,
                         const std::string &prefix)
{
    cache::Llc::registerProbes(reg, prefix);
    reg.gauge(prefix + ".live_logs",
              [this](Cycles) { return double(liveLogs()); });
    reg.gauge(prefix + ".all_invalid_logs",
              [this](Cycles) { return double(allInvalidLogs()); });
    reg.gauge(prefix + ".lmt_occupancy",
              [this](Cycles) { return lmtOccupancy(); });
    reg.gauge(prefix + ".active_fill_ratio",
              [this](Cycles) { return activeFillRatio(); });
    reg.gauge(prefix + ".compressed_bytes", [this](Cycles) {
        return double(compressedBytesResident());
    });
    reg.counter(prefix + ".log_flushes",
                [this](Cycles) { return double(stats_.logFlushes); });
    reg.counter(prefix + ".log_reuses",
                [this](Cycles) { return double(logReuses_); });
    reg.counter(prefix + ".lmt_conflict_evicts", [this](Cycles) {
        return double(stats_.lmtConflictEvicts);
    });
}

double
LogCache::invalidLineFraction() const
{
    std::uint64_t total = 0, valid = 0;
    for (const auto &g : logs_) {
        total += g.lines.size();
        valid += g.validCount;
    }
    return total == 0
               ? 0.0
               : static_cast<double>(total - valid) /
                     static_cast<double>(total);
}

LogCache::LogSnapshot
LogCache::snapshot() const
{
    LogSnapshot s;
    s.logs = logs_.size();
    const std::uint64_t data_budget =
        static_cast<std::uint64_t>(cfg_.logBytes) * 8;
    const std::uint64_t tag_budget = cfg_.tagBudgetBits();
    for (const auto &g : logs_) {
        s.linesTotal += g.lines.size();
        s.linesValid += g.validCount;
        s.dataBits += g.dataBits;
        s.tagBits += g.tagBits;
        if (10 * g.dataBits > 9 * data_budget)
            s.dataFullLogs++;
        if (!cfg_.mergedTags && 10 * g.tagBits > 9 * tag_budget)
            s.tagFullLogs++;
        s.tagNewBases += g.tags.newBaseCount();
        s.tagDeltas += g.tags.deltaCount();
        s.tagDeltaBits += g.tags.deltaBitsTotal();
    }
    return s;
}

check::AuditReport
LogCache::audit() const
{
    check::AuditReport r;
    const std::uint64_t log_bits =
        static_cast<std::uint64_t>(cfg_.logBytes) * 8;
    const std::uint64_t tag_budget = cfg_.tagBudgetBits();

    // --- Per-log space accounting, budgets, and tag-stream decode. ---
    std::uint64_t lines_valid = 0;
    std::uint64_t lines_total = 0;
    std::unordered_set<Addr> seen_valid; // duplicate-residency detector
    for (std::uint32_t i = 0; i < logs_.size(); i++) {
        const Log &g = logs_[i];
        std::uint64_t data_bits = 0, tag_bits = 0;
        std::uint32_t valid_count = 0;
        for (const auto &line : g.lines) {
            data_bits += line.dataBits;
            tag_bits += line.tagBits;
            if (!line.valid)
                continue;
            valid_count++;
            r.require(seen_valid.insert(line.lineNum).second,
                      "line %llu is valid in log %u but already valid "
                      "elsewhere",
                      static_cast<unsigned long long>(line.lineNum), i);
        }
        lines_valid += valid_count;
        lines_total += g.lines.size();
        r.require(data_bits == g.dataBits,
                  "log %u accounts %llu data bits, lines sum to %llu", i,
                  static_cast<unsigned long long>(g.dataBits),
                  static_cast<unsigned long long>(data_bits));
        r.require(tag_bits == g.tagBits,
                  "log %u accounts %llu tag bits, lines sum to %llu", i,
                  static_cast<unsigned long long>(g.tagBits),
                  static_cast<unsigned long long>(tag_bits));
        r.require(valid_count == g.validCount,
                  "log %u counts %u valid lines, walk found %u", i,
                  g.validCount, valid_count);
        // Budget enforcement. A single line may overflow a
        // (pathologically small) log: progress must stay possible for
        // incompressible data (see trialBits).
        if (g.lines.size() > 1) {
            if (cfg_.mergedTags) {
                r.require(g.dataBits + g.tagBits <= log_bits,
                          "merged log %u holds %llu data + %llu tag "
                          "bits, budget %llu",
                          i, static_cast<unsigned long long>(g.dataBits),
                          static_cast<unsigned long long>(g.tagBits),
                          static_cast<unsigned long long>(log_bits));
            } else {
                r.require(g.dataBits <= log_bits,
                          "log %u holds %llu data bits, budget %llu", i,
                          static_cast<unsigned long long>(g.dataBits),
                          static_cast<unsigned long long>(log_bits));
                if (!cfg_.unlimitedMeta) {
                    r.require(g.tagBits <= tag_budget,
                              "log %u holds %llu tag bits, budget %llu",
                              i,
                              static_cast<unsigned long long>(g.tagBits),
                              static_cast<unsigned long long>(tag_budget));
                }
            }
        }
        // The compressed tag stream must decode back to exactly the
        // appended line numbers, valid and invalidated alike (the
        // hardware's tag walk sees both).
        if (cfg_.compressionEnabled) {
            const bool sized =
                r.require(g.tagStream.sizeBits() == g.tagBits,
                          "log %u tag stream holds %llu bits, "
                          "accounting says %llu",
                          i,
                          static_cast<unsigned long long>(
                              g.tagStream.sizeBits()),
                          static_cast<unsigned long long>(g.tagBits));
            if (sized) {
                BitReader in(g.tagStream);
                comp::TagDecoder dec(cfg_.tagBases);
                bool decoded = true;
                for (std::size_t p = 0; p < g.lines.size(); p++) {
                    const std::uint64_t want = g.lines[p].lineNum;
                    const std::uint64_t got = dec.next(in);
                    if (!r.require(got == want,
                                   "log %u tag %zu decodes to line "
                                   "%llu, appended line %llu",
                                   i, p,
                                   static_cast<unsigned long long>(got),
                                   static_cast<unsigned long long>(want))) {
                        decoded = false;
                        break;
                    }
                }
                if (decoded) {
                    r.require(in.remaining() == 0,
                              "log %u tag stream has %llu undecoded "
                              "bits after %zu tags",
                              i,
                              static_cast<unsigned long long>(
                                  in.remaining()),
                              g.lines.size());
                }
            }
        }
    }
    r.require(lines_valid == valid_,
              "valid-line counter %llu disagrees with %llu valid log "
              "lines",
              static_cast<unsigned long long>(valid_),
              static_cast<unsigned long long>(lines_valid));
    r.require(appended_ >= lines_total,
              "append counter %llu below %llu resident line records",
              static_cast<unsigned long long>(appended_),
              static_cast<unsigned long long>(lines_total));

    // --- Active set / closed-FIFO partition. ---
    r.require(active_.size() == cfg_.activeLogs,
              "%zu active logs, configured %u", active_.size(),
              cfg_.activeLogs);
    // 1 = active, 2 = on the closed FIFO.
    std::vector<std::uint8_t> membership(logs_.size(), 0);
    for (std::uint32_t idx : active_) {
        if (!r.require(idx < logs_.size(),
                       "active log index %u out of range (%zu logs)", idx,
                       logs_.size()))
            continue;
        r.require(logs_[idx].open, "active log %u is not open", idx);
        r.require(membership[idx] == 0, "log %u active twice", idx);
        membership[idx] |= 1;
    }
    std::uint64_t prev_seq = 0;
    for (std::size_t k = 0; k < closedFifo_.size(); k++) {
        const std::uint32_t idx = closedFifo_[k];
        if (!r.require(idx < logs_.size(),
                       "FIFO log index %u out of range (%zu logs)", idx,
                       logs_.size()))
            continue;
        const Log &g = logs_[idx];
        r.require(!g.open, "closed-FIFO log %u is open", idx);
        r.require(membership[idx] == 0,
                  "log %u appears twice in active/FIFO bookkeeping", idx);
        membership[idx] |= 2;
        // Victims are taken oldest-first, so close sequence numbers
        // must be non-decreasing front to back.
        r.require(g.closedSeq >= prev_seq,
                  "FIFO position %zu: log %u closed at seq %llu after a "
                  "predecessor closed at %llu",
                  k, idx, static_cast<unsigned long long>(g.closedSeq),
                  static_cast<unsigned long long>(prev_seq));
        prev_seq = g.closedSeq;
        r.require(g.closedSeq <= seqCounter_,
                  "log %u closed at seq %llu beyond counter %llu", idx,
                  static_cast<unsigned long long>(g.closedSeq),
                  static_cast<unsigned long long>(seqCounter_));
    }
    for (std::uint32_t i = 0; i < logs_.size(); i++) {
        r.require(membership[i] != 0,
                  "log %u is neither active nor on the closed FIFO", i);
        r.require(logs_[i].open == (membership[i] == 1),
                  "log %u open flag %d disagrees with its membership", i,
                  logs_[i].open ? 1 : 0);
    }

    // --- LMT <-> log cross-consistency, both directions. ---
    std::uint64_t lmt_valid = 0;
    const auto check_entry = [&](const LmtEntry &e, const char *where,
                                 unsigned long long slot) {
        lmt_valid++;
        if (!r.require(e.logIdx < logs_.size(),
                       "%s %llu points at log %u out of range", where,
                       slot, e.logIdx))
            return;
        const Log &g = logs_[e.logIdx];
        std::uint32_t copies = 0;
        for (const auto &line : g.lines) {
            if (line.valid && line.lineNum == e.lineNum)
                copies++;
        }
        r.require(copies == 1,
                  "%s %llu names line %llu in log %u, which holds %u "
                  "valid copies",
                  where, slot,
                  static_cast<unsigned long long>(e.lineNum), e.logIdx,
                  copies);
    };
    if (cfg_.unlimitedMeta) {
        // Sorted so multi-failure audit reports list entries in a
        // stable order (AuditReport keeps every message).
        for (const auto *kv : util::sortedView(lmtMap_)) {
            const Addr line_num = kv->first;
            const LmtEntry &e = kv->second;
            r.require(e.valid,
                      "unlimited LMT retains invalid entry for line %llu",
                      static_cast<unsigned long long>(line_num));
            r.require(e.lineNum == line_num,
                      "unlimited LMT key %llu stores entry for line %llu",
                      static_cast<unsigned long long>(line_num),
                      static_cast<unsigned long long>(e.lineNum));
            check_entry(e, "map entry",
                        static_cast<unsigned long long>(line_num));
        }
    } else {
        for (std::uint64_t slot = 0; slot < lmt_.size(); slot++) {
            const LmtEntry &e = lmt_[slot];
            if (!e.valid)
                continue;
            // Column-associativity: an entry must live in one of its
            // line's two candidate slots.
            std::uint64_t slots[2] = {0, 0};
            slotsFor(e.lineNum, slots);
            bool placed = slot == slots[0];
            for (unsigned w = 1; w < cfg_.lmtWays; w++)
                placed = placed || slot == slots[w];
            r.require(placed,
                      "LMT slot %llu holds line %llu whose ways are "
                      "%llu/%llu",
                      static_cast<unsigned long long>(slot),
                      static_cast<unsigned long long>(e.lineNum),
                      static_cast<unsigned long long>(slots[0]),
                      static_cast<unsigned long long>(
                          cfg_.lmtWays > 1 ? slots[1] : slots[0]));
            check_entry(e, "LMT slot",
                        static_cast<unsigned long long>(slot));
        }
    }
    r.require(lmt_valid == valid_,
              "%llu valid LMT entries for %llu valid lines",
              static_cast<unsigned long long>(lmt_valid),
              static_cast<unsigned long long>(valid_));
    // Reverse direction: every valid line is reachable through the LMT.
    for (std::uint32_t i = 0; i < logs_.size(); i++) {
        for (const auto &line : logs_[i].lines) {
            if (!line.valid)
                continue;
            std::uint32_t owners = 0;
            if (cfg_.unlimitedMeta) {
                const auto it = lmtMap_.find(line.lineNum);
                if (it != lmtMap_.end() && it->second.valid &&
                    it->second.logIdx == i &&
                    it->second.lineNum == line.lineNum) {
                    owners++;
                }
            } else {
                std::uint64_t slots[2] = {0, 0};
                slotsFor(line.lineNum, slots);
                for (unsigned w = 0; w < cfg_.lmtWays; w++) {
                    const LmtEntry &e = lmt_[slots[w]];
                    if (e.valid && e.lineNum == line.lineNum &&
                        e.logIdx == i) {
                        owners++;
                    }
                }
            }
            r.require(owners == 1,
                      "valid line %llu in log %u has %u owning LMT "
                      "entries",
                      static_cast<unsigned long long>(line.lineNum), i,
                      owners);
        }
    }
    return r;
}

bool
LogCache::debugCorruptLmt(std::uint64_t seed)
{
    if (cfg_.unlimitedMeta) {
        const LmtEntry *target = nullptr;
        Addr best = 0;
        // Deterministic victim: the smallest resident line number. A
        // pure min-reduction is order-invariant, so the hash-order walk
        // cannot escape. morc-analyze: allow(unordered-iteration-escape)
        for (const auto &[line_num, e] : lmtMap_) {
            if (!e.valid)
                continue;
            if (!target || line_num < best) {
                target = &e;
                best = line_num;
            }
        }
        if (!target)
            return false;
        lmtMap_[best].lineNum ^= 1;
        return true;
    }
    const std::uint64_t n = lmt_.size();
    const std::uint64_t start = splitmix64(seed) & lmtMask_;
    for (std::uint64_t off = 0; off < n; off++) {
        LmtEntry &e = lmt_[(start + off) & lmtMask_];
        if (e.valid) {
            e.lineNum ^= 1;
            return true;
        }
    }
    return false;
}

comp::LbeStats
LogCache::lbeStats() const
{
    comp::LbeStats sum;
    for (const auto &g : logs_) {
        const comp::LbeStats &s = g.lbe.stats();
        for (int i = 0; i < static_cast<int>(comp::LbeSymbol::NumSymbols);
             i++) {
            sum.count[i] += s.count[i];
            sum.zeroCount[i] += s.zeroCount[i];
        }
    }
    return sum;
}

void
LogCache::saveState(snap::Serializer &s) const
{
    s.beginSection("MORC");
    // Structural + policy fingerprint: everything that shapes state
    // layout or future behavior. Doubles compare bit-exactly.
    s.u64(cfg_.capacityBytes);
    s.u32(cfg_.logBytes);
    s.u32(cfg_.activeLogs);
    s.u32(cfg_.lmtFactor);
    s.u32(cfg_.lmtWays);
    s.boolean(cfg_.mergedTags);
    s.f64(cfg_.tagStoreFactor);
    s.u32(cfg_.tagBases);
    s.f64(cfg_.fudge);
    s.boolean(cfg_.compressionEnabled);
    s.boolean(cfg_.unlimitedMeta);

    s.u64(valid_);
    s.u64(appended_);
    s.u64(seqCounter_);
    s.u64(logReuses_);
    s.u64(lmtAliasedMisses_);
    stats_.save(s);
    wear_.save(s);

    s.vec(logs_, [&](const Log &g) {
        s.u64(g.dataBits);
        s.u64(g.tagBits);
        s.u32(g.validCount);
        s.boolean(g.open);
        s.u64(g.closedSeq);
        s.vec(g.lines, [&](const LogLine &l) {
            s.u64(l.lineNum);
            s.boolean(l.valid);
            s.u32(l.dataBits);
            s.u32(l.tagBits);
            s.bytes(l.data.bytes.data(), kLineSize);
        });
        g.lbe.save(s);
        g.tags.save(s);
        s.vecU64(g.tagStream.words());
        s.u64(g.tagStream.sizeBits());
    });

    s.vecU32(active_);
    std::vector<std::uint32_t> fifo(closedFifo_.begin(),
                                    closedFifo_.end());
    s.vecU32(fifo);

    s.vec(lmt_, [&](const LmtEntry &e) {
        s.boolean(e.valid);
        s.boolean(e.modified);
        s.u32(e.logIdx);
        s.u64(e.lineNum);
    });

    // Unlimited-metadata map, sorted by line number for determinism.
    const auto kv = util::sortedView(lmtMap_);
    s.u64(kv.size());
    for (const auto *e : kv) {
        s.u64(e->first);
        s.boolean(e->second.valid);
        s.boolean(e->second.modified);
        s.u32(e->second.logIdx);
        s.u64(e->second.lineNum);
    }
    s.endSection();
}

void
LogCache::restoreState(snap::Deserializer &d)
{
    if (!d.beginSection("MORC"))
        return;
    const std::uint64_t capacity = d.u64();
    const std::uint32_t logBytes = d.u32();
    const std::uint32_t activeLogs = d.u32();
    const std::uint32_t lmtFactor = d.u32();
    const std::uint32_t lmtWays = d.u32();
    const bool mergedTags = d.boolean();
    const double tagStoreFactor = d.f64();
    const std::uint32_t tagBases = d.u32();
    const double fudge = d.f64();
    const bool compressionEnabled = d.boolean();
    const bool unlimitedMeta = d.boolean();
    if (d.ok() &&
        (capacity != cfg_.capacityBytes || logBytes != cfg_.logBytes ||
         activeLogs != cfg_.activeLogs || lmtFactor != cfg_.lmtFactor ||
         lmtWays != cfg_.lmtWays || mergedTags != cfg_.mergedTags ||
         tagStoreFactor != cfg_.tagStoreFactor ||
         tagBases != cfg_.tagBases || fudge != cfg_.fudge ||
         compressionEnabled != cfg_.compressionEnabled ||
         unlimitedMeta != cfg_.unlimitedMeta)) {
        d.fail("MORC configuration mismatch (snapshot was taken with "
               "different log/LMT sizing or policy knobs)");
    }

    const std::uint64_t valid = d.u64();
    const std::uint64_t appended = d.u64();
    const std::uint64_t seqCounter = d.u64();
    const std::uint64_t logReuses = d.u64();
    const std::uint64_t lmtAliasedMisses = d.u64();
    cache::LlcStats stats;
    stats.restore(d);
    energy::WearTracker wear = wear_;
    wear.restore(d);

    const std::uint64_t numLogs = d.arrayLen(8);
    if (d.ok() && numLogs != logs_.size()) {
        d.fail("MORC log count mismatch");
        d.endSection();
        return;
    }
    std::vector<Log> logs;
    logs.reserve(static_cast<std::size_t>(numLogs));
    for (std::uint64_t i = 0; i < numLogs && d.ok(); i++) {
        Log g(cfg_.lbe, cfg_.tagBases);
        g.dataBits = d.u64();
        g.tagBits = d.u64();
        g.validCount = d.u32();
        g.open = d.boolean();
        g.closedSeq = d.u64();
        d.readVec(g.lines, 8 + 1 + 4 + 4 + kLineSize, [&] {
            LogLine l;
            l.lineNum = d.u64();
            l.valid = d.boolean();
            l.dataBits = d.u32();
            l.tagBits = d.u32();
            d.bytes(l.data.bytes.data(), kLineSize);
            return l;
        });
        g.lbe.restore(d);
        g.tags.restore(d);
        std::vector<std::uint64_t> words;
        d.vecU64(words);
        const std::uint64_t bits = d.u64();
        if (d.ok() && (bits + 63) / 64 != words.size()) {
            d.fail("MORC tag-stream bit count disagrees with its "
                   "word count");
        }
        if (d.ok())
            g.tagStream.restore(std::move(words), bits);
        logs.push_back(std::move(g));
    }

    std::vector<std::uint32_t> active;
    d.vecU32(active);
    std::vector<std::uint32_t> fifo;
    d.vecU32(fifo);

    std::vector<LmtEntry> lmt;
    d.readVec(lmt, 1 + 1 + 4 + 8, [&] {
        LmtEntry e;
        e.valid = d.boolean();
        e.modified = d.boolean();
        e.logIdx = d.u32();
        e.lineNum = d.u64();
        return e;
    });

    std::unordered_map<Addr, LmtEntry> lmtMap;
    {
        const std::uint64_t n = d.arrayLen(8 + 1 + 1 + 4 + 8);
        lmtMap.reserve(static_cast<std::size_t>(n));
        for (std::uint64_t i = 0; i < n && d.ok(); i++) {
            const Addr key = d.u64();
            LmtEntry e;
            e.valid = d.boolean();
            e.modified = d.boolean();
            e.logIdx = d.u32();
            e.lineNum = d.u64();
            lmtMap.emplace(key, e);
        }
    }

    if (d.ok() && (active.size() != active_.size() ||
                   lmt.size() != lmt_.size())) {
        d.fail("MORC active-set or LMT sizing mismatch");
    }
    // Bounds: every log reference must stay inside logs_ so a restored
    // instance can never index out of range.
    const auto logIdxOk = [&](std::uint32_t idx) {
        return idx < numLogs;
    };
    if (d.ok()) {
        for (std::uint32_t a : active) {
            if (!logIdxOk(a)) {
                d.fail("MORC active log index out of range");
                break;
            }
        }
        for (std::uint32_t f : fifo) {
            if (!logIdxOk(f)) {
                d.fail("MORC FIFO log index out of range");
                break;
            }
        }
        for (const LmtEntry &e : lmt) {
            if (e.valid && !logIdxOk(e.logIdx)) {
                d.fail("MORC LMT entry log index out of range");
                break;
            }
        }
        for (const auto &e : lmtMap) {
            if (e.second.valid && !logIdxOk(e.second.logIdx)) {
                d.fail("MORC LMT-map entry log index out of range");
                break;
            }
        }
    }
    d.endSection();
    if (!d.ok())
        return;

    valid_ = valid;
    appended_ = appended;
    seqCounter_ = seqCounter;
    logReuses_ = logReuses;
    lmtAliasedMisses_ = lmtAliasedMisses;
    stats_ = stats;
    wear_ = std::move(wear);
    logs_ = std::move(logs);
    active_ = std::move(active);
    closedFifo_.assign(fifo.begin(), fifo.end());
    lmt_ = std::move(lmt);
    lmtMap_ = std::move(lmtMap);
}

} // namespace core
} // namespace morc
