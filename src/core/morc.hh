/**
 * @file
 * MORC: the log-based, manycore-oriented compressed LLC (Section 3).
 *
 * Storage is divided into fixed-size logs. Cache lines are compressed
 * with LBE and *appended* to one of several active logs (content-aware
 * multi-log selection); tags are base-delta compressed and appended
 * alongside. A Line-Map Table (LMT) — over-provisioned for the maximum
 * compression ratio and 2-way column-associative — redirects addresses
 * to logs. In-place modification is impossible: write-backs re-append
 * and invalidate the old copy. Space is reclaimed by whole-log eviction
 * (FIFO, with priority reuse of all-invalid logs).
 *
 * Reads pay a position-dependent decompression latency: the log must be
 * decoded from its beginning up to the requested line (16 B/cycle output,
 * after the compressed tags are decoded at 8 tags/cycle) — the paper's
 * central throughput-for-latency trade.
 */

#ifndef MORC_CORE_MORC_HH
#define MORC_CORE_MORC_HH

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "cache/llc.hh"
#include "compress/lbe.hh"
#include "compress/tagcodec.hh"

namespace morc {
namespace core {

/** All MORC sizing and policy knobs (defaults = the paper's Section 4). */
struct MorcConfig
{
    /** Uncompressed data capacity. */
    std::uint64_t capacityBytes = 128 * 1024;

    /** Log size; 512 B balances ratio against decompression latency. */
    unsigned logBytes = 512;

    /** Active logs for content-aware multi-log compression. */
    unsigned activeLogs = 8;

    /** LMT entries per uncompressed line (max compression ratio). */
    unsigned lmtFactor = 8;

    /** LMT associativity (2 = column-associative, Section 3.2.2). */
    unsigned lmtWays = 2;

    /** MORCMerged: tags overflow into the data log (Section 3.2.6). */
    bool mergedTags = false;

    /** Separate tag store scale, in multiples of a log's uncompressed
     *  tag footprint (the evaluated MORC uses 2x). */
    double tagStoreFactor = 2.0;

    /** Bases tracked by the tag codec (2 in the default config). */
    unsigned tagBases = 2;

    /** Multi-log tie margin: within this, seed the least-used log. */
    double fudge = 0.05;

    /** Disable LBE (lines stored raw); used by the Figure 12 study. */
    bool compressionEnabled = true;

    /** Unlimited tags + LMT entries; used by the Figure 13 limit study. */
    bool unlimitedMeta = false;

    /** Decompressor output rate (Table 5: LBE does 16 B/cycle). */
    unsigned decompressBytesPerCycle = 16;

    /** Compressed-tag decode rate (Section 3.2.4: 8 tags/cycle). */
    unsigned tagsPerCycle = 8;

    /** Access tags and data in parallel instead of serially. The paper
     *  evaluates the serial arrangement to save energy (Section 3.2.4:
     *  "we have chosen in our results to access tags and then data
     *  sequentially"); parallel overlaps the two decoders, so the
     *  access costs max(tag, data) instead of tag + data cycles. */
    bool parallelTagData = false;

    comp::LbeConfig lbe{};

    unsigned numLogs() const
    {
        return static_cast<unsigned>(capacityBytes / logBytes);
    }

    std::uint64_t lmtEntries() const
    {
        return lmtFactor * (capacityBytes / kLineSize);
    }

    /** Tag budget per log in bits (separate tag store). */
    std::uint64_t tagBudgetBits() const
    {
        const double uncompressed =
            static_cast<double>(logBytes / kLineSize) *
            (comp::TagCodec::kFullTagBits + 2);
        return static_cast<std::uint64_t>(tagStoreFactor * uncompressed);
    }
};

/** The MORC log-structured compressed cache. */
class LogCache : public cache::Llc
{
  public:
    explicit LogCache(const MorcConfig &cfg);
    LogCache();

    cache::ReadResult read(Addr addr) override;
    cache::FillResult insert(Addr addr, const CacheLine &data, bool dirty) override;

    std::uint64_t validLines() const override { return valid_; }
    std::uint64_t capacityBytes() const override { return cfg_.capacityBytes; }
    std::string name() const override
    {
        return cfg_.mergedTags ? "MORCMerged" : "MORC";
    }

    const MorcConfig &config() const { return cfg_; }

    /** Fraction of appended lines that are now invalid (Figure 12). */
    double invalidLineFraction() const;

    /** Whole-log evictions (flushes) so far. */
    std::uint64_t logFlushes() const { return stats_.logFlushes; }

    /** All-invalid log reuses (flush avoided). */
    std::uint64_t logReuses() const { return logReuses_; }

    /** LMT conflict evictions. */
    std::uint64_t
    lmtConflictEvictions() const
    {
        return stats_.lmtConflictEvicts;
    }

    /** Reads that found a valid LMT entry but missed on the tag check. */
    std::uint64_t lmtAliasedMisses() const { return lmtAliasedMisses_; }

    /** Logs holding at least one valid line. */
    std::uint64_t liveLogs() const;

    /** Non-empty logs whose every line is invalid (free to reuse). */
    std::uint64_t allInvalidLogs() const;

    /** Fraction of LMT entries in use (valid lines over capacity;
     *  unlimited-metadata mode reports against lmtEntries()). */
    double lmtOccupancy() const;

    /** Mean fill (data + tag bits over the data+tag budget) of the
     *  active logs — how full the append frontier runs. */
    double activeFillRatio() const;

    /** Compressed bytes currently resident across all logs. */
    std::uint64_t compressedBytesResident() const;

    /** MORC probe catalog on top of the base Llc set: live_logs,
     *  all_invalid_logs, lmt_occupancy, active_fill_ratio,
     *  compressed_bytes plus the flush/reuse/conflict counters. */
    void registerProbes(telemetry::Registry &reg,
                        const std::string &prefix) override;

    /** Aggregated LBE symbol statistics across all logs (Figure 7). */
    comp::LbeStats lbeStats() const;

    /** Aggregate log occupancy snapshot (diagnostics and benches). */
    struct LogSnapshot
    {
        std::uint64_t logs = 0;
        std::uint64_t linesTotal = 0;
        std::uint64_t linesValid = 0;
        std::uint64_t dataBits = 0;
        std::uint64_t tagBits = 0;
        std::uint64_t dataFullLogs = 0; //< logs >90% data-full
        std::uint64_t tagFullLogs = 0;  //< logs >90% tag-budget-full
        std::uint64_t tagNewBases = 0;  //< cumulative new-base tags
        std::uint64_t tagDeltas = 0;    //< cumulative delta tags
        std::uint64_t tagDeltaBits = 0; //< cumulative delta payload bits
    };

    LogSnapshot snapshot() const;

    /**
     * Full structural audit (check/auditor.hh): per-log space
     * accounting against the data/tag budgets, tag-stream re-decode
     * through the base-delta codec, LMT<->log cross-consistency in both
     * directions, FIFO victim-queue integrity, and global counter
     * conservation. Deterministic and side-effect free.
     */
    check::AuditReport audit() const override;

    /** Append every log (lines, LBE dictionaries, tag codec bases,
     *  compressed tag streams), the LMT, FIFO, and counters. */
    void saveState(snap::Serializer &s) const override;

    /** Restore state written by saveState(); the MorcConfig must match
     *  structurally (log/LMT sizing, policy knobs). */
    void restoreState(snap::Deserializer &d) override;

    /**
     * Test-only fault injection: corrupt one valid LMT entry (flip the
     * low bit of its stored line number), chosen deterministically from
     * @p seed. Returns false when no valid entry exists. Used by the
     * morc_check mutation test to prove the auditor *detects* a broken
     * LMT rather than silently passing.
     */
    bool debugCorruptLmt(std::uint64_t seed);

  private:
    /** One line appended to a log. */
    struct LogLine
    {
        Addr lineNum;
        bool valid;
        std::uint32_t dataBits;
        std::uint32_t tagBits;
        CacheLine data;
    };

    /** One log: stream state plus resident line records. */
    struct Log
    {
        std::vector<LogLine> lines;
        std::uint64_t dataBits = 0;
        std::uint64_t tagBits = 0;
        std::uint32_t validCount = 0;
        bool open = false;
        std::uint64_t closedSeq = 0;
        comp::LbeEncoder lbe;
        comp::TagCodec tags;
        /** The log's actual compressed tag stream. The hardware decodes
         *  it on every access; the simulator charges that latency from
         *  counts, and the auditor re-decodes the stream to prove it
         *  reproduces exactly the appended line numbers. */
        BitWriter tagStream;

        Log(const comp::LbeConfig &lbe_cfg, unsigned bases)
            : lbe(lbe_cfg), tags(bases)
        {}
    };

    /** An LMT entry. Hardware stores only {state, log index}; lineNum is
     *  simulator bookkeeping standing in for the tag check the hardware
     *  performs against the log's compressed tags (hit/miss outcomes and
     *  charged latencies are identical; see read()). */
    struct LmtEntry
    {
        bool valid = false;
        bool modified = false;
        std::uint32_t logIdx = 0;
        Addr lineNum = 0;
    };

    /** Candidate LMT slots for a line (column-associative ways). */
    void slotsFor(Addr line_num, std::uint64_t *out) const;

    /** Locate a resident line: LMT slot + position in its log. */
    bool findResident(Addr line_num, std::uint64_t *slot_out,
                      std::uint32_t *log_out, std::size_t *pos_out);

    /** Invalidate the resident copy a valid LMT entry points to,
     *  writing it back if modified. */
    void invalidateEntry(std::uint64_t slot, cache::FillResult &result);

    /** Trial-compress a line (pre-decomposed as @p plan) against log
     *  @p g. Returns total bits or ~0 if it does not fit. The plan is
     *  computed once per insert and shared by all 8 active-log trials
     *  (batched trial compression). */
    std::uint64_t trialBits(const Log &g, const comp::LbeLinePlan &plan,
                            Addr line_num) const;

    /** Close an active log and activate a replacement. */
    void rotateLog(unsigned active_slot, cache::FillResult &result);

    /** Flush a victim log: write back modified lines, invalidate LMT. */
    void flushLog(std::uint32_t log_idx, cache::FillResult &result);

    /** Append @p data (pre-decomposed as @p plan) to log @p g; updates
     *  the LMT entry at @p slot. */
    void appendLine(std::uint32_t log_idx, Addr line_num,
                    const CacheLine &data, const comp::LbeLinePlan &plan,
                    bool dirty, std::uint64_t slot);

    MorcConfig cfg_;
    std::vector<Log> logs_;
    std::vector<std::uint32_t> active_; // indices of active logs
    /** Closed logs in close order (FIFO victims; reuse scans its head). */
    std::deque<std::uint32_t> closedFifo_;

    /** Finite LMT (default mode). */
    std::vector<LmtEntry> lmt_;
    std::uint64_t lmtMask_ = 0; // morc-analyze: allow(snapshot-completeness) derived: lmt_.size() - 1

    /** Unlimited-metadata mode uses a map keyed by line number; the
     *  "slot" is the line number itself. */
    std::unordered_map<Addr, LmtEntry> lmtMap_;

    /** Per-active-log trial scores for the current insert, cached so
     *  the near-tie fudge pass reuses them instead of re-trialing
     *  (trialBits is pure, so the cached scores are exact). Reused
     *  across inserts to avoid per-insert allocation. */
    std::vector<std::uint64_t> trialScores_; // morc-analyze: allow(snapshot-completeness) re-assigned per insert

    std::uint64_t valid_ = 0;
    std::uint64_t appended_ = 0;
    std::uint64_t seqCounter_ = 0;
    // Flush and conflict-evict counts live in stats_ (LlcStats) so the
    // banked director and the report see them like any other counter.
    std::uint64_t logReuses_ = 0;
    std::uint64_t lmtAliasedMisses_ = 0;
};

} // namespace core
} // namespace morc

#endif // MORC_CORE_MORC_HH
