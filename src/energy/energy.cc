#include "energy/energy.hh"

namespace morc {
namespace energy {

const std::vector<OperationEnergy> &
table1()
{
    static const std::vector<OperationEnergy> kTable = {
        {"64b comparison (65nm)", 2e-12},
        {"64b access 128KB SRAM (32nm)", 4e-12},
        {"64b floating point op (45nm)", 45e-12},
        {"64b transfer across 15mm on-chip", 375e-12},
        {"64b transfer across main-board", 2.5e-9},
        {"64b access to DDR3", 9.35e-9},
    };
    return kTable;
}

EnergyBreakdown
integrate(const EnergyEvents &events, Engine engine,
          const EnergyParams &params, double llc_capacity_ratio,
          unsigned cores)
{
    EnergyBreakdown out;
    const double seconds =
        static_cast<double>(events.cycles) / params.clockHz;
    out.staticJ = seconds * cores *
                  (params.l1StaticW +
                   params.llcStaticScaled(llc_capacity_ratio) +
                   params.dramStaticW);
    out.dramJ = static_cast<double>(events.dramAccesses) *
                params.dramAccessJ;
    out.sramJ = static_cast<double>(events.l1Accesses) * params.l1AccessJ +
                static_cast<double>(events.llcAccesses) * params.llcDataJ;

    double comp = 0, decomp = 0;
    switch (engine) {
      case Engine::CPack:
        comp = params.cpackCompJ;
        decomp = params.cpackDecompJ;
        break;
      case Engine::Sc2:
        comp = params.sc2CompJ;
        decomp = params.sc2DecompJ;
        break;
      case Engine::Lbe:
        comp = params.lbeCompJ;
        decomp = params.lbeDecompJ;
        break;
      case Engine::None:
        break;
    }
    out.compJ = static_cast<double>(events.linesCompressed) * comp;
    out.decompJ = static_cast<double>(events.linesDecompressed) * decomp;
    return out;
}

} // namespace energy
} // namespace morc
