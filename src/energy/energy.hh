/**
 * @file
 * Memory-subsystem energy model (paper Tables 1 and 7).
 *
 * The paper reduces CACTI/Micron models to fixed per-event energies and
 * static powers; this module embeds those published constants and
 * integrates event counts into Joules. Core energy is excluded, matching
 * Section 5.3 ("including compression engine but not CPU core energy").
 */

#ifndef MORC_ENERGY_ENERGY_HH
#define MORC_ENERGY_ENERGY_HH

#include <cstdint>
#include <string>
#include <vector>

namespace morc {
namespace energy {

/** Table 1: energy of on-chip and off-chip operations on 64 b of data. */
struct OperationEnergy
{
    const char *operation;
    double joules;
};

/** The six rows of Table 1 (comparison 2 pJ ... DDR3 9.35 nJ). */
const std::vector<OperationEnergy> &table1();

/** Table 7 constants (32 nm; per-line access energies). */
struct EnergyParams
{
    // Static power, per core.
    double l1StaticW = 7.0e-3;
    double llcStaticW = 20.0e-3;
    double dramStaticW = 10.9e-3;

    // Dynamic energy per cache-line event.
    double l1AccessJ = 61.0e-12;
    double llcDataJ = 32.0e-12;
    double dramAccessJ = 74.8e-9; // 64B off-chip access

    // Compression engines, per line (de)compressed.
    double cpackCompJ = 50.0e-12;
    double cpackDecompJ = 37.5e-12;
    double sc2CompJ = 144.0e-12;
    double sc2DecompJ = 148.0e-12;
    double lbeCompJ = 200.0e-12;
    double lbeDecompJ = 150.0e-12;

    double clockHz = 2.0e9;

    /** LLC static power scale for a different capacity (Figure 9's 1 MB
     *  "Uncompressed8x" baseline): static power tracks SRAM size. */
    double
    llcStaticScaled(double capacity_ratio) const
    {
        return llcStaticW * capacity_ratio;
    }
};

/** Which engine's constants apply to a cache scheme. */
enum class Engine
{
    None,  // uncompressed
    CPack, // Adaptive, Decoupled
    Sc2,
    Lbe    // MORC
};

/** Event counts the simulator accumulates per core/workload. */
struct EnergyEvents
{
    std::uint64_t cycles = 0;
    std::uint64_t l1Accesses = 0;
    std::uint64_t llcAccesses = 0;       // data-array touches (lines)
    std::uint64_t dramAccesses = 0;      // 64B transfers
    std::uint64_t linesCompressed = 0;
    std::uint64_t linesDecompressed = 0;
};

/** Energy breakdown in Joules (Figure 9b's categories). */
struct EnergyBreakdown
{
    double staticJ = 0;
    double dramJ = 0;
    double sramJ = 0;   // L1 + LLC dynamic
    double compJ = 0;
    double decompJ = 0;

    double
    total() const
    {
        return staticJ + dramJ + sramJ + compJ + decompJ;
    }
};

/**
 * Integrate event counts into a breakdown.
 *
 * @param events        Accumulated counts.
 * @param engine        Compression engine of the evaluated scheme.
 * @param params        Technology constants.
 * @param llc_capacity_ratio LLC size relative to the 128 KB baseline
 *                      (scales static power).
 * @param cores         Number of cores (static power is per core).
 */
EnergyBreakdown integrate(const EnergyEvents &events, Engine engine,
                          const EnergyParams &params = EnergyParams{},
                          double llc_capacity_ratio = 1.0,
                          unsigned cores = 1);

} // namespace energy
} // namespace morc

#endif // MORC_ENERGY_ENERGY_HH
