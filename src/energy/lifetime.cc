#include "energy/lifetime.hh"

#include <algorithm>
#include <bit>
#include <limits>

#include "check/check.hh"

namespace morc {
namespace energy {

std::uint64_t
popcountBits(const std::vector<std::uint64_t> &words, std::uint64_t bits)
{
    MORC_DCHECK(bits <= words.size() * 64,
                "popcount of %llu bits over %zu words",
                static_cast<unsigned long long>(bits), words.size());
    std::uint64_t count = 0;
    std::uint64_t i = 0;
    for (; (i + 1) * 64 <= bits; i++)
        count += std::popcount(words[i]);
    const unsigned tail = static_cast<unsigned>(bits - i * 64);
    if (tail > 0)
        count += std::popcount(words[i] & ((1ull << tail) - 1));
    return count;
}

std::uint64_t
popcountRange(const std::vector<std::uint64_t> &words,
              std::uint64_t start_bit, std::uint64_t end_bit)
{
    MORC_DCHECK(start_bit <= end_bit, "inverted bit range %llu..%llu",
                static_cast<unsigned long long>(start_bit),
                static_cast<unsigned long long>(end_bit));
    std::uint64_t count = 0;
    for (std::uint64_t bit = start_bit; bit < end_bit;) {
        const std::uint64_t word = bit >> 6;
        const unsigned off = bit & 63;
        const unsigned take = static_cast<unsigned>(
            std::min<std::uint64_t>(64 - off, end_bit - bit));
        std::uint64_t chunk = words[word] >> off;
        if (take < 64)
            chunk &= (1ull << take) - 1;
        count += std::popcount(chunk);
        bit += take;
    }
    return count;
}

std::uint64_t
flipBits(const std::vector<std::uint64_t> &a, std::uint64_t a_bits,
         const std::vector<std::uint64_t> &b, std::uint64_t b_bits)
{
    const std::uint64_t bits = std::max(a_bits, b_bits);
    std::uint64_t count = 0;
    for (std::uint64_t bit = 0; bit < bits; bit += 64) {
        const std::uint64_t word = bit >> 6;
        std::uint64_t av = word < a.size() ? a[word] : 0;
        std::uint64_t bv = word < b.size() ? b[word] : 0;
        if (bit + 64 > a_bits) {
            av &= a_bits > bit ? (1ull << (a_bits - bit)) - 1 : 0;
        }
        if (bit + 64 > b_bits) {
            bv &= b_bits > bit ? (1ull << (b_bits - bit)) - 1 : 0;
        }
        count += std::popcount(av ^ bv);
    }
    return count;
}

std::uint64_t
linePopcount(const CacheLine &line)
{
    std::uint64_t count = 0;
    for (unsigned i = 0; i < kLineSize / 8; i++)
        count += std::popcount(line.word64(i));
    return count;
}

std::uint64_t
lineFlips(const CacheLine &before, const CacheLine &after)
{
    std::uint64_t count = 0;
    for (unsigned i = 0; i < kLineSize / 8; i++)
        count += std::popcount(before.word64(i) ^ after.word64(i));
    return count;
}

void
rawImage(const CacheLine &line, BitWriter &out)
{
    for (unsigned i = 0; i < kLineSize / 8; i++)
        out.put(line.word64(i), 64);
}

void
WearTracker::configure(std::uint64_t sets, std::uint64_t ways)
{
    sets_ = sets;
    ways_ = ways;
    frameWrites_.assign(sets * ways, 0);
    setFlips_.assign(sets, 0);
    totalWrites_ = 0;
    totalBits_ = 0;
    totalFlips_ = 0;
}

void
WearTracker::recordWrite(std::uint64_t set, std::uint64_t way,
                         std::uint64_t bits_written,
                         std::uint64_t bit_flips)
{
    MORC_DCHECK(set < sets_ && way < ways_,
                "wear write to frame (%llu, %llu) outside %llu x %llu",
                static_cast<unsigned long long>(set),
                static_cast<unsigned long long>(way),
                static_cast<unsigned long long>(sets_),
                static_cast<unsigned long long>(ways_));
    frameWrites_[set * ways_ + way]++;
    setFlips_[set] += bit_flips;
    totalWrites_++;
    totalBits_ += bits_written;
    totalFlips_ += bit_flips;
}

double
WearTracker::meanSetFlips() const
{
    if (sets_ == 0)
        return 0;
    return static_cast<double>(totalFlips_) /
           static_cast<double>(sets_);
}

std::uint64_t
WearTracker::maxSetFlips() const
{
    std::uint64_t max = 0;
    for (std::uint64_t f : setFlips_)
        max = std::max(max, f);
    return max;
}

double
WearTracker::imbalance() const
{
    const double mean = meanSetFlips();
    if (mean <= 0)
        return 1.0;
    return static_cast<double>(maxSetFlips()) / mean;
}

double
WearTracker::setVariance() const
{
    const double mean = meanSetFlips();
    if (sets_ == 0 || mean <= 0)
        return 0;
    double sum = 0;
    for (std::uint64_t f : setFlips_) {
        const double d = static_cast<double>(f) - mean;
        sum += d * d;
    }
    return sum / static_cast<double>(sets_) / (mean * mean);
}

void
WearTracker::clearCounts()
{
    std::fill(frameWrites_.begin(), frameWrites_.end(), 0);
    std::fill(setFlips_.begin(), setFlips_.end(), 0);
    totalWrites_ = 0;
    totalBits_ = 0;
    totalFlips_ = 0;
}

void
WearTracker::merge(const WearTracker &other)
{
    if (other.sets_ == 0)
        return;
    if (sets_ == 0) {
        *this = other;
        return;
    }
    MORC_CHECK(ways_ == other.ways_,
               "cannot merge wear trackers of %llu and %llu ways",
               static_cast<unsigned long long>(ways_),
               static_cast<unsigned long long>(other.ways_));
    sets_ += other.sets_;
    frameWrites_.insert(frameWrites_.end(), other.frameWrites_.begin(),
                        other.frameWrites_.end());
    setFlips_.insert(setFlips_.end(), other.setFlips_.begin(),
                     other.setFlips_.end());
    totalWrites_ += other.totalWrites_;
    totalBits_ += other.totalBits_;
    totalFlips_ += other.totalFlips_;
}

void
WearTracker::save(snap::Serializer &s) const
{
    s.beginSection("WEAR");
    s.u64(sets_);
    s.u64(ways_);
    s.vecU64(frameWrites_);
    s.vecU64(setFlips_);
    s.u64(totalWrites_);
    s.u64(totalBits_);
    s.u64(totalFlips_);
    s.endSection();
}

void
WearTracker::restore(snap::Deserializer &d)
{
    if (!d.beginSection("WEAR"))
        return;
    const std::uint64_t sets = d.u64();
    const std::uint64_t ways = d.u64();
    std::vector<std::uint64_t> frames;
    std::vector<std::uint64_t> flips;
    d.vecU64(frames);
    d.vecU64(flips);
    const std::uint64_t totalWrites = d.u64();
    const std::uint64_t totalBits = d.u64();
    const std::uint64_t totalFlips = d.u64();
    if (d.ok() &&
        (sets != sets_ || ways != ways_ ||
         frames.size() != frameWrites_.size() ||
         flips.size() != setFlips_.size())) {
        d.fail("wear tracker geometry mismatch");
    }
    d.endSection();
    if (!d.ok())
        return;
    frameWrites_ = std::move(frames);
    setFlips_ = std::move(flips);
    totalWrites_ = totalWrites;
    totalBits_ = totalBits;
    totalFlips_ = totalFlips;
}

LifetimeForecast
forecastLifetime(const WearTracker &wear, std::uint64_t cycles,
                 std::uint64_t capacity_bits,
                 const LifetimeParams &params)
{
    constexpr double kSecondsPerYear = 365.25 * 24 * 3600;
    LifetimeForecast f;
    f.imbalance = wear.imbalance();
    f.setVariance = wear.setVariance();
    const double seconds =
        static_cast<double>(cycles) / params.clockHz;
    if (seconds <= 0 || capacity_bits == 0) {
        f.years = std::numeric_limits<double>::infinity();
        return f;
    }
    f.writeBitsPerSec =
        static_cast<double>(wear.totalBitsWritten()) / seconds;
    f.flipsPerCellPerSec =
        static_cast<double>(wear.totalBitFlips()) /
        static_cast<double>(capacity_bits) / seconds;
    const double worstCellPerSec = f.flipsPerCellPerSec * f.imbalance;
    if (worstCellPerSec <= 0) {
        f.years = std::numeric_limits<double>::infinity();
        return f;
    }
    f.years =
        params.cellEnduranceWrites / worstCellPerSec / kSecondsPerYear;
    return f;
}

} // namespace energy
} // namespace morc
