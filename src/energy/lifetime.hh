/**
 * @file
 * L2C2-style NVM endurance model (Escuin et al., PAPERS.md).
 *
 * A compressed LLC on non-volatile memory must be ranked by write
 * endurance as well as by hit rate: every fill programs cells, and the
 * device dies when its hottest cells exhaust their program budget. This
 * module tracks that wear from the *actual emitted bitstreams* — each
 * scheme charges the bits it physically writes and the cells it flips
 * relative to the previous contents of the frame — so compression's
 * wear reduction is measured, never assumed.
 *
 * Composition:
 *  - popcount/flip helpers over BitWriter streams and raw lines, used
 *    by every scheme's insert path to compute per-write flip counts;
 *  - WearTracker: per-set/per-way write histograms plus totals, owned
 *    by cache::Llc and snapshot-complete;
 *  - forecastLifetime(): inter-set imbalance and a years-to-failure
 *    forecast under a configurable per-cell endurance budget.
 */

#ifndef MORC_ENERGY_LIFETIME_HH
#define MORC_ENERGY_LIFETIME_HH

#include <cstdint>
#include <vector>

#include "snapshot/snapshot.hh"
#include "util/bitstream.hh"
#include "util/types.hh"

namespace morc {
namespace energy {

/** Population count of the first @p bits bits of @p words. */
std::uint64_t popcountBits(const std::vector<std::uint64_t> &words,
                           std::uint64_t bits);

/** Population count of bits [@p start_bit, @p end_bit) of @p words. */
std::uint64_t popcountRange(const std::vector<std::uint64_t> &words,
                            std::uint64_t start_bit,
                            std::uint64_t end_bit);

/**
 * Cells flipped when programming stream @p b over stream @p a: popcount
 * of the XOR, with the shorter stream zero-padded (unwritten cells hold
 * the erased state).
 */
std::uint64_t flipBits(const std::vector<std::uint64_t> &a,
                       std::uint64_t a_bits,
                       const std::vector<std::uint64_t> &b,
                       std::uint64_t b_bits);

/** Set bits of a raw 64-byte line. */
std::uint64_t linePopcount(const CacheLine &line);

/** Cells flipped overwriting raw line @p before with @p after. */
std::uint64_t lineFlips(const CacheLine &before, const CacheLine &after);

/** Emit the raw (uncompressed) image of @p line into @p out. */
void rawImage(const CacheLine &line, BitWriter &out);

/**
 * Per-frame write histogram for one cache.
 *
 * "Frame" is the scheme's natural physical write granule: a (set, way)
 * data entry for set-based schemes, a log for MORC. recordWrite charges
 * one frame; totals and the per-set distribution feed the lifetime
 * forecast and the morc_check counter cross-check.
 */
class WearTracker
{
  public:
    /** Reset to @p sets x @p ways zeroed frames. */
    void configure(std::uint64_t sets, std::uint64_t ways);

    /** Charge one physical write of @p bits_written programming
     *  @p bit_flips cells in frame (@p set, @p way). */
    void recordWrite(std::uint64_t set, std::uint64_t way,
                     std::uint64_t bits_written, std::uint64_t bit_flips);

    std::uint64_t sets() const { return sets_; }
    std::uint64_t ways() const { return ways_; }
    std::uint64_t totalWrites() const { return totalWrites_; }
    std::uint64_t totalBitsWritten() const { return totalBits_; }
    std::uint64_t totalBitFlips() const { return totalFlips_; }

    std::uint64_t
    setFlips(std::uint64_t set) const
    {
        return setFlips_[set];
    }

    std::uint64_t
    frameWrites(std::uint64_t set, std::uint64_t way) const
    {
        return frameWrites_[set * ways_ + way];
    }

    /** Mean per-set flip count (0 when no sets). */
    double meanSetFlips() const;

    /** Largest per-set flip count. */
    std::uint64_t maxSetFlips() const;

    /**
     * Inter-set wear imbalance: max over mean per-set flips. 1.0 means
     * perfectly leveled (or no writes at all); the hottest set ages
     * this factor faster than ideal wear-leveling would allow.
     */
    double imbalance() const;

    /** Normalized inter-set variance of flip counts (squared
     *  coefficient of variation; 0 when leveled or idle). */
    double setVariance() const;

    /** Zero all counters, keeping the configured geometry. */
    void clearCounts();

    /** Fold @p other's frames in as additional sets (banked LLCs). */
    void merge(const WearTracker &other);

    void save(snap::Serializer &s) const;
    void restore(snap::Deserializer &d);

  private:
    std::uint64_t sets_ = 0;
    std::uint64_t ways_ = 0;
    std::vector<std::uint64_t> frameWrites_; // sets_ x ways_
    std::vector<std::uint64_t> setFlips_;    // per-set flip totals
    std::uint64_t totalWrites_ = 0;
    std::uint64_t totalBits_ = 0;
    std::uint64_t totalFlips_ = 0;
};

/** Device/technology constants for the forecast. */
struct LifetimeParams
{
    /** Per-cell program budget (PCM-class endurance). */
    double cellEnduranceWrites = 1.0e8;

    /** Simulated core clock (cycles -> seconds). */
    double clockHz = 2.0e9;
};

/** Forecast outputs (all deterministic functions of the inputs). */
struct LifetimeForecast
{
    /** Programmed bits per second of simulated time. */
    double writeBitsPerSec = 0;

    /** Cell flips per second, averaged over every data cell. */
    double flipsPerCellPerSec = 0;

    /** Inter-set wear imbalance (>= 1). */
    double imbalance = 1.0;

    /** Normalized inter-set variance of flips. */
    double setVariance = 0;

    /** Years until the hottest set's cells exhaust the endurance
     *  budget; infinite when the run wrote nothing. */
    double years = 0;
};

/**
 * Forecast device lifetime from a run's wear histogram.
 *
 * The hottest set ages imbalance() times faster than the mean cell, so
 *   years = endurance / (mean flips-per-cell-per-second x imbalance)
 * with the mean taken over @p capacity_bits data cells across
 * @p cycles of simulated time.
 */
LifetimeForecast forecastLifetime(const WearTracker &wear,
                                  std::uint64_t cycles,
                                  std::uint64_t capacity_bits,
                                  const LifetimeParams &params = {});

} // namespace energy
} // namespace morc

#endif // MORC_ENERGY_LIFETIME_HH
