#include "kv/generator.hh"

#include "check/check.hh"

namespace morc {
namespace kv {

namespace {

/** Seed salt separating tenant RNG streams from everything else. */
constexpr std::uint64_t kTenantSalt = 0x6b767467; // "kvtg"

} // namespace

Generator::Generator(std::uint64_t seed,
                     std::vector<TenantConfig> tenants)
    : cfg_(std::move(tenants))
{
    MORC_CHECK(!cfg_.empty(), "generator needs at least one tenant");
    zipf_.reserve(cfg_.size());
    state_.resize(cfg_.size());
    for (std::size_t i = 0; i < cfg_.size(); i++) {
        const TenantConfig &t = cfg_[i];
        MORC_CHECK(t.keys > 0, "tenant key space must be non-empty");
        MORC_CHECK(t.weight > 0, "tenant weight must be positive");
        zipf_.emplace_back(t.keys, t.theta);
        state_[i].rng =
            Rng(splitmix64(seed ^ mix64(kTenantSalt, i + 1)));
        totalWeight_ += t.weight;
    }
}

Request
Generator::next()
{
    // Smooth weighted round-robin: deterministic, and proportional to
    // weight over any window — the QoS contract a service scheduler
    // would enforce with per-tenant token buckets.
    std::size_t winner = 0;
    for (std::size_t i = 0; i < state_.size(); i++) {
        state_[i].credit += cfg_[i].weight;
        if (state_[i].credit > state_[winner].credit)
            winner = i;
    }
    Tenant &t = state_[winner];
    const TenantConfig &c = cfg_[winner];
    t.credit -= totalWeight_;

    const std::uint64_t rank = zipf_[winner].sample(t.rng);
    std::uint64_t key = rank;
    if (c.driftPeriod != 0 && c.driftStride != 0) {
        const std::uint64_t epoch = t.served / c.driftPeriod;
        key = (rank + epoch * c.driftStride) % c.keys;
    }
    Request req;
    req.tenant = static_cast<std::uint32_t>(winner);
    req.key = key;
    req.isSet = t.rng.uniform() < c.setFrac;
    t.served++;
    served_++;
    return req;
}

void
Generator::save(snap::Serializer &s) const
{
    s.u64(state_.size());
    for (const Tenant &t : state_) {
        for (unsigned w = 0; w < 4; w++)
            s.u64(t.rng.stateWord(w));
        s.u64(t.served);
        s.u64(static_cast<std::uint64_t>(t.credit));
    }
    s.u64(served_);
}

void
Generator::restore(snap::Deserializer &d)
{
    const std::uint64_t n = d.u64();
    if (n != state_.size()) {
        d.fail("kv::Generator tenant count mismatch");
        return;
    }
    std::vector<Tenant> state(state_.size());
    for (Tenant &t : state) {
        for (unsigned w = 0; w < 4; w++)
            t.rng.setStateWord(w, d.u64());
        t.served = d.u64();
        t.credit = static_cast<std::int64_t>(d.u64());
    }
    const std::uint64_t served = d.u64();
    if (!d.ok())
        return;
    state_ = std::move(state);
    served_ = served;
}

} // namespace kv
} // namespace morc
