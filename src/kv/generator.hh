/**
 * @file
 * Multi-tenant Zipf request generation for the KV-serving subsystem.
 *
 * A Generator merges per-tenant request streams into one service-order
 * stream. Each tenant owns an independent Zipf-distributed key
 * popularity curve over its private key space, a GET/SET mix, a QoS
 * weight, and an optional hot-working-set drift that rotates which
 * ranks are popular as the stream progresses — the service-shaped churn
 * that stresses eviction in ways SPEC replays never do.
 *
 * Determinism rules:
 *   - every tenant's RNG is seeded from (base seed, tenant index) only,
 *   - tenant interleaving is smooth weighted round-robin — pure credit
 *     arithmetic, no randomness, ties broken by lowest index —
 * so the request sequence is a pure function of the configuration, and
 * sweep `--jobs` can never reorder or reshuffle it.
 */

#ifndef MORC_KV_GENERATOR_HH
#define MORC_KV_GENERATOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "snapshot/snapshot.hh"
#include "util/rng.hh"
#include "util/zipf.hh"

namespace morc {
namespace kv {

/** One tenant's traffic contract. */
struct TenantConfig
{
    std::string name = "tenant";

    /** Private key-space size. */
    std::uint64_t keys = 1ull << 18;

    /** Zipf skew of key popularity. */
    double theta = 0.99;

    /** QoS share: requests are interleaved proportionally to weight. */
    std::uint32_t weight = 1;

    /** Fraction of requests that are SETs (rest are GETs). */
    double setFrac = 0.1;

    /**
     * Hot-working-set drift: every @p driftPeriod tenant requests, the
     * mapping from popularity rank to key rotates by @p driftStride
     * keys, so yesterday's cold keys become today's hot set. 0 = no
     * drift.
     */
    std::uint64_t driftPeriod = 0;
    std::uint64_t driftStride = 0;
};

/** One service request. */
struct Request
{
    std::uint32_t tenant = 0;
    std::uint64_t key = 0;
    bool isSet = false;
};

/** Deterministic merged multi-tenant request stream. */
class Generator
{
  public:
    Generator(std::uint64_t seed, std::vector<TenantConfig> tenants);

    /** Produce the next request in service order. */
    Request next();

    /** Requests produced so far (all tenants). */
    std::uint64_t served() const { return served_; }

    /** Requests produced so far for @p tenant. */
    std::uint64_t
    served(std::uint32_t tenant) const
    {
        return state_[tenant].served;
    }

    const std::vector<TenantConfig> &tenants() const { return cfg_; }

    /** Append RNG/counter/credit state for every tenant. */
    void save(snap::Serializer &s) const;

    /** Restore state written by save(); the live generator must hold
     *  the same tenant count. */
    void restore(snap::Deserializer &d);

  private:
    struct Tenant
    {
        Rng rng{1};
        std::uint64_t served = 0;
        std::int64_t credit = 0;
    };

    std::vector<TenantConfig> cfg_; // morc-analyze: allow(snapshot-completeness) construction-time config; restore() re-binds
    std::vector<ZipfSampler> zipf_; // morc-analyze: allow(snapshot-completeness) derived from cfg_
    std::int64_t totalWeight_ = 0; // morc-analyze: allow(snapshot-completeness) derived from cfg_
    std::vector<Tenant> state_;
    std::uint64_t served_ = 0;
};

} // namespace kv
} // namespace morc

#endif // MORC_KV_GENERATOR_HH
