#include "kv/service.hh"

#include <algorithm>

#include "check/check.hh"

namespace morc {
namespace kv {

namespace {

/** Latency histogram buckets: geometric grid from a bare front hit
 *  (~12 cycles) past origin fetches (~20k cycles), fine enough that
 *  p50/p99/p99.9 resolve to distinct tiers. */
std::vector<std::uint64_t>
latencyBounds()
{
    return {16,    24,    32,    48,    64,    96,   128,  192,  256,
            384,   512,   768,   1024,  1536,  2048, 3072, 4096, 6144,
            8192,  12288, 16384, 24576, 32768, 49152, 65536};
}

/** Per-tenant value seed: tenants own disjoint corpora. */
constexpr std::uint64_t kTenantValueSalt = 0x6b7676616c; // "kvval"

} // namespace

std::uint64_t
digestLine(std::uint64_t h, Addr addr, const CacheLine &data)
{
    h = (h ^ addr) * 1099511628211ull;
    for (unsigned w = 0; w < kWordsPerLine / 2; w++)
        h = (h ^ data.word64(w)) * 1099511628211ull;
    return h;
}

void
TenantStats::save(snap::Serializer &s) const
{
    s.u64(requests);
    s.u64(gets);
    s.u64(sets);
    s.u64(lineReads);
    s.u64(frontHits);
    s.u64(latencySum);
}

void
TenantStats::restore(snap::Deserializer &d)
{
    TenantStats v;
    v.requests = d.u64();
    v.gets = d.u64();
    v.sets = d.u64();
    v.lineReads = d.u64();
    v.frontHits = d.u64();
    v.latencySum = d.u64();
    if (d.ok())
        *this = v;
}

double
histPercentile(const stats::Histogram &h, double q)
{
    if (h.total() == 0)
        return 0.0;
    const double threshold = q * static_cast<double>(h.total());
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < h.numBuckets(); i++) {
        cum += h.count(i);
        if (static_cast<double>(cum) >= threshold) {
            if (i + 1 == h.numBuckets()) // overflow bucket
                return 2.0 * static_cast<double>(
                                 h.upperBound(h.numBuckets() - 2));
            return static_cast<double>(h.upperBound(i));
        }
    }
    return 2.0 * static_cast<double>(h.upperBound(h.numBuckets() - 2));
}

Service::Service(const ServiceConfig &cfg)
    : cfg_(cfg), gen_(cfg.seed, cfg.tenants),
      front_(sim::makeLlc(cfg.scheme, cfg.frontBytes)),
      tiers_(cfg.tier), allLat_(latencyBounds())
{
    const std::size_t n = cfg_.tenants.size();
    values_.reserve(n);
    tenantLat_.reserve(n);
    for (std::size_t i = 0; i < n; i++) {
        trace::KvProfile p = cfg_.values;
        p.seed = mix64(cfg_.values.seed ^ kTenantValueSalt, i + 1);
        values_.emplace_back(p);
        tenantLat_.emplace_back(latencyBounds());
    }
    tstats_.resize(n);
    if (cfg_.telemetryEpoch != 0) {
        telemetry_ =
            std::make_unique<telemetry::Registry>(cfg_.telemetryEpoch);
        registerProbes();
    }
}

void
Service::registerProbes()
{
    front_->registerProbes(*telemetry_, "kv.front");
    tiers_.registerProbes(*telemetry_, "kv.tier");
    telemetry_->counter("kv.svc.requests", [this](Cycles) {
        return static_cast<double>(requests_);
    });
    telemetry_->counter("kv.svc.front_hits", [this](Cycles) {
        return static_cast<double>(front_->stats().readHits);
    });
    telemetry_->gauge("kv.svc.dirty_keys", [this](Cycles) {
        double dirty = 0;
        for (const auto &vm : values_)
            dirty += static_cast<double>(vm.dirtyKeys());
        return dirty;
    });
}

Addr
Service::addrOf(std::uint32_t tenant, std::uint64_t key,
                std::uint32_t line_idx) const
{
    // Tenants own disjoint address partitions; each key owns a
    // max-value-lines stride so values never overlap.
    const std::uint64_t line =
        (static_cast<std::uint64_t>(tenant + 1) << 34) |
        (key * values_[tenant].maxValueLines() + line_idx);
    return line << kLineShift;
}

Service::Reply
Service::step()
{
    Reply r;
    r.req = gen_.next();
    const std::uint32_t t = r.req.tenant;
    trace::KvValueModel &vm = values_[t];
    TenantStats &ts = tstats_[t];
    r.lines = vm.valueLines(r.req.key);
    r.digest = kDigestBasis;

    Cycles lat = 0;
    if (r.req.isSet) {
        const std::uint32_t version = vm.bump(r.req.key);
        for (std::uint32_t i = 0; i < r.lines; i++) {
            const Addr a = addrOf(t, r.req.key, i);
            const CacheLine data = vm.line(r.req.key, i, version);
            r.digest = digestLine(r.digest, a, data);
            cache::FillResult fill = front_->insert(a, data, true);
            for (const cache::Writeback &wb : fill.writebacks)
                tiers_.writeback(wb.addr, wb.data);
        }
        lat = cfg_.frontLatency +
              cfg_.lineStep * (r.lines > 0 ? r.lines - 1 : 0);
        ts.sets++;
    } else {
        const std::uint32_t version = vm.version(r.req.key);
        Cycles worst = 0;
        for (std::uint32_t i = 0; i < r.lines; i++) {
            const Addr a = addrOf(t, r.req.key, i);
            cache::ReadResult rr = front_->read(a);
            Cycles lineLat;
            CacheLine data;
            if (rr.hit) {
                data = rr.data;
                lineLat = cfg_.frontLatency + rr.extraLatency;
                ts.frontHits++;
            } else {
                data = vm.line(r.req.key, i, version);
                const TieredStore::FetchResult fr = tiers_.fetch(a, data);
                lineLat = cfg_.frontLatency + fr.latency;
                cache::FillResult fill = front_->insert(a, data, false);
                for (const cache::Writeback &wb : fill.writebacks)
                    tiers_.writeback(wb.addr, wb.data);
            }
            r.digest = digestLine(r.digest, a, data);
            worst = std::max(worst, lineLat);
            ts.lineReads++;
        }
        // Lines are probed in parallel; the value assembles at the
        // slowest line plus a per-line pipelining step.
        lat = worst + cfg_.lineStep * (r.lines > 0 ? r.lines - 1 : 0);
        ts.gets++;
    }
    r.latency = lat;
    ts.requests++;
    ts.latencySum += lat;
    tenantLat_[t].record(lat);
    allLat_.record(lat);
    requests_++;
    cycles_ += lat + 1;
    if (telemetry_)
        telemetry_->advanceTo(cycles_);
    return r;
}

void
Service::run(std::uint64_t n)
{
    for (std::uint64_t i = 0; i < n; i++)
        step();
}

telemetry::SeriesSet
Service::series() const
{
    return telemetry_ ? telemetry_->snapshot() : telemetry::SeriesSet{};
}

check::AuditReport
Service::audit() const
{
    check::AuditReport r;
    r.merge(front_->audit(), "front: ");
    r.merge(tiers_.audit(), "tier: ");

    std::uint64_t requests = 0, lineReads = 0, frontHits = 0,
                  latencyTotal = 0;
    for (std::size_t i = 0; i < tstats_.size(); i++) {
        requests += tstats_[i].requests;
        lineReads += tstats_[i].lineReads;
        frontHits += tstats_[i].frontHits;
        latencyTotal += tenantLat_[i].total();
        r.require(tstats_[i].gets + tstats_[i].sets ==
                      tstats_[i].requests,
                  "tenant %zu GET+SET %llu != requests %llu", i,
                  static_cast<unsigned long long>(tstats_[i].gets +
                                                  tstats_[i].sets),
                  static_cast<unsigned long long>(tstats_[i].requests));
        r.require(tenantLat_[i].total() == tstats_[i].requests,
                  "tenant %zu latency histogram total %llu != "
                  "requests %llu",
                  i,
                  static_cast<unsigned long long>(tenantLat_[i].total()),
                  static_cast<unsigned long long>(tstats_[i].requests));
    }
    r.require(requests == requests_,
              "tenant request sum %llu != service total %llu",
              static_cast<unsigned long long>(requests),
              static_cast<unsigned long long>(requests_));
    r.require(gen_.served() == requests_,
              "generator served %llu != service requests %llu",
              static_cast<unsigned long long>(gen_.served()),
              static_cast<unsigned long long>(requests_));
    r.require(allLat_.total() == requests_,
              "aggregate latency histogram total %llu != requests %llu",
              static_cast<unsigned long long>(allLat_.total()),
              static_cast<unsigned long long>(requests_));
    r.require(front_->stats().reads == lineReads,
              "front reads %llu != GET line probes %llu",
              static_cast<unsigned long long>(front_->stats().reads),
              static_cast<unsigned long long>(lineReads));
    r.require(front_->stats().readHits == frontHits,
              "front hits %llu != tenant hit sum %llu",
              static_cast<unsigned long long>(front_->stats().readHits),
              static_cast<unsigned long long>(frontHits));
    (void)latencyTotal;
    return r;
}

void
Service::saveState(snap::Serializer &s) const
{
    s.beginSection("KVSV");
    s.u64(cycles_);
    s.u64(requests_);
    s.u64(values_.size());
    gen_.save(s);
    front_->saveState(s);
    tiers_.saveState(s);
    for (std::size_t i = 0; i < values_.size(); i++) {
        values_[i].save(s);
        tstats_[i].save(s);
        tenantLat_[i].save(s);
    }
    allLat_.save(s);
    s.u8(telemetry_ ? 1 : 0);
    if (telemetry_)
        telemetry_->saveState(s);
    s.endSection();
}

void
Service::restoreState(snap::Deserializer &d)
{
    if (!d.beginSection("KVSV"))
        return;
    const Cycles cycles = d.u64();
    const std::uint64_t requests = d.u64();
    if (d.u64() != values_.size()) {
        d.fail("kv::Service tenant count mismatch");
        return;
    }
    gen_.restore(d);
    front_->restoreState(d);
    tiers_.restoreState(d);
    for (std::size_t i = 0; i < values_.size(); i++) {
        values_[i].restore(d);
        tstats_[i].restore(d);
        tenantLat_[i].restore(d);
    }
    allLat_.restore(d);
    const bool hadTelemetry = d.u8() != 0;
    if (hadTelemetry != (telemetry_ != nullptr)) {
        d.fail("kv::Service telemetry configuration mismatch");
        return;
    }
    if (telemetry_)
        telemetry_->restoreState(d);
    d.endSection();
    if (!d.ok())
        return;
    cycles_ = cycles;
    requests_ = requests;
}

} // namespace kv
} // namespace morc
