/**
 * @file
 * Memcached-style KV service modeled on the compressed-cache simulators.
 *
 * A Service wires the subsystem together: a multi-tenant Zipf Generator
 * produces GET/SET requests; values are synthesized per tenant by a
 * KvValueModel (JSON-like / counter-dense / blob redundancy classes);
 * the hot tier is any `cache::Llc` scheme built through `sim::makeLlc`
 * (so MORC and every baseline drop in unchanged); front misses fetch
 * through a DRAM/SSD TieredStore with per-tier compression.
 *
 * Requests are served closed-loop on a logical cycle clock: a request's
 * value lines are probed in parallel (latency = slowest line + a small
 * per-line pipelining term) and the clock advances by the request
 * latency. Per-tenant and aggregate latency histograms feed the
 * p50/p99/p99.9 percentiles of the schema-v4 report section; telemetry
 * probes sample every layer on the same epoch grid as sim::System.
 *
 * Everything is deterministic (tenant-seeded RNG only) and fully
 * snapshot-covered: front cache, tiers, generator, value models,
 * histograms, counters, and the telemetry registry, so a mid-run
 * snapshot restores to byte-identical replay.
 */

#ifndef MORC_KV_SERVICE_HH
#define MORC_KV_SERVICE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/llc.hh"
#include "kv/generator.hh"
#include "kv/tier.hh"
#include "sim/scheme.hh"
#include "stats/histogram.hh"
#include "trace/value_model.hh"

namespace morc {
namespace kv {

/** Full configuration of one simulated service. */
struct ServiceConfig
{
    sim::Scheme scheme = sim::Scheme::Morc;

    /** Front (hot-tier) cache capacity in bytes. */
    std::uint64_t frontBytes = 1ull << 20;

    /** Base front-cache access latency (cycles); decompression adds
     *  the scheme's extraLatency on top. */
    Cycles frontLatency = 12;

    /** Per-line pipelining cost for multi-line values. */
    Cycles lineStep = 2;

    TierConfig tier;

    /** Value-corpus knobs; each tenant derives its own seed from
     *  values.seed and the tenant index. */
    trace::KvProfile values;

    std::vector<TenantConfig> tenants;

    /** Base seed of the request streams. */
    std::uint64_t seed = 1;

    /** Telemetry sampling epoch in cycles (0 = off). */
    Cycles telemetryEpoch = 0;
};

/** Per-tenant service counters. */
struct TenantStats
{
    std::uint64_t requests = 0;
    std::uint64_t gets = 0;
    std::uint64_t sets = 0;
    std::uint64_t lineReads = 0;
    std::uint64_t frontHits = 0;
    std::uint64_t latencySum = 0;

    void save(snap::Serializer &s) const;
    void restore(snap::Deserializer &d);
};

/** Deterministic latency percentile from a histogram: the inclusive
 *  upper bound of the bucket where the cumulative count first reaches
 *  @p q of the total (overflow bucket reports twice the last bound).
 *  Returns 0 for an empty histogram. */
double histPercentile(const stats::Histogram &h, double q);

/** Seed value of a Reply digest chain. */
constexpr std::uint64_t kDigestBasis = 1469598103934665603ull;

/** FNV-1a chaining of one line into a Reply digest. Exposed so the
 *  morc_check differential fuzzer can recompute expected digests from
 *  its reference ledger. */
std::uint64_t digestLine(std::uint64_t h, Addr addr,
                         const CacheLine &data);

class Service : public check::Auditable, public snap::Snapshottable
{
  public:
    explicit Service(const ServiceConfig &cfg);

    /** Outcome of one request (for differential checking). */
    struct Reply
    {
        Request req;
        std::uint32_t lines = 0;
        Cycles latency = 0;

        /** FNV-1a digest of every line read (GET) / written (SET). */
        std::uint64_t digest = 0;
    };

    /** Serve the next request. */
    Reply step();

    /** Serve @p n requests. */
    void run(std::uint64_t n);

    const cache::Llc &front() const { return *front_; }
    const TieredStore &tiers() const { return tiers_; }
    const Generator &generator() const { return gen_; }
    const trace::KvValueModel &values(unsigned t) const
    {
        return values_[t];
    }
    Cycles cycles() const { return cycles_; }
    std::uint64_t requests() const { return requests_; }
    const ServiceConfig &config() const { return cfg_; }

    const TenantStats &tenantStats(unsigned t) const
    {
        return tstats_[t];
    }
    const stats::Histogram &tenantLatency(unsigned t) const
    {
        return tenantLat_[t];
    }
    const stats::Histogram &latency() const { return allLat_; }

    /** Telemetry series sampled so far (empty when epoch = 0). */
    telemetry::SeriesSet series() const;

    /** Front + tier + service-level cross-consistency invariants. */
    check::AuditReport audit() const override;

    void saveState(snap::Serializer &s) const override;
    void restoreState(snap::Deserializer &d) override;

    /** Cache-line address of line @p line_idx of (@p tenant, @p key).
     *  Public so the differential fuzzer can mirror the mapping. */
    Addr addrOf(std::uint32_t tenant, std::uint64_t key,
                std::uint32_t line_idx) const;

  private:
    void registerProbes();

    ServiceConfig cfg_; // morc-analyze: allow(snapshot-completeness) construction-time config; restoreState() re-binds
    Generator gen_;
    std::unique_ptr<cache::Llc> front_;
    TieredStore tiers_;
    std::vector<trace::KvValueModel> values_;
    std::vector<TenantStats> tstats_;
    std::vector<stats::Histogram> tenantLat_;
    stats::Histogram allLat_;
    Cycles cycles_ = 0;
    std::uint64_t requests_ = 0;
    std::unique_ptr<telemetry::Registry> telemetry_;
};

} // namespace kv
} // namespace morc

#endif // MORC_KV_SERVICE_HH
