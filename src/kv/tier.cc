#include "kv/tier.hh"

#include <algorithm>

#include "check/check.hh"
#include "compress/fpc.hh"

namespace morc {
namespace kv {

const char *
tierLevelName(TierLevel l)
{
    switch (l) {
    case TierLevel::Dram:
        return "dram";
    case TierLevel::Ssd:
        return "ssd";
    case TierLevel::Origin:
        return "origin";
    }
    return "?";
}

void
TierStats::save(snap::Serializer &s) const
{
    s.u64(dramHits);
    s.u64(ssdHits);
    s.u64(originFetches);
    s.u64(promotions);
    s.u64(demotions);
    s.u64(ssdDrops);
    s.u64(writebacks);
}

void
TierStats::restore(snap::Deserializer &d)
{
    TierStats v;
    v.dramHits = d.u64();
    v.ssdHits = d.u64();
    v.originFetches = d.u64();
    v.promotions = d.u64();
    v.demotions = d.u64();
    v.ssdDrops = d.u64();
    v.writebacks = d.u64();
    if (d.ok())
        *this = v;
}

namespace {

/** Bytes one entry charges against a tier's budget. */
std::uint64_t
charge(bool tier_compressed, std::uint32_t comp_bytes)
{
    return tier_compressed ? comp_bytes : kLineSize;
}

} // namespace

TieredStore::TieredStore(const TierConfig &cfg) : cfg_(cfg)
{
    MORC_CHECK(cfg.dramBytes >= kLineSize && cfg.ssdBytes >= kLineSize,
               "tier budgets must hold at least one line");
}

std::uint32_t
TieredStore::storedBytes(const CacheLine &data, bool) const
{
    const std::uint32_t bits = comp::Fpc::lineBits(data);
    return std::min<std::uint32_t>(
        kLineSize, std::max<std::uint32_t>(1, (bits + 7) / 8));
}

void
TieredStore::touch(Tier &t, Addr addr, Entry &e)
{
    t.lru.erase(e.use);
    e.use = ++useClock_;
    t.lru[e.use] = addr;
}

void
TieredStore::insertInto(Tier &t, std::uint64_t budget, Addr addr,
                        Entry e, bool demote_victims_to_ssd)
{
    const bool compressed =
        demote_victims_to_ssd ? cfg_.dramCompressed : cfg_.ssdCompressed;
    MORC_CHECK(t.lines.find(addr) == t.lines.end(),
               "tier insert of resident line %llx",
               static_cast<unsigned long long>(addr));
    e.use = ++useClock_;
    t.lines[addr] = e;
    t.lru[e.use] = addr;
    t.usedBytes += charge(compressed, e.bytes);
    evictOver(t, budget, demote_victims_to_ssd);
}

void
TieredStore::evictOver(Tier &t, std::uint64_t budget,
                       bool demote_victims_to_ssd)
{
    const bool compressed =
        demote_victims_to_ssd ? cfg_.dramCompressed : cfg_.ssdCompressed;
    while (t.usedBytes > budget && !t.lru.empty()) {
        const auto victim = t.lru.begin();
        const Addr va = victim->second;
        const Entry ve = t.lines[va];
        t.lru.erase(victim);
        t.lines.erase(va);
        t.usedBytes -= charge(compressed, ve.bytes);
        if (demote_victims_to_ssd) {
            stats_.demotions++;
            insertInto(ssd_, cfg_.ssdBytes, va, ve, false);
        } else {
            stats_.ssdDrops++;
        }
    }
}

TieredStore::FetchResult
TieredStore::fetch(Addr addr, const CacheLine &data)
{
    const auto it = dram_.lines.find(addr);
    if (it != dram_.lines.end()) {
        touch(dram_, addr, it->second);
        stats_.dramHits++;
        return {cfg_.dramLatency, TierLevel::Dram};
    }
    const auto is = ssd_.lines.find(addr);
    if (is != ssd_.lines.end()) {
        // Exclusive promotion: move the line up, drop the SSD copy.
        const Entry e = is->second;
        ssd_.lru.erase(e.use);
        ssd_.usedBytes -= charge(cfg_.ssdCompressed, e.bytes);
        ssd_.lines.erase(is);
        stats_.ssdHits++;
        stats_.promotions++;
        insertInto(dram_, cfg_.dramBytes, addr, e, true);
        return {cfg_.ssdLatency, TierLevel::Ssd};
    }
    stats_.originFetches++;
    Entry e;
    e.bytes = storedBytes(data, cfg_.dramCompressed);
    insertInto(dram_, cfg_.dramBytes, addr, e, true);
    return {cfg_.originLatency, TierLevel::Origin};
}

void
TieredStore::writeback(Addr addr, const CacheLine &data)
{
    stats_.writebacks++;
    const std::uint32_t bytes = storedBytes(data, true);
    const auto it = dram_.lines.find(addr);
    if (it != dram_.lines.end()) {
        dram_.usedBytes -= charge(cfg_.dramCompressed, it->second.bytes);
        it->second.bytes = bytes;
        dram_.usedBytes += charge(cfg_.dramCompressed, bytes);
        touch(dram_, addr, it->second);
        // The rewrite may compress worse than what it replaced; the
        // budget still holds (the line itself is MRU, so it survives).
        evictOver(dram_, cfg_.dramBytes, true);
        return;
    }
    const auto is = ssd_.lines.find(addr);
    if (is != ssd_.lines.end()) {
        ssd_.usedBytes -= charge(cfg_.ssdCompressed, is->second.bytes);
        is->second.bytes = bytes;
        ssd_.usedBytes += charge(cfg_.ssdCompressed, bytes);
        touch(ssd_, addr, is->second);
        evictOver(ssd_, cfg_.ssdBytes, false);
        return;
    }
    Entry e;
    e.bytes = bytes;
    insertInto(dram_, cfg_.dramBytes, addr, e, true);
}

void
TieredStore::auditTier(check::AuditReport &r, const Tier &t,
                       const char *name, std::uint64_t budget) const
{
    const bool compressed =
        &t == &dram_ ? cfg_.dramCompressed : cfg_.ssdCompressed;
    std::uint64_t bytes = 0;
    for (const auto &kv : t.lines) {
        bytes += charge(compressed, kv.second.bytes);
        r.require(kv.second.bytes >= 1 && kv.second.bytes <= kLineSize,
                  "%s line %llx stored size %u outside [1,64]", name,
                  static_cast<unsigned long long>(kv.first),
                  kv.second.bytes);
        const auto lru = t.lru.find(kv.second.use);
        r.require(lru != t.lru.end() && lru->second == kv.first,
                  "%s line %llx LRU stamp %llu dangling", name,
                  static_cast<unsigned long long>(kv.first),
                  static_cast<unsigned long long>(kv.second.use));
    }
    r.require(bytes == t.usedBytes,
              "%s byte accounting: walked %llu != tracked %llu", name,
              static_cast<unsigned long long>(bytes),
              static_cast<unsigned long long>(t.usedBytes));
    r.require(t.lru.size() == t.lines.size(),
              "%s LRU index size %zu != line count %zu", name,
              t.lru.size(), t.lines.size());
    r.require(t.usedBytes <= budget,
              "%s over budget: %llu > %llu", name,
              static_cast<unsigned long long>(t.usedBytes),
              static_cast<unsigned long long>(budget));
}

check::AuditReport
TieredStore::audit() const
{
    check::AuditReport r;
    auditTier(r, dram_, "dram", cfg_.dramBytes);
    auditTier(r, ssd_, "ssd", cfg_.ssdBytes);
    for (const auto &kv : dram_.lines) {
        r.require(ssd_.lines.find(kv.first) == ssd_.lines.end(),
                  "line %llx resident in both tiers",
                  static_cast<unsigned long long>(kv.first));
    }
    return r;
}

void
TieredStore::registerProbes(telemetry::Registry &reg,
                            const std::string &prefix)
{
    reg.gauge(prefix + ".dram_lines",
              [this](Cycles) { return double(dram_.lines.size()); });
    reg.gauge(prefix + ".ssd_lines",
              [this](Cycles) { return double(ssd_.lines.size()); });
    reg.gauge(prefix + ".dram_bytes",
              [this](Cycles) { return double(dram_.usedBytes); });
    reg.gauge(prefix + ".ssd_bytes",
              [this](Cycles) { return double(ssd_.usedBytes); });
    reg.counter(prefix + ".dram_hits",
                [this](Cycles) { return double(stats_.dramHits); });
    reg.counter(prefix + ".ssd_hits",
                [this](Cycles) { return double(stats_.ssdHits); });
    reg.counter(prefix + ".origin_fetches", [this](Cycles) {
        return double(stats_.originFetches);
    });
    reg.counter(prefix + ".promotions",
                [this](Cycles) { return double(stats_.promotions); });
    reg.counter(prefix + ".demotions",
                [this](Cycles) { return double(stats_.demotions); });
}

void
TieredStore::saveState(snap::Serializer &s) const
{
    s.beginSection("KVTS");
    s.u64(useClock_);
    stats_.save(s);
    for (const Tier *t : {&dram_, &ssd_}) {
        s.u64(t->lines.size());
        for (const auto &kv : t->lines) {
            s.u64(kv.first);
            s.u32(kv.second.bytes);
            s.u64(kv.second.use);
        }
    }
    s.endSection();
}

void
TieredStore::restoreState(snap::Deserializer &d)
{
    if (!d.beginSection("KVTS"))
        return;
    const std::uint64_t useClock = d.u64();
    TierStats stats;
    stats.restore(d);
    Tier tiers[2];
    const bool compressed[2] = {cfg_.dramCompressed, cfg_.ssdCompressed};
    for (unsigned ti = 0; ti < 2; ti++) {
        Tier &t = tiers[ti];
        const std::uint64_t n = d.arrayLen(20);
        for (std::uint64_t i = 0; i < n && d.ok(); i++) {
            const Addr addr = d.u64();
            Entry e;
            e.bytes = d.u32();
            e.use = d.u64();
            if (t.lines.count(addr) || t.lru.count(e.use)) {
                d.fail("kv tier snapshot: duplicate line/stamp");
                return;
            }
            t.lines[addr] = e;
            t.lru[e.use] = addr;
            t.usedBytes += charge(compressed[ti], e.bytes);
        }
    }
    d.endSection();
    if (!d.ok())
        return;
    useClock_ = useClock;
    stats_ = stats;
    dram_ = std::move(tiers[0]);
    ssd_ = std::move(tiers[1]);
}

} // namespace kv
} // namespace morc
