/**
 * @file
 * DRAM/SSD-style two-tier backing store for the KV-serving subsystem.
 *
 * The front cache (any `cache::Llc` scheme) sits above this store; a
 * front miss fetches through it. The store models capacity and
 * placement only — line *contents* are always synthesized functionally
 * from the tenant value models (the same design as sim::System's
 * functional memory), so a tier entry is metadata: the bytes it charges
 * against the tier's budget and its LRU stamp.
 *
 * Placement policy (ZipCache-style inclusion-free hierarchy):
 *   - origin fetches fill DRAM,
 *   - an SSD hit promotes the line to DRAM (exclusive tiers: the SSD
 *     copy is dropped),
 *   - a DRAM eviction demotes the victim to SSD,
 *   - an SSD eviction drops the line (it remains reconstructible from
 *     the origin at origin latency).
 *
 * Per-tier compression stores each line at its FPC-compressed size
 * instead of 64 B, so a compressed tier holds proportionally more
 * lines in the same byte budget — earned from the same value structure
 * the front cache compresses.
 */

#ifndef MORC_KV_TIER_HH
#define MORC_KV_TIER_HH

#include <cstdint>
#include <map>
#include <string>

#include "check/auditor.hh"
#include "snapshot/snapshot.hh"
#include "telemetry/telemetry.hh"
#include "util/types.hh"

namespace morc {
namespace kv {

/** Where a fetch was served from. */
enum class TierLevel : std::uint8_t
{
    Dram = 0,
    Ssd = 1,
    Origin = 2,
};

const char *tierLevelName(TierLevel l);

struct TierConfig
{
    std::uint64_t dramBytes = 8ull << 20;
    std::uint64_t ssdBytes = 32ull << 20;

    /** Store lines at FPC-compressed size instead of 64 B. */
    bool dramCompressed = true;
    bool ssdCompressed = true;

    Cycles dramLatency = 120;
    Cycles ssdLatency = 2000;
    Cycles originLatency = 20000;
};

struct TierStats
{
    std::uint64_t dramHits = 0;
    std::uint64_t ssdHits = 0;
    std::uint64_t originFetches = 0;
    std::uint64_t promotions = 0;
    std::uint64_t demotions = 0;
    std::uint64_t ssdDrops = 0;
    std::uint64_t writebacks = 0;

    void save(snap::Serializer &s) const;
    void restore(snap::Deserializer &d);
};

/** Exclusive DRAM-over-SSD line store with per-tier compression. */
class TieredStore : public check::Auditable, public snap::Snapshottable
{
  public:
    explicit TieredStore(const TierConfig &cfg);

    struct FetchResult
    {
        Cycles latency = 0;
        TierLevel level = TierLevel::Origin;
    };

    /**
     * Serve a front-cache miss for @p addr whose current contents are
     * @p data (used only for compressed sizing). Applies promotion /
     * fill and returns the serving tier and its latency.
     */
    FetchResult fetch(Addr addr, const CacheLine &data);

    /** Accept a dirty line evicted by the front cache. */
    void writeback(Addr addr, const CacheLine &data);

    const TierStats &stats() const { return stats_; }
    const TierConfig &config() const { return cfg_; }

    std::uint64_t dramLines() const { return dram_.lines.size(); }
    std::uint64_t ssdLines() const { return ssd_.lines.size(); }
    std::uint64_t dramUsedBytes() const { return dram_.usedBytes; }
    std::uint64_t ssdUsedBytes() const { return ssd_.usedBytes; }

    /** Tier-exclusivity + byte/LRU-accounting invariants. */
    check::AuditReport audit() const override;

    void registerProbes(telemetry::Registry &reg,
                        const std::string &prefix);

    void saveState(snap::Serializer &s) const override;
    void restoreState(snap::Deserializer &d) override;

  private:
    struct Entry
    {
        std::uint32_t bytes = 0;
        std::uint64_t use = 0; // global LRU stamp, unique per touch
    };

    /** One tier: ordered line map plus an LRU index keyed by stamp.
     *  std::map keeps every walk (audit, snapshot) deterministic. */
    struct Tier
    {
        std::map<Addr, Entry> lines;
        std::map<std::uint64_t, Addr> lru;
        std::uint64_t usedBytes = 0;
    };

    std::uint32_t storedBytes(const CacheLine &data,
                              bool compressed) const;
    void touch(Tier &t, Addr addr, Entry &e);
    void insertInto(Tier &t, std::uint64_t budget, Addr addr,
                    Entry e, bool demote_victims_to_ssd);
    void evictOver(Tier &t, std::uint64_t budget,
                   bool demote_victims_to_ssd);
    void auditTier(check::AuditReport &r, const Tier &t,
                   const char *name, std::uint64_t budget) const;

    TierConfig cfg_; // morc-analyze: allow(snapshot-completeness) construction-time config; restoreState() re-binds
    Tier dram_;
    Tier ssd_;
    std::uint64_t useClock_ = 0;
    TierStats stats_;
};

} // namespace kv
} // namespace morc

#endif // MORC_KV_TIER_HH
