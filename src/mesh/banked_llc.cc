#include "mesh/banked_llc.hh"

#include "check/check.hh"
#include "core/morc.hh"

namespace morc {
namespace mesh {

BankedLlc::BankedLlc(const MeshConfig &mesh,
                     std::uint64_t total_capacity,
                     const BankFactory &make_bank)
    : mesh_(mesh)
{
    mesh_.validate();
    const unsigned n = mesh_.tiles();
    MORC_CHECK(total_capacity % n == 0,
               "LLC capacity %llu B does not shard evenly over %u banks",
               static_cast<unsigned long long>(total_capacity), n);
    const std::uint64_t per_bank = total_capacity / n;
    MORC_CHECK(per_bank >= kLineSize,
               "bank slice of %llu B cannot hold a line",
               static_cast<unsigned long long>(per_bank));
    banks_.reserve(n);
    for (unsigned b = 0; b < n; b++) {
        banks_.push_back(make_bank(b, per_bank));
        MORC_CHECK(banks_.back() != nullptr, "bank factory returned "
                                             "null for bank %u",
                   b);
    }
}

cache::ReadResult
BankedLlc::read(Addr addr)
{
    cache::Llc &b = *banks_[mesh_.homeBank(addr)];
    const cache::LlcStats before = b.stats();
    cache::ReadResult rr = b.read(addr);
    stats_ += b.stats() - before;
    return rr;
}

cache::FillResult
BankedLlc::insert(Addr addr, const CacheLine &data, bool dirty)
{
    cache::Llc &b = *banks_[mesh_.homeBank(addr)];
    const cache::LlcStats before = b.stats();
    cache::FillResult fr = b.insert(addr, data, dirty);
    stats_ += b.stats() - before;
    return fr;
}

std::uint64_t
BankedLlc::validLines() const
{
    std::uint64_t sum = 0;
    for (const auto &b : banks_)
        sum += b->validLines();
    return sum;
}

std::uint64_t
BankedLlc::capacityBytes() const
{
    std::uint64_t sum = 0;
    for (const auto &b : banks_)
        sum += b->capacityBytes();
    return sum;
}

std::string
BankedLlc::name() const
{
    return "Banked[" + std::to_string(banks_.size()) + "x" +
           banks_.front()->name() + "]";
}

check::AuditReport
BankedLlc::audit() const
{
    check::AuditReport rep;
    const std::uint64_t per_bank = banks_.front()->capacityBytes();
    rep.require(banks_.size() == mesh_.tiles(),
                "director holds %zu banks for a %u-tile mesh",
                banks_.size(), mesh_.tiles());
    for (std::size_t b = 0; b < banks_.size(); b++) {
        rep.require(banks_[b]->capacityBytes() == per_bank,
                    "bank %zu capacity %llu B breaks the even "
                    "partition (bank 0 has %llu B)",
                    b,
                    static_cast<unsigned long long>(
                        banks_[b]->capacityBytes()),
                    static_cast<unsigned long long>(per_bank));
        rep.merge(banks_[b]->audit(),
                  "bank" + std::to_string(b) + ": ");
    }
    return rep;
}

void
BankedLlc::registerProbes(telemetry::Registry &reg,
                          const std::string &prefix)
{
    // Base catalog against the director's stats_, which accumulates
    // per-access deltas from every bank (see read()/insert()).
    cache::Llc::registerProbes(reg, prefix);
    bool morc_banks = false;
    for (const auto &b : banks_)
        morc_banks |= dynamic_cast<core::LogCache *>(b.get()) != nullptr;
    if (!morc_banks)
        return;
    const auto sum_over =
        [this](double (*f)(const core::LogCache &)) {
            double sum = 0.0;
            for (const auto &b : banks_) {
                if (auto *lc =
                        dynamic_cast<const core::LogCache *>(b.get()))
                    sum += f(*lc);
            }
            return sum;
        };
    reg.gauge(prefix + ".live_logs", [sum_over](Cycles) {
        return sum_over([](const core::LogCache &lc) {
            return double(lc.liveLogs());
        });
    });
    reg.gauge(prefix + ".all_invalid_logs", [sum_over](Cycles) {
        return sum_over([](const core::LogCache &lc) {
            return double(lc.allInvalidLogs());
        });
    });
    // Occupancy and fill are means over banks, not sums.
    const double n = static_cast<double>(banks_.size());
    reg.gauge(prefix + ".lmt_occupancy", [sum_over, n](Cycles) {
        return sum_over([](const core::LogCache &lc) {
                   return lc.lmtOccupancy();
               }) /
               n;
    });
    reg.gauge(prefix + ".active_fill_ratio", [sum_over, n](Cycles) {
        return sum_over([](const core::LogCache &lc) {
                   return lc.activeFillRatio();
               }) /
               n;
    });
    reg.gauge(prefix + ".compressed_bytes", [sum_over](Cycles) {
        return sum_over([](const core::LogCache &lc) {
            return double(lc.compressedBytesResident());
        });
    });
    reg.counter(prefix + ".log_flushes", [this](Cycles) {
        return double(stats_.logFlushes);
    });
    reg.counter(prefix + ".lmt_conflict_evicts", [this](Cycles) {
        return double(stats_.lmtConflictEvicts);
    });
}

void
BankedLlc::attachTracer(telemetry::Tracer *tracer, std::uint16_t track)
{
    cache::Llc::attachTracer(tracer, track);
    for (std::size_t b = 0; b < banks_.size(); b++) {
        banks_[b]->attachTracer(
            tracer,
            tracer ? tracer->track("bank" + std::to_string(b)) : 0);
    }
}

void
BankedLlc::clearAllStats()
{
    stats_.clear();
    for (auto &b : banks_) {
        b->stats().clear();
        b->clearWear();
    }
    wear_.clearCounts();
}

energy::WearTracker
BankedLlc::wearSnapshot() const
{
    energy::WearTracker merged;
    for (const auto &b : banks_)
        merged.merge(b->wearSnapshot());
    return merged;
}

void
BankedLlc::clearWear()
{
    for (auto &b : banks_)
        b->clearWear();
    wear_.clearCounts();
}

double
BankedLlc::invalidLineFraction() const
{
    double sum = 0.0;
    unsigned n = 0;
    for (const auto &b : banks_) {
        if (auto *lc = dynamic_cast<const core::LogCache *>(b.get())) {
            sum += lc->invalidLineFraction();
            n++;
        }
    }
    return n == 0 ? 0.0 : sum / n;
}

bool
BankedLlc::debugCorruptLmt(std::uint64_t seed)
{
    const unsigned n = numBanks();
    for (unsigned i = 0; i < n; i++) {
        const unsigned b = static_cast<unsigned>((seed + i) % n);
        if (auto *lc = dynamic_cast<core::LogCache *>(banks_[b].get())) {
            if (lc->debugCorruptLmt(seed))
                return true;
        }
    }
    return false;
}

void
BankedLlc::saveState(snap::Serializer &s) const
{
    s.beginSection("BLLC");
    s.u32(mesh_.width);
    s.u32(mesh_.height);
    s.u32(static_cast<std::uint32_t>(banks_.size()));
    stats_.save(s);
    for (const auto &b : banks_)
        b->saveState(s);
    s.endSection();
}

void
BankedLlc::restoreState(snap::Deserializer &d)
{
    if (!d.beginSection("BLLC"))
        return;
    const std::uint32_t width = d.u32();
    const std::uint32_t height = d.u32();
    const std::uint32_t numBanks = d.u32();
    if (d.ok() && (width != mesh_.width || height != mesh_.height ||
                   numBanks != banks_.size())) {
        d.fail("banked LLC topology mismatch");
        d.endSection();
        return;
    }
    stats_.restore(d);
    for (auto &b : banks_) {
        if (!d.ok())
            break;
        b->restoreState(d);
    }
    d.endSection();
}

} // namespace mesh
} // namespace morc
