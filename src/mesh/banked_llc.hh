/**
 * @file
 * Bank director: the sharded LLC of the tiled substrate.
 *
 * The LLC is split into one bank per tile; each bank is a complete
 * cache::Llc scheme instance (for MORC: its own log store, tag store,
 * and LMT), so compressed capacity scales with tiles exactly as the
 * paper's distributed design intends. The director owns the banks,
 * routes every access to the home bank (MeshConfig::homeBank — a pure
 * address hash), and aggregates per-bank statistics so the rest of the
 * system sees one Llc.
 *
 * The fundamental structural invariant the banking layer adds is
 * cross-bank exclusivity: an address may only ever be resident in its
 * home bank. Routing enforces it by construction here; morc_check
 * --mesh additionally *verifies* it from the outside by probing foreign
 * banks, so a future placement/migration bug cannot silently alias a
 * line into two banks.
 */

#ifndef MORC_MESH_BANKED_LLC_HH
#define MORC_MESH_BANKED_LLC_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cache/llc.hh"
#include "mesh/topology.hh"

namespace morc {
namespace mesh {

/** Address-interleaved collection of per-tile LLC bank slices. */
class BankedLlc : public cache::Llc
{
  public:
    /** Builds the scheme instance of one bank slice. */
    using BankFactory = std::function<std::unique_ptr<cache::Llc>(
        unsigned bank, std::uint64_t bank_capacity_bytes)>;

    /**
     * @param mesh           Topology (bank count and address hash).
     * @param total_capacity Uncompressed data capacity summed over all
     *                       banks; must divide evenly.
     * @param make_bank      Factory invoked once per bank.
     */
    BankedLlc(const MeshConfig &mesh, std::uint64_t total_capacity,
              const BankFactory &make_bank);

    cache::ReadResult read(Addr addr) override;
    cache::FillResult insert(Addr addr, const CacheLine &data,
                             bool dirty) override;
    std::uint64_t validLines() const override;
    std::uint64_t capacityBytes() const override;
    std::string name() const override;

    /** Merge of every bank's audit (issues prefixed "bankN:") plus the
     *  director's own capacity-partition checks. */
    check::AuditReport audit() const override;

    /** Aggregate probes: the base Llc catalog reads the director's
     *  accumulated stats (sum over banks), and when the banks are MORC
     *  instances the scheme gauges (live_logs, lmt_occupancy, ...) are
     *  published as cross-bank aggregates under the same names the flat
     *  scheme uses, so series stay comparable flat vs. banked. */
    void registerProbes(telemetry::Registry &reg,
                        const std::string &prefix) override;

    /** Fan the tracer out: each bank records onto its own
     *  "<base>.bankN" track so per-bank event timelines stay separable
     *  in the exported trace. */
    void attachTracer(telemetry::Tracer *tracer,
                      std::uint16_t track) override;

    unsigned numBanks() const
    {
        return static_cast<unsigned>(banks_.size());
    }

    unsigned homeBank(Addr addr) const { return mesh_.homeBank(addr); }

    cache::Llc &bank(unsigned i) { return *banks_[i]; }
    const cache::Llc &bank(unsigned i) const { return *banks_[i]; }

    const MeshConfig &mesh() const { return mesh_; }

    /** Clear the aggregate and every bank's counters (end of warm-up). */
    void clearAllStats();

    /** Merge of every bank's wear histogram: bank frames stack as
     *  additional sets, in bank order. */
    energy::WearTracker wearSnapshot() const override;

    /** Zero the wear counters of every bank (and the unused director
     *  tracker), keeping frame geometry. */
    void clearWear() override;

    /** Director stats + every bank's state, in bank order. */
    void saveState(snap::Serializer &s) const override;

    /** Restore into an identically configured director (same mesh and
     *  bank scheme); each bank restores its own section. */
    void restoreState(snap::Deserializer &d) override;

    /** Mean invalid-line fraction over MORC banks (0 for other
     *  schemes); mirrors core::LogCache::invalidLineFraction. */
    double invalidLineFraction() const;

    /**
     * Corrupt one valid LMT entry in some bank (seed-selected, first
     * non-empty bank wins) for auditor mutation testing. Returns false
     * when no bank is a MORC instance holding a valid entry.
     */
    bool debugCorruptLmt(std::uint64_t seed);

  private:
    MeshConfig mesh_;
    std::vector<std::unique_ptr<cache::Llc>> banks_;
};

} // namespace mesh
} // namespace morc

#endif // MORC_MESH_BANKED_LLC_HH
