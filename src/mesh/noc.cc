#include "mesh/noc.hh"

#include <algorithm>

#include "check/check.hh"

namespace morc {
namespace mesh {

namespace {

/** Fixed histogram bucketing keeps reports comparable across mesh
 *  sizes (and byte-identical across thread counts). */
const std::vector<std::uint64_t> kHopBounds = {0, 1, 2, 4, 8, 16, 32};
const std::vector<std::uint64_t> kQueueBounds = {0,  2,   8,   32,
                                                 128, 512, 2048};

} // namespace

Noc::Noc(const MeshConfig &cfg)
    : cfg_(cfg), linkBusy_(static_cast<std::size_t>(cfg.tiles()) * 4, 0),
      hops_(kHopBounds), queue_(kQueueBounds)
{
    cfg_.validate();
}

Cycles
Noc::transfer(unsigned from, unsigned to, unsigned bytes, Cycles now)
{
    MORC_CHECK(from < cfg_.tiles() && to < cfg_.tiles(),
               "transfer %u -> %u outside %ux%u mesh", from, to,
               cfg_.width, cfg_.height);
    messages_++;
    if (from == to) {
        hops_.record(0);
        queue_.record(0);
        return 0;
    }

    const Cycles ser = serializationCycles(bytes);
    unsigned x = cfg_.tileX(from);
    unsigned y = cfg_.tileY(from);
    const unsigned tx = cfg_.tileX(to);
    const unsigned ty = cfg_.tileY(to);
    Cycles head = now;
    Cycles queued = 0;
    unsigned nhops = 0;
    while (x != tx || y != ty) {
        Dir d;
        if (x != tx)
            d = x < tx ? East : West;
        else
            d = y < ty ? South : North;
        const unsigned link = linkIndex(cfg_.tileAt(x, y), d);
        const Cycles start = std::max(head, linkBusy_[link]);
        queued += start - head;
        linkBusy_[link] = start + ser;
        head = start + cfg_.hopCycles;
        switch (d) {
          case East: x++; break;
          case West: x--; break;
          case South: y++; break;
          case North: y--; break;
        }
        nhops++;
    }
    hops_.record(nhops);
    queue_.record(queued);
    hopSum_ += nhops;
    // Head-flit pipeline latency plus the tail draining over the last
    // link.
    return (head - now) + ser;
}

void
Noc::clearCounters()
{
    std::fill(linkBusy_.begin(), linkBusy_.end(), 0);
    hops_.clear();
    queue_.clear();
    messages_ = 0;
    hopSum_ = 0;
}

} // namespace mesh
} // namespace morc
