#include "mesh/noc.hh"

#include <algorithm>

#include "check/check.hh"

namespace morc {
namespace mesh {

namespace {

/** Fixed histogram bucketing keeps reports comparable across mesh
 *  sizes (and byte-identical across thread counts). */
const std::vector<std::uint64_t> kHopBounds = {0, 1, 2, 4, 8, 16, 32};
const std::vector<std::uint64_t> kQueueBounds = {0,  2,   8,   32,
                                                 128, 512, 2048};

} // namespace

Noc::Noc(const MeshConfig &cfg)
    : cfg_(cfg), linkBusy_(static_cast<std::size_t>(cfg.tiles()) * 4, 0),
      linkBusyCycles_(linkBusy_.size(), 0), hops_(kHopBounds),
      queue_(kQueueBounds)
{
    cfg_.validate();
}

Cycles
Noc::transfer(unsigned from, unsigned to, unsigned bytes, Cycles now)
{
    MORC_CHECK(from < cfg_.tiles() && to < cfg_.tiles(),
               "transfer %u -> %u outside %ux%u mesh", from, to,
               cfg_.width, cfg_.height);
    messages_++;
    if (from == to) {
        hops_.record(0);
        queue_.record(0);
        return 0;
    }

    const Cycles ser = serializationCycles(bytes);
    unsigned x = cfg_.tileX(from);
    unsigned y = cfg_.tileY(from);
    const unsigned tx = cfg_.tileX(to);
    const unsigned ty = cfg_.tileY(to);
    Cycles head = now;
    Cycles queued = 0;
    unsigned nhops = 0;
    while (x != tx || y != ty) {
        Dir d;
        if (x != tx)
            d = x < tx ? East : West;
        else
            d = y < ty ? South : North;
        const unsigned link = linkIndex(cfg_.tileAt(x, y), d);
        const Cycles start = std::max(head, linkBusy_[link]);
        if (tracer_ && start - head >= stallThreshold_ &&
            stallThreshold_ > 0) {
            tracer_->record(telemetry::EventKind::NocStall, traceTrack_,
                            link, start - head);
        }
        queued += start - head;
        linkBusy_[link] = start + ser;
        linkBusyCycles_[link] += ser;
        head = start + cfg_.hopCycles;
        switch (d) {
          case East: x++; break;
          case West: x--; break;
          case South: y++; break;
          case North: y--; break;
        }
        nhops++;
    }
    hops_.record(nhops);
    queue_.record(queued);
    hopSum_ += nhops;
    queueSum_ += queued;
    // Head-flit pipeline latency plus the tail draining over the last
    // link.
    return (head - now) + ser;
}

void
Noc::clearCounters()
{
    std::fill(linkBusy_.begin(), linkBusy_.end(), 0);
    std::fill(linkBusyCycles_.begin(), linkBusyCycles_.end(), 0);
    hops_.clear();
    queue_.clear();
    messages_ = 0;
    hopSum_ = 0;
    queueSum_ = 0;
}

void
Noc::registerProbes(telemetry::Registry &reg, const std::string &prefix,
                    unsigned max_per_link_probes)
{
    reg.counter(prefix + ".messages",
                [this](Cycles) { return double(messages_); });
    reg.counter(prefix + ".queue_cycles",
                [this](Cycles) { return double(queueSum_); });
    reg.counter(prefix + ".max_link_busy_cycles", [this](Cycles) {
        std::uint64_t m = 0;
        for (const std::uint64_t b : linkBusyCycles_)
            m = std::max(m, b);
        return double(m);
    });
    reg.gauge(prefix + ".links_busy", [this](Cycles now) {
        std::uint64_t n = 0;
        for (const Cycles b : linkBusy_)
            n += b > now ? 1 : 0;
        return double(n);
    });
    if (linkBusyCycles_.size() > max_per_link_probes)
        return;
    for (unsigned i = 0; i < linkBusyCycles_.size(); i++) {
        reg.counter(prefix + ".link" + std::to_string(i) +
                        ".busy_cycles",
                    [this, i](Cycles) {
                        return double(linkBusyCycles_[i]);
                    });
    }
}

void
Noc::saveState(snap::Serializer &s) const
{
    s.beginSection("NOC ");
    s.u32(cfg_.width);
    s.u32(cfg_.height);
    s.vecU64(linkBusy_);
    s.vecU64(linkBusyCycles_);
    hops_.save(s);
    queue_.save(s);
    s.u64(messages_);
    s.u64(hopSum_);
    s.u64(queueSum_);
    s.endSection();
}

void
Noc::restoreState(snap::Deserializer &d)
{
    if (!d.beginSection("NOC "))
        return;
    const std::uint32_t width = d.u32();
    const std::uint32_t height = d.u32();
    std::vector<Cycles> busy;
    std::vector<std::uint64_t> busyCycles;
    d.vecU64(busy);
    d.vecU64(busyCycles);
    if (d.ok() && (width != cfg_.width || height != cfg_.height ||
                   busy.size() != linkBusy_.size() ||
                   busyCycles.size() != linkBusyCycles_.size())) {
        d.fail("NoC topology mismatch");
    }
    stats::Histogram hops = hops_;
    stats::Histogram queue = queue_;
    hops.restore(d);
    queue.restore(d);
    const std::uint64_t messages = d.u64();
    const std::uint64_t hopSum = d.u64();
    const std::uint64_t queueSum = d.u64();
    d.endSection();
    if (!d.ok())
        return;
    linkBusy_ = std::move(busy);
    linkBusyCycles_ = std::move(busyCycles);
    hops_ = std::move(hops);
    queue_ = std::move(queue);
    messages_ = messages;
    hopSum_ = hopSum;
    queueSum_ = queueSum;
}

} // namespace mesh
} // namespace morc
