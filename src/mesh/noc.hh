/**
 * @file
 * 2D-mesh network-on-chip timing model.
 *
 * Messages are XY-routed (x first, then y — deadlock-free dimension
 * order). The head flit pays @ref MeshConfig::hopCycles per router; each
 * directed link is a bandwidth resource that serializes one message at a
 * time, so queueing delay emerges from per-link occupancy exactly as
 * memory-channel queueing does in sim::MemoryChannel. Wormhole-style:
 * serialization is paid once (the pipeline drains behind the head), but
 * every traversed link is held for the full serialization time.
 *
 * The model is deliberately state-light — one busy-until cycle per
 * directed link — so a 32x32 mesh costs a few KB and stays trivially
 * deterministic: latency depends only on the sequence of transfer()
 * calls, never on host state.
 */

#ifndef MORC_MESH_NOC_HH
#define MORC_MESH_NOC_HH

#include <cstdint>
#include <vector>

#include "mesh/topology.hh"
#include "stats/histogram.hh"
#include "telemetry/telemetry.hh"
#include "telemetry/tracer.hh"
#include "util/types.hh"

namespace morc {
namespace mesh {

/** Mesh NoC with per-link bandwidth contention. */
class Noc
{
  public:
    explicit Noc(const MeshConfig &cfg);

    /**
     * Deliver @p bytes of payload from tile @p from to tile @p to,
     * entering the network at cycle @p now.
     *
     * Charges occupancy on every traversed link (later transfers queue
     * behind it) and returns the delivery latency in cycles. A
     * tile-local message (from == to) is free. For posted messages
     * (write-backs) the caller simply ignores the return value — the
     * bandwidth is still consumed.
     */
    Cycles transfer(unsigned from, unsigned to, unsigned bytes,
                    Cycles now);

    /** Serialization cycles one message of @p bytes payload occupies a
     *  link for (header included, minimum one cycle). */
    Cycles
    serializationCycles(unsigned bytes) const
    {
        return std::max<std::uint64_t>(
            divCeil(bytes + cfg_.headerBytes, cfg_.linkBytesPerCycle),
            1);
    }

    const MeshConfig &config() const { return cfg_; }

    /** Distribution of per-message hop counts. */
    const stats::Histogram &hopHistogram() const { return hops_; }

    /** Distribution of per-message link-queueing delay (cycles). */
    const stats::Histogram &queueHistogram() const { return queue_; }

    std::uint64_t messages() const { return messages_; }

    /** Mean hops per message (0 when idle). */
    double
    meanHops() const
    {
        return messages_ == 0 ? 0.0
                              : static_cast<double>(hopSum_) /
                                    static_cast<double>(messages_);
    }

    /** Reset counters and link occupancy (end of warm-up rebases every
     *  clock in the system to zero). */
    void clearCounters();

    /** Cumulative serialization cycles charged to directed link @p i
     *  (differencing adjacent epoch samples yields the link's busy
     *  fraction for that epoch). */
    std::uint64_t linkBusyCycles(unsigned i) const
    {
        return linkBusyCycles_[i];
    }

    unsigned numLinks() const
    {
        return static_cast<unsigned>(linkBusy_.size());
    }

    /** Cumulative link-queueing delay over all messages. */
    std::uint64_t queueCycleSum() const { return queueSum_; }

    /**
     * NoC probe catalog: aggregate message/queue counters, the
     * busiest-link cumulative occupancy (hot-spot detector), and — for
     * meshes of up to @p max_per_link_probes links — one busy-cycles
     * counter per directed link ("<prefix>.linkN.busy_cycles"; the
     * per-link series are what the issue's per-link busy fraction is
     * derived from). Larger meshes publish aggregates only, so series
     * counts stay bounded.
     */
    void registerProbes(telemetry::Registry &reg,
                        const std::string &prefix,
                        unsigned max_per_link_probes = 128);

    /** Record NocStall events (queueing >= @p threshold cycles) onto
     *  @p track of @p tracer. */
    void
    attachTracer(telemetry::Tracer *tracer, std::uint16_t track,
                 Cycles threshold)
    {
        tracer_ = tracer;
        traceTrack_ = track;
        stallThreshold_ = threshold;
    }

    /** Append link occupancy and message statistics. */
    void saveState(snap::Serializer &s) const;

    /** Restore state written by saveState(); topology must match. */
    void restoreState(snap::Deserializer &d);

  private:
    /** Directed-link index: 4 outgoing links per tile. */
    enum Dir { East, West, North, South };
    unsigned
    linkIndex(unsigned tile, Dir d) const
    {
        return tile * 4 + static_cast<unsigned>(d);
    }

    MeshConfig cfg_;
    std::vector<Cycles> linkBusy_;
    std::vector<std::uint64_t> linkBusyCycles_;
    stats::Histogram hops_;
    stats::Histogram queue_;
    std::uint64_t messages_ = 0;
    std::uint64_t hopSum_ = 0;
    std::uint64_t queueSum_ = 0;

    telemetry::Tracer *tracer_ = nullptr; // morc-analyze: allow(snapshot-completeness) runtime wiring, re-bound by the owner
    std::uint16_t traceTrack_ = 0; // morc-analyze: allow(snapshot-completeness) runtime wiring, re-bound by the owner
    Cycles stallThreshold_ = 0; // morc-analyze: allow(snapshot-completeness) configuration, set at wiring time
};

} // namespace mesh
} // namespace morc

#endif // MORC_MESH_NOC_HH
