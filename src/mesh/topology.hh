/**
 * @file
 * Tiled-manycore geometry: a width x height 2D mesh of tiles, each
 * holding one core and one LLC bank slice, with memory controllers at
 * edge tiles (the PriME-style substrate the paper evaluates MORC on).
 *
 * Everything here is a pure function of the configuration, so address ->
 * bank and address -> controller mappings are deterministic and shared
 * by the simulator, the bank director, and the morc_check cross-bank
 * exclusivity audit.
 *
 * Home-bank interleaving is at @ref interleaveBytes granularity (a page
 * by default) rather than per line: MORC's tag base-delta compression
 * and value-locality log selection both rely on consecutive fills being
 * address-adjacent, and per-line striping would shred every fill burst
 * across all banks.
 */

#ifndef MORC_MESH_TOPOLOGY_HH
#define MORC_MESH_TOPOLOGY_HH

#include <cstdint>

#include "check/check.hh"
#include "util/types.hh"

namespace morc {
namespace mesh {

/** Geometry and NoC timing of the tiled substrate. */
struct MeshConfig
{
    /** Mesh dimensions; tiles = width x height, bank b lives at tile b. */
    unsigned width = 4;
    unsigned height = 4;

    /** Memory controllers placed at edge tiles (bottom row first, then
     *  top row, evenly spaced). Each owns one MemoryChannel. */
    unsigned memControllers = 2;

    /** Home-bank address interleaving granule (page-sized by default;
     *  see file comment). */
    std::uint64_t interleaveBytes = 4096;

    /** Per-hop router + link traversal latency for the head flit. */
    Cycles hopCycles = 2;

    /** Link bandwidth: payload bytes accepted per cycle. */
    unsigned linkBytesPerCycle = 16;

    /** Header/command flit overhead added to every message. */
    unsigned headerBytes = 8;

    unsigned tiles() const { return width * height; }

    unsigned tileX(unsigned tile) const { return tile % width; }
    unsigned tileY(unsigned tile) const { return tile / width; }

    unsigned
    tileAt(unsigned x, unsigned y) const
    {
        return y * width + x;
    }

    /** XY-routed hop count (Manhattan distance). */
    unsigned
    hops(unsigned from, unsigned to) const
    {
        const auto d = [](unsigned a, unsigned b) {
            return a > b ? a - b : b - a;
        };
        return d(tileX(from), tileX(to)) + d(tileY(from), tileY(to));
    }

    /** Lines per home-bank interleave granule. */
    std::uint64_t
    interleaveLines() const
    {
        return interleaveBytes / kLineSize;
    }

    /** Bank (== tile) owning @p addr: granule-interleaved round-robin. */
    unsigned
    homeBank(Addr addr) const
    {
        return static_cast<unsigned>(
            (lineNumber(addr) / interleaveLines()) % tiles());
    }

    /** Memory controller owning @p addr. Striding by a different level
     *  of the granule index decouples the controller map from the bank
     *  map, so one bank's misses spread over all channels. */
    unsigned
    controllerFor(Addr addr) const
    {
        return static_cast<unsigned>(
            (lineNumber(addr) / interleaveLines() / tiles()) %
            memControllers);
    }

    /**
     * Tile of controller @p c: even controllers on the bottom edge,
     * odd ones on the top edge, each group evenly spaced along its row.
     */
    unsigned
    controllerTile(unsigned c) const
    {
        const bool top = (c & 1) != 0;
        const unsigned group = top ? memControllers / 2
                                   : (memControllers + 1) / 2;
        const unsigned slot = c / 2;
        const unsigned col = ((2 * slot + 1) * width) / (2 * group);
        return tileAt(col, top ? height - 1 : 0);
    }

    /** Abort (in checked builds) on a nonsensical configuration. */
    void
    validate() const
    {
        MORC_CHECK(width >= 1 && height >= 1, "empty mesh %ux%u", width,
                   height);
        MORC_CHECK(memControllers >= 1 &&
                       memControllers <= 2 * width,
                   "%u memory controllers do not fit the %u-wide edge "
                   "rows",
                   memControllers, width);
        MORC_CHECK(interleaveBytes >= kLineSize &&
                       interleaveBytes % kLineSize == 0,
                   "interleaveBytes %llu is not a multiple of the %u B "
                   "line",
                   static_cast<unsigned long long>(interleaveBytes),
                   kLineSize);
        MORC_CHECK(linkBytesPerCycle >= 1, "zero link bandwidth");
    }
};

} // namespace mesh
} // namespace morc

#endif // MORC_MESH_TOPOLOGY_HH
