/**
 * @file
 * Private per-core L1 data cache (Table 5: 32 KB, 4-way, 64 B lines,
 * single-cycle, write-back write-allocate).
 */

#ifndef MORC_SIM_L1_HH
#define MORC_SIM_L1_HH

#include <optional>
#include <vector>

#include "snapshot/snapshot.hh"
#include "util/rng.hh"
#include "util/types.hh"

namespace morc {
namespace sim {

/** A dirty line displaced from the L1. */
struct L1Victim
{
    Addr addr;
    CacheLine data;
    bool dirty;
};

/** Small set-associative write-back L1. */
class L1Cache
{
  public:
    L1Cache(std::uint64_t capacity_bytes = 32 * 1024, unsigned ways = 4)
        : ways_(ways), numSets_(capacity_bytes / kLineSize / ways)
    {
        store_.resize(numSets_ * ways_);
    }

    /** Look up @p addr; updates recency. */
    bool
    lookup(Addr addr)
    {
        Way *w = find(addr);
        if (w) {
            w->lastUse = ++clock_;
            return true;
        }
        return false;
    }

    /** Overwrite a resident line's data and mark it dirty (store hit). */
    void
    update(Addr addr, const CacheLine &data)
    {
        Way *w = find(addr);
        if (w) {
            w->data = data;
            w->dirty = true;
            w->lastUse = ++clock_;
        }
    }

    /** Data of a resident line, or nullptr. */
    const CacheLine *
    peek(Addr addr)
    {
        Way *w = find(addr);
        return w ? &w->data : nullptr;
    }

    /** Allocate @p addr; returns the displaced victim if one existed. */
    std::optional<L1Victim>
    fill(Addr addr, const CacheLine &data, bool dirty)
    {
        const std::uint64_t set = setOf(addr);
        Way *victim = nullptr;
        for (unsigned i = 0; i < ways_; i++) {
            Way &w = store_[set * ways_ + i];
            if (!w.valid) {
                victim = &w;
                break;
            }
            if (!victim || w.lastUse < victim->lastUse)
                victim = &w;
        }
        std::optional<L1Victim> out;
        if (victim->valid) {
            out = L1Victim{victim->tag << kLineShift, victim->data,
                           victim->dirty};
        }
        victim->tag = lineNumber(addr);
        victim->valid = true;
        victim->dirty = dirty;
        victim->data = data;
        victim->lastUse = ++clock_;
        return out;
    }

    /** Geometry fingerprint plus every way's contents. */
    void
    save(snap::Serializer &s) const
    {
        s.u32(ways_);
        s.u64(numSets_);
        s.u64(clock_);
        s.vec(store_, [&s](const Way &w) {
            s.u64(w.tag);
            s.boolean(w.valid);
            s.boolean(w.dirty);
            s.u64(w.lastUse);
            s.bytes(w.data.bytes.data(), kLineSize);
        });
    }

    /** Restore into an identically sized L1. */
    void
    restore(snap::Deserializer &d)
    {
        const std::uint32_t ways = d.u32();
        const std::uint64_t numSets = d.u64();
        const std::uint64_t clock = d.u64();
        if (d.ok() && (ways != ways_ || numSets != numSets_))
            d.fail("L1 geometry mismatch");
        std::vector<Way> store;
        d.readVec(store, 8 + 1 + 1 + 8 + kLineSize, [&d]() {
            Way w;
            w.tag = d.u64();
            w.valid = d.boolean();
            w.dirty = d.boolean();
            w.lastUse = d.u64();
            d.bytes(w.data.bytes.data(), kLineSize);
            return w;
        });
        if (d.ok() && store.size() != store_.size())
            d.fail("L1 store size mismatch");
        if (!d.ok())
            return;
        clock_ = clock;
        store_ = std::move(store);
    }

  private:
    struct Way
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lastUse = 0;
        CacheLine data{};
    };

    std::uint64_t
    setOf(Addr addr) const
    {
        // Real L1s index by address bits; this preserves the spatial
        // clustering of fills and therefore of evictions.
        return lineNumber(addr) & (numSets_ - 1);
    }

    Way *
    find(Addr addr)
    {
        const std::uint64_t set = setOf(addr);
        const Addr tag = lineNumber(addr);
        for (unsigned i = 0; i < ways_; i++) {
            Way &w = store_[set * ways_ + i];
            if (w.valid && w.tag == tag)
                return &w;
        }
        return nullptr;
    }

    unsigned ways_;
    std::uint64_t numSets_;
    std::vector<Way> store_;
    std::uint64_t clock_ = 0;
};

} // namespace sim
} // namespace morc

#endif // MORC_SIM_L1_HH
