/**
 * @file
 * FCFS, bandwidth-capped memory channel (Table 5: FCFS controller,
 * closed-page DDR3-1600).
 *
 * Bandwidth is the first-class constraint of the paper: every 64 B
 * transfer occupies the channel for bytes/bandwidth seconds, and queueing
 * delay emerges from FCFS ordering. A closed-page DRAM access latency is
 * charged on top for reads.
 */

#ifndef MORC_SIM_MEMCHANNEL_HH
#define MORC_SIM_MEMCHANNEL_HH

#include <algorithm>
#include <cstdint>
#include <string>

#include "snapshot/snapshot.hh"
#include "telemetry/telemetry.hh"
#include "util/types.hh"

namespace morc {
namespace sim {

/** Shared FCFS channel with a hard bandwidth cap. */
class MemoryChannel
{
  public:
    /**
     * @param bytes_per_sec Sustained bandwidth cap.
     * @param clock_hz      Core clock for cycle conversion.
     * @param access_cycles Closed-page access latency (activate + CAS +
     *                      precharge; ~35 ns at DDR3-1600 9-9-9).
     */
    MemoryChannel(double bytes_per_sec, double clock_hz = 2e9,
                  Cycles access_cycles = 70)
        : cyclesPerByte_(clock_hz / bytes_per_sec),
          accessCycles_(access_cycles)
    {}

    /**
     * A read (fill) at time @p now: queues behind earlier transfers.
     * @return Total latency in cycles until data is delivered.
     */
    Cycles
    readAccess(Cycles now, unsigned bytes = kLineSize)
    {
        const Cycles queued = occupy(now, bytes);
        reads_++;
        return queued + accessCycles_ + occupancyCycles(bytes);
    }

    /**
     * A posted write (write-back): completes asynchronously, so the
     * caller observes no latency, but the channel is occupied exactly
     * as a read of the same size would occupy it — later accesses
     * queue behind the write's data transfer.
     */
    void
    writeAccess(Cycles now, unsigned bytes = kLineSize)
    {
        occupy(now, bytes);
        writes_++;
    }

    /** Reset counters and rebase time (end of warm-up: the cores'
     *  cycle counters restart from zero too). */
    void
    clearCounters()
    {
        reads_ = 0;
        writes_ = 0;
        bytes_ = 0;
        busyUntil_ = 0;
    }

    std::uint64_t reads() const { return reads_; }
    std::uint64_t writes() const { return writes_; }

    /** Total bytes moved (reads and writes both count). */
    std::uint64_t bytesTransferred() const { return bytes_; }

    double cyclesPerByte() const { return cyclesPerByte_; }

    /** Data-transfer cycles a @p bytes transfer holds the channel for. */
    Cycles
    occupancyCycles(unsigned bytes) const
    {
        return static_cast<Cycles>(cyclesPerByte_ * bytes);
    }

    /** First cycle the channel is free again (for tests/telemetry). */
    Cycles busyUntil() const { return busyUntil_; }

    /** Channel probe catalog: read/write/byte counters plus the
     *  queue-depth gauge (cycles of backlog at the sample instant). */
    void
    registerProbes(telemetry::Registry &reg, const std::string &prefix)
    {
        reg.counter(prefix + ".reads",
                    [this](Cycles) { return double(reads_); });
        reg.counter(prefix + ".writes",
                    [this](Cycles) { return double(writes_); });
        reg.counter(prefix + ".bytes",
                    [this](Cycles) { return double(bytes_); });
        reg.gauge(prefix + ".queue_depth_cycles", [this](Cycles now) {
            return busyUntil_ > now ? double(busyUntil_ - now) : 0.0;
        });
    }

    /** Rate fingerprint plus occupancy and counters. */
    void
    save(snap::Serializer &s) const
    {
        s.f64(cyclesPerByte_);
        s.u64(accessCycles_);
        s.u64(busyUntil_);
        s.u64(reads_);
        s.u64(writes_);
        s.u64(bytes_);
    }

    /** Restore into a channel built with the same bandwidth/latency. */
    void
    restore(snap::Deserializer &d)
    {
        const double cyclesPerByte = d.f64();
        const std::uint64_t accessCycles = d.u64();
        const Cycles busyUntil = d.u64();
        const std::uint64_t reads = d.u64();
        const std::uint64_t writes = d.u64();
        const std::uint64_t bytes = d.u64();
        if (d.ok() && (cyclesPerByte != cyclesPerByte_ ||
                       accessCycles != accessCycles_)) {
            d.fail("memory channel timing mismatch");
        }
        if (!d.ok())
            return;
        busyUntil_ = busyUntil;
        reads_ = reads;
        writes_ = writes;
        bytes_ = bytes;
    }

  private:
    /** FCFS-claim the channel for one transfer; returns the queueing
     *  delay. Shared by reads and writes so their occupancy can never
     *  drift apart. */
    Cycles
    occupy(Cycles now, unsigned bytes)
    {
        const Cycles start = std::max(now, busyUntil_);
        busyUntil_ = start + occupancyCycles(bytes);
        bytes_ += bytes;
        return start - now;
    }

    double cyclesPerByte_;
    Cycles accessCycles_;
    Cycles busyUntil_ = 0;
    std::uint64_t reads_ = 0;
    std::uint64_t writes_ = 0;
    std::uint64_t bytes_ = 0;
};

} // namespace sim
} // namespace morc

#endif // MORC_SIM_MEMCHANNEL_HH
