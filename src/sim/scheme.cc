#include "sim/scheme.hh"

#include "cache/adaptive.hh"
#include "cache/decoupled.hh"
#include "cache/ideal.hh"
#include "cache/sc2.hh"
#include "cache/touche.hh"
#include "cache/uncompressed.hh"

namespace morc {
namespace sim {

const char *
schemeName(Scheme s)
{
    switch (s) {
      case Scheme::Uncompressed: return "Uncompressed";
      case Scheme::Uncompressed8x: return "Uncompressed8x";
      case Scheme::Adaptive: return "Adaptive";
      case Scheme::Decoupled: return "Decoupled";
      case Scheme::Sc2: return "SC2";
      case Scheme::Morc: return "MORC";
      case Scheme::MorcMerged: return "MORCMerged";
      case Scheme::OracleIntra: return "Oracle-Intra";
      case Scheme::OracleInter: return "Oracle-Inter";
      case Scheme::Touche: return "Touche";
    }
    return "?";
}

const std::vector<SchemeInfo> &
allSchemes()
{
    static const std::vector<SchemeInfo> kRegistry = {
        {Scheme::Uncompressed, "Uncompressed", "uncompressed"},
        {Scheme::Uncompressed8x, "Uncompressed8x", "uncompressed8x"},
        {Scheme::Adaptive, "Adaptive", "adaptive"},
        {Scheme::Decoupled, "Decoupled", "decoupled"},
        {Scheme::Sc2, "SC2", "sc2"},
        {Scheme::Morc, "MORC", "morc"},
        {Scheme::MorcMerged, "MORCMerged", "morc-merged"},
        {Scheme::OracleIntra, "Oracle-Intra", "oracle-intra"},
        {Scheme::OracleInter, "Oracle-Inter", "oracle-inter"},
        {Scheme::Touche, "Touche", "touche"},
    };
    return kRegistry;
}

bool
schemeFromCliName(const std::string &name, Scheme *out)
{
    if (name == "ideal") { // legacy alias kept for old scripts
        *out = Scheme::OracleIntra;
        return true;
    }
    for (const SchemeInfo &info : allSchemes()) {
        if (name == info.cliName) {
            *out = info.scheme;
            return true;
        }
    }
    return false;
}

energy::Engine
schemeEngine(Scheme s)
{
    switch (s) {
      case Scheme::Adaptive:
      case Scheme::Decoupled:
      case Scheme::Touche:
        return energy::Engine::CPack;
      case Scheme::Sc2:
        return energy::Engine::Sc2;
      case Scheme::Morc:
      case Scheme::MorcMerged:
        return energy::Engine::Lbe;
      default:
        return energy::Engine::None;
    }
}

unsigned
schemeBaseDecompressionLatency(Scheme s)
{
    (void)s;
    // Prior schemes charge a flat +4 cycles; that is already returned
    // via ReadResult::extraLatency by each model, so nothing flat is
    // added here. Kept as an extension point for latency studies.
    return 0;
}

std::unique_ptr<cache::Llc>
makeLlc(Scheme scheme, std::uint64_t capacity_bytes,
        const core::MorcConfig *morc_override)
{
    switch (scheme) {
      case Scheme::Uncompressed:
      case Scheme::Uncompressed8x:
        return std::make_unique<cache::UncompressedCache>(capacity_bytes);
      case Scheme::Adaptive: {
        cache::AdaptiveCache::Config cfg;
        cfg.capacityBytes = capacity_bytes;
        return std::make_unique<cache::AdaptiveCache>(cfg);
      }
      case Scheme::Decoupled: {
        cache::DecoupledCache::Config cfg;
        cfg.capacityBytes = capacity_bytes;
        return std::make_unique<cache::DecoupledCache>(cfg);
      }
      case Scheme::Sc2: {
        cache::Sc2Cache::Config cfg;
        cfg.capacityBytes = capacity_bytes;
        return std::make_unique<cache::Sc2Cache>(cfg);
      }
      case Scheme::Morc:
      case Scheme::MorcMerged: {
        core::MorcConfig cfg;
        if (morc_override)
            cfg = *morc_override;
        cfg.capacityBytes = capacity_bytes;
        cfg.mergedTags = scheme == Scheme::MorcMerged;
        return std::make_unique<core::LogCache>(cfg);
      }
      case Scheme::OracleIntra:
        return std::make_unique<cache::IdealCache>(
            cache::OracleScope::IntraLine, capacity_bytes);
      case Scheme::OracleInter:
        return std::make_unique<cache::IdealCache>(
            cache::OracleScope::InterLine, capacity_bytes);
      case Scheme::Touche: {
        cache::ToucheCache::Config cfg;
        cfg.capacityBytes = capacity_bytes;
        return std::make_unique<cache::ToucheCache>(cfg);
      }
    }
    return nullptr;
}

} // namespace sim
} // namespace morc
