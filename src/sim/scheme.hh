/**
 * @file
 * LLC scheme selection: a factory over every cache model in the study.
 */

#ifndef MORC_SIM_SCHEME_HH
#define MORC_SIM_SCHEME_HH

#include <memory>
#include <string>
#include <vector>

#include "cache/llc.hh"
#include "core/morc.hh"
#include "energy/energy.hh"

namespace morc {
namespace sim {

/** Every LLC evaluated in the paper (plus arena extensions). */
enum class Scheme
{
    Uncompressed,
    Uncompressed8x, // 1 MB-per-core baseline of Figure 9
    Adaptive,
    Decoupled,
    Sc2,
    Morc,
    MorcMerged,
    OracleIntra,
    OracleInter,
    Touche, // appended last: earlier values are config fingerprints
};

/** Display name matching the paper's legends. */
const char *schemeName(Scheme s);

/** One registry row: the enum value, its display name, and the
 *  lower-case name CLI tools accept. */
struct SchemeInfo
{
    Scheme scheme;
    const char *name;    // schemeName() spelling
    const char *cliName; // morc_check / run_benches spelling
};

/**
 * The single authoritative scheme list. Every enumerating surface
 * (morc_check --scheme=all, run_benches --smoke, design-space arenas,
 * the lifetime figure) iterates this registry, so a scheme added here
 * appears everywhere at once.
 */
const std::vector<SchemeInfo> &allSchemes();

/** Parse a CLI scheme name (also accepts the legacy "ideal" alias for
 *  oracle-intra). @return false when @p name is unknown. */
bool schemeFromCliName(const std::string &name, Scheme *out);

/** Compression engine used by @p s (for the energy model). */
energy::Engine schemeEngine(Scheme s);

/** Flat LLC base latency add-on used by prior work (+4 cycles). */
unsigned schemeBaseDecompressionLatency(Scheme s);

/**
 * Build an LLC of @p scheme with @p capacity_bytes of data storage.
 * MORC variants accept an optional config override (capacity is still
 * taken from @p capacity_bytes).
 */
std::unique_ptr<cache::Llc>
makeLlc(Scheme scheme, std::uint64_t capacity_bytes,
        const core::MorcConfig *morc_override = nullptr);

} // namespace sim
} // namespace morc

#endif // MORC_SIM_SCHEME_HH
