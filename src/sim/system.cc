#include "sim/system.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "check/check.hh"
#include "core/morc.hh"
#include "util/sorted_view.hh"

namespace morc {
namespace sim {

double
RunResult::meanIpc() const
{
    std::vector<double> v;
    for (const auto &c : cores)
        v.push_back(c.ipc());
    return stats::amean(v);
}

double
RunResult::gmeanIpc() const
{
    std::vector<double> v;
    for (const auto &c : cores)
        v.push_back(c.ipc());
    return stats::gmean(v);
}

double
RunResult::meanThroughput() const
{
    std::vector<double> v;
    for (const auto &c : cores)
        v.push_back(c.throughput());
    return stats::amean(v);
}

namespace {

/** Flat or banked LLC, per the config. */
std::unique_ptr<cache::Llc>
buildLlc(const SystemConfig &cfg)
{
    const std::uint64_t total =
        cfg.llcBytesPerCore * cfg.numCores *
        (cfg.scheme == Scheme::Uncompressed8x ? 8 : 1);
    const core::MorcConfig *morc =
        cfg.useMorcOverride ? &cfg.morc : nullptr;
    if (!cfg.useMesh)
        return makeLlc(cfg.scheme, total, morc);
    // Each bank slice is a full scheme instance (own log stores, LMT,
    // tag store) sized to its share of the capacity.
    return std::make_unique<mesh::BankedLlc>(
        cfg.meshCfg, total,
        [&cfg, morc](unsigned, std::uint64_t bank_bytes) {
            return makeLlc(cfg.scheme, bank_bytes, morc);
        });
}

} // namespace

System::System(const SystemConfig &cfg,
               const std::vector<trace::BenchmarkSpec> &programs)
    : cfg_(cfg),
      llc_(buildLlc(cfg)),
      channel_(cfg.bandwidthPerCore * cfg.numCores, cfg.clockHz,
               cfg.dramCycles),
      ratioSampler_(cfg.ratioSampleInterval)
{
    MORC_CHECK(programs.size() == cfg.numCores,
               "%zu trace programs supplied for %u cores",
               programs.size(), cfg.numCores);
    cores_.resize(cfg.numCores);
    for (unsigned i = 0; i < cfg.numCores; i++) {
        cores_[i].trace =
            std::make_unique<trace::ThreadTrace>(programs[i], i, i);
        cores_[i].l1 = L1Cache(cfg.l1Bytes, cfg.l1Ways);
        cores_[i].result.program = programs[i].name;
    }
    if (cfg_.useMesh) {
        banked_ = dynamic_cast<mesh::BankedLlc *>(llc_.get());
        MORC_CHECK(banked_ != nullptr, "mesh path without a banked LLC");
        noc_ = std::make_unique<mesh::Noc>(cfg_.meshCfg);
        // The same aggregate bandwidth budget as the flat channel,
        // split evenly over the edge controllers.
        const double per_channel = cfg_.bandwidthPerCore *
                                   cfg_.numCores /
                                   cfg_.meshCfg.memControllers;
        channels_.reserve(cfg_.meshCfg.memControllers);
        for (unsigned c = 0; c < cfg_.meshCfg.memControllers; c++)
            channels_.emplace_back(per_channel, cfg_.clockHz,
                                   cfg_.dramCycles);
    }
    setupTelemetry();
}

void
System::setupTelemetry()
{
    if (cfg_.traceEvents) {
        tracer_ =
            std::make_unique<telemetry::Tracer>(cfg_.traceCapacity);
        sysTrack_ = tracer_->track("sys");
        llc_->attachTracer(tracer_.get(), tracer_->track("llc"));
        if (noc_) {
            noc_->attachTracer(tracer_.get(), tracer_->track("noc"),
                               cfg_.nocStallThreshold);
        }
    }
    if (cfg_.telemetryEpoch == 0)
        return;
    telemetry_ = std::make_unique<telemetry::Registry>(
        cfg_.telemetryEpoch, cfg_.telemetryMaxSamples);
    // Registration order fixes the series order in reports: system,
    // LLC (scheme), NoC, channels.
    telemetry_->counter("sys.instructions", [this](Cycles) {
        return double(totalInstructions_);
    });
    telemetry_->counter("sys.l1_misses", [this](Cycles) {
        std::uint64_t n = 0;
        for (const auto &c : cores_)
            n += c.result.l1Misses;
        return double(n);
    });
    llc_->registerProbes(*telemetry_, "llc");
    if (noc_) {
        noc_->registerProbes(*telemetry_, "noc");
        for (std::size_t c = 0; c < channels_.size(); c++) {
            channels_[c].registerProbes(*telemetry_,
                                        "mem" + std::to_string(c));
        }
    } else {
        channel_.registerProbes(*telemetry_, "mem");
    }
}

CacheLine
System::dramFetch(unsigned core_idx, Addr addr) const
{
    auto it = dram_.find(lineNumber(addr));
    if (it != dram_.end())
        return it->second;
    // Pristine memory: the benchmark's value model at version 0.
    return cores_[core_idx].trace->values().line(localLine(addr), 0);
}

void
System::dramWrite(Addr addr, const CacheLine &data)
{
    dram_[lineNumber(addr)] = data;
}

void
System::handleWritebacks(const cache::FillResult &fr, Cycles now)
{
    if (tracer_ &&
        fr.writebacks.size() >= cfg_.writebackBurstThreshold) {
        tracer_->record(telemetry::EventKind::WritebackBurst, sysTrack_,
                        fr.writebacks.size(), fr.linesDecompressed);
    }
    for (const auto &wb : fr.writebacks) {
        if (noc_) {
            // Cross-bank exclusivity guarantees the victim was evicted
            // from its home bank; the write-back is posted over the
            // mesh to the owning controller and occupies both NoC
            // links and channel bandwidth, invisible to core latency.
            const unsigned bank_tile = banked_->homeBank(wb.addr);
            const unsigned ctrl = cfg_.meshCfg.controllerFor(wb.addr);
            const Cycles arrival =
                now + noc_->transfer(bank_tile,
                                     cfg_.meshCfg.controllerTile(ctrl),
                                     kLineSize, now);
            channels_[ctrl].writeAccess(arrival);
        } else {
            channel_.writeAccess(now);
        }
        dramWrite(wb.addr, wb.data);
    }
}

Cycles
System::meshMemoryRead(Addr addr, unsigned bank_tile, Cycles now)
{
    const unsigned ctrl = cfg_.meshCfg.controllerFor(addr);
    const unsigned ctrl_tile = cfg_.meshCfg.controllerTile(ctrl);
    const Cycles req = noc_->transfer(bank_tile, ctrl_tile, 0, now);
    const Cycles mem = channels_[ctrl].readAccess(now + req);
    const Cycles rsp = noc_->transfer(ctrl_tile, bank_tile, kLineSize,
                                      now + req + mem);
    return req + mem + rsp;
}

void
System::step(unsigned core_idx)
{
    Core &core = cores_[core_idx];
    CoreResult &m = core.result;
    const trace::MemRef ref = core.trace->next();

    // Batch the non-memory instructions (CPI 1).
    m.instructions += ref.gap + 1;
    m.cycles += ref.gap;
    totalInstructions_ += ref.gap + 1;

    m.cycles += cfg_.l1Latency;
    m.l1Accesses++;

    const Addr lnum = localLine(ref.addr);
    if (core.l1.lookup(ref.addr)) {
        if (ref.write) {
            const std::uint32_t ver = ++core.versions[lnum];
            core.l1.update(ref.addr,
                           core.trace->values().line(lnum, ver));
        } else if (cfg_.checkFunctional) {
            const CacheLine *got = core.l1.peek(ref.addr);
            const std::uint32_t ver = [&] {
                auto it = core.versions.find(lnum);
                return it == core.versions.end() ? 0u : it->second;
            }();
            if (!got ||
                !(*got == core.trace->values().line(lnum, ver))) {
                std::fprintf(stderr, "functional mismatch (L1)\n");
                std::abort();
            }
        }
        return;
    }

    // ---- L1 miss: the compute gap since the previous miss feeds the
    // CGMT latency-hiding model.
    m.l1Misses++;
    const double gap =
        static_cast<double>(m.cycles - core.lastMissCycle);
    core.gapSum += gap;

    // Components below know no clock; stamp the stepping core's local
    // time so their events carry simulated cycles.
    if (tracer_)
        tracer_->setNow(m.cycles);

    Cycles latency = 0;
    unsigned home_tile = 0;
    if (noc_) {
        // Request flit from the core's tile to the line's home bank.
        home_tile = banked_->homeBank(ref.addr);
        latency += noc_->transfer(coreTile(core_idx), home_tile, 0,
                                  m.cycles);
    }
    latency += cfg_.llcLatency;
    CacheLine data;

    cache::ReadResult rr = llc_->read(ref.addr);
    latency += rr.extraLatency;
    if (rr.hit) {
        m.llcHits++;
        data = rr.data;
        if (cfg_.decompressedBytesHistogram)
            cfg_.decompressedBytesHistogram->record(
                rr.bytesDecompressed);
    } else {
        m.llcMisses++;
        if (noc_)
            latency += meshMemoryRead(ref.addr, home_tile,
                                      m.cycles + latency);
        else
            latency += channel_.readAccess(m.cycles + cfg_.llcLatency);
        data = dramFetch(core_idx, ref.addr);
        // Non-inclusive fill policy (Section 5.4.2): read misses fill
        // the LLC; write misses fill only the L1 unless the inclusive
        // mode of the Figure 12 study is on.
        if (!ref.write || cfg_.inclusiveWriteFills) {
            handleWritebacks(llc_->insert(ref.addr, data, false),
                             noc_ ? m.cycles + latency : m.cycles);
        }
    }
    if (noc_) {
        // Data response from the home bank back to the core's tile.
        latency += noc_->transfer(home_tile, coreTile(core_idx),
                                  kLineSize, m.cycles + latency);
    }
    if (rr.hit && cfg_.hitLatencyHistogram)
        cfg_.hitLatencyHistogram->record(latency);

    if (cfg_.checkFunctional && !ref.write) {
        const std::uint32_t ver = [&] {
            auto it = core.versions.find(lnum);
            return it == core.versions.end() ? 0u : it->second;
        }();
        if (!(data == core.trace->values().line(lnum, ver))) {
            std::fprintf(stderr, "functional mismatch (LLC/DRAM)\n");
            std::abort();
        }
    }

    if (ref.write) {
        const std::uint32_t ver = ++core.versions[lnum];
        data = core.trace->values().line(lnum, ver);
    }

    // Allocate into the L1; a displaced dirty line is written back to
    // the (non-inclusive) LLC.
    if (auto victim = core.l1.fill(ref.addr, data, ref.write)) {
        if (victim->dirty) {
            // Over the mesh the victim line is a posted transfer from
            // the core's tile to its own home bank (which need not be
            // the bank the miss was served from).
            if (noc_) {
                noc_->transfer(coreTile(core_idx),
                               banked_->homeBank(victim->addr),
                               kLineSize, m.cycles);
            }
            handleWritebacks(
                llc_->insert(victim->addr, victim->data, true),
                m.cycles);
        }
    }

    m.cycles += latency;

    // CGMT throughput estimate: (threads-1) x the running mean gap of
    // this core hides that much of the latency; the rest stalls.
    const double mean_gap =
        core.gapSum / static_cast<double>(m.l1Misses);
    const double hidden =
        static_cast<double>(cfg_.threadsPerCore - 1) * mean_gap;
    const double l = static_cast<double>(latency);
    if (l > hidden)
        m.stallCycles += static_cast<std::uint64_t>(l - hidden);
    core.lastMissCycle = m.cycles;
}

void
System::runUntil(std::uint64_t target)
{
    bool done = false;
    while (!done) {
        // Advance the core that is furthest behind in local time, so
        // cores interleave at the shared LLC in (approximate) cycle
        // order, like PriME's lock-step quanta.
        unsigned pick = 0;
        Cycles min_cycles = ~0ull;
        done = true;
        for (unsigned i = 0; i < cores_.size(); i++) {
            const CoreResult &m = cores_[i].result;
            if (m.instructions >= target)
                continue;
            done = false;
            if (m.cycles < min_cycles) {
                min_cycles = m.cycles;
                pick = i;
            }
        }
        if (done)
            break;
        // min_cycles is the global simulated-time front (the picked
        // core is the furthest behind and it only moves forward), so
        // sampling here hits every epoch boundary exactly once, in
        // order, independent of sweep threading.
        if (telemetry_)
            telemetry_->advanceTo(min_cycles);
        for (unsigned q = 0; q < cfg_.interleaveQuantum; q++) {
            step(pick);
            if (cores_[pick].result.instructions >= target)
                break;
        }
        ratioSampler_.tick(totalInstructions_, [&] {
            return llc_->compressionRatio();
        });
    }
}

RunResult
System::run(std::uint64_t instructions_per_core,
            std::uint64_t warmup_per_core)
{
    if (warmup_per_core > 0)
        warmup(warmup_per_core);
    return measure(instructions_per_core);
}

void
System::warmup(std::uint64_t warmup_per_core)
{
    if (warmup_per_core == 0)
        return;
    runUntil(warmup_per_core);
    // Snapshot the caller-owned histograms: warm-up samples are
    // subtracted from the final distributions in measure().
    if (cfg_.decompressedBytesHistogram)
        warmupDecompBytes_ = *cfg_.decompressedBytesHistogram;
    if (cfg_.hitLatencyHistogram)
        warmupHitLatency_ = *cfg_.hitLatencyHistogram;
    // Reset measurement state; architectural state stays warm.
    for (auto &core : cores_) {
        const std::string program = core.result.program;
        core.result = CoreResult{};
        core.result.program = program;
        core.gapSum = 0.0;
        core.lastMissCycle = 0;
    }
    llc_->stats().clear();
    llc_->clearWear();
    channel_.clearCounters();
    if (banked_)
        banked_->clearAllStats();
    for (auto &ch : channels_)
        ch.clearCounters();
    if (noc_)
        noc_->clearCounters();
    totalInstructions_ = 0;
    ratioSampler_.restart(0);
    if (telemetry_)
        telemetry_->restart();
    if (tracer_)
        tracer_->clear();
    warmed_ = true;
}

RunResult
System::measure(std::uint64_t instructions_per_core)
{
    runUntil(instructions_per_core);

    // Rebase the caller-owned histograms to the measured phase.
    if (warmed_) {
        if (cfg_.decompressedBytesHistogram) {
            *cfg_.decompressedBytesHistogram =
                *cfg_.decompressedBytesHistogram - warmupDecompBytes_;
        }
        if (cfg_.hitLatencyHistogram) {
            *cfg_.hitLatencyHistogram =
                *cfg_.hitLatencyHistogram - warmupHitLatency_;
        }
    }

    RunResult out;
    for (auto &core : cores_)
        out.cores.push_back(core.result);
    out.compressionRatio =
        ratioSampler_.mean(llc_->compressionRatio());
    if (noc_) {
        for (const auto &ch : channels_) {
            out.memReads += ch.reads();
            out.memWrites += ch.writes();
        }
        out.meshed = true;
        out.nocMessages = noc_->messages();
        out.nocMeanHops = noc_->meanHops();
        out.nocHopHist = noc_->hopHistogram();
        out.nocQueueHist = noc_->queueHistogram();
    } else {
        out.memReads = channel_.reads();
        out.memWrites = channel_.writes();
    }
    out.totalInstructions = totalInstructions_;
    for (const auto &core : cores_)
        out.completionCycles =
            std::max(out.completionCycles, core.result.cycles);
    out.llcStats = llc_->stats();

    // Energy integration (Section 5.3 categories).
    energy::EnergyEvents ev;
    ev.cycles = out.completionCycles;
    for (const auto &core : cores_)
        ev.l1Accesses += core.result.l1Accesses;
    // LLC data-array touches: every insert and hit touches the array;
    // stream decompression (MORC) reads additional resident lines, the
    // surplus beyond one line per hit.
    const auto &ls = out.llcStats;
    ev.llcAccesses = ls.inserts + ls.readHits +
                     (ls.linesDecompressed > ls.readHits
                          ? ls.linesDecompressed - ls.readHits
                          : 0);
    ev.dramAccesses = out.memReads + out.memWrites;
    ev.linesCompressed = ls.linesCompressed;
    ev.linesDecompressed = ls.linesDecompressed;
    const double capacity_ratio =
        cfg_.scheme == Scheme::Uncompressed8x ? 8.0 : 1.0;
    out.energyBreakdown =
        energy::integrate(ev, schemeEngine(cfg_.scheme),
                          energy::EnergyParams{}, capacity_ratio,
                          cfg_.numCores);

    if (auto *log_cache = dynamic_cast<core::LogCache *>(llc_.get()))
        out.invalidLineFraction = log_cache->invalidLineFraction();
    else if (banked_)
        out.invalidLineFraction = banked_->invalidLineFraction();

    // NVM wear forecast over the measured phase, from the per-frame
    // write histogram the scheme charged insert by insert.
    out.lifetime = energy::forecastLifetime(llc_->wearSnapshot(),
                                            out.completionCycles,
                                            llc_->capacityBytes() * 8);

    if (telemetry_)
        out.series = telemetry_->snapshot();
    if (tracer_)
        out.trace = tracer_->snapshot();
    return out;
}

void
System::saveState(snap::Serializer &s) const
{
    s.beginSection("SYSS");

    // Structural fingerprint: restore refuses a snapshot taken under
    // any other configuration, because component state would silently
    // mean something different.
    s.beginSection("SCFG");
    s.u8(static_cast<std::uint8_t>(cfg_.scheme));
    s.u32(cfg_.numCores);
    s.u64(cfg_.llcBytesPerCore);
    s.f64(cfg_.bandwidthPerCore);
    s.f64(cfg_.clockHz);
    s.u64(cfg_.l1Bytes);
    s.u32(cfg_.l1Ways);
    s.u64(cfg_.l1Latency);
    s.u64(cfg_.llcLatency);
    s.u64(cfg_.dramCycles);
    s.u32(cfg_.threadsPerCore);
    s.u32(cfg_.interleaveQuantum);
    s.boolean(cfg_.inclusiveWriteFills);
    s.u64(cfg_.ratioSampleInterval);
    s.boolean(cfg_.checkFunctional);
    s.boolean(cfg_.useMorcOverride);
    s.boolean(cfg_.useMesh);
    s.u32(cfg_.meshCfg.width);
    s.u32(cfg_.meshCfg.height);
    s.u32(cfg_.meshCfg.memControllers);
    s.u64(cfg_.telemetryEpoch);
    s.u64(cfg_.telemetryMaxSamples);
    s.boolean(cfg_.traceEvents);
    s.u64(cfg_.traceCapacity);
    s.boolean(cfg_.decompressedBytesHistogram != nullptr);
    s.boolean(cfg_.hitLatencyHistogram != nullptr);
    s.vec(cores_, [&s](const Core &c) { s.str(c.result.program); });
    s.endSection();

    s.beginSection("SYS ");
    s.u64(totalInstructions_);
    ratioSampler_.save(s);
    s.boolean(warmed_);
    warmupDecompBytes_.save(s);
    warmupHitLatency_.save(s);
    // Caller-owned histogram contents travel with the snapshot so a
    // warm restore hands the warm distribution back to the caller.
    if (cfg_.decompressedBytesHistogram)
        cfg_.decompressedBytesHistogram->save(s);
    if (cfg_.hitLatencyHistogram)
        cfg_.hitLatencyHistogram->save(s);
    s.endSection();

    for (const Core &c : cores_) {
        s.beginSection("CORE");
        s.str(c.result.program);
        s.u64(c.result.instructions);
        s.u64(c.result.cycles);
        s.u64(c.result.l1Accesses);
        s.u64(c.result.l1Misses);
        s.u64(c.result.llcHits);
        s.u64(c.result.llcMisses);
        s.u64(c.result.stallCycles);
        s.f64(c.gapSum);
        s.u64(c.lastMissCycle);
        const auto vers = util::sortedView(c.versions);
        s.u64(vers.size());
        for (const auto *kv : vers) {
            s.u64(kv->first);
            s.u32(kv->second);
        }
        c.l1.save(s);
        c.trace->save(s);
        s.endSection();
    }

    s.beginSection("DRAM");
    const auto lines = util::sortedView(dram_);
    s.u64(lines.size());
    for (const auto *kv : lines) {
        s.u64(kv->first);
        s.bytes(kv->second.bytes.data(), kLineSize);
    }
    s.endSection();

    llc_->saveState(s);
    if (noc_) {
        noc_->saveState(s);
        for (const MemoryChannel &ch : channels_)
            ch.save(s);
    } else {
        channel_.save(s);
    }
    if (telemetry_)
        telemetry_->saveState(s);
    if (tracer_)
        tracer_->saveState(s);
    s.endSection();
}

void
System::restoreState(snap::Deserializer &d)
{
    if (!d.beginSection("SYSS"))
        return;

    if (!d.beginSection("SCFG")) {
        d.endSection();
        return;
    }
    const std::uint8_t scheme = d.u8();
    const std::uint32_t numCores = d.u32();
    const std::uint64_t llcBytesPerCore = d.u64();
    const double bandwidthPerCore = d.f64();
    const double clockHz = d.f64();
    const std::uint64_t l1Bytes = d.u64();
    const std::uint32_t l1Ways = d.u32();
    const std::uint64_t l1Latency = d.u64();
    const std::uint64_t llcLatency = d.u64();
    const std::uint64_t dramCycles = d.u64();
    const std::uint32_t threadsPerCore = d.u32();
    const std::uint32_t interleaveQuantum = d.u32();
    const bool inclusiveWriteFills = d.boolean();
    const std::uint64_t ratioSampleInterval = d.u64();
    const bool checkFunctional = d.boolean();
    const bool useMorcOverride = d.boolean();
    const bool useMesh = d.boolean();
    const std::uint32_t meshWidth = d.u32();
    const std::uint32_t meshHeight = d.u32();
    const std::uint32_t memControllers = d.u32();
    const std::uint64_t telemetryEpoch = d.u64();
    const std::uint64_t telemetryMaxSamples = d.u64();
    const bool traceEvents = d.boolean();
    const std::uint64_t traceCapacity = d.u64();
    const bool hasDecompHist = d.boolean();
    const bool hasLatencyHist = d.boolean();
    std::vector<std::string> programs;
    d.readVec(programs, 8, [&d]() { return d.str(); });
    if (d.ok()) {
        const bool match =
            scheme == static_cast<std::uint8_t>(cfg_.scheme) &&
            numCores == cfg_.numCores &&
            llcBytesPerCore == cfg_.llcBytesPerCore &&
            bandwidthPerCore == cfg_.bandwidthPerCore &&
            clockHz == cfg_.clockHz && l1Bytes == cfg_.l1Bytes &&
            l1Ways == cfg_.l1Ways && l1Latency == cfg_.l1Latency &&
            llcLatency == cfg_.llcLatency &&
            dramCycles == cfg_.dramCycles &&
            threadsPerCore == cfg_.threadsPerCore &&
            interleaveQuantum == cfg_.interleaveQuantum &&
            inclusiveWriteFills == cfg_.inclusiveWriteFills &&
            ratioSampleInterval == cfg_.ratioSampleInterval &&
            checkFunctional == cfg_.checkFunctional &&
            useMorcOverride == cfg_.useMorcOverride &&
            useMesh == cfg_.useMesh &&
            meshWidth == cfg_.meshCfg.width &&
            meshHeight == cfg_.meshCfg.height &&
            memControllers == cfg_.meshCfg.memControllers &&
            telemetryEpoch == cfg_.telemetryEpoch &&
            telemetryMaxSamples == cfg_.telemetryMaxSamples &&
            traceEvents == cfg_.traceEvents &&
            traceCapacity == cfg_.traceCapacity &&
            hasDecompHist ==
                (cfg_.decompressedBytesHistogram != nullptr) &&
            hasLatencyHist == (cfg_.hitLatencyHistogram != nullptr);
        if (!match)
            d.fail("system configuration mismatch");
        if (d.ok() && programs.size() == cores_.size()) {
            for (std::size_t i = 0; i < programs.size(); i++) {
                if (programs[i] != cores_[i].result.program) {
                    d.fail("workload mismatch on core " +
                           std::to_string(i) + " (snapshot has '" +
                           programs[i] + "', system runs '" +
                           cores_[i].result.program + "')");
                    break;
                }
            }
        } else if (d.ok()) {
            d.fail("core count mismatch");
        }
    }
    d.endSection();

    if (!d.beginSection("SYS ")) {
        d.endSection();
        return;
    }
    totalInstructions_ = d.u64();
    ratioSampler_.restore(d);
    warmed_ = d.boolean();
    warmupDecompBytes_ = stats::Histogram::load(d);
    warmupHitLatency_ = stats::Histogram::load(d);
    if (cfg_.decompressedBytesHistogram)
        cfg_.decompressedBytesHistogram->restore(d);
    if (cfg_.hitLatencyHistogram)
        cfg_.hitLatencyHistogram->restore(d);
    d.endSection();

    for (auto &core : cores_) {
        if (!d.ok())
            break;
        if (!d.beginSection("CORE"))
            break;
        const std::string program = d.str();
        if (d.ok() && program != core.result.program)
            d.fail("core program mismatch");
        core.result.instructions = d.u64();
        core.result.cycles = d.u64();
        core.result.l1Accesses = d.u64();
        core.result.l1Misses = d.u64();
        core.result.llcHits = d.u64();
        core.result.llcMisses = d.u64();
        core.result.stallCycles = d.u64();
        core.gapSum = d.f64();
        core.lastMissCycle = d.u64();
        std::vector<std::pair<Addr, std::uint32_t>> vers;
        d.readVec(vers, 8 + 4, [&d]() {
            const Addr a = d.u64();
            const std::uint32_t v = d.u32();
            return std::pair<Addr, std::uint32_t>(a, v);
        });
        core.versions.clear();
        core.versions.insert(vers.begin(), vers.end());
        core.l1.restore(d);
        core.trace->restore(d);
        d.endSection();
    }

    if (d.beginSection("DRAM")) {
        const std::uint64_t n = d.arrayLen(8 + kLineSize);
        dram_.clear();
        dram_.reserve(static_cast<std::size_t>(n));
        for (std::uint64_t i = 0; i < n && d.ok(); i++) {
            const Addr line = d.u64();
            CacheLine data;
            d.bytes(data.bytes.data(), kLineSize);
            dram_[line] = data;
        }
        d.endSection();
    }

    llc_->restoreState(d);
    if (noc_) {
        noc_->restoreState(d);
        for (auto &ch : channels_)
            ch.restore(d);
    } else {
        channel_.restore(d);
    }
    if (telemetry_)
        telemetry_->restoreState(d);
    if (tracer_)
        tracer_->restoreState(d);
    d.endSection();
}

bool
System::save(const std::string &path, std::string *error) const
{
    snap::Serializer s;
    saveState(s);
    if (!s.writeFile(path)) {
        if (error)
            *error = "cannot write snapshot file " + path;
        return false;
    }
    return true;
}

bool
System::restore(const std::string &path, std::string *error)
{
    snap::Deserializer d = snap::Deserializer::fromFile(path);
    if (d.ok())
        restoreState(d);
    if (!d.ok()) {
        if (error)
            *error = d.error();
        return false;
    }
    return true;
}

} // namespace sim
} // namespace morc
