/**
 * @file
 * The manycore simulation driver: N in-order cores with private L1s over
 * one shared LLC and one FCFS bandwidth-capped memory channel, executing
 * synthetic benchmark traces (Table 5 configuration).
 *
 * With SystemConfig::useMesh the flat LLC is replaced by the tiled
 * substrate (src/mesh): one LLC bank slice per tile over a 2D mesh NoC,
 * with multiple memory controllers at edge tiles. Every L1 miss is then
 * routed core tile -> home-bank tile -> (controller tile) and the NoC's
 * hop latency and per-link bandwidth contention are charged into the
 * same per-access timing model; scheduling (interleaveQuantum) and seed
 * discipline are unchanged, so banked runs stay deterministic across
 * sweep thread counts.
 *
 * Timing is per-access: non-memory instructions cost one cycle (batched
 * via the trace's geometric gaps), L1 hits one cycle, LLC hits the base
 * latency plus the scheme's decompression annotation, and misses add the
 * channel's queueing + DRAM latency. A 4-thread coarse-grain
 * multithreading estimate (Section 4) is accumulated alongside: of each
 * memory latency, (threads-1) x the running average gap between L1
 * misses is hidden; the remainder stalls the core.
 */

#ifndef MORC_SIM_SYSTEM_HH
#define MORC_SIM_SYSTEM_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/llc.hh"
#include "energy/energy.hh"
#include "mesh/banked_llc.hh"
#include "mesh/noc.hh"
#include "mesh/topology.hh"
#include "stats/histogram.hh"
#include "sim/l1.hh"
#include "sim/memchannel.hh"
#include "sim/scheme.hh"
#include "stats/summary.hh"
#include "telemetry/telemetry.hh"
#include "telemetry/tracer.hh"
#include "trace/workload.hh"

namespace morc {
namespace sim {

/** Full system configuration (defaults are the paper's Table 5). */
struct SystemConfig
{
    Scheme scheme = Scheme::Uncompressed;

    unsigned numCores = 1;
    std::uint64_t llcBytesPerCore = 128 * 1024;

    /** Statically allocated bandwidth per core (100 MB/s default). */
    double bandwidthPerCore = 100e6;

    double clockHz = 2e9;
    std::uint64_t l1Bytes = 32 * 1024;
    unsigned l1Ways = 4;
    Cycles l1Latency = 1;
    Cycles llcLatency = 14;
    Cycles dramCycles = 70;

    /** Coarse-grain multithreading depth for the throughput model. */
    unsigned threadsPerCore = 4;

    /** Memory references a core executes before the scheduler picks
     *  the next core. 1 = cycle-accurate interleaving; larger quanta
     *  approximate PriME-style lockstep windows and preserve per-core
     *  burst locality at the shared LLC. */
    unsigned interleaveQuantum = 1;

    /** Insert lines fetched on write misses into the LLC (the
     *  "inclusive" behaviour of the Figure 12 study). */
    bool inclusiveWriteFills = false;

    /** Instructions (system-wide) between compression-ratio samples. */
    std::uint64_t ratioSampleInterval = 1000 * 1000;

    /** Verify every returned line against the expected value model. */
    bool checkFunctional = false;

    /** MORC parameter override for Morc/MorcMerged schemes. */
    core::MorcConfig morc{};
    bool useMorcOverride = false;

    /** Tiled-manycore substrate: shard the LLC into one bank per tile
     *  over a 2D-mesh NoC with meshCfg.memControllers memory channels
     *  (total bandwidth = bandwidthPerCore x numCores, split evenly).
     *  Core i runs on tile i % tiles; bank b lives at tile b. */
    mesh::MeshConfig meshCfg{};
    bool useMesh = false;

    /** Optional: record decompressor output bytes per LLC read hit
     *  (the Figure 14 log-position distribution). Not owned. */
    stats::Histogram *decompressedBytesHistogram = nullptr;

    /** Optional: record the total LLC hit latency in cycles (base +
     *  decompression + NoC on the mesh path). Not owned. */
    stats::Histogram *hitLatencyHistogram = nullptr;

    /** Simulated cycles between telemetry samples; 0 = sampling off
     *  (zero cost: no registry is built). Epoch boundaries are global
     *  simulated time, so series are identical for any --jobs. */
    Cycles telemetryEpoch = 0;

    /** Series capacity; epochs beyond it are counted as dropped. */
    std::size_t telemetryMaxSamples =
        telemetry::Registry::kDefaultMaxSamples;

    /** Record cycle-stamped structured events (RunResult::trace);
     *  off = no tracer is built and emission sites cost one null
     *  check. */
    bool traceEvents = false;

    /** Event ring capacity (flight recorder: oldest dropped first). */
    std::size_t traceCapacity = telemetry::Tracer::kDefaultCapacity;

    /** An insert surfacing this many write-backs at once is traced as
     *  a WritebackBurst event. */
    std::size_t writebackBurstThreshold = 4;

    /** A message queueing this long at one link is traced as a
     *  NocStall event (mesh path only). */
    Cycles nocStallThreshold = 64;
};

/** Per-core outcome metrics. */
struct CoreResult
{
    std::string program;
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    std::uint64_t l1Accesses = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t llcHits = 0;
    std::uint64_t llcMisses = 0;
    std::uint64_t stallCycles = 0; // CGMT residual stalls

    double
    ipc() const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(instructions) /
                                 static_cast<double>(cycles);
    }

    /** Normalized multithreaded throughput (instructions per cycle of
     *  the 4-thread model; 1.0 = never stalled). */
    double
    throughput() const
    {
        const double busy =
            static_cast<double>(instructions + stallCycles);
        return busy == 0.0 ? 0.0
                           : static_cast<double>(instructions) / busy;
    }
};

/** Whole-run outcome. */
struct RunResult
{
    std::vector<CoreResult> cores;

    /** Time-sampled mean compression ratio (paper methodology). */
    double compressionRatio = 1.0;

    std::uint64_t memReads = 0;
    std::uint64_t memWrites = 0;
    std::uint64_t totalInstructions = 0;
    Cycles completionCycles = 0;

    cache::LlcStats llcStats;
    energy::EnergyBreakdown energyBreakdown;

    /** NVM wear/lifetime forecast from the run's write histogram. */
    energy::LifetimeForecast lifetime;

    /** MORC-only extras (zero otherwise). */
    double invalidLineFraction = 0.0;

    /** Mesh-substrate extras (meshed == false for the flat path). */
    bool meshed = false;
    std::uint64_t nocMessages = 0;
    double nocMeanHops = 0.0;
    stats::Histogram nocHopHist = stats::Histogram({});
    stats::Histogram nocQueueHist = stats::Histogram({});

    /** Epoch-sampled probe series (empty unless telemetryEpoch > 0). */
    telemetry::SeriesSet series;

    /** Structured event trace (empty unless traceEvents). */
    telemetry::TraceBuffer trace;

    /** Off-chip traffic in GB per billion instructions (Figure 6b). */
    double
    gbPerBillionInstr() const
    {
        if (totalInstructions == 0)
            return 0.0;
        const double bytes =
            static_cast<double>((memReads + memWrites) * kLineSize);
        return bytes / 1e9 * 1e9 /
               static_cast<double>(totalInstructions);
    }

    double meanIpc() const;
    double gmeanIpc() const;
    double meanThroughput() const;
};

/** One simulated system instance. */
class System
{
  public:
    /**
     * @param cfg      System parameters.
     * @param programs One benchmark per core (size = numCores).
     */
    System(const SystemConfig &cfg,
           const std::vector<trace::BenchmarkSpec> &programs);

    /**
     * Run until every core retires @p instructions_per_core measured
     * instructions, after an unmeasured warm-up phase (the paper warms
     * for 100 M before measuring 30 M). Equivalent to warmup() (when
     * warmup_per_core > 0) followed by measure().
     */
    RunResult run(std::uint64_t instructions_per_core,
                  std::uint64_t warmup_per_core = 0);

    /**
     * Warm-up phase alone: simulate @p warmup_per_core instructions
     * per core, then reset every measurement counter while the
     * architectural state (caches, DRAM image, trace cursors) stays
     * warm. The system is then checkpoint-ready: save() + restore()
     * into a fresh instance + measure() reproduces run() exactly.
     */
    void warmup(std::uint64_t warmup_per_core);

    /** The measured window alone (run() minus the warm-up phase). */
    RunResult measure(std::uint64_t instructions_per_core);

    /** True once warmup() has completed (survives save/restore). */
    bool warmed() const { return warmed_; }

    /**
     * Append the complete simulator state: config fingerprint, per-core
     * state (results, L1, trace cursor, version map), DRAM image, LLC
     * scheme state (flat or banked), memory channels, NoC, telemetry.
     */
    void saveState(snap::Serializer &s) const;

    /**
     * Restore state written by saveState() into an identically
     * configured System. Any config mismatch or malformed byte latches
     * into @p d; the caller must discard this instance when !d.ok()
     * (state may be partially overwritten).
     */
    void restoreState(snap::Deserializer &d);

    /** saveState() framed, CRC-sealed, and atomically written. */
    bool save(const std::string &path,
              std::string *error = nullptr) const;

    /** Load, validate, and restore a snapshot file; on failure the
     *  system must be discarded and the caller falls back to a cold
     *  run. @p error (if given) receives the reason. */
    bool restore(const std::string &path, std::string *error = nullptr);

    cache::Llc &llc() { return *llc_; }
    const SystemConfig &config() const { return cfg_; }

  private:
    struct Core
    {
        std::unique_ptr<trace::ThreadTrace> trace;
        L1Cache l1;
        CoreResult result;
        /** Store mutation counters, keyed by local line number. */
        std::unordered_map<Addr, std::uint32_t> versions;
        double gapSum = 0.0; // compute cycles between L1 misses
        Cycles lastMissCycle = 0;
    };

    /** Local (per-program) line number of an address. */
    static Addr
    localLine(Addr addr)
    {
        return lineNumber(addr & ((1ull << 40) - 1));
    }

    CacheLine dramFetch(unsigned core_idx, Addr addr) const;
    void dramWrite(Addr addr, const CacheLine &data);
    void handleWritebacks(const cache::FillResult &fr, Cycles now);
    void step(unsigned core_idx);
    void runUntil(std::uint64_t instructions_per_core);

    /** Tile hosting core @p core_idx (mesh path only). */
    unsigned
    coreTile(unsigned core_idx) const
    {
        return core_idx % cfg_.meshCfg.tiles();
    }

    /** Off-chip read routed over the mesh: home bank -> controller ->
     *  home bank, charging NoC contention plus channel queueing.
     *  @return Latency from @p now until the line is back at the bank. */
    Cycles meshMemoryRead(Addr addr, unsigned bank_tile, Cycles now);

    SystemConfig cfg_;
    std::unique_ptr<cache::Llc> llc_;
    MemoryChannel channel_;
    std::vector<Core> cores_;
    std::unordered_map<Addr, CacheLine> dram_;
    std::uint64_t totalInstructions_ = 0;
    stats::PeriodicSampler ratioSampler_;
    bool warmed_ = false;

    /** Mesh-substrate state (null/empty on the flat path). */
    std::unique_ptr<mesh::Noc> noc_;
    std::vector<MemoryChannel> channels_;
    mesh::BankedLlc *banked_ = nullptr; // owned by llc_; morc-analyze: allow(snapshot-completeness) alias, snapshotted via llc_

    /** Telemetry (null when off). Declared after every probed member:
     *  probes capture raw pointers into them, so the registry and
     *  tracer must be destroyed first. */
    std::unique_ptr<telemetry::Registry> telemetry_;
    std::unique_ptr<telemetry::Tracer> tracer_;
    std::uint16_t sysTrack_ = 0; // morc-analyze: allow(snapshot-completeness) track id re-registered at construction

    /** Warm-up snapshots of the caller-owned histograms, subtracted at
     *  the end of the run so reported distributions cover only the
     *  measured phase. */
    stats::Histogram warmupDecompBytes_ = stats::Histogram({});
    stats::Histogram warmupHitLatency_ = stats::Histogram({});

    void setupTelemetry();
};

} // namespace sim
} // namespace morc

#endif // MORC_SIM_SYSTEM_HH
