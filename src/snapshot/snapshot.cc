/**
 * @file
 * Snapshot serialization implementation. See snapshot.hh for the
 * format contract; nothing here aborts on malformed input.
 */

#include "snapshot/snapshot.hh"

#include <array>
#include <cstdio>
#include <cstring>

#include "check/check.hh"

namespace morc {
namespace snap {

namespace {

constexpr std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; i++) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; k++)
            c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

constexpr std::array<std::uint32_t, 256> kCrcTable = makeCrcTable();

constexpr std::size_t kHeaderBytes = 8 + 4 + 4 + 8; // magic+ver+endian+len
constexpr std::size_t kFooterBytes = 4;             // crc

std::uint32_t
readLe32(const std::uint8_t *p)
{
    return static_cast<std::uint32_t>(p[0]) |
           static_cast<std::uint32_t>(p[1]) << 8 |
           static_cast<std::uint32_t>(p[2]) << 16 |
           static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t
readLe64(const std::uint8_t *p)
{
    return static_cast<std::uint64_t>(readLe32(p)) |
           static_cast<std::uint64_t>(readLe32(p + 4)) << 32;
}

} // namespace

std::uint32_t
crc32(const void *data, std::size_t n, std::uint32_t seed)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint32_t c = seed ^ 0xFFFFFFFFu;
    for (std::size_t i = 0; i < n; i++)
        c = kCrcTable[(c ^ p[i]) & 0xFF] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

bool
atomicWriteFile(const std::string &path, const void *data, std::size_t n)
{
    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        return false;
    const bool wrote = n == 0 || std::fwrite(data, 1, n, f) == n;
    const bool closed = std::fclose(f) == 0;
    if (!wrote || !closed) {
        std::remove(tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

bool
readFile(const std::string &path, std::vector<std::uint8_t> &out)
{
    out.clear();
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    bool good = true;
    std::uint8_t chunk[1 << 16];
    for (;;) {
        const std::size_t got = std::fread(chunk, 1, sizeof chunk, f);
        out.insert(out.end(), chunk, chunk + got);
        if (got < sizeof chunk) {
            good = std::ferror(f) == 0;
            break;
        }
    }
    std::fclose(f);
    if (!good)
        out.clear();
    return good;
}

// --- Serializer ---------------------------------------------------------

void
Serializer::f64(double v)
{
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
}

void
Serializer::str(std::string_view v)
{
    u64(v.size());
    bytes(v.data(), v.size());
}

void
Serializer::bytes(const void *p, std::size_t n)
{
    const auto *b = static_cast<const std::uint8_t *>(p);
    buf_.insert(buf_.end(), b, b + n);
}

void
Serializer::vecU8(const std::vector<std::uint8_t> &v)
{
    u64(v.size());
    bytes(v.data(), v.size());
}

void
Serializer::vecU32(const std::vector<std::uint32_t> &v)
{
    u64(v.size());
    for (std::uint32_t e : v)
        u32(e);
}

void
Serializer::vecU64(const std::vector<std::uint64_t> &v)
{
    u64(v.size());
    for (std::uint64_t e : v)
        u64(e);
}

void
Serializer::vecF64(const std::vector<double> &v)
{
    u64(v.size());
    for (double e : v)
        f64(e);
}

void
Serializer::beginSection(const char *tag)
{
    MORC_CHECK(tag && std::strlen(tag) == 4,
               "section tag must be a 4-character fourcc");
    bytes(tag, 4);
    sectionStack_.push_back(buf_.size());
    u64(0); // length, patched by endSection()
}

void
Serializer::endSection()
{
    MORC_CHECK(!sectionStack_.empty(),
               "endSection() without a matching beginSection()");
    const std::size_t lenOff = sectionStack_.back();
    sectionStack_.pop_back();
    const std::uint64_t len = buf_.size() - (lenOff + 8);
    for (unsigned i = 0; i < 8; i++)
        buf_[lenOff + i] = static_cast<std::uint8_t>(len >> (8 * i));
}

std::vector<std::uint8_t>
Serializer::frame() const
{
    MORC_CHECK(sectionStack_.empty(),
               "framing a snapshot with %zu unclosed section(s)",
               sectionStack_.size());
    std::vector<std::uint8_t> out;
    out.reserve(kHeaderBytes + buf_.size() + kFooterBytes);
    for (char c : kMagic)
        out.push_back(static_cast<std::uint8_t>(c));
    for (unsigned i = 0; i < 4; i++)
        out.push_back(static_cast<std::uint8_t>(kFormatVersion >> (8 * i)));
    for (unsigned i = 0; i < 4; i++)
        out.push_back(static_cast<std::uint8_t>(kEndianTag >> (8 * i)));
    const std::uint64_t len = buf_.size();
    for (unsigned i = 0; i < 8; i++)
        out.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
    out.insert(out.end(), buf_.begin(), buf_.end());
    const std::uint32_t crc = crc32(out.data(), out.size());
    for (unsigned i = 0; i < 4; i++)
        out.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
    return out;
}

bool
Serializer::writeFile(const std::string &path) const
{
    const std::vector<std::uint8_t> framed = frame();
    return atomicWriteFile(path, framed.data(), framed.size());
}

// --- Deserializer -------------------------------------------------------

Deserializer::Deserializer(std::vector<std::uint8_t> framed)
    : buf_(std::move(framed))
{
    if (buf_.size() < kHeaderBytes + kFooterBytes) {
        fail("truncated snapshot: " + std::to_string(buf_.size()) +
             " bytes is smaller than the fixed frame");
        return;
    }
    if (std::memcmp(buf_.data(), kMagic, 8) != 0) {
        fail("bad snapshot magic (not a MORCSNP1 stream)");
        return;
    }
    const std::uint32_t version = readLe32(buf_.data() + 8);
    if (version != kFormatVersion) {
        fail("unsupported snapshot format version " +
             std::to_string(version) + " (this build reads version " +
             std::to_string(kFormatVersion) + ")");
        return;
    }
    if (readLe32(buf_.data() + 12) != kEndianTag) {
        fail("snapshot endianness tag mismatch");
        return;
    }
    const std::uint64_t len = readLe64(buf_.data() + 16);
    if (len != buf_.size() - kHeaderBytes - kFooterBytes) {
        fail("snapshot payload length mismatch (header says " +
             std::to_string(len) + ", file holds " +
             std::to_string(buf_.size() - kHeaderBytes - kFooterBytes) +
             ")");
        return;
    }
    const std::uint32_t want =
        readLe32(buf_.data() + buf_.size() - kFooterBytes);
    const std::uint32_t got =
        crc32(buf_.data(), buf_.size() - kFooterBytes);
    if (want != got) {
        fail("snapshot CRC mismatch (stored " + std::to_string(want) +
             ", computed " + std::to_string(got) + ")");
        return;
    }
    pos_ = kHeaderBytes;
    end_ = buf_.size() - kFooterBytes;
}

Deserializer
Deserializer::fromFile(const std::string &path)
{
    std::vector<std::uint8_t> bytes;
    if (!readFile(path, bytes)) {
        Deserializer d{std::vector<std::uint8_t>{}};
        d.error_.clear();
        d.fail("cannot read snapshot file: " + path);
        return d;
    }
    return Deserializer(std::move(bytes));
}

void
Deserializer::fail(const std::string &why)
{
    if (error_.empty())
        error_ = why;
}

bool
Deserializer::need(std::size_t nbytes)
{
    if (!ok())
        return false;
    const std::size_t limit =
        sectionEnds_.empty() ? end_ : sectionEnds_.back();
    if (pos_ + nbytes > limit) {
        fail("snapshot read overruns " +
             std::string(sectionEnds_.empty() ? "payload" : "section") +
             " end (want " + std::to_string(nbytes) + " bytes, have " +
             std::to_string(limit - pos_) + ")");
        return false;
    }
    return true;
}

std::uint64_t
Deserializer::getLe(unsigned nbytes)
{
    if (!need(nbytes))
        return 0;
    std::uint64_t v = 0;
    for (unsigned i = 0; i < nbytes; i++)
        v |= static_cast<std::uint64_t>(buf_[pos_ + i]) << (8 * i);
    pos_ += nbytes;
    return v;
}

std::uint8_t
Deserializer::u8()
{
    return static_cast<std::uint8_t>(getLe(1));
}

std::uint16_t
Deserializer::u16()
{
    return static_cast<std::uint16_t>(getLe(2));
}

std::uint32_t
Deserializer::u32()
{
    return static_cast<std::uint32_t>(getLe(4));
}

std::uint64_t
Deserializer::u64()
{
    return getLe(8);
}

double
Deserializer::f64()
{
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
}

bool
Deserializer::boolean()
{
    const std::uint8_t v = u8();
    if (ok() && v > 1)
        fail("snapshot boolean holds value " + std::to_string(v));
    return v == 1;
}

std::string
Deserializer::str()
{
    const std::uint64_t n = arrayLen(1);
    std::string v;
    if (!ok() || !need(static_cast<std::size_t>(n)))
        return v;
    v.assign(reinterpret_cast<const char *>(buf_.data() + pos_),
             static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return v;
}

void
Deserializer::bytes(void *p, std::size_t n)
{
    if (!need(n)) {
        std::memset(p, 0, n);
        return;
    }
    std::memcpy(p, buf_.data() + pos_, n);
    pos_ += n;
}

std::uint64_t
Deserializer::arrayLen(std::size_t min_elem_bytes)
{
    const std::uint64_t n = u64();
    if (!ok())
        return 0;
    const std::size_t limit =
        sectionEnds_.empty() ? end_ : sectionEnds_.back();
    const std::uint64_t room = limit - pos_;
    if (min_elem_bytes > 0 && n > room / min_elem_bytes) {
        fail("snapshot array length " + std::to_string(n) +
             " exceeds the " + std::to_string(room) +
             " bytes left in its region");
        return 0;
    }
    return n;
}

void
Deserializer::vecU8(std::vector<std::uint8_t> &v)
{
    const std::uint64_t n = arrayLen(1);
    v.assign(static_cast<std::size_t>(n), 0);
    if (n)
        bytes(v.data(), v.size());
    if (!ok())
        v.clear();
}

void
Deserializer::vecU32(std::vector<std::uint32_t> &v)
{
    readVec(v, 4, [&] { return u32(); });
}

void
Deserializer::vecU64(std::vector<std::uint64_t> &v)
{
    readVec(v, 8, [&] { return u64(); });
}

void
Deserializer::vecF64(std::vector<double> &v)
{
    readVec(v, 8, [&] { return f64(); });
}

bool
Deserializer::beginSection(const char *tag)
{
    MORC_CHECK(tag && std::strlen(tag) == 4,
               "section tag must be a 4-character fourcc");
    if (!need(4 + 8))
        return false;
    char got[5] = {};
    std::memcpy(got, buf_.data() + pos_, 4);
    if (std::memcmp(got, tag, 4) != 0) {
        fail(std::string("snapshot section mismatch: expected '") + tag +
             "', found '" + got + "'");
        return false;
    }
    pos_ += 4;
    const std::uint64_t len = getLe(8);
    const std::size_t limit =
        sectionEnds_.empty() ? end_ : sectionEnds_.back();
    if (!ok() || len > limit - pos_) {
        fail(std::string("snapshot section '") + tag +
             "' length overruns its enclosing region");
        return false;
    }
    sectionEnds_.push_back(pos_ + static_cast<std::size_t>(len));
    return true;
}

void
Deserializer::endSection()
{
    MORC_CHECK(!sectionEnds_.empty(),
               "endSection() without a matching beginSection()");
    const std::size_t sectionEnd = sectionEnds_.back();
    sectionEnds_.pop_back();
    if (ok() && pos_ != sectionEnd) {
        fail("snapshot section not fully consumed (" +
             std::to_string(sectionEnd - pos_) + " bytes left over)");
    }
    pos_ = sectionEnd;
}

std::uint64_t
Deserializer::remaining() const
{
    if (!ok())
        return 0;
    const std::size_t limit =
        sectionEnds_.empty() ? end_ : sectionEnds_.back();
    return limit - pos_;
}

} // namespace snap
} // namespace morc
