/**
 * @file
 * Versioned, CRC-guarded binary serialization for simulator snapshots.
 *
 * Every stateful component implements save/restore over the Serializer /
 * Deserializer pair below, so a whole sim::System round-trips through one
 * byte buffer (and from there to disk). The format is deliberately dumb:
 *
 *   - explicit little-endian scalar encoding (portable across hosts),
 *   - a fixed frame: magic "MORCSNP1", u32 format version, u32 endian
 *     tag, u64 payload length, payload, u32 CRC32 over everything
 *     before the checksum,
 *   - tagged sections (fourcc + u64 byte length) inside the payload so
 *     a reader can pinpoint *which* component diverged or got truncated.
 *
 * Restore must never abort on bad input: a snapshot file is external
 * data (possibly from a crashed writer, an older binary, or a fuzzer).
 * The Deserializer therefore fails *softly* — the first malformed read
 * latches an error flag plus a message, every subsequent read returns
 * zeros, and the caller checks ok() once at the end and falls back to
 * cold simulation. MORC_CHECK is reserved for caller bugs (unbalanced
 * sections), never for byte-stream content.
 */

#ifndef MORC_SNAPSHOT_SNAPSHOT_HH
#define MORC_SNAPSHOT_SNAPSHOT_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace morc {
namespace snap {

/** Frame magic: identifies a snapshot byte stream. */
inline constexpr char kMagic[8] = {'M', 'O', 'R', 'C', 'S', 'N', 'P', '1'};

/** Bumped whenever the payload layout changes incompatibly. */
inline constexpr std::uint32_t kFormatVersion = 1;

/** Written little-endian; a reader seeing any other value is decoding
 *  with broken byte order (or reading garbage). */
inline constexpr std::uint32_t kEndianTag = 0x01020304u;

/** CRC32 (IEEE 802.3, polynomial 0xEDB88320) of @p n bytes, continuing
 *  from @p seed so checksums can be computed incrementally. */
std::uint32_t crc32(const void *data, std::size_t n,
                    std::uint32_t seed = 0);

/**
 * Write @p data to @p path atomically: the bytes go to "<path>.tmp"
 * first and are renamed over the target only after a successful close,
 * so a crash mid-write never leaves a truncated file at @p path.
 */
bool atomicWriteFile(const std::string &path, const void *data,
                     std::size_t n);

/** Read a whole file into @p out; false (and empty @p out) on error. */
bool readFile(const std::string &path, std::vector<std::uint8_t> &out);

/**
 * Append-only little-endian payload writer. Scalars are fixed-width;
 * strings and blobs carry a u64 length prefix; sections wrap a region
 * in a fourcc tag plus a back-patched byte length.
 */
class Serializer
{
  public:
    void
    u8(std::uint8_t v)
    {
        buf_.push_back(v);
    }

    void
    u16(std::uint16_t v)
    {
        putLe(v, 2);
    }

    void
    u32(std::uint32_t v)
    {
        putLe(v, 4);
    }

    void
    u64(std::uint64_t v)
    {
        putLe(v, 8);
    }

    void
    i64(std::int64_t v)
    {
        putLe(static_cast<std::uint64_t>(v), 8);
    }

    /** IEEE-754 bit pattern, so doubles round-trip exactly. */
    void f64(double v);

    void
    boolean(bool v)
    {
        buf_.push_back(v ? 1 : 0);
    }

    /** u64 length + raw bytes. */
    void str(std::string_view v);

    /** Raw bytes, no length prefix (caller knows the count). */
    void bytes(const void *p, std::size_t n);

    void vecU8(const std::vector<std::uint8_t> &v);
    void vecU32(const std::vector<std::uint32_t> &v);
    void vecU64(const std::vector<std::uint64_t> &v);
    void vecF64(const std::vector<double> &v);

    /** u64 count + @p per(element) for each element. */
    template <typename T, typename Fn>
    void
    vec(const std::vector<T> &v, Fn &&per)
    {
        u64(v.size());
        for (const T &e : v)
            per(e);
    }

    /** Open a tagged section; @p tag is a 4-character fourcc. */
    void beginSection(const char *tag);

    /** Close the innermost section, back-patching its byte length. */
    void endSection();

    /** Payload bytes written so far (no frame). */
    const std::vector<std::uint8_t> &payload() const { return buf_; }

    /** Frame the payload: magic + version + endian tag + length +
     *  payload + CRC32. All sections must be closed. */
    std::vector<std::uint8_t> frame() const;

    /** frame() + atomicWriteFile(). */
    bool writeFile(const std::string &path) const;

  private:
    void
    putLe(std::uint64_t v, unsigned nbytes)
    {
        for (unsigned i = 0; i < nbytes; i++)
            buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    std::vector<std::uint8_t> buf_;
    std::vector<std::size_t> sectionStack_; // offsets of length fields
};

/**
 * Little-endian payload reader over a framed snapshot. The constructor
 * validates the frame (magic, version, endianness, length, CRC); any
 * mismatch — and any later overrun, tag mismatch, or explicit fail() —
 * latches an error and turns every subsequent read into a zero-valued
 * no-op. Callers check ok() once after restoring.
 */
class Deserializer
{
  public:
    /** Take ownership of framed bytes (as produced by frame()). */
    explicit Deserializer(std::vector<std::uint8_t> framed);

    /** Read and validate @p path; io errors latch into the error
     *  state just like malformed bytes. */
    static Deserializer fromFile(const std::string &path);

    bool ok() const { return error_.empty(); }

    /** First error encountered; empty while ok(). */
    const std::string &error() const { return error_; }

    /** Latch a caller-detected error (e.g. config mismatch). Only the
     *  first failure is kept — it names the root cause. */
    void fail(const std::string &why);

    std::uint8_t u8();
    std::uint16_t u16();
    std::uint32_t u32();
    std::uint64_t u64();
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    double f64();
    bool boolean();
    std::string str();

    /** Raw bytes into @p p (caller-known count); zero-fills on error. */
    void bytes(void *p, std::size_t n);

    void vecU8(std::vector<std::uint8_t> &v);
    void vecU32(std::vector<std::uint32_t> &v);
    void vecU64(std::vector<std::uint64_t> &v);
    void vecF64(std::vector<double> &v);

    /**
     * Read a u64 element count, sanity-capped against the bytes left
     * in the stream (each element occupies at least @p min_elem_bytes)
     * so a corrupt length can never drive a multi-gigabyte resize.
     */
    std::uint64_t arrayLen(std::size_t min_elem_bytes);

    /** arrayLen() + @p per() per element into @p v. */
    template <typename T, typename Fn>
    void
    readVec(std::vector<T> &v, std::size_t min_elem_bytes, Fn &&per)
    {
        const std::uint64_t n = arrayLen(min_elem_bytes);
        v.clear();
        v.reserve(static_cast<std::size_t>(n));
        for (std::uint64_t i = 0; i < n && ok(); i++)
            v.push_back(per());
    }

    /** Enter a section; fails (returning false) unless the next bytes
     *  are @p tag's fourcc and a plausible length. */
    bool beginSection(const char *tag);

    /** Leave the innermost section; the cursor must have consumed it
     *  exactly — anything else means reader/writer drift. */
    void endSection();

    /** Bytes left before the payload end (or innermost section end). */
    std::uint64_t remaining() const;

  private:
    std::uint64_t getLe(unsigned nbytes);
    bool need(std::size_t nbytes);

    std::vector<std::uint8_t> buf_;
    std::size_t pos_ = 0;
    std::size_t end_ = 0; // payload end within buf_
    std::vector<std::size_t> sectionEnds_;
    std::string error_;
};

/** Interface for components that round-trip through a snapshot. */
class Snapshottable
{
  public:
    virtual ~Snapshottable() = default;

    /** Append this component's complete mutable state. */
    virtual void saveState(Serializer &s) const = 0;

    /** Restore state written by saveState(). Structural mismatches and
     *  malformed bytes latch into @p d — no partial-failure cleanup is
     *  required, the caller discards the object when !d.ok(). */
    virtual void restoreState(Deserializer &d) = 0;
};

} // namespace snap
} // namespace morc

#endif // MORC_SNAPSHOT_SNAPSHOT_HH
