/**
 * @file
 * Bucketed histogram used for latency and symbol-usage distributions.
 */

#ifndef MORC_STATS_HISTOGRAM_HH
#define MORC_STATS_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "check/check.hh"
#include "snapshot/snapshot.hh"

namespace morc {
namespace stats {

/**
 * Histogram over user-defined bucket upper bounds. A value lands in the
 * first bucket whose (inclusive) upper bound is >= value; values above
 * every bound land in a final overflow bucket.
 */
class Histogram
{
  public:
    /** @param upper_bounds Inclusive upper bound of each bucket. */
    explicit Histogram(std::vector<std::uint64_t> upper_bounds)
        : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0)
    {}

    /** Record one sample with optional weight. */
    void
    record(std::uint64_t value, std::uint64_t weight = 1)
    {
        std::size_t i = 0;
        while (i < bounds_.size() && value > bounds_[i])
            i++;
        counts_[i] += weight;
        total_ += weight;
    }

    /** Number of buckets, including the overflow bucket. */
    std::size_t numBuckets() const { return counts_.size(); }

    /** Raw count of bucket @p i. */
    std::uint64_t count(std::size_t i) const { return counts_[i]; }

    /** Inclusive upper bound of bucket @p i (not the overflow bucket). */
    std::uint64_t upperBound(std::size_t i) const { return bounds_[i]; }

    /** Fraction of all weight that fell in bucket @p i. */
    double
    fraction(std::size_t i) const
    {
        return total_ == 0
                   ? 0.0
                   : static_cast<double>(counts_[i]) /
                         static_cast<double>(total_);
    }

    /** Human-readable label for bucket @p i ("<=64", "65-128", ">512").
     *  With no bounds there is a single catch-all bucket, "all". */
    std::string
    label(std::size_t i) const
    {
        if (bounds_.empty())
            return "all";
        if (i == counts_.size() - 1)
            return ">" + std::to_string(bounds_.back());
        const std::uint64_t lo = i == 0 ? 0 : bounds_[i - 1] + 1;
        if (lo == 0)
            return "<=" + std::to_string(bounds_[0]);
        return std::to_string(lo) + "-" + std::to_string(bounds_[i]);
    }

    std::uint64_t total() const { return total_; }

    const std::vector<std::uint64_t> &bounds() const { return bounds_; }

    void
    clear()
    {
        for (auto &c : counts_)
            c = 0;
        total_ = 0;
    }

    /** Append bucketing and counts to a snapshot. */
    void
    save(snap::Serializer &s) const
    {
        s.vecU64(bounds_);
        s.vecU64(counts_);
        s.u64(total_);
    }

    /** Restore counts from a snapshot; the serialized bucketing must
     *  match this histogram's (bounds are structural configuration). */
    void
    restore(snap::Deserializer &d)
    {
        std::vector<std::uint64_t> bounds;
        std::vector<std::uint64_t> counts;
        d.vecU64(bounds);
        d.vecU64(counts);
        const std::uint64_t total = d.u64();
        if (!d.ok())
            return;
        if (bounds != bounds_ || counts.size() != counts_.size()) {
            d.fail("histogram bucketing mismatch (snapshot has " +
                   std::to_string(bounds.size()) + " bounds, live has " +
                   std::to_string(bounds_.size()) + ")");
            return;
        }
        counts_ = std::move(counts);
        total_ = total;
    }

    /** Rebuild a histogram wholesale from a snapshot, bucketing
     *  included (for histograms whose bounds are themselves state,
     *  e.g. warm-up snapshots of caller-owned histograms). Returns an
     *  empty histogram with d failed on malformed input. */
    static Histogram
    load(snap::Deserializer &d)
    {
        std::vector<std::uint64_t> bounds;
        std::vector<std::uint64_t> counts;
        d.vecU64(bounds);
        d.vecU64(counts);
        const std::uint64_t total = d.u64();
        if (d.ok() && counts.size() != bounds.size() + 1)
            d.fail("histogram bucket count mismatch");
        if (!d.ok())
            return Histogram({});
        Histogram h(std::move(bounds));
        h.counts_ = std::move(counts);
        h.total_ = total;
        return h;
    }

    /** Merge another histogram's counts; bucketing must match. */
    Histogram &
    operator+=(const Histogram &o)
    {
        MORC_CHECK(bounds_ == o.bounds_,
                   "merging histograms with different bucketing "
                   "(%zu vs %zu bounds)",
                   bounds_.size(), o.bounds_.size());
        for (std::size_t i = 0; i < counts_.size(); i++)
            counts_[i] += o.counts_[i];
        total_ += o.total_;
        return *this;
    }

  private:
    std::vector<std::uint64_t> bounds_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;

    friend Histogram operator-(const Histogram &a, const Histogram &b);
};

/** Bucket-wise difference (before/after rebasing, e.g. subtracting a
 *  warm-up snapshot); @p a must dominate @p b bucket by bucket. */
inline Histogram
operator-(const Histogram &a, const Histogram &b)
{
    MORC_CHECK(a.bounds_ == b.bounds_,
               "differencing histograms with different bucketing "
               "(%zu vs %zu bounds)",
               a.bounds_.size(), b.bounds_.size());
    Histogram d(a.bounds_);
    for (std::size_t i = 0; i < a.counts_.size(); i++) {
        MORC_CHECK(a.counts_[i] >= b.counts_[i],
                   "histogram difference underflows bucket %zu", i);
        d.counts_[i] = a.counts_[i] - b.counts_[i];
    }
    d.total_ = a.total_ - b.total_;
    return d;
}

} // namespace stats
} // namespace morc

#endif // MORC_STATS_HISTOGRAM_HH
