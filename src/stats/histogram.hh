/**
 * @file
 * Bucketed histogram used for latency and symbol-usage distributions.
 */

#ifndef MORC_STATS_HISTOGRAM_HH
#define MORC_STATS_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace morc {
namespace stats {

/**
 * Histogram over user-defined bucket upper bounds. A value lands in the
 * first bucket whose (inclusive) upper bound is >= value; values above
 * every bound land in a final overflow bucket.
 */
class Histogram
{
  public:
    /** @param upper_bounds Inclusive upper bound of each bucket. */
    explicit Histogram(std::vector<std::uint64_t> upper_bounds)
        : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0)
    {}

    /** Record one sample with optional weight. */
    void
    record(std::uint64_t value, std::uint64_t weight = 1)
    {
        std::size_t i = 0;
        while (i < bounds_.size() && value > bounds_[i])
            i++;
        counts_[i] += weight;
        total_ += weight;
    }

    /** Number of buckets, including the overflow bucket. */
    std::size_t numBuckets() const { return counts_.size(); }

    /** Raw count of bucket @p i. */
    std::uint64_t count(std::size_t i) const { return counts_[i]; }

    /** Inclusive upper bound of bucket @p i (not the overflow bucket). */
    std::uint64_t upperBound(std::size_t i) const { return bounds_[i]; }

    /** Fraction of all weight that fell in bucket @p i. */
    double
    fraction(std::size_t i) const
    {
        return total_ == 0
                   ? 0.0
                   : static_cast<double>(counts_[i]) /
                         static_cast<double>(total_);
    }

    /** Human-readable label for bucket @p i ("<=64", "65-128", ">512"). */
    std::string
    label(std::size_t i) const
    {
        if (i == counts_.size() - 1)
            return ">" + std::to_string(bounds_.back());
        const std::uint64_t lo = i == 0 ? 0 : bounds_[i - 1] + 1;
        if (lo == 0)
            return "<=" + std::to_string(bounds_[0]);
        return std::to_string(lo) + "-" + std::to_string(bounds_[i]);
    }

    std::uint64_t total() const { return total_; }

    void
    clear()
    {
        for (auto &c : counts_)
            c = 0;
        total_ = 0;
    }

  private:
    std::vector<std::uint64_t> bounds_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

} // namespace stats
} // namespace morc

#endif // MORC_STATS_HISTOGRAM_HH
