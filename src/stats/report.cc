#include "stats/report.hh"

#include <charconv>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace morc {
namespace stats {

std::string
formatDouble(double v)
{
    // JSON has no NaN/Inf literals; clamp to null-ish sentinels that
    // still parse. These only arise from degenerate 0/0 metrics.
    if (std::isnan(v))
        return "0";
    if (std::isinf(v))
        return v > 0 ? "1e308" : "-1e308";
    char buf[64];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    std::string s(buf, res.ptr);
    // to_chars may emit "1e+20"-style exponents; that is valid JSON.
    // Integral values come out without a decimal point ("3"), which is
    // also valid JSON and deterministic, so leave them be.
    return s;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

double
RunRecord::get(const std::string &k) const
{
    for (const auto &[name, v] : metrics) {
        if (name == k)
            return v;
    }
    std::fprintf(stderr, "RunRecord %s: no metric '%s'\n", key.c_str(),
                 k.c_str());
    std::abort();
}

bool
RunRecord::has(const std::string &k) const
{
    for (const auto &[name, v] : metrics) {
        (void)v;
        if (name == k)
            return true;
    }
    return false;
}

const RunRecord *
Report::find(const std::string &key) const
{
    for (const auto &r : runs) {
        if (r.key == key)
            return &r;
    }
    return nullptr;
}

double
Report::metric(const std::string &key, const std::string &name) const
{
    const RunRecord *r = find(key);
    if (!r) {
        std::fprintf(stderr, "Report %s: no run '%s'\n", figure.c_str(),
                     key.c_str());
        std::abort();
    }
    return r->get(name);
}

namespace {

void
appendHistogram(std::string &out, const Histogram &h)
{
    out += "{\"bounds\":[";
    // Bounds are recoverable from labels; serialize via labels to avoid
    // widening the Histogram API: bucket i's inclusive upper bound.
    for (std::size_t i = 0; i + 1 < h.numBuckets(); i++) {
        if (i)
            out += ',';
        out += std::to_string(h.upperBound(i));
    }
    out += "],\"counts\":[";
    for (std::size_t i = 0; i < h.numBuckets(); i++) {
        if (i)
            out += ',';
        out += std::to_string(h.count(i));
    }
    out += "],\"total\":";
    out += std::to_string(h.total());
    out += '}';
}

void
appendSeries(std::string &out, const telemetry::SeriesSet &s)
{
    out += "{\"epoch_cycles\":" + std::to_string(s.epochCycles);
    out += ",\"samples\":" + std::to_string(s.samples);
    out += ",\"dropped_epochs\":" + std::to_string(s.droppedEpochs);
    out += ",\"probes\":{";
    for (std::size_t i = 0; i < s.series.size(); i++) {
        const telemetry::Series &p = s.series[i];
        if (i)
            out += ',';
        out += "\"" + jsonEscape(p.name) + "\":{\"kind\":\"";
        out += p.kind == telemetry::ProbeKind::Counter ? "counter"
                                                       : "gauge";
        out += "\",\"values\":[";
        for (std::size_t j = 0; j < p.values.size(); j++) {
            if (j)
                out += ',';
            out += formatDouble(p.values[j]);
        }
        out += "]}";
    }
    out += "}}";
}

} // namespace

std::string
Report::toJson() const
{
    std::string out;
    out.reserve(4096 + runs.size() * 256);
    out += "{\n  \"schema\": \"morc.sweep.report/v5\",\n";
    out += "  \"figure\": \"" + jsonEscape(figure) + "\",\n";
    out += "  \"title\": \"" + jsonEscape(title) + "\",\n";
    out += "  \"instr_budget\": " + std::to_string(instrBudget) + ",\n";
    out += "  \"warmup_budget\": " + std::to_string(warmupBudget) + ",\n";
    out += "  \"runs\": [";
    for (std::size_t i = 0; i < runs.size(); i++) {
        const RunRecord &r = runs[i];
        out += i ? ",\n    {" : "\n    {";
        out += "\"key\": \"" + jsonEscape(r.key) + "\", \"labels\": {";
        for (std::size_t j = 0; j < r.labels.size(); j++) {
            if (j)
                out += ", ";
            out += "\"" + jsonEscape(r.labels[j].first) + "\": \"" +
                   jsonEscape(r.labels[j].second) + "\"";
        }
        out += "}, \"metrics\": {";
        for (std::size_t j = 0; j < r.metrics.size(); j++) {
            if (j)
                out += ", ";
            out += "\"" + jsonEscape(r.metrics[j].first) +
                   "\": " + formatDouble(r.metrics[j].second);
        }
        out += "}";
        if (!r.histograms.empty()) {
            out += ", \"histograms\": {";
            for (std::size_t j = 0; j < r.histograms.size(); j++) {
                if (j)
                    out += ", ";
                out += "\"" + jsonEscape(r.histograms[j].first) + "\": ";
                appendHistogram(out, r.histograms[j].second);
            }
            out += "}";
        }
        if (!r.percentiles.empty()) {
            out += ", \"percentiles\": {";
            for (std::size_t j = 0; j < r.percentiles.size(); j++) {
                if (j)
                    out += ", ";
                out += "\"" + jsonEscape(r.percentiles[j].first) +
                       "\": {";
                const RunRecord::PercentileSet &ps =
                    r.percentiles[j].second;
                for (std::size_t m = 0; m < ps.size(); m++) {
                    if (m)
                        out += ", ";
                    out += "\"" + jsonEscape(ps[m].first) +
                           "\": " + formatDouble(ps[m].second);
                }
                out += "}";
            }
            out += "}";
        }
        if (!r.lifetime.empty()) {
            out += ", \"lifetime\": {";
            for (std::size_t j = 0; j < r.lifetime.size(); j++) {
                if (j)
                    out += ", ";
                out += "\"" + jsonEscape(r.lifetime[j].first) +
                       "\": " + formatDouble(r.lifetime[j].second);
            }
            out += "}";
        }
        if (!r.series.empty()) {
            out += ", \"series\": ";
            appendSeries(out, r.series);
        }
        out += "}";
    }
    out += "\n  ]\n}\n";
    return out;
}

} // namespace stats
} // namespace morc
