/**
 * @file
 * Machine-readable run reports.
 *
 * Every sweep task produces one RunRecord (labels + flat metrics +
 * optional histograms); a Report is an ordered collection of records for
 * one figure/table plus the budgets that parameterized it. Serialization
 * is deterministic JSON: insertion order is preserved everywhere, and
 * doubles are printed with shortest-round-trip formatting, so two runs
 * that compute identical values emit byte-identical reports regardless
 * of thread count or scheduling.
 *
 * Schema (morc.sweep.report/v5):
 *
 *   {
 *     "schema": "morc.sweep.report/v5",
 *     "figure": "<name>",
 *     "title": "<one-line description>",
 *     "instr_budget": <per-core measured instructions>,
 *     "warmup_budget": <per-core warm-up instructions>,
 *     "runs": [
 *       {
 *         "key": "<figure>/<stable task key>",
 *         "labels": {"workload": "gcc", "scheme": "MORC", ...},
 *         "metrics": {"ratio": 2.9, ...},
 *         "histograms": {
 *           "<name>": {"bounds": [...], "counts": [...], "total": N}
 *         },
 *         "percentiles": {
 *           "<group>": {"p50": V, "p99": V, "p99.9": V, ...}
 *         },
 *         "lifetime": {
 *           "years": Y, "imbalance": I, ...
 *         },
 *         "series": {
 *           "epoch_cycles": N,
 *           "samples": S,
 *           "dropped_epochs": D,
 *           "probes": {
 *             "<name>": {"kind": "gauge"|"counter", "values": [...]}
 *           }
 *         }
 *       }, ...
 *     ]
 *   }
 *
 * "histograms" is omitted when a record has none; "series" is omitted
 * unless the run sampled telemetry (morc_sweep --telemetry-epoch).
 *
 * v2 (tiled-substrate PR): mesh runs add the NoC telemetry histograms
 * "noc_hops" (per-message XY hop count) and "noc_queue_cycles"
 * (per-message link-queueing delay) plus the flat metrics
 * "noc_mean_hops" / "noc_messages". The layout is unchanged — v1
 * consumers that ignore unknown histogram/metric names can read v2
 * reports — but the version is bumped so golden-file and downstream
 * tooling diffs are deliberate.
 *
 * v3 (telemetry PR): the optional per-run "series" section above
 * (epoch time-series from the probe registry; sample k covers cycle
 * (k+1) * epoch_cycles), and every run gains the "log_flushes" /
 * "lmt_conflict_evicts" metrics (nonzero for MORC/MORCMerged). Again
 * purely additive for consumers that ignore unknown names.
 *
 * v4 (KV-serving PR): the optional per-run "percentiles" section
 * above — named groups of tail-latency (or any distribution) summary
 * points, each an ordered {"p50": V, "p99": V, "p99.9": V} object
 * derived deterministically from the run's histograms. Emitted only
 * for records that set percentiles (the kvserve/kvtier figures);
 * purely additive for consumers that ignore unknown names.
 *
 * v5 (wear/lifetime PR): the optional per-run "lifetime" section
 * above — a flat object of NVM wear-forecast points (cell_bits_written,
 * cell_bit_flips, write_bits_per_sec, flips_per_cell_per_sec,
 * imbalance, set_variance, years) charged from the actual emitted
 * bitstreams (src/energy/lifetime.hh). Emitted only for records that
 * set lifetime entries (simulation figures); infinite years renders as
 * 1e308 per formatDouble. Purely additive for consumers that ignore
 * unknown names.
 */

#ifndef MORC_STATS_REPORT_HH
#define MORC_STATS_REPORT_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "stats/histogram.hh"
#include "telemetry/telemetry.hh"
#include "telemetry/tracer.hh"

namespace morc {
namespace stats {

/** Shortest-round-trip decimal rendering of a double ("1.5", "0.25"). */
std::string formatDouble(double v);

/** JSON string escaping (quotes not included). */
std::string jsonEscape(const std::string &s);

/** Outcome of one sweep task. */
struct RunRecord
{
    /** Stable unique key; also the determinism seed source. */
    std::string key;

    /** Descriptive labels (workload, scheme, config point, ...). */
    std::vector<std::pair<std::string, std::string>> labels;

    /** Flat named metrics, in insertion order. */
    std::vector<std::pair<std::string, double>> metrics;

    /** Optional named histograms. */
    std::vector<std::pair<std::string, Histogram>> histograms;

    /** One named group of percentile summary points, in insertion
     *  order ("p50" -> 42, "p99" -> 1536, ...). */
    using PercentileSet = std::vector<std::pair<std::string, double>>;

    /** Optional percentile groups (serialized when non-empty). */
    std::vector<std::pair<std::string, PercentileSet>> percentiles;

    /** Optional NVM wear/lifetime points (serialized when non-empty). */
    std::vector<std::pair<std::string, double>> lifetime;

    /** Optional epoch time-series (serialized when non-empty). */
    telemetry::SeriesSet series;

    /** Optional event trace. Not part of the report JSON — the sweep
     *  CLI collects these into the --trace-out file — but carried on
     *  the record so traces ride the same deterministic task-order
     *  assembly as everything else. */
    telemetry::TraceBuffer trace;

    void
    label(const std::string &k, const std::string &v)
    {
        labels.emplace_back(k, v);
    }

    void
    metric(const std::string &k, double v)
    {
        metrics.emplace_back(k, v);
    }

    /** Append point @p p = @p v to percentile group @p group (created
     *  at the back on first use). */
    void
    percentile(const std::string &group, const std::string &p, double v)
    {
        for (auto &g : percentiles) {
            if (g.first == group) {
                g.second.emplace_back(p, v);
                return;
            }
        }
        percentiles.emplace_back(group, PercentileSet{{p, v}});
    }

    /** Append lifetime point @p k = @p v. */
    void
    lifetimePoint(const std::string &k, double v)
    {
        lifetime.emplace_back(k, v);
    }

    /** Value of metric @p k; aborts if absent (reports are append-only,
     *  so a missing metric is a programming error in the figure). */
    double get(const std::string &k) const;

    /** True if metric @p k exists. */
    bool has(const std::string &k) const;
};

/** One figure's worth of runs. */
struct Report
{
    std::string figure;
    std::string title;
    std::uint64_t instrBudget = 0;
    std::uint64_t warmupBudget = 0;
    std::vector<RunRecord> runs;

    /** Record with key @p key, or nullptr. */
    const RunRecord *find(const std::string &key) const;

    /** Metric @p name of record @p key; aborts if either is absent. */
    double metric(const std::string &key, const std::string &name) const;

    /** Deterministic JSON serialization (see file comment). */
    std::string toJson() const;
};

} // namespace stats
} // namespace morc

#endif // MORC_STATS_REPORT_HH
