/**
 * @file
 * Scalar statistics helpers: running means, geometric means, sampling.
 *
 * The paper reports arithmetic means (AMean) and geometric means (GMean)
 * over per-benchmark results, and samples compression ratio every 10 M
 * instructions; these helpers implement those reductions.
 */

#ifndef MORC_STATS_SUMMARY_HH
#define MORC_STATS_SUMMARY_HH

#include <cmath>
#include <cstdint>
#include <vector>

#include "snapshot/snapshot.hh"

namespace morc {
namespace stats {

/** Running arithmetic mean. */
class RunningMean
{
  public:
    void
    add(double v)
    {
        sum_ += v;
        n_ += 1;
    }

    double mean() const { return n_ == 0 ? 0.0 : sum_ / n_; }
    std::uint64_t count() const { return n_; }
    double sum() const { return sum_; }

    void
    clear()
    {
        sum_ = 0.0;
        n_ = 0;
    }

    void
    save(snap::Serializer &s) const
    {
        s.f64(sum_);
        s.u64(n_);
    }

    void
    restore(snap::Deserializer &d)
    {
        const double sum = d.f64();
        const std::uint64_t n = d.u64();
        if (!d.ok())
            return;
        sum_ = sum;
        n_ = n;
    }

  private:
    double sum_ = 0.0;
    std::uint64_t n_ = 0;
};

/** Arithmetic mean of a vector. */
inline double
amean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (double x : v)
        s += x;
    return s / static_cast<double>(v.size());
}

/** Geometric mean of a vector of positive values. */
inline double
gmean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (double x : v)
        s += std::log(x);
    return std::exp(s / static_cast<double>(v.size()));
}

/**
 * Periodic sampler: accumulates instantaneous observations at fixed
 * instruction intervals and reports their mean, mirroring the paper's
 * "compression ratios are sampled every 10M instructions".
 */
class PeriodicSampler
{
  public:
    explicit PeriodicSampler(std::uint64_t interval)
        : interval_(interval), nextSample_(interval)
    {}

    /** Restart sampling relative to instruction count @p now. */
    void
    restart(std::uint64_t now)
    {
        mean_.clear();
        nextSample_ = now + interval_;
    }

    /**
     * Advance to instruction count @p now; invokes @p observe() and
     * records its value for every interval boundary crossed.
     */
    template <typename Fn>
    void
    tick(std::uint64_t now, Fn &&observe)
    {
        while (now >= nextSample_) {
            mean_.add(observe());
            nextSample_ += interval_;
        }
    }

    /** Mean of samples so far; falls back to @p fallback with no samples. */
    double
    mean(double fallback) const
    {
        return mean_.count() == 0 ? fallback : mean_.mean();
    }

    std::uint64_t samples() const { return mean_.count(); }

    void
    save(snap::Serializer &s) const
    {
        s.u64(interval_);
        s.u64(nextSample_);
        mean_.save(s);
    }

    void
    restore(snap::Deserializer &d)
    {
        const std::uint64_t interval = d.u64();
        const std::uint64_t next = d.u64();
        if (d.ok() && interval != interval_) {
            d.fail("periodic sampler interval mismatch");
            return;
        }
        mean_.restore(d);
        if (!d.ok())
            return;
        nextSample_ = next;
    }

  private:
    std::uint64_t interval_;
    std::uint64_t nextSample_;
    RunningMean mean_;
};

} // namespace stats
} // namespace morc

#endif // MORC_STATS_SUMMARY_HH
