#include "sweep/journal.hh"

#include <cstdio>
#include <cstring>
#include <vector>

namespace morc {
namespace sweep {

namespace {

constexpr char kEntryMagic[4] = {'J', 'R', 'E', 'C'};
constexpr std::size_t kEntryHeaderBytes = 4 + 8;

std::uint64_t
getU64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (unsigned i = 0; i < 8; i++)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

std::uint32_t
getU32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (unsigned i = 0; i < 4; i++)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

} // namespace

void
saveRunRecord(snap::Serializer &s, const stats::RunRecord &rec)
{
    s.beginSection("RREC");
    s.str(rec.key);
    s.vec(rec.labels, [&s](const auto &kv) {
        s.str(kv.first);
        s.str(kv.second);
    });
    s.vec(rec.metrics, [&s](const auto &kv) {
        s.str(kv.first);
        s.f64(kv.second);
    });
    s.vec(rec.histograms, [&s](const auto &kv) {
        s.str(kv.first);
        kv.second.save(s);
    });
    s.vec(rec.percentiles, [&s](const auto &group) {
        s.str(group.first);
        s.vec(group.second, [&s](const auto &kv) {
            s.str(kv.first);
            s.f64(kv.second);
        });
    });
    s.vec(rec.lifetime, [&s](const auto &kv) {
        s.str(kv.first);
        s.f64(kv.second);
    });
    s.u64(rec.series.epochCycles);
    s.u64(rec.series.samples);
    s.u64(rec.series.droppedEpochs);
    s.vec(rec.series.series, [&s](const telemetry::Series &ser) {
        s.str(ser.name);
        s.u8(static_cast<std::uint8_t>(ser.kind));
        s.vecF64(ser.values);
    });
    s.vec(rec.trace.tracks,
          [&s](const std::string &t) { s.str(t); });
    s.vec(rec.trace.events, [&s](const telemetry::Event &e) {
        s.u64(e.cycles);
        s.u8(static_cast<std::uint8_t>(e.kind));
        s.u16(e.track);
        s.u64(e.a0);
        s.u64(e.a1);
    });
    s.u64(rec.trace.dropped);
    s.endSection();
}

stats::RunRecord
loadRunRecord(snap::Deserializer &d)
{
    stats::RunRecord rec;
    if (!d.beginSection("RREC"))
        return rec;
    rec.key = d.str();
    d.readVec(rec.labels, 16, [&d]() {
        std::string k = d.str();
        std::string v = d.str();
        return std::pair<std::string, std::string>(std::move(k),
                                                   std::move(v));
    });
    d.readVec(rec.metrics, 8 + 8, [&d]() {
        std::string k = d.str();
        const double v = d.f64();
        return std::pair<std::string, double>(std::move(k), v);
    });
    d.readVec(rec.histograms, 8 + 8 + 8 + 8, [&d]() {
        std::string k = d.str();
        stats::Histogram h = stats::Histogram::load(d);
        return std::pair<std::string, stats::Histogram>(std::move(k),
                                                        std::move(h));
    });
    d.readVec(rec.percentiles, 8 + 8, [&d]() {
        std::string group = d.str();
        std::vector<std::pair<std::string, double>> points;
        d.readVec(points, 8 + 8, [&d]() {
            std::string k = d.str();
            const double v = d.f64();
            return std::pair<std::string, double>(std::move(k), v);
        });
        return std::pair<std::string,
                         std::vector<std::pair<std::string, double>>>(
            std::move(group), std::move(points));
    });
    d.readVec(rec.lifetime, 8 + 8, [&d]() {
        std::string k = d.str();
        const double v = d.f64();
        return std::pair<std::string, double>(std::move(k), v);
    });
    rec.series.epochCycles = d.u64();
    rec.series.samples = d.u64();
    rec.series.droppedEpochs = d.u64();
    d.readVec(rec.series.series, 8 + 1 + 8, [&d]() {
        telemetry::Series ser;
        ser.name = d.str();
        const std::uint8_t kind = d.u8();
        if (kind > static_cast<std::uint8_t>(
                       telemetry::ProbeKind::Counter)) {
            d.fail("journal: bad probe kind");
        } else {
            ser.kind = static_cast<telemetry::ProbeKind>(kind);
        }
        d.vecF64(ser.values);
        return ser;
    });
    d.readVec(rec.trace.tracks, 8, [&d]() { return d.str(); });
    d.readVec(rec.trace.events, 8 + 1 + 2 + 8 + 8, [&d]() {
        telemetry::Event e;
        e.cycles = d.u64();
        const std::uint8_t kind = d.u8();
        if (kind > static_cast<std::uint8_t>(
                       telemetry::EventKind::NocStall)) {
            d.fail("journal: bad event kind");
        } else {
            e.kind = static_cast<telemetry::EventKind>(kind);
        }
        e.track = d.u16();
        e.a0 = d.u64();
        e.a1 = d.u64();
        return e;
    });
    rec.trace.dropped = d.u64();
    d.endSection();
    return rec;
}

std::size_t
Journal::load()
{
    sync::LockGuard lock(mu_);
    records_.clear();
    std::vector<std::uint8_t> buf;
    if (!snap::readFile(path_, buf))
        return 0; // no journal yet: fresh sweep
    std::size_t pos = 0;
    while (pos + kEntryHeaderBytes + 4 <= buf.size()) {
        if (std::memcmp(buf.data() + pos, kEntryMagic, 4) != 0)
            break;
        const std::uint64_t len = getU64(buf.data() + pos + 4);
        if (len > buf.size() - pos - kEntryHeaderBytes - 4)
            break; // torn tail: entry extends past EOF
        const std::uint8_t *payload = buf.data() + pos + kEntryHeaderBytes;
        const std::uint32_t crc =
            getU32(payload + static_cast<std::size_t>(len));
        if (snap::crc32(payload, static_cast<std::size_t>(len)) != crc)
            break; // damaged entry: keep everything before it
        // Re-frame the payload so the Deserializer's validation
        // machinery (sections, bounds) applies unchanged.
        snap::Serializer s;
        s.bytes(payload, static_cast<std::size_t>(len));
        snap::Deserializer d(s.frame());
        stats::RunRecord rec = loadRunRecord(d);
        if (!d.ok() || rec.key.empty())
            break;
        records_[rec.key] = std::move(rec);
        pos += kEntryHeaderBytes + static_cast<std::size_t>(len) + 4;
    }
    return records_.size();
}

const stats::RunRecord *
Journal::lookup(const std::string &key) const
{
    sync::LockGuard lock(mu_);
    auto it = records_.find(key);
    return it == records_.end() ? nullptr : &it->second;
}

void
Journal::append(const stats::RunRecord &rec)
{
    snap::Serializer s;
    saveRunRecord(s, rec);
    const std::vector<std::uint8_t> &payload = s.payload();
    const std::uint32_t crc = snap::crc32(payload.data(), payload.size());

    std::vector<std::uint8_t> entry;
    entry.reserve(kEntryHeaderBytes + payload.size() + 4);
    for (char c : kEntryMagic)
        entry.push_back(static_cast<std::uint8_t>(c));
    const std::uint64_t len = payload.size();
    for (unsigned i = 0; i < 8; i++)
        entry.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
    entry.insert(entry.end(), payload.begin(), payload.end());
    for (unsigned i = 0; i < 4; i++)
        entry.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));

    sync::LockGuard lock(mu_);
    records_[rec.key] = rec;
    std::FILE *f = std::fopen(path_.c_str(), "ab");
    bool ok = f != nullptr;
    if (f) {
        ok = std::fwrite(entry.data(), 1, entry.size(), f) ==
             entry.size();
        ok = std::fflush(f) == 0 && ok;
        std::fclose(f);
    }
    if (!ok && !writeFailed_) {
        writeFailed_ = true; // warn once; the sweep itself continues
        std::fprintf(stderr,
                     "[checkpoint] cannot append to journal %s; this "
                     "run will not be resumable\n",
                     path_.c_str());
    }
}

std::size_t
Journal::size() const
{
    sync::LockGuard lock(mu_);
    return records_.size();
}

} // namespace sweep
} // namespace morc
