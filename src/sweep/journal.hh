/**
 * @file
 * Crash-safe journal of finished sweep tasks.
 *
 * A sweep with --checkpoint-dir appends every finished RunRecord to a
 * per-figure journal file the moment it completes. A killed run can
 * then resume: load() recovers every intact record, the driver skips
 * the corresponding tasks (their journaled records are returned
 * verbatim), and only unfinished work is simulated. Because records
 * round-trip bit-exactly — doubles travel as IEEE-754 bit patterns —
 * the resumed report is byte-identical to an uninterrupted run's.
 *
 * File layout: a sequence of independent entries
 *
 *   magic "JREC" | u64 payload length | payload | u32 CRC32(payload)
 *
 * Each entry is self-checking, so a torn tail (the process died
 * mid-append) or a corrupt entry simply ends recovery there: every
 * entry before it is kept, the damaged suffix is ignored, and the
 * tasks it covered are re-simulated. Appends are serialized by a
 * mutex and flushed per record, so concurrent sweep workers can
 * journal safely.
 */

#ifndef MORC_SWEEP_JOURNAL_HH
#define MORC_SWEEP_JOURNAL_HH

#include <cstddef>
#include <string>
#include <unordered_map>

#include "snapshot/snapshot.hh"
#include "stats/report.hh"
#include "util/sync.hh"

namespace morc {
namespace sweep {

/** Serialize one RunRecord (key, labels, metrics, histograms, series,
 *  trace) into @p s. Shared by the journal and its tests. */
void saveRunRecord(snap::Serializer &s, const stats::RunRecord &rec);

/** Inverse of saveRunRecord(); check @p d.ok() before trusting the
 *  result. */
stats::RunRecord loadRunRecord(snap::Deserializer &d);

/** Append-only, CRC-guarded store of finished RunRecords, keyed by the
 *  task key. */
class Journal
{
  public:
    explicit Journal(std::string path) : path_(std::move(path)) {}

    /** Recover intact records from an existing journal file (missing
     *  file = empty journal). A torn or corrupt entry ends recovery:
     *  everything before it is kept, the damaged tail discarded.
     *  @return Number of records recovered. */
    std::size_t load();

    /** Journaled record for @p key, or nullptr. The pointer stays
     *  valid for the journal's lifetime. */
    const stats::RunRecord *lookup(const std::string &key) const;

    /** Append one finished record (rec.key must be set) and flush it
     *  to disk. Thread-safe; failures to write are reported once on
     *  stderr but never abort the sweep. */
    void append(const stats::RunRecord &rec);

    std::size_t size() const;
    const std::string &path() const { return path_; }

  private:
    std::string path_;
    mutable sync::Mutex mu_;
    // Keyed store of recovered + appended records. Never iterated —
    // reports are rebuilt in task order by the sweep driver — so the
    // unordered layout cannot reach an artifact.
    std::unordered_map<std::string, stats::RunRecord> records_
        MORC_GUARDED_BY(mu_);
    // Journal file handle is opened per append under mu_; the
    // warn-once latch shares its critical section.
    bool writeFailed_ MORC_GUARDED_BY(mu_) = false;
};

} // namespace sweep
} // namespace morc

#endif // MORC_SWEEP_JOURNAL_HH
