#include "sweep/pool.hh"

#include <algorithm>

namespace morc {
namespace sweep {

Pool::Pool(unsigned threads)
{
    if (threads == 0)
        threads = std::max(1u, sync::hardwareConcurrency());
    queues_.reserve(threads);
    for (unsigned i = 0; i < threads; i++)
        queues_.push_back(std::make_unique<WorkerQueue>());
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; i++) {
        workers_.emplace_back(
            [this, i](std::stop_token st) { workerLoop(st, i); });
    }
}

Pool::~Pool()
{
    for (auto &w : workers_)
        w.request_stop();
    idleCv_.notify_all();
    // jthread joins on destruction; workers drain their queues before
    // honoring the stop request, so every future is made ready.
}

void
Pool::push(std::packaged_task<void()> task)
{
    const unsigned idx =
        nextQueue_.fetch_add(1, std::memory_order_relaxed) %
        queues_.size();
    {
        sync::LockGuard lock(queues_[idx]->mutex);
        queues_[idx]->tasks.push_front(std::move(task));
    }
    idleCv_.notify_one();
}

bool
Pool::popLocal(unsigned self, std::packaged_task<void()> &out)
{
    WorkerQueue &q = *queues_[self];
    sync::LockGuard lock(q.mutex);
    if (q.tasks.empty())
        return false;
    out = std::move(q.tasks.front());
    q.tasks.pop_front();
    return true;
}

bool
Pool::steal(unsigned self, std::packaged_task<void()> &out)
{
    const unsigned n = static_cast<unsigned>(queues_.size());
    for (unsigned off = 1; off < n; off++) {
        WorkerQueue &q = *queues_[(self + off) % n];
        sync::LockGuard lock(q.mutex);
        if (q.tasks.empty())
            continue;
        out = std::move(q.tasks.back());
        q.tasks.pop_back();
        return true;
    }
    return false;
}

void
Pool::workerLoop(std::stop_token stoken, unsigned self)
{
    for (;;) {
        std::packaged_task<void()> task;
        if (popLocal(self, task) || steal(self, task)) {
            task(); // exceptions land in the task's future
            executed_.fetch_add(1, std::memory_order_relaxed);
            continue;
        }
        sync::UniqueLock lock(idleMutex_);
        // Re-check under the idle lock: a push between our scan and the
        // wait would otherwise be missed.
        const bool empty = [&] {
            for (auto &q : queues_) {
                sync::LockGuard ql(q->mutex);
                if (!q->tasks.empty())
                    return false;
            }
            return true;
        }();
        if (!empty)
            continue;
        if (stoken.stop_requested())
            return;
        idleCv_.wait_for(lock, stoken, std::chrono::milliseconds(50),
                         [] { return false; });
        if (stoken.stop_requested()) {
            // Drain once more before exiting so no future is orphaned.
            continue;
        }
    }
}

void
Pool::cancel()
{
    cancelled_.store(true, std::memory_order_release);
    // Unstarted tasks still flow through workers, whose wrappers now
    // complete them with PoolCancelled; nothing blocks on a slow task.
    idleCv_.notify_all();
}

} // namespace sweep
} // namespace morc
