/**
 * @file
 * Work-stealing thread pool for the sweep engine.
 *
 * Each worker owns a deque: it pushes and pops at the front (LIFO keeps
 * per-worker cache locality for task chains) and victims are robbed from
 * the back (FIFO stealing takes the oldest — likely largest — work
 * first). External submitters distribute round-robin across the worker
 * deques. Results and exceptions travel through std::future, so a task
 * that throws surfaces its exception at future.get() rather than
 * terminating the pool.
 *
 * cancel() discards tasks that have not started: every unstarted task's
 * future completes with a PoolCancelled exception instead of hanging, so
 * callers can always account for submitted work (ran + cancelled ==
 * submitted; nothing is silently lost). Destruction drains the queues
 * (cancel-free shutdown waits for all submitted work).
 */

#ifndef MORC_SWEEP_POOL_HH
#define MORC_SWEEP_POOL_HH

#include <atomic>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread> // morc-analyze: allow(raw-sync) jthread workers live here by design
#include <type_traits>
#include <vector>

#include "util/sync.hh"

namespace morc {
namespace sweep {

/** Thrown into the futures of tasks discarded by Pool::cancel(). */
struct PoolCancelled : std::runtime_error
{
    PoolCancelled() : std::runtime_error("task cancelled") {}
};

class Pool
{
  public:
    /** @param threads Worker count; 0 means hardware_concurrency. */
    explicit Pool(unsigned threads = 0);

    /** Requests stop, drains remaining queued tasks, joins workers. */
    ~Pool();

    Pool(const Pool &) = delete;
    Pool &operator=(const Pool &) = delete;

    /**
     * Enqueue @p fn; its result (or exception) is delivered through the
     * returned future. After cancel(), the task completes immediately
     * with PoolCancelled.
     */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        auto task = std::packaged_task<R()>(
            [this, f = std::forward<F>(fn)]() mutable -> R {
                if (cancelled_.load(std::memory_order_acquire))
                    throw PoolCancelled{};
                return f();
            });
        std::future<R> fut = task.get_future();
        push(std::packaged_task<void()>(std::move(task)));
        return fut;
    }

    /**
     * Discard all tasks that have not yet started executing; their
     * futures complete with PoolCancelled. Tasks already running finish
     * normally. Idempotent.
     */
    void cancel();

    unsigned threadCount() const { return static_cast<unsigned>(workers_.size()); }

    /** Total tasks whose wrapper ran to completion (incl. cancelled). */
    std::uint64_t executedCount() const { return executed_.load(); }

  private:
    struct WorkerQueue
    {
        sync::Mutex mutex;
        std::deque<std::packaged_task<void()>> tasks
            MORC_GUARDED_BY(mutex);
    };

    void push(std::packaged_task<void()> task);
    bool popLocal(unsigned self, std::packaged_task<void()> &out);
    bool steal(unsigned self, std::packaged_task<void()> &out);
    void workerLoop(std::stop_token stoken, unsigned self);

    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    // Worker threads; the raw std::jthread container is sanctioned here
    // (and only here) — everything else must submit() work instead of
    // spawning threads. morc-analyze: allow(raw-sync)
    std::vector<std::jthread> workers_;

    sync::Mutex idleMutex_;
    sync::CondVarAny idleCv_;
    std::atomic<unsigned> nextQueue_{0};
    std::atomic<std::uint64_t> executed_{0};
    std::atomic<bool> cancelled_{false};
};

} // namespace sweep
} // namespace morc

#endif // MORC_SWEEP_POOL_HH
