#include "sweep/sweep.hh"

#include <future>
#include <stdexcept>

#include "sweep/pool.hh"

namespace morc {
namespace sweep {

std::vector<stats::RunRecord>
Engine::run(const std::vector<Task> &tasks) const
{
    Pool pool(jobs_);
    std::vector<std::future<stats::RunRecord>> futures;
    futures.reserve(tasks.size());
    for (const Task &t : tasks) {
        futures.push_back(pool.submit(
            [&t] { return t.run(stableSeed(t.key)); }));
    }

    std::vector<stats::RunRecord> records;
    records.reserve(tasks.size());
    std::string firstError;
    for (std::size_t i = 0; i < futures.size(); i++) {
        try {
            stats::RunRecord r = futures[i].get();
            r.key = tasks[i].key; // the key is authoritative
            records.push_back(std::move(r));
        } catch (const PoolCancelled &) {
            // Only reachable after a prior failure triggered cancel().
        } catch (const std::exception &e) {
            if (firstError.empty()) {
                firstError =
                    "sweep task '" + tasks[i].key + "': " + e.what();
                pool.cancel(); // drop unstarted work, fail fast
            }
        }
    }
    if (!firstError.empty())
        throw std::runtime_error(firstError);
    return records;
}

} // namespace sweep
} // namespace morc
