/**
 * @file
 * Deterministic parallel sweep engine.
 *
 * A sweep is a vector of independent tasks, each identified by a stable
 * string key (e.g. "fig6/gcc/MORC") and producing one stats::RunRecord.
 * The engine fans tasks out over a work-stealing pool and returns the
 * records in task order, so the assembled stats::Report — and its JSON
 * serialization — is bit-identical regardless of thread count or the
 * order in which workers happen to finish.
 *
 * Any randomness a task needs must come from the seed the engine hands
 * it, which is derived purely from the task key (stableSeed). Identical
 * key => identical seed => identical record, on 1 thread or 64.
 */

#ifndef MORC_SWEEP_SWEEP_HH
#define MORC_SWEEP_SWEEP_HH

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "stats/report.hh"
#include "util/rng.hh"

namespace morc {
namespace sweep {

/** Deterministic 64-bit seed from a stable task key (FNV-1a + mix). */
constexpr std::uint64_t
stableSeed(std::string_view key)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (char c : key) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return splitmix64(h);
}

/** One unit of sweep work. */
struct Task
{
    /** Stable unique key; becomes the record key and the seed source. */
    std::string key;

    /** Body; must depend only on its arguments and immutable state. */
    std::function<stats::RunRecord(std::uint64_t seed)> run;
};

/** Parallel executor for Task vectors. */
class Engine
{
  public:
    /** @param jobs Worker threads; 0 means hardware_concurrency. */
    explicit Engine(unsigned jobs = 0) : jobs_(jobs) {}

    /**
     * Run every task and return records in task order. A throwing task
     * aborts the sweep: remaining tasks are cancelled and the first
     * failure (in task order) is rethrown wrapped with its key.
     */
    std::vector<stats::RunRecord> run(const std::vector<Task> &tasks) const;

    unsigned jobs() const { return jobs_; }

  private:
    unsigned jobs_;
};

} // namespace sweep
} // namespace morc

#endif // MORC_SWEEP_SWEEP_HH
