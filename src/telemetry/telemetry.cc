#include "telemetry/telemetry.hh"

#include "check/check.hh"

namespace morc {
namespace telemetry {

Registry::Registry(Cycles epoch_cycles, std::size_t max_samples)
    : epochCycles_(epoch_cycles), maxSamples_(max_samples),
      nextBoundary_(epoch_cycles)
{
    MORC_CHECK(epoch_cycles > 0, "telemetry epoch must be positive");
}

void
Registry::add(const std::string &name, ProbeKind kind, ReadFn read)
{
    MORC_CHECK(samples_ == 0,
               "probe '%s' registered after sampling started",
               name.c_str());
    Probe p;
    p.series.name = name;
    p.series.kind = kind;
    p.read = std::move(read);
    probes_.push_back(std::move(p));
}

void
Registry::gauge(const std::string &name, ReadFn read)
{
    add(name, ProbeKind::Gauge, std::move(read));
}

void
Registry::counter(const std::string &name, ReadFn read)
{
    add(name, ProbeKind::Counter, std::move(read));
}

void
Registry::advanceTo(Cycles now)
{
    while (nextBoundary_ <= now) {
        if (samples_ < maxSamples_) {
            for (auto &p : probes_)
                p.series.values.push_back(p.read(nextBoundary_));
            samples_++;
        } else {
            droppedEpochs_++;
        }
        nextBoundary_ += epochCycles_;
    }
}

void
Registry::restart()
{
    for (auto &p : probes_)
        p.series.values.clear();
    samples_ = 0;
    droppedEpochs_ = 0;
    nextBoundary_ = epochCycles_;
}

SeriesSet
Registry::snapshot() const
{
    SeriesSet out;
    out.epochCycles = epochCycles_;
    out.samples = samples_;
    out.droppedEpochs = droppedEpochs_;
    out.series.reserve(probes_.size());
    for (const auto &p : probes_)
        out.series.push_back(p.series);
    return out;
}

} // namespace telemetry
} // namespace morc
