#include "telemetry/telemetry.hh"

#include "check/check.hh"

namespace morc {
namespace telemetry {

Registry::Registry(Cycles epoch_cycles, std::size_t max_samples)
    : epochCycles_(epoch_cycles), maxSamples_(max_samples),
      nextBoundary_(epoch_cycles)
{
    MORC_CHECK(epoch_cycles > 0, "telemetry epoch must be positive");
}

void
Registry::add(const std::string &name, ProbeKind kind, ReadFn read)
{
    MORC_CHECK(samples_ == 0,
               "probe '%s' registered after sampling started",
               name.c_str());
    Probe p;
    p.series.name = name;
    p.series.kind = kind;
    p.read = std::move(read);
    probes_.push_back(std::move(p));
}

void
Registry::gauge(const std::string &name, ReadFn read)
{
    add(name, ProbeKind::Gauge, std::move(read));
}

void
Registry::counter(const std::string &name, ReadFn read)
{
    add(name, ProbeKind::Counter, std::move(read));
}

void
Registry::advanceTo(Cycles now)
{
    while (nextBoundary_ <= now) {
        if (samples_ < maxSamples_) {
            for (auto &p : probes_)
                p.series.values.push_back(p.read(nextBoundary_));
            samples_++;
        } else {
            droppedEpochs_++;
        }
        nextBoundary_ += epochCycles_;
    }
}

void
Registry::restart()
{
    for (auto &p : probes_)
        p.series.values.clear();
    samples_ = 0;
    droppedEpochs_ = 0;
    nextBoundary_ = epochCycles_;
}

void
Registry::saveState(snap::Serializer &s) const
{
    s.beginSection("TLMR");
    s.u64(epochCycles_);
    s.u64(maxSamples_);
    s.u64(nextBoundary_);
    s.u64(samples_);
    s.u64(droppedEpochs_);
    s.vec(probes_, [&](const Probe &p) {
        s.str(p.series.name);
        s.u8(static_cast<std::uint8_t>(p.series.kind));
        s.vecF64(p.series.values);
    });
    s.endSection();
}

void
Registry::restoreState(snap::Deserializer &d)
{
    if (!d.beginSection("TLMR"))
        return;
    const std::uint64_t epoch = d.u64();
    const std::uint64_t maxSamples = d.u64();
    const std::uint64_t nextBoundary = d.u64();
    const std::uint64_t samples = d.u64();
    const std::uint64_t dropped = d.u64();
    const std::uint64_t n = d.arrayLen(1);
    if (d.ok() &&
        (epoch != epochCycles_ || maxSamples != maxSamples_ ||
         n != probes_.size())) {
        d.fail("telemetry registry shape mismatch (epoch/capacity/"
               "probe count differ from the live configuration)");
    }
    for (std::uint64_t i = 0; i < n && d.ok(); i++) {
        const std::string name = d.str();
        const std::uint8_t kind = d.u8();
        std::vector<double> values;
        d.vecF64(values);
        if (!d.ok())
            break;
        Probe &p = probes_[static_cast<std::size_t>(i)];
        if (name != p.series.name ||
            kind != static_cast<std::uint8_t>(p.series.kind)) {
            d.fail("telemetry probe mismatch at index " +
                   std::to_string(i) + " ('" + name + "' vs live '" +
                   p.series.name + "')");
            break;
        }
        p.series.values = std::move(values);
    }
    d.endSection();
    if (!d.ok())
        return;
    nextBoundary_ = nextBoundary;
    samples_ = samples;
    droppedEpochs_ = dropped;
}

SeriesSet
Registry::snapshot() const
{
    SeriesSet out;
    out.epochCycles = epochCycles_;
    out.samples = samples_;
    out.droppedEpochs = droppedEpochs_;
    out.series.reserve(probes_.size());
    for (const auto &p : probes_)
        out.series.push_back(p.series);
    return out;
}

} // namespace telemetry
} // namespace morc
