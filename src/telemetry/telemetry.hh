/**
 * @file
 * Deterministic telemetry: a probe registry with an epoch sampler.
 *
 * Components publish named probes — callbacks the sampler reads — and
 * the sampler evaluates every probe at each simulated-cycle epoch
 * boundary (N, 2N, 3N, ...) into fixed-capacity time-series. Two probe
 * kinds exist:
 *
 *   gauge    an instantaneous quantity (LMT occupancy, queue depth);
 *            consumers plot the sampled value directly.
 *   counter  a monotone cumulative count (log flushes, NoC messages);
 *            consumers difference adjacent samples to get per-epoch
 *            rates.
 *
 * Determinism rules (the layer's reason to exist):
 *   - time is *simulated cycles only*; nothing here may read a host
 *     clock, and the sampler is advanced explicitly by the simulation
 *     driver at its global time front,
 *   - epoch boundaries depend only on the configured epoch length, so
 *     two runs of the same configuration sample at identical cycles
 *     regardless of sweep thread count,
 *   - probes are evaluated in registration order, which is itself
 *     deterministic (construction order of the system).
 *
 * A Registry is owned by one simulated system and is not thread-safe;
 * sweep-level parallelism keeps one Registry per task.
 */

#ifndef MORC_TELEMETRY_TELEMETRY_HH
#define MORC_TELEMETRY_TELEMETRY_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "snapshot/snapshot.hh"
#include "util/types.hh"

namespace morc {
namespace telemetry {

enum class ProbeKind : std::uint8_t
{
    Gauge,
    Counter
};

/** One probe's sampled time-series. */
struct Series
{
    std::string name;
    ProbeKind kind = ProbeKind::Gauge;
    std::vector<double> values; // one entry per sampled epoch
};

/** Snapshot of every series a Registry sampled. */
struct SeriesSet
{
    /** Simulated cycles per epoch (0 = sampling was off). */
    Cycles epochCycles = 0;

    /** Samples recorded per series (all series stay in lockstep). */
    std::uint64_t samples = 0;

    /** Epoch boundaries past the series capacity (not recorded). */
    std::uint64_t droppedEpochs = 0;

    std::vector<Series> series;

    bool
    empty() const
    {
        return epochCycles == 0 || series.empty();
    }
};

/**
 * Probe registry + epoch sampler.
 *
 * Probes receive the epoch-boundary cycle they are being sampled at, so
 * time-dependent gauges (channel backlog, links busy *now*) can be
 * expressed without the component tracking a clock of its own.
 */
class Registry
{
  public:
    using ReadFn = std::function<double(Cycles now)>;

    /** Default cap on samples per series (~4 KB of doubles each). */
    static constexpr std::size_t kDefaultMaxSamples = 512;

    /**
     * @param epoch_cycles Simulated cycles between samples (> 0).
     * @param max_samples  Fixed series capacity; boundaries beyond it
     *                     are counted as dropped, not recorded.
     */
    explicit Registry(Cycles epoch_cycles,
                      std::size_t max_samples = kDefaultMaxSamples);

    void gauge(const std::string &name, ReadFn read);
    void counter(const std::string &name, ReadFn read);

    /**
     * Sample every probe for each epoch boundary <= @p now that has not
     * been sampled yet. The driver calls this with its monotone global
     * time front; a front that jumps several epochs at once records one
     * sample per crossed boundary (each evaluated at its boundary
     * cycle).
     */
    void advanceTo(Cycles now);

    /** Drop all samples and restart epoch 1 at cycle 0 (end of
     *  warm-up rebase). Registered probes are kept. */
    void restart();

    Cycles epochCycles() const { return epochCycles_; }
    std::uint64_t samples() const { return samples_; }
    std::uint64_t droppedEpochs() const { return droppedEpochs_; }
    std::size_t numProbes() const { return probes_.size(); }

    /** Copy out all series (registration order). */
    SeriesSet snapshot() const;

    /** Append sampler counters and every probe's sampled series. The
     *  probe callbacks themselves are not serialized — they re-bind at
     *  construction of the restored system. */
    void saveState(snap::Serializer &s) const;

    /** Restore sampler counters and series data; the live registry
     *  must hold identical probes (name, kind, order) and config. */
    void restoreState(snap::Deserializer &d);

  private:
    struct Probe
    {
        Series series;
        ReadFn read;
    };

    void add(const std::string &name, ProbeKind kind, ReadFn read);

    Cycles epochCycles_;
    std::size_t maxSamples_;
    Cycles nextBoundary_;
    std::uint64_t samples_ = 0;
    std::uint64_t droppedEpochs_ = 0;
    std::vector<Probe> probes_;
};

} // namespace telemetry
} // namespace morc

#endif // MORC_TELEMETRY_TELEMETRY_HH
