#include "telemetry/tracer.hh"

#include "check/check.hh"

namespace morc {
namespace telemetry {

const char *
eventName(EventKind kind)
{
    switch (kind) {
      case EventKind::LogFlush: return "log_flush";
      case EventKind::LogReuse: return "log_reuse";
      case EventKind::FudgeNearTie: return "fudge_near_tie";
      case EventKind::LmtConflictEvict: return "lmt_conflict_evict";
      case EventKind::WritebackBurst: return "writeback_burst";
      case EventKind::NocStall: return "noc_stall";
    }
    return "unknown";
}

namespace {

/** Argument field names per kind (a0, a1), for readable traces. */
void
argNames(EventKind kind, const char **a0, const char **a1)
{
    switch (kind) {
      case EventKind::LogFlush:
        *a0 = "log"; *a1 = "valid_lines"; return;
      case EventKind::LogReuse:
        *a0 = "log"; *a1 = "lines"; return;
      case EventKind::FudgeNearTie:
        *a0 = "log"; *a1 = "margin_bits"; return;
      case EventKind::LmtConflictEvict:
        *a0 = "slot"; *a1 = "line"; return;
      case EventKind::WritebackBurst:
        *a0 = "writebacks"; *a1 = "lines_flushed"; return;
      case EventKind::NocStall:
        *a0 = "link"; *a1 = "queued_cycles"; return;
    }
    *a0 = "a0";
    *a1 = "a1";
}

} // namespace

std::uint64_t
TraceBuffer::countKind(EventKind kind) const
{
    std::uint64_t n = 0;
    for (const auto &e : events)
        n += e.kind == kind ? 1 : 0;
    return n;
}

Tracer::Tracer(std::size_t capacity) : capacity_(capacity)
{
    MORC_CHECK(capacity > 0, "tracer capacity must be positive");
    ring_.reserve(capacity < 4096 ? capacity : 4096);
}

std::uint16_t
Tracer::track(const std::string &name)
{
    for (std::size_t i = 0; i < tracks_.size(); i++) {
        if (tracks_[i] == name)
            return static_cast<std::uint16_t>(i);
    }
    tracks_.push_back(name);
    return static_cast<std::uint16_t>(tracks_.size() - 1);
}

void
Tracer::push(const Event &e)
{
    recorded_++;
    if (ring_.size() < capacity_) {
        ring_.push_back(e);
        return;
    }
    // Flight-recorder wrap: overwrite the oldest event.
    ring_[head_] = e;
    head_ = (head_ + 1) % capacity_;
    dropped_++;
}

void
Tracer::clear()
{
    ring_.clear();
    head_ = 0;
    recorded_ = 0;
    dropped_ = 0;
}

void
Tracer::saveState(snap::Serializer &s) const
{
    s.beginSection("TLMT");
    s.u64(capacity_);
    s.u64(head_);
    s.u64(recorded_);
    s.u64(dropped_);
    s.u64(now_);
    s.vec(tracks_, [&](const std::string &t) { s.str(t); });
    s.vec(ring_, [&](const Event &e) {
        s.u64(e.cycles);
        s.u8(static_cast<std::uint8_t>(e.kind));
        s.u16(e.track);
        s.u64(e.a0);
        s.u64(e.a1);
    });
    s.endSection();
}

void
Tracer::restoreState(snap::Deserializer &d)
{
    if (!d.beginSection("TLMT"))
        return;
    const std::uint64_t capacity = d.u64();
    const std::uint64_t head = d.u64();
    const std::uint64_t recorded = d.u64();
    const std::uint64_t dropped = d.u64();
    const std::uint64_t now = d.u64();
    std::vector<std::string> tracks;
    d.readVec(tracks, 8, [&] { return d.str(); });
    if (d.ok() && (capacity != capacity_ || tracks != tracks_)) {
        d.fail("tracer shape mismatch (capacity or registered tracks "
               "differ from the live configuration)");
    }
    std::vector<Event> ring;
    d.readVec(ring, 8 + 1 + 2 + 8 + 8, [&] {
        Event e;
        e.cycles = d.u64();
        e.kind = static_cast<EventKind>(d.u8());
        e.track = d.u16();
        e.a0 = d.u64();
        e.a1 = d.u64();
        if (d.ok() && (e.kind > EventKind::NocStall ||
                       e.track >= tracks_.size())) {
            d.fail("trace event with out-of-range kind or track");
        }
        return e;
    });
    if (d.ok() && (ring.size() > capacity_ ||
                   head >= (ring.size() == capacity_ ? capacity_ : 1))) {
        d.fail("tracer ring/head out of range");
    }
    d.endSection();
    if (!d.ok())
        return;
    ring_ = std::move(ring);
    head_ = static_cast<std::size_t>(head);
    recorded_ = recorded;
    dropped_ = dropped;
    now_ = now;
}

TraceBuffer
Tracer::snapshot() const
{
    TraceBuffer out;
    out.tracks = tracks_;
    out.dropped = dropped_;
    out.events.reserve(ring_.size());
    // head_ is the oldest slot once the ring has wrapped.
    for (std::size_t i = 0; i < ring_.size(); i++)
        out.events.push_back(ring_[(head_ + i) % ring_.size()]);
    return out;
}

std::string
chromeTraceJson(
    const std::vector<std::pair<std::string, TraceBuffer>> &runs)
{
    std::string out;
    out.reserve(1024 + runs.size() * 4096);
    out += "{\"traceEvents\":[";
    bool first = true;
    const auto emit = [&](const std::string &obj) {
        if (!first)
            out += ",\n";
        else
            out += "\n";
        out += obj;
        first = false;
    };
    for (std::size_t r = 0; r < runs.size(); r++) {
        const std::string pid = std::to_string(r + 1);
        const TraceBuffer &buf = runs[r].second;
        emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" + pid +
             ",\"tid\":0,\"args\":{\"name\":\"" + runs[r].first +
             "\"}}");
        for (std::size_t t = 0; t < buf.tracks.size(); t++) {
            emit("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" +
                 pid + ",\"tid\":" + std::to_string(t + 1) +
                 ",\"args\":{\"name\":\"" + buf.tracks[t] + "\"}}");
        }
        for (const auto &e : buf.events) {
            const char *n0;
            const char *n1;
            argNames(e.kind, &n0, &n1);
            std::string obj = "{\"name\":\"";
            obj += eventName(e.kind);
            obj += "\",\"cat\":\"morc\",\"ph\":\"i\",\"s\":\"t\",\"ts\":";
            obj += std::to_string(e.cycles);
            obj += ",\"pid\":" + pid;
            obj += ",\"tid\":" + std::to_string(e.track + 1);
            obj += ",\"args\":{\"";
            obj += n0;
            obj += "\":" + std::to_string(e.a0) + ",\"";
            obj += n1;
            obj += "\":" + std::to_string(e.a1) + "}}";
            emit(obj);
        }
    }
    out += "\n],\"displayTimeUnit\":\"ns\"}\n";
    return out;
}

} // namespace telemetry
} // namespace morc
