/**
 * @file
 * Cycle-stamped structured event tracer.
 *
 * Components record fixed-shape events (a kind tag plus two integer
 * arguments) onto a flight-recorder ring buffer: when the buffer is
 * full the *oldest* events are overwritten and counted as dropped, so
 * a bounded trace always holds the most recent window. Every event is
 * stamped with the simulated cycle of the core being stepped — the
 * tracer never reads a host clock — and events land on named tracks
 * (one per component lane: "llc", "bank3", "noc", "sys"), which become
 * Perfetto threads in the Chrome trace-event export.
 *
 * Like the probe Registry, a Tracer belongs to one simulated system
 * and is not thread-safe; determinism follows from the event stream
 * being a pure function of the simulation.
 */

#ifndef MORC_TELEMETRY_TRACER_HH
#define MORC_TELEMETRY_TRACER_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "snapshot/snapshot.hh"
#include "util/types.hh"

namespace morc {
namespace telemetry {

/** Structured event kinds (names via eventName()). */
enum class EventKind : std::uint8_t
{
    LogFlush,        //< MORC whole-log eviction: a0=log, a1=valid lines
    LogReuse,        //< all-invalid log reused without a flush: a0=log
    FudgeNearTie,    //< near-tie commit to the least-used log:
                     //  a0=log, a1=margin bits (worst - best)
    LmtConflictEvict,//< LMT conflict eviction: a0=slot, a1=line number
    WritebackBurst,  //< one insert surfaced a0 >= threshold writebacks
    NocStall,        //< message queued a1 >= threshold cycles at link a0
};

/** Stable lower_snake_case name of @p kind (trace "name" field). */
const char *eventName(EventKind kind);

/** One recorded event. */
struct Event
{
    Cycles cycles = 0;
    EventKind kind = EventKind::LogFlush;
    std::uint16_t track = 0;
    std::uint64_t a0 = 0;
    std::uint64_t a1 = 0;
};

/** Snapshot of a Tracer: tracks + events oldest-first. */
struct TraceBuffer
{
    std::vector<std::string> tracks;
    std::vector<Event> events;

    /** Events overwritten by ring wrap-around (oldest lost first). */
    std::uint64_t dropped = 0;

    bool empty() const { return events.empty() && dropped == 0; }

    /** Events of @p kind currently in the buffer. */
    std::uint64_t countKind(EventKind kind) const;
};

/** Ring-buffered event recorder. */
class Tracer
{
  public:
    static constexpr std::size_t kDefaultCapacity = 1 << 16;

    explicit Tracer(std::size_t capacity = kDefaultCapacity);

    /** Register (or look up) the track named @p name. */
    std::uint16_t track(const std::string &name);

    /**
     * Set the current simulated cycle. The driver stamps time before
     * handing control to components (which know no clock); events
     * recorded until the next call carry this cycle.
     */
    void setNow(Cycles now) { now_ = now; }
    Cycles now() const { return now_; }

    void
    record(EventKind kind, std::uint16_t track, std::uint64_t a0 = 0,
           std::uint64_t a1 = 0)
    {
        Event e;
        e.cycles = now_;
        e.kind = kind;
        e.track = track;
        e.a0 = a0;
        e.a1 = a1;
        push(e);
    }

    std::uint64_t recorded() const { return recorded_; }
    std::uint64_t dropped() const { return dropped_; }
    std::size_t capacity() const { return capacity_; }

    /** Drop buffered events and the drop count; tracks and the current
     *  cycle stamp are kept (end-of-warm-up rebase). */
    void clear();

    /** Copy out tracks + events, oldest first. */
    TraceBuffer snapshot() const;

    /** Append ring contents, counters, tracks, and the cycle stamp. */
    void saveState(snap::Serializer &s) const;

    /** Restore; the live tracer must have the same capacity and the
     *  same registered tracks (components re-register on construction). */
    void restoreState(snap::Deserializer &d);

  private:
    void push(const Event &e);

    std::size_t capacity_;
    std::vector<Event> ring_;
    std::size_t head_ = 0; // next write slot once the ring is full
    std::uint64_t recorded_ = 0;
    std::uint64_t dropped_ = 0;
    Cycles now_ = 0;
    std::vector<std::string> tracks_;
};

/**
 * Chrome trace-event JSON (the "JSON Array Format" wrapped in
 * {"traceEvents": [...]}) for one or more runs, loadable in Perfetto
 * and chrome://tracing.
 *
 * Each (run name, buffer) pair becomes one process (pid = its position
 * + 1, named after the run via process_name metadata); each track
 * becomes a thread. Events are instants ("ph": "i", thread scope) with
 * ts = the simulated cycle (the exported unit is 1 us per cycle, which
 * viewers only use for display scaling). Output is deterministic:
 * iteration order is run order, then ring order.
 */
std::string chromeTraceJson(
    const std::vector<std::pair<std::string, TraceBuffer>> &runs);

} // namespace telemetry
} // namespace morc

#endif // MORC_TELEMETRY_TRACER_HH
