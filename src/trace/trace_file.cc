#include "trace/trace_file.hh"

#include <cstring>

#include "snapshot/snapshot.hh"

namespace morc {
namespace trace {

namespace {

constexpr char kMagicV1[8] = {'M', 'O', 'R', 'C', 'T', 'R', 'C', '1'};
constexpr char kMagicV2[8] = {'M', 'O', 'R', 'C', 'T', 'R', 'C', '2'};
constexpr std::uint32_t kVersion = 2;
constexpr std::uint64_t kRecordBytes = 16;

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (unsigned i = 0; i < 4; i++)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; i++)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t
getU32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (unsigned i = 0; i < 4; i++)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t
getU64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (unsigned i = 0; i < 8; i++)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

/** Decode @p count records at @p p into @p refs (layout is shared by
 *  both format versions). */
void
decodeRecords(const std::uint8_t *p, std::uint64_t count,
              std::vector<MemRef> &refs)
{
    refs.reserve(count);
    for (std::uint64_t i = 0; i < count; i++, p += kRecordBytes) {
        MemRef r;
        r.addr = getU64(p);
        r.gap = getU32(p + 8);
        r.write = p[12] != 0;
        refs.push_back(r);
    }
}

} // namespace

bool
TraceFile::save(const std::string &path) const
{
    std::vector<std::uint8_t> buf;
    buf.reserve(8 + 4 + 4 + 8 + refs_.size() * kRecordBytes + 4);
    for (char c : kMagicV2)
        buf.push_back(static_cast<std::uint8_t>(c));
    putU32(buf, kVersion);
    putU32(buf, snap::kEndianTag);
    putU64(buf, refs_.size());
    for (const MemRef &r : refs_) {
        putU64(buf, r.addr);
        putU32(buf, r.gap);
        buf.push_back(r.write ? 1 : 0);
        buf.push_back(0);
        buf.push_back(0);
        buf.push_back(0);
    }
    putU32(buf, snap::crc32(buf.data(), buf.size()));
    return snap::atomicWriteFile(path, buf.data(), buf.size());
}

TraceFile
TraceFile::load(const std::string &path)
{
    TraceFile t;
    std::vector<std::uint8_t> buf;
    if (!snap::readFile(path, buf) || buf.size() < 8)
        return t;
    const std::uint8_t *p = buf.data();

    if (std::memcmp(p, kMagicV2, 8) == 0) {
        constexpr std::uint64_t kHeader = 8 + 4 + 4 + 8;
        if (buf.size() < kHeader + 4)
            return t;
        if (getU32(p + 8) != kVersion ||
            getU32(p + 12) != snap::kEndianTag) {
            return t;
        }
        const std::uint64_t count = getU64(p + 16);
        const std::uint64_t body = kHeader + count * kRecordBytes;
        if (count > (buf.size() - kHeader - 4) / kRecordBytes ||
            buf.size() != body + 4) {
            return t;
        }
        if (snap::crc32(p, body) != getU32(p + body))
            return t;
        decodeRecords(p + kHeader, count, t.refs_);
        return t;
    }

    if (std::memcmp(p, kMagicV1, 8) == 0) {
        // Legacy layout: magic, u64 count, records; no checksum.
        if (buf.size() < 16)
            return t;
        const std::uint64_t count = getU64(p + 8);
        if (count > (buf.size() - 16) / kRecordBytes ||
            buf.size() != 16 + count * kRecordBytes) {
            return t;
        }
        decodeRecords(p + 16, count, t.refs_);
        return t;
    }
    return t;
}

} // namespace trace
} // namespace morc
