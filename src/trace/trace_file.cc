#include "trace/trace_file.hh"

#include <cstring>

namespace morc {
namespace trace {

namespace {

constexpr char kMagic[8] = {'M', 'O', 'R', 'C', 'T', 'R', 'C', '1'};

struct Record
{
    std::uint64_t addr;
    std::uint32_t gap;
    std::uint8_t write;
    std::uint8_t pad[3];
};

static_assert(sizeof(Record) == 16, "stable on-disk layout");

} // namespace

bool
TraceFile::save(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    bool ok = std::fwrite(kMagic, sizeof(kMagic), 1, f) == 1;
    const std::uint64_t count = refs_.size();
    ok = ok && std::fwrite(&count, sizeof(count), 1, f) == 1;
    for (const MemRef &r : refs_) {
        Record rec{};
        rec.addr = r.addr;
        rec.gap = r.gap;
        rec.write = r.write ? 1 : 0;
        ok = ok && std::fwrite(&rec, sizeof(rec), 1, f) == 1;
        if (!ok)
            break;
    }
    std::fclose(f);
    return ok;
}

TraceFile
TraceFile::load(const std::string &path)
{
    TraceFile t;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return t;
    char magic[8];
    std::uint64_t count = 0;
    if (std::fread(magic, sizeof(magic), 1, f) != 1 ||
        std::memcmp(magic, kMagic, sizeof(magic)) != 0 ||
        std::fread(&count, sizeof(count), 1, f) != 1) {
        std::fclose(f);
        return t;
    }
    t.refs_.reserve(count);
    for (std::uint64_t i = 0; i < count; i++) {
        Record rec;
        if (std::fread(&rec, sizeof(rec), 1, f) != 1) {
            t.refs_.clear();
            break;
        }
        t.refs_.push_back({rec.addr, rec.write != 0, rec.gap});
    }
    std::fclose(f);
    return t;
}

} // namespace trace
} // namespace morc
