/**
 * @file
 * Record/replay of reference streams.
 *
 * The synthetic generators stand in for SPEC2006 pinballs, but users
 * who have real traces (Pin, DynamoRIO, gem5 elastic traces, ...) can
 * convert them to this simple binary format and drive the same
 * simulator. The format also lets any ThreadTrace be captured once and
 * replayed bit-exactly, which the tests use.
 *
 * File layout (little-endian), version 2:
 *   magic "MORCTRC2" (8 bytes)
 *   u32 format version (2)
 *   u32 endianness tag 0x01020304 (rejects byte-swapped hosts)
 *   u64 record count
 *   records: { u64 addr; u32 gap; u8 write; u8 pad[3] }
 *   u32 CRC32 over everything above (IEEE, poly 0xEDB88320)
 *
 * Writers emit version 2 atomically (temp file + rename, so a crashed
 * writer can never leave a torn file under the final name). Readers
 * accept version 2 — verifying the CRC and the length — and, for
 * backward compatibility, the original "MORCTRC1" layout (no
 * version/endianness fields, no checksum).
 *
 * Data values are not stored: replay re-synthesizes them from a
 * DataProfile exactly like the generators do (values are a pure
 * function of address/version). A trace converted from a real machine
 * can instead carry its own value model choice.
 */

#ifndef MORC_TRACE_TRACE_FILE_HH
#define MORC_TRACE_TRACE_FILE_HH

#include <cstdio>
#include <string>
#include <vector>

#include "check/check.hh"
#include "trace/workload.hh"

namespace morc {
namespace trace {

/** In-memory reference stream with file I/O. */
class TraceFile
{
  public:
    /** Capture @p count references from @p source. */
    static TraceFile
    record(ThreadTrace &source, std::size_t count)
    {
        TraceFile t;
        t.refs_.reserve(count);
        for (std::size_t i = 0; i < count; i++)
            t.refs_.push_back(source.next());
        return t;
    }

    /** Serialize to @p path. @return false on I/O error. */
    bool save(const std::string &path) const;

    /** Load from @p path. @return empty trace on error. */
    static TraceFile load(const std::string &path);

    const std::vector<MemRef> &refs() const { return refs_; }
    std::vector<MemRef> &refs() { return refs_; }
    bool empty() const { return refs_.empty(); }

  private:
    std::vector<MemRef> refs_;
};

/**
 * A ThreadTrace-compatible replayer: yields the recorded references
 * (cycling at the end so arbitrarily long runs work) with values from
 * the given data profile.
 */
class ReplayTrace
{
  public:
    ReplayTrace(TraceFile file, const DataProfile &profile)
        : file_(std::move(file)), values_(profile)
    {
        // A failed TraceFile::load returns an empty trace; replaying it
        // would divide by zero in next(). Callers must check empty()
        // before constructing a replayer.
        MORC_CHECK(!file_.refs().empty(),
                   "cannot replay an empty trace (load failure?)");
    }

    MemRef
    next()
    {
        if (file_.refs().empty())
            return MemRef{0, false, 0};
        const MemRef r = file_.refs()[pos_];
        pos_ = (pos_ + 1) % file_.refs().size();
        return r;
    }

    const ValueModel &values() const { return values_; }
    std::size_t size() const { return file_.refs().size(); }

  private:
    TraceFile file_;
    std::size_t pos_ = 0;
    ValueModel values_;
};

} // namespace trace
} // namespace morc

#endif // MORC_TRACE_TRACE_FILE_HH
