#include "trace/value_model.hh"

#include <algorithm>

#include "util/sorted_view.hh"

namespace morc {
namespace trace {

namespace {

/** Domain-separation salts for the hash cascade. */
constexpr std::uint64_t kSaltLine = 0x11c7;
constexpr std::uint64_t kSaltChunk = 0xc256;
constexpr std::uint64_t kSaltWord = 0x3091d;
constexpr std::uint64_t kSaltPool = 0x9001;
constexpr std::uint64_t kSaltGlobal = 0x91084;
constexpr std::uint64_t kSaltFresh = 0xf4e5;

/** Salt folding chunk vocabularies into their owning region: repeated
 *  records are local to the data structure (region) that holds them, so
 *  a log capturing a phase's regions learns their chunks, while a
 *  global dictionary cannot hold every region's chunk vocabulary. */
constexpr std::uint64_t kChunkRegionSalt = 0xc09c09;

} // namespace

ValueModel::ValueModel(const DataProfile &profile)
    : profile_(profile),
      regionPool_(std::max<std::uint32_t>(profile.regionPoolSize, 1),
                  profile.poolTheta),
      globalPool_(std::max<std::uint32_t>(profile.globalPoolSize, 1), 0.9),
      chunk256Pool_(std::max<std::uint32_t>(profile.chunk256Pool, 1), 0.8),
      chunk128Pool_(std::max<std::uint32_t>(profile.chunk128Pool, 1), 0.8)
{}

std::uint32_t
ValueModel::poolWord(std::uint64_t region, std::uint64_t index) const
{
    const std::uint64_t h =
        mix64(profile_.seed ^ kSaltPool, mix64(region, index));
    // Pool values mimic pointers/indices: word-aligned, medium width.
    return static_cast<std::uint32_t>(h) & ~0x3u;
}

std::uint32_t
ValueModel::freshWord(std::uint64_t h, std::uint64_t region) const
{
    const double u = unit(h);
    double acc = profile_.zeroWordFrac;
    if (u < acc)
        return 0;
    acc += profile_.poolWordFrac;
    if (u < acc) {
        const std::uint64_t h2 = splitmix64(h ^ 0x9a7);
        if (unit(h2) < profile_.globalPoolFrac) {
            return poolWord(kSaltGlobal,
                            globalPool_.sampleHashed(splitmix64(h2)));
        }
        return poolWord(region,
                        regionPool_.sampleHashed(splitmix64(h2 + 1)));
    }
    acc += profile_.smallWordFrac;
    if (u < acc) {
        // Small integers: diverse (counters, sizes, coordinates) — too
        // many distinct values for a frequent-value dictionary, but
        // ideal for significance truncation (u8/u16).
        const std::uint64_t h2 = splitmix64(h);
        return (h2 & 7) < 2
                   ? static_cast<std::uint32_t>(h2 >> 3) & 0xff
                   : static_cast<std::uint32_t>(h2 >> 3) & 0xffff;
    }
    acc += profile_.fpWordFrac;
    if (u < acc) {
        // Double-precision style: a handful of common exponents over a
        // random mantissa. Two consecutive words form one double; this
        // word-level model keeps the high-entropy property that matters.
        const std::uint64_t h2 = splitmix64(h);
        const std::uint32_t exponents[4] = {0x3fe00000, 0x40080000,
                                            0xbfe00000, 0x3ff00000};
        return exponents[h2 & 3] | (static_cast<std::uint32_t>(h2 >> 2) &
                                    0x000fffffu);
    }
    // Residual "fresh" words are pointer-styled: the high half is
    // shared within a region (heap addresses, indices into nearby
    // structures), the low half is unique. C-Pack's partial-match
    // patterns (mmxx/mmmx) exploit exactly this; LBE does not, matching
    // the paper's characterization of both.
    const std::uint64_t h2 = splitmix64(h ^ kSaltFresh);
    if (h2 & 1) {
        const std::uint32_t high = static_cast<std::uint32_t>(
            mix64(profile_.seed ^ 0xb45e, region)) & 0x7fffu;
        return (high << 17) | (static_cast<std::uint32_t>(h2 >> 8) &
                               0x1ffffu);
    }
    return static_cast<std::uint32_t>(h2 >> 8);
}

void
ValueModel::chunkWords(std::uint64_t region, std::uint64_t chunk_id,
                       unsigned n, std::uint64_t salt,
                       std::uint32_t *out) const
{
    // Chunk contents are sequences over a compact, *region-scoped*
    // vocabulary (zeros, small integers, and the region's chunk pool):
    // repeated records reuse a narrow set of member values local to the
    // structure that holds them. A log that captures a phase's regions
    // learns their chunks (tree nodes form, m128/m256 land); a single
    // global dictionary cannot hold every region's vocabulary.
    const std::uint64_t base = mix64(
        profile_.seed ^ kSaltChunk ^ salt, mix64(region, chunk_id));
    for (unsigned i = 0; i < n; i++) {
        const std::uint64_t h = mix64(base, i);
        const double u = unit(h);
        if (u < profile_.zeroWordFrac) {
            out[i] = 0;
        } else if (u < profile_.zeroWordFrac + profile_.smallWordFrac) {
            out[i] = static_cast<std::uint32_t>(splitmix64(h) >> 1) &
                     0xffffu;
        } else {
            out[i] = poolWord(kChunkRegionSalt ^ salt ^ region,
                              regionPool_.sampleHashed(splitmix64(h)));
        }
    }
}

CacheLine
ValueModel::line(std::uint64_t line_number, std::uint32_t version) const
{
    CacheLine l;
    const std::uint64_t hline =
        mix64(profile_.seed ^ kSaltLine, mix64(line_number, version));

    if (unit(hline) < profile_.zeroLineFrac)
        return l; // all-zero line

    const std::uint64_t region =
        line_number / (profile_.regionBytes / kLineSize);

    std::uint32_t words[kWordsPerLine];
    for (unsigned chunk = 0; chunk < 2; chunk++) {
        const std::uint64_t hchunk = mix64(hline, chunk + 1);
        if (unit(hchunk) < profile_.chunk256Frac) {
            const std::uint64_t id =
                chunk256Pool_.sampleHashed(splitmix64(hchunk));
            chunkWords(region, id, 8, 0x256, words + chunk * 8);
            continue;
        }
        for (unsigned half = 0; half < 2; half++) {
            const std::uint64_t hhalf = mix64(hchunk, half + 3);
            std::uint32_t *out = words + chunk * 8 + half * 4;
            if (unit(splitmix64(hhalf ^ 0x2e20)) < profile_.zeroHalfFrac) {
                for (unsigned w = 0; w < 4; w++)
                    out[w] = 0;
                continue;
            }
            if (unit(hhalf) < profile_.chunk128Frac) {
                const std::uint64_t id =
                    chunk128Pool_.sampleHashed(splitmix64(hhalf));
                chunkWords(region, id, 4, 0x128, out);
                continue;
            }
            for (unsigned w = 0; w < 4; w++)
                out[w] = freshWord(mix64(hhalf, kSaltWord + w), region);
        }
    }

    // Stores only churn part of a line: splice un-churned words from
    // version 0 so dirty data stays related to its original contents.
    if (version != 0 && profile_.storeChurn < 1.0) {
        const CacheLine base = line(line_number, 0);
        for (unsigned i = 0; i < kWordsPerLine; i++) {
            const std::uint64_t hw = mix64(hline, 0xc4u + i);
            if (unit(hw) >= profile_.storeChurn)
                words[i] = base.word32(i);
        }
    }

    for (unsigned i = 0; i < kWordsPerLine; i++)
        l.setWord32(i, words[i]);
    return l;
}

// ------------------------------------------------------------------
// KvValueModel
// ------------------------------------------------------------------

namespace {

/** Domain-separation salts for the KV hash cascade (disjoint from the
 *  SPEC ValueModel salts above). */
constexpr std::uint64_t kSaltKvClass = 0x6b76c1a5;
constexpr std::uint64_t kSaltKvLine = 0x6b76117e;
constexpr std::uint64_t kSaltKvToken = 0x6b76706b;
constexpr std::uint64_t kSaltKvChurn = 0x6b76c402;

} // namespace

const char *
valueClassName(ValueClass c)
{
    switch (c) {
    case ValueClass::JsonLike:
        return "json";
    case ValueClass::CounterDense:
        return "counter";
    case ValueClass::Blob:
        return "blob";
    }
    return "?";
}

KvValueModel::KvValueModel(const KvProfile &profile)
    : profile_(profile),
      tokenPool_(std::max<std::uint32_t>(profile.tokenPoolSize, 1),
                 profile.tokenTheta)
{}

ValueClass
KvValueModel::classOf(std::uint64_t key) const
{
    const double u = unit(mix64(profile_.seed ^ kSaltKvClass, key));
    if (u < profile_.jsonFrac)
        return ValueClass::JsonLike;
    if (u < profile_.jsonFrac + profile_.counterFrac)
        return ValueClass::CounterDense;
    return ValueClass::Blob;
}

std::uint32_t
KvValueModel::valueLines(std::uint64_t key) const
{
    switch (classOf(key)) {
    case ValueClass::JsonLike:
        return std::max<std::uint32_t>(profile_.jsonLines, 1);
    case ValueClass::CounterDense:
        return std::max<std::uint32_t>(profile_.counterLines, 1);
    case ValueClass::Blob:
        return std::max<std::uint32_t>(profile_.blobLines, 1);
    }
    return 1;
}

std::uint32_t
KvValueModel::maxValueLines() const
{
    return std::max<std::uint32_t>(
        {profile_.jsonLines, profile_.counterLines, profile_.blobLines,
         1});
}

std::uint32_t
KvValueModel::version(std::uint64_t key) const
{
    const auto it = versions_.find(key);
    return it == versions_.end() ? 0 : it->second;
}

std::uint32_t
KvValueModel::bump(std::uint64_t key)
{
    return ++versions_[key];
}

std::uint32_t
KvValueModel::tokenWord(std::uint64_t index) const
{
    // Token values mimic interned field names / enum constants: a
    // compact corpus-wide vocabulary of word-aligned identifiers.
    const std::uint64_t h =
        mix64(profile_.seed ^ kSaltKvToken, index);
    return static_cast<std::uint32_t>(h) & ~0x3u;
}

std::uint32_t
KvValueModel::jsonWord(std::uint64_t h) const
{
    const double u = unit(h);
    if (u < 0.15)
        return 0; // padding / null fields
    if (u < 0.70)
        return tokenWord(tokenPool_.sampleHashed(splitmix64(h)));
    if (u < 0.90) {
        // Small scalar fields (counts, timestamps deltas, enum tags).
        const std::uint64_t h2 = splitmix64(h);
        return (h2 & 7) < 3
                   ? static_cast<std::uint32_t>(h2 >> 3) & 0xff
                   : static_cast<std::uint32_t>(h2 >> 3) & 0xffff;
    }
    // Unique payload words (ids, hashes).
    return static_cast<std::uint32_t>(splitmix64(h ^ 0x77) >> 13);
}

CacheLine
KvValueModel::line(std::uint64_t key, std::uint32_t line_idx,
                   std::uint32_t version) const
{
    CacheLine l;
    const ValueClass cls = classOf(key);
    const std::uint64_t hline = mix64(profile_.seed ^ kSaltKvLine,
                                      mix64(key, line_idx));
    switch (cls) {
    case ValueClass::JsonLike: {
        std::uint32_t words[kWordsPerLine];
        for (unsigned w = 0; w < kWordsPerLine; w++)
            words[w] = jsonWord(mix64(hline, w + 1));
        // SETs rewrite a churn-fraction of the words; the rest keep
        // their version-0 contents so dirty data stays related.
        if (version != 0) {
            const std::uint64_t hv =
                mix64(hline ^ kSaltKvChurn, version);
            for (unsigned w = 0; w < kWordsPerLine; w++) {
                if (unit(mix64(hv, w)) < profile_.setChurn)
                    words[w] = jsonWord(mix64(hv, 0x50 + w));
            }
        }
        for (unsigned w = 0; w < kWordsPerLine; w++)
            l.setWord32(w, words[w]);
        return l;
    }
    case ValueClass::CounterDense: {
        // Sparse counters: a few small integers over zeros; the values
        // track the version so every SET perturbs the line.
        for (unsigned w = 0; w < kWordsPerLine; w++) {
            const std::uint64_t h = mix64(hline, 0x90 + w);
            if (unit(h) < 0.25) {
                l.setWord32(w, (static_cast<std::uint32_t>(h >> 40) +
                                version) &
                                   0xffffu);
            }
        }
        return l;
    }
    case ValueClass::Blob: {
        // High-entropy payload; version folds into every word.
        for (unsigned w = 0; w < kWordsPerLine / 2; w++) {
            l.setWord64(w, splitmix64(mix64(hline ^ (0xb10bull << 32),
                                            mix64(version, w))));
        }
        return l;
    }
    }
    return l;
}

void
KvValueModel::save(snap::Serializer &s) const
{
    // Redundancy knobs first: the version map is meaningless against a
    // differently shaped corpus, so the knobs travel with the state.
    s.u64(profile_.seed);
    s.f64(profile_.jsonFrac);
    s.f64(profile_.counterFrac);
    s.u32(profile_.jsonLines);
    s.u32(profile_.counterLines);
    s.u32(profile_.blobLines);
    s.u32(profile_.tokenPoolSize);
    s.f64(profile_.tokenTheta);
    s.f64(profile_.setChurn);
    s.u64(versions_.size());
    for (const auto *kv : util::sortedView(versions_)) {
        s.u64(kv->first);
        s.u32(kv->second);
    }
}

void
KvValueModel::restore(snap::Deserializer &d)
{
    KvProfile p;
    p.seed = d.u64();
    p.jsonFrac = d.f64();
    p.counterFrac = d.f64();
    p.jsonLines = d.u32();
    p.counterLines = d.u32();
    p.blobLines = d.u32();
    p.tokenPoolSize = d.u32();
    p.tokenTheta = d.f64();
    p.setChurn = d.f64();
    const std::uint64_t n = d.arrayLen(12);
    std::unordered_map<std::uint64_t, std::uint32_t> versions;
    versions.reserve(n);
    for (std::uint64_t i = 0; i < n; i++) {
        const std::uint64_t key = d.u64();
        versions[key] = d.u32();
    }
    if (!d.ok())
        return;
    profile_ = p;
    tokenPool_ = ZipfSampler(
        std::max<std::uint32_t>(profile_.tokenPoolSize, 1),
        profile_.tokenTheta);
    versions_ = std::move(versions);
}

} // namespace trace
} // namespace morc
