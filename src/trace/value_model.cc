#include "trace/value_model.hh"

namespace morc {
namespace trace {

namespace {

/** Domain-separation salts for the hash cascade. */
constexpr std::uint64_t kSaltLine = 0x11c7;
constexpr std::uint64_t kSaltChunk = 0xc256;
constexpr std::uint64_t kSaltWord = 0x3091d;
constexpr std::uint64_t kSaltPool = 0x9001;
constexpr std::uint64_t kSaltGlobal = 0x91084;
constexpr std::uint64_t kSaltFresh = 0xf4e5;

/** Salt folding chunk vocabularies into their owning region: repeated
 *  records are local to the data structure (region) that holds them, so
 *  a log capturing a phase's regions learns their chunks, while a
 *  global dictionary cannot hold every region's chunk vocabulary. */
constexpr std::uint64_t kChunkRegionSalt = 0xc09c09;

} // namespace

ValueModel::ValueModel(const DataProfile &profile)
    : profile_(profile),
      regionPool_(std::max<std::uint32_t>(profile.regionPoolSize, 1),
                  profile.poolTheta),
      globalPool_(std::max<std::uint32_t>(profile.globalPoolSize, 1), 0.9),
      chunk256Pool_(std::max<std::uint32_t>(profile.chunk256Pool, 1), 0.8),
      chunk128Pool_(std::max<std::uint32_t>(profile.chunk128Pool, 1), 0.8)
{}

std::uint32_t
ValueModel::poolWord(std::uint64_t region, std::uint64_t index) const
{
    const std::uint64_t h =
        mix64(profile_.seed ^ kSaltPool, mix64(region, index));
    // Pool values mimic pointers/indices: word-aligned, medium width.
    return static_cast<std::uint32_t>(h) & ~0x3u;
}

std::uint32_t
ValueModel::freshWord(std::uint64_t h, std::uint64_t region) const
{
    const double u = unit(h);
    double acc = profile_.zeroWordFrac;
    if (u < acc)
        return 0;
    acc += profile_.poolWordFrac;
    if (u < acc) {
        const std::uint64_t h2 = splitmix64(h ^ 0x9a7);
        if (unit(h2) < profile_.globalPoolFrac) {
            return poolWord(kSaltGlobal,
                            globalPool_.sampleHashed(splitmix64(h2)));
        }
        return poolWord(region,
                        regionPool_.sampleHashed(splitmix64(h2 + 1)));
    }
    acc += profile_.smallWordFrac;
    if (u < acc) {
        // Small integers: diverse (counters, sizes, coordinates) — too
        // many distinct values for a frequent-value dictionary, but
        // ideal for significance truncation (u8/u16).
        const std::uint64_t h2 = splitmix64(h);
        return (h2 & 7) < 2
                   ? static_cast<std::uint32_t>(h2 >> 3) & 0xff
                   : static_cast<std::uint32_t>(h2 >> 3) & 0xffff;
    }
    acc += profile_.fpWordFrac;
    if (u < acc) {
        // Double-precision style: a handful of common exponents over a
        // random mantissa. Two consecutive words form one double; this
        // word-level model keeps the high-entropy property that matters.
        const std::uint64_t h2 = splitmix64(h);
        const std::uint32_t exponents[4] = {0x3fe00000, 0x40080000,
                                            0xbfe00000, 0x3ff00000};
        return exponents[h2 & 3] | (static_cast<std::uint32_t>(h2 >> 2) &
                                    0x000fffffu);
    }
    // Residual "fresh" words are pointer-styled: the high half is
    // shared within a region (heap addresses, indices into nearby
    // structures), the low half is unique. C-Pack's partial-match
    // patterns (mmxx/mmmx) exploit exactly this; LBE does not, matching
    // the paper's characterization of both.
    const std::uint64_t h2 = splitmix64(h ^ kSaltFresh);
    if (h2 & 1) {
        const std::uint32_t high = static_cast<std::uint32_t>(
            mix64(profile_.seed ^ 0xb45e, region)) & 0x7fffu;
        return (high << 17) | (static_cast<std::uint32_t>(h2 >> 8) &
                               0x1ffffu);
    }
    return static_cast<std::uint32_t>(h2 >> 8);
}

void
ValueModel::chunkWords(std::uint64_t region, std::uint64_t chunk_id,
                       unsigned n, std::uint64_t salt,
                       std::uint32_t *out) const
{
    // Chunk contents are sequences over a compact, *region-scoped*
    // vocabulary (zeros, small integers, and the region's chunk pool):
    // repeated records reuse a narrow set of member values local to the
    // structure that holds them. A log that captures a phase's regions
    // learns their chunks (tree nodes form, m128/m256 land); a single
    // global dictionary cannot hold every region's vocabulary.
    const std::uint64_t base = mix64(
        profile_.seed ^ kSaltChunk ^ salt, mix64(region, chunk_id));
    for (unsigned i = 0; i < n; i++) {
        const std::uint64_t h = mix64(base, i);
        const double u = unit(h);
        if (u < profile_.zeroWordFrac) {
            out[i] = 0;
        } else if (u < profile_.zeroWordFrac + profile_.smallWordFrac) {
            out[i] = static_cast<std::uint32_t>(splitmix64(h) >> 1) &
                     0xffffu;
        } else {
            out[i] = poolWord(kChunkRegionSalt ^ salt ^ region,
                              regionPool_.sampleHashed(splitmix64(h)));
        }
    }
}

CacheLine
ValueModel::line(std::uint64_t line_number, std::uint32_t version) const
{
    CacheLine l;
    const std::uint64_t hline =
        mix64(profile_.seed ^ kSaltLine, mix64(line_number, version));

    if (unit(hline) < profile_.zeroLineFrac)
        return l; // all-zero line

    const std::uint64_t region =
        line_number / (profile_.regionBytes / kLineSize);

    std::uint32_t words[kWordsPerLine];
    for (unsigned chunk = 0; chunk < 2; chunk++) {
        const std::uint64_t hchunk = mix64(hline, chunk + 1);
        if (unit(hchunk) < profile_.chunk256Frac) {
            const std::uint64_t id =
                chunk256Pool_.sampleHashed(splitmix64(hchunk));
            chunkWords(region, id, 8, 0x256, words + chunk * 8);
            continue;
        }
        for (unsigned half = 0; half < 2; half++) {
            const std::uint64_t hhalf = mix64(hchunk, half + 3);
            std::uint32_t *out = words + chunk * 8 + half * 4;
            if (unit(splitmix64(hhalf ^ 0x2e20)) < profile_.zeroHalfFrac) {
                for (unsigned w = 0; w < 4; w++)
                    out[w] = 0;
                continue;
            }
            if (unit(hhalf) < profile_.chunk128Frac) {
                const std::uint64_t id =
                    chunk128Pool_.sampleHashed(splitmix64(hhalf));
                chunkWords(region, id, 4, 0x128, out);
                continue;
            }
            for (unsigned w = 0; w < 4; w++)
                out[w] = freshWord(mix64(hhalf, kSaltWord + w), region);
        }
    }

    // Stores only churn part of a line: splice un-churned words from
    // version 0 so dirty data stays related to its original contents.
    if (version != 0 && profile_.storeChurn < 1.0) {
        const CacheLine base = line(line_number, 0);
        for (unsigned i = 0; i < kWordsPerLine; i++) {
            const std::uint64_t hw = mix64(hline, 0xc4u + i);
            if (unit(hw) >= profile_.storeChurn)
                words[i] = base.word32(i);
        }
    }

    for (unsigned i = 0; i < kWordsPerLine; i++)
        l.setWord32(i, words[i]);
    return l;
}

} // namespace trace
} // namespace morc
