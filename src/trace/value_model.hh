/**
 * @file
 * Deterministic cache-line value synthesis.
 *
 * The paper's compression results are driven by the *value structure* of
 * SPEC CPU2006 memory images: dense zeros, small integers, duplicated
 * words across lines (pointer/index-heavy codes), duplicated 128/256-bit
 * chunks (struct/record-heavy and stencil FP codes), and high-entropy FP
 * mantissas. Since the original traces are not redistributable, each
 * benchmark here carries a DataProfile describing that structure, and
 * ValueModel synthesizes line contents as a pure function of
 * (profile seed, line address, version). Stores bump the version.
 *
 * Purity matters: a line's contents never change behind the cache's back,
 * replicated workloads (the paper's Sx mixes) share value pools across
 * cores, and every run is exactly reproducible.
 */

#ifndef MORC_TRACE_VALUE_MODEL_HH
#define MORC_TRACE_VALUE_MODEL_HH

#include <cstdint>

#include "util/rng.hh"
#include "util/types.hh"
#include "util/zipf.hh"

namespace morc {
namespace trace {

/** Value-structure parameters of one benchmark's data. */
struct DataProfile
{
    /** Seed of the value universe. Shared by replicas of the same
     *  benchmark so inter-core commonality emerges (Sx workloads). */
    std::uint64_t seed = 1;

    /** Probability a line is entirely zero. */
    double zeroLineFrac = 0.05;

    /** Probability an individual word is zero (within non-zero lines). */
    double zeroWordFrac = 0.2;

    /** Probability a 128-bit half-chunk is entirely zero. Real zeros
     *  cluster (padding, cleared structs, sparse rows); clustered zeros
     *  are where LBE's z128/z256 symbols pay off over per-word codes. */
    double zeroHalfFrac = 0.0;

    /** Probability a 256-bit chunk is drawn whole from the chunk pool
     *  (drives LBE m256 matches). */
    double chunk256Frac = 0.0;
    std::uint32_t chunk256Pool = 64;

    /** Probability a 128-bit half-chunk is drawn from the 128-bit pool. */
    double chunk128Frac = 0.0;
    std::uint32_t chunk128Pool = 128;

    /**
     * Probability a word is drawn from a value pool (inter-line
     * duplication). Pools are *region-scoped*: lines in the same
     * regionBytes window share a small Zipf-distributed slice of
     * values, modelling the address-correlated value locality of real
     * heaps/arrays. This is the property MORC exploits: lines filled
     * close in time come from few regions, so a log's dictionary stays
     * small and hot, while a single global dictionary (SC2) must cover
     * every region's slice at once.
     */
    double poolWordFrac = 0.3;

    /** Distinct values per region slice (kept near LBE's dictionary). */
    std::uint32_t regionPoolSize = 96;

    /** Region granularity for value locality. */
    std::uint32_t regionBytes = 16384;

    /** Zipf skew within a region slice. */
    double poolTheta = 1.1;

    /** Share of pool draws that come from the small program-global pool
     *  (common constants, vtable pointers, canonical values). The
     *  frozen 512 B LBE dictionary — and real cache contents — imply a
     *  compact working vocabulary; most duplication is program-wide. */
    double globalPoolFrac = 0.25;
    std::uint32_t globalPoolSize = 48;

    /** Probability a word is a small integer (exercises u8/u16). */
    double smallWordFrac = 0.1;

    /** Probability a word is FP-styled: common exponent byte, random
     *  mantissa (poor intra-line, mediocre inter-line value locality). */
    double fpWordFrac = 0.0;

    /** How much a store perturbs a line: fraction of words rewritten. */
    double storeChurn = 0.25;
};

/**
 * Synthesizes line data for one benchmark instance.
 *
 * All sampling is hash-driven (no generator state), so data is a pure
 * function of (seed, line number, version, position).
 */
class ValueModel
{
  public:
    explicit ValueModel(const DataProfile &profile);

    /** Contents of line @p line_number at mutation @p version. */
    CacheLine line(std::uint64_t line_number, std::uint32_t version) const;

    const DataProfile &profile() const { return profile_; }

  private:
    /** Map a hash to [0,1). */
    static double
    unit(std::uint64_t h)
    {
        return (h >> 11) * (1.0 / 9007199254740992.0);
    }

    /** A pool word's value: pure function of (region, index). */
    std::uint32_t poolWord(std::uint64_t region, std::uint64_t index) const;

    /** Fill @p n words of a pooled chunk of @p region at @p out. */
    void chunkWords(std::uint64_t region, std::uint64_t chunk_id,
                    unsigned n, std::uint64_t salt,
                    std::uint32_t *out) const;

    /** One freshly synthesized (non-chunk) word for @p region. */
    std::uint32_t freshWord(std::uint64_t h, std::uint64_t region) const;

    DataProfile profile_;
    ZipfSampler regionPool_;
    ZipfSampler globalPool_;
    ZipfSampler chunk256Pool_;
    ZipfSampler chunk128Pool_;
};

} // namespace trace
} // namespace morc

#endif // MORC_TRACE_VALUE_MODEL_HH
