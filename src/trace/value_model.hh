/**
 * @file
 * Deterministic cache-line value synthesis.
 *
 * The paper's compression results are driven by the *value structure* of
 * SPEC CPU2006 memory images: dense zeros, small integers, duplicated
 * words across lines (pointer/index-heavy codes), duplicated 128/256-bit
 * chunks (struct/record-heavy and stencil FP codes), and high-entropy FP
 * mantissas. Since the original traces are not redistributable, each
 * benchmark here carries a DataProfile describing that structure, and
 * ValueModel synthesizes line contents as a pure function of
 * (profile seed, line address, version). Stores bump the version.
 *
 * Purity matters: a line's contents never change behind the cache's back,
 * replicated workloads (the paper's Sx mixes) share value pools across
 * cores, and every run is exactly reproducible.
 */

#ifndef MORC_TRACE_VALUE_MODEL_HH
#define MORC_TRACE_VALUE_MODEL_HH

#include <cstdint>
#include <unordered_map>

#include "snapshot/snapshot.hh"
#include "util/rng.hh"
#include "util/types.hh"
#include "util/zipf.hh"

namespace morc {
namespace trace {

/** Value-structure parameters of one benchmark's data. */
struct DataProfile
{
    /** Seed of the value universe. Shared by replicas of the same
     *  benchmark so inter-core commonality emerges (Sx workloads). */
    std::uint64_t seed = 1;

    /** Probability a line is entirely zero. */
    double zeroLineFrac = 0.05;

    /** Probability an individual word is zero (within non-zero lines). */
    double zeroWordFrac = 0.2;

    /** Probability a 128-bit half-chunk is entirely zero. Real zeros
     *  cluster (padding, cleared structs, sparse rows); clustered zeros
     *  are where LBE's z128/z256 symbols pay off over per-word codes. */
    double zeroHalfFrac = 0.0;

    /** Probability a 256-bit chunk is drawn whole from the chunk pool
     *  (drives LBE m256 matches). */
    double chunk256Frac = 0.0;
    std::uint32_t chunk256Pool = 64;

    /** Probability a 128-bit half-chunk is drawn from the 128-bit pool. */
    double chunk128Frac = 0.0;
    std::uint32_t chunk128Pool = 128;

    /**
     * Probability a word is drawn from a value pool (inter-line
     * duplication). Pools are *region-scoped*: lines in the same
     * regionBytes window share a small Zipf-distributed slice of
     * values, modelling the address-correlated value locality of real
     * heaps/arrays. This is the property MORC exploits: lines filled
     * close in time come from few regions, so a log's dictionary stays
     * small and hot, while a single global dictionary (SC2) must cover
     * every region's slice at once.
     */
    double poolWordFrac = 0.3;

    /** Distinct values per region slice (kept near LBE's dictionary). */
    std::uint32_t regionPoolSize = 96;

    /** Region granularity for value locality. */
    std::uint32_t regionBytes = 16384;

    /** Zipf skew within a region slice. */
    double poolTheta = 1.1;

    /** Share of pool draws that come from the small program-global pool
     *  (common constants, vtable pointers, canonical values). The
     *  frozen 512 B LBE dictionary — and real cache contents — imply a
     *  compact working vocabulary; most duplication is program-wide. */
    double globalPoolFrac = 0.25;
    std::uint32_t globalPoolSize = 48;

    /** Probability a word is a small integer (exercises u8/u16). */
    double smallWordFrac = 0.1;

    /** Probability a word is FP-styled: common exponent byte, random
     *  mantissa (poor intra-line, mediocre inter-line value locality). */
    double fpWordFrac = 0.0;

    /** How much a store perturbs a line: fraction of words rewritten. */
    double storeChurn = 0.25;
};

/**
 * Synthesizes line data for one benchmark instance.
 *
 * All sampling is hash-driven (no generator state), so data is a pure
 * function of (seed, line number, version, position).
 */
class ValueModel
{
  public:
    explicit ValueModel(const DataProfile &profile);

    /** Contents of line @p line_number at mutation @p version. */
    CacheLine line(std::uint64_t line_number, std::uint32_t version) const;

    const DataProfile &profile() const { return profile_; }

  private:
    /** Map a hash to [0,1). */
    static double
    unit(std::uint64_t h)
    {
        return (h >> 11) * (1.0 / 9007199254740992.0);
    }

    /** A pool word's value: pure function of (region, index). */
    std::uint32_t poolWord(std::uint64_t region, std::uint64_t index) const;

    /** Fill @p n words of a pooled chunk of @p region at @p out. */
    void chunkWords(std::uint64_t region, std::uint64_t chunk_id,
                    unsigned n, std::uint64_t salt,
                    std::uint32_t *out) const;

    /** One freshly synthesized (non-chunk) word for @p region. */
    std::uint32_t freshWord(std::uint64_t h, std::uint64_t region) const;

    DataProfile profile_;
    ZipfSampler regionPool_;
    ZipfSampler globalPool_;
    ZipfSampler chunk256Pool_;
    ZipfSampler chunk128Pool_;
};

// ------------------------------------------------------------------
// Key-value payload synthesis (the src/kv/ serving subsystem)
// ------------------------------------------------------------------

/**
 * Redundancy class of one key's value. Classes are assigned per key
 * (hash of the key) so a tenant's corpus is a stable mix, and each
 * class earns its compression ratio from a different structure:
 *
 *   JsonLike      small-document payloads: a compact token vocabulary
 *                 shared across the whole corpus (field names, enum
 *                 strings), small integers, and zero padding. High
 *                 inter-line duplication — dictionary schemes shine.
 *   CounterDense  counters/flags: almost all zeros plus a few small
 *                 integers derived from the value's version. Extremely
 *                 compressible; every SET perturbs it.
 *   Blob          media/ciphertext: high-entropy words. Essentially
 *                 incompressible; keeps ratios honest.
 */
enum class ValueClass : std::uint8_t
{
    JsonLike = 0,
    CounterDense = 1,
    Blob = 2,
};

const char *valueClassName(ValueClass c);

/** Knobs of one tenant's value corpus. */
struct KvProfile
{
    /** Seed of the value universe (per tenant). */
    std::uint64_t seed = 1;

    /** Class mix: P(JsonLike), P(CounterDense); Blob takes the rest. */
    double jsonFrac = 0.5;
    double counterFrac = 0.3;

    /** Value sizes in cache lines, per class. */
    std::uint32_t jsonLines = 4;
    std::uint32_t counterLines = 1;
    std::uint32_t blobLines = 8;

    /** JSON token vocabulary (shared across keys) and its skew. */
    std::uint32_t tokenPoolSize = 96;
    double tokenTheta = 1.05;

    /** Fraction of a JSON value's words rewritten by a SET. */
    double setChurn = 0.3;
};

/**
 * Synthesizes value payloads for one tenant's key space.
 *
 * Line contents are a pure function of (profile seed, key, line index,
 * version) — the same construction as ValueModel — but unlike the SPEC
 * model this one carries mutable state: the per-key version map bumped
 * by SETs. That state (and the redundancy knobs that shape the data it
 * addresses) is snapshot-covered so a mid-run KV simulation restores
 * to byte-identical replay.
 */
class KvValueModel
{
  public:
    explicit KvValueModel(const KvProfile &profile);

    /** Redundancy class of @p key (stable per key). */
    ValueClass classOf(std::uint64_t key) const;

    /** Value size of @p key in whole cache lines (>= 1). */
    std::uint32_t valueLines(std::uint64_t key) const;

    /** Largest valueLines() over all classes (address stride). */
    std::uint32_t maxValueLines() const;

    /** Current version of @p key (0 until the first SET). */
    std::uint32_t version(std::uint64_t key) const;

    /** Record a SET: bump and return @p key's version. */
    std::uint32_t bump(std::uint64_t key);

    /** Contents of line @p line_idx of @p key at @p version. */
    CacheLine line(std::uint64_t key, std::uint32_t line_idx,
                   std::uint32_t version) const;

    const KvProfile &profile() const { return profile_; }

    /** Keys ever SET (size of the version map). */
    std::uint64_t dirtyKeys() const { return versions_.size(); }

    /** Append redundancy knobs + per-key version state. */
    void save(snap::Serializer &s) const;

    /** Restore knobs and version state written by save(). */
    void restore(snap::Deserializer &d);

  private:
    /** Map a hash to [0,1). */
    static double
    unit(std::uint64_t h)
    {
        return (h >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Token @p index of the corpus-wide JSON vocabulary. */
    std::uint32_t tokenWord(std::uint64_t index) const;

    std::uint32_t jsonWord(std::uint64_t h) const;

    KvProfile profile_;

    /** Derived from profile_ (rebuilt by restore()).
     *  morc-analyze: allow(snapshot-completeness) derived from the
     *  saved profile knobs, reconstructed on restore */
    ZipfSampler tokenPool_;

    /** Per-key SET count; only mutated keys appear. */
    std::unordered_map<std::uint64_t, std::uint32_t> versions_;
};

} // namespace trace
} // namespace morc

#endif // MORC_TRACE_VALUE_MODEL_HH
