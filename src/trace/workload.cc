#include "trace/workload.hh"

#include <cstdio>
#include <cstdlib>

namespace morc {
namespace trace {

ThreadTrace::ThreadTrace(const BenchmarkSpec &spec, unsigned thread_id,
                         std::uint64_t seed_salt)
    : spec_(spec),
      threadId_(thread_id),
      base_(static_cast<Addr>(thread_id + 1) << 40),
      values_(std::make_shared<ValueModel>(spec.data)),
      hotPages_(std::max<std::uint64_t>(
                    spec.access.hotBytes / spec.access.hotPageBytes, 1),
                spec.access.hotTheta),
      wsLines_(std::max<std::uint64_t>(spec.access.wsBytes / kLineSize, 1)),
      rng_(mix64(spec.data.seed, mix64(thread_id, seed_salt) ^ 0x7ace))
{
    // De-synchronized phases: replicas start at different streaming
    // positions (the paper observes slight asynchronism between
    // replicated programs stresses the compression engines).
    seqPos_ = rng_.below(spec_.access.wsBytes);
}

MemRef
ThreadTrace::next()
{
    const AccessProfile &a = spec_.access;
    MemRef ref;
    ref.gap = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(rng_.geometric(a.memFrac), 100000));

    const double u = rng_.uniform();
    std::uint64_t offset;
    if (u < a.seqFrac) {
        // Streaming walker over the full working set. Streaming data is
        // mostly read (inputs swept once); stores concentrate on hot
        // structures, which the L1 then absorbs.
        ref.write = rng_.chance(a.storeSeqBias * a.storeFrac);
        seqPos_ += a.seqStride;
        if (seqPos_ >= a.wsBytes)
            seqPos_ = 0;
        offset = seqPos_;
    } else {
        // Hot (Zipf-popular page) and cold (uniform page) references
        // burst: several accesses walk a page before moving on. Each
        // class keeps its own live walk so interleaving does not break
        // the other's spatial chain.
        const bool want_hot = u < a.seqFrac + a.hotFrac;
        Burst &b = want_hot ? hotBurst_ : coldBurst_;
        if (b.left == 0) {
            if (want_hot) {
                b.page = hotPages_.sample(rng_);
            } else {
                const std::uint64_t pages = std::max<std::uint64_t>(
                    spec_.access.wsBytes / a.hotPageBytes, 1);
                b.page = rng_.below(pages);
            }
            b.left = 1 + static_cast<unsigned>(
                rng_.geometric(1.0 / a.burstMean));
            b.pos = rng_.below(a.hotPageBytes / kLineSize);
        }
        b.left--;
        ref.write = rng_.chance((want_hot ? a.storeHotBias
                                          : a.storeColdBias) *
                                a.storeFrac);
        // Walk the page's lines in ascending order (strided sweeps);
        // missing lines then arrive address-adjacent at the LLC.
        const std::uint64_t lines_per_page = a.hotPageBytes / kLineSize;
        const std::uint64_t line = b.pos % lines_per_page;
        b.pos += 1 + rng_.below(2);
        offset = b.page * a.hotPageBytes + line * kLineSize +
                 rng_.below(kLineSize / 8) * 8;
        if (offset >= spec_.access.wsBytes)
            offset %= spec_.access.wsBytes;
    }
    ref.addr = base_ + offset;
    return ref;
}

// ----------------------------------------------------------------------
// Registry
// ----------------------------------------------------------------------

namespace {

/** Shorthand builder keeping the table below readable. */
BenchmarkSpec
bench(const char *name, std::uint64_t seed,
      // access: memFrac, storeFrac, wsMB, hotKB, hotTheta, hotFrac,
      //         seqFrac (cold random = 1 - hot - seq)
      double mem, double st, double ws_mb, double hot_kb, double theta,
      double hot, double seq,
      // data: zeroLine, zeroWord, pool frac/regionPool/theta, small,
      //       c256 frac/pool, c128 frac/pool, fp
      double zl, double zw, double pf, std::uint32_t rps, double pt,
      double sm, double c256, std::uint32_t c256p, double c128,
      std::uint32_t c128p, double fp)
{
    BenchmarkSpec s;
    s.name = name;
    s.access.memFrac = mem;
    s.access.storeFrac = st;
    s.access.wsBytes = static_cast<std::uint64_t>(ws_mb * 1024) * 1024;
    s.access.hotBytes = static_cast<std::uint64_t>(hot_kb) * 1024;
    s.access.hotTheta = theta;
    s.access.hotFrac = hot;
    s.access.seqFrac = seq;
    s.data.seed = seed;
    s.data.zeroLineFrac = zl;
    s.data.zeroWordFrac = zw;
    s.data.poolWordFrac = pf;
    s.data.regionPoolSize = rps;
    s.data.poolTheta = pt;
    s.data.smallWordFrac = sm;
    s.data.chunk256Frac = c256;
    s.data.chunk256Pool = c256p;
    s.data.chunk128Frac = c128;
    s.data.chunk128Pool = c128p;
    s.data.fpWordFrac = fp;
    return s;
}

} // namespace

const std::vector<BenchmarkSpec> &
spec2006()
{
    // Parameters are calibrated so the relative compressibility,
    // bandwidth intensity, and working-set behaviour of each benchmark
    // track the paper's characterization (Figures 2, 6, 7): gcc and
    // zeusmp are zero-dominated; astar/omnetpp/soplex duplicate words
    // across lines heavily; cactusADM/gamess/leslie3d/povray duplicate
    // whole 256-bit chunks; h264ref is small-value dominated; and
    // mcf/lbm/milc/GemsFDTD are bandwidth-bound with huge footprints.
    static const std::vector<BenchmarkSpec> kTable = {
        //    name       seed  mem   st  wsMB hotKB theta  hot  seq |  zl   zw   pf  rps   pt   sm  c256 p  c128  p   fp
        bench("astar",     101, .35, .30,   8,  384, 1.15, .50, .42, .12, .30, .55, 16, 1.20, .08, .30,  6, .35, 12, .00),
        bench("bzip2",     102, .32, .30,   4,  160, 1.00, .80, .12, .02, .12, .45, 128, 0.90, .20, .08,  8, .10, 16, .00),
        bench("gcc",       103, .33, .32,   6,  384, 1.10, .36, .60, .45, .72, .18, 32, 1.10, .06, .10,  8, .12, 16, .00),
        bench("gobmk",     104, .30, .28,   2,  128, 1.00, .88, .06, .03, .15, .45, 64, 0.90, .18, .06,  8, .10, 16, .00),
        bench("h264ref",   105, .34, .30,   3,  192, 1.00, .82, .12, .03, .20, .18, 64, 0.80, .55, .06,  8, .10, 16, .00),
        bench("hmmer",     106, .36, .32,   2,  160, 1.05, .85, .10, .02, .14, .38, 48, 0.90, .40, .06,  8, .10, 16, .00),
        bench("mcf",       107, .38, .25,  48,  256, 0.85, .62, .18, .05, .28, .55, 24, 1.10, .08, .10,  6, .40,  8, .00),
        bench("omnetpp",   108, .36, .30,   8,  448, 1.12, .52, .40, .10, .28, .55, 16, 1.20, .08, .32,  6, .35, 12, .00),
        bench("perlbench", 109, .34, .32,   4,  384, 1.08, .64, .26, .05, .20, .55, 24, 1.10, .12, .12,  6, .25, 12, .00),
        bench("sjeng",     110, .30, .28,   2,  160, 1.00, .86, .08, .02, .10, .35, 256, 0.80, .15, .02,  8, .04, 16, .00),
        bench("xalancbmk", 111, .36, .30,   6,  384, 1.10, .55, .36, .14, .30, .50, 24, 1.10, .08, .18,  6, .25, 12, .00),
        bench("bwaves",    112, .40, .28,  32,   96, 0.90, .30, .62, .03, .18, .15, 96, 0.80, .06, .20,  8, .20, 16, .45),
        bench("cactusADM", 113, .38, .30,  32,   96, 0.90, .25, .68, .03, .22, .18, 16, 0.80, .06, .45,  6, .18, 12, .40),
        bench("calculix",  114, .32, .28,   4,  160, 1.00, .80, .14, .02, .18, .25, 48, 0.90, .10, .18,  8, .18, 16, .38),
        bench("dealII",    115, .32, .30,   1,   96, 1.05, .85, .10, .04, .20, .35, 32, 1.00, .12, .15,  8, .15, 16, .26),
        bench("gamess",    116, .15, .30,   1,   96, 1.00, .85, .10, .02, .18, .28, 12, 0.90, .10, .45,  6, .15, 12, .35),
        bench("GemsFDTD",  117, .40, .30,  48,   96, 0.90, .22, .70, .05, .22, .22, 48, 0.90, .08, .25,  8, .18, 16, .40),
        bench("gromacs",   118, .30, .28,   3,  160, 1.00, .84, .10, .02, .14, .22, 96, 0.80, .12, .12,  8, .12, 16, .42),
        bench("lbm",       119, .42, .35,  64,   64, 0.90, .10, .82, .02, .18, .18, 64, 0.80, .08, .15,  8, .15, 16, .46),
        bench("leslie3d",  120, .38, .30,  24,   96, 0.90, .28, .62, .03, .20, .20, 16, 0.80, .06, .38,  6, .15, 12, .44),
        bench("milc",      121, .40, .30,  48,   96, 0.90, .25, .60, .02, .15, .18, 64, 0.90, .08, .20,  8, .15, 16, .44),
        bench("namd",      122, .20, .28,   2,  128, 1.00, .85, .10, .02, .12, .15, 128, 0.80, .08, .12,  8, .12, 16, .50),
        bench("povray",    123, .12, .30, 1.5,  128, 1.05, .82, .10, .02, .15, .45, 16, 1.10, .12, .42,  6, .15, 12, .20),
        bench("soplex",    124, .37, .28,   8,  384, 1.12, .42, .50, .15, .38, .45, 16, 1.20, .06, .28,  6, .35, 12, .05),
        bench("sphinx3",   125, .35, .28,   8,  256, 1.00, .60, .32, .02, .18, .35, 48, 1.00, .14, .15,  8, .18, 16, .28),
        bench("tonto",     126, .28, .30,   3,  192, 1.00, .82, .12, .02, .15, .30, 32, 0.90, .12, .22,  8, .18, 16, .35),
        bench("wrf",       127, .34, .30,  16,  192, 0.95, .45, .45, .05, .25, .25, 32, 0.90, .10, .20,  8, .22, 16, .33),
        bench("zeusmp",    128, .33, .30,   2,  128, 1.00, .40, .55, .48, .75, .12, 48, 0.90, .06, .10,  8, .12, 16, .05),
    };
    static const std::vector<BenchmarkSpec> kAdjusted = [] {
        std::vector<BenchmarkSpec> t = kTable;
        // Sweep-writing programs: stores follow the streaming pass
        // (gcc's IR passes, stencil/array kernels), so write-back
        // streams stay address-chained. Pointer-chasing codes keep the
        // default hot-structure store bias.
        const char *sweep_writers[] = {"gcc",      "zeusmp", "soplex",
                                       "lbm",      "GemsFDTD", "bwaves",
                                       "cactusADM", "leslie3d", "milc",
                                       "wrf",      "sphinx3", "astar",
                                       "omnetpp",  "xalancbmk"};
        for (auto &b : t) {
            for (const char *n : sweep_writers) {
                if (b.name == n) {
                    b.access.storeSeqBias = 1.6;
                    b.access.storeHotBias = 0.15;
                    b.access.storeColdBias = 0.2;
                    break;
                }
            }
        }
        // Zeros cluster: move most of each profile's zero mass into
        // all-zero 128-bit halves (padding/cleared regions), keeping a
        // scattered per-word remainder.
        for (auto &b : t) {
            const double zw = b.data.zeroWordFrac;
            b.data.zeroHalfFrac = 0.6 * zw;
            // Keep total zero mass: h + (1-h) * w = zw.
            b.data.zeroWordFrac =
                (zw - b.data.zeroHalfFrac) / (1.0 - b.data.zeroHalfFrac);
        }
        // The high-compression club leans on streaming sweeps.
        const auto retune = [&t](const char *n, double hot_kb, double hot,
                                 double seq) {
            for (auto &b : t) {
                if (b.name == n) {
                    b.access.hotBytes =
                        static_cast<std::uint64_t>(hot_kb * 1024);
                    b.access.hotFrac = hot;
                    b.access.seqFrac = seq;
                }
            }
        };
        retune("gcc", 384, .36, .60);
        retune("zeusmp", 128, .40, .55);
        retune("soplex", 384, .42, .50);
        retune("astar", 384, .50, .42);
        retune("omnetpp", 448, .52, .40);
        retune("xalancbmk", 384, .55, .36);
        return t;
    }();
    return kAdjusted;
}

const BenchmarkSpec &
findBenchmark(const std::string &name)
{
    for (const auto &b : spec2006()) {
        if (b.name == name)
            return b;
    }
    std::fprintf(stderr, "unknown benchmark '%s'\n", name.c_str());
    std::abort();
}

BenchmarkSpec
makeVariant(const BenchmarkSpec &base, unsigned index)
{
    BenchmarkSpec v = base;
    v.name = base.name + "_" + std::to_string(index);
    // Different reference inputs shift footprint and intensity but keep
    // the benchmark's character. Perturbations are deterministic.
    const std::uint64_t h = mix64(base.data.seed, index);
    const auto jitter = [&](double x, double amp, unsigned salt) {
        const double u =
            (splitmix64(h + salt) >> 11) * (1.0 / 9007199254740992.0);
        return x * (1.0 + amp * (2.0 * u - 1.0));
    };
    v.access.wsBytes = static_cast<std::uint64_t>(
        jitter(static_cast<double>(base.access.wsBytes), 0.35, 1));
    v.access.hotBytes = static_cast<std::uint64_t>(
        jitter(static_cast<double>(base.access.hotBytes), 0.30, 2));
    v.access.memFrac = std::min(0.6, jitter(base.access.memFrac, 0.15, 3));
    v.access.hotFrac = std::min(0.9, jitter(base.access.hotFrac, 0.10, 4));
    v.data.zeroWordFrac = std::min(0.9, jitter(base.data.zeroWordFrac,
                                               0.25, 5));
    v.data.poolWordFrac = std::min(0.9, jitter(base.data.poolWordFrac,
                                               0.20, 6));
    // Variants keep the same value-universe seed: different inputs to
    // the same program still share data patterns.
    return v;
}

BenchmarkSpec
resolveWorkload(const std::string &name)
{
    const auto us = name.rfind('_');
    if (us != std::string::npos) {
        const std::string base = name.substr(0, us);
        const unsigned index =
            static_cast<unsigned>(std::atoi(name.c_str() + us + 1));
        for (const auto &b : spec2006()) {
            if (b.name == base)
                return makeVariant(b, index);
        }
    }
    return findBenchmark(name);
}

std::vector<BenchmarkSpec>
figure6Workloads()
{
    static const char *kNames[] = {
        "astar", "astar_1",
        "bzip2", "bzip2_1", "bzip2_2", "bzip2_3", "bzip2_4", "bzip2_5",
        "gcc", "gcc_1", "gcc_2", "gcc_3", "gcc_4", "gcc_5", "gcc_6",
        "gcc_7", "gcc_8",
        "gobmk", "gobmk_1", "gobmk_2", "gobmk_3", "gobmk_4",
        "h264ref", "h264ref_1", "h264ref_2",
        "hmmer", "hmmer_1",
        "mcf",
        "omnetpp",
        "perlbench", "perlbench_1", "perlbench_2",
        "sjeng",
        "xalancbmk",
        "bwaves", "cactusADM", "calculix", "dealII",
        "gamess", "gamess_1", "gamess_2",
        "GemsFDTD", "gromacs", "lbm", "leslie3d", "milc", "namd",
        "povray",
        "soplex", "soplex_1",
        "sphinx3", "tonto", "wrf", "zeusmp",
    };
    std::vector<BenchmarkSpec> out;
    for (const char *n : kNames)
        out.push_back(resolveWorkload(n));
    return out;
}

const std::vector<MultiProgramSpec> &
table6Workloads()
{
    static const std::vector<MultiProgramSpec> kTable = {
        {"M0",
         {"h264ref_2", "soplex", "hmmer_1", "bzip2", "gcc_8", "sjeng",
          "perlbench_2", "hmmer", "sphinx3", "zeusmp", "gobmk_2",
          "perlbench_1", "h264ref", "dealII", "gcc_5", "sjeng"}},
        {"M1",
         {"gobmk_2", "gcc_2", "astar_1", "h264ref_2", "gobmk_1",
          "h264ref_1", "bzip2_1", "gcc_1", "gobmk_4", "bzip2_5",
          "h264ref_2", "gcc_4", "xalancbmk", "astar_1", "bzip2_5",
          "bzip2_5"}},
        {"M2",
         {"bzip2_2", "perlbench", "astar_1", "perlbench", "bzip2_5",
          "sjeng", "omnetpp", "gcc_1", "bzip2", "h264ref", "gcc",
          "gobmk_4", "perlbench_1", "omnetpp", "omnetpp", "gcc_7"}},
        {"M3",
         {"hmmer_1", "sjeng", "bzip2_2", "mcf", "gcc_5", "bzip2_5",
          "hmmer", "gcc_1", "perlbench_1", "gcc_4", "hmmer_1", "astar_1",
          "astar", "astar", "gcc_5", "h264ref"}},
        {"S0", std::vector<std::string>(16, "bwaves")},
        {"S1", std::vector<std::string>(16, "bzip2")},
        {"S2", std::vector<std::string>(16, "gcc")},
        {"S3", std::vector<std::string>(16, "h264ref")},
        {"S4", std::vector<std::string>(16, "hmmer")},
        {"S5", std::vector<std::string>(16, "perlbench")},
        {"S6", std::vector<std::string>(16, "sjeng")},
        {"S7", std::vector<std::string>(16, "soplex")},
    };
    return kTable;
}

} // namespace trace
} // namespace morc
