/**
 * @file
 * Workload specification and per-thread trace generation.
 *
 * Each benchmark is an (access profile, data profile) pair. A ThreadTrace
 * turns a benchmark into a deterministic stream of memory references with
 * instruction gaps, mimicking the pinball-region traces the paper feeds
 * PriME.
 */

#ifndef MORC_TRACE_WORKLOAD_HH
#define MORC_TRACE_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "snapshot/snapshot.hh"
#include "trace/value_model.hh"
#include "util/rng.hh"
#include "util/types.hh"
#include "util/zipf.hh"

namespace morc {
namespace trace {

/** Memory-access behaviour of one benchmark. */
struct AccessProfile
{
    /** Memory references per instruction. */
    double memFrac = 0.30;

    /** Stores as a fraction of memory references. */
    double storeFrac = 0.30;

    /** Total touched footprint (streaming + cold random). */
    std::uint64_t wsBytes = 8ull << 20;

    /** Hot reuse region (Zipf-popular lines). */
    std::uint64_t hotBytes = 256ull << 10;

    /** Skew of page popularity within the hot region. Reuse is
     *  modelled at page granularity: real fill streams arrive in
     *  page-clustered bursts, which both keeps tag deltas small (MORC's
     *  tag compression relies on it) and keeps a log's value regions
     *  coherent. */
    double hotTheta = 0.85;

    /** Page size of the hot-reuse clustering. */
    unsigned hotPageBytes = 4096;

    /** Fraction of references to the hot region. */
    double hotFrac = 0.55;

    /** Fraction of references that stream sequentially over the
     *  working set. */
    double seqFrac = 0.30;

    /** Bytes advanced per streaming reference. */
    unsigned seqStride = 8;

    /** Mean accesses spent within a page before moving on (spatial
     *  burstiness). Real reference streams touch several lines of a
     *  page in a burst; this is what makes consecutive LLC fills
     *  address-adjacent (small tag deltas) and value-coherent. */
    double burstMean = 18.0;

    /** Store-probability multipliers per reference class (relative to
     *  storeFrac). Pointer-chasing codes write their hot structures;
     *  sweep-writing codes (gcc's IR passes, stencil kernels) write the
     *  stream itself, which keeps their write-back streams
     *  address-chained. */
    double storeSeqBias = 0.5;
    double storeHotBias = 1.2;
    double storeColdBias = 0.3;
};

/** One named benchmark: how it accesses memory and what its data is. */
struct BenchmarkSpec
{
    std::string name;
    AccessProfile access;
    DataProfile data;
};

/** A decoded memory reference with its preceding instruction gap. */
struct MemRef
{
    Addr addr;
    bool write;
    /** Non-memory instructions executed before this reference. */
    std::uint32_t gap;
};

/**
 * Deterministic reference stream for one benchmark instance on one core.
 *
 * Address space: the thread id is folded into bits [40..47] so programs
 * never share physical lines, matching the paper's multi-programmed
 * (not multi-threaded) workloads.
 */
class ThreadTrace
{
  public:
    /**
     * @param spec      Benchmark to synthesize.
     * @param thread_id Core slot; isolates the address space.
     * @param seed_salt Extra seed salt (used to de-synchronize phases in
     *                  Sx replicated workloads).
     */
    ThreadTrace(const BenchmarkSpec &spec, unsigned thread_id,
                std::uint64_t seed_salt = 0);

    /** Produce the next memory reference. */
    MemRef next();

    /** Value model shared with the memory/functional layer. */
    const ValueModel &values() const { return *values_; }

    /** Base of this thread's address space. */
    Addr addrBase() const { return base_; }

    const BenchmarkSpec &spec() const { return spec_; }
    unsigned threadId() const { return threadId_; }

    /** Generator cursor: stream position, burst walks, RNG state.
     *  The spec, pools and value model are configuration — a restored
     *  trace must be built from the same BenchmarkSpec. */
    void
    save(snap::Serializer &s) const
    {
        s.u32(threadId_);
        s.u64(seqPos_);
        for (const Burst *b : {&hotBurst_, &coldBurst_}) {
            s.u64(b->page);
            s.u64(b->pos);
            s.u32(b->left);
        }
        for (unsigned i = 0; i < 4; i++)
            s.u64(rng_.stateWord(i));
    }

    /** Restore the cursor written by save(). */
    void
    restore(snap::Deserializer &d)
    {
        const std::uint32_t tid = d.u32();
        if (d.ok() && tid != threadId_)
            d.fail("trace thread id mismatch");
        const std::uint64_t seqPos = d.u64();
        Burst bursts[2];
        for (Burst &b : bursts) {
            b.page = d.u64();
            b.pos = d.u64();
            b.left = d.u32();
        }
        std::uint64_t words[4];
        for (std::uint64_t &w : words)
            w = d.u64();
        if (!d.ok())
            return;
        seqPos_ = seqPos;
        hotBurst_ = bursts[0];
        coldBurst_ = bursts[1];
        for (unsigned i = 0; i < 4; i++)
            rng_.setStateWord(i, words[i]);
    }

  private:
    BenchmarkSpec spec_; // morc-analyze: allow(snapshot-completeness) construction-time config; restore() re-binds
    unsigned threadId_;
    Addr base_; // morc-analyze: allow(snapshot-completeness) construction-time config; restore() re-binds
    std::shared_ptr<ValueModel> values_; // morc-analyze: allow(snapshot-completeness) construction-time config; restore() re-binds
    ZipfSampler hotPages_; // morc-analyze: allow(snapshot-completeness) deterministic from spec_
    std::uint64_t wsLines_; // morc-analyze: allow(snapshot-completeness) derived from spec_
    std::uint64_t seqPos_ = 0;
    /** Independent page-burst state per reference class; interleaved
     *  hot and cold streams each keep their own walk (two live
     *  pointers), as real programs do. */
    struct Burst
    {
        std::uint64_t page = 0;
        std::uint64_t pos = 0;
        unsigned left = 0;
    };
    Burst hotBurst_;
    Burst coldBurst_;
    Rng rng_;
};

// ----------------------------------------------------------------------
// Benchmark registry (Section 4 / Table 6 of the paper)
// ----------------------------------------------------------------------

/** The 28 base SPEC CPU2006 benchmarks the paper plots. */
const std::vector<BenchmarkSpec> &spec2006();

/** Find a base benchmark by name; aborts on unknown names. */
const BenchmarkSpec &findBenchmark(const std::string &name);

/**
 * Derive an additional-reference-input variant ("gcc_3") by
 * deterministically perturbing the base profile.
 */
BenchmarkSpec makeVariant(const BenchmarkSpec &base, unsigned index);

/** Resolve a (possibly variant) workload name like "bzip2_5". */
BenchmarkSpec resolveWorkload(const std::string &name);

/** The 54 single-program workloads of Figure 6, in plot order. */
std::vector<BenchmarkSpec> figure6Workloads();

/** A 16-program multi-program workload from Table 6. */
struct MultiProgramSpec
{
    std::string name;
    std::vector<std::string> programs; // 16 workload names
};

/** The M0-M3 and S0-S7 mixes of Table 6. */
const std::vector<MultiProgramSpec> &table6Workloads();

} // namespace trace
} // namespace morc

#endif // MORC_TRACE_WORKLOAD_HH
