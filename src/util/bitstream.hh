/**
 * @file
 * Bit-granular writer/reader used by the compression codecs.
 *
 * All codecs in this project (LBE, C-Pack, FPC, Huffman, the tag codec)
 * produce variable-length bit streams; these helpers keep the encoders
 * honest — compressed sizes are measured from actually emitted bits, and
 * decoders consume the same stream, which the round-trip tests verify.
 */

#ifndef MORC_UTIL_BITSTREAM_HH
#define MORC_UTIL_BITSTREAM_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "check/check.hh"

namespace morc {

/** Append-only bit stream writer. Bits are written LSB-first per word. */
class BitWriter
{
  public:
    /** Append the low @p nbits bits of @p value. */
    void
    put(std::uint64_t value, unsigned nbits)
    {
        // Hot path: checked only in MORC_AUDIT builds. Writing more
        // than a word's worth would shift by >= 64 below (UB).
        MORC_DCHECK(nbits <= 64, "put of %u bits exceeds one word",
                    nbits);
        if (nbits == 0)
            return;
        if (nbits < 64)
            value &= (1ull << nbits) - 1;
        unsigned written = 0;
        while (written < nbits) {
            const unsigned word = bitCount_ >> 6;
            const unsigned off = bitCount_ & 63;
            if (word >= words_.size())
                words_.push_back(0);
            const unsigned room = 64 - off;
            const unsigned take = std::min(room, nbits - written);
            words_[word] |= (value >> written) << off;
            written += take;
            bitCount_ += take;
        }
    }

    /** Total number of bits written so far. */
    std::uint64_t sizeBits() const { return bitCount_; }

    /** Size rounded up to whole bytes. */
    std::uint64_t sizeBytes() const { return (bitCount_ + 7) / 8; }

    /** Backing words, for handoff to a BitReader. */
    const std::vector<std::uint64_t> &words() const { return words_; }

    /** Discard all contents. */
    void
    clear()
    {
        words_.clear();
        bitCount_ = 0;
    }

    /**
     * Replace the stream with previously captured contents (snapshot
     * restore). Callers deserializing external data must validate
     * @p bit_count against the word count before calling.
     */
    void
    restore(std::vector<std::uint64_t> words, std::uint64_t bit_count)
    {
        MORC_CHECK(bit_count <= words.size() * 64 &&
                       bit_count + 63 >= words.size() * 64,
                   "restored bit count %llu does not fit %zu words",
                   static_cast<unsigned long long>(bit_count),
                   words.size());
        words_ = std::move(words);
        bitCount_ = bit_count;
    }

  private:
    std::vector<std::uint64_t> words_;
    std::uint64_t bitCount_ = 0;
};

/** Sequential reader over a BitWriter's stream. */
class BitReader
{
  public:
    explicit BitReader(const BitWriter &w)
        : words_(&w.words()), limit_(w.sizeBits())
    {}

    /**
     * Read @p nbits bits. Out-of-range reads are checked in MORC_AUDIT
     * builds (loud failure with the offending position); in release the
     * word-index clamp below keeps the access inside the backing vector
     * so a violated limit yields garbage bits, not out-of-bounds UB.
     */
    std::uint64_t
    get(unsigned nbits)
    {
        MORC_DCHECK(nbits <= 64, "get of %u bits exceeds one word",
                    nbits);
        MORC_DCHECK(pos_ + nbits <= limit_,
                    "read of %u bits at position %llu overruns the "
                    "%llu-bit stream",
                    nbits, static_cast<unsigned long long>(pos_),
                    static_cast<unsigned long long>(limit_));
        std::uint64_t value = 0;
        unsigned got = 0;
        while (got < nbits) {
            const unsigned word = pos_ >> 6;
            if (word >= words_->size())
                break; // past the stream: only checked builds diagnose
            const unsigned off = pos_ & 63;
            const unsigned take = std::min(64 - off, nbits - got);
            std::uint64_t chunk = (*words_)[word] >> off;
            if (take < 64)
                chunk &= (1ull << take) - 1;
            value |= chunk << got;
            got += take;
            pos_ += take;
        }
        return value;
    }

    /** Bits remaining before the write limit. */
    std::uint64_t remaining() const { return limit_ - pos_; }

    /** Current bit position. */
    std::uint64_t pos() const { return pos_; }

  private:
    const std::vector<std::uint64_t> *words_;
    std::uint64_t limit_;
    std::uint64_t pos_ = 0;
};

} // namespace morc

#endif // MORC_UTIL_BITSTREAM_HH
