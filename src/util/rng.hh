/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Workload generation must be exactly reproducible across runs and
 * platforms, so we avoid std::mt19937 seeding subtleties and implement
 * SplitMix64 (for hashing/seeding) and xoshiro256** (for streams).
 */

#ifndef MORC_UTIL_RNG_HH
#define MORC_UTIL_RNG_HH

#include <cstdint>

namespace morc {

/** One SplitMix64 step: maps any 64-bit value to a well-mixed one. */
constexpr std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Mix two 64-bit values into one hash. */
constexpr std::uint64_t
mix64(std::uint64_t a, std::uint64_t b)
{
    return splitmix64(a ^ splitmix64(b));
}

/**
 * xoshiro256** generator. Small, fast, and fully deterministic from its
 * 64-bit seed (expanded through SplitMix64 per the reference
 * implementation's recommendation).
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x5eedull) { reseed(seed); }

    /** Re-initialize the state from a 64-bit seed. */
    void
    reseed(std::uint64_t seed)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x = splitmix64(x + 0x9e3779b97f4a7c15ull);
            word = x;
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's multiply-shift rejection-free approximation is fine
        // here; tiny modulo bias is irrelevant for workload synthesis.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli draw with probability @p p. */
    bool chance(double p) { return uniform() < p; }

    /**
     * Geometric gap: number of failures before a success with
     * probability @p p. Used to batch non-memory instructions.
     */
    std::uint64_t
    geometric(double p)
    {
        if (p >= 1.0)
            return 0;
        if (p <= 0.0)
            return ~0ull;
        double u = uniform();
        if (u <= 0.0)
            u = 1e-18;
        // floor(ln(u) / ln(1-p))
        double g = __builtin_log(u) / __builtin_log1p(-p);
        return g < 0 ? 0 : static_cast<std::uint64_t>(g);
    }

    /** Raw state word @p i (0..3), for snapshot serialization. */
    std::uint64_t stateWord(unsigned i) const { return state_[i & 3]; }

    /** Overwrite state word @p i (0..3) when restoring a snapshot. */
    void setStateWord(unsigned i, std::uint64_t v) { state_[i & 3] = v; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace morc

#endif // MORC_UTIL_RNG_HH
