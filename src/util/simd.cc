#include "util/simd.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) && !defined(MORC_FORCE_SCALAR)
#define MORC_SIMD_X86 1
#include <immintrin.h>
#endif

namespace morc {
namespace simd {

namespace {

// ---------------------------------------------------------------------
// Scalar reference kernels. These define the semantics; the vector
// versions below must (and do) return identical results.
// ---------------------------------------------------------------------

int
findU32Scalar(const std::uint32_t *a, std::size_t n, std::uint32_t key)
{
    for (std::size_t i = 0; i < n; i++) {
        if (a[i] == key)
            return static_cast<int>(i);
    }
    return -1;
}

int
findU64Scalar(const std::uint64_t *a, std::size_t n, std::uint64_t key)
{
    for (std::size_t i = 0; i < n; i++) {
        if (a[i] == key)
            return static_cast<int>(i);
    }
    return -1;
}

unsigned
zeroMask8Scalar(const std::uint32_t *w)
{
    unsigned m = 0;
    for (unsigned i = 0; i < 8; i++)
        m |= (w[i] == 0 ? 1u : 0u) << i;
    return m;
}

void
hashFind8Scalar(const std::uint32_t *slots, unsigned groupsLog2,
                const std::uint32_t *w, unsigned skip, int *out)
{
    const unsigned gmask = (1u << groupsLog2) - 1;
    for (unsigned i = 0; i < 8; i++) {
        if ((skip >> i) & 1)
            continue;
        const std::uint32_t v = w[i];
        unsigned g = hashGroup(v, groupsLog2);
        int res = -1;
        for (;;) {
            const std::uint32_t *grp = slots + std::size_t{g} * 8;
            // A match anywhere in the group wins over an empty slot:
            // insertion fills the first empty slot, so a present value
            // always precedes the empties of its probe sequence.
            bool empty = false;
            unsigned k = 0;
            for (; k < 8; k++) {
                if (grp[k] == v) {
                    res = static_cast<int>(g * 8 + k);
                    break;
                }
                empty = empty || grp[k] == 0;
            }
            if (k < 8 || empty)
                break;
            g = (g + 1) & gmask;
        }
        out[i] = res;
    }
}

#ifdef MORC_SIMD_X86

// ---------------------------------------------------------------------
// SSE2 (x86-64 baseline, always compiled on x86-64).
// ---------------------------------------------------------------------

int
findU32Sse2(const std::uint32_t *a, std::size_t n, std::uint32_t key)
{
    const __m128i vkey = _mm_set1_epi32(static_cast<int>(key));
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m128i v =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(a + i));
        const int m = _mm_movemask_ps(
            _mm_castsi128_ps(_mm_cmpeq_epi32(v, vkey)));
        if (m)
            return static_cast<int>(i) + __builtin_ctz(m);
    }
    for (; i < n; i++) {
        if (a[i] == key)
            return static_cast<int>(i);
    }
    return -1;
}

int
findU64Sse2(const std::uint64_t *a, std::size_t n, std::uint64_t key)
{
    // SSE2 has no 64-bit compare; compare 32-bit halves and require a
    // fully-set 8-byte group per lane.
    const __m128i vkey = _mm_set1_epi64x(static_cast<long long>(key));
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const __m128i v =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(a + i));
        const int m = _mm_movemask_epi8(_mm_cmpeq_epi32(v, vkey));
        if ((m & 0x00ff) == 0x00ff)
            return static_cast<int>(i);
        if ((m & 0xff00) == 0xff00)
            return static_cast<int>(i) + 1;
    }
    for (; i < n; i++) {
        if (a[i] == key)
            return static_cast<int>(i);
    }
    return -1;
}

void
hashFind8Sse2(const std::uint32_t *slots, unsigned groupsLog2,
              const std::uint32_t *w, unsigned skip, int *out)
{
    const unsigned gmask = (1u << groupsLog2) - 1;
    const __m128i zero = _mm_setzero_si128();
    for (unsigned i = 0; i < 8; i++) {
        if ((skip >> i) & 1)
            continue;
        const std::uint32_t v = w[i];
        const __m128i vk = _mm_set1_epi32(static_cast<int>(v));
        unsigned g = hashGroup(v, groupsLog2);
        for (;;) {
            const std::uint32_t *grp = slots + std::size_t{g} * 8;
            const __m128i lo = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(grp));
            const __m128i hi = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(grp + 4));
            const unsigned match =
                static_cast<unsigned>(_mm_movemask_ps(
                    _mm_castsi128_ps(_mm_cmpeq_epi32(lo, vk)))) |
                (static_cast<unsigned>(_mm_movemask_ps(
                     _mm_castsi128_ps(_mm_cmpeq_epi32(hi, vk))))
                 << 4);
            if (match) { // values unique: exactly one slot can match
                out[i] = static_cast<int>(
                    g * 8 + static_cast<unsigned>(__builtin_ctz(match)));
                break;
            }
            const unsigned empty =
                static_cast<unsigned>(_mm_movemask_ps(
                    _mm_castsi128_ps(_mm_cmpeq_epi32(lo, zero)))) |
                (static_cast<unsigned>(_mm_movemask_ps(
                     _mm_castsi128_ps(_mm_cmpeq_epi32(hi, zero))))
                 << 4);
            if (empty) {
                out[i] = -1;
                break;
            }
            g = (g + 1) & gmask;
        }
    }
}

unsigned
zeroMask8Sse2(const std::uint32_t *w)
{
    const __m128i zero = _mm_setzero_si128();
    const __m128i lo =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(w));
    const __m128i hi =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(w + 4));
    const unsigned mlo = static_cast<unsigned>(
        _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(lo, zero))));
    const unsigned mhi = static_cast<unsigned>(
        _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(hi, zero))));
    return mlo | (mhi << 4);
}

// ---------------------------------------------------------------------
// AVX2, compiled with a function-level target attribute so the rest of
// the binary needs no -mavx2 and runs on any x86-64.
// ---------------------------------------------------------------------

__attribute__((target("avx2"))) int
findU32Avx2(const std::uint32_t *a, std::size_t n, std::uint32_t key)
{
    const __m256i vkey = _mm256_set1_epi32(static_cast<int>(key));
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256i v =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(a + i));
        const int m = _mm256_movemask_ps(
            _mm256_castsi256_ps(_mm256_cmpeq_epi32(v, vkey)));
        if (m)
            return static_cast<int>(i) + __builtin_ctz(static_cast<unsigned>(m));
    }
    for (; i < n; i++) {
        if (a[i] == key)
            return static_cast<int>(i);
    }
    return -1;
}

__attribute__((target("avx2"))) int
findU64Avx2(const std::uint64_t *a, std::size_t n, std::uint64_t key)
{
    const __m256i vkey = _mm256_set1_epi64x(static_cast<long long>(key));
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i v =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(a + i));
        const int m = _mm256_movemask_pd(
            _mm256_castsi256_pd(_mm256_cmpeq_epi64(v, vkey)));
        if (m)
            return static_cast<int>(i) + __builtin_ctz(static_cast<unsigned>(m));
    }
    for (; i < n; i++) {
        if (a[i] == key)
            return static_cast<int>(i);
    }
    return -1;
}

__attribute__((target("avx2"))) void
hashFind8Avx2(const std::uint32_t *slots, unsigned groupsLog2,
              const std::uint32_t *w, unsigned skip, int *out)
{
    const unsigned gmask = (1u << groupsLog2) - 1;
    const __m256i zero = _mm256_setzero_si256();
    for (unsigned i = 0; i < 8; i++) {
        if ((skip >> i) & 1)
            continue;
        const std::uint32_t v = w[i];
        const __m256i vk = _mm256_set1_epi32(static_cast<int>(v));
        unsigned g = hashGroup(v, groupsLog2);
        for (;;) {
            const __m256i grp = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(slots +
                                                  std::size_t{g} * 8));
            const unsigned match =
                static_cast<unsigned>(_mm256_movemask_ps(
                    _mm256_castsi256_ps(_mm256_cmpeq_epi32(grp, vk))));
            if (match) { // values unique: exactly one slot can match
                out[i] = static_cast<int>(
                    g * 8 + static_cast<unsigned>(__builtin_ctz(match)));
                break;
            }
            const unsigned empty =
                static_cast<unsigned>(_mm256_movemask_ps(
                    _mm256_castsi256_ps(_mm256_cmpeq_epi32(grp, zero))));
            if (empty) {
                out[i] = -1;
                break;
            }
            g = (g + 1) & gmask;
        }
    }
}

__attribute__((target("avx2"))) unsigned
zeroMask8Avx2(const std::uint32_t *w)
{
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(w));
    const int m = _mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpeq_epi32(v, _mm256_setzero_si256())));
    return static_cast<unsigned>(m);
}

#endif // MORC_SIMD_X86

// ---------------------------------------------------------------------
// Dispatch. The active level lives in a relaxed atomic: resolution is
// idempotent (same inputs, same answer), so a racing first use from
// two sweep threads is benign and TSan-clean.
// ---------------------------------------------------------------------

constexpr int kUnresolved = -1;

std::atomic<int> g_active{kUnresolved};

Level
resolveFromEnv()
{
    const Level best = bestSupported();
    // Read once before any worker threads exist (the resolved level is
    // cached in g_active), so the env scan cannot race a setenv.
    const char *env = std::getenv("MORC_SIMD"); // NOLINT(concurrency-mt-unsafe)
    if (!env)
        return best;
    Level want = best;
    if (std::strcmp(env, "scalar") == 0)
        want = Level::Scalar;
    else if (std::strcmp(env, "sse2") == 0)
        want = Level::Sse2;
    else if (std::strcmp(env, "avx2") == 0)
        want = Level::Avx2;
    return want <= best ? want : best;
}

} // namespace

const char *
levelName(Level l)
{
    switch (l) {
      case Level::Scalar: return "scalar";
      case Level::Sse2: return "sse2";
      case Level::Avx2: return "avx2";
    }
    return "?";
}

Level
bestSupported()
{
#ifdef MORC_SIMD_X86
    if (__builtin_cpu_supports("avx2"))
        return Level::Avx2;
    return Level::Sse2; // x86-64 baseline
#else
    return Level::Scalar;
#endif
}

Level
activeLevel()
{
    int v = g_active.load(std::memory_order_relaxed);
    if (v == kUnresolved) {
        v = static_cast<int>(resolveFromEnv());
        g_active.store(v, std::memory_order_relaxed);
    }
    return static_cast<Level>(v);
}

Level
forceLevel(Level l)
{
    const Level best = bestSupported();
    const Level eff = l <= best ? l : best;
    g_active.store(static_cast<int>(eff), std::memory_order_relaxed);
    return eff;
}

void
resetLevel()
{
    g_active.store(kUnresolved, std::memory_order_relaxed);
}

int
findU32(const std::uint32_t *a, std::size_t n, std::uint32_t key)
{
#ifdef MORC_SIMD_X86
    switch (activeLevel()) {
      case Level::Avx2: return findU32Avx2(a, n, key);
      case Level::Sse2: return findU32Sse2(a, n, key);
      default: break;
    }
#endif
    return findU32Scalar(a, n, key);
}

int
findU64(const std::uint64_t *a, std::size_t n, std::uint64_t key)
{
#ifdef MORC_SIMD_X86
    switch (activeLevel()) {
      case Level::Avx2: return findU64Avx2(a, n, key);
      case Level::Sse2: return findU64Sse2(a, n, key);
      default: break;
    }
#endif
    return findU64Scalar(a, n, key);
}

unsigned
zeroMask8(const std::uint32_t *w)
{
#ifdef MORC_SIMD_X86
    switch (activeLevel()) {
      case Level::Avx2: return zeroMask8Avx2(w);
      case Level::Sse2: return zeroMask8Sse2(w);
      default: break;
    }
#endif
    return zeroMask8Scalar(w);
}

void
hashFind8(const std::uint32_t *slots, unsigned groupsLog2,
          const std::uint32_t *w, unsigned skip, int *out)
{
#ifdef MORC_SIMD_X86
    switch (activeLevel()) {
      case Level::Avx2: hashFind8Avx2(slots, groupsLog2, w, skip, out); return;
      case Level::Sse2: hashFind8Sse2(slots, groupsLog2, w, skip, out); return;
      default: break;
    }
#endif
    hashFind8Scalar(slots, groupsLog2, w, skip, out);
}

} // namespace simd
} // namespace morc
