/**
 * @file
 * SIMD kernels for the compression hot path, behind compile-time and
 * runtime dispatch with a scalar reference implementation.
 *
 * Every kernel is an *exact* search/compare primitive — first-match
 * index or a zero-lane mask — so all implementations return bit-for-bit
 * identical results by construction; `tests/compress/lbe_simd_equiv_test.cc`
 * proves it differentially. The LBE encoder replaces its per-word hash
 * lookups with these scans: dictionaries are small (<=128 words,
 * <=255 tree nodes) and reset per log, so a vector scan beats hashing
 * while keeping the dictionary a plain flat array.
 *
 * Dispatch:
 *  - compile-time: `MORC_FORCE_SCALAR` (CMake `-DMORC_FORCE_SCALAR=ON`)
 *    compiles the scalar reference only — the CI matrix proves goldens
 *    do not depend on the vector units.
 *  - runtime: the best ISA the CPU supports is picked on first use
 *    (AVX2 via `__builtin_cpu_supports`, else SSE2, else scalar). The
 *    AVX2 kernels are compiled with a function-level target attribute,
 *    so no global `-mavx2` flag is needed and the binary stays safe on
 *    older hosts.
 *  - override: `forceLevel()` (test hook) or the `MORC_SIMD`
 *    environment variable (`scalar` / `sse2` / `avx2`) pin a level;
 *    requesting an unsupported level falls back to the best available.
 */

#ifndef MORC_UTIL_SIMD_HH
#define MORC_UTIL_SIMD_HH

#include <cstddef>
#include <cstdint>

namespace morc {
namespace simd {

enum class Level : std::uint8_t { Scalar = 0, Sse2 = 1, Avx2 = 2 };

/** Name for reports/tests ("scalar", "sse2", "avx2"). */
const char *levelName(Level l);

/** Best level this binary + CPU supports. */
Level bestSupported();

/** Level the kernels currently dispatch to. */
Level activeLevel();

/**
 * Test hook: pin dispatch to @p l (clamped to bestSupported()).
 * Returns the level actually activated.
 */
Level forceLevel(Level l);

/** Drop any override and re-resolve from MORC_SIMD / the CPU. */
void resetLevel();

/**
 * First index i < n with a[i] == key, or -1.
 * The LBE 32-bit dictionary match.
 */
int findU32(const std::uint32_t *a, std::size_t n, std::uint32_t key);

/**
 * First index i < n with a[i] == key, or -1.
 * The LBE tree-node match (nodes packed as left | right << 32).
 */
int findU64(const std::uint64_t *a, std::size_t n, std::uint64_t key);

/**
 * Zero-lane mask over 8 consecutive 32-bit words: bit i is set when
 * w[i] == 0. One LBE 256-bit chunk's zero scan in a single call.
 */
unsigned zeroMask8(const std::uint32_t *w);

/**
 * Batched probe of a bucketized open-addressing hash table whose slots
 * hold nonzero 32-bit values (0 = empty). The table is laid out as
 * 2^groupsLog2 groups of 8 consecutive slots; a value's home group is
 * the Fibonacci hash of the value (hashGroup below), and insertion
 * claims the first empty slot scanning groups in sequence. For each
 * lane i in [0, 8) whose bit in @p skip is clear, out[i] receives the
 * slot index holding w[i], or -1 when absent. Lanes with their skip
 * bit set are untouched.
 *
 * Each group is checked with one 8-wide vector compare (two on SSE2):
 * a match anywhere in the group wins; otherwise an empty slot in the
 * group proves absence (insertion never skips past an empty slot);
 * otherwise probing continues at the next group. Values must be unique
 * in the table, so all implementations agree on the matched slot.
 * This is the LBE 32-bit dictionary match: one call resolves a whole
 * 256-bit chunk against the committed dictionary.
 */
void hashFind8(const std::uint32_t *slots, unsigned groupsLog2,
               const std::uint32_t *w, unsigned skip, int *out);

/** Home group of value @p v in a hashFind8 table (Fibonacci hash). */
inline unsigned
hashGroup(std::uint32_t v, unsigned groupsLog2)
{
    return groupsLog2 ? (v * 0x9E3779B1u) >> (32u - groupsLog2) : 0u;
}

} // namespace simd
} // namespace morc

#endif // MORC_UTIL_SIMD_HH
