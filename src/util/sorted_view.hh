/**
 * @file
 * Deterministic iteration over unordered associative containers.
 *
 * Iterating a std::unordered_{map,set} is ordered by hash-table layout,
 * which depends on insertion history, libstdc++ version, and SSO
 * details — so the moment such a loop feeds a report, audit message,
 * snapshot, or any other serialized artifact, byte-identical output is
 * lost. sortedView() is the sanctioned adapter for those cold paths: it
 * materializes a key-sorted vector of pointers into the container, so
 * the loop body reads the original elements (no value copies) in a
 * total order independent of hash-table state.
 *
 * tools/morc_analyze.py (check `unordered-iteration-escape`) flags
 * unordered-container loops on escape paths unless they go through this
 * adapter. Do NOT use it on hot paths — it allocates and sorts; hot
 * loops over unordered containers are fine as long as their order never
 * reaches an observable artifact.
 */

#ifndef MORC_UTIL_SORTED_VIEW_HH
#define MORC_UTIL_SORTED_VIEW_HH

#include <algorithm>
#include <vector>

namespace morc {
namespace util {

/**
 * Key-sorted view of @p c: a vector of `const value_type *`, sorted by
 * `first` for map-like containers and by the element itself for sets.
 * The view is invalidated by any mutation of @p c.
 *
 *   for (const auto *kv : util::sortedView(m))
 *       s.u64(kv->first), s.u32(kv->second);
 */
template <typename Container>
std::vector<const typename Container::value_type *>
sortedView(const Container &c)
{
    using Value = typename Container::value_type;
    std::vector<const Value *> view;
    view.reserve(c.size());
    for (const auto &e : c)
        view.push_back(&e);
    std::sort(view.begin(), view.end(),
              [](const Value *a, const Value *b) {
                  if constexpr (requires { a->first < b->first; })
                      return a->first < b->first;
                  else
                      return *a < *b;
              });
    return view;
}

} // namespace util
} // namespace morc

#endif // MORC_UTIL_SORTED_VIEW_HH
