/**
 * @file
 * Annotated synchronization primitives: the only sanctioned doorway to
 * raw std::mutex in this codebase.
 *
 * Every lock in src/ goes through morc::sync so that Clang's
 * -Wthread-safety capability analysis can prove, at compile time, that
 * guarded state is only touched under its lock. The macros expand to
 * Clang capability attributes and compile away on other compilers, so
 * the annotated tree builds identically under GCC; the `analyze` CMake
 * preset (CI job `analyze`) turns the analysis on as errors.
 *
 * Conventions (DESIGN.md §12):
 *   - shared mutable state is a member annotated MORC_GUARDED_BY(mu_),
 *   - functions that expect the caller to hold a lock say
 *     MORC_REQUIRES(mu_); functions that must NOT be entered with it
 *     held say MORC_EXCLUDES(mu_),
 *   - scope-based locking uses LockGuard / UniqueLock (both
 *     MORC_SCOPED_CAPABILITY), never manual lock()/unlock() pairs,
 *   - `// morc-analyze: allow(raw-sync)` is the escape hatch for the
 *     rare raw primitive (none today outside this header and the
 *     worker-thread container in sweep/pool.hh).
 *
 * The raw-sync ban itself is enforced by tools/morc_analyze.py, so a
 * std::mutex added anywhere else fails the `analyze` gate even under
 * GCC.
 */

#ifndef MORC_UTIL_SYNC_HH
#define MORC_UTIL_SYNC_HH

#include <condition_variable>
#include <mutex>
#include <thread>

// ---------------------------------------------------------------------
// Clang thread-safety attribute macros (no-ops elsewhere).
// ---------------------------------------------------------------------

#if defined(__clang__)
#define MORC_TS_ATTR(x) __attribute__((x))
#else
#define MORC_TS_ATTR(x) // capability analysis is Clang-only
#endif

#define MORC_CAPABILITY(x) MORC_TS_ATTR(capability(x))
#define MORC_SCOPED_CAPABILITY MORC_TS_ATTR(scoped_lockable)
#define MORC_GUARDED_BY(x) MORC_TS_ATTR(guarded_by(x))
#define MORC_PT_GUARDED_BY(x) MORC_TS_ATTR(pt_guarded_by(x))
#define MORC_REQUIRES(...) MORC_TS_ATTR(requires_capability(__VA_ARGS__))
#define MORC_ACQUIRE(...) MORC_TS_ATTR(acquire_capability(__VA_ARGS__))
#define MORC_RELEASE(...) MORC_TS_ATTR(release_capability(__VA_ARGS__))
#define MORC_TRY_ACQUIRE(...) \
    MORC_TS_ATTR(try_acquire_capability(__VA_ARGS__))
#define MORC_EXCLUDES(...) MORC_TS_ATTR(locks_excluded(__VA_ARGS__))
#define MORC_RETURN_CAPABILITY(x) MORC_TS_ATTR(lock_returned(x))
#define MORC_NO_THREAD_SAFETY_ANALYSIS \
    MORC_TS_ATTR(no_thread_safety_analysis)

namespace morc {
namespace sync {

/** std::mutex as a named capability the analysis can track. */
class MORC_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() MORC_ACQUIRE() { mu_.lock(); }
    void unlock() MORC_RELEASE() { mu_.unlock(); }
    bool try_lock() MORC_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  private:
    std::mutex mu_;
};

/** std::lock_guard over a Mutex; acquisition is scoped to the block. */
class MORC_SCOPED_CAPABILITY LockGuard
{
  public:
    explicit LockGuard(Mutex &mu) MORC_ACQUIRE(mu) : mu_(mu)
    {
        mu_.lock();
    }
    ~LockGuard() MORC_RELEASE() { mu_.unlock(); }

    LockGuard(const LockGuard &) = delete;
    LockGuard &operator=(const LockGuard &) = delete;

  private:
    Mutex &mu_;
};

/**
 * Re-lockable scope lock (the BasicLockable std::condition_variable_any
 * waits on). Constructed locked; wait functions may unlock()/lock() it.
 */
class MORC_SCOPED_CAPABILITY UniqueLock
{
  public:
    explicit UniqueLock(Mutex &mu) MORC_ACQUIRE(mu) : mu_(mu)
    {
        mu_.lock();
        held_ = true;
    }
    ~UniqueLock() MORC_RELEASE()
    {
        if (held_)
            mu_.unlock();
    }

    void
    lock() MORC_ACQUIRE()
    {
        mu_.lock();
        held_ = true;
    }
    void
    unlock() MORC_RELEASE()
    {
        mu_.unlock();
        held_ = false;
    }

    UniqueLock(const UniqueLock &) = delete;
    UniqueLock &operator=(const UniqueLock &) = delete;

  private:
    Mutex &mu_;
    bool held_ = false;
};

/** Condition variable usable with UniqueLock (and a stop_token). */
using CondVarAny = std::condition_variable_any;

/** std::thread::hardware_concurrency without naming std::thread at the
 *  call site (keeps the raw-sync ban grep-clean outside this header). */
inline unsigned
hardwareConcurrency()
{
    return std::thread::hardware_concurrency();
}

} // namespace sync
} // namespace morc

#endif // MORC_UTIL_SYNC_HH
