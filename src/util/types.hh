/**
 * @file
 * Fundamental types and constants shared by every MORC module.
 */

#ifndef MORC_UTIL_TYPES_HH
#define MORC_UTIL_TYPES_HH

#include <array>
#include <cstdint>
#include <cstring>

namespace morc {

/** Physical address type. The evaluated machine has a 48-bit space. */
using Addr = std::uint64_t;

/** Cycle count type. */
using Cycles = std::uint64_t;

/** Cache line size used throughout the paper and this reproduction. */
constexpr unsigned kLineSize = 64;

/** log2 of the cache line size. */
constexpr unsigned kLineShift = 6;

/** Physical address width assumed by the overhead analysis (Section 3.3). */
constexpr unsigned kPhysAddrBits = 48;

/** Number of 32-bit words in a cache line. */
constexpr unsigned kWordsPerLine = kLineSize / 4;

/**
 * A 64-byte cache line payload.
 *
 * Compression operates on real data, so lines carry their full contents.
 * Accessor helpers view the payload at the granularities LBE cares about.
 */
struct CacheLine
{
    std::array<std::uint8_t, kLineSize> bytes{};

    /** Read the 32-bit word at word index @p i (little-endian). */
    std::uint32_t
    word32(unsigned i) const
    {
        std::uint32_t w;
        std::memcpy(&w, bytes.data() + i * 4, 4);
        return w;
    }

    /** Write the 32-bit word at word index @p i. */
    void
    setWord32(unsigned i, std::uint32_t w)
    {
        std::memcpy(bytes.data() + i * 4, &w, 4);
    }

    /** Read the 64-bit word at index @p i. */
    std::uint64_t
    word64(unsigned i) const
    {
        std::uint64_t w;
        std::memcpy(&w, bytes.data() + i * 8, 8);
        return w;
    }

    /** Write the 64-bit word at index @p i. */
    void
    setWord64(unsigned i, std::uint64_t w)
    {
        std::memcpy(bytes.data() + i * 8, &w, 8);
    }

    /** True when every byte of the line is zero. */
    bool
    isZero() const
    {
        for (unsigned i = 0; i < kLineSize / 8; i++) {
            if (word64(i) != 0)
                return false;
        }
        return true;
    }

    bool operator==(const CacheLine &other) const = default;
};

/** Align an address down to its cache-line base. */
constexpr Addr
lineBase(Addr a)
{
    return a & ~static_cast<Addr>(kLineSize - 1);
}

/** Cache-line index of an address (address divided by line size). */
constexpr Addr
lineNumber(Addr a)
{
    return a >> kLineShift;
}

/** Integer ceiling division. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/** True when @p v is a power of two (and non-zero). */
constexpr bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Floor of log2 for a non-zero value. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    unsigned l = 0;
    while (v >>= 1)
        l++;
    return l;
}

/** Ceiling of log2; number of bits needed to index @p v distinct items. */
constexpr unsigned
ceilLog2(std::uint64_t v)
{
    return v <= 1 ? 0 : floorLog2(v - 1) + 1;
}

} // namespace morc

#endif // MORC_UTIL_TYPES_HH
