/**
 * @file
 * Zipf-distributed index sampling for value-pool selection.
 *
 * Data-value duplication in real programs is highly skewed (a few values
 * occur extremely often); the workload substrate models pools of words
 * whose popularity follows a Zipf distribution.
 */

#ifndef MORC_UTIL_ZIPF_HH
#define MORC_UTIL_ZIPF_HH

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/rng.hh"

namespace morc {

/**
 * Samples indices in [0, n) with probability proportional to
 * 1 / (i+1)^theta using a precomputed inverse CDF table.
 */
class ZipfSampler
{
  public:
    ZipfSampler(std::uint64_t n, double theta) : n_(n), theta_(theta)
    {
        cdf_.reserve(n);
        double sum = 0.0;
        for (std::uint64_t i = 0; i < n; i++) {
            sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
            cdf_.push_back(sum);
        }
        for (auto &c : cdf_)
            c /= sum;
    }

    /** Draw an index using randomness from @p rng. */
    std::uint64_t
    sample(Rng &rng) const
    {
        const double u = rng.uniform();
        // Binary search the inverse CDF.
        std::uint64_t lo = 0, hi = n_ - 1;
        while (lo < hi) {
            const std::uint64_t mid = (lo + hi) / 2;
            if (cdf_[mid] < u)
                lo = mid + 1;
            else
                hi = mid;
        }
        return lo;
    }

    /**
     * Deterministic variant: map a hash value to an index with the same
     * skew. Used when a datum must be a pure function of its key.
     */
    std::uint64_t
    sampleHashed(std::uint64_t hash) const
    {
        const double u = (hash >> 11) * (1.0 / 9007199254740992.0);
        std::uint64_t lo = 0, hi = n_ - 1;
        while (lo < hi) {
            const std::uint64_t mid = (lo + hi) / 2;
            if (cdf_[mid] < u)
                lo = mid + 1;
            else
                hi = mid;
        }
        return lo;
    }

    std::uint64_t size() const { return n_; }
    double theta() const { return theta_; }

  private:
    std::uint64_t n_;
    double theta_;
    std::vector<double> cdf_;
};

} // namespace morc

#endif // MORC_UTIL_ZIPF_HH
