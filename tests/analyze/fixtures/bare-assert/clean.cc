// Fixture: MORC_CHECK survives NDEBUG and static_assert is
// compile-time; neither must fire.
#include "check/check.hh"

inline void
checkIndex(unsigned i, unsigned n)
{
    MORC_CHECK(i < n, "index in range");
    static_assert(sizeof(unsigned) >= 4, "word size");
}
