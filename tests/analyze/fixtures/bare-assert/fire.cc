// Fixture: assert() vanishes under NDEBUG (the default build) and
// must fire.
#include <cassert>

inline void
checkIndex(unsigned i, unsigned n)
{
    assert(i < n);
}
