// Fixture: the deterministic util/rng.hh-style generator, value-keyed
// maps, and simulated cycle counts must not fire.
#include <cstdint>
#include <map>

#include "util/rng.hh"

struct Model
{
    std::map<std::uint64_t, int> byLine_;
    morc::util::Rng rng_;
    std::uint64_t cycles_ = 0;

    int
    sample()
    {
        cycles_ += 1;
        return static_cast<int>(rng_.next() & 0xff);
    }
};
