// Fixture: ambient randomness, host clocks, and pointer-keyed
// ordered containers are all run-to-run nondeterminism and must fire.
#include <cstdlib>
#include <ctime>
#include <map>
#include <random>

struct Jitter
{
    std::map<int *, int> byPtr_;

    int
    sample()
    {
        std::random_device rd;
        std::mt19937 gen(rd());
        int r = static_cast<int>(rand());
        r += static_cast<int>(time(nullptr));
        return r + static_cast<int>(gen());
    }
};
