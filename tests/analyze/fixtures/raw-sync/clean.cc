// Fixture: the annotated morc::sync wrappers, and a deliberately
// suppressed raw use, must not fire.
#include "util/sync.hh"

struct Widget
{
    morc::sync::Mutex mu_;
    int value_ = 0;

    void
    bump()
    {
        morc::sync::LockGuard lock(mu_);
        value_++;
    }

    void
    spawn()
    {
        std::jthread worker([] {}); // morc-analyze: allow(raw-sync) fixture exercises the suppression path
    }
};
