// Fixture: raw std synchronization primitives outside util/sync.hh
// are invisible to -Wthread-safety and must fire.
#include <mutex>
#include <thread>

struct Counter
{
    std::mutex mu_;
    int value_ = 0;

    void
    bump()
    {
        std::lock_guard lock(mu_);
        value_++;
    }

    void
    spawn()
    {
        std::jthread worker([] {});
    }
};
