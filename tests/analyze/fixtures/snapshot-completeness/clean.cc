// Fixture: a fully-snapshotted class, a derived member with a
// documented suppression, and a class with no snapshot methods must
// not fire.
struct Model
{
    void
    save(Serializer &s) const
    {
        s.u64(pos_);
    }

    void
    restore(Deserializer &d)
    {
        pos_ = d.u64();
        mask_ = pos_ - 1;
    }

    unsigned long pos_ = 0;
    unsigned long mask_ = 0;
    unsigned long scratch_ = 0; // morc-analyze: allow(snapshot-completeness) transient scratch
};

struct Plain
{
    int untracked_ = 0;
};
