// Fixture: a data member mentioned in neither save() nor restore()
// is silently dropped by checkpoint/restore and must fire.
struct Model
{
    void
    save(Serializer &s) const
    {
        s.u64(pos_);
    }

    void
    restore(Deserializer &d)
    {
        pos_ = d.u64();
    }

    unsigned long pos_ = 0;
    unsigned long missed_ = 0;
};
