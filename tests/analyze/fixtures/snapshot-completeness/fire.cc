// Fixture: a data member mentioned in neither save() nor restore()
// is silently dropped by checkpoint/restore and must fire.
struct Model
{
    void
    save(Serializer &s) const
    {
        s.u64(pos_);
    }

    void
    restore(Deserializer &d)
    {
        pos_ = d.u64();
    }

    unsigned long pos_ = 0;
    unsigned long missed_ = 0;
};

// A Touché-shaped superblock: the signature stream is rebuilt from the
// slots on every repack, so it is tempting to skip it in saveState —
// but a restored cache would then serve stale signatures until the
// first repack. saveState/restoreState spellings must be recognized
// and the dropped member must fire.
struct SuperBlock
{
    void
    saveState(Serializer &s) const
    {
        s.u64(tag_);
        s.boolean(valid_);
    }

    void
    restoreState(Deserializer &d)
    {
        tag_ = d.u64();
        valid_ = d.boolean();
    }

    unsigned long tag_ = 0;
    bool valid_ = false;
    BitWriter sigStream_;
};
