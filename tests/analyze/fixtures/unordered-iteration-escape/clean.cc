// Fixture: sortedView-routed iteration in an escape path, and raw
// iteration on a hot (non-escape) path, must not fire.
#include <unordered_map>

#include "util/sorted_view.hh"

struct Stats
{
    std::unordered_map<int, long> counts_;

    long
    report() const
    {
        long sum = 0;
        for (const auto *kv : util::sortedView(counts_))
            sum += kv->second;
        return sum;
    }

    long
    tally() const
    {
        long sum = 0;
        for (const auto &kv : counts_)
            sum += kv.second;
        return sum;
    }
};
