// Fixture: iterating an unordered container inside an escape-path
// function (report/save/dump/...) leaks hash order and must fire.
#include <unordered_map>

struct Stats
{
    std::unordered_map<int, long> counts_;

    long
    report() const
    {
        long sum = 0;
        for (const auto &kv : counts_)
            sum += kv.second;
        for (auto it = counts_.begin(); it != counts_.end(); ++it)
            sum += it->second;
        return sum;
    }
};
