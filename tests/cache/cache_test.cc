/**
 * @file
 * Tests for the baseline LLC models: uncompressed, Adaptive, Decoupled,
 * SC2, and the Figure 2 oracle caches.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "cache/adaptive.hh"
#include "cache/decoupled.hh"
#include "cache/ideal.hh"
#include "cache/overheads.hh"
#include "cache/sc2.hh"
#include "cache/touche.hh"
#include "cache/uncompressed.hh"
#include "util/rng.hh"

namespace morc {
namespace cache {
namespace {

CacheLine
patternLine(std::uint64_t tag)
{
    CacheLine l;
    for (unsigned i = 0; i < kWordsPerLine; i++)
        l.setWord32(i, static_cast<std::uint32_t>(splitmix64(tag * 16 + i)));
    return l;
}

CacheLine
compressibleLine(std::uint32_t w)
{
    CacheLine l;
    for (unsigned i = 0; i < kWordsPerLine; i++)
        l.setWord32(i, i % 4 == 0 ? w : 0);
    return l;
}

// ------------------------------------------------------------ Uncompressed

TEST(Uncompressed, MissThenHit)
{
    UncompressedCache c(64 * 1024);
    const Addr a = 0x1000;
    EXPECT_FALSE(c.read(a).hit);
    c.insert(a, patternLine(1), false);
    auto r = c.read(a);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.data, patternLine(1));
    EXPECT_EQ(r.extraLatency, 0u);
}

TEST(Uncompressed, CapacityIsBounded)
{
    UncompressedCache c(16 * 1024); // 256 lines
    for (Addr a = 0; a < 4096; a++)
        c.insert(a << kLineShift, patternLine(a), false);
    EXPECT_LE(c.validLines(), 256u);
    EXPECT_NEAR(c.compressionRatio(), 1.0, 0.01);
}

TEST(Uncompressed, DirtyVictimIsWrittenBack)
{
    UncompressedCache c(4 * 1024, 4); // 64 lines, 16 sets
    std::map<Addr, CacheLine> expected;
    Rng rng(3);
    std::uint64_t wbs = 0;
    for (int i = 0; i < 2000; i++) {
        const Addr a = rng.below(512) << kLineShift;
        const CacheLine l = patternLine(rng.next());
        expected[a] = l;
        wbs += c.insert(a, l, true).writebacks.size();
    }
    EXPECT_GT(wbs, 0u);
    // Every resident line must match the last inserted data.
    for (const auto &[a, l] : expected) {
        auto r = c.read(a);
        if (r.hit) {
            EXPECT_EQ(r.data, l);
        }
    }
}

TEST(Uncompressed, LruEvictsColdest)
{
    UncompressedCache c(64 * 64, 64); // one set, 64 ways
    for (Addr i = 0; i < 64; i++)
        c.insert(i << kLineShift, patternLine(i), false);
    // Touch all but line 7.
    for (Addr i = 0; i < 64; i++) {
        if (i != 7)
            c.read(i << kLineShift);
    }
    c.insert(999 << kLineShift, patternLine(999), false);
    EXPECT_FALSE(c.read(7 << kLineShift).hit);
    EXPECT_TRUE(c.read(8 << kLineShift).hit);
}

// ---------------------------------------------------------------- Adaptive

TEST(Adaptive, CompressesBeyondBaselineCapacity)
{
    AdaptiveCache c;
    // Highly compressible lines: should exceed 2048 resident lines.
    for (Addr a = 0; a < 6000; a++) {
        c.insert(a << kLineShift,
                 compressibleLine(static_cast<std::uint32_t>(a & 3)),
                 false);
    }
    EXPECT_GT(c.compressionRatio(), 1.2);
    EXPECT_LE(c.compressionRatio(), 2.01); // 2x tags cap the ratio
}

TEST(Adaptive, TagCapLimitsRatioToTwo)
{
    AdaptiveCache::Config cfg;
    AdaptiveCache c(cfg);
    for (Addr a = 0; a < 100000; a++)
        c.insert(a << kLineShift, CacheLine{}, false); // all-zero lines
    EXPECT_LE(c.compressionRatio(), 2.001);
    EXPECT_GT(c.compressionRatio(), 1.9);
}

TEST(Adaptive, IncompressibleStaysAtOne)
{
    AdaptiveCache c;
    Rng rng(9);
    for (Addr a = 0; a < 8000; a++)
        c.insert(a << kLineShift, patternLine(rng.next()), false);
    EXPECT_LE(c.compressionRatio(), 1.01);
}

TEST(Adaptive, HitReturnsLatestData)
{
    AdaptiveCache c;
    const Addr a = 0xabc0;
    c.insert(a, compressibleLine(5), false);
    c.insert(a, compressibleLine(9), true); // write-back update
    auto r = c.read(a);
    ASSERT_TRUE(r.hit);
    EXPECT_EQ(r.data, compressibleLine(9));
}

TEST(Adaptive, CompressedHitPaysDecompressionLatency)
{
    AdaptiveCache c;
    const Addr a = 0x40;
    c.insert(a, compressibleLine(1), false);
    auto r = c.read(a);
    ASSERT_TRUE(r.hit);
    EXPECT_EQ(r.extraLatency, 4u);
}

TEST(Adaptive, PredictorTurnsCompressionOff)
{
    // With incompressible data and repeated near-MRU hits to compressed
    // lines, the predictor should not go hugely positive.
    AdaptiveCache c;
    const std::int64_t before = c.predictor();
    c.insert(0x0, compressibleLine(1), false);
    for (int i = 0; i < 100; i++)
        c.read(0x0);
    EXPECT_LT(c.predictor(), before); // decompression penalties voted
}

// --------------------------------------------------------------- Decoupled

TEST(Decoupled, SuperBlockSharing)
{
    DecoupledCache c;
    // Four consecutive lines share one super-tag.
    for (Addr i = 0; i < 4; i++)
        c.insert(i << kLineShift, compressibleLine(7), false);
    for (Addr i = 0; i < 4; i++)
        EXPECT_TRUE(c.read(i << kLineShift).hit);
}

TEST(Decoupled, RatioCappedAtFour)
{
    DecoupledCache c;
    for (Addr a = 0; a < 200000; a++)
        c.insert(a << kLineShift, CacheLine{}, false);
    EXPECT_LE(c.compressionRatio(), 4.001);
    EXPECT_GT(c.compressionRatio(), 2.0);
}

TEST(Decoupled, EvictionWritesBackDirtySubLines)
{
    DecoupledCache::Config cfg;
    cfg.capacityBytes = 4096;
    DecoupledCache c(cfg);
    Rng rng(5);
    std::uint64_t wbs = 0;
    for (int i = 0; i < 5000; i++) {
        const Addr a = rng.below(2048) << kLineShift;
        wbs += c.insert(a, patternLine(rng.next()), true).writebacks.size();
    }
    EXPECT_GT(wbs, 0u);
}

TEST(Decoupled, HitReturnsData)
{
    DecoupledCache c;
    c.insert(0x1000, patternLine(42), false);
    auto r = c.read(0x1000);
    ASSERT_TRUE(r.hit);
    EXPECT_EQ(r.data, patternLine(42));
    EXPECT_FALSE(c.read(0x1040).hit); // neighbour sub-line not present
}

// --------------------------------------------------------------------- SC2

TEST(Sc2, TrainsAfterWarmup)
{
    Sc2Cache::Config cfg;
    cfg.warmupFills = 100;
    Sc2Cache c(cfg);
    for (Addr a = 0; a < 99; a++)
        c.insert(a << kLineShift, compressibleLine(3), false);
    EXPECT_FALSE(c.trained());
    c.insert(99 << kLineShift, compressibleLine(3), false);
    EXPECT_TRUE(c.trained());
}

TEST(Sc2, CompressesFrequentValues)
{
    Sc2Cache::Config cfg;
    cfg.warmupFills = 256;
    Sc2Cache c(cfg);
    // A stream dominated by a few values becomes highly compressible
    // once trained; ratio passes 2 (beyond Adaptive) but caps at 4.
    for (Addr a = 0; a < 60000; a++)
        c.insert(a << kLineShift,
                 compressibleLine(0xaa000000 + (a & 7)), false);
    EXPECT_GT(c.compressionRatio(), 2.0);
    EXPECT_LE(c.compressionRatio(), 4.001);
}

TEST(Sc2, RetrainsPeriodically)
{
    Sc2Cache::Config cfg;
    cfg.warmupFills = 64;
    cfg.retrainInterval = 512;
    Sc2Cache c(cfg);
    for (Addr a = 0; a < 3000; a++)
        c.insert(a << kLineShift, compressibleLine(1), false);
    EXPECT_GE(c.retrainings(), 4u);
}

TEST(Sc2, HitDataIntact)
{
    Sc2Cache c;
    Rng rng(31);
    for (int i = 0; i < 1000; i++) {
        const Addr a = rng.below(256) << kLineShift;
        const CacheLine l = patternLine(rng.next());
        c.insert(a, l, false);
        auto r = c.read(a);
        ASSERT_TRUE(r.hit);
        ASSERT_EQ(r.data, l);
    }
}

// ------------------------------------------------------------------ Ideal

TEST(Ideal, InterBeatsIntra)
{
    IdealCache intra(OracleScope::IntraLine);
    IdealCache inter(OracleScope::InterLine);
    Rng rng(8);
    // Pool-duplicated data: inter-line dedup removes nearly everything.
    std::uint32_t pool[64];
    for (auto &p : pool)
        p = static_cast<std::uint32_t>(rng.next());
    for (Addr a = 0; a < 50000; a++) {
        CacheLine l;
        for (unsigned w = 0; w < kWordsPerLine; w++)
            l.setWord32(w, pool[rng.below(64)]);
        intra.insert(a << kLineShift, l, false);
        inter.insert(a << kLineShift, l, false);
    }
    EXPECT_GT(inter.compressionRatio(), 4.0 * intra.compressionRatio());
}

TEST(Ideal, ZeroDataCompressesExtremely)
{
    IdealCache intra(OracleScope::IntraLine);
    for (Addr a = 0; a < 100000; a++)
        intra.insert(a << kLineShift, CacheLine{}, false);
    EXPECT_GT(intra.compressionRatio(), 20.0);
}

TEST(Ideal, RandomDataBarelyCompresses)
{
    IdealCache intra(OracleScope::IntraLine);
    Rng rng(10);
    for (Addr a = 0; a < 10000; a++)
        intra.insert(a << kLineShift, patternLine(rng.next()), false);
    EXPECT_LT(intra.compressionRatio(), 1.3);
}

// ---------------------------------------------------------------- Table 4

TEST(Overheads, MatchesPaperTable4)
{
    const auto rows = table4Overheads();
    ASSERT_EQ(rows.size(), 5u);

    EXPECT_EQ(rows[0].scheme, "Adaptive");
    EXPECT_NEAR(rows[0].extraTagsFrac, 0.0781, 0.0005);
    EXPECT_NEAR(rows[0].metadataFrac, 0.1093, 0.0005);
    EXPECT_NEAR(rows[0].totalFrac, 0.1874, 0.0005);

    EXPECT_EQ(rows[1].scheme, "Decoupled");
    EXPECT_NEAR(rows[1].extraTagsFrac, 0.0, 1e-9);
    EXPECT_NEAR(rows[1].metadataFrac, 0.0859, 0.0005);

    EXPECT_EQ(rows[2].scheme, "SC2");
    EXPECT_NEAR(rows[2].extraTagsFrac, 0.2343, 0.0005);
    EXPECT_NEAR(rows[2].metadataFrac, 0.1015, 0.0005);
    EXPECT_NEAR(rows[2].totalFrac, 0.3358, 0.0005);
    EXPECT_EQ(rows[2].dictBytes, 18u * 1024u);

    EXPECT_EQ(rows[3].scheme, "MORC");
    EXPECT_NEAR(rows[3].extraTagsFrac, 0.0781, 0.0005);
    EXPECT_NEAR(rows[3].metadataFrac, 0.1718, 0.0005);
    EXPECT_NEAR(rows[3].totalFrac, 0.2500, 0.0005);
    EXPECT_EQ(rows[3].dictBytes, 1024u);

    EXPECT_EQ(rows[4].scheme, "MORCMerged");
    EXPECT_NEAR(rows[4].extraTagsFrac, 0.0, 1e-9);
    EXPECT_NEAR(rows[4].totalFrac, 0.1718, 0.0005);
}

// ------------------------------------------------ Cross-scheme properties

class SchemeParam
    : public ::testing::TestWithParam<const char *>
{
  protected:
    std::unique_ptr<Llc>
    make() const
    {
        const std::string which = GetParam();
        if (which == "uncompressed")
            return std::make_unique<UncompressedCache>(128 * 1024);
        if (which == "adaptive")
            return std::make_unique<AdaptiveCache>();
        if (which == "decoupled")
            return std::make_unique<DecoupledCache>();
        if (which == "touche")
            return std::make_unique<ToucheCache>();
        return std::make_unique<Sc2Cache>();
    }
};

TEST_P(SchemeParam, FunctionalAgainstReferenceMemory)
{
    auto c = make();
    std::map<Addr, CacheLine> memory; // reference: last written data
    Rng rng(77);
    for (int i = 0; i < 20000; i++) {
        const Addr a = rng.below(4096) << kLineShift;
        if (rng.chance(0.5)) {
            const CacheLine l = compressibleLine(
                static_cast<std::uint32_t>(rng.below(64)));
            memory[a] = l;
            for (const auto &wb : c->insert(a, l, true).writebacks) {
                // Write-backs must carry the latest data for their line.
                ASSERT_EQ(wb.data, memory[wb.addr]);
            }
        } else {
            auto r = c->read(a);
            if (r.hit) {
                ASSERT_EQ(r.data, memory[a]);
            }
        }
    }
}

TEST_P(SchemeParam, ValidLinesNeverExceedTagCapacity)
{
    auto c = make();
    Rng rng(13);
    for (int i = 0; i < 30000; i++)
        c->insert(rng.below(1 << 18) << kLineShift, CacheLine{}, false);
    // 8x is beyond every baseline's provisioning.
    EXPECT_LT(c->compressionRatio(), 8.0);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SchemeParam,
                         ::testing::Values("uncompressed", "adaptive",
                                           "decoupled", "sc2",
                                           "touche"));

} // namespace
} // namespace cache
} // namespace morc
