/**
 * @file
 * Touché-specific regression tests: the signature false-positive and
 * impostor-eviction paths, WritebackGrowth-style re-compaction under
 * worst-case overwrite growth, the audit/mutation hook, wear charging,
 * and exact snapshot round-trips.
 *
 * The scheme-generic contract (LRU, dirty writebacks, audit-after-
 * traffic, snapshot lockstep across all schemes) lives in
 * cache_test.cc's parameterized suite; everything here exercises
 * behavior only Touché has.
 */

#include <gtest/gtest.h>

#include <map>
#include <utility>

#include "cache/touche.hh"
#include "compress/sigcodec.hh"
#include "snapshot/snapshot.hh"
#include "util/rng.hh"

namespace morc {
namespace cache {
namespace {

CacheLine
patternLine(std::uint64_t tag)
{
    CacheLine l;
    for (unsigned i = 0; i < kWordsPerLine; i++)
        l.setWord32(i, static_cast<std::uint32_t>(splitmix64(tag * 16 + i)));
    return l;
}

CacheLine
compressibleLine(std::uint32_t w)
{
    CacheLine l;
    for (unsigned i = 0; i < kWordsPerLine; i++)
        l.setWord32(i, i % 4 == 0 ? w : 0);
    return l;
}

/** First superblock whose four lines contain a signature collision:
 *  the two colliding line numbers. The 8-bit signature collides in
 *  ~2.3% of superblocks, so the scan terminates almost immediately. */
std::pair<Addr, Addr>
collidingSiblings()
{
    for (Addr group = 0;; group++) {
        for (unsigned i = 0; i < 4; i++) {
            for (unsigned j = i + 1; j < 4; j++) {
                const Addr a = group * 4 + i;
                const Addr b = group * 4 + j;
                if (comp::SigCodec::signatureOf(a) ==
                    comp::SigCodec::signatureOf(b))
                    return {a, b};
            }
        }
    }
}

TEST(Touche, SuperBlockPacksCompressibleSiblings)
{
    ToucheCache c;
    // Four compressible lines of one superblock share a single tag
    // entry and a single 64-byte data entry.
    for (Addr n = 0; n < 4; n++)
        c.insert(n << kLineShift,
                 compressibleLine(static_cast<std::uint32_t>(n)), false);
    EXPECT_EQ(c.validLines(), 4u);
    for (Addr n = 0; n < 4; n++) {
        auto r = c.read(n << kLineShift);
        EXPECT_TRUE(r.hit);
        EXPECT_EQ(r.data,
                  compressibleLine(static_cast<std::uint32_t>(n)));
        // A compressed hit pays the decompress-and-verify round trip.
        EXPECT_EQ(r.extraLatency, ToucheCache::Config{}.decompressionLatency);
    }
    EXPECT_TRUE(c.audit().ok());
}

TEST(Touche, WritebackGrowthRecompaction)
{
    // Worst-case overwrite growth: a packed superblock of four dirty
    // compressible lines, then one line rewritten incompressible. The
    // grown line needs the whole 512-bit entry, so re-compaction must
    // evict every sibling — each with its latest data intact.
    ToucheCache c;
    for (Addr n = 0; n < 4; n++)
        c.insert(n << kLineShift,
                 compressibleLine(static_cast<std::uint32_t>(n)), true);
    ASSERT_EQ(c.validLines(), 4u);
    ASSERT_EQ(c.recompactions(), 0u);

    auto fill = c.insert(2 << kLineShift, patternLine(99), true);
    EXPECT_EQ(c.recompactions(), 1u);
    EXPECT_EQ(c.validLines(), 1u);
    ASSERT_EQ(fill.writebacks.size(), 3u);
    std::map<Addr, CacheLine> written;
    for (const auto &wb : fill.writebacks)
        written[wb.addr] = wb.data;
    for (Addr n = 0; n < 4; n++) {
        if (n == 2)
            continue;
        ASSERT_TRUE(written.count(n << kLineShift)) << "line " << n;
        EXPECT_EQ(written[n << kLineShift],
                  compressibleLine(static_cast<std::uint32_t>(n)));
    }
    // The survivor serves the overwritten data, siblings miss.
    auto r = c.read(2 << kLineShift);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.data, patternLine(99));
    EXPECT_FALSE(c.read(0 << kLineShift).hit);
    EXPECT_TRUE(c.audit().ok());
}

TEST(Touche, SignatureCollisionEvictsImpostor)
{
    const auto [a, b] = collidingSiblings();
    ToucheCache c;
    c.insert(a << kLineShift, patternLine(1), true);
    ASSERT_EQ(c.sigEvictions(), 0u);
    // Two same-signature lines cannot coexist in a way: inserting the
    // collider must first evict the resident impostor (dirty, so its
    // data comes back out).
    auto fill = c.insert(b << kLineShift, patternLine(2), false);
    EXPECT_EQ(c.sigEvictions(), 1u);
    ASSERT_EQ(fill.writebacks.size(), 1u);
    EXPECT_EQ(fill.writebacks[0].addr, a << kLineShift);
    EXPECT_EQ(fill.writebacks[0].data, patternLine(1));
    EXPECT_FALSE(c.read(a << kLineShift).hit);
    EXPECT_TRUE(c.read(b << kLineShift).hit);
    EXPECT_TRUE(c.audit().ok());
}

TEST(Touche, FalsePositiveDecompressVerifyMisses)
{
    const auto [a, b] = collidingSiblings();
    ToucheCache c;
    c.insert(a << kLineShift, compressibleLine(7), false);
    ASSERT_EQ(c.sigFalsePositives(), 0u);
    // Reading the absent collider matches the resident signature: the
    // embedded-tag verify rejects it, charging the decompression but
    // never serving wrong data.
    auto r = c.read(b << kLineShift);
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(c.sigFalsePositives(), 1u);
    EXPECT_EQ(r.linesDecompressed, 1u);
    EXPECT_EQ(r.extraLatency, ToucheCache::Config{}.decompressionLatency);
    // The resident line is untouched.
    auto ok = c.read(a << kLineShift);
    EXPECT_TRUE(ok.hit);
    EXPECT_EQ(ok.data, compressibleLine(7));
}

TEST(Touche, AuditDetectsCorruptedSignature)
{
    ToucheCache c;
    Rng rng(11);
    for (int i = 0; i < 500; i++)
        c.insert(rng.below(4096) << kLineShift, patternLine(rng.next()),
                 rng.chance(2));
    ASSERT_TRUE(c.audit().ok());
    ASSERT_TRUE(c.debugCorruptSignature(7));
    const auto report = c.audit();
    EXPECT_FALSE(report.ok());
    EXPECT_GE(report.violations(), 1u);
}

TEST(Touche, CorruptSignatureNeedsAResidentLine)
{
    ToucheCache c;
    EXPECT_FALSE(c.debugCorruptSignature(7));
    EXPECT_TRUE(c.audit().ok());
}

TEST(Touche, WearChargedFromEmittedBitstreams)
{
    ToucheCache c;
    Rng rng(5);
    for (int i = 0; i < 1000; i++)
        c.insert(rng.below(2048) << kLineShift, patternLine(rng.next()),
                 rng.chance(2));
    const auto &st = c.stats();
    EXPECT_GT(st.cellBitsWritten, 0u);
    EXPECT_GT(st.cellBitFlips, 0u);
    const auto wear = c.wearSnapshot();
    EXPECT_EQ(wear.totalBitsWritten(), st.cellBitsWritten);
    EXPECT_EQ(wear.totalBitFlips(), st.cellBitFlips);
    EXPECT_GE(wear.imbalance(), 1.0);
}

TEST(Touche, SnapshotRoundTripLockstep)
{
    ToucheCache c;
    Rng rng(23);
    const auto step = [&](ToucheCache &t, std::uint64_t r) {
        const Addr a = (r % 4096) << kLineShift;
        if (r & 1)
            t.insert(a, patternLine(r), (r & 2) != 0);
        else
            t.read(a);
    };
    for (int i = 0; i < 4000; i++)
        step(c, rng.next());

    snap::Serializer s;
    c.saveState(s);
    ToucheCache twin;
    snap::Deserializer d(s.frame());
    twin.restoreState(d);
    ASSERT_TRUE(d.ok());
    EXPECT_EQ(twin.validLines(), c.validLines());
    EXPECT_EQ(twin.sigFalsePositives(), c.sigFalsePositives());
    EXPECT_EQ(twin.sigEvictions(), c.sigEvictions());
    EXPECT_EQ(twin.recompactions(), c.recompactions());
    EXPECT_TRUE(twin.audit().ok());

    // Divergence after restore means hidden state escaped the frame:
    // run both caches in lockstep and require identical behavior.
    for (int i = 0; i < 4000; i++) {
        const std::uint64_t r = rng.next();
        step(c, r);
        step(twin, r);
    }
    EXPECT_EQ(twin.validLines(), c.validLines());
    EXPECT_EQ(twin.stats().readHits, c.stats().readHits);
    EXPECT_EQ(twin.stats().victimWritebacks, c.stats().victimWritebacks);
    EXPECT_EQ(twin.stats().cellBitsWritten, c.stats().cellBitsWritten);
    EXPECT_EQ(twin.stats().cellBitFlips, c.stats().cellBitFlips);
    EXPECT_EQ(twin.sigFalsePositives(), c.sigFalsePositives());
    EXPECT_EQ(twin.recompactions(), c.recompactions());
}

} // namespace
} // namespace cache
} // namespace morc
