/**
 * @file
 * Invariant-audit subsystem tests: AuditReport mechanics, per-scheme
 * seeded fuzz with periodic audits (every scheme's audit() must stay
 * clean across >= 1e5 mixed operations), audit() purity, and the
 * mutation check that the MORC auditor *detects* LMT corruption.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cache/adaptive.hh"
#include "cache/decoupled.hh"
#include "cache/ideal.hh"
#include "cache/llc.hh"
#include "cache/sc2.hh"
#include "cache/uncompressed.hh"
#include "check/auditor.hh"
#include "check/check.hh"
#include "core/morc.hh"
#include "sweep/sweep.hh"
#include "util/rng.hh"

namespace morc {
namespace {

/* ------------------------------------------------------------------ */
/* AuditReport mechanics                                              */
/* ------------------------------------------------------------------ */

TEST(AuditReport, CountsChecksAndViolations)
{
    check::AuditReport r;
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.require(true, "fine"));
    EXPECT_FALSE(r.require(false, "broken: %d != %d", 1, 2));
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.checksRun(), 2u);
    EXPECT_EQ(r.violations(), 1u);
    ASSERT_EQ(r.issues().size(), 1u);
    EXPECT_EQ(r.issues()[0], "broken: 1 != 2");
}

TEST(AuditReport, FailRecordsUnconditionally)
{
    check::AuditReport r;
    r.fail("structure unusable");
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.violations(), 1u);
    EXPECT_NE(r.str().find("structure unusable"), std::string::npos);
}

TEST(AuditReport, RecordedIssuesAreCappedButCountingContinues)
{
    check::AuditReport r;
    const std::size_t n = check::AuditReport::kMaxRecordedIssues + 40;
    for (std::size_t i = 0; i < n; i++)
        r.require(false, "violation %zu", i);
    EXPECT_EQ(r.violations(), n);
    EXPECT_EQ(r.issues().size(), check::AuditReport::kMaxRecordedIssues);
}

TEST(AuditReport, MergePrefixesAndAccumulates)
{
    check::AuditReport inner;
    inner.require(true, "fine");
    inner.require(false, "bad entry");

    check::AuditReport outer;
    outer.require(true, "also fine");
    outer.merge(inner, "log 3: ");
    EXPECT_EQ(outer.checksRun(), 3u);
    EXPECT_EQ(outer.violations(), 1u);
    ASSERT_EQ(outer.issues().size(), 1u);
    EXPECT_EQ(outer.issues()[0], "log 3: bad entry");
}

/* ------------------------------------------------------------------ */
/* Seeded fuzz: every scheme's audit stays clean under load           */
/* ------------------------------------------------------------------ */

CacheLine
fuzzLine(Rng &rng, std::uint32_t salt)
{
    CacheLine l;
    const auto kind = rng.below(3);
    for (unsigned i = 0; i < kWordsPerLine; i++) {
        if (kind == 0)
            l.setWord32(i, 0);
        else if (kind == 1)
            l.setWord32(i, rng.chance(0.3)
                               ? 0
                               : salt + static_cast<std::uint32_t>(
                                            rng.below(32)) * 4);
        else
            l.setWord32(i, static_cast<std::uint32_t>(rng.next()));
    }
    return l;
}

/** Drive >= @p ops mixed reads/inserts, auditing every 64. */
void
fuzzScheme(cache::Llc &c, std::uint64_t seed, std::uint64_t ops = 100000)
{
    Rng rng(sweep::stableSeed("auditor_test/" + c.name() + "/" +
                              std::to_string(seed)));
    for (std::uint64_t op = 0; op < ops; op++) {
        // Mix of a hot region (hits) and a wide region (evictions).
        const Addr line = rng.chance(0.5) ? rng.below(1024)
                                          : rng.below(1ull << 20);
        const Addr addr = line << kLineShift;
        if (rng.chance(0.5)) {
            c.read(addr);
        } else {
            c.insert(addr, fuzzLine(rng, static_cast<std::uint32_t>(op)),
                     rng.chance(0.4));
        }
        if (op % 64 == 63) {
            const auto r = c.audit();
            ASSERT_TRUE(r.ok()) << "op " << op << " scheme " << c.name()
                                << ":\n"
                                << r.str();
            ASSERT_GT(r.checksRun(), 0u);
        }
    }
    const auto r = c.audit();
    EXPECT_TRUE(r.ok()) << r.str();
}

TEST(AuditorFuzz, Uncompressed)
{
    cache::UncompressedCache c(128 * 1024);
    fuzzScheme(c, 1);
}

TEST(AuditorFuzz, Adaptive)
{
    cache::AdaptiveCache c;
    fuzzScheme(c, 2);
}

TEST(AuditorFuzz, Decoupled)
{
    cache::DecoupledCache c;
    fuzzScheme(c, 3);
}

TEST(AuditorFuzz, Sc2)
{
    cache::Sc2Cache c;
    fuzzScheme(c, 4);
}

TEST(AuditorFuzz, Morc)
{
    core::LogCache c;
    fuzzScheme(c, 5);
}

TEST(AuditorFuzz, MorcMerged)
{
    core::MorcConfig cfg;
    cfg.mergedTags = true;
    core::LogCache c(cfg);
    fuzzScheme(c, 6);
}

TEST(AuditorFuzz, MorcUnlimitedMeta)
{
    core::MorcConfig cfg;
    cfg.unlimitedMeta = true;
    core::LogCache c(cfg);
    fuzzScheme(c, 7, 30000); // map-backed LMT is slower; still >= 400 audits
}

TEST(AuditorFuzz, OracleIntra)
{
    cache::IdealCache c(cache::OracleScope::IntraLine);
    fuzzScheme(c, 8);
}

TEST(AuditorFuzz, OracleInter)
{
    cache::IdealCache c(cache::OracleScope::InterLine);
    fuzzScheme(c, 9);
}

/* ------------------------------------------------------------------ */
/* audit() purity: running it must not perturb behaviour              */
/* ------------------------------------------------------------------ */

TEST(Auditor, AuditIsSideEffectFree)
{
    core::LogCache audited, plain;
    Rng rng_a(11), rng_b(11);
    for (std::uint64_t op = 0; op < 20000; op++) {
        const Addr addr = rng_a.below(1ull << 14) << kLineShift;
        ASSERT_EQ(addr, rng_b.below(1ull << 14) << kLineShift);
        const bool write = rng_a.chance(0.4);
        ASSERT_EQ(write, rng_b.chance(0.4));
        if (write) {
            const CacheLine d = fuzzLine(rng_a, 0x77);
            ASSERT_EQ(d, fuzzLine(rng_b, 0x77));
            audited.insert(addr, d, true);
            plain.insert(addr, d, true);
        } else {
            const auto ra = audited.read(addr);
            const auto rb = plain.read(addr);
            ASSERT_EQ(ra.hit, rb.hit) << "op " << op;
            ASSERT_EQ(ra.extraLatency, rb.extraLatency) << "op " << op;
            if (ra.hit)
                ASSERT_EQ(ra.data, rb.data) << "op " << op;
        }
        // Only one of the twins is audited (twice, for good measure).
        if (op % 64 == 63) {
            audited.audit();
            audited.audit();
        }
    }
    EXPECT_EQ(audited.validLines(), plain.validLines());
    EXPECT_EQ(audited.stats().readHits, plain.stats().readHits);
    EXPECT_EQ(audited.logFlushes(), plain.logFlushes());
}

/* ------------------------------------------------------------------ */
/* Mutation: injected corruption must be *detected*                    */
/* ------------------------------------------------------------------ */

TEST(Auditor, DetectsInjectedLmtCorruption)
{
    core::LogCache c;
    Rng rng(13);
    for (Addr a = 0; a < 4000; a++)
        c.insert(a << kLineShift, fuzzLine(rng, 0x99), false);
    ASSERT_TRUE(c.audit().ok());

    ASSERT_TRUE(c.debugCorruptLmt(13));
    const auto r = c.audit();
    EXPECT_FALSE(r.ok()) << "auditor missed an injected broken LMT";
    EXPECT_GE(r.violations(), 1u);
}

TEST(Auditor, DetectsInjectedLmtCorruptionUnlimitedMeta)
{
    core::MorcConfig cfg;
    cfg.unlimitedMeta = true;
    core::LogCache c(cfg);
    Rng rng(14);
    for (Addr a = 0; a < 4000; a++)
        c.insert(a << kLineShift, fuzzLine(rng, 0xaa), false);
    ASSERT_TRUE(c.audit().ok());

    ASSERT_TRUE(c.debugCorruptLmt(14));
    EXPECT_FALSE(c.audit().ok());
}

TEST(Auditor, CorruptLmtOnEmptyCacheReturnsFalse)
{
    core::LogCache c;
    EXPECT_FALSE(c.debugCorruptLmt(0));
    EXPECT_TRUE(c.audit().ok());
}

/* ------------------------------------------------------------------ */
/* MORC_CHECK death semantics (only when checks are compiled in)      */
/* ------------------------------------------------------------------ */

#if MORC_CHECKS_ENABLED
TEST(MorcCheckMacroDeathTest, FailingCheckAbortsWithContext)
{
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(MORC_CHECK(1 == 2, "math broke: %d", 42),
                 "MORC_CHECK failed.*math broke: 42");
}
#endif

TEST(MorcCheckMacro, PassingCheckIsSilent)
{
    // Must compile and run in every build mode, including ones where
    // the macro expands to the unevaluated-operand form.
    MORC_CHECK(1 + 1 == 2, "arithmetic is broken");
    MORC_DCHECK(2 + 2 == 4, "arithmetic is broken");
}

} // namespace
} // namespace morc
