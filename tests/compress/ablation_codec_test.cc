/**
 * @file
 * Tests for the ablation codecs: BDI and streaming LZSS.
 */

#include <gtest/gtest.h>

#include "compress/bdi.hh"
#include "compress/lbe.hh"
#include "compress/lzss.hh"
#include "trace/value_model.hh"
#include "util/rng.hh"

namespace morc {
namespace comp {
namespace {

CacheLine
randomLine(Rng &rng)
{
    CacheLine l;
    for (unsigned i = 0; i < kWordsPerLine; i++)
        l.setWord32(i, static_cast<std::uint32_t>(rng.next()));
    return l;
}

// -------------------------------------------------------------------- BDI

TEST(Bdi, ZeroLine)
{
    EXPECT_EQ(Bdi::bestEncoding(CacheLine{}), BdiEncoding::Zero);
    EXPECT_EQ(Bdi::lineBits(CacheLine{}), Bdi::kHeaderBits);
}

TEST(Bdi, RepeatedValue)
{
    CacheLine l;
    for (unsigned i = 0; i < kLineSize / 8; i++)
        l.setWord64(i, 0xdeadbeefcafef00dull);
    EXPECT_EQ(Bdi::bestEncoding(l), BdiEncoding::Repeat64);
    EXPECT_EQ(Bdi::lineBits(l), Bdi::kHeaderBits + 64u);
}

TEST(Bdi, NarrowDeltasOverOneBase)
{
    // Pointer-array style: one 64-bit base plus small offsets.
    CacheLine l;
    for (unsigned i = 0; i < kLineSize / 8; i++)
        l.setWord64(i, 0x7fff00000000ull + i * 8);
    EXPECT_EQ(Bdi::bestEncoding(l), BdiEncoding::B8D1);
}

TEST(Bdi, FourByteBase)
{
    CacheLine l;
    for (unsigned i = 0; i < kWordsPerLine; i++)
        l.setWord32(i, 0x10000000u + i * 3);
    const auto e = Bdi::bestEncoding(l);
    EXPECT_TRUE(e == BdiEncoding::B4D1 || e == BdiEncoding::B8D2)
        << Bdi::name(e);
    EXPECT_LT(Bdi::lineBits(l), 512u);
}

TEST(Bdi, RandomDataIsUncompressed)
{
    Rng rng(3);
    for (int i = 0; i < 50; i++) {
        const CacheLine l = randomLine(rng);
        EXPECT_EQ(Bdi::bestEncoding(l), BdiEncoding::Uncompressed);
        EXPECT_EQ(Bdi::lineBits(l), Bdi::kHeaderBits + 512u);
    }
}

TEST(Bdi, BestEncodingIsMinimalAmongFitting)
{
    Rng rng(9);
    for (int i = 0; i < 300; i++) {
        CacheLine l;
        const std::uint64_t base = rng.next();
        for (unsigned w = 0; w < kLineSize / 8; w++) {
            l.setWord64(w, base + (rng.below(1u << (8 * (1 + rng.below(3))))
                                   >> rng.below(4)));
        }
        const auto best = Bdi::bestEncoding(l);
        const std::uint32_t best_bits = Bdi::encodingBits(best);
        for (auto e : {BdiEncoding::Zero, BdiEncoding::Repeat64,
                       BdiEncoding::B8D1, BdiEncoding::B8D2,
                       BdiEncoding::B8D4, BdiEncoding::B4D1,
                       BdiEncoding::B4D2, BdiEncoding::B2D1}) {
            if (Bdi::fits(l, e)) {
                ASSERT_GE(Bdi::encodingBits(e), best_bits)
                    << Bdi::name(e);
            }
        }
    }
}

// ------------------------------------------------------------------- LZSS

TEST(Lzss, RoundTripStream)
{
    LzssEncoder enc;
    LzssDecoder dec;
    BitWriter out;
    Rng rng(12);
    trace::DataProfile p;
    p.poolWordFrac = 0.5;
    p.chunk256Frac = 0.2;
    p.zeroHalfFrac = 0.2;
    trace::ValueModel vm(p);
    std::vector<CacheLine> lines;
    for (int i = 0; i < 150; i++) {
        const CacheLine l = vm.line(rng.below(64), 0);
        lines.push_back(l);
        enc.append(l, &out);
    }
    BitReader in(out);
    for (std::size_t i = 0; i < lines.size(); i++)
        ASSERT_EQ(dec.decodeLine(in), lines[i]) << "line " << i;
    EXPECT_EQ(in.remaining(), 0u);
}

TEST(Lzss, RepeatedLineIsCheap)
{
    LzssEncoder enc;
    Rng rng(5);
    const CacheLine l = randomLine(rng);
    const std::uint32_t first = enc.append(l);
    const std::uint32_t second = enc.append(l);
    EXPECT_GT(first, 512u); // literals cost 9 bits/byte
    EXPECT_LT(second, 64u); // one long back-reference
}

TEST(Lzss, MeasureMatchesAppend)
{
    LzssEncoder enc;
    Rng rng(6);
    trace::ValueModel vm(trace::DataProfile{});
    for (int i = 0; i < 60; i++) {
        const CacheLine l = vm.line(rng.below(128), 0);
        const auto m = enc.measure(l);
        ASSERT_EQ(m, enc.append(l));
    }
}

TEST(Lzss, ResetForgetsHistory)
{
    LzssEncoder enc;
    Rng rng(7);
    const CacheLine l = randomLine(rng);
    const std::uint32_t first = enc.append(l);
    enc.reset();
    EXPECT_EQ(enc.append(l), first);
}

TEST(Lzss, WindowBoundsMatches)
{
    LzssEncoder::Config cfg;
    cfg.windowBytes = 128;
    LzssEncoder enc(cfg);
    Rng rng(8);
    const CacheLine target = randomLine(rng);
    enc.append(target);
    // Push the target out of the window with fresh random data.
    for (int i = 0; i < 4; i++)
        enc.append(randomLine(rng));
    // The repeat can no longer reference it.
    EXPECT_GT(enc.append(target), 300u);
}

TEST(Lzss, UnalignedDuplicationBeatsLbe)
{
    // LZSS matches arbitrary byte offsets; LBE is restricted to aligned
    // power-of-two blocks — the paper's implementability trade-off.
    LzssEncoder lz;
    LbeEncoder lbe;
    Rng rng(10);
    CacheLine a = randomLine(rng);
    CacheLine b;
    // b = a shifted by 5 bytes: breaks every aligned match.
    for (unsigned i = 0; i < kLineSize; i++)
        b.bytes[i] = a.bytes[(i + 5) % kLineSize];
    lz.append(a);
    lbe.append(a);
    EXPECT_LT(lz.append(b), lbe.append(b));
}

} // namespace
} // namespace comp
} // namespace morc
