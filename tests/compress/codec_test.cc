/**
 * @file
 * Tests for C-Pack, FPC, the SC2 Huffman table, the tag codec, and the
 * oracle limit models.
 */

#include <gtest/gtest.h>

#include "compress/cpack.hh"
#include "compress/fpc.hh"
#include "compress/huffman.hh"
#include "compress/oracle.hh"
#include "compress/tagcodec.hh"
#include "util/rng.hh"

namespace morc {
namespace comp {
namespace {

CacheLine
randomLine(Rng &rng)
{
    CacheLine l;
    for (unsigned i = 0; i < kWordsPerLine; i++)
        l.setWord32(i, static_cast<std::uint32_t>(rng.next()));
    return l;
}

// ------------------------------------------------------------------ CPack

TEST(Cpack, ZeroLineIsTwoBitsPerWord)
{
    EXPECT_EQ(CpackEncoder::lineBits(CacheLine{}), 2u * kWordsPerLine);
}

TEST(Cpack, RepeatedWordUsesDictionary)
{
    CacheLine l;
    for (unsigned i = 0; i < kWordsPerLine; i++)
        l.setWord32(i, 0xdeadbeef);
    // First word xxxx (34 bits), remaining 15 mmmm (2 + 4 ptr bits).
    EXPECT_EQ(CpackEncoder::lineBits(l), 34u + 15u * 6u);
}

TEST(Cpack, RoundTripPerLine)
{
    Rng rng(2024);
    for (int i = 0; i < 300; i++) {
        CacheLine l;
        for (unsigned w = 0; w < kWordsPerLine; w++) {
            switch (rng.below(5)) {
              case 0: l.setWord32(w, 0); break;
              case 1: l.setWord32(w, 0x55aa0000 + rng.below(4)); break;
              case 2:
                l.setWord32(w, static_cast<std::uint32_t>(rng.below(200)));
                break;
              default:
                l.setWord32(w, static_cast<std::uint32_t>(rng.next()));
            }
        }
        CpackEncoder enc;
        CpackDecoder dec;
        BitWriter out;
        const std::uint32_t bits = enc.append(l, &out);
        EXPECT_EQ(bits, out.sizeBits());
        BitReader in(out);
        ASSERT_EQ(dec.decodeLine(in), l) << "line " << i;
    }
}

TEST(Cpack, RoundTripStreaming)
{
    CpackEncoder enc(64);
    CpackDecoder dec(64);
    BitWriter out;
    Rng rng(5);
    std::vector<CacheLine> lines;
    for (int i = 0; i < 100; i++) {
        CacheLine l;
        for (unsigned w = 0; w < kWordsPerLine; w++)
            l.setWord32(w, static_cast<std::uint32_t>(rng.below(64)) << 8);
        lines.push_back(l);
        enc.append(l, &out);
    }
    BitReader in(out);
    for (std::size_t i = 0; i < lines.size(); i++)
        ASSERT_EQ(dec.decodeLine(in), lines[i]) << i;
}

TEST(Cpack, MeasureMatchesAppendAndDoesNotMutate)
{
    CpackEncoder enc;
    Rng rng(17);
    for (int i = 0; i < 100; i++) {
        const CacheLine l = randomLine(rng);
        const std::uint32_t m = enc.measure(l);
        EXPECT_EQ(m, enc.append(l));
    }
}

TEST(Cpack, MaxCompressionBoundedByPointerOverhead)
{
    // C-Pack's 2-bit zzzz code bounds ratio at 16x per line;
    // with the standard dictionary, never below 2 bits/word.
    Rng rng(31);
    for (int i = 0; i < 100; i++) {
        CacheLine l = randomLine(rng);
        const std::uint32_t bits = CpackEncoder::lineBits(l);
        EXPECT_GE(bits, 2u * kWordsPerLine);
        EXPECT_LE(bits, 34u * kWordsPerLine);
    }
}

// -------------------------------------------------------------------- FPC

TEST(Fpc, ZeroLineUsesRuns)
{
    // 16 zero words = 2 runs of 8 = 2 * 6 bits.
    EXPECT_EQ(Fpc::lineBits(CacheLine{}), 12u);
}

TEST(Fpc, RoundTrip)
{
    Rng rng(6);
    for (int i = 0; i < 300; i++) {
        CacheLine l;
        for (unsigned w = 0; w < kWordsPerLine; w++) {
            switch (rng.below(8)) {
              case 0: l.setWord32(w, 0); break;
              case 1: l.setWord32(w, static_cast<std::uint32_t>(
                          static_cast<std::int32_t>(rng.below(15)) - 7));
                      break;
              case 2: l.setWord32(w, rng.below(200)); break;
              case 3: l.setWord32(w, rng.below(30000)); break;
              case 4: l.setWord32(w, (rng.below(60000) << 16)); break;
              case 5: l.setWord32(w, 0x01010101u *
                                         (rng.below(255) + 1)); break;
              default: l.setWord32(w, static_cast<std::uint32_t>(rng.next()));
            }
        }
        BitWriter out;
        const std::uint32_t bits = Fpc::lineBits(l, &out);
        EXPECT_EQ(bits, out.sizeBits());
        BitReader in(out);
        ASSERT_EQ(Fpc::decodeLine(in), l) << "line " << i;
    }
}

// ---------------------------------------------------------------- Huffman

TEST(Huffman, EmptyTableIsLiteral)
{
    HuffmanTable t = HuffmanTable::build({}, 16);
    EXPECT_EQ(t.bitsFor(123), 32u);
    BitWriter out;
    t.encode(0xabcdefu, out);
    EXPECT_EQ(out.sizeBits(), 32u);
    BitReader in(out);
    EXPECT_EQ(t.decode(in), 0xabcdefu);
}

TEST(Huffman, FrequentValuesGetShortCodes)
{
    std::unordered_map<std::uint32_t, std::uint64_t> freqs;
    freqs[0] = 100000;
    freqs[1] = 5000;
    freqs[2] = 100;
    freqs[3] = 1;
    HuffmanTable t = HuffmanTable::build(freqs, 16);
    EXPECT_LT(t.bitsFor(0), t.bitsFor(3));
    EXPECT_LE(t.bitsFor(0), 2u);
    // Unknown values pay escape + 32.
    EXPECT_GE(t.bitsFor(0x12345678), 33u);
}

TEST(Huffman, RoundTripManyValues)
{
    Rng rng(77);
    std::unordered_map<std::uint32_t, std::uint64_t> freqs;
    for (unsigned i = 0; i < 500; i++)
        freqs[i * 3] = rng.below(10000) + 1;
    HuffmanTable t = HuffmanTable::build(freqs, 256);

    BitWriter out;
    std::vector<std::uint32_t> values;
    for (int i = 0; i < 2000; i++) {
        const std::uint32_t v = rng.chance(0.8)
                                    ? static_cast<std::uint32_t>(
                                          rng.below(500) * 3)
                                    : static_cast<std::uint32_t>(rng.next());
        values.push_back(v);
        t.encode(v, out);
    }
    BitReader in(out);
    std::uint64_t measured = 0;
    for (std::uint32_t v : values)
        measured += t.bitsFor(v);
    EXPECT_EQ(measured, out.sizeBits());
    for (std::size_t i = 0; i < values.size(); i++)
        ASSERT_EQ(t.decode(in), values[i]) << i;
}

TEST(Huffman, SamplerTrainsAndDecays)
{
    ValueSampler sampler(64);
    CacheLine common{};
    for (unsigned i = 0; i < kWordsPerLine; i++)
        common.setWord32(i, 0xabcd);
    for (int i = 0; i < 100; i++)
        sampler.observe(common);
    HuffmanTable t = sampler.train();
    EXPECT_LE(t.bitsFor(0xabcd), 2u);
    sampler.decay();
    EXPECT_EQ(sampler.linesObserved(), 100u);
}

TEST(Huffman, SkewedWeightsRespectLengthLimit)
{
    // Fibonacci-like weights drive unbounded Huffman depth; the builder
    // must flatten them.
    std::unordered_map<std::uint32_t, std::uint64_t> freqs;
    std::uint64_t a = 1, b = 1;
    for (unsigned i = 0; i < 60; i++) {
        freqs[i] = a;
        const std::uint64_t c = a + b;
        a = b;
        b = c;
    }
    HuffmanTable t = HuffmanTable::build(freqs, 64);
    BitWriter out;
    for (unsigned i = 0; i < 60; i++)
        t.encode(i, out);
    BitReader in(out);
    for (unsigned i = 0; i < 60; i++)
        ASSERT_EQ(t.decode(in), i);
}

// --------------------------------------------------------------- TagCodec

TEST(TagDistance, TableMatchesPaper)
{
    // Table 2 rows: code values 0-3 -> distances 1-4, 0 bits.
    for (std::uint64_t d = 1; d <= 4; d++) {
        const auto dc = TagDistanceCode::forDistance(d);
        EXPECT_EQ(dc.code, d - 1);
        EXPECT_EQ(dc.precisionBits, 0u);
    }
    // Codes 4-5: distances 5-8, 1 bit.
    EXPECT_EQ(TagDistanceCode::forDistance(5).code, 4u);
    EXPECT_EQ(TagDistanceCode::forDistance(5).precisionBits, 1u);
    EXPECT_EQ(TagDistanceCode::forDistance(8).code, 5u);
    // Codes 6-7: 9-16, 2 bits.
    EXPECT_EQ(TagDistanceCode::forDistance(9).code, 6u);
    EXPECT_EQ(TagDistanceCode::forDistance(16).code, 7u);
    EXPECT_EQ(TagDistanceCode::forDistance(16).precisionBits, 2u);
    // Codes 26-27: 8193-16384, 12 bits.
    EXPECT_EQ(TagDistanceCode::forDistance(8193).code, 26u);
    EXPECT_EQ(TagDistanceCode::forDistance(16384).code, 27u);
    EXPECT_EQ(TagDistanceCode::forDistance(16384).precisionBits, 12u);
    // Codes 28-29: 16385-32768, 13 bits.
    EXPECT_EQ(TagDistanceCode::forDistance(16385).code, 28u);
    EXPECT_EQ(TagDistanceCode::forDistance(32768).code, 29u);
    EXPECT_EQ(TagDistanceCode::forDistance(32768).precisionBits, 13u);
}

TEST(TagCodec, SequentialTagsAreCheap)
{
    TagCodec codec(1);
    codec.append(1000); // new base: 5 + 42 + validity
    for (int i = 1; i <= 10; i++) {
        // delta 1 -> code 0, no precision: 1 + 5 + 1 = 7 bits.
        EXPECT_EQ(codec.append(1000 + i), 7u);
    }
}

TEST(TagCodec, TwoBasesTrackTwoStreams)
{
    TagCodec two(2);
    TagCodec one(1);
    // Interleave two distant sequential streams.
    std::uint64_t cost_two = 0, cost_one = 0;
    for (int i = 0; i < 50; i++) {
        cost_two += two.append(1000 + i);
        cost_two += two.append(900000 + i);
        cost_one += one.append(1000 + i);
        cost_one += one.append(900000 + i);
    }
    EXPECT_LT(cost_two, cost_one);
}

TEST(TagCodec, MeasureMatchesAppend)
{
    TagCodec codec(2);
    Rng rng(8);
    std::uint64_t tag = 500000;
    for (int i = 0; i < 200; i++) {
        tag += rng.below(100) - 50;
        const auto m = codec.measure(tag);
        EXPECT_EQ(m, codec.append(tag));
    }
}

TEST(TagCodec, RoundTrip)
{
    for (unsigned bases : {1u, 2u}) {
        TagCodec enc(bases);
        TagDecoder dec(bases);
        BitWriter out;
        Rng rng(bases * 13);
        std::vector<std::uint64_t> tags;
        std::uint64_t t1 = 123456, t2 = 999999999;
        for (int i = 0; i < 500; i++) {
            std::uint64_t tag;
            switch (rng.below(4)) {
              case 0: tag = (t1 += rng.below(5) + 1); break;
              case 1: tag = (t1 -= std::min<std::uint64_t>(
                                 t1, rng.below(1000))); break;
              case 2: tag = (t2 += rng.below(40000)); break;
              default: tag = rng.next() & ((1ull << 42) - 1); break;
            }
            tags.push_back(tag);
            enc.append(tag, &out);
        }
        BitReader in(out);
        for (std::size_t i = 0; i < tags.size(); i++)
            ASSERT_EQ(dec.next(in), tags[i]) << "bases=" << bases
                                             << " i=" << i;
        EXPECT_EQ(in.remaining(), 0u);
    }
}

TEST(TagCodec, SameTagTwiceFallsBackToNewBase)
{
    TagCodec codec(1);
    codec.append(42);
    // Delta of zero is not encodable; must re-emit a base.
    EXPECT_EQ(codec.append(42),
              1u + TagCodec::kCodeBits + TagCodec::kFullTagBits);
}

// ----------------------------------------------------------------- Oracle

TEST(Oracle, IntraZeroLineIsFree)
{
    EXPECT_EQ(oracleIntraBits(CacheLine{}), 0u);
}

TEST(Oracle, IntraDedupsWithinLine)
{
    CacheLine l;
    for (unsigned i = 0; i < kWordsPerLine; i++)
        l.setWord32(i, 0xcafebabe);
    EXPECT_EQ(oracleIntraBits(l), 32u); // one unique word
}

TEST(Oracle, InterDedupsAcrossLines)
{
    OracleDictionary dict;
    CacheLine a;
    for (unsigned i = 0; i < kWordsPerLine; i++)
        a.setWord32(i, 0x10000 + i);
    EXPECT_EQ(dict.interBits(a), 16u * 24u); // 3 significant bytes each
    dict.addLine(a);
    EXPECT_EQ(dict.interBits(a), 0u); // fully duplicated now
    dict.removeLine(a);
    EXPECT_EQ(dict.interBits(a), 16u * 24u);
    EXPECT_EQ(dict.distinctWords(), 0u);
}

TEST(Oracle, SignificantBytes)
{
    EXPECT_EQ(significantBytes(0), 0u);
    EXPECT_EQ(significantBytes(0xff), 1u);
    EXPECT_EQ(significantBytes(0x100), 2u);
    EXPECT_EQ(significantBytes(0xffff), 2u);
    EXPECT_EQ(significantBytes(0x10000), 3u);
    EXPECT_EQ(significantBytes(0x1000000), 4u);
}

} // namespace
} // namespace comp
} // namespace morc
