/**
 * @file
 * Property/fuzz tests for Large-Block Encoding: randomized round-trip
 * (compress -> decompress == input) over seeded adversarial streams,
 * extending lbe_test.cc's fixed-case coverage. Every stream also checks
 * the measure()==append() invariant, and streams are replayed against a
 * starved configuration so pointer-width edge cases get exercised.
 */

#include <gtest/gtest.h>

#include <vector>

#include "compress/lbe.hh"
#include "util/rng.hh"

namespace morc {
namespace comp {
namespace {

/** Adversarial line generators, selected per line by the fuzz driver. */
enum class Gen
{
    AllZero,
    AlternatingBits,   // 0xaaaa.../0x5555... interleave
    AlternatingZero,   // word-granular zero/value toggle
    TruncationEdges,   // values at the u8/u16/u32 significance edges
    RepeatedChunk,     // one 64-bit chunk tiled across the line
    NearDuplicate,     // earlier line with one word flipped
    SmallPool,         // few distinct values (dictionary-friendly)
    Random,
    NumGens
};

CacheLine
makeLine(Gen g, Rng &rng, const std::vector<CacheLine> &history)
{
    CacheLine l{};
    switch (g) {
      case Gen::AllZero:
        break;
      case Gen::AlternatingBits:
        for (unsigned w = 0; w < kWordsPerLine; w++)
            l.setWord32(w, (w & 1) ? 0xaaaaaaaau : 0x55555555u);
        break;
      case Gen::AlternatingZero: {
        const auto v = static_cast<std::uint32_t>(rng.next());
        for (unsigned w = 0; w < kWordsPerLine; w++)
            l.setWord32(w, (w & 1) ? v : 0);
        break;
      }
      case Gen::TruncationEdges: {
        // Exact u8/u16 boundaries and one-past values.
        static const std::uint32_t kEdges[] = {
            0x0,      0x1,       0xff,     0x100,
            0xffff,   0x10000,   0xffffff, 0x1000000,
            0x7f,     0x80,      0x7fff,   0x8000,
        };
        for (unsigned w = 0; w < kWordsPerLine; w++)
            l.setWord32(w, kEdges[rng.below(std::size(kEdges))]);
        break;
      }
      case Gen::RepeatedChunk: {
        const auto a = static_cast<std::uint32_t>(rng.next());
        const auto b = static_cast<std::uint32_t>(rng.next());
        for (unsigned w = 0; w < kWordsPerLine; w += 2) {
            l.setWord32(w, a);
            l.setWord32(w + 1, b);
        }
        break;
      }
      case Gen::NearDuplicate:
        if (!history.empty()) {
            l = history[rng.below(history.size())];
            l.setWord32(rng.below(kWordsPerLine),
                        static_cast<std::uint32_t>(rng.next()));
        } else {
            for (unsigned w = 0; w < kWordsPerLine; w++)
                l.setWord32(w, static_cast<std::uint32_t>(rng.next()));
        }
        break;
      case Gen::SmallPool:
        for (unsigned w = 0; w < kWordsPerLine; w++)
            l.setWord32(w, 0xfeed0000u + static_cast<std::uint32_t>(
                                             rng.below(6)));
        break;
      case Gen::Random:
      default:
        for (unsigned w = 0; w < kWordsPerLine; w++)
            l.setWord32(w, static_cast<std::uint32_t>(rng.next()));
        break;
    }
    return l;
}

/** One fuzz episode: encode a stream, then decode and compare. */
void
roundTripEpisode(std::uint64_t seed, const LbeConfig &cfg, int lines,
                 bool with_resets)
{
    LbeEncoder enc(cfg);
    LbeDecoder dec(cfg);
    BitWriter out;
    Rng rng(seed);
    std::vector<CacheLine> history;

    // Segment boundaries where both sides reset (log flush mid-stream).
    std::vector<std::size_t> resets;
    std::vector<CacheLine> stream;
    for (int i = 0; i < lines; i++) {
        if (with_resets && i > 0 && rng.chance(0.05)) {
            resets.push_back(stream.size());
            enc.reset();
            history.clear();
        }
        const auto g = static_cast<Gen>(
            rng.below(static_cast<std::uint64_t>(Gen::NumGens)));
        const CacheLine l = makeLine(g, rng, history);
        const std::uint32_t measured = enc.measure(l);
        const std::uint32_t appended = enc.append(l, &out);
        ASSERT_EQ(measured, appended)
            << "seed " << seed << " line " << i;
        history.push_back(l);
        stream.push_back(l);
    }

    BitReader in(out);
    std::size_t next_reset = 0;
    for (std::size_t i = 0; i < stream.size(); i++) {
        if (next_reset < resets.size() && resets[next_reset] == i) {
            dec.reset();
            next_reset++;
        }
        const CacheLine got = dec.decodeLine(in);
        ASSERT_EQ(got, stream[i]) << "seed " << seed << " line " << i;
    }
    EXPECT_EQ(in.remaining(), 0u) << "seed " << seed;
}

TEST(LbeProperty, RoundTripAdversarialStreams)
{
    for (std::uint64_t seed = 1; seed <= 20; seed++)
        roundTripEpisode(seed, LbeConfig{}, 250, /*with_resets=*/false);
}

TEST(LbeProperty, RoundTripWithMidStreamResets)
{
    for (std::uint64_t seed = 100; seed <= 115; seed++)
        roundTripEpisode(seed, LbeConfig{}, 250, /*with_resets=*/true);
}

TEST(LbeProperty, RoundTripStarvedDictionaries)
{
    // Tiny tables force capacity freezes and the narrowest pointers.
    LbeConfig cfg;
    cfg.dictBytes = 32;
    cfg.nodes64 = 3;
    cfg.nodes128 = 1;
    cfg.nodes256 = 1;
    for (std::uint64_t seed = 200; seed <= 212; seed++)
        roundTripEpisode(seed, cfg, 200, /*with_resets=*/true);
}

TEST(LbeProperty, MeasureNeverMutatesUnderFuzz)
{
    LbeEncoder enc;
    Rng rng(4242);
    std::vector<CacheLine> history;
    const CacheLine probe =
        makeLine(Gen::SmallPool, rng, history);
    const std::uint32_t before = enc.measure(probe);
    for (int i = 0; i < 300; i++) {
        const auto g = static_cast<Gen>(
            rng.below(static_cast<std::uint64_t>(Gen::NumGens)));
        enc.measure(makeLine(g, rng, history));
    }
    EXPECT_EQ(enc.measure(probe), before);
}

TEST(LbeProperty, PlanBasedTrialsMatchIndependentMeasures)
{
    // The multi-log insert path computes one LbeLinePlan per line and
    // scores it against all active logs. Plan-based trials must equal
    // fresh per-call measure()/append() results on every encoder, no
    // matter how the dictionaries have diverged.
    constexpr int kLogs = 8;
    std::vector<LbeEncoder> encs(kLogs);
    Rng rng(9001);
    std::vector<CacheLine> history;
    for (int i = 0; i < 400; i++) {
        const auto g = static_cast<Gen>(
            rng.below(static_cast<std::uint64_t>(Gen::NumGens)));
        const CacheLine l = makeLine(g, rng, history);
        history.push_back(l);
        const LbeLinePlan plan = LbeLinePlan::of(l);
        for (int e = 0; e < kLogs; e++) {
            const std::uint32_t via_plan = encs[e].measure(plan);
            const std::uint32_t via_line = encs[e].measure(l);
            ASSERT_EQ(via_plan, via_line)
                << "line " << i << " encoder " << e;
        }
        // Commit to one encoder through the plan overload, like the
        // insert path does, diverging the dictionaries.
        const int pick = static_cast<int>(rng.below(kLogs));
        const std::uint32_t measured = encs[pick].measure(plan);
        ASSERT_EQ(encs[pick].append(plan), measured)
            << "line " << i << " encoder " << pick;
    }
}

TEST(LbeProperty, PlanAppendRoundTripsThroughDecoder)
{
    LbeConfig cfg;
    LbeEncoder enc(cfg);
    LbeDecoder dec(cfg);
    BitWriter out;
    Rng rng(9002);
    std::vector<CacheLine> history;
    std::vector<CacheLine> stream;
    for (int i = 0; i < 300; i++) {
        const auto g = static_cast<Gen>(
            rng.below(static_cast<std::uint64_t>(Gen::NumGens)));
        const CacheLine l = makeLine(g, rng, history);
        enc.append(LbeLinePlan::of(l), &out);
        history.push_back(l);
        stream.push_back(l);
    }
    BitReader in(out);
    for (std::size_t i = 0; i < stream.size(); i++)
        ASSERT_EQ(dec.decodeLine(in), stream[i]) << "line " << i;
    EXPECT_EQ(in.remaining(), 0u);
}

TEST(LbeProperty, TrialStatsMatchCommittedStats)
{
    // A trial (measure with stats) must record exactly the symbol mix
    // the subsequent append() commits — the simulator's Figure 7
    // distribution is aggregated from committed stats, but the trial
    // path must agree or the two code paths have diverged.
    LbeEncoder enc;
    Rng rng(9003);
    std::vector<CacheLine> history;
    for (int i = 0; i < 400; i++) {
        const auto g = static_cast<Gen>(
            rng.below(static_cast<std::uint64_t>(Gen::NumGens)));
        const CacheLine l = makeLine(g, rng, history);
        history.push_back(l);
        LbeStats trial;
        const std::uint32_t measured = enc.measure(l, &trial);
        const LbeStats before = enc.stats();
        const std::uint32_t appended = enc.append(l);
        ASSERT_EQ(measured, appended) << "line " << i;
        LbeStats expected = before;
        constexpr int kNumSymbols =
            static_cast<int>(LbeSymbol::NumSymbols);
        for (int s = 0; s < kNumSymbols; s++) {
            expected.count[s] += trial.count[s];
            expected.zeroCount[s] += trial.zeroCount[s];
        }
        ASSERT_EQ(enc.stats(), expected) << "line " << i;
    }
}

TEST(LbeProperty, ZeroRunsStayWithinZeroSymbolBudget)
{
    // All-zero input must cost at most two z256 symbols per line no
    // matter what preceded it.
    LbeEncoder enc;
    Rng rng(7);
    std::vector<CacheLine> history;
    for (int i = 0; i < 50; i++) {
        const auto g = static_cast<Gen>(
            rng.below(static_cast<std::uint64_t>(Gen::NumGens)));
        enc.append(makeLine(g, rng, history));
        EXPECT_EQ(enc.measure(CacheLine{}), 10u) << "iteration " << i;
    }
}

} // namespace
} // namespace comp
} // namespace morc
