/**
 * @file
 * Differential tests for the SIMD kernels behind the LBE hot path and
 * for the encoder built on them. Every kernel (findU32, findU64,
 * zeroMask8, hashFind8) is exercised at every dispatch level the host
 * supports — pinned via the simd::forceLevel test hook — against an
 * independent scalar reference written here, on adversarial inputs:
 * empty/odd-sized arrays, keys at every position, duplicates (first
 * match must win), vector-width boundaries, hash groups overflowing
 * into their neighbors. The full encoder is then run at each level over
 * adversarial line streams (all-zero, all-match, dictionary-full,
 * u8/u16-truncatable, chunk-boundary patterns) and must produce
 * bit-identical streams, identical trial scores, and identical symbol
 * statistics. Under -DMORC_FORCE_SCALAR=ON the level loop collapses to
 * scalar-only and the same goldens must still hold, which the CI matrix
 * checks.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "compress/lbe.hh"
#include "util/bitstream.hh"
#include "util/rng.hh"
#include "util/simd.hh"

namespace morc {
namespace {

/** Dispatch levels this binary + host can actually run. */
std::vector<simd::Level>
supportedLevels()
{
    std::vector<simd::Level> out;
    for (simd::Level l :
         {simd::Level::Scalar, simd::Level::Sse2, simd::Level::Avx2}) {
        if (simd::forceLevel(l) == l)
            out.push_back(l);
    }
    simd::resetLevel();
    return out;
}

/** Pin a dispatch level for one scope; always restores on exit. */
class ScopedLevel
{
  public:
    explicit ScopedLevel(simd::Level l)
    {
        EXPECT_EQ(simd::forceLevel(l), l);
    }
    ~ScopedLevel() { simd::resetLevel(); }
};

// ---------------------------------------------------------------------
// Kernel-level differentials
// ---------------------------------------------------------------------

int
refFindU32(const std::vector<std::uint32_t> &a, std::uint32_t key)
{
    for (std::size_t i = 0; i < a.size(); i++) {
        if (a[i] == key)
            return static_cast<int>(i);
    }
    return -1;
}

int
refFindU64(const std::vector<std::uint64_t> &a, std::uint64_t key)
{
    for (std::size_t i = 0; i < a.size(); i++) {
        if (a[i] == key)
            return static_cast<int>(i);
    }
    return -1;
}

TEST(LbeSimdEquiv, FindU32AllLevelsAllPositions)
{
    Rng rng(11);
    // Sizes straddling both vector widths (4 x u32 for SSE2, 8 for
    // AVX2), including the empty array and non-multiple tails.
    for (std::size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 15u, 16u,
                          17u, 31u, 33u, 127u}) {
        std::vector<std::uint32_t> a(n);
        for (auto &v : a)
            v = static_cast<std::uint32_t>(rng.next());
        if (n >= 8) {
            a[n / 2] = a[1]; // duplicate: first match must win
            a[n - 1] = a[0];
        }
        std::vector<std::uint32_t> keys;
        for (std::size_t i = 0; i < n; i++)
            keys.push_back(a[i]);
        keys.push_back(0xdeadbeefu); // absent (vanishing collision odds)
        keys.push_back(0);
        for (std::uint32_t key : keys) {
            const int want = refFindU32(a, key);
            for (simd::Level l : supportedLevels()) {
                ScopedLevel scope(l);
                EXPECT_EQ(simd::findU32(a.data(), n, key), want)
                    << "n=" << n << " key=" << key << " level "
                    << simd::levelName(l);
            }
        }
    }
}

TEST(LbeSimdEquiv, FindU64AllLevelsAllPositions)
{
    Rng rng(13);
    for (std::size_t n :
         {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 16u, 17u, 63u}) {
        std::vector<std::uint64_t> a(n);
        for (auto &v : a)
            v = rng.next();
        if (n >= 4) {
            a[n / 2] = a[0]; // duplicate: first match must win
            a[n - 1] = a[1];
        }
        std::vector<std::uint64_t> keys(a);
        keys.push_back(0x0123456789abcdefull);
        keys.push_back(0);
        for (std::uint64_t key : keys) {
            const int want = refFindU64(a, key);
            for (simd::Level l : supportedLevels()) {
                ScopedLevel scope(l);
                EXPECT_EQ(simd::findU64(a.data(), n, key), want)
                    << "n=" << n << " key=" << key << " level "
                    << simd::levelName(l);
            }
        }
    }
}

TEST(LbeSimdEquiv, ZeroMask8AllPatternsAllLevels)
{
    Rng rng(17);
    // All 256 zero/nonzero lane patterns.
    for (unsigned pattern = 0; pattern < 256; pattern++) {
        std::uint32_t w[8];
        for (unsigned i = 0; i < 8; i++) {
            if ((pattern >> i) & 1) {
                w[i] = 0;
            } else {
                std::uint32_t v;
                do {
                    v = static_cast<std::uint32_t>(rng.next());
                } while (v == 0);
                w[i] = v;
            }
        }
        for (simd::Level l : supportedLevels()) {
            ScopedLevel scope(l);
            EXPECT_EQ(simd::zeroMask8(w), pattern)
                << "level " << simd::levelName(l);
        }
    }
}

/**
 * Test-side mirror of the encoder's hash-table insertion discipline:
 * home group by Fibonacci hash, first empty slot scanning groups in
 * sequence (hashFind8's documented contract).
 */
struct RefHashTable
{
    std::vector<std::uint32_t> slots;
    unsigned groupsLog2;

    explicit RefHashTable(unsigned groups_log2)
        : slots(std::size_t{8} << groups_log2, 0), groupsLog2(groups_log2)
    {}

    void
    insert(std::uint32_t v)
    {
        ASSERT_NE(v, 0u);
        const unsigned gmask = (1u << groupsLog2) - 1;
        unsigned g = simd::hashGroup(v, groupsLog2);
        for (unsigned probes = 0; probes <= gmask; probes++) {
            for (unsigned k = 0; k < 8; k++) {
                if (slots[std::size_t{g} * 8 + k] == 0) {
                    slots[std::size_t{g} * 8 + k] = v;
                    return;
                }
            }
            g = (g + 1) & gmask;
        }
        FAIL() << "table full";
    }

    /** Reference probe implementing the documented group semantics. */
    int
    find(std::uint32_t v) const
    {
        const unsigned gmask = (1u << groupsLog2) - 1;
        unsigned g = simd::hashGroup(v, groupsLog2);
        for (unsigned probes = 0; probes <= gmask; probes++) {
            bool empty = false;
            for (unsigned k = 0; k < 8; k++) {
                const std::size_t s = std::size_t{g} * 8 + k;
                if (slots[s] == v)
                    return static_cast<int>(s);
                if (slots[s] == 0)
                    empty = true;
            }
            if (empty)
                return -1;
            g = (g + 1) & gmask;
        }
        return -1;
    }
};

/** Find @p count distinct nonzero values all hashing to @p group. */
std::vector<std::uint32_t>
valuesInGroup(unsigned group, unsigned groups_log2, unsigned count)
{
    std::vector<std::uint32_t> out;
    for (std::uint32_t v = 1; out.size() < count; v++) {
        if (simd::hashGroup(v, groups_log2) == group)
            out.push_back(v);
    }
    return out;
}

void
checkHashFind8(const RefHashTable &t, const std::uint32_t *w,
               unsigned skip)
{
    int want[8];
    for (unsigned i = 0; i < 8; i++)
        want[i] = ((skip >> i) & 1) ? 123456 : t.find(w[i]);
    for (simd::Level l : supportedLevels()) {
        ScopedLevel scope(l);
        int got[8];
        for (int &g : got)
            g = 123456; // skipped lanes must stay untouched
        simd::hashFind8(t.slots.data(), t.groupsLog2, w, skip, got);
        for (unsigned i = 0; i < 8; i++) {
            EXPECT_EQ(got[i], want[i])
                << "lane " << i << " skip=" << skip << " level "
                << simd::levelName(l);
        }
    }
}

TEST(LbeSimdEquiv, HashFind8PresentAbsentAllLevels)
{
    RefHashTable t(3); // 8 groups x 8 slots
    std::vector<std::uint32_t> vals;
    Rng rng(23);
    while (vals.size() < 20) { // < 50% load, like the encoder
        const auto v = static_cast<std::uint32_t>(rng.next());
        if (v != 0 && refFindU32(vals, v) < 0)
            vals.push_back(v);
    }
    for (std::uint32_t v : vals)
        t.insert(v);

    std::uint32_t w[8];
    for (unsigned i = 0; i < 8; i++)
        w[i] = vals[i];
    checkHashFind8(t, w, 0); // all present
    for (unsigned i = 0; i < 8; i++)
        w[i] = (i & 1) ? vals[10 + i] : 0xfeedf00du + i;
    checkHashFind8(t, w, 0); // present/absent mix
    checkHashFind8(t, w, 0xa5); // skip-mask lanes stay untouched
    checkHashFind8(t, w, 0xff); // fully skipped call
}

TEST(LbeSimdEquiv, HashFind8GroupOverflowProbesNeighbor)
{
    // 4 groups x 8 slots; 11 values homed in group 1 overflow into
    // groups 2 and 3. Probes must follow the same trail, and an absent
    // value homed in the full group 1 must keep probing until it sees
    // an empty slot (group 3) rather than concluding absence early.
    const unsigned kLog2 = 2;
    RefHashTable t(kLog2);
    const std::vector<std::uint32_t> vals = valuesInGroup(1, kLog2, 12);
    for (unsigned i = 0; i + 1 < vals.size(); i++)
        t.insert(vals[i]); // 11 inserted, the 12th stays absent

    std::uint32_t w[8];
    for (unsigned i = 0; i < 8; i++)
        w[i] = vals[i];
    checkHashFind8(t, w, 0); // hits in home group and overflow groups
    w[0] = vals[8];
    w[1] = vals[9];
    w[2] = vals[10];
    w[3] = vals[11]; // absent, home group full: must probe onward
    checkHashFind8(t, w, 0);
}

TEST(LbeSimdEquiv, HashFind8SingleGroupTable)
{
    RefHashTable t(0); // groupsLog2 = 0: one group, wraps to itself
    t.insert(7);
    t.insert(9);
    const std::uint32_t w[8] = {7, 9, 8, 7, 0x7777u, 9, 1, 2};
    checkHashFind8(t, w, 0);
    checkHashFind8(t, w, 0x42);
}

// ---------------------------------------------------------------------
// Full-encoder differential across dispatch levels
// ---------------------------------------------------------------------

/**
 * Deterministic adversarial stream: all-zero lines, self-similar lines
 * that match at every granularity, u8/u16-truncatable words, values
 * straddling 64/128/256-bit chunk boundaries, and enough distinct
 * random words to drive the dictionary to capacity and keep it there.
 */
std::vector<CacheLine>
adversarialStream(std::uint64_t seed, int lines)
{
    Rng rng(seed);
    std::vector<CacheLine> out;
    std::vector<CacheLine> history;
    for (int n = 0; n < lines; n++) {
        CacheLine l{};
        switch (n % 7) {
          case 0: // all zero
            break;
          case 1: { // one 64-bit pattern tiled: m64/m128/m256 ladders
            const auto a = static_cast<std::uint32_t>(rng.next());
            const auto b = static_cast<std::uint32_t>(rng.next());
            for (unsigned w = 0; w < kWordsPerLine; w += 2) {
                l.setWord32(w, a);
                l.setWord32(w + 1, b);
            }
            break;
          }
          case 2: { // u8/u16/u32 significance edges
            static const std::uint32_t kEdges[] = {
                0x1,    0xff,     0x100,     0xffff,
                0x10000, 0xffffff, 0x1000000, 0xffffffff,
            };
            for (unsigned w = 0; w < kWordsPerLine; w++)
                l.setWord32(w, kEdges[rng.below(std::size(kEdges))]);
            break;
          }
          case 3: // exact replay of an earlier line (all-match path)
            if (!history.empty()) {
                l = history[rng.below(history.size())];
                break;
            }
            [[fallthrough]];
          case 4: { // zero/nonzero straddling each chunk boundary
            const auto v = static_cast<std::uint32_t>(rng.next());
            for (unsigned w = 0; w < kWordsPerLine; w++)
                l.setWord32(w, ((w / 2) & 1) ? v + w : 0);
            break;
          }
          case 5: // small value pool (dictionary- and node-friendly)
            for (unsigned w = 0; w < kWordsPerLine; w++) {
                l.setWord32(w, 0xabcd0000u + static_cast<std::uint32_t>(
                                                 rng.below(5)));
            }
            break;
          default: // distinct random words: fills the dictionary
            for (unsigned w = 0; w < kWordsPerLine; w++)
                l.setWord32(w, static_cast<std::uint32_t>(rng.next()));
            break;
        }
        history.push_back(l);
        out.push_back(l);
    }
    return out;
}

/** Everything a dispatch level could possibly influence. */
struct EncodeRun
{
    std::vector<std::uint32_t> trialScores;
    std::vector<std::uint32_t> appendBits;
    std::vector<std::uint64_t> streamWords;
    std::uint64_t streamBits = 0;
    comp::LbeStats trialStats;
    comp::LbeStats commitStats;
};

EncodeRun
runStream(const std::vector<CacheLine> &stream, const comp::LbeConfig &cfg)
{
    EncodeRun r;
    comp::LbeEncoder enc(cfg);
    BitWriter out;
    for (const CacheLine &l : stream) {
        r.trialScores.push_back(enc.measure(l, &r.trialStats));
        r.appendBits.push_back(enc.append(l, &out));
    }
    r.streamWords = out.words();
    r.streamBits = out.sizeBits();
    r.commitStats = enc.stats();
    return r;
}

TEST(LbeSimdEquiv, EncoderBitIdenticalAcrossLevels)
{
    // 800 lines of the mixed stream drive the 127-entry dictionary to
    // capacity many times over, so the full-dictionary path is covered.
    const std::vector<CacheLine> stream = adversarialStream(31, 800);
    const std::vector<simd::Level> levels = supportedLevels();
    ASSERT_FALSE(levels.empty());

    std::vector<EncodeRun> runs;
    for (simd::Level l : levels) {
        ScopedLevel scope(l);
        runs.push_back(runStream(stream, comp::LbeConfig{}));
    }
    for (std::size_t i = 1; i < runs.size(); i++) {
        SCOPED_TRACE(std::string("level ") +
                     simd::levelName(levels[i]) + " vs " +
                     simd::levelName(levels[0]));
        EXPECT_EQ(runs[i].trialScores, runs[0].trialScores);
        EXPECT_EQ(runs[i].appendBits, runs[0].appendBits);
        EXPECT_EQ(runs[i].streamBits, runs[0].streamBits);
        EXPECT_EQ(runs[i].streamWords, runs[0].streamWords);
        EXPECT_EQ(runs[i].trialStats, runs[0].trialStats);
        EXPECT_EQ(runs[i].commitStats, runs[0].commitStats);
    }
}

TEST(LbeSimdEquiv, EncoderBitIdenticalAcrossLevelsStarvedConfig)
{
    // Tiny tables: capacity freezes and the narrowest pointer widths.
    comp::LbeConfig cfg;
    cfg.dictBytes = 32;
    cfg.nodes64 = 3;
    cfg.nodes128 = 1;
    cfg.nodes256 = 1;
    const std::vector<CacheLine> stream = adversarialStream(37, 400);
    const std::vector<simd::Level> levels = supportedLevels();
    ASSERT_FALSE(levels.empty());

    std::vector<EncodeRun> runs;
    for (simd::Level l : levels) {
        ScopedLevel scope(l);
        runs.push_back(runStream(stream, cfg));
    }
    for (std::size_t i = 1; i < runs.size(); i++) {
        SCOPED_TRACE(std::string("level ") +
                     simd::levelName(levels[i]) + " vs " +
                     simd::levelName(levels[0]));
        EXPECT_EQ(runs[i].trialScores, runs[0].trialScores);
        EXPECT_EQ(runs[i].streamWords, runs[0].streamWords);
        EXPECT_EQ(runs[i].commitStats, runs[0].commitStats);
    }
}

TEST(LbeSimdEquiv, ForceLevelClampsAndReports)
{
    const simd::Level best = simd::bestSupported();
    EXPECT_EQ(simd::forceLevel(best), best);
    // Scalar is always available.
    EXPECT_EQ(simd::forceLevel(simd::Level::Scalar),
              simd::Level::Scalar);
    EXPECT_EQ(simd::activeLevel(), simd::Level::Scalar);
    simd::resetLevel();
    // After reset, dispatch resolves to something the host supports.
    EXPECT_LE(static_cast<int>(simd::activeLevel()),
              static_cast<int>(best));
}

} // namespace
} // namespace morc
