/**
 * @file
 * Unit and property tests for Large-Block Encoding.
 */

#include <gtest/gtest.h>

#include "compress/lbe.hh"
#include "util/rng.hh"

namespace morc {
namespace comp {
namespace {

CacheLine
lineOfWords(std::uint32_t w)
{
    CacheLine l;
    for (unsigned i = 0; i < kWordsPerLine; i++)
        l.setWord32(i, w);
    return l;
}

CacheLine
randomLine(Rng &rng)
{
    CacheLine l;
    for (unsigned i = 0; i < kWordsPerLine; i++)
        l.setWord32(i, static_cast<std::uint32_t>(rng.next()));
    return l;
}

TEST(Lbe, ZeroLineCompressesToTwoZ256)
{
    LbeEncoder enc;
    const CacheLine zero{};
    // Two 256-bit chunks, each a 5-bit z256 symbol.
    EXPECT_EQ(enc.measure(zero), 10u);
    EXPECT_EQ(enc.append(zero), 10u);
    EXPECT_EQ(enc.stats().count[static_cast<int>(LbeSymbol::Z256)], 2u);
}

TEST(Lbe, MeasureMatchesAppend)
{
    LbeEncoder enc;
    Rng rng(42);
    for (int i = 0; i < 200; i++) {
        CacheLine l = randomLine(rng);
        // Sprinkle structure: zero some words, duplicate others.
        for (unsigned w = 0; w < kWordsPerLine; w++) {
            if (rng.chance(0.3))
                l.setWord32(w, 0);
            else if (rng.chance(0.3))
                l.setWord32(w, l.word32(rng.below(kWordsPerLine)));
        }
        const std::uint32_t measured = enc.measure(l);
        const std::uint32_t appended = enc.append(l);
        ASSERT_EQ(measured, appended) << "line " << i;
    }
}

TEST(Lbe, MeasureDoesNotMutate)
{
    LbeEncoder enc;
    Rng rng(7);
    const CacheLine probe = randomLine(rng);
    const std::uint32_t before = enc.measure(probe);
    for (int i = 0; i < 50; i++)
        enc.measure(randomLine(rng));
    EXPECT_EQ(enc.measure(probe), before);
}

TEST(Lbe, RepeatedLineMatchesAtLargeGranularity)
{
    LbeEncoder enc;
    Rng rng(1);
    const CacheLine l = randomLine(rng);
    enc.append(l);
    // Second copy: both chunks match m256 (code 5 bits + pointer).
    const std::uint32_t second = enc.append(l);
    EXPECT_EQ(second, 2u * (5u + enc.config().ptrBits256()));
    EXPECT_EQ(enc.stats().count[static_cast<int>(LbeSymbol::M256)], 2u);
}

TEST(Lbe, IncompressibleCostsBoundedOverhead)
{
    LbeEncoder enc;
    Rng rng(3);
    const CacheLine l = randomLine(rng);
    const std::uint32_t bits = enc.append(l);
    // 16 unique random words: at worst u32 each = 16 * 34 = 544.
    EXPECT_LE(bits, 16u * 34u);
    EXPECT_GE(bits, 16u * 32u); // can't beat entropy of random data
}

TEST(Lbe, SmallValuesUseTruncatedSymbols)
{
    LbeEncoder enc;
    CacheLine l{};
    l.setWord32(0, 0x7f);    // u8
    l.setWord32(1, 0x1234);  // u16
    l.setWord32(2, 0x123456); // u32 (3 significant bytes still u32)
    enc.append(l);
    EXPECT_EQ(enc.stats().count[static_cast<int>(LbeSymbol::U8)], 1u);
    EXPECT_EQ(enc.stats().count[static_cast<int>(LbeSymbol::U16)], 1u);
    EXPECT_EQ(enc.stats().count[static_cast<int>(LbeSymbol::U32)], 1u);
}

TEST(Lbe, ResetForgetsDictionary)
{
    LbeEncoder enc;
    Rng rng(11);
    const CacheLine l = randomLine(rng);
    const std::uint32_t first = enc.append(l);
    enc.reset();
    EXPECT_EQ(enc.append(l), first);
}

TEST(Lbe, RoundTripStream)
{
    LbeEncoder enc;
    LbeDecoder dec;
    BitWriter out;
    Rng rng(1234);
    std::vector<CacheLine> lines;
    for (int i = 0; i < 300; i++) {
        CacheLine l;
        switch (rng.below(5)) {
          case 0:
            l = CacheLine{};
            break;
          case 1:
            l = lineOfWords(static_cast<std::uint32_t>(rng.below(100)));
            break;
          case 2:
            l = randomLine(rng);
            break;
          case 3:
            // Mixed zeros and small pool values.
            for (unsigned w = 0; w < kWordsPerLine; w++) {
                l.setWord32(w, rng.chance(0.5)
                                   ? 0
                                   : static_cast<std::uint32_t>(
                                         0xdead0000 + rng.below(16)));
            }
            break;
          default:
            // Re-use an earlier line to exercise m64..m256.
            l = lines.empty() ? randomLine(rng)
                              : lines[rng.below(lines.size())];
            break;
        }
        lines.push_back(l);
        enc.append(l, &out);
    }
    BitReader in(out);
    for (std::size_t i = 0; i < lines.size(); i++) {
        const CacheLine got = dec.decodeLine(in);
        ASSERT_EQ(got, lines[i]) << "line " << i;
    }
    EXPECT_EQ(in.remaining(), 0u);
}

TEST(Lbe, DictionaryFreezesAtCapacity)
{
    LbeConfig cfg;
    cfg.dictBytes = 32; // 8 entries => 7 insertable values
    LbeEncoder enc(cfg);
    Rng rng(5);
    for (int i = 0; i < 20; i++)
        enc.append(randomLine(rng));
    EXPECT_LT(enc.dictSize(), cfg.entries32());
}

TEST(Lbe, RoundTripTinyDictionary)
{
    LbeConfig cfg;
    cfg.dictBytes = 32;
    cfg.nodes64 = 3;
    cfg.nodes128 = 3;
    cfg.nodes256 = 3;
    LbeEncoder enc(cfg);
    LbeDecoder dec(cfg);
    BitWriter out;
    Rng rng(99);
    std::vector<CacheLine> lines;
    for (int i = 0; i < 200; i++) {
        CacheLine l;
        for (unsigned w = 0; w < kWordsPerLine; w++)
            l.setWord32(w, static_cast<std::uint32_t>(rng.below(12)) * 3u);
        lines.push_back(l);
        enc.append(l, &out);
    }
    BitReader in(out);
    for (std::size_t i = 0; i < lines.size(); i++)
        ASSERT_EQ(dec.decodeLine(in), lines[i]) << "line " << i;
}

/** Property sweep: round-trip holds across value-structure regimes. */
class LbeSweep : public ::testing::TestWithParam<std::tuple<double, double,
                                                            unsigned>>
{};

TEST_P(LbeSweep, RoundTripAndSizeSanity)
{
    const double zero_frac = std::get<0>(GetParam());
    const double dup_frac = std::get<1>(GetParam());
    const unsigned pool = std::get<2>(GetParam());

    LbeEncoder enc;
    LbeDecoder dec;
    BitWriter out;
    Rng rng(splitmix64(pool) ^ 77);
    std::vector<std::uint32_t> values;
    for (unsigned i = 0; i < pool; i++)
        values.push_back(static_cast<std::uint32_t>(rng.next()));

    std::vector<CacheLine> lines;
    std::uint64_t total_bits = 0;
    for (int i = 0; i < 100; i++) {
        CacheLine l;
        for (unsigned w = 0; w < kWordsPerLine; w++) {
            if (rng.chance(zero_frac))
                l.setWord32(w, 0);
            else if (rng.chance(dup_frac))
                l.setWord32(w, values[rng.below(pool)]);
            else
                l.setWord32(w, static_cast<std::uint32_t>(rng.next()));
        }
        lines.push_back(l);
        total_bits += enc.append(l, &out);
    }
    BitReader in(out);
    for (std::size_t i = 0; i < lines.size(); i++)
        ASSERT_EQ(dec.decodeLine(in), lines[i]) << "line " << i;

    // Size sanity: higher redundancy must not cost more than the
    // incompressible bound.
    EXPECT_LE(total_bits, 100ull * (16 * 34 + 16));
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, LbeSweep,
    ::testing::Combine(::testing::Values(0.0, 0.3, 0.8),
                       ::testing::Values(0.0, 0.5, 0.95),
                       ::testing::Values(4u, 64u, 1024u)));

} // namespace
} // namespace comp
} // namespace morc
