/**
 * @file
 * Property/fuzz tests for the Touché signature codec: randomized
 * round-trip (append -> decode == appended sequence) over seeded
 * adversarial streams, measure/append agreement, mid-stream snapshot
 * continuation, and statistical bounds on the signature hash itself —
 * the false-positive rate is a design parameter (~1/2^8 per compare),
 * so both "rare enough to be a cache" and "common enough that the
 * verify path actually runs" are asserted.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "compress/sigcodec.hh"
#include "snapshot/snapshot.hh"
#include "util/bitstream.hh"
#include "util/rng.hh"

namespace morc {
namespace comp {
namespace {

/** Signature streams as a real cache emits them: runs of repeats
 *  (sibling lines compressed alike), bursts of fresh literals, and
 *  occasional revisits of an earlier value that must NOT be treated as
 *  a repeat unless adjacent. */
std::vector<std::uint16_t>
adversarialStream(std::uint64_t seed, int entries)
{
    Rng rng(seed);
    std::vector<std::uint16_t> sigs;
    std::uint64_t line = rng.next() >> 20;
    while (static_cast<int>(sigs.size()) < entries) {
        switch (rng.below(4)) {
          case 0: // run of identical signatures (repeat-flag path)
          {
            const std::uint16_t s = SigCodec::signatureOf(line++);
            for (std::uint64_t i = rng.below(6) + 1; i > 0; i--)
                sigs.push_back(s);
            break;
          }
          case 1: // neighboring lines of one superblock
            for (unsigned i = 0; i < 4; i++)
                sigs.push_back(SigCodec::signatureOf(line + i));
            line += 4;
            break;
          case 2: // revisit an old signature non-adjacently
            if (sigs.size() > 2) {
                sigs.push_back(sigs[rng.below(sigs.size() - 1)]);
                break;
            }
            [[fallthrough]];
          default: // fresh pseudo-random line
            line = rng.next() >> 20;
            sigs.push_back(SigCodec::signatureOf(line));
        }
    }
    sigs.resize(entries);
    return sigs;
}

TEST(SigCodecProperty, RoundTripAdversarialStreams)
{
    for (std::uint64_t seed = 1; seed <= 40; seed++) {
        const auto sigs = adversarialStream(seed, 600);
        SigCodec enc;
        BitWriter out;
        std::uint64_t bits = 0;
        for (const std::uint16_t s : sigs) {
            const std::uint32_t measured = enc.measure(s);
            const std::uint32_t appended = enc.append(s, &out);
            ASSERT_EQ(measured, appended)
                << "measure/append disagree at seed " << seed;
            bits += appended;
        }
        ASSERT_EQ(bits, out.sizeBits());
        SigDecoder dec;
        BitReader in(out);
        for (std::size_t i = 0; i < sigs.size(); i++)
            ASSERT_EQ(dec.next(in), sigs[i])
                << "seed " << seed << " entry " << i;
        EXPECT_EQ(in.remaining(), 0u);
    }
}

TEST(SigCodecProperty, ResetForgetsRepeatContext)
{
    SigCodec enc;
    BitWriter out;
    enc.append(0x5a, &out);
    EXPECT_EQ(enc.measure(0x5a), 1u); // repeat
    enc.reset();
    EXPECT_EQ(enc.measure(0x5a), 1u + SigCodec::kSignatureBits);
}

TEST(SigCodecProperty, SnapshotContinuesStreamExactly)
{
    const auto sigs = adversarialStream(99, 400);
    SigCodec ref;
    BitWriter refOut;
    for (std::size_t i = 0; i < sigs.size(); i++)
        ref.append(sigs[i], &refOut);

    // Encode half, snapshot, continue in a restored twin: the twin's
    // continuation bits must equal the uninterrupted encoder's.
    SigCodec first;
    BitWriter head;
    for (std::size_t i = 0; i < sigs.size() / 2; i++)
        first.append(sigs[i], &head);
    snap::Serializer s;
    first.save(s);
    SigCodec resumed;
    snap::Deserializer d(s.frame());
    resumed.restore(d);
    ASSERT_TRUE(d.ok());
    EXPECT_EQ(resumed.repeatCount(), first.repeatCount());
    EXPECT_EQ(resumed.literalCount(), first.literalCount());
    BitWriter tail = head;
    for (std::size_t i = sigs.size() / 2; i < sigs.size(); i++)
        resumed.append(sigs[i], &tail);
    ASSERT_EQ(tail.sizeBits(), refOut.sizeBits());
    EXPECT_EQ(tail.words(), refOut.words());
}

TEST(SigCodecProperty, RestoreRejectsOutOfRangeLiteral)
{
    snap::Serializer s;
    s.beginSection("SIGC");
    s.boolean(true);
    s.u32(1u << SigCodec::kSignatureBits); // one past the top
    s.u64(0);
    s.u64(0);
    s.endSection();
    SigCodec c;
    snap::Deserializer d(s.frame());
    c.restore(d);
    EXPECT_FALSE(d.ok());
}

TEST(SigCodecProperty, FalsePositiveRateNearDesignPoint)
{
    // Pairwise collision probability of two *distinct* line numbers.
    // Expected 1/256 (~0.39%); a broken fold (e.g. only low bits used)
    // shows up as a rate far above, a widened signature as ~0.
    Rng rng(0xface);
    const int trials = 200'000;
    int collisions = 0;
    for (int i = 0; i < trials; i++) {
        const std::uint64_t a = rng.next() >> 10;
        const std::uint64_t b = a + 1 + rng.below(1 << 20);
        if (SigCodec::signatureOf(a) == SigCodec::signatureOf(b))
            collisions++;
    }
    const double rate = double(collisions) / trials;
    EXPECT_GT(rate, 0.5 / 256.0) << "verify path would be dead code";
    EXPECT_LT(rate, 2.0 / 256.0) << "collisions far beyond design";
}

TEST(SigCodecProperty, AdjacentLinesDecorrelate)
{
    // Within one 4-line superblock every pair must be able to collide
    // (internal collisions drive the impostor-eviction path) but only
    // at the hash's design rate — neighboring line numbers must not be
    // systematically correlated. Expected per-superblock rate:
    // 1 - prod_{k=0..3}(1 - k/256) ~ 2.33%.
    const int groups = 100'000;
    int colliding = 0;
    for (int g = 0; g < groups; g++) {
        std::set<std::uint16_t> seen;
        for (unsigned i = 0; i < 4; i++)
            seen.insert(
                SigCodec::signatureOf(std::uint64_t(g) * 4 + i));
        if (seen.size() < 4)
            colliding++;
    }
    const double rate = double(colliding) / groups;
    EXPECT_GT(rate, 0.01);
    EXPECT_LT(rate, 0.05);
}

TEST(SigCodecProperty, SignatureCoversFullRange)
{
    std::set<std::uint16_t> seen;
    for (std::uint64_t n = 0; n < 4096; n++)
        seen.insert(SigCodec::signatureOf(n));
    // 4096 draws over 256 buckets: missing values mean a truncated
    // or constant hash.
    EXPECT_EQ(seen.size(), 1u << SigCodec::kSignatureBits);
}

} // namespace
} // namespace comp
} // namespace morc
