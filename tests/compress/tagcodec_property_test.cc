/**
 * @file
 * Property/fuzz tests for the base-delta tag codec: randomized
 * round-trip (append -> decode == appended sequence) over seeded
 * adversarial walks, extending codec_test.cc's fixed cases. The walks
 * deliberately dwell on near-tie cases: distances at the code-range
 * boundaries, deltas straddling kMaxDelta (delta vs new-base tie),
 * repeated tags (distance 0), and interleaved chains that thrash the
 * base LRU.
 */

#include <gtest/gtest.h>

#include <vector>

#include "compress/tagcodec.hh"
#include "util/rng.hh"

namespace morc {
namespace comp {
namespace {

/** Distances that sit on encoding boundaries ("near-tie" deltas). */
const std::uint64_t kEdgeDistances[] = {
    1, 2, 3, 4, 5, 8, 9, 16, 17, 32, 33,
    TagCodec::kMaxDelta - 1, TagCodec::kMaxDelta,
    TagCodec::kMaxDelta + 1, // forces a new base
    2 * TagCodec::kMaxDelta,
};

std::vector<std::uint64_t>
adversarialWalk(std::uint64_t seed, int steps)
{
    Rng rng(seed);
    std::vector<std::uint64_t> tags;
    std::uint64_t chains[3] = {1ull << 20, 1ull << 24, 1ull << 27};
    std::uint64_t cursor = 1ull << 22;
    for (int i = 0; i < steps; i++) {
        switch (rng.below(6)) {
          case 0: // edge-distance hop from the cursor, either direction
          {
            const std::uint64_t d =
                kEdgeDistances[rng.below(std::size(kEdgeDistances))];
            cursor = rng.chance(0.5) || cursor < d ? cursor + d
                                                   : cursor - d;
            tags.push_back(cursor);
            break;
          }
          case 1: // exact repeat: distance 0 must still round-trip
            if (!tags.empty()) {
                tags.push_back(tags.back());
                break;
            }
            [[fallthrough]];
          case 2: // chained fill stream (small ascending deltas)
          {
            auto &c = chains[rng.below(3)];
            c += 1 + rng.below(4);
            tags.push_back(c);
            break;
          }
          case 3: // descending chain (sign-bit coverage)
          {
            auto &c = chains[rng.below(3)];
            c -= std::min<std::uint64_t>(c - 1, 1 + rng.below(4));
            tags.push_back(c);
            break;
          }
          case 4: // far scatter: guaranteed new base
            tags.push_back(rng.below(1ull << 32));
            break;
          default: // revisit an old tag (base-LRU pressure)
            tags.push_back(tags.empty() ? cursor
                                        : tags[rng.below(tags.size())]);
            break;
        }
    }
    return tags;
}

void
roundTrip(unsigned bases, std::uint64_t seed, int steps)
{
    const auto tags = adversarialWalk(seed, steps);
    TagCodec enc(bases);
    TagDecoder dec(bases);
    BitWriter out;
    for (std::size_t i = 0; i < tags.size(); i++) {
        const std::uint32_t measured = enc.measure(tags[i]);
        const std::uint32_t appended = enc.append(tags[i], &out);
        ASSERT_EQ(measured, appended)
            << "bases " << bases << " seed " << seed << " tag " << i;
    }
    BitReader in(out);
    for (std::size_t i = 0; i < tags.size(); i++) {
        ASSERT_EQ(dec.next(in), tags[i])
            << "bases " << bases << " seed " << seed << " tag " << i;
    }
    EXPECT_EQ(in.remaining(), 0u);
}

TEST(TagCodecProperty, RoundTripAdversarialWalksOneBase)
{
    for (std::uint64_t seed = 1; seed <= 25; seed++)
        roundTrip(1, seed, 400);
}

TEST(TagCodecProperty, RoundTripAdversarialWalksTwoBases)
{
    for (std::uint64_t seed = 1; seed <= 25; seed++)
        roundTrip(2, seed, 400);
}

TEST(TagCodecProperty, EdgeDistanceLadderBothDirections)
{
    // Deterministic ladder over every boundary distance, up then down;
    // every entry must survive the round trip for both variants.
    for (unsigned bases : {1u, 2u}) {
        std::vector<std::uint64_t> tags;
        std::uint64_t cursor = 1ull << 30;
        for (std::uint64_t d : kEdgeDistances) {
            cursor += d;
            tags.push_back(cursor);
        }
        for (std::uint64_t d : kEdgeDistances) {
            cursor -= d;
            tags.push_back(cursor);
        }
        TagCodec enc(bases);
        TagDecoder dec(bases);
        BitWriter out;
        for (std::uint64_t t : tags)
            enc.append(t, &out);
        BitReader in(out);
        for (std::size_t i = 0; i < tags.size(); i++)
            ASSERT_EQ(dec.next(in), tags[i])
                << "bases " << bases << " entry " << i;
    }
}

TEST(TagCodecProperty, MaxDeltaTieGoesToDeltaNotNewBase)
{
    // kMaxDelta is encodable as a delta (cheaper than a new base);
    // kMaxDelta+1 is not. This is the near-tie the encoder must get
    // right on both sides.
    TagCodec codec(1);
    codec.append(1'000'000);
    const std::uint32_t at_max = codec.measure(1'000'000 +
                                               TagCodec::kMaxDelta);
    EXPECT_LT(at_max, codec.overheadBits() + TagCodec::kCodeBits +
                          TagCodec::kFullTagBits);
    const std::uint32_t past_max =
        codec.measure(1'000'000 + TagCodec::kMaxDelta + 1);
    EXPECT_EQ(past_max, codec.overheadBits() + TagCodec::kCodeBits +
                            TagCodec::kFullTagBits);
}

TEST(TagCodecProperty, ResetForgetsBasesUnderFuzz)
{
    for (std::uint64_t seed = 50; seed <= 55; seed++) {
        TagCodec codec(2);
        const auto tags = adversarialWalk(seed, 100);
        for (std::uint64_t t : tags)
            codec.append(t);
        codec.reset();
        // After reset the first append must cost a full new base.
        EXPECT_EQ(codec.measure(tags.front()),
                  codec.overheadBits() + TagCodec::kCodeBits +
                      TagCodec::kFullTagBits);
    }
}

TEST(TagCodecProperty, DistanceCodeTablesAreConsistent)
{
    // forDistance and the (rangeStart, precisionOf) inverse tables must
    // agree over every distance up to a few thousand plus the edges.
    const auto check = [](std::uint64_t d) {
        const auto dc = TagDistanceCode::forDistance(d);
        EXPECT_LE(TagDistanceCode::rangeStart(dc.code), d);
        EXPECT_EQ(TagDistanceCode::precisionOf(dc.code),
                  dc.precisionBits);
        EXPECT_EQ(dc.rangeBase, TagDistanceCode::rangeStart(dc.code));
        EXPECT_LT(d - dc.rangeBase, 1ull << dc.precisionBits);
    };
    for (std::uint64_t d = 1; d <= 5000; d++)
        check(d);
    for (std::uint64_t d : kEdgeDistances) {
        if (d <= TagCodec::kMaxDelta)
            check(d);
    }
}

} // namespace
} // namespace comp
} // namespace morc
