/**
 * @file
 * Tests for the utility layer: bit streams, RNG, Zipf, stats helpers.
 */

#include <gtest/gtest.h>

#include "stats/histogram.hh"
#include "stats/summary.hh"
#include "util/bitstream.hh"
#include "util/rng.hh"
#include "util/types.hh"
#include "util/zipf.hh"

namespace morc {
namespace {

TEST(BitStream, RoundTripVariousWidths)
{
    BitWriter w;
    Rng rng(1);
    std::vector<std::pair<std::uint64_t, unsigned>> written;
    for (int i = 0; i < 1000; i++) {
        const unsigned bits = 1 + static_cast<unsigned>(rng.below(64));
        std::uint64_t v = rng.next();
        if (bits < 64)
            v &= (1ull << bits) - 1;
        written.emplace_back(v, bits);
        w.put(v, bits);
    }
    BitReader r(w);
    for (const auto &[v, bits] : written)
        ASSERT_EQ(r.get(bits), v);
    EXPECT_EQ(r.remaining(), 0u);
}

TEST(BitStream, SizeAccounting)
{
    BitWriter w;
    w.put(1, 3);
    w.put(0xff, 8);
    EXPECT_EQ(w.sizeBits(), 11u);
    EXPECT_EQ(w.sizeBytes(), 2u);
    w.clear();
    EXPECT_EQ(w.sizeBits(), 0u);
}

TEST(BitStream, CrossWordBoundary)
{
    BitWriter w;
    w.put(0, 60);
    w.put(0xabcd, 16); // straddles the first 64-bit word
    BitReader r(w);
    EXPECT_EQ(r.get(60), 0u);
    EXPECT_EQ(r.get(16), 0xabcdu);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; i++)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, BelowInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; i++)
        ASSERT_LT(rng.below(17), 17u);
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(9);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; i++)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, GeometricMeanMatchesExpectation)
{
    Rng rng(3);
    const double p = 0.25;
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; i++)
        sum += static_cast<double>(rng.geometric(p));
    // Mean of failures-before-success is (1-p)/p = 3.
    EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Zipf, SkewFavorsLowIndices)
{
    ZipfSampler z(100, 0.99);
    Rng rng(4);
    std::vector<int> counts(100, 0);
    for (int i = 0; i < 100000; i++)
        counts[z.sample(rng)]++;
    EXPECT_GT(counts[0], counts[10]);
    EXPECT_GT(counts[10], counts[99]);
}

TEST(Zipf, HashedIsDeterministic)
{
    ZipfSampler z(64, 0.8);
    EXPECT_EQ(z.sampleHashed(12345), z.sampleHashed(12345));
    for (std::uint64_t h = 0; h < 1000; h++)
        ASSERT_LT(z.sampleHashed(splitmix64(h)), 64u);
}

TEST(Types, LineHelpers)
{
    EXPECT_EQ(lineBase(0x12345), 0x12340u);
    EXPECT_EQ(lineNumber(0x12345), 0x48du);
    EXPECT_EQ(divCeil(10, 3), 4u);
    EXPECT_TRUE(isPow2(64));
    EXPECT_FALSE(isPow2(65));
    EXPECT_EQ(floorLog2(64), 6u);
    EXPECT_EQ(ceilLog2(64), 6u);
    EXPECT_EQ(ceilLog2(65), 7u);
    EXPECT_EQ(ceilLog2(1), 0u);
}

TEST(Types, CacheLineAccessors)
{
    CacheLine l;
    l.setWord32(3, 0xdeadbeef);
    EXPECT_EQ(l.word32(3), 0xdeadbeefu);
    l.setWord64(0, 0x0123456789abcdefull);
    EXPECT_EQ(l.word64(0), 0x0123456789abcdefull);
    EXPECT_EQ(l.word32(0), 0x89abcdefu);
    EXPECT_FALSE(l.isZero());
    EXPECT_TRUE(CacheLine{}.isZero());
}

TEST(Histogram, BucketsAndLabels)
{
    stats::Histogram h({64, 128, 512});
    h.record(1);
    h.record(64);
    h.record(65);
    h.record(600, 2);
    EXPECT_EQ(h.numBuckets(), 4u);
    EXPECT_EQ(h.count(0), 2u);
    EXPECT_EQ(h.count(1), 1u);
    EXPECT_EQ(h.count(2), 0u);
    EXPECT_EQ(h.count(3), 2u);
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.4);
    EXPECT_EQ(h.label(0), "<=64");
    EXPECT_EQ(h.label(1), "65-128");
    EXPECT_EQ(h.label(3), ">512");
}

TEST(Summary, Means)
{
    EXPECT_DOUBLE_EQ(stats::amean({1, 2, 3}), 2.0);
    EXPECT_NEAR(stats::gmean({1, 8}), 2.8284, 1e-3);
    EXPECT_DOUBLE_EQ(stats::amean({}), 0.0);
}

TEST(Summary, PeriodicSampler)
{
    stats::PeriodicSampler s(10);
    int calls = 0;
    s.tick(0, [&] { calls++; return 1.0; });
    EXPECT_EQ(calls, 0); // first sample is at the first boundary
    s.tick(25, [&] { calls++; return 3.0; });
    EXPECT_EQ(calls, 2); // boundaries at 10 and 20
    EXPECT_DOUBLE_EQ(s.mean(0.0), 3.0);
    s.restart(25);
    EXPECT_DOUBLE_EQ(s.mean(-1.0), -1.0);
    s.tick(36, [&] { return 9.0; });
    EXPECT_DOUBLE_EQ(s.mean(0.0), 9.0);
}

} // namespace
} // namespace morc
