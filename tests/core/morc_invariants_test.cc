/**
 * @file
 * Deeper MORC invariants: storage accounting, budget enforcement,
 * latency monotonicity, LMT relocation, and tag-codec integration.
 */

#include <gtest/gtest.h>

#include <map>

#include "core/morc.hh"
#include "trace/value_model.hh"
#include "util/rng.hh"

namespace morc {
namespace core {
namespace {

CacheLine
pooledLine(Rng &rng, std::uint32_t salt)
{
    CacheLine l;
    for (unsigned i = 0; i < kWordsPerLine; i++) {
        l.setWord32(i, rng.chance(0.3)
                           ? 0
                           : salt + static_cast<std::uint32_t>(
                                        rng.below(32)) * 4);
    }
    return l;
}

TEST(MorcInvariants, SeparateTagStoreBudgetsHold)
{
    MorcConfig cfg;
    LogCache c(cfg);
    Rng rng(1);
    for (Addr a = 0; a < 60000; a++)
        c.insert(a << kLineShift, pooledLine(rng, 0x1000), false);
    const auto s = c.snapshot();
    // No log may exceed its data space; the tag store is separate.
    EXPECT_LE(s.dataBits, static_cast<std::uint64_t>(cfg.numLogs()) *
                              cfg.logBytes * 8);
    // Aggregate tag bits fit the aggregate tag budget.
    EXPECT_LE(s.tagBits, static_cast<std::uint64_t>(cfg.numLogs()) *
                             cfg.tagBudgetBits());
}

TEST(MorcInvariants, MergedBudgetSharesOneLog)
{
    MorcConfig cfg;
    cfg.mergedTags = true;
    LogCache c(cfg);
    Rng rng(2);
    for (Addr a = 0; a < 60000; a++)
        c.insert(a << kLineShift, pooledLine(rng, 0x2000), false);
    const auto s = c.snapshot();
    EXPECT_LE(s.dataBits + s.tagBits,
              static_cast<std::uint64_t>(cfg.numLogs()) * cfg.logBytes *
                  8);
}

TEST(MorcInvariants, SnapshotCountsMatchPublicStats)
{
    LogCache c;
    Rng rng(3);
    for (Addr a = 0; a < 20000; a++)
        c.insert(a << kLineShift, pooledLine(rng, 0x3000),
                 rng.chance(0.3));
    const auto s = c.snapshot();
    EXPECT_EQ(s.linesValid, c.validLines());
    EXPECT_GE(s.linesTotal, s.linesValid);
    EXPECT_NEAR(c.invalidLineFraction(),
                1.0 - static_cast<double>(s.linesValid) /
                          static_cast<double>(s.linesTotal),
                1e-12);
}

TEST(MorcInvariants, LatencyIsMonotoneInLogPosition)
{
    // Fill one log with incompressible lines; later lines in the fill
    // order must never be cheaper to reach than earlier ones (they sit
    // deeper in the stream).
    MorcConfig cfg;
    cfg.activeLogs = 1;
    LogCache c(cfg);
    Rng rng(4);
    std::vector<Addr> addrs;
    for (Addr i = 0; i < 7; i++) { // stay within one 512B log
        CacheLine l;
        for (unsigned w = 0; w < kWordsPerLine; w++)
            l.setWord32(w, static_cast<std::uint32_t>(rng.next()));
        const Addr a = i << kLineShift;
        addrs.push_back(a);
        c.insert(a, l, false);
    }
    std::uint32_t prev = 0;
    for (Addr a : addrs) {
        const auto r = c.read(a);
        ASSERT_TRUE(r.hit);
        EXPECT_GE(r.extraLatency, prev);
        prev = r.extraLatency;
    }
}

TEST(MorcInvariants, BytesDecompressedCoverPrefix)
{
    MorcConfig cfg;
    cfg.activeLogs = 1;
    LogCache c(cfg);
    Rng rng(5);
    for (Addr i = 0; i < 6; i++) {
        CacheLine l;
        for (unsigned w = 0; w < kWordsPerLine; w++)
            l.setWord32(w, static_cast<std::uint32_t>(rng.next()));
        c.insert(i << kLineShift, l, false);
    }
    // The last line's read must decompress at least as many bytes as
    // lines precede it times the minimum possible line size.
    const auto r = c.read(5ull << kLineShift);
    ASSERT_TRUE(r.hit);
    EXPECT_EQ(r.linesDecompressed, 6u);
    EXPECT_GE(r.bytesDecompressed, 6u * 32u); // random lines ~64B each
}

TEST(MorcInvariants, RelocationPreservesResidency)
{
    // With a tight 1-way-equivalent load, 2-way + relocation must keep
    // strictly more lines resident than 1-way.
    auto resident = [](unsigned ways) {
        MorcConfig cfg;
        cfg.capacityBytes = 32 * 1024;
        cfg.lmtFactor = 2;
        cfg.lmtWays = ways;
        LogCache c(cfg);
        Rng rng(6);
        for (int i = 0; i < 40000; i++)
            c.insert(rng.below(700) << kLineShift, CacheLine{}, false);
        return c.validLines();
    };
    EXPECT_GT(resident(2), resident(1));
}

TEST(MorcInvariants, ParallelTagDataNeverSlower)
{
    MorcConfig serial;
    MorcConfig parallel;
    parallel.parallelTagData = true;
    LogCache a(serial), b(parallel);
    Rng rng(42);
    for (Addr i = 0; i < 2000; i++) {
        const CacheLine l = pooledLine(rng, 0xaa00);
        a.insert(i << kLineShift, l, false);
        b.insert(i << kLineShift, l, false);
    }
    for (Addr i = 0; i < 2000; i++) {
        const auto ra = a.read(i << kLineShift);
        const auto rb = b.read(i << kLineShift);
        ASSERT_EQ(ra.hit, rb.hit);
        if (ra.hit) {
            ASSERT_LE(rb.extraLatency, ra.extraLatency);
        }
    }
}

TEST(MorcInvariants, ReadDoesNotChangeState)
{
    LogCache c;
    Rng rng(7);
    for (Addr a = 0; a < 5000; a++)
        c.insert(a << kLineShift, pooledLine(rng, 0x7000), false);
    const auto before = c.snapshot();
    const auto v_before = c.validLines();
    for (Addr a = 0; a < 10000; a++)
        c.read(a << kLineShift);
    const auto after = c.snapshot();
    EXPECT_EQ(before.linesTotal, after.linesTotal);
    EXPECT_EQ(before.dataBits, after.dataBits);
    EXPECT_EQ(v_before, c.validLines());
}

TEST(MorcInvariants, WritebackToAbsentLineAllocates)
{
    // Non-inclusive LLC: a write-back may arrive for a line the LLC
    // never held; it must be appended like a fill, marked modified.
    LogCache c;
    Rng rng(8);
    const CacheLine l = pooledLine(rng, 0x8000);
    cache::FillResult fr = c.insert(0xabc0, l, true);
    EXPECT_TRUE(fr.writebacks.empty());
    const auto r = c.read(0xabc0);
    ASSERT_TRUE(r.hit);
    EXPECT_EQ(r.data, l);
}

TEST(MorcInvariants, TagStatsAccumulate)
{
    LogCache c;
    Rng rng(9);
    for (Addr a = 0; a < 3000; a++)
        c.insert(a << kLineShift, CacheLine{}, false);
    const auto s = c.snapshot();
    EXPECT_GT(s.tagDeltas + s.tagNewBases, 0u);
    // Sequential fills chain: deltas dominate new bases.
    EXPECT_GT(s.tagDeltas, s.tagNewBases);
}

/** Sweep MORC-vs-reference over tag-store and LMT geometries. */
class MorcBudgetSweep
    : public ::testing::TestWithParam<std::tuple<double, unsigned, bool>>
{};

TEST_P(MorcBudgetSweep, FunctionalUnderAllBudgets)
{
    MorcConfig cfg;
    cfg.capacityBytes = 64 * 1024;
    cfg.tagStoreFactor = std::get<0>(GetParam());
    cfg.lmtFactor = std::get<1>(GetParam());
    cfg.mergedTags = std::get<2>(GetParam());
    LogCache c(cfg);
    std::map<Addr, CacheLine> memory;
    Rng rng(99);
    for (int i = 0; i < 20000; i++) {
        const Addr a = rng.below(4096) << kLineShift;
        if (rng.chance(0.6)) {
            const CacheLine l = pooledLine(rng, 0x9000);
            memory[a] = l;
            for (const auto &wb : c.insert(a, l, true).writebacks)
                ASSERT_EQ(wb.data, memory[wb.addr]);
        } else {
            const auto r = c.read(a);
            if (r.hit) {
                ASSERT_EQ(r.data, memory[a]);
            }
        }
    }
    EXPECT_LE(c.compressionRatio(), cfg.lmtFactor + 0.01);
}

INSTANTIATE_TEST_SUITE_P(
    Budgets, MorcBudgetSweep,
    ::testing::Combine(::testing::Values(1.0, 2.0, 4.0),
                       ::testing::Values(2u, 8u),
                       ::testing::Values(false, true)));

} // namespace
} // namespace core
} // namespace morc
